// Package repro's root benchmark suite regenerates each of the paper's
// tables and figures at bench scale (one bench per artifact) plus the
// design-choice ablations called out in DESIGN.md. The full-budget runs are
// produced by cmd/experiments; these benches exercise the identical code
// paths on reduced instance subsets so `go test -bench=.` stays tractable.
package repro

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/service"
	"repro/internal/symgraph"
)

// BenchmarkTable1 regenerates the benchmark-statistics table (generation +
// certification, no exact verification).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(0)
		if err != nil || len(rows) != 20 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkTable2 measures encoding + symmetry detection per SBP type on a
// representative subset (full 20-instance run: cmd/experiments -table 2).
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.Config{
		K:           8,
		Instances:   []string{"myciel3", "myciel4", "queen5_5"},
		SymMaxNodes: 100000,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil || len(rows) != 6 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkTable3 runs the K=20-style solver matrix on a small subset.
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.Config{
		K:           8,
		Timeout:     2 * time.Second,
		Instances:   []string{"myciel3", "queen5_5"},
		Engines:     []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineBnB},
		SBPs:        []encode.SBPKind{encode.SBPNone, encode.SBPNU, encode.SBPSC},
		SymMaxNodes: 50000,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Matrix(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 is the K=30 variant (scaled to K=12 here; the real bound
// is exercised by cmd/experiments -table 4).
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.Config{
		K:           12,
		Timeout:     2 * time.Second,
		Instances:   []string{"myciel3", "queen5_5"},
		Engines:     []pbsolver.Engine{pbsolver.EnginePBS},
		SBPs:        []encode.SBPKind{encode.SBPNone, encode.SBPNUSC},
		SymMaxNodes: 50000,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Matrix(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 runs the queens-appendix detail on queen5_5.
func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.Config{
		K:           7,
		Timeout:     5 * time.Second,
		Instances:   []string{"queen5_5"},
		Engines:     []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EnginePueblo},
		SBPs:        []encode.SBPKind{encode.SBPNone, encode.SBPNU, encode.SBPSC},
		SymMaxNodes: 50000,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 enumerates the worked example's optimal assignments
// under every construction and checks the paper's counts.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Survivors != r.PaperExpect {
				b.Fatalf("%v: %d != %d", r.Kind, r.Survivors, r.PaperExpect)
			}
		}
	}
}

// --- Ablations (DESIGN.md "Design choices called out for ablation") ---

// BenchmarkAblationSearchStrategy compares the linear objective-tightening
// loop against binary search with fresh solvers.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	g, _ := graph.Benchmark("queen5_5")
	for _, strat := range []struct {
		name string
		s    pbsolver.Strategy
	}{{"linear", pbsolver.LinearSearch}, {"binary", pbsolver.BinarySearch}} {
		b.Run(strat.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := encode.Build(g, 7, encode.SBPNU)
				res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{
					Engine: pbsolver.EnginePBS, Strategy: strat.s,
				})
				if res.Status != pbsolver.StatusOptimal || res.Objective != 5 {
					b.Fatalf("%v obj=%d", res.Status, res.Objective)
				}
			}
		})
	}
}

// BenchmarkAblationLIEncoding compares the linear prefix-chain LI encoding
// against the paper-literal quadratic variant.
func BenchmarkAblationLIEncoding(b *testing.B) {
	g, _ := graph.Benchmark("myciel4")
	for _, variant := range []struct {
		name string
		kind encode.SBPKind
	}{{"prefix-linear", encode.SBPLI}, {"paper-quadratic", encode.SBPLIQuad}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := encode.Build(g, 7, variant.kind)
				res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
				if res.Status != pbsolver.StatusOptimal || res.Objective != 5 {
					b.Fatalf("%v obj=%d", res.Status, res.Objective)
				}
				b.ReportMetric(float64(len(e.F.Clauses)), "clauses")
			}
		})
	}
}

// BenchmarkAblationGeneratorPowers compares breaking only group generators
// against additionally breaking their low powers.
func BenchmarkAblationGeneratorPowers(b *testing.B) {
	g, _ := graph.Benchmark("queen5_5")
	for _, variant := range []struct {
		name     string
		maxPower int
	}{{"generators-only", 1}, {"with-powers-3", 3}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := encode.Build(g, 7, encode.SBPNone)
				perms, _ := symgraph.Detect(e.F, autom.Options{})
				if variant.maxPower > 1 {
					perms = sbp.ExpandPowers(perms, variant.maxPower)
				}
				sbp.AddSBPs(e.F, perms, sbp.Options{})
				res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
				if res.Status != pbsolver.StatusOptimal || res.Objective != 5 {
					b.Fatalf("%v obj=%d", res.Status, res.Objective)
				}
			}
		})
	}
}

// BenchmarkAblationExactlyOneEncoding compares the PB exactly-one rows of
// the paper's encoding against pure-CNF pairwise at-most-one (the
// CNF-vs-PB tradeoff of §2.3).
func BenchmarkAblationExactlyOneEncoding(b *testing.B) {
	g, _ := graph.Benchmark("queen5_5")
	for _, variant := range []struct {
		name     string
		pairwise bool
	}{{"pb-row", false}, {"cnf-pairwise", true}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := encode.BuildWithOptions(g, 7, encode.SBPNU,
					encode.Options{PairwiseExactlyOne: variant.pairwise})
				res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
				if res.Status != pbsolver.StatusOptimal || res.Objective != 5 {
					b.Fatalf("%v obj=%d", res.Status, res.Objective)
				}
			}
		})
	}
}

// BenchmarkAblationSeqSATvsILP compares repeated decision-SAT calls
// (one-shot and incremental with assumptions) against direct 0-1 ILP
// optimization (§2.3's motivation for the PB route).
func BenchmarkAblationSeqSATvsILP(b *testing.B) {
	g, _ := graph.Benchmark("queen5_5")
	b.Run("sequential-sat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ub := heuristic.DsaturCount(g)
			chi, proven := core.SequentialChromatic(context.Background(), g, ub)
			if !proven || chi != 5 {
				b.Fatalf("chi=%d proven=%v", chi, proven)
			}
		}
	})
	b.Run("incremental-sat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ub := heuristic.DsaturCount(g)
			chi, proven := core.SequentialChromaticIncremental(context.Background(), g, ub)
			if !proven || chi != 5 {
				b.Fatalf("chi=%d proven=%v", chi, proven)
			}
		}
	})
	b.Run("pb-optimize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := core.Solve(context.Background(), g, core.Config{K: 7, SBP: encode.SBPNU, Engine: pbsolver.EnginePBS})
			if out.Chi != 5 {
				b.Fatalf("chi=%d", out.Chi)
			}
		}
	})
}

// BenchmarkAblationSCvsClique compares the paper's SC predicate against the
// clique-pinning extension its §3.4 sketches (SBPClique).
func BenchmarkAblationSCvsClique(b *testing.B) {
	g, _ := graph.Benchmark("queen6_6")
	for _, variant := range []struct {
		name string
		kind encode.SBPKind
	}{{"sc-two-pins", encode.SBPSC}, {"clique-pins", encode.SBPClique}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := encode.Build(g, 9, variant.kind)
				res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
				if res.Status != pbsolver.StatusOptimal || res.Objective != 7 {
					b.Fatalf("%v obj=%d", res.Status, res.Objective)
				}
			}
		})
	}
}

// BenchmarkSolverEngines times one representative optimal solve per engine.
func BenchmarkSolverEngines(b *testing.B) {
	b.ReportAllocs()
	g, _ := graph.Benchmark("myciel4")
	for _, eng := range pbsolver.Engines {
		b.Run(eng.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := core.Solve(context.Background(), g, core.Config{K: 8, SBP: encode.SBPNUSC, Engine: eng,
					Timeout: 30 * time.Second})
				if out.Chi != 5 {
					b.Fatalf("chi=%d status=%v", out.Chi, out.Result.Status)
				}
			}
		})
	}
}

// BenchmarkSolverSearchKnobs runs the same instance with the PR's search
// improvements enabled (chronological backtracking, restart-time clause
// vivification, dynamic LBD) so the knob-guarded paths stay on the perf
// radar next to the default-configuration engines above.
func BenchmarkSolverSearchKnobs(b *testing.B) {
	b.ReportAllocs()
	g, _ := graph.Benchmark("myciel4")
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"chrono", core.Config{ChronoThreshold: 1}},
		{"vivify", core.Config{VivifyBudget: 2000}},
		{"dynlbd", core.Config{DynamicLBD: true}},
		{"all", core.Config{ChronoThreshold: 1, VivifyBudget: 2000, DynamicLBD: true}},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := c.cfg
			cfg.K, cfg.SBP, cfg.Timeout = 8, encode.SBPNUSC, 30*time.Second
			for i := 0; i < b.N; i++ {
				out := core.Solve(context.Background(), g, cfg)
				if out.Chi != 5 {
					b.Fatalf("chi=%d status=%v", out.Chi, out.Result.Status)
				}
			}
		})
	}
}

// BenchmarkSBPVariants solves one symmetric instance under each lex-leader
// construction (full generator break, involution-restricted, precomputed
// canonizing set, and the three-way race). Every variant must reach the
// same χ — the knob only moves solve time and predicate volume — so
// bench-compare records the speed/size trade-off side by side; the
// deterministic sbp-clauses/op and sbp-perms/op metrics track how much
// CNF each construction emits.
func BenchmarkSBPVariants(b *testing.B) {
	g, _ := graph.Benchmark("myciel4")
	variants := []sbp.Variant{
		sbp.VariantFull, sbp.VariantInvolution, sbp.VariantCanonSet, sbp.VariantRace,
	}
	for _, v := range variants {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			var clauses, perms int
			for i := 0; i < b.N; i++ {
				// SBPNone leaves all symmetry to the lex-leader layer, so
				// each variant's predicate volume is visible (under NU/CA/LI
				// the verification gate drops the color perms the
				// construction would otherwise break — by design).
				out := core.Solve(context.Background(), g, core.Config{
					K: 8, SBP: encode.SBPNone, Engine: pbsolver.EnginePBS,
					InstanceDependent: true, SBPVariant: v,
					SymMaxNodes: 100000, Timeout: 30 * time.Second,
				})
				if out.Chi != 5 {
					b.Fatalf("variant %v: chi=%d status=%v", v, out.Chi, out.Result.Status)
				}
				if out.Sym != nil {
					clauses, perms = out.Sym.AddedCNF, out.Sym.PredicatePerms
				}
			}
			if v != sbp.VariantRace { // race winners vary; sizes would be noisy
				b.ReportMetric(float64(clauses), "sbp-clauses/op")
				b.ReportMetric(float64(perms), "sbp-perms/op")
			}
		})
	}
}

// BenchmarkParallelSolve compares the sequential engine against the
// cube-and-conquer subsystem on a DSJC-style random instance (dense
// enough that the optimality proof dominates). The sub-benchmarks share
// one instance, so `make bench-compare` records sequential-vs-parallel
// wall clock side by side; on a multi-core runner the parallel variant
// shows the speedup (on a single core it only measures the subsystem's
// overhead).
func BenchmarkParallelSolve(b *testing.B) {
	g := graph.Random("DSJC-style-34", 34, 280, 7)
	run := func(b *testing.B, parallel int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := core.Solve(context.Background(), g, core.Config{
				K: 11, SBP: encode.SBPNU, Engine: pbsolver.EnginePBS,
				Parallel: parallel, Timeout: 2 * time.Minute,
			})
			if out.Chi != 8 {
				b.Fatalf("chi=%d status=%v", out.Chi, out.Result.Status)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, 0) })
	b.Run("parallel-4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkCanonicalForm times canonical labeling on the transitive
// families where the orbit-pruned search pays off, pruned vs unpruned
// (DisablePruning replays the pre-McKay exhaustive baseline). Each run
// reports nodes/op so bench-compare tracks the search-tree size alongside
// wall clock; on C_100 and K_12,12 the pruned tree is over an order of
// magnitude smaller (on queen-8 refinement alone already collapses the
// tree — irregular degrees — so the two variants sit close together).
func BenchmarkCanonicalForm(b *testing.B) {
	toAutom := func(g *graph.Graph) *autom.Graph {
		a := autom.NewGraph(g.N())
		for _, e := range g.Edges() {
			a.AddEdge(e[0], e[1])
		}
		return a
	}
	cases := []struct {
		name string
		g    *autom.Graph
	}{
		{"C100", toAutom(graph.Cycle(100))},
		{"queen8_8", toAutom(graph.Queens(8, 8))},
		{"K12_12", func() *autom.Graph {
			a := autom.NewGraph(24)
			for u := 0; u < 12; u++ {
				for v := 12; v < 24; v++ {
					a.AddEdge(u, v)
				}
			}
			return a
		}()},
	}
	for _, tc := range cases {
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"pruned", false}, {"unpruned", true}} {
			b.Run(tc.name+"/"+variant.name, func(b *testing.B) {
				b.ReportAllocs()
				var nodes int64
				for i := 0; i < b.N; i++ {
					c := autom.CanonicalForm(tc.g, autom.CanonicalOptions{DisablePruning: variant.disable})
					nodes = c.Nodes
					if len(c.Bytes) == 0 {
						b.Fatal("empty canonical encoding")
					}
				}
				b.ReportMetric(float64(nodes), "nodes/op")
			})
		}
	}
}

// BenchmarkSymmetryDetection times the Saucy-analogue on a full-size
// encoding (anna, K=20).
func BenchmarkSymmetryDetection(b *testing.B) {
	g, _ := graph.Benchmark("anna")
	for i := 0; i < b.N; i++ {
		sym, _ := core.DetectSymmetries(g, 20, encode.SBPNone, 0, 0)
		if sym.Generators == 0 {
			b.Fatal("no generators found")
		}
	}
}

// BenchmarkServiceIsomorphicBatch pushes a batch of relabelled copies of
// one instance through the coloring service: one real solve, the rest
// canonical-cache hits. This times the throughput subsystem end to end
// (canonicalization + scheduling + result translation).
func BenchmarkServiceIsomorphicBatch(b *testing.B) {
	b.ReportAllocs()
	base, _ := graph.Benchmark("myciel4")
	rng := rand.New(rand.NewSource(17))
	copies := make([]*graph.Graph, 16)
	for i := range copies {
		perm := make([]int, base.N())
		for j := range perm {
			perm[j] = j
		}
		rng.Shuffle(len(perm), func(a, c int) { perm[a], perm[c] = perm[c], perm[a] })
		g := graph.New("copy", base.N())
		for _, e := range base.Edges() {
			g.AddEdge(perm[e[0]], perm[e[1]])
		}
		copies[i] = g
	}
	for i := 0; i < b.N; i++ {
		svc := service.New(service.Config{DefaultTimeout: time.Minute})
		ids := make([]string, len(copies))
		for j, g := range copies {
			id, err := svc.Submit(g, service.JobSpec{K: 8, SBP: encode.SBPNU})
			if err != nil {
				b.Fatal(err)
			}
			ids[j] = id
		}
		for _, id := range ids {
			info, err := svc.Wait(context.Background(), id)
			if err != nil || info.Result == nil || info.Result.Chi != 5 {
				b.Fatalf("info=%+v err=%v", info, err)
			}
		}
		st := svc.Stats()
		if st.SolverRuns != 1 {
			b.Fatalf("expected 1 solver run, got %d", st.SolverRuns)
		}
		svc.Close()
	}
}

// BenchmarkTraceOverhead pins the cost of per-job phase tracing: the same
// real solve (myciel4 at K=8, ~tens of ms of search) through the service
// with the flight recorder on (the default) and off. The sub-benchmark
// ratio is the overhead budget — tracing must stay within 2% of the
// untraced path, since it is on by default in production. The absolute
// cost is a few dozen spans' worth of bookkeeping per job (~tens of µs),
// so on realistic solves it vanishes into the solver's noise floor.
func BenchmarkTraceOverhead(b *testing.B) {
	base, _ := graph.Benchmark("myciel4")
	runJob := func(b *testing.B, traceKeep int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc := service.New(service.Config{DefaultTimeout: time.Minute, TraceKeep: traceKeep})
			id, err := svc.Submit(base, service.JobSpec{K: 8, SBP: encode.SBPNU})
			if err != nil {
				b.Fatal(err)
			}
			info, err := svc.Wait(context.Background(), id)
			if err != nil || info.Result == nil || info.Result.Chi != 5 {
				b.Fatalf("info=%+v err=%v", info, err)
			}
			if (traceKeep >= 0) != svc.TracingEnabled() {
				b.Fatalf("TracingEnabled()=%v with TraceKeep=%d", svc.TracingEnabled(), traceKeep)
			}
			svc.Close()
		}
	}
	b.Run("traced", func(b *testing.B) { runJob(b, 0) })
	b.Run("untraced", func(b *testing.B) { runJob(b, -1) })
}

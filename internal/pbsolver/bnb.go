package pbsolver

import (
	"sort"
	"time"

	"repro/internal/cnf"
	"repro/internal/pb"
)

// The EngineBnB configuration is the generic-ILP (CPLEX 7.0) stand-in: a
// depth-first branch-and-bound search with chronological backtracking and
// no learning of any kind. It reuses the propagation machinery (watched
// clauses + PB counters) but none of the CDCL apparatus: conflicts flip the
// most recent unflipped decision, the variable order is static
// (most-constrained first), and optimization prunes on an incumbent bound.
//
// The paper observes that CPLEX, unlike the CDCL solvers, is *slowed down*
// by added SBPs; the mechanism this stand-in reproduces is that extra
// constraint rows add propagation work at every node while chronological
// search cannot convert them into reusable pruning (no learnt clauses).
// Where the stand-in diverges from CPLEX (no LP relaxation bounding) is
// documented in EXPERIMENTS.md.

type bnbDecision struct {
	v       int
	phase   bool // phase assigned (true = positive literal)
	flipped bool
}

type bnbSearcher struct {
	e         *cdclEngine
	order     []int // static decision order, most-constrained first
	decisions []bnbDecision
	obj       []pb.Term
	best      cnf.Assignment
	bestZ     int
	hasBest   bool
}

func newBnBSearcher(f *pb.Formula, opts Options) *bnbSearcher {
	e := buildCDCL(f, opts)
	if e == nil {
		return nil
	}
	s := &bnbSearcher{e: e, obj: f.Objective}
	// Static most-constrained-first order: weight by clause occurrences and
	// PB coefficients.
	score := make([]int, e.nVars+1)
	for _, c := range e.db.Clauses {
		for _, u := range e.db.Arena.Lits(c) {
			score[u>>1]++
		}
	}
	// Binary clauses live only in the inline watch lists; each clause's two
	// literals appear exactly once each across the implied-literal entries.
	for _, ws := range e.db.BinWatches {
		for _, u := range ws {
			score[u>>1]++
		}
	}
	for _, p := range e.pbcs {
		for _, t := range p.terms {
			score[t.Lit.Var()] += t.Coef
		}
	}
	s.order = make([]int, e.nVars)
	for v := 1; v <= e.nVars; v++ {
		s.order[v-1] = v
	}
	sort.SliceStable(s.order, func(i, j int) bool {
		return score[s.order[i]] > score[s.order[j]]
	})
	return s
}

// objLB is the incumbent-pruning lower bound: the objective mass already
// committed by true literals (coefficients are positive by normalization).
func (s *bnbSearcher) objLB() int {
	lb := 0
	for _, t := range s.obj {
		if s.e.value(t.Lit) == lTrue {
			lb += t.Coef
		}
	}
	return lb
}

func (s *bnbSearcher) nextVar() int {
	for _, v := range s.order {
		if s.e.assign[v] == lUndef {
			return v
		}
	}
	return 0
}

// backtrack performs chronological backtracking with decision flipping.
// Returns false when the tree is exhausted.
func (s *bnbSearcher) backtrack() bool {
	for {
		if len(s.decisions) == 0 {
			return false
		}
		d := &s.decisions[len(s.decisions)-1]
		if d.flipped {
			s.decisions = s.decisions[:len(s.decisions)-1]
			continue
		}
		// Flip: undo this level, re-decide with the opposite phase.
		s.e.cancelUntil(len(s.decisions) - 1)
		d.flipped = true
		d.phase = !d.phase
		s.e.trailAt = append(s.e.trailAt, len(s.e.trail))
		var l cnf.Lit
		if d.phase {
			l = cnf.PosLit(d.v)
		} else {
			l = cnf.NegLit(d.v)
		}
		if !s.e.enqueue(l, noReason) {
			panic("pbsolver: flip enqueue failed")
		}
		return true
	}
}

// search runs the DFS. In decision mode (optimize=false) it stops at the
// first full assignment. In optimize mode it exhausts the tree with
// incumbent pruning and reports the final status.
func (s *bnbSearcher) search(bgt *budget, optimize bool) Status {
	e := s.e
	checkCounter := 0
	for {
		checkCounter++
		if checkCounter >= 256 {
			checkCounter = 0
			if bgt.expired() {
				return StatusUnknown
			}
			if e.prog.Ready() {
				e.prog.Emit(e.progressSnapshot())
			}
		}
		if bgt.conflictsExceeded() {
			return StatusUnknown
		}
		fail := e.propagate().isConflict()
		if !fail && optimize && s.hasBest && s.objLB() >= s.bestZ {
			fail = true // incumbent bound pruning
		}
		if fail {
			e.stats.Conflicts++
			bgt.conflicts++
			if !s.backtrack() {
				if s.hasBest {
					return StatusOptimal
				}
				return StatusUnsat
			}
			continue
		}
		v := s.nextVar()
		if v == 0 {
			// Full assignment: a feasible solution.
			if !optimize {
				return StatusSat
			}
			m := e.model()
			z := 0
			for _, t := range s.obj {
				if m.Lit(t.Lit) {
					z += t.Coef
				}
			}
			if !s.hasBest || z < s.bestZ {
				s.best, s.bestZ, s.hasBest = m, z, true
				e.noteIncumbent(z)
			}
			if z == 0 {
				return StatusOptimal
			}
			e.stats.Conflicts++ // count the forced retreat as a backtrack
			bgt.conflicts++
			if !s.backtrack() {
				return StatusOptimal
			}
			continue
		}
		e.stats.Decisions++
		e.stats.Nodes++
		s.decisions = append(s.decisions, bnbDecision{v: v, phase: false})
		e.trailAt = append(e.trailAt, len(e.trail))
		e.enqueue(cnf.NegLit(v), noReason)
	}
}

func bnbDecide(f *pb.Formula, opts Options, bgt *budget, start time.Time) Result {
	s := newBnBSearcher(f, opts)
	if s == nil {
		return Result{Status: StatusUnsat, Runtime: time.Since(start)}
	}
	st := s.search(bgt, false)
	res := Result{Stats: s.e.stats, Runtime: time.Since(start)}
	res.Stats.SolverCalls = 1
	switch st {
	case StatusSat:
		res.Status = StatusOptimal
		res.Model = s.e.model()
	case StatusUnsat:
		res.Status = StatusUnsat
	default:
		res.Status = StatusUnknown
	}
	return res
}

func bnbOptimize(f *pb.Formula, opts Options, bgt *budget, start time.Time) Result {
	s := newBnBSearcher(f, opts)
	if s == nil {
		return Result{Status: StatusUnsat, Runtime: time.Since(start)}
	}
	st := s.search(bgt, true)
	res := Result{Stats: s.e.stats, Runtime: time.Since(start)}
	res.Stats.SolverCalls = 1
	switch st {
	case StatusOptimal:
		res.Status = StatusOptimal
		res.Model = s.best
		res.Objective = s.bestZ
	case StatusUnsat:
		res.Status = StatusUnsat
	default:
		if s.hasBest {
			res.Status = StatusSat
			res.Model = s.best
			res.Objective = s.bestZ
		} else {
			res.Status = StatusUnknown
		}
	}
	return res
}

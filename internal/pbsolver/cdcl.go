package pbsolver

import (
	"time"

	"repro/internal/cnf"
	"repro/internal/pb"
)

// cdclEngine is the CDCL-based 0-1 ILP core shared by the PBS II, Galena,
// and Pueblo configurations: watched-literal clause propagation plus
// counter-based pseudo-Boolean propagation, first-UIP clause learning with
// PB reasons expanded to clauses, VSIDS decisions, Luby restarts. The
// EngineGalena configuration additionally learns cardinality reductions of
// conflicting PB constraints (CARD learning, Chai & Kuehlmann 2003).
type cdclEngine struct {
	opts Options

	nVars   int
	clauses []*clause
	learnts []*clause
	watches [][]*clause

	pbcs []*pbc
	// occ[litIdx(l)] lists PB constraints containing literal l together
	// with its coefficient: when l becomes false their slack drops.
	occ [][]occRef

	assign   []lbool
	level    []int
	reason   []reasonRef
	trailPos []int
	trail    []cnf.Lit
	trailAt  []int
	qhead    int

	activity []float64
	varInc   float64
	order    varHeap
	phase    []bool

	claInc   float64
	seen     []bool
	unsatNow bool

	stats Stats
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []cnf.Lit
	learnt   bool
	activity float64
}

// pbc is a PB constraint with counter-based propagation state: slack is
// Σ coefficients of non-false literals − bound, maintained incrementally on
// every assignment.
type pbc struct {
	terms   []pb.Term // sorted by descending coefficient
	bound   int
	slack   int
	learnt  bool
	reduced bool // cardinality reduction already derived (Galena)
}

type occRef struct {
	c    *pbc
	coef int
}

// reasonRef is either a clause or a PB constraint that implied a literal.
type reasonRef struct {
	cl *clause
	pc *pbc
}

func (r reasonRef) isNil() bool { return r.cl == nil && r.pc == nil }

func litIdx(l cnf.Lit) int {
	v := l.Var()
	if l.Sign() {
		return 2 * v
	}
	return 2*v + 1
}

func newCDCL(opts Options) *cdclEngine {
	e := &cdclEngine{opts: opts, varInc: 1, claInc: 1}
	e.assign = []lbool{lUndef}
	e.level = []int{0}
	e.reason = []reasonRef{{}}
	e.trailPos = []int{0}
	e.activity = []float64{0}
	e.phase = []bool{false}
	e.seen = []bool{false}
	e.watches = [][]*clause{nil, nil}
	e.occ = [][]occRef{nil, nil}
	return e
}

func (e *cdclEngine) growTo(n int) {
	for e.nVars < n {
		e.nVars++
		e.assign = append(e.assign, lUndef)
		e.level = append(e.level, 0)
		e.reason = append(e.reason, reasonRef{})
		e.trailPos = append(e.trailPos, 0)
		e.activity = append(e.activity, 0)
		e.phase = append(e.phase, false)
		e.seen = append(e.seen, false)
		e.watches = append(e.watches, nil, nil)
		e.occ = append(e.occ, nil, nil)
	}
	e.order.ensure(e.nVars, e.activity)
}

func (e *cdclEngine) value(l cnf.Lit) lbool {
	a := e.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

func (e *cdclEngine) decisionLevel() int { return len(e.trailAt) }

// addClause installs a clause at decision level 0.
func (e *cdclEngine) addClause(lits []cnf.Lit) bool {
	e.cancelUntil(0)
	norm, taut := cnf.Clause(lits).Normalize()
	if taut {
		return true
	}
	for _, l := range norm {
		if l.Var() > e.nVars {
			e.growTo(l.Var())
		}
	}
	kept := make([]cnf.Lit, 0, len(norm))
	for _, l := range norm {
		switch e.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	switch len(kept) {
	case 0:
		e.unsatNow = true
		return false
	case 1:
		if !e.enqueue(kept[0], reasonRef{}) || !e.propagateToFixpoint() {
			e.unsatNow = true
			return false
		}
		return true
	}
	c := &clause{lits: kept}
	e.clauses = append(e.clauses, c)
	e.watch(c)
	return true
}

// addConstraint installs a normalized PB constraint at decision level 0,
// initializing its slack against the current root assignment.
func (e *cdclEngine) addConstraint(c pb.Constraint) bool {
	e.cancelUntil(0)
	for _, t := range c.Terms {
		if t.Lit.Var() > e.nVars {
			e.growTo(t.Lit.Var())
		}
	}
	p := &pbc{terms: append([]pb.Term(nil), c.Terms...), bound: c.Bound}
	sortTermsDesc(p.terms)
	return e.installPBC(p)
}

// installPBC wires a PB constraint into the occurrence lists and propagates
// its immediate consequences. Must be called at decision level 0 for
// original constraints; learnt constraints may be installed at any level as
// long as they are implied by the database.
func (e *cdclEngine) installPBC(p *pbc) bool {
	p.slack = -p.bound
	for _, t := range p.terms {
		if e.value(t.Lit) != lFalse {
			p.slack += t.Coef
		}
		e.occ[litIdx(t.Lit)] = append(e.occ[litIdx(t.Lit)], occRef{p, t.Coef})
	}
	e.pbcs = append(e.pbcs, p)
	if p.slack < 0 {
		e.unsatNow = true
		return false
	}
	// Propagate forced literals (coef > slack).
	for _, t := range p.terms {
		if t.Coef <= p.slack {
			break
		}
		if e.value(t.Lit) == lUndef {
			if !e.enqueue(t.Lit, reasonRef{pc: p}) {
				e.unsatNow = true
				return false
			}
		}
	}
	if e.decisionLevel() == 0 && !e.propagateToFixpoint() {
		e.unsatNow = true
		return false
	}
	return true
}

func sortTermsDesc(terms []pb.Term) {
	// Insertion sort: constraint arity is small and mostly sorted inputs.
	for i := 1; i < len(terms); i++ {
		t := terms[i]
		j := i - 1
		for j >= 0 && terms[j].Coef < t.Coef {
			terms[j+1] = terms[j]
			j--
		}
		terms[j+1] = t
	}
}

func (e *cdclEngine) watch(c *clause) {
	i0, i1 := litIdx(c.lits[0].Neg()), litIdx(c.lits[1].Neg())
	e.watches[i0] = append(e.watches[i0], c)
	e.watches[i1] = append(e.watches[i1], c)
}

// enqueue assigns l true. PB slacks are updated here (and restored in
// cancelUntil) so that they reflect the assignment exactly at all times.
func (e *cdclEngine) enqueue(l cnf.Lit, from reasonRef) bool {
	switch e.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		e.assign[v] = lTrue
	} else {
		e.assign[v] = lFalse
	}
	e.phase[v] = l.Sign()
	e.level[v] = e.decisionLevel()
	e.reason[v] = from
	e.trailPos[v] = len(e.trail)
	e.trail = append(e.trail, l)
	for _, o := range e.occ[litIdx(l.Neg())] {
		o.c.slack -= o.coef
	}
	return true
}

func (e *cdclEngine) cancelUntil(level int) {
	if e.decisionLevel() <= level {
		return
	}
	bound := e.trailAt[level]
	for i := len(e.trail) - 1; i >= bound; i-- {
		l := e.trail[i]
		v := l.Var()
		e.assign[v] = lUndef
		e.reason[v] = reasonRef{}
		for _, o := range e.occ[litIdx(l.Neg())] {
			o.c.slack += o.coef
		}
		e.order.push(v, e.activity)
	}
	e.trail = e.trail[:bound]
	e.trailAt = e.trailAt[:level]
	e.qhead = len(e.trail)
}

// propagate processes the trail to fixpoint. It returns the conflicting
// clause or PB constraint (both nil when no conflict).
func (e *cdclEngine) propagate() (*clause, *pbc) {
	for e.qhead < len(e.trail) {
		p := e.trail[e.qhead]
		e.qhead++
		e.stats.Propagations++

		// Clause propagation (two watched literals).
		wl := litIdx(p)
		ws := e.watches[wl]
		kept := ws[:0]
		var confl *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if confl != nil {
				kept = append(kept, c)
				continue
			}
			falsified := p.Neg()
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if e.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if e.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					ni := litIdx(c.lits[1].Neg())
					e.watches[ni] = append(e.watches[ni], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, c)
			if !e.enqueue(c.lits[0], reasonRef{cl: c}) {
				confl = c
			}
		}
		e.watches[wl] = kept
		if confl != nil {
			return confl, nil
		}

		// PB propagation: constraints containing ¬p lost slack when p was
		// enqueued; check for violation and newly forced literals.
		for _, o := range e.occ[litIdx(p.Neg())] {
			c := o.c
			if c.slack < 0 {
				return nil, c
			}
			for _, t := range c.terms {
				if t.Coef <= c.slack {
					break
				}
				if e.value(t.Lit) == lUndef {
					if !e.enqueue(t.Lit, reasonRef{pc: c}) {
						// Cannot happen: an undef literal can always be set.
						panic("pbsolver: enqueue of undef literal failed")
					}
				}
			}
		}
	}
	return nil, nil
}

func (e *cdclEngine) propagateToFixpoint() bool {
	c, p := e.propagate()
	return c == nil && p == nil
}

// reasonLits expands a reason into the literals to resolve on (excluding
// the implied literal). For a PB reason of literal l, these are the
// literals of the constraint that were false before l was assigned.
func (e *cdclEngine) reasonLits(r reasonRef, implied cnf.Lit, out []cnf.Lit) []cnf.Lit {
	if r.cl != nil {
		if r.cl.lits[0].Var() != implied.Var() {
			panic("pbsolver: reason clause invariant violated")
		}
		return append(out, r.cl.lits[1:]...)
	}
	pos := e.trailPos[implied.Var()]
	for _, t := range r.pc.terms {
		if t.Lit.Var() == implied.Var() {
			continue
		}
		if e.value(t.Lit) == lFalse && e.trailPos[t.Lit.Var()] < pos {
			out = append(out, t.Lit)
		}
	}
	return out
}

// conflictLits expands a conflict into a clause-shaped set of false
// literals: for a clause conflict the clause itself; for a PB conflict all
// currently false literals of the constraint (at least one of them must be
// true in any satisfying assignment, since together they drove the slack
// negative).
func (e *cdclEngine) conflictLits(cl *clause, pc *pbc, out []cnf.Lit) []cnf.Lit {
	if cl != nil {
		return append(out, cl.lits...)
	}
	for _, t := range pc.terms {
		if e.value(t.Lit) == lFalse {
			out = append(out, t.Lit)
		}
	}
	return out
}

// analyze performs first-UIP conflict analysis over mixed clause/PB
// reasons; it returns the learnt clause (asserting literal first) and the
// backtrack level.
func (e *cdclEngine) analyze(confCl *clause, confPc *pbc) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{0}
	counter := 0
	var p cnf.Lit
	idx := len(e.trail) - 1
	cleanup := []int{}
	var scratch []cnf.Lit

	lits := e.conflictLits(confCl, confPc, scratch[:0])
	if confCl != nil && confCl.learnt {
		e.bumpClause(confCl)
	}
	for {
		for _, q := range lits {
			v := q.Var()
			if e.seen[v] || e.level[v] == 0 {
				continue
			}
			e.seen[v] = true
			cleanup = append(cleanup, v)
			e.bumpVar(v)
			if e.level[v] == e.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !e.seen[e.trail[idx].Var()] {
			idx--
		}
		p = e.trail[idx]
		idx--
		e.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		r := e.reason[p.Var()]
		if r.isNil() {
			panic("pbsolver: missing reason during analysis")
		}
		if r.cl != nil && r.cl.learnt {
			e.bumpClause(r.cl)
		}
		lits = e.reasonLits(r, p, scratch[:0])
	}
	learnt[0] = p.Neg()

	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if e.level[learnt[i].Var()] > e.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = e.level[learnt[1].Var()]
	}
	for _, v := range cleanup {
		e.seen[v] = false
	}
	return learnt, btLevel
}

func (e *cdclEngine) bumpVar(v int) {
	e.activity[v] += e.varInc
	if e.activity[v] > 1e100 {
		for i := 1; i <= e.nVars; i++ {
			e.activity[i] *= 1e-100
		}
		e.varInc *= 1e-100
	}
	e.order.update(v, e.activity)
}

func (e *cdclEngine) bumpClause(c *clause) {
	c.activity += e.claInc
	if c.activity > 1e20 {
		for _, lc := range e.learnts {
			lc.activity *= 1e-20
		}
		e.claInc *= 1e-20
	}
}

func (e *cdclEngine) decayActivities() {
	e.varInc /= e.opts.varDecay()
	e.claInc /= 0.999
}

func (e *cdclEngine) record(lits []cnf.Lit) {
	c := &clause{lits: append([]cnf.Lit(nil), lits...), learnt: true}
	if len(lits) > 1 {
		e.learnts = append(e.learnts, c)
		e.watch(c)
		e.bumpClause(c)
		e.stats.Learnts++
	}
	e.enqueue(lits[0], reasonRef{cl: c})
}

// learnCardinality derives and installs the cardinality reduction of a
// conflicting PB constraint (Galena's CARD learning): Σ lits ≥ r where r is
// the minimum number of true literals any satisfying assignment needs.
func (e *cdclEngine) learnCardinality(src *pbc) {
	if src.reduced || src.learnt {
		return
	}
	src.reduced = true
	if isCardinality(src) {
		return // reduction would be the constraint itself
	}
	r := cardinalityBound(src)
	if r <= 1 {
		return // degenerates to a clause; clause learning already covers it
	}
	terms := make([]pb.Term, len(src.terms))
	for i, t := range src.terms {
		terms[i] = pb.Term{Coef: 1, Lit: t.Lit}
	}
	p := &pbc{terms: terms, bound: r, learnt: true, reduced: true}
	// Install only when consistent with the current assignment; the
	// reduction is implied, so skipping is sound (pure heuristic).
	slack := -r
	for _, t := range terms {
		if e.value(t.Lit) != lFalse {
			slack++
		}
	}
	if slack < 0 {
		return
	}
	forced := false
	if slack == 0 {
		for _, t := range terms {
			if e.value(t.Lit) == lUndef {
				forced = true
				break
			}
		}
	}
	if forced {
		return // avoid out-of-band propagation; keep installation simple
	}
	e.installPBC(p)
	e.stats.LearntCards++
}

func isCardinality(c *pbc) bool {
	for _, t := range c.terms {
		if t.Coef != 1 {
			return false
		}
	}
	return true
}

// cardinalityBound returns the smallest r such that the r largest
// coefficients reach the bound (terms are sorted descending).
func cardinalityBound(c *pbc) int {
	sum := 0
	for i, t := range c.terms {
		sum += t.Coef
		if sum >= c.bound {
			return i + 1
		}
	}
	return len(c.terms) + 1 // unsatisfiable constraint
}

func (e *cdclEngine) pickBranchVar() int {
	for {
		v := e.order.pop(e.activity)
		if v == 0 {
			return 0
		}
		if e.assign[v] == lUndef {
			return v
		}
	}
}

func (e *cdclEngine) reduceDB() {
	if len(e.learnts) < 100 {
		return
	}
	acts := make([]float64, len(e.learnts))
	for i, c := range e.learnts {
		acts[i] = c.activity
	}
	med := quickMedian(acts)
	inUse := make(map[*clause]bool)
	for _, r := range e.reason {
		if r.cl != nil {
			inUse[r.cl] = true
		}
	}
	kept := e.learnts[:0]
	for _, c := range e.learnts {
		if len(c.lits) <= 2 || inUse[c] || c.activity >= med {
			kept = append(kept, c)
			continue
		}
		e.unwatch(c)
	}
	e.learnts = kept
}

func (e *cdclEngine) unwatch(c *clause) {
	for _, l := range []cnf.Lit{c.lits[0], c.lits[1]} {
		wl := litIdx(l.Neg())
		ws := e.watches[wl]
		for i, wc := range ws {
			if wc == c {
				ws[i] = ws[len(ws)-1]
				e.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// solveDecision runs CDCL search until SAT/UNSAT or budget exhaustion.
func (e *cdclEngine) solveDecision(budget *budget) Status {
	if e.unsatNow {
		return StatusUnsat
	}
	e.cancelUntil(0)
	if !e.propagateToFixpoint() {
		e.unsatNow = true
		return StatusUnsat
	}
	e.order.rebuild(e.nVars, e.activity)

	restartNum := int64(1)
	conflictsAtRestart := e.stats.Conflicts
	restartLimit := luby(restartNum) * e.opts.restartBase()
	checkCounter := 0

	for {
		checkCounter++
		if checkCounter >= 256 {
			checkCounter = 0
			if budget.expired() {
				e.cancelUntil(0)
				return StatusUnknown
			}
		}
		confCl, confPc := e.propagate()
		if confCl != nil || confPc != nil {
			e.stats.Conflicts++
			budget.conflicts++
			if e.decisionLevel() == 0 {
				e.unsatNow = true
				return StatusUnsat
			}
			learnt, btLevel := e.analyze(confCl, confPc)
			e.cancelUntil(btLevel)
			e.record(learnt)
			if e.opts.Engine == EngineGalena && confPc != nil {
				e.learnCardinality(confPc)
			}
			e.decayActivities()
			if budget.conflictsExceeded() {
				e.cancelUntil(0)
				return StatusUnknown
			}
			if e.stats.Conflicts-conflictsAtRestart >= restartLimit {
				e.stats.Restarts++
				restartNum++
				conflictsAtRestart = e.stats.Conflicts
				restartLimit = luby(restartNum) * e.opts.restartBase()
				e.cancelUntil(0)
				if len(e.learnts) > 4000+int(e.stats.Conflicts/10) {
					e.reduceDB()
				}
			}
			continue
		}
		v := e.pickBranchVar()
		if v == 0 {
			return StatusSat
		}
		e.stats.Decisions++
		e.trailAt = append(e.trailAt, len(e.trail))
		var l cnf.Lit
		if e.opts.phaseSaving() && e.phase[v] {
			l = cnf.PosLit(v)
		} else {
			l = cnf.NegLit(v)
		}
		e.enqueue(l, reasonRef{})
	}
}

func (e *cdclEngine) model() cnf.Assignment {
	m := make(cnf.Assignment, e.nVars+1)
	for v := 1; v <= e.nVars; v++ {
		m[v] = e.assign[v] == lTrue
	}
	return m
}

// budget tracks shared limits across the optimization loop's solver calls.
type budget struct {
	deadline     time.Time
	maxConflicts int64
	conflicts    int64
	done         <-chan struct{} // context cancellation, may be nil
}

func (b *budget) expired() bool {
	if b.done != nil {
		select {
		case <-b.done:
			return true
		default:
		}
	}
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

func (b *budget) conflictsExceeded() bool {
	return b.maxConflicts > 0 && b.conflicts >= b.maxConflicts
}

func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return cp[k]
}

package pbsolver

import (
	"time"

	"repro/internal/cnf"
	"repro/internal/pb"
	"repro/internal/solverutil"
)

// cdclEngine is the CDCL-based 0-1 ILP core shared by the PBS II, Galena,
// and Pueblo configurations: watched-literal clause propagation plus
// counter-based pseudo-Boolean propagation, first-UIP clause learning with
// PB reasons expanded to clauses, VSIDS decisions, Luby restarts. The
// EngineGalena configuration additionally learns cardinality reductions of
// conflicting PB constraints (CARD learning, Chai & Kuehlmann 2003).
//
// The clause database shares internal/solverutil's flat-arena layout with
// internal/sat: clauses are int32 offsets into one []uint32 store, watch
// lists carry {clause, blocker} structs, binary clauses are propagated
// inline from dedicated binary watch lists, and learnt-clause deletion is
// LBD-driven with periodic arena compaction.
type cdclEngine struct {
	opts Options

	nVars int
	db    solverutil.ClauseDB
	nBin  int // binary clauses (inline watch lists only)

	pbcs []*pbc
	// occ[litIdx(l)] lists PB constraints containing literal l together
	// with its coefficient: when l becomes false their slack drops.
	occ [][]occRef

	assign    []lbool
	level     []int
	reasonCl  []solverutil.CRef
	reasonBin []cnf.Lit
	reasonPB  []*pbc
	trailPos  []int
	trail     []cnf.Lit
	trailAt   []int
	qhead     int

	activity []float64
	varInc   float64
	order    solverutil.VarHeap
	phase    []bool

	claInc   float64
	seen     []bool
	lbd      solverutil.LBDCounter
	unsatNow bool

	// Reusable conflict-analysis buffers (never retained by callers).
	learntBuf  []cnf.Lit
	scratchBuf []cnf.Lit
	cleanupBuf []int

	// Vivification cursors: where the next restart's pass resumes in the
	// problem and learnt clause lists (round-robin under the budget).
	vivHeadCl int
	vivHeadLt int
	vivBuf    []cnf.Lit
	probing   bool // vivification probe in progress: don't save phases

	impBuf []solverutil.SharedClause // reusable Import drain buffer

	prog solverutil.ProgressEmitter
	// incumbent mirrors the surrounding optimization loop's best objective
	// so far (-1 = none yet) for progress snapshots.
	incumbent int

	stats Stats
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// pbc is a PB constraint with counter-based propagation state: slack is
// Σ coefficients of non-false literals − bound, maintained incrementally on
// every assignment.
type pbc struct {
	terms   []pb.Term // sorted by descending coefficient
	bound   int
	slack   int
	learnt  bool
	reduced bool // cardinality reduction already derived (Galena)
}

type occRef struct {
	c    *pbc
	coef int
}

// conflict identifies what falsified the trail: an arena clause, an inline
// binary clause (a ∨ b), or a PB constraint.
type conflict struct {
	cref solverutil.CRef
	a, b cnf.Lit
	pc   *pbc
}

var noConflict = conflict{cref: solverutil.CRefUndef}

func (c conflict) isConflict() bool {
	return c.cref != solverutil.CRefUndef || c.a != 0 || c.pc != nil
}

func litIdx(l cnf.Lit) int {
	v := l.Var()
	if l.Sign() {
		return 2 * v
	}
	return 2*v + 1
}

func newCDCL(opts Options) *cdclEngine {
	e := &cdclEngine{opts: opts, varInc: 1, claInc: 1, incumbent: -1}
	e.prog = solverutil.NewProgressEmitter(opts.Progress, opts.ProgressInterval)
	e.assign = []lbool{lUndef}
	e.level = []int{0}
	e.reasonCl = []solverutil.CRef{solverutil.CRefUndef}
	e.reasonBin = []cnf.Lit{0}
	e.reasonPB = []*pbc{nil}
	e.trailPos = []int{0}
	e.activity = []float64{0}
	e.phase = []bool{false}
	e.seen = []bool{false}
	e.db.Init()
	e.occ = [][]occRef{nil, nil}
	return e
}

func (e *cdclEngine) growTo(n int) {
	for e.nVars < n {
		e.nVars++
		e.assign = append(e.assign, lUndef)
		e.level = append(e.level, 0)
		e.reasonCl = append(e.reasonCl, solverutil.CRefUndef)
		e.reasonBin = append(e.reasonBin, 0)
		e.reasonPB = append(e.reasonPB, nil)
		e.trailPos = append(e.trailPos, 0)
		e.activity = append(e.activity, 0)
		e.phase = append(e.phase, false)
		e.seen = append(e.seen, false)
		e.db.GrowVar()
		e.occ = append(e.occ, nil, nil)
	}
	e.order.Ensure(e.nVars, e.activity)
}

func (e *cdclEngine) value(l cnf.Lit) lbool {
	a := e.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

func (e *cdclEngine) valueEnc(u uint32) lbool {
	a := e.assign[u>>1]
	if a == lUndef {
		return lUndef
	}
	if (u&1 == 0) == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

func (e *cdclEngine) decisionLevel() int { return len(e.trailAt) }

// addClause installs a clause at decision level 0.
func (e *cdclEngine) addClause(lits []cnf.Lit) bool {
	e.cancelUntil(0)
	norm, taut := cnf.Clause(lits).Normalize()
	if taut {
		return true
	}
	for _, l := range norm {
		if l.Var() > e.nVars {
			e.growTo(l.Var())
		}
	}
	kept := make([]cnf.Lit, 0, len(norm))
	for _, l := range norm {
		switch e.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	switch len(kept) {
	case 0:
		e.unsatNow = true
		return false
	case 1:
		if !e.enqueue(kept[0], noReason) || !e.propagateToFixpoint() {
			e.unsatNow = true
			return false
		}
		return true
	case 2:
		e.db.AttachBinary(kept[0], kept[1])
		e.nBin++
		return true
	}
	c := e.db.Arena.Alloc(kept, false)
	e.db.Clauses = append(e.db.Clauses, c)
	e.db.Attach(c)
	return true
}

// addConstraint installs a normalized PB constraint at decision level 0,
// initializing its slack against the current root assignment.
func (e *cdclEngine) addConstraint(c pb.Constraint) bool {
	e.cancelUntil(0)
	for _, t := range c.Terms {
		if t.Lit.Var() > e.nVars {
			e.growTo(t.Lit.Var())
		}
	}
	p := &pbc{terms: append([]pb.Term(nil), c.Terms...), bound: c.Bound}
	sortTermsDesc(p.terms)
	return e.installPBC(p)
}

// installPBC wires a PB constraint into the occurrence lists and propagates
// its immediate consequences. Must be called at decision level 0 for
// original constraints; learnt constraints may be installed at any level as
// long as they are implied by the database.
func (e *cdclEngine) installPBC(p *pbc) bool {
	p.slack = -p.bound
	for _, t := range p.terms {
		if e.value(t.Lit) != lFalse {
			p.slack += t.Coef
		}
		e.occ[litIdx(t.Lit)] = append(e.occ[litIdx(t.Lit)], occRef{p, t.Coef})
	}
	e.pbcs = append(e.pbcs, p)
	if p.slack < 0 {
		e.unsatNow = true
		return false
	}
	// Propagate forced literals (coef > slack).
	for _, t := range p.terms {
		if t.Coef <= p.slack {
			break
		}
		if e.value(t.Lit) == lUndef {
			if !e.enqueue(t.Lit, reasonRef{cl: solverutil.CRefUndef, pc: p}) {
				e.unsatNow = true
				return false
			}
		}
	}
	if e.decisionLevel() == 0 && !e.propagateToFixpoint() {
		e.unsatNow = true
		return false
	}
	return true
}

func sortTermsDesc(terms []pb.Term) {
	// Insertion sort: constraint arity is small and mostly sorted inputs.
	for i := 1; i < len(terms); i++ {
		t := terms[i]
		j := i - 1
		for j >= 0 && terms[j].Coef < t.Coef {
			terms[j+1] = terms[j]
			j--
		}
		terms[j+1] = t
	}
}

// reasonRef is the source of an implication: an arena clause, the other
// literal of a binary clause, or a PB constraint.
type reasonRef struct {
	cl  solverutil.CRef
	bin cnf.Lit
	pc  *pbc
}

var noReason = reasonRef{cl: solverutil.CRefUndef}

// enqueue assigns l true. PB slacks are updated here (and restored in
// cancelUntil) so that they reflect the assignment exactly at all times.
func (e *cdclEngine) enqueue(l cnf.Lit, from reasonRef) bool {
	switch e.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	e.uncheckedEnqueue(l, from)
	return true
}

func (e *cdclEngine) uncheckedEnqueue(l cnf.Lit, from reasonRef) {
	v := l.Var()
	if l.Sign() {
		e.assign[v] = lTrue
	} else {
		e.assign[v] = lFalse
	}
	if !e.probing {
		// Vivification's artificial probe assignments must not overwrite
		// polarities saved from the real search trajectory.
		e.phase[v] = l.Sign()
	}
	e.level[v] = e.decisionLevel()
	e.reasonCl[v] = from.cl
	e.reasonBin[v] = from.bin
	e.reasonPB[v] = from.pc
	e.trailPos[v] = len(e.trail)
	e.trail = append(e.trail, l)
	for _, o := range e.occ[litIdx(l.Neg())] {
		o.c.slack -= o.coef
	}
}

func (e *cdclEngine) cancelUntil(level int) {
	if e.decisionLevel() <= level {
		return
	}
	bound := e.trailAt[level]
	for i := len(e.trail) - 1; i >= bound; i-- {
		l := e.trail[i]
		v := l.Var()
		e.assign[v] = lUndef
		e.reasonCl[v] = solverutil.CRefUndef
		e.reasonBin[v] = 0
		e.reasonPB[v] = nil
		for _, o := range e.occ[litIdx(l.Neg())] {
			o.c.slack += o.coef
		}
		e.order.Push(v, e.activity)
	}
	e.trail = e.trail[:bound]
	e.trailAt = e.trailAt[:level]
	e.qhead = len(e.trail)
}

// propagate processes the trail to fixpoint: inline binary clauses, then
// long clauses through blocker-carrying watchers, then counter-based PB
// propagation. Returns the conflict (noConflict if none).
func (e *cdclEngine) propagate() conflict {
	for e.qhead < len(e.trail) {
		p := e.trail[e.qhead]
		e.qhead++
		e.stats.Propagations++
		wl := solverutil.EncodeLit(p)
		falsified := p.Neg()

		// Inline binary propagation.
		for _, imp := range e.db.BinWatches[wl] {
			switch e.valueEnc(imp) {
			case lFalse:
				e.qhead = len(e.trail)
				return conflict{cref: solverutil.CRefUndef, a: falsified, b: solverutil.DecodeLit(imp)}
			case lUndef:
				e.uncheckedEnqueue(solverutil.DecodeLit(imp), reasonRef{cl: solverutil.CRefUndef, bin: falsified})
			}
		}

		// Long clauses (two watched literals with blockers).
		ws := e.db.Watches[wl]
		fEnc := solverutil.EncodeLit(falsified)
		i, j := 0, 0
		confl := noConflict
		for i < len(ws) {
			w := ws[i]
			if e.valueEnc(w.Blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.CRef
			lits := e.db.Arena.Lits(c)
			if lits[0] == fEnc {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			nw := solverutil.Watcher{CRef: c, Blocker: first}
			if first != w.Blocker && e.valueEnc(first) == lTrue {
				ws[j] = nw
				i++
				j++
				continue
			}
			moved := false
			for k := 2; k < len(lits); k++ {
				if e.valueEnc(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					e.db.Watches[lits[1]^1] = append(e.db.Watches[lits[1]^1], nw)
					moved = true
					break
				}
			}
			i++
			if moved {
				continue
			}
			ws[j] = nw
			j++
			if e.valueEnc(first) == lFalse {
				for ; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				confl = conflict{cref: c}
				break
			}
			e.uncheckedEnqueue(solverutil.DecodeLit(first), reasonRef{cl: c})
		}
		e.db.Watches[wl] = ws[:j]
		if confl.isConflict() {
			e.qhead = len(e.trail)
			return confl
		}

		// PB propagation: constraints containing ¬p lost slack when p was
		// enqueued; check for violation and newly forced literals.
		for _, o := range e.occ[litIdx(p.Neg())] {
			c := o.c
			if c.slack < 0 {
				e.qhead = len(e.trail)
				return conflict{cref: solverutil.CRefUndef, pc: c}
			}
			for _, t := range c.terms {
				if t.Coef <= c.slack {
					break
				}
				if e.value(t.Lit) == lUndef {
					e.uncheckedEnqueue(t.Lit, reasonRef{cl: solverutil.CRefUndef, pc: c})
				}
			}
		}
	}
	return noConflict
}

func (e *cdclEngine) propagateToFixpoint() bool {
	return !e.propagate().isConflict()
}

// conflictLits appends the conflict's clause-shaped literal set to out: for
// a clause conflict the clause itself; for a PB conflict all currently
// false literals of the constraint (at least one of them must be true in
// any satisfying assignment, since together they drove the slack negative).
func (e *cdclEngine) conflictLits(confl conflict, out []cnf.Lit) []cnf.Lit {
	switch {
	case confl.cref != solverutil.CRefUndef:
		if e.db.Arena.Learnt(confl.cref) {
			e.bumpClause(confl.cref)
			e.updateLBD(confl.cref)
		}
		for _, u := range e.db.Arena.Lits(confl.cref) {
			out = append(out, solverutil.DecodeLit(u))
		}
	case confl.pc != nil:
		for _, t := range confl.pc.terms {
			if e.value(t.Lit) == lFalse {
				out = append(out, t.Lit)
			}
		}
	default:
		out = append(out, confl.a, confl.b)
	}
	return out
}

// reasonLits appends the literals to resolve on (excluding the implied
// literal) to out. For a PB reason of variable v, these are the literals of
// the constraint that were false before v was assigned.
func (e *cdclEngine) reasonLits(v int, out []cnf.Lit) []cnf.Lit {
	if rc := e.reasonCl[v]; rc != solverutil.CRefUndef {
		if e.db.Arena.Learnt(rc) {
			e.bumpClause(rc)
			e.updateLBD(rc)
		}
		lits := e.db.Arena.Lits(rc)
		if lits[0]>>1 != uint32(v) {
			panic("pbsolver: reason clause invariant violated")
		}
		for _, u := range lits[1:] {
			out = append(out, solverutil.DecodeLit(u))
		}
		return out
	}
	if rb := e.reasonBin[v]; rb != 0 {
		return append(out, rb)
	}
	if rp := e.reasonPB[v]; rp != nil {
		pos := e.trailPos[v]
		for _, t := range rp.terms {
			if t.Lit.Var() == v {
				continue
			}
			if e.value(t.Lit) == lFalse && e.trailPos[t.Lit.Var()] < pos {
				out = append(out, t.Lit)
			}
		}
		return out
	}
	panic("pbsolver: missing reason during analysis")
}

// analyze performs first-UIP conflict analysis over mixed clause/binary/PB
// reasons; it returns the learnt clause (asserting literal first), the
// backtrack level, and the learnt clause's LBD. The returned slice is a
// reusable buffer, valid until the next analyze call.
func (e *cdclEngine) analyze(confl conflict) ([]cnf.Lit, int, int) {
	learnt := append(e.learntBuf[:0], 0)
	cleanup := e.cleanupBuf[:0]
	counter := 0
	var p cnf.Lit
	idx := len(e.trail) - 1

	lits := e.conflictLits(confl, e.scratchBuf[:0])
	for {
		for _, q := range lits {
			v := q.Var()
			if e.seen[v] || e.level[v] == 0 {
				continue
			}
			e.seen[v] = true
			cleanup = append(cleanup, v)
			e.bumpVar(v)
			if e.level[v] == e.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !e.seen[e.trail[idx].Var()] {
			idx--
		}
		p = e.trail[idx]
		idx--
		e.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		lits = e.reasonLits(p.Var(), lits[:0])
	}
	learnt[0] = p.Neg()
	e.scratchBuf = lits[:0]

	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if e.level[learnt[i].Var()] > e.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = e.level[learnt[1].Var()]
	}
	lbd := e.computeLBD(learnt)
	for _, v := range cleanup {
		e.seen[v] = false
	}
	e.learntBuf = learnt
	e.cleanupBuf = cleanup[:0]
	return learnt, btLevel, lbd
}

// computeLBD returns the number of distinct decision levels among the
// literals (Audemard & Simon's literal-blocks distance).
func (e *cdclEngine) computeLBD(lits []cnf.Lit) int {
	return e.lbd.CountLits(lits, e.level)
}

// updateLBD recomputes a learnt clause's LBD against the current level
// structure and lowers the stored value when it improved (dynamic LBD;
// no-op unless Options.DynamicLBD is set).
func (e *cdclEngine) updateLBD(c solverutil.CRef) {
	if !e.opts.DynamicLBD {
		return
	}
	if n := e.lbd.Count(e.db.Arena.Lits(c), e.level); n < e.db.Arena.LBD(c) {
		e.db.Arena.SetLBD(c, n)
		e.stats.LBDUpdates++
	}
}

func (e *cdclEngine) bumpVar(v int) {
	e.activity[v] += e.varInc
	if e.activity[v] > 1e100 {
		for i := 1; i <= e.nVars; i++ {
			e.activity[i] *= 1e-100
		}
		e.varInc *= 1e-100
	}
	e.order.Update(v, e.activity)
}

func (e *cdclEngine) bumpClause(c solverutil.CRef) {
	act := e.db.Arena.Activity(c) + float32(e.claInc)
	e.db.Arena.SetActivity(c, act)
	if act > 1e20 {
		for _, lc := range e.db.Learnts {
			e.db.Arena.SetActivity(lc, e.db.Arena.Activity(lc)*1e-20)
		}
		e.claInc *= 1e-20
	}
}

func (e *cdclEngine) decayActivities() {
	e.varInc /= e.opts.varDecay()
	e.claInc /= 0.999
}

func (e *cdclEngine) record(lits []cnf.Lit, lbd int) {
	switch len(lits) {
	case 1:
		e.uncheckedEnqueue(lits[0], noReason)
	case 2:
		e.db.AttachBinary(lits[0], lits[1])
		e.stats.Learnts++
		e.uncheckedEnqueue(lits[0], reasonRef{cl: solverutil.CRefUndef, bin: lits[1]})
	default:
		c := e.db.Arena.Alloc(lits, true)
		e.db.Arena.SetLBD(c, lbd)
		e.db.Learnts = append(e.db.Learnts, c)
		e.db.Attach(c)
		e.bumpClause(c)
		e.stats.Learnts++
		e.uncheckedEnqueue(lits[0], reasonRef{cl: c})
	}
}

// learnCardinality derives and installs the cardinality reduction of a
// conflicting PB constraint (Galena's CARD learning): Σ lits ≥ r where r is
// the minimum number of true literals any satisfying assignment needs.
func (e *cdclEngine) learnCardinality(src *pbc) {
	if src.reduced || src.learnt {
		return
	}
	src.reduced = true
	if isCardinality(src) {
		return // reduction would be the constraint itself
	}
	r := cardinalityBound(src)
	if r <= 1 {
		return // degenerates to a clause; clause learning already covers it
	}
	terms := make([]pb.Term, len(src.terms))
	for i, t := range src.terms {
		terms[i] = pb.Term{Coef: 1, Lit: t.Lit}
	}
	p := &pbc{terms: terms, bound: r, learnt: true, reduced: true}
	// Install only when consistent with the current assignment; the
	// reduction is implied, so skipping is sound (pure heuristic).
	slack := -r
	for _, t := range terms {
		if e.value(t.Lit) != lFalse {
			slack++
		}
	}
	if slack < 0 {
		return
	}
	forced := false
	if slack == 0 {
		for _, t := range terms {
			if e.value(t.Lit) == lUndef {
				forced = true
				break
			}
		}
	}
	if forced {
		return // avoid out-of-band propagation; keep installation simple
	}
	e.installPBC(p)
	e.stats.LearntCards++
}

func isCardinality(c *pbc) bool {
	for _, t := range c.terms {
		if t.Coef != 1 {
			return false
		}
	}
	return true
}

// cardinalityBound returns the smallest r such that the r largest
// coefficients reach the bound (terms are sorted descending).
func cardinalityBound(c *pbc) int {
	sum := 0
	for i, t := range c.terms {
		sum += t.Coef
		if sum >= c.bound {
			return i + 1
		}
	}
	return len(c.terms) + 1 // unsatisfiable constraint
}

// exportLearnt offers a freshly learnt clause to the Export hook when its
// LBD passes the sharing threshold. lits is the reusable analysis buffer;
// the hook contract requires the receiver to copy.
func (e *cdclEngine) exportLearnt(lits []cnf.Lit, lbd int) {
	if e.opts.Export == nil || lbd > e.opts.exportLBD() || len(lits) > solverutil.MaxShareLen {
		return
	}
	e.opts.Export(lits, lbd)
	e.stats.Exported++
}

// importShared drains the Import hook and attaches the foreign clauses as
// learnt clauses. Must be called at decision level 0. Returns false when an
// imported clause (necessarily implied by the database) exposes root
// unsatisfiability.
func (e *cdclEngine) importShared() bool {
	if e.opts.Import == nil {
		return true
	}
	e.impBuf = e.opts.Import(e.impBuf[:0])
	for _, sc := range e.impBuf {
		if !e.addSharedClause(sc.Lits, sc.LBD) {
			return false
		}
	}
	return true
}

// addSharedClause attaches one imported clause at decision level 0. Unlike
// addClause, the clause enters the learnt database (tiered by the
// exporter's LBD) so the reduction policy can drop it again if it never
// helps. Returns false on root conflict.
func (e *cdclEngine) addSharedClause(lits []cnf.Lit, lbd int) bool {
	norm, taut := cnf.Clause(lits).Normalize()
	if taut {
		return true
	}
	for _, l := range norm {
		if l.Var() > e.nVars {
			e.growTo(l.Var())
		}
	}
	kept := norm[:0]
	for _, l := range norm {
		switch e.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	e.stats.Imported++
	switch len(kept) {
	case 0:
		return false
	case 1:
		if !e.enqueue(kept[0], noReason) {
			return false
		}
		return e.propagateToFixpoint()
	case 2:
		e.db.AttachBinary(kept[0], kept[1])
		return true
	}
	c := e.db.Arena.Alloc(kept, true)
	e.db.Arena.SetLBD(c, lbd)
	e.db.Learnts = append(e.db.Learnts, c)
	e.db.Attach(c)
	return true
}

func (e *cdclEngine) pickBranchVar() int {
	for {
		v := e.order.Pop(e.activity)
		if v == 0 {
			return 0
		}
		if e.assign[v] == lUndef {
			return v
		}
	}
}

// locked reports whether the clause is the reason of its first literal's
// current assignment.
func (e *cdclEngine) locked(c solverutil.CRef) bool {
	v := int(e.db.Arena.Lits(c)[0] >> 1)
	return e.reasonCl[v] == c && e.assign[v] != lUndef
}

// reduceDB runs one LBD-based learnt-database reduction, compacting the
// arena when freed clauses waste more than a quarter of it.
func (e *cdclEngine) reduceDB() {
	removed := e.db.Reduce(e.opts.glueLBD(), e.locked)
	if removed == 0 {
		return
	}
	e.stats.Reduces++
	e.stats.Removed += int64(removed)
	if e.db.NeedsGC() {
		e.garbageCollect()
	}
}

// garbageCollect compacts the arena, remapping clause lists, watchers and
// reason references.
func (e *cdclEngine) garbageCollect() {
	e.db.GC(func(reloc func(solverutil.CRef) solverutil.CRef) {
		for v := 1; v <= e.nVars; v++ {
			if e.assign[v] != lUndef && e.reasonCl[v] != solverutil.CRefUndef {
				e.reasonCl[v] = reloc(e.reasonCl[v])
			}
		}
	})
	e.stats.ArenaGCs++
}

// solveDecision runs CDCL search until SAT/UNSAT or budget exhaustion.
func (e *cdclEngine) solveDecision(budget *budget) Status {
	return e.solveDecisionAssuming(budget, nil)
}

// solveDecisionAssuming runs the CDCL search with the given assumption
// literals enforced as the first decisions of every descent (the mechanism
// internal/par seeds cubes with). StatusUnsat then means "unsatisfiable
// under the assumptions" unless unsatNow was additionally set, in which
// case the database itself is contradictory; the engine stays usable and
// all learning carries over to later calls.
func (e *cdclEngine) solveDecisionAssuming(budget *budget, assumptions []cnf.Lit) Status {
	if e.unsatNow {
		return StatusUnsat
	}
	for _, a := range assumptions {
		if a.Var() > e.nVars {
			e.growTo(a.Var())
		}
	}
	e.cancelUntil(0)
	if !e.propagateToFixpoint() {
		e.unsatNow = true
		return StatusUnsat
	}
	if !e.importShared() {
		e.unsatNow = true
		return StatusUnsat
	}
	e.order.Rebuild(e.nVars, e.activity)

	restartNum := int64(1)
	conflictsAtRestart := e.stats.Conflicts
	restartLimit := solverutil.Luby(restartNum) * e.opts.restartBase()
	reduceInterval := e.opts.reduceInterval()
	nextReduce := e.stats.Conflicts + reduceInterval
	checkCounter := 0

	for {
		checkCounter++
		if checkCounter >= 256 {
			checkCounter = 0
			if budget.expired() {
				e.cancelUntil(0)
				return StatusUnknown
			}
			if e.prog.Ready() {
				e.prog.Emit(e.progressSnapshot())
			}
		}
		confl := e.propagate()
		if confl.isConflict() {
			e.stats.Conflicts++
			budget.conflicts++
			if e.decisionLevel() == 0 {
				e.unsatNow = true
				return StatusUnsat
			}
			learnt, btLevel, lbd := e.analyze(confl)
			e.exportLearnt(learnt, lbd)
			// Chronological backtracking: when the backjump would undo
			// more than ChronoThreshold levels, retreat one level instead
			// and assert the learnt clause there (all its other literals
			// sit at levels ≤ the computed backjump level and stay false).
			// Simple variant — the literal is recorded at the retreat
			// level, not its true assertion level; see internal/sat for
			// the tradeoff.
			if t := e.opts.ChronoThreshold; t > 0 && btLevel > 0 && e.decisionLevel()-btLevel > t {
				btLevel = e.decisionLevel() - 1
				e.stats.ChronoBacktracks++
			}
			e.cancelUntil(btLevel)
			e.record(learnt, lbd)
			if e.opts.Engine == EngineGalena && confl.pc != nil {
				e.learnCardinality(confl.pc)
			}
			e.decayActivities()
			if budget.conflictsExceeded() {
				e.cancelUntil(0)
				return StatusUnknown
			}
			if e.stats.Conflicts >= nextReduce {
				e.reduceDB()
				reduceInterval += e.opts.reduceInterval() / 8
				nextReduce = e.stats.Conflicts + reduceInterval
			}
			if e.stats.Conflicts-conflictsAtRestart >= restartLimit {
				e.stats.Restarts++
				restartNum++
				conflictsAtRestart = e.stats.Conflicts
				restartLimit = solverutil.Luby(restartNum) * e.opts.restartBase()
				e.cancelUntil(0)
				if !e.importShared() {
					e.unsatNow = true
					return StatusUnsat
				}
				if e.opts.VivifyBudget > 0 && !e.vivify(e.opts.VivifyBudget) {
					e.unsatNow = true
					return StatusUnsat
				}
			}
			continue
		}
		// Assumptions occupy the first decision levels; after any backjump
		// below them they are re-applied here before free decisions resume.
		if dl := e.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			switch e.value(a) {
			case lFalse:
				e.cancelUntil(0)
				return StatusUnsat // conflicts with the assumptions
			case lTrue:
				e.trailAt = append(e.trailAt, len(e.trail)) // empty level
			default:
				e.trailAt = append(e.trailAt, len(e.trail))
				e.uncheckedEnqueue(a, noReason)
			}
			continue
		}
		v := e.pickBranchVar()
		if v == 0 {
			return StatusSat
		}
		e.stats.Decisions++
		e.trailAt = append(e.trailAt, len(e.trail))
		var l cnf.Lit
		if e.opts.phaseSaving() && e.phase[v] {
			l = cnf.PosLit(v)
		} else {
			l = cnf.NegLit(v)
		}
		e.uncheckedEnqueue(l, noReason)
	}
}

// progressSnapshot assembles the engine's counters for a progress
// callback, tagged with the engine name and the optimization loop's
// current incumbent.
func (e *cdclEngine) progressSnapshot() solverutil.Progress {
	return solverutil.Progress{
		Engine:           e.opts.Engine.String(),
		Incumbent:        e.incumbent,
		Conflicts:        e.stats.Conflicts,
		Decisions:        e.stats.Decisions,
		Propagations:     e.stats.Propagations,
		Restarts:         e.stats.Restarts,
		Learnts:          e.stats.Learnts,
		Reduces:          e.stats.Reduces,
		Removed:          e.stats.Removed,
		ChronoBacktracks: e.stats.ChronoBacktracks,
		VivifiedLits:     e.stats.VivifiedLits,
		LBDUpdates:       e.stats.LBDUpdates,
	}
}

// noteIncumbent records an improved objective and reports it immediately
// (incumbent improvements are milestone events, exempt from rate
// limiting).
func (e *cdclEngine) noteIncumbent(z int) {
	e.incumbent = z
	if e.prog.Enabled() {
		e.prog.Emit(e.progressSnapshot())
	}
}

func (e *cdclEngine) model() cnf.Assignment {
	m := make(cnf.Assignment, e.nVars+1)
	for v := 1; v <= e.nVars; v++ {
		m[v] = e.assign[v] == lTrue
	}
	return m
}

// budget tracks shared limits across the optimization loop's solver calls.
type budget struct {
	deadline     time.Time
	maxConflicts int64
	conflicts    int64
	done         <-chan struct{} // context cancellation, may be nil
}

func (b *budget) expired() bool {
	if b.done != nil {
		select {
		case <-b.done:
			return true
		default:
		}
	}
	return !b.deadline.IsZero() && time.Now().After(b.deadline)
}

func (b *budget) conflictsExceeded() bool {
	return b.maxConflicts > 0 && b.conflicts >= b.maxConflicts
}

package pbsolver

import (
	"repro/internal/solverutil"
)

// vivify runs one budgeted vivification pass over the long problem and
// learnt clauses, exactly as internal/sat's pass (see that file for the
// soundness argument): at decision level 0 each clause is detached and its
// literals' negations are assumed one at a time; literals implied false
// under the prefix are dropped, and a conflict or an implied-true literal
// truncates the clause to its prefix. Propagation here runs the full mixed
// closure — clauses, binary watch lists, and PB constraints — so PB-implied
// redundancies are removed too. Returns false when the formula was proven
// unsatisfiable at level 0.
func (e *cdclEngine) vivify(budget int64) bool {
	// The restart may fire in the same iteration that enqueued a level-0
	// asserting literal; reach the fixpoint before probing so that probe
	// levels never swallow level-0 implications.
	if !e.propagateToFixpoint() {
		return false
	}
	e.probing = true
	defer func() { e.probing = false }()
	start := e.stats.Propagations
	for pass := 0; pass < 2; pass++ {
		list, cur := &e.db.Clauses, &e.vivHeadCl
		if pass == 1 {
			list, cur = &e.db.Learnts, &e.vivHeadLt
		}
		if *cur >= len(*list) {
			*cur = 0
		}
		for *cur < len(*list) {
			if e.stats.Propagations-start >= budget {
				return true
			}
			c := (*list)[*cur]
			if e.locked(c) {
				*cur++
				continue
			}
			nc, ok := e.vivifyClause(c, pass == 1)
			if !ok {
				return false
			}
			if nc == solverutil.CRefUndef {
				(*list)[*cur] = (*list)[len(*list)-1]
				*list = (*list)[:len(*list)-1]
				continue
			}
			(*list)[*cur] = nc
			*cur++
		}
		*cur = 0
	}
	if e.db.NeedsGC() {
		e.garbageCollect()
	}
	return true
}

// vivifyClause probes one clause; see internal/sat.(*Solver).vivifyClause.
func (e *cdclEngine) vivifyClause(c solverutil.CRef, learnt bool) (solverutil.CRef, bool) {
	origSize := e.db.Arena.Size(c)
	e.db.Detach(c)
	out := e.vivBuf[:0]
	satisfiedAtRoot := false
probe:
	for i := 0; i < origSize; i++ {
		l := solverutil.DecodeLit(e.db.Arena.Lits(c)[i])
		switch e.value(l) {
		case lTrue:
			if e.level[l.Var()] == 0 {
				satisfiedAtRoot = true
			} else {
				out = append(out, l)
			}
			break probe
		case lFalse:
			continue
		}
		out = append(out, l)
		if i == origSize-1 {
			break
		}
		e.trailAt = append(e.trailAt, len(e.trail))
		e.uncheckedEnqueue(l.Neg(), noReason)
		if e.propagate().isConflict() {
			break
		}
	}
	e.cancelUntil(0)
	e.vivBuf = out
	if satisfiedAtRoot {
		e.db.Arena.Free(c)
		return solverutil.CRefUndef, true
	}
	if len(out) == origSize {
		e.db.Attach(c)
		return c, true
	}
	e.stats.VivifiedLits += int64(origSize - len(out))
	switch len(out) {
	case 0:
		e.db.Arena.Free(c)
		return solverutil.CRefUndef, false
	case 1:
		e.db.Arena.Free(c)
		if !e.enqueue(out[0], noReason) || !e.propagateToFixpoint() {
			return solverutil.CRefUndef, false
		}
		return solverutil.CRefUndef, true
	case 2:
		e.db.AttachBinary(out[0], out[1])
		if !learnt {
			e.nBin++
		}
		e.db.Arena.Free(c)
		return solverutil.CRefUndef, true
	default:
		lbd := e.db.Arena.LBD(c)
		act := e.db.Arena.Activity(c)
		nc := e.db.Arena.Alloc(out, learnt)
		if learnt {
			if lbd > len(out)-1 {
				lbd = len(out) - 1
			}
			e.db.Arena.SetLBD(nc, lbd)
			e.db.Arena.SetActivity(nc, act)
		}
		e.db.Arena.Free(c)
		e.db.Attach(nc)
		return nc, true
	}
}

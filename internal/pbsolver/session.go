package pbsolver

import (
	"context"

	"repro/internal/cnf"
	"repro/internal/pb"
)

// Session is an incremental handle on one CDCL engine: the formula is
// loaded once, and repeated assumption-based decision probes reuse all
// learning (clauses, activities, saved phases) across calls. It is the
// engine-side primitive of internal/par's cube-and-conquer scheduler: each
// conquer worker owns one Session, solves cube after cube through
// DecideAssuming, and tightens the shared objective bound with
// AddObjectiveBound as global incumbents improve.
//
// A Session is not safe for concurrent use; parallelism comes from running
// one Session per goroutine (they may share Export/Import hooks — see
// Options). EngineBnB has no incremental core; NewSession falls back to
// EnginePBS for it.
type Session struct {
	e         *cdclEngine
	f         *pb.Formula
	bgt       *budget
	rootUnsat bool
	stats     Stats
}

// NewSession loads the formula into a fresh CDCL engine. The ctx and
// opts.Timeout/opts.MaxConflicts budgets are pinned at creation and span
// every probe of the session (Timeout is relative to the NewSession call).
// A root-unsatisfiable formula yields a usable session whose probes all
// return StatusUnsat with RootUnsat() true.
func NewSession(ctx context.Context, f *pb.Formula, opts Options) *Session {
	if opts.Engine == EngineBnB {
		opts.Engine = EnginePBS
	}
	s := &Session{f: f, bgt: opts.newBudget(ctx)}
	s.e = buildCDCL(f, opts)
	if s.e == nil {
		s.rootUnsat = true
	}
	return s
}

// DecideAssuming runs one decision probe with the assumptions enforced as
// the first decisions. StatusUnsat means "no model under the assumptions";
// when RootUnsat() additionally reports true, the database itself is
// contradictory and every future probe is StatusUnsat too.
func (s *Session) DecideAssuming(assumptions []cnf.Lit) Status {
	if s.rootUnsat {
		return StatusUnsat
	}
	st := s.e.solveDecisionAssuming(s.bgt, assumptions)
	s.stats.SolverCalls++
	if s.e.unsatNow {
		s.rootUnsat = true
	}
	return st
}

// AddObjectiveBound adds Σ objective ≤ bound to the live engine. Returns
// false when the bound is infeasible at the root — given that every clause
// in the engine is implied by the formula plus previously justified
// bounds, that refutes "objective ≤ bound" globally, not just in the
// current cube. The engine remains usable either way.
func (s *Session) AddObjectiveBound(bound int) bool {
	if s.rootUnsat {
		return false
	}
	if !addObjectiveBound(s.e, s.f.Objective, bound) {
		s.rootUnsat = s.e.unsatNow
		return false
	}
	return true
}

// RootUnsat reports whether the engine derived a contradiction at decision
// level 0 (as opposed to under some probe's assumptions).
func (s *Session) RootUnsat() bool { return s.rootUnsat }

// Model returns the satisfying assignment after a StatusSat probe.
func (s *Session) Model() cnf.Assignment { return s.e.model() }

// ObjectiveValue evaluates the formula's objective under a model.
func (s *Session) ObjectiveValue(m cnf.Assignment) int { return s.f.ObjectiveValue(m) }

// SetIncumbent records the optimization loop's best objective so far for
// progress snapshots (milestone-reported immediately, like the sequential
// loop's noteIncumbent).
func (s *Session) SetIncumbent(z int) {
	if s.e != nil {
		s.e.noteIncumbent(z)
	}
}

// Stats returns the engine's accumulated search counters plus the
// session's own probe count.
func (s *Session) Stats() Stats {
	if s.e == nil {
		return s.stats
	}
	st := s.e.stats
	st.SolverCalls = s.stats.SolverCalls
	return st
}

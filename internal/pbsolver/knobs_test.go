package pbsolver

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/pb"
)

// clausePigeonhole is PHP(pigeons, holes) in pure clause form (long
// at-least-one rows plus pairwise at-most-one binaries), so conflicts and
// vivification exercise the clause arena rather than the PB rows.
func clausePigeonhole(pigeons, holes int) *pb.Formula {
	f := pb.NewFormula(pigeons * holes)
	x := func(p, h int) cnf.Lit { return cnf.PosLit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		row := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			row[h] = x(p, h)
		}
		f.AddClause(row...)
	}
	for h := 0; h < holes; h++ {
		for a := 0; a < pigeons; a++ {
			for b := a + 1; b < pigeons; b++ {
				f.AddClause(x(a, h).Neg(), x(b, h).Neg())
			}
		}
	}
	return f
}

func TestChronoBacktracksCountedPB(t *testing.T) {
	for _, eng := range []Engine{EnginePBS, EngineGalena, EnginePueblo} {
		f := pigeonPB(6, 5)
		res := Decide(context.Background(), f, Options{Engine: eng, ChronoThreshold: 1})
		if res.Status != StatusUnsat {
			t.Fatalf("%v: PHP-PB(6,5) = %v, want UNSAT", eng, res.Status)
		}
		if res.Stats.ChronoBacktracks == 0 {
			t.Errorf("%v: ChronoThreshold=1 never backtracked chronologically", eng)
		}
	}
}

func TestVivificationShrinksClausesPB(t *testing.T) {
	f := clausePigeonhole(5, 4)
	// Gadget: (a ∨ b) makes the suffix of (a ∨ b ∨ c ∨ d) redundant.
	a, b, c, d := f.NewVar(), f.NewVar(), f.NewVar(), f.NewVar()
	f.AddClause(cnf.PosLit(a), cnf.PosLit(b))
	f.AddClause(cnf.PosLit(a), cnf.PosLit(b), cnf.PosLit(c), cnf.PosLit(d))
	res := Decide(context.Background(), f, Options{
		Engine: EnginePBS, RestartBaseOverride: 1, VivifyBudget: 10000,
	})
	if res.Status != StatusUnsat {
		t.Fatalf("PHP(5,4)+gadget = %v, want UNSAT", res.Status)
	}
	if res.Stats.VivifiedLits < 2 {
		t.Fatalf("VivifiedLits = %d, want >= 2", res.Stats.VivifiedLits)
	}
}

func TestDynamicLBDRetiersClausesPB(t *testing.T) {
	f := clausePigeonhole(7, 6)
	res := Decide(context.Background(), f, Options{Engine: EnginePBS, DynamicLBD: true})
	if res.Status != StatusUnsat {
		t.Fatalf("PHP(7,6) = %v, want UNSAT", res.Status)
	}
	if res.Stats.LBDUpdates == 0 {
		t.Fatal("DynamicLBD never improved a stored LBD")
	}
}

// TestKnobsAgreeWithBruteForcePB checks that the new search knobs never
// change Optimize answers on random mixed clause/PB instances.
func TestKnobsAgreeWithBruteForcePB(t *testing.T) {
	knobSets := []Options{
		{ChronoThreshold: 1},
		{VivifyBudget: 300, RestartBaseOverride: 1},
		{DynamicLBD: true},
		{ChronoThreshold: 2, VivifyBudget: 300, DynamicLBD: true, RestartBaseOverride: 1},
	}
	rng := rand.New(rand.NewSource(777))
	for iter := 0; iter < 25; iter++ {
		f := randomPBFormula(rng, 6+rng.Intn(4))
		withObjective(rng, f)
		feasible, optimum := bruteOptimum(f)
		for ki, base := range knobSets {
			for _, eng := range []Engine{EnginePBS, EngineGalena, EnginePueblo} {
				opts := base
				opts.Engine = eng
				res := Optimize(context.Background(), f, opts)
				if feasible {
					if res.Status != StatusOptimal {
						t.Fatalf("iter %d knobs %d %v: status %v, want OPTIMAL", iter, ki, eng, res.Status)
					}
					if res.Objective != optimum {
						t.Fatalf("iter %d knobs %d %v: objective %d, want %d", iter, ki, eng, res.Objective, optimum)
					}
					if !f.Satisfies(res.Model) {
						t.Fatalf("iter %d knobs %d %v: model infeasible", iter, ki, eng)
					}
				} else if res.Status != StatusUnsat {
					t.Fatalf("iter %d knobs %d %v: status %v, want UNSAT", iter, ki, eng, res.Status)
				}
			}
		}
	}
}

package pbsolver

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestPortfolioMatchesSingleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 40; iter++ {
		f := randomPBFormula(rng, 3+rng.Intn(5))
		withObjective(rng, f)
		wantSat, wantZ := bruteOptimum(f)
		res := PortfolioSolve(context.Background(), f, PortfolioOptions{})
		if !wantSat {
			if res.Status != StatusUnsat {
				t.Fatalf("iter %d: %v, want UNSAT", iter, res.Status)
			}
			continue
		}
		if res.Status != StatusOptimal || res.Objective != wantZ {
			t.Fatalf("iter %d: %v obj=%d, want OPTIMAL %d", iter, res.Status, res.Objective, wantZ)
		}
		if !f.Satisfies(res.Model) {
			t.Fatalf("iter %d: invalid model", iter)
		}
		if len(res.PerEngine) != 4 {
			t.Fatalf("iter %d: PerEngine %d", iter, len(res.PerEngine))
		}
	}
}

func TestPortfolioSubsetEngines(t *testing.T) {
	f := pigeonPB(5, 4) // UNSAT
	res := PortfolioSolve(context.Background(), f, PortfolioOptions{
		Engines: []Engine{EnginePBS, EngineBnB},
	})
	if res.Status != StatusUnsat {
		t.Fatalf("%v", res.Status)
	}
	if res.Winner != EnginePBS && res.Winner != EngineBnB {
		t.Fatalf("winner %v not in subset", res.Winner)
	}
}

func TestPortfolioCancelsLaggards(t *testing.T) {
	// A formula trivial for CDCL (immediate UNSAT at root) but with a huge
	// search space for a cancelled laggard: the portfolio must return
	// quickly even though one engine alone would run much longer.
	f := pigeonPB(9, 8) // hard UNSAT for the learning-free BnB
	start := time.Now()
	res := PortfolioSolve(context.Background(), f, PortfolioOptions{
		Base:    Options{Timeout: 30 * time.Second},
		Engines: []Engine{EngineBnB, EnginePBS, EngineGalena},
	})
	elapsed := time.Since(start)
	if res.Status != StatusUnsat {
		t.Fatalf("%v", res.Status)
	}
	// CDCL proves PHP(9,8) in well under a second; BnB alone would churn
	// far longer but must get cancelled.
	if elapsed > 20*time.Second {
		t.Fatalf("laggards not cancelled: took %v", elapsed)
	}
}

func TestPortfolioTimeoutKeepsIncumbent(t *testing.T) {
	// With an infeasible budget the portfolio still reports the best
	// feasible incumbent across engines.
	rng := rand.New(rand.NewSource(60))
	for iter := 0; iter < 20; iter++ {
		f := randomPBFormula(rng, 8)
		withObjective(rng, f)
		wantSat, wantZ := bruteOptimum(f)
		res := PortfolioSolve(context.Background(), f, PortfolioOptions{Base: Options{MaxConflicts: 2}})
		switch res.Status {
		case StatusOptimal:
			if !wantSat || res.Objective != wantZ {
				t.Fatalf("iter %d: false optimal", iter)
			}
		case StatusSat:
			if !wantSat || res.Objective < wantZ {
				t.Fatalf("iter %d: impossible incumbent", iter)
			}
		case StatusUnsat:
			if wantSat {
				t.Fatalf("iter %d: false UNSAT", iter)
			}
		}
	}
}

func TestPortfolioRespectsCancelledContext(t *testing.T) {
	// An already-cancelled context must return immediately without
	// starting any engine.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := pigeonPB(9, 8)
	start := time.Now()
	res := PortfolioSolve(ctx, f, PortfolioOptions{})
	if res.Status != StatusUnknown {
		t.Fatalf("got %v, want UNKNOWN from cancelled context", res.Status)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled context still ran for %v", elapsed)
	}
	if res.Stats.Decisions != 0 || res.Stats.Nodes != 0 {
		t.Fatalf("engines did work under a cancelled context: %+v", res.Stats)
	}
}

func TestPortfolioExternalCancelStopsEngines(t *testing.T) {
	// PHP(11,10) keeps every engine busy for much longer than the cancel
	// delay; cancelling the caller's context must stop all of them
	// promptly even though no engine has answered.
	f := pigeonPB(11, 10)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := PortfolioSolve(ctx, f, PortfolioOptions{})
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("external cancel not honored: portfolio ran %v", elapsed)
	}
	// A definitive answer in under 50ms is implausible for PHP(11,10) on
	// every engine; whatever came back, all laggards must have stopped.
	_ = res
}

func TestPortfolioHungEngineCancelledOnDefinitiveAnswer(t *testing.T) {
	// PHP(10,9) is a sub-second proof for the bounding-based BnB but takes
	// the CDCL engines far longer (clause learning alone fights the
	// pigeonhole symmetry); once BnB returns UNSAT the portfolio must
	// cancel the hung CDCL laggard promptly and report it as Unknown.
	f := pigeonPB(10, 9)
	start := time.Now()
	res := PortfolioSolve(context.Background(), f, PortfolioOptions{
		Engines: []Engine{EnginePBS, EngineBnB},
	})
	if res.Status != StatusUnsat {
		t.Fatalf("got %v, want UNSAT", res.Status)
	}
	if res.Winner != EngineBnB {
		t.Fatalf("winner %v, want bnb", res.Winner)
	}
	if res.PerEngine[0].Status != StatusUnknown {
		t.Fatalf("hung CDCL engine reported %v, want UNKNOWN after cancellation", res.PerEngine[0].Status)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("hung engine not cancelled: took %v", elapsed)
	}
}

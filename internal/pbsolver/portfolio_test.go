package pbsolver

import (
	"math/rand"
	"testing"
	"time"
)

func TestPortfolioMatchesSingleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 40; iter++ {
		f := randomPBFormula(rng, 3+rng.Intn(5))
		withObjective(rng, f)
		wantSat, wantZ := bruteOptimum(f)
		res := PortfolioSolve(f, PortfolioOptions{})
		if !wantSat {
			if res.Status != StatusUnsat {
				t.Fatalf("iter %d: %v, want UNSAT", iter, res.Status)
			}
			continue
		}
		if res.Status != StatusOptimal || res.Objective != wantZ {
			t.Fatalf("iter %d: %v obj=%d, want OPTIMAL %d", iter, res.Status, res.Objective, wantZ)
		}
		if !f.Satisfies(res.Model) {
			t.Fatalf("iter %d: invalid model", iter)
		}
		if len(res.PerEngine) != 4 {
			t.Fatalf("iter %d: PerEngine %d", iter, len(res.PerEngine))
		}
	}
}

func TestPortfolioSubsetEngines(t *testing.T) {
	f := pigeonPB(5, 4) // UNSAT
	res := PortfolioSolve(f, PortfolioOptions{
		Engines: []Engine{EnginePBS, EngineBnB},
	})
	if res.Status != StatusUnsat {
		t.Fatalf("%v", res.Status)
	}
	if res.Winner != EnginePBS && res.Winner != EngineBnB {
		t.Fatalf("winner %v not in subset", res.Winner)
	}
}

func TestPortfolioCancelsLaggards(t *testing.T) {
	// A formula trivial for CDCL (immediate UNSAT at root) but with a huge
	// search space for a cancelled laggard: the portfolio must return
	// quickly even though one engine alone would run much longer.
	f := pigeonPB(9, 8) // hard UNSAT for the learning-free BnB
	start := time.Now()
	res := PortfolioSolve(f, PortfolioOptions{
		Base:    Options{Timeout: 30 * time.Second},
		Engines: []Engine{EngineBnB, EnginePBS, EngineGalena},
	})
	elapsed := time.Since(start)
	if res.Status != StatusUnsat {
		t.Fatalf("%v", res.Status)
	}
	// CDCL proves PHP(9,8) in well under a second; BnB alone would churn
	// far longer but must get cancelled.
	if elapsed > 20*time.Second {
		t.Fatalf("laggards not cancelled: took %v", elapsed)
	}
}

func TestPortfolioTimeoutKeepsIncumbent(t *testing.T) {
	// With an infeasible budget the portfolio still reports the best
	// feasible incumbent across engines.
	rng := rand.New(rand.NewSource(60))
	for iter := 0; iter < 20; iter++ {
		f := randomPBFormula(rng, 8)
		withObjective(rng, f)
		wantSat, wantZ := bruteOptimum(f)
		res := PortfolioSolve(f, PortfolioOptions{Base: Options{MaxConflicts: 2}})
		switch res.Status {
		case StatusOptimal:
			if !wantSat || res.Objective != wantZ {
				t.Fatalf("iter %d: false optimal", iter)
			}
		case StatusSat:
			if !wantSat || res.Objective < wantZ {
				t.Fatalf("iter %d: impossible incumbent", iter)
			}
		case StatusUnsat:
			if wantSat {
				t.Fatalf("iter %d: false UNSAT", iter)
			}
		}
	}
}

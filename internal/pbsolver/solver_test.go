package pbsolver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/pb"
)

func lit(v int) cnf.Lit  { return cnf.PosLit(v) }
func nlit(v int) cnf.Lit { return cnf.NegLit(v) }

var allEngines = []Engine{EnginePBS, EngineGalena, EnginePueblo, EngineBnB}

// bruteOptimum exhaustively computes (feasible?, minimum objective).
func bruteOptimum(f *pb.Formula) (bool, int) {
	n := f.NumVars
	best := -1
	for mask := 0; mask < 1<<n; mask++ {
		a := make(cnf.Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if !f.Satisfies(a) {
			continue
		}
		z := f.ObjectiveValue(a)
		if best < 0 || z < best {
			best = z
		}
	}
	return best >= 0, best
}

func randomPBFormula(rng *rand.Rand, nVars int) *pb.Formula {
	f := pb.NewFormula(nVars)
	nClauses := rng.Intn(3 * nVars)
	for i := 0; i < nClauses; i++ {
		w := 1 + rng.Intn(3)
		cl := make([]cnf.Lit, 0, w)
		for j := 0; j < w; j++ {
			v := 1 + rng.Intn(nVars)
			l := cnf.PosLit(v)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		f.AddClause(cl...)
	}
	nPB := 1 + rng.Intn(4)
	for i := 0; i < nPB; i++ {
		w := 2 + rng.Intn(4)
		terms := make([]pb.Term, 0, w)
		for j := 0; j < w; j++ {
			v := 1 + rng.Intn(nVars)
			l := cnf.PosLit(v)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			terms = append(terms, pb.Term{Coef: 1 + rng.Intn(4), Lit: l})
		}
		f.AddPB(terms, pb.Comparator(rng.Intn(3)), rng.Intn(8))
	}
	return f
}

func withObjective(rng *rand.Rand, f *pb.Formula) {
	nObj := 1 + rng.Intn(f.NumVars)
	terms := make([]pb.Term, 0, nObj)
	seen := map[int]bool{}
	for j := 0; j < nObj; j++ {
		v := 1 + rng.Intn(f.NumVars)
		if seen[v] {
			continue
		}
		seen[v] = true
		terms = append(terms, pb.Term{Coef: 1 + rng.Intn(3), Lit: cnf.PosLit(v)})
	}
	f.SetObjective(terms)
}

// TestDecideAgainstBruteForce cross-checks satisfiability for every engine
// on hundreds of random mixed CNF+PB formulas.
func TestDecideAgainstBruteForce(t *testing.T) {
	for _, eng := range allEngines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			for iter := 0; iter < 250; iter++ {
				f := randomPBFormula(rng, 3+rng.Intn(6))
				wantSat, _ := bruteOptimum(f)
				res := Decide(context.Background(), f, Options{Engine: eng})
				if res.Status == StatusUnknown {
					t.Fatalf("iter %d: unexpected UNKNOWN", iter)
				}
				gotSat := res.Status == StatusOptimal
				if gotSat != wantSat {
					t.Fatalf("iter %d: got %v, want sat=%v\n%s", iter, res.Status, wantSat, f.OPB())
				}
				if gotSat && !f.Satisfies(res.Model) {
					t.Fatalf("iter %d: invalid model", iter)
				}
			}
		})
	}
}

// TestOptimizeAgainstBruteForce cross-checks the proven optimum for every
// engine on random objectives.
func TestOptimizeAgainstBruteForce(t *testing.T) {
	for _, eng := range allEngines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			for iter := 0; iter < 200; iter++ {
				f := randomPBFormula(rng, 3+rng.Intn(5))
				withObjective(rng, f)
				wantSat, wantZ := bruteOptimum(f)
				res := Optimize(context.Background(), f, Options{Engine: eng})
				if !wantSat {
					if res.Status != StatusUnsat {
						t.Fatalf("iter %d: got %v, want UNSAT", iter, res.Status)
					}
					continue
				}
				if res.Status != StatusOptimal {
					t.Fatalf("iter %d: got %v, want OPTIMAL", iter, res.Status)
				}
				if res.Objective != wantZ {
					t.Fatalf("iter %d: objective %d, want %d\n%s", iter, res.Objective, wantZ, f.OPB())
				}
				if !f.Satisfies(res.Model) || f.ObjectiveValue(res.Model) != wantZ {
					t.Fatalf("iter %d: model inconsistent with objective", iter)
				}
			}
		})
	}
}

// TestBinarySearchMatchesLinear cross-checks the two optimization
// strategies against each other (ablation soundness).
func TestBinarySearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		f := randomPBFormula(rng, 4+rng.Intn(4))
		withObjective(rng, f)
		lin := Optimize(context.Background(), f, Options{Engine: EnginePBS, Strategy: LinearSearch})
		bin := Optimize(context.Background(), f, Options{Engine: EnginePBS, Strategy: BinarySearch})
		if lin.Status != bin.Status {
			t.Fatalf("iter %d: linear %v vs binary %v", iter, lin.Status, bin.Status)
		}
		if lin.Status == StatusOptimal && lin.Objective != bin.Objective {
			t.Fatalf("iter %d: linear %d vs binary %d", iter, lin.Objective, bin.Objective)
		}
	}
}

func TestExactlyOneConstraint(t *testing.T) {
	// Σ x_i = 1 over 4 vars, minimize x1+x2+x3+x4: optimum 1.
	f := pb.NewFormula(4)
	terms := []pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}, {Coef: 1, Lit: lit(3)}, {Coef: 1, Lit: lit(4)}}
	f.AddPB(terms, pb.EQ, 1)
	f.SetObjective(terms)
	for _, eng := range allEngines {
		res := Optimize(context.Background(), f, Options{Engine: eng})
		if res.Status != StatusOptimal || res.Objective != 1 {
			t.Fatalf("%v: %v obj=%d", eng, res.Status, res.Objective)
		}
		cnt := 0
		for v := 1; v <= 4; v++ {
			if res.Model[v] {
				cnt++
			}
		}
		if cnt != 1 {
			t.Fatalf("%v: model sets %d vars", eng, cnt)
		}
	}
}

func TestInfeasibleBound(t *testing.T) {
	// x1+x2 >= 3 is impossible with 2 vars.
	f := pb.NewFormula(2)
	f.AddPB([]pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}}, pb.GE, 3)
	for _, eng := range allEngines {
		if res := Decide(context.Background(), f, Options{Engine: eng}); res.Status != StatusUnsat {
			t.Fatalf("%v: %v, want UNSAT", eng, res.Status)
		}
	}
}

func TestWeightedConstraintPropagation(t *testing.T) {
	// 5x1 + 2x2 + 1x3 >= 5 forces x1 after x2,x3 are false.
	f := pb.NewFormula(3)
	f.AddPB([]pb.Term{{Coef: 5, Lit: lit(1)}, {Coef: 2, Lit: lit(2)}, {Coef: 1, Lit: lit(3)}}, pb.GE, 5)
	f.AddClause(nlit(2))
	f.AddClause(nlit(3))
	res := Decide(context.Background(), f, Options{Engine: EnginePBS})
	if res.Status != StatusOptimal || !res.Model[1] {
		t.Fatalf("x1 should be forced true: %v %v", res.Status, res.Model)
	}
}

func TestObjectiveZeroShortCircuit(t *testing.T) {
	f := pb.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.SetObjective([]pb.Term{{Coef: 1, Lit: nlit(1)}})
	// Optimal 0 when x1 true.
	res := Optimize(context.Background(), f, Options{Engine: EnginePBS})
	if res.Status != StatusOptimal || res.Objective != 0 {
		t.Fatalf("%v obj=%d", res.Status, res.Objective)
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard pigeonhole-flavored PB instance: 8 pigeons, 7 holes.
	f := pigeonPB(8, 7)
	res := Decide(context.Background(), f, Options{Engine: EnginePBS, MaxConflicts: 3})
	if res.Status != StatusUnknown {
		t.Fatalf("got %v, want UNKNOWN under 3-conflict budget", res.Status)
	}
}

func TestDeadlineBudget(t *testing.T) {
	f := pigeonPB(12, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := Decide(ctx, f, Options{Engine: EngineBnB})
	if res.Status == StatusOptimal {
		t.Fatal("PHP(12,11) cannot be SAT")
	}
	if res.Runtime > 5*time.Second {
		t.Fatalf("deadline ignored: %v", res.Runtime)
	}
}

// pigeonPB expresses the pigeonhole principle with PB rows: each pigeon in
// exactly one hole, each hole holds at most one pigeon.
func pigeonPB(pigeons, holes int) *pb.Formula {
	f := pb.NewFormula(pigeons * holes)
	v := func(p, h int) cnf.Lit { return cnf.PosLit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		terms := make([]pb.Term, holes)
		for h := 0; h < holes; h++ {
			terms[h] = pb.Term{Coef: 1, Lit: v(p, h)}
		}
		f.AddPB(terms, pb.EQ, 1)
	}
	for h := 0; h < holes; h++ {
		terms := make([]pb.Term, pigeons)
		for p := 0; p < pigeons; p++ {
			terms[p] = pb.Term{Coef: 1, Lit: v(p, h)}
		}
		f.AddPB(terms, pb.LE, 1)
	}
	return f
}

func TestPigeonholePBUnsat(t *testing.T) {
	for _, eng := range allEngines {
		f := pigeonPB(5, 4)
		res := Decide(context.Background(), f, Options{Engine: eng})
		if res.Status != StatusUnsat {
			t.Fatalf("%v: PHP(5,4) gave %v", eng, res.Status)
		}
	}
}

func TestPigeonholePBSatWhenSquare(t *testing.T) {
	for _, eng := range allEngines {
		f := pigeonPB(4, 4)
		res := Decide(context.Background(), f, Options{Engine: eng})
		if res.Status != StatusOptimal {
			t.Fatalf("%v: PHP(4,4) gave %v", eng, res.Status)
		}
		if !f.Satisfies(res.Model) {
			t.Fatalf("%v: invalid model", eng)
		}
	}
}

// TestGalenaLearnsCardinalities drives the engine through a PB conflict by
// hand (white-box) and checks that the cardinality reduction of the
// conflicting constraint is learnt: from 2q+2r+x ≥ 3 the engine derives
// q+r+x ≥ 2.
func TestGalenaLearnsCardinalities(t *testing.T) {
	e := newCDCL(Options{Engine: EngineGalena})
	e.growTo(4)
	// vars: q=1 r=2 x=3 d=4
	cs := pb.Normalize([]pb.Term{
		{Coef: 2, Lit: lit(1)}, {Coef: 2, Lit: lit(2)}, {Coef: 1, Lit: lit(3)},
	}, pb.GE, 3)
	if len(cs) != 1 || !e.addConstraint(cs[0]) {
		t.Fatal("setup failed")
	}
	if !e.addClause([]cnf.Lit{nlit(4), nlit(1)}) || !e.addClause([]cnf.Lit{nlit(4), nlit(2)}) {
		t.Fatal("setup failed")
	}
	// Decide d := true; propagation falsifies q and r, driving the PB
	// constraint's slack to −2 before its own occurrence walk runs.
	e.trailAt = append(e.trailAt, len(e.trail))
	e.enqueue(lit(4), noReason)
	confl := e.propagate()
	if confl.pc == nil {
		t.Fatalf("expected a PB conflict, got %+v", confl)
	}
	learnt, bt, lbd := e.analyze(confl)
	e.cancelUntil(bt)
	e.record(learnt, lbd)
	e.learnCardinality(confl.pc)
	if e.stats.LearntCards != 1 {
		t.Fatalf("LearntCards = %d, want 1", e.stats.LearntCards)
	}
	// The learnt constraint is the cardinality reduction with bound 2.
	last := e.pbcs[len(e.pbcs)-1]
	if !last.learnt || last.bound != 2 || !isCardinality(last) {
		t.Fatalf("unexpected learnt constraint: %+v", last)
	}
}

func TestCardinalityBound(t *testing.T) {
	c := &pbc{terms: []pb.Term{
		{Coef: 3, Lit: lit(1)}, {Coef: 2, Lit: lit(2)}, {Coef: 2, Lit: lit(3)},
	}, bound: 4}
	if r := cardinalityBound(c); r != 2 {
		t.Fatalf("cardinalityBound = %d, want 2", r)
	}
	c.bound = 8 // unreachable: 3+2+2 = 7 < 8
	if r := cardinalityBound(c); r != 4 {
		t.Fatalf("cardinalityBound (infeasible) = %d, want len+1 = 4", r)
	}
	c.bound = 3
	if r := cardinalityBound(c); r != 1 {
		t.Fatalf("cardinalityBound = %d, want 1", r)
	}
}

func TestEnumerateOptimal(t *testing.T) {
	// x1+x2+x3 >= 2, minimize total: optimum 2, three distinct projections.
	f := pb.NewFormula(3)
	terms := []pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}, {Coef: 1, Lit: lit(3)}}
	f.AddPB(terms, pb.GE, 2)
	f.SetObjective(terms)
	models, res := EnumerateOptimal(context.Background(), f, Options{Engine: EnginePBS}, []int{1, 2, 3}, 0)
	if res.Status != StatusOptimal || res.Objective != 2 {
		t.Fatalf("optimize: %v obj=%d", res.Status, res.Objective)
	}
	if len(models) != 3 {
		t.Fatalf("enumerated %d optimal projections, want 3", len(models))
	}
	seen := map[[3]bool]bool{}
	for _, m := range models {
		key := [3]bool{m[1], m[2], m[3]}
		if seen[key] {
			t.Fatal("duplicate projection enumerated")
		}
		seen[key] = true
		if !f.Satisfies(m) || f.ObjectiveValue(m) != 2 {
			t.Fatal("enumerated model not optimal")
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	f := pb.NewFormula(4)
	terms := []pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}, {Coef: 1, Lit: lit(3)}, {Coef: 1, Lit: lit(4)}}
	f.AddPB(terms, pb.GE, 2)
	f.SetObjective(terms)
	models, _ := EnumerateOptimal(context.Background(), f, Options{Engine: EnginePBS}, []int{1, 2, 3, 4}, 2)
	if len(models) != 2 {
		t.Fatalf("limit ignored: got %d models", len(models))
	}
}

func TestUnsatEnumerate(t *testing.T) {
	f := pb.NewFormula(1)
	f.AddClause(lit(1))
	f.AddClause(nlit(1))
	f.SetObjective([]pb.Term{{Coef: 1, Lit: lit(1)}})
	models, res := EnumerateOptimal(context.Background(), f, Options{Engine: EnginePBS}, []int{1}, 0)
	if models != nil || res.Status != StatusUnsat {
		t.Fatalf("got %d models, %v", len(models), res.Status)
	}
}

func TestEngineString(t *testing.T) {
	names := map[Engine]string{
		EnginePBS: "pbs2", EngineGalena: "galena",
		EnginePueblo: "pueblo", EngineBnB: "bnb",
	}
	for e, want := range names {
		if e.String() != want {
			t.Fatalf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
	if Engine(99).String() == "" {
		t.Fatal("unknown engine should still render")
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "OPTIMAL" || StatusUnsat.String() != "UNSAT" ||
		StatusSat.String() != "SAT" || StatusUnknown.String() != "UNKNOWN" {
		t.Fatal("status strings wrong")
	}
}

func TestTimeoutOption(t *testing.T) {
	f := pigeonPB(12, 11)
	res := Decide(context.Background(), f, Options{Engine: EnginePBS, Timeout: 20 * time.Millisecond})
	if res.Status == StatusOptimal {
		t.Fatal("cannot be SAT")
	}
	if res.Runtime > 5*time.Second {
		t.Fatalf("timeout ignored: %v", res.Runtime)
	}
}

// TestOptimizeFeasibleUnderBudget: with a tiny budget the solver should
// normally return the incumbent it found as StatusSat (or Unknown if it
// found nothing), never a wrong Optimal.
func TestOptimizeFeasibleUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		f := randomPBFormula(rng, 8)
		withObjective(rng, f)
		wantSat, wantZ := bruteOptimum(f)
		res := Optimize(context.Background(), f, Options{Engine: EnginePBS, MaxConflicts: 2})
		switch res.Status {
		case StatusOptimal:
			if !wantSat || res.Objective != wantZ {
				t.Fatalf("iter %d: false optimal claim", iter)
			}
		case StatusSat:
			if !wantSat || res.Objective < wantZ {
				t.Fatalf("iter %d: infeasible or super-optimal incumbent", iter)
			}
		case StatusUnsat:
			if wantSat {
				t.Fatalf("iter %d: false UNSAT claim", iter)
			}
		}
	}
}

// TestIncrementalModelValidAfterBoundTightening exercises the incremental
// constraint-addition path used by the linear optimization loop.
func TestIncrementalModelValidAfterBoundTightening(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 80; iter++ {
		f := randomPBFormula(rng, 6)
		withObjective(rng, f)
		res := Optimize(context.Background(), f, Options{Engine: EnginePueblo})
		if res.Status == StatusOptimal && res.Model != nil {
			if !f.Satisfies(res.Model) {
				t.Fatalf("iter %d: optimal model does not satisfy formula", iter)
			}
		}
	}
}

package pbsolver

import (
	"context"
	"sync"

	"repro/internal/obs"
	"repro/internal/pb"
)

// PortfolioOptions configure a portfolio run.
type PortfolioOptions struct {
	// Base is the options template; the Engine field is managed per worker
	// and Base.Timeout is pinned once for the whole portfolio.
	Base Options
	// Engines lists the configurations to race (default: all four).
	Engines []Engine
}

// PortfolioResult is the merged outcome of a portfolio run.
type PortfolioResult struct {
	Result
	// Winner is the engine that produced the returned result (meaningful
	// when Status is not StatusUnknown).
	Winner Engine
	// PerEngine reports each engine's own outcome, in Engines order.
	PerEngine []Result
}

// PortfolioSolve runs several engine configurations on the same formula
// concurrently and returns the first definitive answer (Optimal or Unsat),
// cancelling the laggards through a context derived from ctx. The paper's
// methodology — treating solvers as interchangeable black boxes over one
// problem reduction (§1, §2.3) — makes this composition natural: different
// engines win on different instances, and the portfolio takes the
// per-instance minimum at the cost of parallel hardware.
//
// Cancelling ctx aborts every engine promptly; an already-cancelled ctx
// returns StatusUnknown without starting any engine. The formula is shared
// read-only across workers (engines keep all mutable state internal). When
// no engine finishes definitively within the budget, the best feasible
// incumbent (lowest objective) is returned.
func PortfolioSolve(ctx context.Context, f *pb.Formula, opts PortfolioOptions) PortfolioResult {
	engines := opts.Engines
	if len(engines) == 0 {
		engines = append([]Engine(nil), Engines...)
	}
	out := PortfolioResult{PerEngine: make([]Result, len(engines))}
	out.Status = StatusUnknown
	if ctx.Err() != nil {
		return out
	}
	// Pin the shared wall-clock budget once so a worker scheduled late does
	// not restart the clock; the derived context is the single cancellation
	// path for deadline, caller cancellation and laggard stopping alike.
	base := opts.Base
	var pctx context.Context
	var cancel context.CancelFunc
	if base.Timeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, base.Timeout)
		base.Timeout = 0
	} else {
		pctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	var once sync.Once
	type tagged struct {
		idx int
		res Result
	}
	results := make(chan tagged, len(engines))
	for i, eng := range engines {
		go func(i int, eng Engine) {
			ectx, espan := obs.StartSpan(pctx, "solve.engine",
				obs.String("engine", eng.String()))
			o := base
			o.Engine = eng
			res := Optimize(ectx, f, o)
			espan.End(
				obs.String("status", res.Status.String()),
				obs.Int("conflicts", res.Stats.Conflicts),
				obs.Int("restarts", res.Stats.Restarts),
			)
			if res.Status == StatusOptimal || res.Status == StatusUnsat {
				once.Do(cancel)
			}
			results <- tagged{i, res}
		}(i, eng)
	}
	winner := -1
	for range engines {
		t := <-results
		out.PerEngine[t.idx] = t.res
		better := false
		switch t.res.Status {
		case StatusOptimal, StatusUnsat:
			// The first definitive answer wins (later ones were cancelled
			// or tied).
			better = out.Status != StatusOptimal && out.Status != StatusUnsat
		case StatusSat:
			better = out.Status == StatusUnknown ||
				(out.Status == StatusSat && t.res.Objective < out.Objective)
		}
		if better {
			out.Result = t.res
			winner = t.idx
		}
		out.Stats.add(t.res.Stats)
	}
	if winner >= 0 {
		out.Winner = engines[winner]
	}
	return out
}

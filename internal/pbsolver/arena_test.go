package pbsolver

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pb"
)

// TestDecideWithAggressiveReduction cross-checks every CDCL engine against
// brute force while forcing learnt-DB reductions (and arena compactions)
// every handful of conflicts, so reasons and watches are exercised across
// many reduce+GC cycles mid-search.
func TestDecideWithAggressiveReduction(t *testing.T) {
	for _, eng := range []Engine{EnginePBS, EngineGalena, EnginePueblo} {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			for iter := 0; iter < 120; iter++ {
				f := randomPBFormula(rng, 4+rng.Intn(5))
				wantSat, _ := bruteOptimum(f)
				res := Decide(context.Background(), f, Options{Engine: eng, ReduceInterval: 8, GlueLBD: 1})
				if res.Status == StatusUnknown {
					t.Fatalf("iter %d: unexpected UNKNOWN", iter)
				}
				gotSat := res.Status == StatusOptimal
				if gotSat != wantSat {
					t.Fatalf("iter %d: got %v, want sat=%v\n%s", iter, res.Status, wantSat, f.OPB())
				}
				if gotSat && !f.Satisfies(res.Model) {
					t.Fatalf("iter %d: invalid model", iter)
				}
			}
		})
	}
}

// TestReductionStatsPlumbing confirms the new reduction counters surface
// through the public Result on a run forced into reductions.
func TestReductionStatsPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var saw Stats
	for iter := 0; iter < 200 && saw.Reduces == 0; iter++ {
		f := randomPBFormula(rng, 8)
		withObjective(rng, f)
		res := Optimize(context.Background(), f, Options{Engine: EnginePBS, ReduceInterval: 4})
		saw.add(res.Stats)
	}
	if saw.Reduces == 0 {
		t.Skip("no run produced enough conflicts to trigger a reduction")
	}
	if saw.Removed == 0 && saw.Reduces > 2 {
		t.Fatalf("reductions ran but removed nothing: %+v", saw)
	}
}

// TestEnginesShareNoSolverState runs many engine instances concurrently on
// the same formula value. The shared solverutil structures (arena, heap,
// watchers) must be per-instance: any accidental sharing shows up under
// -race, and cross-instance corruption would flip a verdict.
func TestEnginesShareNoSolverState(t *testing.T) {
	f := pb.NewFormula(0)
	{
		rng := rand.New(rand.NewSource(41))
		f = randomPBFormula(rng, 8)
		withObjective(rng, f)
	}
	wantSat, wantZ := bruteOptimum(f)
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for _, eng := range allEngines {
			wg.Add(1)
			go func(eng Engine) {
				defer wg.Done()
				res := Optimize(context.Background(), f, Options{Engine: eng, ReduceInterval: 16})
				switch {
				case wantSat && (res.Status != StatusOptimal || res.Objective != wantZ):
					t.Errorf("%v: got %v obj=%d, want OPTIMAL %d", eng, res.Status, res.Objective, wantZ)
				case !wantSat && res.Status != StatusUnsat:
					t.Errorf("%v: got %v, want UNSAT", eng, res.Status)
				}
			}(eng)
		}
	}
	wg.Wait()
}

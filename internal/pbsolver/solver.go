// Package pbsolver implements the 0-1 ILP (pseudo-Boolean optimization)
// solvers the paper evaluates (§2.3, §4): three CDCL-based configurations
// standing in for the academic solvers PBS II, Galena and Pueblo, and a
// learning-free branch-and-bound configuration standing in for the generic
// commercial ILP solver CPLEX (see DESIGN.md "Substitutions").
//
// All CDCL engines share the Davis-Logemann-Loveland backtrack-search
// framework extended with watched-literal clause propagation, counter-based
// PB propagation, first-UIP clause learning and VSIDS decisions, exactly as
// the paper notes for the real solvers ("independent implementations based
// on the same algorithmic framework"). The engines differ in learning and
// restart policy:
//
//   - EnginePBS:    clause learning from PB conflicts, Luby restarts (base
//     100), decay 0.95 — the PBS II configuration.
//   - EngineGalena: EnginePBS plus cardinality-reduction (CARD) learning of
//     conflicting PB constraints — Galena's default per the paper.
//   - EnginePueblo: clause learning with a more aggressive restart schedule
//     (base 50) and faster decay 0.90 — Pueblo's hybrid behaviour.
//   - EngineBnB:    depth-first branch-and-bound without any learning,
//     chronological backtracking, static most-constrained variable order and
//     incumbent bounding — the CPLEX stand-in.
//
// Optimization uses linear objective strengthening by default (solve, add
// Σobj ≤ z−1, repeat) or binary search (BinarySearch, used by the ablation
// benches).
package pbsolver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/pb"
	"repro/internal/solverutil"
)

// Engine selects the solver configuration.
type Engine int

// Engines (see the package comment for the mapping to the paper's solvers).
const (
	EnginePBS Engine = iota
	EngineGalena
	EnginePueblo
	EngineBnB
)

func (e Engine) String() string {
	switch e {
	case EnginePBS:
		return "pbs2"
	case EngineGalena:
		return "galena"
	case EnginePueblo:
		return "pueblo"
	case EngineBnB:
		return "bnb"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Engines lists all four configurations in the paper's column order
// (PBS II, CPLEX, Galena, Pueblo re-ordered here as CDCL-first).
var Engines = []Engine{EnginePBS, EngineBnB, EngineGalena, EnginePueblo}

// Strategy selects how the optimization loop tightens the objective.
type Strategy int

// Optimization strategies.
const (
	// LinearSearch adds Σobj ≤ z−1 after each improving solution on one
	// incremental solver (PBS-style; learnt clauses are reused).
	LinearSearch Strategy = iota
	// BinarySearch bisects on the objective value with a fresh solver per
	// probe (ablation comparator).
	BinarySearch
)

// Status is the outcome of an Optimize or Decide call.
type Status int

// Statuses.
const (
	StatusUnknown Status = iota // budget exhausted, no feasible solution seen
	StatusSat                   // feasible solution found, optimality unproven
	StatusOptimal               // optimum proven (or SAT in decision mode)
	StatusUnsat                 // no feasible solution exists
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "SAT"
	case StatusOptimal:
		return "OPTIMAL"
	case StatusUnsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Options configure a solve.
type Options struct {
	Engine   Engine
	Strategy Strategy
	// MaxConflicts bounds total conflicts (CDCL) or backtracks (BnB) across
	// the whole optimization loop; 0 = unlimited.
	MaxConflicts int64
	// Timeout bounds wall-clock time relative to the Optimize/Decide call;
	// 0 = unlimited. Cancellation and caller-side deadlines are carried by
	// the context.Context passed to Decide/Optimize/PortfolioSolve.
	Timeout time.Duration
	// NoPhaseSaving disables progress saving on decisions.
	NoPhaseSaving bool
	// VarDecayOverride / RestartBaseOverride replace the engine defaults
	// when nonzero (used by ablation benches).
	VarDecayOverride    float64
	RestartBaseOverride int64
	// GlueLBD is the LBD at or below which learnt clauses are never
	// deleted (Audemard & Simon 2009); 0 selects 2.
	GlueLBD int
	// ReduceInterval is the conflict count between learnt-database
	// reductions (the interval grows by ReduceInterval/8 after each
	// reduction); 0 selects 2000.
	ReduceInterval int64
	// ChronoThreshold enables chronological backtracking (Nadel & Ryvchin
	// 2018): when the backjump level is more than this many levels below
	// the conflict level, backtrack a single level instead and assert the
	// learnt clause there. 0 disables. Ignored by EngineBnB (which is
	// chronological by construction).
	ChronoThreshold int
	// VivifyBudget enables clause vivification at restarts: up to this
	// many propagations are spent per restart shrinking long clauses
	// whose suffix is implied. 0 disables. Ignored by EngineBnB.
	VivifyBudget int64
	// DynamicLBD recomputes learnt-clause LBDs during conflict analysis,
	// re-tiering glue clauses as the search evolves. Ignored by EngineBnB.
	DynamicLBD bool
	// Export, when non-nil, receives every learnt clause whose LBD is at
	// or below ExportLBD (clause sharing between cooperating engines, e.g.
	// internal/par's cube-and-conquer workers). Called on the conflict
	// path with a reusable buffer: implementations must copy and be fast.
	// Ignored by EngineBnB (no learning).
	Export solverutil.ExportFunc
	// ExportLBD is the sharing threshold: only learnt clauses with LBD ≤
	// this are exported (0 selects solverutil.DefaultShareLBD).
	ExportLBD int
	// Import, when non-nil, is drained at every restart (and at the start
	// of each decision probe): the returned foreign clauses are attached
	// as learnt clauses. Every imported clause must be implied by this
	// engine's own database — in cube-and-conquer, by the shared formula
	// plus objective bounds justified by globally feasible incumbents (see
	// solverutil.SharedClause and internal/par). Ignored by EngineBnB.
	Import solverutil.ImportFunc
	// Progress, when non-nil, receives rate-limited snapshots of the
	// search counters from the solving goroutine: the engine's conflict /
	// restart / learnt / LBD counters plus the optimization loop's best
	// objective so far (Incumbent). Under PortfolioSolve every racing
	// engine invokes the same callback concurrently, each tagging its
	// snapshots with its Engine name, so implementations must be safe for
	// concurrent use and fast (slow callbacks stall the search).
	Progress solverutil.ProgressFunc
	// ProgressInterval is the minimum time between Progress calls per
	// engine; 0 selects solverutil.DefaultProgressInterval (200ms).
	// Improved incumbents are additionally reported immediately.
	ProgressInterval time.Duration
}

func (o Options) varDecay() float64 {
	if o.VarDecayOverride != 0 {
		return o.VarDecayOverride
	}
	if o.Engine == EnginePueblo {
		return 0.90
	}
	return 0.95
}

func (o Options) restartBase() int64 {
	if o.RestartBaseOverride != 0 {
		return o.RestartBaseOverride
	}
	if o.Engine == EnginePueblo {
		return 50
	}
	return 100
}

func (o Options) phaseSaving() bool { return !o.NoPhaseSaving }

func (o Options) glueLBD() int {
	if o.GlueLBD == 0 {
		return solverutil.DefaultGlueLBD
	}
	return o.GlueLBD
}

func (o Options) reduceInterval() int64 {
	if o.ReduceInterval == 0 {
		return solverutil.DefaultReduceInterval
	}
	return o.ReduceInterval
}

func (o Options) exportLBD() int {
	if o.ExportLBD == 0 {
		return solverutil.DefaultShareLBD
	}
	return o.ExportLBD
}

func (o Options) newBudget(ctx context.Context) *budget {
	var d time.Time
	if o.Timeout > 0 {
		d = time.Now().Add(o.Timeout)
	}
	// A context deadline earlier than the local timeout is carried by
	// ctx.Done() firing, so it needs no separate bookkeeping here.
	return &budget{deadline: d, maxConflicts: o.MaxConflicts, done: ctx.Done()}
}

// Stats aggregates search counters across all solver calls of one
// Optimize/Decide invocation.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnts      int64
	LearntCards  int64 // Galena CARD-learnt constraints
	Reduces      int64 // learnt-database reductions
	Removed      int64 // learnt clauses deleted by reductions
	ArenaGCs     int64 // clause-arena compactions
	// ChronoBacktracks counts conflicts resolved by a one-level
	// chronological backtrack instead of a full backjump.
	ChronoBacktracks int64
	// VivifiedLits counts literals removed from clauses by vivification.
	VivifiedLits int64
	// LBDUpdates counts learnt clauses whose LBD improved during dynamic
	// recomputation.
	LBDUpdates int64
	// Exported and Imported count learnt clauses that crossed the
	// Options.Export / Options.Import sharing hooks.
	Exported    int64
	Imported    int64
	SolverCalls int64
	Nodes       int64 // BnB decision nodes
}

// Add accumulates another engine's counters into s (the merge operation
// the portfolio and internal/par use for per-worker stats). SolverCalls is
// deliberately left to the caller — call sites count probes differently.
func (s *Stats) Add(o Stats) { s.add(o) }

func (s *Stats) add(o Stats) {
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Conflicts += o.Conflicts
	s.Restarts += o.Restarts
	s.Learnts += o.Learnts
	s.LearntCards += o.LearntCards
	s.Reduces += o.Reduces
	s.Removed += o.Removed
	s.ArenaGCs += o.ArenaGCs
	s.ChronoBacktracks += o.ChronoBacktracks
	s.VivifiedLits += o.VivifiedLits
	s.LBDUpdates += o.LBDUpdates
	s.Exported += o.Exported
	s.Imported += o.Imported
	s.Nodes += o.Nodes
}

// Result reports the outcome of Optimize or Decide.
type Result struct {
	Status    Status
	Model     cnf.Assignment // valid when Status is StatusSat or StatusOptimal
	Objective int            // objective of Model (0 in decision mode)
	Stats     Stats
	Runtime   time.Duration
}

// buildCDCL loads a formula into a fresh CDCL engine. Returns nil when the
// formula is root-unsatisfiable.
func buildCDCL(f *pb.Formula, opts Options) *cdclEngine {
	e := newCDCL(opts)
	e.growTo(f.NumVars)
	for _, c := range f.Clauses {
		if !e.addClause(c) {
			return nil
		}
	}
	for i := range f.Constraints {
		if !e.addConstraint(f.Constraints[i]) {
			return nil
		}
	}
	return e
}

// Decide solves the satisfiability of the formula, ignoring any objective.
// The search aborts (StatusUnknown, or the best incumbent so far) when ctx
// is cancelled or its deadline passes.
func Decide(ctx context.Context, f *pb.Formula, opts Options) Result {
	start := time.Now()
	if ctx.Err() != nil {
		return Result{Status: StatusUnknown, Runtime: time.Since(start)}
	}
	bgt := opts.newBudget(ctx)
	if opts.Engine == EngineBnB {
		return bnbDecide(f, opts, bgt, start)
	}
	e := buildCDCL(f, opts)
	if e == nil {
		return Result{Status: StatusUnsat, Runtime: time.Since(start)}
	}
	st := e.solveDecision(bgt)
	res := Result{Stats: e.stats, Runtime: time.Since(start)}
	res.Stats.SolverCalls = 1
	switch st {
	case StatusSat:
		res.Status = StatusOptimal // decision answered definitively
		res.Model = e.model()
	case StatusUnsat:
		res.Status = StatusUnsat
	default:
		res.Status = StatusUnknown
	}
	return res
}

// Optimize minimizes the formula's objective. With an empty objective it
// behaves like Decide. The search aborts when ctx is cancelled or its
// deadline passes.
func Optimize(ctx context.Context, f *pb.Formula, opts Options) Result {
	if len(f.Objective) == 0 {
		return Decide(ctx, f, opts)
	}
	start := time.Now()
	if ctx.Err() != nil {
		return Result{Status: StatusUnknown, Runtime: time.Since(start)}
	}
	bgt := opts.newBudget(ctx)
	if opts.Engine == EngineBnB {
		return bnbOptimize(f, opts, bgt, start)
	}
	if opts.Strategy == BinarySearch {
		return optimizeBinary(f, opts, bgt, start)
	}
	return optimizeLinear(f, opts, bgt, start)
}

// optimizeLinear is the PBS-style loop: one incremental solver, tightening
// the bound after each improving solution so learnt clauses are reused.
func optimizeLinear(f *pb.Formula, opts Options, bgt *budget, start time.Time) Result {
	res := Result{Status: StatusUnknown}
	e := buildCDCL(f, opts)
	if e == nil {
		return Result{Status: StatusUnsat, Runtime: time.Since(start)}
	}
	for {
		st := e.solveDecision(bgt)
		res.Stats = e.stats
		res.Stats.SolverCalls++
		switch st {
		case StatusSat:
			m := e.model()
			z := f.ObjectiveValue(m)
			res.Model = m
			res.Objective = z
			res.Status = StatusSat
			e.noteIncumbent(z)
			if z == 0 {
				res.Status = StatusOptimal
				res.Runtime = time.Since(start)
				return res
			}
			if !addObjectiveBound(e, f.Objective, z-1) {
				res.Status = StatusOptimal
				res.Runtime = time.Since(start)
				return res
			}
		case StatusUnsat:
			if res.Model != nil {
				res.Status = StatusOptimal
			} else {
				res.Status = StatusUnsat
			}
			res.Runtime = time.Since(start)
			return res
		default: // budget exhausted
			res.Runtime = time.Since(start)
			return res
		}
	}
}

// optimizeBinary bisects on the objective with a fresh solver per probe.
func optimizeBinary(f *pb.Formula, opts Options, bgt *budget, start time.Time) Result {
	res := Result{Status: StatusUnknown}
	probe := func(bound int, withBound bool) (Status, cnf.Assignment) {
		e := buildCDCL(f, opts)
		if e == nil {
			return StatusUnsat, nil
		}
		if res.Status == StatusSat {
			e.incumbent = res.Objective // carry the incumbent across probes
		}
		if withBound && !addObjectiveBound(e, f.Objective, bound) {
			return StatusUnsat, nil
		}
		st := e.solveDecision(bgt)
		res.Stats.add(e.stats)
		res.Stats.SolverCalls++
		if st == StatusSat {
			return StatusSat, e.model()
		}
		return st, nil
	}
	st, m := probe(0, false)
	switch st {
	case StatusUnsat:
		return Result{Status: StatusUnsat, Stats: res.Stats, Runtime: time.Since(start)}
	case StatusUnknown:
		res.Runtime = time.Since(start)
		return res
	}
	res.Model = m
	res.Objective = f.ObjectiveValue(m)
	res.Status = StatusSat
	lo, hi := 0, res.Objective-1
	for lo <= hi {
		mid := (lo + hi) / 2
		st, m := probe(mid, true)
		switch st {
		case StatusSat:
			res.Model = m
			res.Objective = f.ObjectiveValue(m)
			hi = res.Objective - 1
		case StatusUnsat:
			lo = mid + 1
		default:
			res.Runtime = time.Since(start)
			return res // budget exhausted mid-search: feasible, not proven
		}
	}
	res.Status = StatusOptimal
	res.Runtime = time.Since(start)
	return res
}

// addObjectiveBound adds Σobj ≤ bound to a live engine. Returns false when
// the bound is immediately infeasible.
func addObjectiveBound(e *cdclEngine, obj []pb.Term, bound int) bool {
	for _, c := range pb.Normalize(obj, pb.LE, bound) {
		if c.IsClause() {
			lits := make([]cnf.Lit, len(c.Terms))
			for i, t := range c.Terms {
				lits[i] = t.Lit
			}
			if !e.addClause(lits) {
				return false
			}
			continue
		}
		if !e.addConstraint(c) {
			return false
		}
	}
	return true
}

// EnumerateOptimal finds the optimum and then enumerates up to limit
// distinct optimal solutions projected onto the given variables (used to
// regenerate Figure 1: which color assignments survive each SBP). The
// returned Result carries the optimum; the slice holds one full model per
// distinct projection.
func EnumerateOptimal(ctx context.Context, f *pb.Formula, opts Options, project []int, limit int) ([]cnf.Assignment, Result) {
	res := Optimize(ctx, f, opts)
	if res.Status != StatusOptimal || len(f.Objective) == 0 {
		return nil, res
	}
	// Fresh engine with the objective pinned to the optimum.
	e := buildCDCL(f, opts)
	if e == nil {
		return nil, res
	}
	bgt := opts.newBudget(ctx)
	for _, c := range pb.Normalize(f.Objective, pb.EQ, res.Objective) {
		if !e.addConstraint(c) {
			return nil, res
		}
	}
	var models []cnf.Assignment
	for limit <= 0 || len(models) < limit {
		st := e.solveDecision(bgt)
		if st != StatusSat {
			break
		}
		m := e.model()
		models = append(models, m)
		// Block this projection.
		block := make([]cnf.Lit, 0, len(project))
		for _, v := range project {
			if m.Lit(cnf.PosLit(v)) {
				block = append(block, cnf.NegLit(v))
			} else {
				block = append(block, cnf.PosLit(v))
			}
		}
		if len(block) == 0 || !e.addClause(block) {
			break
		}
	}
	res.Stats.add(e.stats)
	return models, res
}

package sat

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
)

func lit(v int) cnf.Lit  { return cnf.PosLit(v) }
func nlit(v int) cnf.Lit { return cnf.NegLit(v) }

func solveFormula(t *testing.T, f *cnf.Formula) (Status, cnf.Assignment) {
	t.Helper()
	s := New(f, Options{})
	st := s.Solve()
	if st == Sat {
		m := s.Model()
		if !f.Satisfies(m) {
			t.Fatalf("solver returned SAT but model does not satisfy formula")
		}
		return st, m
	}
	return st, nil
}

func TestTrivialSat(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	if st, _ := solveFormula(t, f); st != Sat {
		t.Fatalf("status = %v", st)
	}
}

func TestTrivialUnsat(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(lit(1))
	f.AddClause(nlit(1))
	if st, _ := solveFormula(t, f); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	f := cnf.NewFormula(3)
	if st, _ := solveFormula(t, f); st != Sat {
		t.Fatalf("status = %v", st)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	f := cnf.NewFormula(5)
	f.AddClause(lit(1))
	f.AddImplication(lit(1), lit(2))
	f.AddImplication(lit(2), lit(3))
	f.AddImplication(lit(3), lit(4))
	f.AddImplication(lit(4), lit(5))
	st, m := solveFormula(t, f)
	if st != Sat {
		t.Fatalf("status = %v", st)
	}
	for v := 1; v <= 5; v++ {
		if !m[v] {
			t.Fatalf("var %d should be true", v)
		}
	}
}

func TestContradictoryChain(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(1))
	f.AddImplication(lit(1), lit(2))
	f.AddImplication(lit(2), lit(3))
	f.AddImplication(lit(3), nlit(1))
	if st, _ := solveFormula(t, f); st != Unsat {
		t.Fatalf("status = %v", st)
	}
}

// pigeonhole adds the classic PHP(n+1, n) instance: n+1 pigeons, n holes.
// Variable p*(n)+h+1 means pigeon p sits in hole h. Unsatisfiable, and
// historically the motivating family for symmetry breaking (Krishnamurthy).
func pigeonhole(pigeons, holes int) *cnf.Formula {
	f := cnf.NewFormula(pigeons * holes)
	v := func(p, h int) cnf.Lit { return cnf.PosLit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		cl := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		f.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return f
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		f := pigeonhole(n+1, n)
		if st, _ := solveFormula(t, f); st != Unsat {
			t.Fatalf("PHP(%d,%d) should be UNSAT", n+1, n)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	f := pigeonhole(4, 4)
	if st, _ := solveFormula(t, f); st != Sat {
		t.Fatal("PHP(4,4) should be SAT")
	}
}

// bruteForce decides satisfiability by exhaustive enumeration (≤ 20 vars).
func bruteForce(f *cnf.Formula) bool {
	n := f.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		a := make(cnf.Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return true
		}
	}
	return false
}

func randomCNF(rng *rand.Rand, nVars, nClauses, width int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		w := 1 + rng.Intn(width)
		cl := make([]cnf.Lit, 0, w)
		for j := 0; j < w; j++ {
			v := 1 + rng.Intn(nVars)
			l := cnf.PosLit(v)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		f.AddClause(cl...)
	}
	return f
}

// TestRandomAgainstBruteForce cross-checks the CDCL answer against
// exhaustive enumeration on hundreds of small random formulas, covering
// both phases of the SAT/UNSAT transition.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(5*nVars)
		f := randomCNF(rng, nVars, nClauses, 4)
		want := bruteForce(f)
		s := New(f, Options{})
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver %v, brute force sat=%v\n%s", iter, got, want, f.Dimacs())
		}
		if got == Sat && !f.Satisfies(s.Model()) {
			t.Fatalf("iter %d: invalid model", iter)
		}
	}
}

// TestRandomWithPhaseSaving repeats the cross-check with phase saving and
// a different restart cadence to exercise those paths.
func TestRandomWithPhaseSaving(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		nVars := 4 + rng.Intn(7)
		f := randomCNF(rng, nVars, 3+rng.Intn(4*nVars), 3)
		want := bruteForce(f)
		s := New(f, Options{PhaseSaving: true, RestartBase: 10, VarDecay: 0.8})
		if got := s.Solve(); (got == Sat) != want {
			t.Fatalf("iter %d: solver %v, want sat=%v", iter, got, want)
		}
	}
}

func TestIncrementalAddClause(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2), lit(3))
	s := New(f, Options{})
	if s.Solve() != Sat {
		t.Fatal("initial solve should be SAT")
	}
	// Force each variable false one at a time.
	s.AddClause(nlit(1))
	s.AddClause(nlit(2))
	if s.Solve() != Sat {
		t.Fatal("still SAT with x3")
	}
	if m := s.Model(); !m[3] || m[1] || m[2] {
		t.Fatalf("model should be 001, got %v", m[1:])
	}
	if !s.AddClause(nlit(3)) {
		// AddClause may detect the conflict eagerly.
		return
	}
	if s.Solve() != Unsat {
		t.Fatal("should be UNSAT after forcing all false")
	}
}

func TestAddClauseAfterUnsatStaysUnsat(t *testing.T) {
	s := NewEmpty(1, Options{})
	s.AddClause(lit(1))
	s.AddClause(nlit(1))
	if s.Solve() != Unsat {
		t.Fatal("want UNSAT")
	}
	s.AddClause(lit(1))
	if s.Solve() != Unsat {
		t.Fatal("UNSAT must be sticky")
	}
}

func TestConflictBudget(t *testing.T) {
	f := pigeonhole(9, 8) // hard enough to exceed a tiny budget
	s := New(f, Options{MaxConflicts: 5})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown under 5-conflict budget", st)
	}
	if s.Stats().Conflicts < 5 {
		t.Fatalf("conflicts = %d, want >= 5", s.Stats().Conflicts)
	}
}

func TestDeadline(t *testing.T) {
	f := pigeonhole(11, 10)
	s := New(f, Options{Deadline: time.Now().Add(10 * time.Millisecond)})
	start := time.Now()
	st := s.Solve()
	if st == Sat {
		t.Fatal("PHP(11,10) cannot be SAT")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := NewEmpty(2, Options{})
	s.AddClause(lit(1), nlit(1))
	s.AddClause(lit(2))
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	if m := s.Model(); !m[2] {
		t.Fatal("x2 should be true")
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := pigeonhole(5, 4)
	s := New(f, Options{})
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("expected nonzero stats, got %+v", st)
	}
}

func TestGrowToNewVariables(t *testing.T) {
	s := NewEmpty(0, Options{})
	s.AddClause(lit(5))
	if s.NumVars() != 5 {
		t.Fatalf("NumVars = %d, want 5", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
}

// TestBinaryClausePropagation pins the inline binary-clause BCP path: a
// chain of binary implications propagates end to end, and a binary conflict
// is analyzed like any other (heap/Luby/median helpers now live in
// internal/solverutil with their own tests).
func TestBinaryClausePropagation(t *testing.T) {
	s := NewEmpty(5, Options{})
	// 1 ⇒ 2 ⇒ 3 ⇒ 4 ⇒ 5 as binary clauses, then assert 1.
	for v := 1; v < 5; v++ {
		s.AddClause(nlit(v), lit(v+1))
	}
	s.AddClause(lit(1))
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	m := s.Model()
	for v := 1; v <= 5; v++ {
		if !m[v] {
			t.Fatalf("x%d should be forced true by the binary chain", v)
		}
	}
	// Add 5 ⇒ ¬1: now the chain is contradictory with x1.
	if s.AddClause(nlit(5), nlit(1)) {
		t.Fatal("binary conflict at level 0 should report UNSAT")
	}
	if s.Solve() != Unsat {
		t.Fatal("want UNSAT")
	}
}

// Benchmark-ish regression: a moderately hard instance solved quickly.
func TestGraphColoringAsCNFSmoke(t *testing.T) {
	// 3-color an odd cycle C5 (χ=3): SAT with 3 colors, UNSAT with 2.
	build := func(k int) *cnf.Formula {
		n := 5
		f := cnf.NewFormula(n * k)
		v := func(i, c int) cnf.Lit { return cnf.PosLit(i*k + c + 1) }
		for i := 0; i < n; i++ {
			cl := make([]cnf.Lit, k)
			for c := 0; c < k; c++ {
				cl[c] = v(i, c)
			}
			f.AddClause(cl...)
		}
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			for c := 0; c < k; c++ {
				f.AddClause(v(i, c).Neg(), v(j, c).Neg())
			}
		}
		return f
	}
	if st, _ := solveFormula(t, build(3)); st != Sat {
		t.Fatal("C5 is 3-colorable")
	}
	if st, _ := solveFormula(t, build(2)); st != Unsat {
		t.Fatal("C5 is not 2-colorable")
	}
}

func ExampleSolver() {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.NegLit(1))
	s := New(f, Options{})
	fmt.Println(s.Solve())
	// Output: SAT
}

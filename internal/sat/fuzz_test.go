package sat

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/testutil"
)

// cnfFromFuzz decodes fuzz input into a small CNF formula plus solver
// options, deterministically. Byte 0 picks the variable count, byte 1 the
// knob set; each following byte is a literal, with 0 acting as a clause
// separator. Formulas are capped small enough for the brute-force oracle.
func cnfFromFuzz(data []byte) (*cnf.Formula, Options, bool) {
	if len(data) < 3 {
		return nil, Options{}, false
	}
	nVars := 1 + int(data[0]%12)
	knobs := data[1]
	opts := Options{
		ChronoThreshold: int(knobs % 4),
		DynamicLBD:      knobs&8 != 0,
	}
	if knobs&4 != 0 {
		opts.VivifyBudget = 200
	}
	if knobs&16 != 0 {
		opts.RestartBase = 1
	}
	f := cnf.NewFormula(nVars)
	var clause []cnf.Lit
	flush := func() {
		if len(clause) > 0 {
			f.AddClause(clause...)
			clause = clause[:0]
		}
	}
	for _, b := range data[2:] {
		if f.NumClauses() >= 80 {
			break
		}
		if b == 0 || len(clause) >= 6 {
			flush()
			continue
		}
		idx := int(b) % (2 * nVars)
		l := cnf.PosLit(idx/2 + 1)
		if idx&1 == 1 {
			l = l.Neg()
		}
		clause = append(clause, l)
	}
	flush()
	return f, opts, true
}

// FuzzSATSolve feeds random CNF formulas through the CDCL engine under
// fuzz-chosen knob combinations and cross-checks the answer (and any
// model) against the brute-force reference oracle.
func FuzzSATSolve(f *testing.F) {
	f.Add([]byte{3, 0, 1, 3, 0, 2, 4, 0, 5, 6})
	f.Add([]byte{5, 13, 1, 2, 3, 0, 4, 5, 6, 0, 7, 8, 9, 0, 2, 9})
	f.Add([]byte{11, 29, 10, 20, 30, 0, 40, 50, 60, 0, 70, 80, 90, 0, 1, 2})
	f.Add([]byte{1, 7, 4, 0, 1}) // (x1) ∧ (¬x1): UNSAT
	f.Fuzz(func(t *testing.T, data []byte) {
		formula, opts, ok := cnfFromFuzz(data)
		if !ok {
			return
		}
		want, _ := testutil.BruteForceSAT(formula)
		s := New(formula, opts)
		got := s.Solve()
		if got == Unknown {
			t.Fatalf("Unknown without a budget (opts %+v)", opts)
		}
		if (got == Sat) != want {
			t.Fatalf("engine says %v, reference says sat=%t (opts %+v, formula %d vars %d clauses)",
				got, want, opts, formula.NumVars, formula.NumClauses())
		}
		if got == Sat {
			if err := testutil.CheckModel(formula, s.Model()); err != nil {
				t.Fatalf("invalid model: %v (opts %+v)", err, opts)
			}
		}
	})
}

package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// vivifyGadget returns a formula whose long clause (a ∨ b ∨ c ∨ d) is
// shrinkable: the binary clause (a ∨ b) makes the suffix c, d redundant
// (¬a propagates b, satisfying the long clause at its second literal).
// Variables are offset so the gadget can ride along any other instance.
func vivifyGadget(f *cnf.Formula, base int) {
	a, b, c, d := base+1, base+2, base+3, base+4
	f.AddClause(lit(a), lit(b))
	f.AddClause(lit(a), lit(b), lit(c), lit(d))
}

func TestChronoBacktracksCounted(t *testing.T) {
	f := pigeonhole(6, 5)
	s := New(f, Options{ChronoThreshold: 1})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(6,5) with chrono = %v, want UNSAT", got)
	}
	if s.Stats().ChronoBacktracks == 0 {
		t.Fatal("ChronoThreshold=1 on PHP(6,5) never backtracked chronologically")
	}
}

func TestChronoDisabledByDefault(t *testing.T) {
	f := pigeonhole(6, 5)
	s := New(f, Options{})
	s.Solve()
	if n := s.Stats().ChronoBacktracks; n != 0 {
		t.Fatalf("default options produced %d chrono backtracks, want 0", n)
	}
}

func TestVivificationShrinksRedundantSuffix(t *testing.T) {
	f := pigeonhole(5, 4) // conflict-rich so restarts (and passes) happen
	vivifyGadget(f, f.NumVars)
	s := New(f, Options{RestartBase: 1, VivifyBudget: 10000})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(5,4)+gadget = %v, want UNSAT", got)
	}
	if s.Stats().VivifiedLits < 2 {
		t.Fatalf("VivifiedLits = %d, want >= 2 (gadget suffix c, d is implied redundant)",
			s.Stats().VivifiedLits)
	}
}

func TestDynamicLBDRetiersClauses(t *testing.T) {
	f := pigeonhole(7, 6)
	s := New(f, Options{DynamicLBD: true})
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(7,6) = %v, want UNSAT", got)
	}
	if s.Stats().LBDUpdates == 0 {
		t.Fatal("DynamicLBD on PHP(7,6) never improved a stored LBD")
	}
}

// TestKnobsAgreeWithBruteForce cross-checks every knob combination against
// exhaustive enumeration on random small instances: the knobs steer the
// search, never the answer.
func TestKnobsAgreeWithBruteForce(t *testing.T) {
	knobSets := []Options{
		{ChronoThreshold: 1},
		{ChronoThreshold: 3},
		{VivifyBudget: 500, RestartBase: 1},
		{DynamicLBD: true},
		{ChronoThreshold: 1, VivifyBudget: 500, DynamicLBD: true, RestartBase: 1},
	}
	rng := rand.New(rand.NewSource(20260726))
	for iter := 0; iter < 60; iter++ {
		f := randomCNF(rng, 8+rng.Intn(5), 30+rng.Intn(25), 3)
		want := bruteForce(f)
		for ki, opts := range knobSets {
			s := New(f, opts)
			got := s.Solve()
			if (got == Sat) != want || got == Unknown {
				t.Fatalf("iter %d knobs %d: got %v, brute force says sat=%t", iter, ki, got, want)
			}
			if got == Sat && !f.Satisfies(s.Model()) {
				t.Fatalf("iter %d knobs %d: model does not satisfy the formula", iter, ki)
			}
		}
	}
}

// TestKnobsWithAssumptions exercises chrono + vivify under the incremental
// assumption interface (the chromatic-probe path).
func TestKnobsWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		f := randomCNF(rng, 10, 35, 3)
		s := New(f, Options{ChronoThreshold: 1, VivifyBudget: 200, DynamicLBD: true, RestartBase: 1})
		a := cnf.PosLit(1 + rng.Intn(10))
		got := s.SolveAssuming([]cnf.Lit{a})
		// Reference: brute force on f ∧ a.
		fa := &cnf.Formula{NumVars: f.NumVars, Clauses: append(append([]cnf.Clause{}, f.Clauses...), cnf.Clause{a})}
		want := bruteForce(fa)
		if (got == Sat) != want || got == Unknown {
			t.Fatalf("iter %d: SolveAssuming(%v) = %v, brute force says sat=%t", iter, a, got, want)
		}
		if got == Sat {
			m := s.Model()
			if !fa.Satisfies(m) {
				t.Fatalf("iter %d: assuming model invalid", iter)
			}
		}
	}
}

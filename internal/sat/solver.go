// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the lineage the paper builds on (GRASP, Chaff/zChaff): watched
// literal Boolean constraint propagation, first-UIP conflict analysis with
// clause learning, VSIDS-style decision heuristics, phase saving, Luby
// restarts, and Glucose-style LBD-driven learnt-clause deletion.
//
// The clause database is a flat arena (internal/solverutil): clauses are
// int32 offsets into one shared []uint32 store, watch lists are slices of
// {clause, blocker} structs, and binary clauses are propagated inline from
// dedicated binary watch lists without touching the arena at all. This is
// the cache-friendly memory layout of the Glucose/MiniSat-2.2 lineage, in
// place of the pointer-per-clause layout of the original ports.
//
// The solver is used directly for the K-coloring decision variant and is
// the algorithmic core that internal/pbsolver extends with pseudo-Boolean
// constraints (paper §2.3).
package sat

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/solverutil"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted before an answer
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Options bound the search effort.
type Options struct {
	// MaxConflicts stops the search after this many conflicts (0 = no
	// limit).
	MaxConflicts int64
	// Deadline stops the search when passed (zero value = no deadline).
	Deadline time.Time
	// Context, when non-nil, aborts the search (Unknown) as soon as it is
	// cancelled or its deadline passes; checked on the same amortized
	// schedule as Deadline.
	Context context.Context
	// PhaseSaving re-uses the last assigned polarity on decisions.
	PhaseSaving bool
	// VarDecay is the VSIDS activity decay factor in (0,1); 0 selects the
	// default 0.95.
	VarDecay float64
	// RestartBase is the Luby restart unit in conflicts; 0 selects 100.
	RestartBase int64
	// GlueLBD is the LBD at or below which learnt clauses are never
	// deleted ("glue" clauses, Audemard & Simon 2009); 0 selects 2.
	GlueLBD int
	// ReduceInterval is the conflict count between learnt-database
	// reductions (the interval grows by ReduceInterval/8 after each
	// reduction); 0 selects 2000.
	ReduceInterval int64
	// ChronoThreshold enables chronological backtracking (Nadel & Ryvchin
	// 2018): when the backjump level is more than this many levels below
	// the conflict level, backtrack a single level instead and assert the
	// learnt clause there, keeping the rest of the trail intact. 0
	// disables (always backjump).
	ChronoThreshold int
	// VivifyBudget enables clause vivification at restarts: up to this
	// many propagations are spent per restart probing long clauses (the
	// negation of each literal is propagated in turn) and shrinking
	// clauses whose suffix is implied by the prefix. 0 disables.
	VivifyBudget int64
	// DynamicLBD recomputes the LBD of learnt clauses each time they
	// participate in conflict analysis, re-tiering glue clauses as the
	// search's level structure evolves (Audemard & Simon's LBD update).
	DynamicLBD bool
	// Export, when non-nil, receives every learnt clause whose LBD is at
	// or below ExportLBD (clause sharing between cooperating solver
	// instances, e.g. internal/par's cube-and-conquer workers). Called on
	// the conflict path with the solver's reusable analysis buffer:
	// implementations must copy and be fast.
	Export solverutil.ExportFunc
	// ExportLBD is the sharing threshold: only learnt clauses with LBD ≤
	// this are exported (0 selects solverutil.DefaultShareLBD).
	ExportLBD int
	// Import, when non-nil, is drained at every restart (and at the start
	// of each Solve call): the returned foreign clauses are attached as
	// learnt clauses. Every imported clause must be implied by this
	// solver's clause database — sound when all sharing solvers load the
	// same formula, regardless of their assumptions (see
	// solverutil.SharedClause).
	Import solverutil.ImportFunc
	// Progress, when non-nil, receives rate-limited snapshots of the
	// search counters, called from the solving goroutine on the same
	// amortized schedule as the budget checks. Implementations must be
	// fast; slow callbacks stall the search.
	Progress solverutil.ProgressFunc
	// ProgressInterval is the minimum time between Progress calls; 0
	// selects solverutil.DefaultProgressInterval (200ms).
	ProgressInterval time.Duration
}

func (o Options) glueLBD() int {
	if o.GlueLBD == 0 {
		return solverutil.DefaultGlueLBD
	}
	return o.GlueLBD
}

func (o Options) reduceInterval() int64 {
	if o.ReduceInterval == 0 {
		return solverutil.DefaultReduceInterval
	}
	return o.ReduceInterval
}

func (o Options) exportLBD() int {
	if o.ExportLBD == 0 {
		return solverutil.DefaultShareLBD
	}
	return o.ExportLBD
}

// Stats counts search work, mirroring the counters SAT papers report.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnts      int64
	Reduces      int64 // learnt-database reductions
	Removed      int64 // learnt clauses deleted by reductions
	ArenaGCs     int64 // arena compactions
	// ChronoBacktracks counts conflicts resolved by a one-level
	// chronological backtrack instead of a full backjump.
	ChronoBacktracks int64
	// VivifiedLits counts literals removed from clauses by vivification.
	VivifiedLits int64
	// LBDUpdates counts learnt clauses whose LBD improved during dynamic
	// recomputation.
	LBDUpdates int64
	// Exported and Imported count learnt clauses that crossed the
	// Options.Export / Options.Import sharing hooks.
	Exported int64
	Imported int64
	MaxDepth int
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// conflict identifies the clause that falsified the trail: an arena
// reference, or an inline binary clause (a ∨ b) when cref is CRefUndef.
type conflict struct {
	cref solverutil.CRef
	a, b cnf.Lit
}

var noConflict = conflict{cref: solverutil.CRefUndef}

func (c conflict) isConflict() bool { return c.cref != solverutil.CRefUndef || c.a != 0 }

// Solver is a CDCL SAT solver over variables 1..NumVars.
type Solver struct {
	opts Options

	nVars int
	db    solverutil.ClauseDB
	nBin  int // problem binary clauses (in the binary watch lists only)

	assign    []lbool // by variable
	level     []int
	reasonCl  []solverutil.CRef // implying clause, or CRefUndef
	reasonBin []cnf.Lit         // other literal of an implying binary clause, or 0
	trail     []cnf.Lit
	trailAt   []int // decision-level boundaries in trail
	qhead     int

	activity []float64
	varInc   float64
	varDecay float64
	order    solverutil.VarHeap
	phase    []bool

	claInc   float64
	seen     []bool
	lbd      solverutil.LBDCounter
	unsatNow bool // empty clause present

	// Reusable conflict-analysis buffers (analyze is the second-hottest
	// path after propagate; none of these may be retained by callers).
	learntBuf  []cnf.Lit
	scratchBuf []cnf.Lit
	cleanupBuf []int

	// Vivification cursors: where the next restart's pass resumes in the
	// problem and learnt clause lists (round-robin under the budget).
	vivHeadCl int
	vivHeadLt int
	vivBuf    []cnf.Lit
	probing   bool // vivification probe in progress: don't save phases

	impBuf []solverutil.SharedClause // reusable Import drain buffer

	prog  solverutil.ProgressEmitter
	stats Stats
}

// New builds a solver from a CNF formula. The formula is not modified.
func New(f *cnf.Formula, opts Options) *Solver {
	s := NewEmpty(f.NumVars, opts)
	for _, c := range f.Clauses {
		s.AddClause(c...)
	}
	return s
}

// NewEmpty builds a solver over n variables with no clauses.
func NewEmpty(n int, opts Options) *Solver {
	if opts.VarDecay == 0 {
		opts.VarDecay = 0.95
	}
	if opts.RestartBase == 0 {
		opts.RestartBase = 100
	}
	s := &Solver{opts: opts, varInc: 1, varDecay: opts.VarDecay, claInc: 1}
	s.prog = solverutil.NewProgressEmitter(opts.Progress, opts.ProgressInterval)
	// Index 0 is unused in all variable-indexed slices (variables are 1..n);
	// watches use two slots per variable including the dummy pair.
	s.assign = []lbool{lUndef}
	s.level = []int{0}
	s.reasonCl = []solverutil.CRef{solverutil.CRefUndef}
	s.reasonBin = []cnf.Lit{0}
	s.activity = []float64{0}
	s.phase = []bool{false}
	s.seen = []bool{false}
	s.db.Init()
	s.growTo(n)
	return s
}

func (s *Solver) growTo(n int) {
	for s.nVars < n {
		s.nVars++
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reasonCl = append(s.reasonCl, solverutil.CRefUndef)
		s.reasonBin = append(s.reasonBin, 0)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
		s.seen = append(s.seen, false)
		s.db.GrowVar()
	}
	// Rebuild the order heap lazily at Solve time; for incremental adds,
	// push new vars now.
	s.order.Ensure(s.nVars, s.activity)
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return s.nVars }

// Stats returns search counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

// value returns the current truth value of a literal.
func (s *Solver) value(l cnf.Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

// valueEnc is value for an encoded literal (hot path).
func (s *Solver) valueEnc(u uint32) lbool {
	a := s.assign[u>>1]
	if a == lUndef {
		return lUndef
	}
	if (u&1 == 0) == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause at decision level 0. May only be called before
// Solve or between Solve calls (the solver backtracks to level 0 first).
// Returns false if the formula became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	s.cancelUntil(0)
	norm, taut := cnf.Clause(lits).Normalize()
	if taut {
		return true
	}
	// Track new variables.
	for _, l := range norm {
		if l.Var() > s.nVars {
			s.growTo(l.Var())
		}
	}
	// Drop satisfied clauses / false literals at level 0.
	kept := norm[:0]
	for _, l := range norm {
		switch s.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	switch len(kept) {
	case 0:
		s.unsatNow = true
		return false
	case 1:
		if !s.enqueue(kept[0], solverutil.CRefUndef, 0) {
			s.unsatNow = true
			return false
		}
		if s.propagate().isConflict() {
			s.unsatNow = true
			return false
		}
		return true
	case 2:
		s.db.AttachBinary(kept[0], kept[1])
		s.nBin++
		return true
	}
	c := s.db.Arena.Alloc(kept, false)
	s.db.Clauses = append(s.db.Clauses, c)
	s.db.Attach(c)
	return true
}

// enqueue assigns literal l with the given reason (arena clause, binary
// other-literal, or neither). Returns false on an immediate conflict with
// the existing assignment.
func (s *Solver) enqueue(l cnf.Lit, fromCl solverutil.CRef, fromBin cnf.Lit) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	s.uncheckedEnqueue(l, fromCl, fromBin)
	return true
}

// uncheckedEnqueue assigns a literal known to be unassigned.
func (s *Solver) uncheckedEnqueue(l cnf.Lit, fromCl solverutil.CRef, fromBin cnf.Lit) {
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	if !s.probing {
		// Vivification's artificial probe assignments must not overwrite
		// polarities saved from the real search trajectory.
		s.phase[v] = l.Sign()
	}
	s.level[v] = s.decisionLevel()
	s.reasonCl[v] = fromCl
	s.reasonBin[v] = fromBin
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailAt) }

// propagate performs watched-literal BCP: binary clauses inline from the
// binary watch lists, longer clauses through blocker-carrying watchers over
// the arena. Returns the conflicting clause (noConflict if none).
func (s *Solver) propagate() conflict {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		wl := solverutil.EncodeLit(l)
		falsified := l.Neg()

		// Inline binary propagation: no arena access at all.
		for _, imp := range s.db.BinWatches[wl] {
			switch s.valueEnc(imp) {
			case lFalse:
				s.qhead = len(s.trail)
				return conflict{cref: solverutil.CRefUndef, a: falsified, b: solverutil.DecodeLit(imp)}
			case lUndef:
				s.uncheckedEnqueue(solverutil.DecodeLit(imp), solverutil.CRefUndef, falsified)
			}
		}

		// Long clauses: two-watched-literal scan with blockers.
		ws := s.db.Watches[wl]
		fEnc := solverutil.EncodeLit(falsified)
		i, j := 0, 0
		for i < len(ws) {
			w := ws[i]
			if s.valueEnc(w.Blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.CRef
			lits := s.db.Arena.Lits(c)
			// Ensure the falsified literal is lits[1].
			if lits[0] == fEnc {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			nw := solverutil.Watcher{CRef: c, Blocker: first}
			// If the other watched literal is true, the clause is satisfied.
			if first != w.Blocker && s.valueEnc(first) == lTrue {
				ws[j] = nw
				i++
				j++
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(lits); k++ {
				if s.valueEnc(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.db.Watches[lits[1]^1] = append(s.db.Watches[lits[1]^1], nw)
					moved = true
					break
				}
			}
			i++
			if moved {
				continue // watch moved elsewhere; drop from this list
			}
			// Unit or conflicting.
			ws[j] = nw
			j++
			if s.valueEnc(first) == lFalse {
				// Conflict: flush the remaining watchers and bail out.
				for ; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.db.Watches[wl] = ws[:j]
				s.qhead = len(s.trail)
				return conflict{cref: c}
			}
			s.uncheckedEnqueue(solverutil.DecodeLit(first), c, 0)
		}
		s.db.Watches[wl] = ws[:j]
	}
	return noConflict
}

// conflictLits appends the conflict clause's literals to out.
func (s *Solver) conflictLits(confl conflict, out []cnf.Lit) []cnf.Lit {
	if confl.cref != solverutil.CRefUndef {
		if s.db.Arena.Learnt(confl.cref) {
			s.bumpClause(confl.cref)
			s.updateLBD(confl.cref)
		}
		for _, u := range s.db.Arena.Lits(confl.cref) {
			out = append(out, solverutil.DecodeLit(u))
		}
		return out
	}
	return append(out, confl.a, confl.b)
}

// reasonLits appends the literals v's assignment was implied from
// (excluding the implied literal itself) to out.
func (s *Solver) reasonLits(v int, out []cnf.Lit) []cnf.Lit {
	if rc := s.reasonCl[v]; rc != solverutil.CRefUndef {
		if s.db.Arena.Learnt(rc) {
			s.bumpClause(rc)
			s.updateLBD(rc)
		}
		lits := s.db.Arena.Lits(rc)
		// The implied literal of a reason clause is always lits[0]: enqueue
		// is only ever called with the unit/asserting literal in front, and
		// propagation never reorders a clause whose lits[0] is true.
		if lits[0]>>1 != uint32(v) {
			panic("sat: reason clause invariant violated")
		}
		for _, u := range lits[1:] {
			out = append(out, solverutil.DecodeLit(u))
		}
		return out
	}
	if rb := s.reasonBin[v]; rb != 0 {
		return append(out, rb)
	}
	panic("sat: missing reason during analysis")
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (with the asserting literal first), the backtrack level, and the LBD of
// the learnt clause. The returned slice is a reusable buffer, valid until
// the next analyze call.
func (s *Solver) analyze(confl conflict) ([]cnf.Lit, int, int) {
	learnt := append(s.learntBuf[:0], 0) // slot 0 reserved for the asserting literal
	cleanup := s.cleanupBuf[:0]
	counter := 0
	var p cnf.Lit
	idx := len(s.trail) - 1

	lits := s.conflictLits(confl, s.scratchBuf[:0])
	for {
		for _, q := range lits {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		lits = s.reasonLits(p.Var(), lits[:0])
	}
	learnt[0] = p.Neg()
	s.scratchBuf = lits[:0]

	// Conflict-clause minimization: drop literals implied by the rest.
	learnt = s.minimize(learnt)

	// Compute backtrack level: the second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	lbd := s.computeLBD(learnt)
	for _, v := range cleanup {
		s.seen[v] = false
	}
	s.learntBuf = learnt
	s.cleanupBuf = cleanup[:0]
	return learnt, btLevel, lbd
}

// minimize removes learnt-clause literals whose reason clauses are fully
// subsumed by the remaining marked literals (local minimization). At call
// time seen[v] is true exactly for the variables of learnt[1:].
func (s *Solver) minimize(learnt []cnf.Lit) []cnf.Lit {
	out := learnt[:1]
	for _, l := range learnt[1:] {
		v := l.Var()
		redundant := false
		if rc := s.reasonCl[v]; rc != solverutil.CRefUndef {
			redundant = true
			for _, u := range s.db.Arena.Lits(rc) {
				qv := int(u >> 1)
				if qv == v {
					continue
				}
				if s.level[qv] != 0 && !s.seen[qv] {
					redundant = false
					break
				}
			}
		} else if rb := s.reasonBin[v]; rb != 0 {
			qv := rb.Var()
			redundant = s.level[qv] == 0 || s.seen[qv]
		}
		if !redundant {
			out = append(out, l)
		}
	}
	return out
}

// computeLBD returns the number of distinct decision levels among the
// literals (Audemard & Simon's literal-blocks distance).
func (s *Solver) computeLBD(lits []cnf.Lit) int {
	return s.lbd.CountLits(lits, s.level)
}

// updateLBD recomputes a learnt clause's LBD against the current level
// structure and lowers the stored value when it improved (dynamic LBD;
// no-op unless Options.DynamicLBD is set).
func (s *Solver) updateLBD(c solverutil.CRef) {
	if !s.opts.DynamicLBD {
		return
	}
	if n := s.lbd.Count(s.db.Arena.Lits(c), s.level); n < s.db.Arena.LBD(c) {
		s.db.Arena.SetLBD(c, n)
		s.stats.LBDUpdates++
	}
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.Update(v, s.activity)
}

func (s *Solver) bumpClause(c solverutil.CRef) {
	act := s.db.Arena.Activity(c) + float32(s.claInc)
	s.db.Arena.SetActivity(c, act)
	if act > 1e20 {
		for _, lc := range s.db.Learnts {
			s.db.Arena.SetActivity(lc, s.db.Arena.Activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= s.varDecay
	s.claInc /= 0.999
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailAt[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reasonCl[v] = solverutil.CRefUndef
		s.reasonBin[v] = 0
		s.order.Push(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailAt = s.trailAt[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar selects the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() int {
	for {
		v := s.order.Pop(s.activity)
		if v == 0 {
			return 0
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// record attaches a learnt clause and enqueues its asserting literal.
func (s *Solver) record(lits []cnf.Lit, lbd int) {
	switch len(lits) {
	case 1:
		s.uncheckedEnqueue(lits[0], solverutil.CRefUndef, 0)
	case 2:
		s.db.AttachBinary(lits[0], lits[1])
		s.stats.Learnts++
		s.uncheckedEnqueue(lits[0], solverutil.CRefUndef, lits[1])
	default:
		c := s.db.Arena.Alloc(lits, true)
		s.db.Arena.SetLBD(c, lbd)
		s.db.Learnts = append(s.db.Learnts, c)
		s.db.Attach(c)
		s.bumpClause(c)
		s.stats.Learnts++
		s.uncheckedEnqueue(lits[0], c, 0)
	}
}

// exportLearnt offers a freshly learnt clause to the Export hook when its
// LBD passes the sharing threshold. lits is the reusable analysis buffer;
// the hook contract requires the receiver to copy.
func (s *Solver) exportLearnt(lits []cnf.Lit, lbd int) {
	if s.opts.Export == nil || lbd > s.opts.exportLBD() || len(lits) > solverutil.MaxShareLen {
		return
	}
	s.opts.Export(lits, lbd)
	s.stats.Exported++
}

// importShared drains the Import hook and attaches the foreign clauses as
// learnt clauses. Must be called at decision level 0. Returns false when an
// imported clause (necessarily implied by the database) exposes root
// unsatisfiability.
func (s *Solver) importShared() bool {
	if s.opts.Import == nil {
		return true
	}
	s.impBuf = s.opts.Import(s.impBuf[:0])
	for _, sc := range s.impBuf {
		if !s.addSharedClause(sc.Lits, sc.LBD) {
			return false
		}
	}
	return true
}

// addSharedClause attaches one imported clause at decision level 0. Unlike
// AddClause, the clause enters the learnt database (tiered by the
// exporter's LBD) so the reduction policy can drop it again if it never
// helps. Returns false on root conflict.
func (s *Solver) addSharedClause(lits []cnf.Lit, lbd int) bool {
	norm, taut := cnf.Clause(lits).Normalize()
	if taut {
		return true
	}
	for _, l := range norm {
		if l.Var() > s.nVars {
			s.growTo(l.Var())
		}
	}
	kept := norm[:0]
	for _, l := range norm {
		switch s.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	s.stats.Imported++
	switch len(kept) {
	case 0:
		return false
	case 1:
		if !s.enqueue(kept[0], solverutil.CRefUndef, 0) {
			return false
		}
		return !s.propagate().isConflict()
	case 2:
		s.db.AttachBinary(kept[0], kept[1])
		return true
	}
	c := s.db.Arena.Alloc(kept, true)
	s.db.Arena.SetLBD(c, lbd)
	s.db.Learnts = append(s.db.Learnts, c)
	s.db.Attach(c)
	return true
}

// locked reports whether the clause is the reason of its first literal's
// current assignment (and must therefore survive reduction and GC).
func (s *Solver) locked(c solverutil.CRef) bool {
	v := int(s.db.Arena.Lits(c)[0] >> 1)
	return s.reasonCl[v] == c && s.assign[v] != lUndef
}

// reduceDB runs one LBD-based learnt-database reduction, compacting the
// arena when freed clauses waste more than a quarter of it.
func (s *Solver) reduceDB() {
	removed := s.db.Reduce(s.opts.glueLBD(), s.locked)
	if removed == 0 {
		return
	}
	s.stats.Reduces++
	s.stats.Removed += int64(removed)
	if s.db.NeedsGC() {
		s.garbageCollect()
	}
}

// garbageCollect compacts the arena, remapping every live clause reference
// (clause lists, watchers, reasons).
func (s *Solver) garbageCollect() {
	s.db.GC(func(reloc func(solverutil.CRef) solverutil.CRef) {
		for v := 1; v <= s.nVars; v++ {
			if s.assign[v] != lUndef && s.reasonCl[v] != solverutil.CRefUndef {
				s.reasonCl[v] = reloc(s.reasonCl[v])
			}
		}
	})
	s.stats.ArenaGCs++
}

// Solve runs the CDCL search. It returns Sat, Unsat, or Unknown when the
// conflict budget or deadline is exceeded.
func (s *Solver) Solve() Status {
	return s.SolveAssuming(nil)
}

// budgetExpired reports whether the wall-clock deadline has passed or the
// configured context has been cancelled.
func (s *Solver) budgetExpired() bool {
	if s.opts.Context != nil && s.opts.Context.Err() != nil {
		return true
	}
	return !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline)
}

// SolveAssuming solves under the given assumption literals, which are
// enforced as the first decisions of every descent. Unsat then means
// "unsatisfiable under the assumptions" — the solver remains usable and
// learnt clauses remain valid, which is what makes incremental
// chromatic-number search cheap (each K-colorability probe reuses all
// learning from previous probes).
func (s *Solver) SolveAssuming(assumptions []cnf.Lit) Status {
	if s.unsatNow {
		return Unsat
	}
	if s.budgetExpired() {
		return Unknown
	}
	for _, a := range assumptions {
		if a.Var() > s.nVars {
			s.growTo(a.Var())
		}
	}
	s.cancelUntil(0)
	if s.propagate().isConflict() {
		s.unsatNow = true
		return Unsat
	}
	if !s.importShared() {
		s.unsatNow = true
		return Unsat
	}
	s.order.Rebuild(s.nVars, s.activity)

	restartNum := int64(1)
	conflictsAtRestart := s.stats.Conflicts
	restartLimit := solverutil.Luby(restartNum) * s.opts.RestartBase
	reduceInterval := s.opts.reduceInterval()
	nextReduce := s.stats.Conflicts + reduceInterval
	checkBudget := 0

	for {
		// Deadline check, amortized over iterations (conflict- or
		// decision-heavy alike).
		checkBudget++
		if checkBudget >= 256 {
			checkBudget = 0
			if s.budgetExpired() {
				s.cancelUntil(0)
				return Unknown
			}
			if s.prog.Ready() {
				s.prog.Emit(s.progressSnapshot())
			}
		}
		confl := s.propagate()
		if confl.isConflict() {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsatNow = true
				return Unsat
			}
			learnt, btLevel, lbd := s.analyze(confl)
			s.exportLearnt(learnt, lbd)
			// Chronological backtracking: when the backjump would undo
			// more than ChronoThreshold levels, retreat one level instead
			// and assert the learnt clause there. The clause stays
			// asserting (all literals but learnt[0] are at levels ≤ the
			// computed backjump level, hence still false), and the rest of
			// the trail — often unrelated to the conflict — is kept. This
			// is the simple variant: the literal is recorded at the
			// retreat level rather than its true assertion level, so a
			// later backtrack below the retreat level drops the
			// implication until the watches rediscover it (sound; Nadel &
			// Ryvchin's out-of-order trail would keep it).
			if t := s.opts.ChronoThreshold; t > 0 && btLevel > 0 && s.decisionLevel()-btLevel > t {
				btLevel = s.decisionLevel() - 1
				s.stats.ChronoBacktracks++
			}
			s.cancelUntil(btLevel)
			s.record(learnt, lbd)
			s.decayActivities()
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if s.stats.Conflicts >= nextReduce {
				s.reduceDB()
				reduceInterval += s.opts.reduceInterval() / 8
				nextReduce = s.stats.Conflicts + reduceInterval
			}
			if s.stats.Conflicts-conflictsAtRestart >= restartLimit {
				s.stats.Restarts++
				restartNum++
				conflictsAtRestart = s.stats.Conflicts
				restartLimit = solverutil.Luby(restartNum) * s.opts.RestartBase
				s.cancelUntil(0)
				if !s.importShared() {
					s.unsatNow = true
					return Unsat
				}
				if s.opts.VivifyBudget > 0 && !s.vivify(s.opts.VivifyBudget) {
					s.unsatNow = true
					return Unsat
				}
			}
			continue
		}
		// Assumptions are installed as the first decision levels; after any
		// backjump below them they are re-applied here.
		if dl := s.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			switch s.value(a) {
			case lFalse:
				s.cancelUntil(0)
				return Unsat // conflicts with the assumptions
			case lTrue:
				s.trailAt = append(s.trailAt, len(s.trail)) // empty level
			default:
				s.trailAt = append(s.trailAt, len(s.trail))
				s.uncheckedEnqueue(a, solverutil.CRefUndef, 0)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all variables assigned
		}
		s.stats.Decisions++
		s.trailAt = append(s.trailAt, len(s.trail))
		if d := s.decisionLevel(); d > s.stats.MaxDepth {
			s.stats.MaxDepth = d
		}
		var l cnf.Lit
		if s.opts.PhaseSaving && s.phase[v] {
			l = cnf.PosLit(v)
		} else {
			l = cnf.NegLit(v)
		}
		s.uncheckedEnqueue(l, solverutil.CRefUndef, 0)
	}
}

// progressSnapshot assembles the current counters for a progress callback.
func (s *Solver) progressSnapshot() solverutil.Progress {
	return solverutil.Progress{
		Incumbent:        -1, // decision solver: no objective
		Conflicts:        s.stats.Conflicts,
		Decisions:        s.stats.Decisions,
		Propagations:     s.stats.Propagations,
		Restarts:         s.stats.Restarts,
		Learnts:          s.stats.Learnts,
		Reduces:          s.stats.Reduces,
		Removed:          s.stats.Removed,
		ChronoBacktracks: s.stats.ChronoBacktracks,
		VivifiedLits:     s.stats.VivifiedLits,
		LBDUpdates:       s.stats.LBDUpdates,
	}
}

// Model returns the satisfying assignment after Solve returned Sat. Index 0
// is unused.
func (s *Solver) Model() cnf.Assignment {
	m := make(cnf.Assignment, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver{vars=%d clauses=%d learnts=%d conflicts=%d}",
		s.nVars, len(s.db.Clauses)+s.nBin, len(s.db.Learnts), s.stats.Conflicts)
}

// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the lineage the paper builds on (GRASP, Chaff/zChaff): watched
// literal Boolean constraint propagation, first-UIP conflict analysis with
// clause learning, VSIDS-style decision heuristics, phase saving, Luby
// restarts, and activity-based learnt-clause deletion.
//
// The solver is used directly for the K-coloring decision variant and is
// the algorithmic core that internal/pbsolver extends with pseudo-Boolean
// constraints (paper §2.3).
package sat

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnf"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted before an answer
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Options bound the search effort.
type Options struct {
	// MaxConflicts stops the search after this many conflicts (0 = no
	// limit).
	MaxConflicts int64
	// Deadline stops the search when passed (zero value = no deadline).
	Deadline time.Time
	// Context, when non-nil, aborts the search (Unknown) as soon as it is
	// cancelled or its deadline passes; checked on the same amortized
	// schedule as Deadline.
	Context context.Context
	// PhaseSaving re-uses the last assigned polarity on decisions.
	PhaseSaving bool
	// VarDecay is the VSIDS activity decay factor in (0,1); 0 selects the
	// default 0.95.
	VarDecay float64
	// RestartBase is the Luby restart unit in conflicts; 0 selects 100.
	RestartBase int64
}

// Stats counts search work, mirroring the counters SAT papers report.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnts      int64
	MaxDepth     int
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []cnf.Lit
	learnt   bool
	activity float64
}

// Solver is a CDCL SAT solver over variables 1..NumVars.
type Solver struct {
	opts Options

	nVars   int
	clauses []*clause
	learnts []*clause
	watches [][]*clause // indexed by literal index (2 per var)

	assign  []lbool // by variable
	level   []int
	reason  []*clause
	trail   []cnf.Lit
	trailAt []int // decision-level boundaries in trail
	qhead   int

	activity []float64
	varInc   float64
	varDecay float64
	order    varHeap
	phase    []bool

	claInc   float64
	seen     []bool
	unsatNow bool // empty clause present

	stats Stats
}

// litIdx maps a literal to the watch-list index: positive literal of v is
// 2v, negative is 2v+1.
func litIdx(l cnf.Lit) int {
	v := l.Var()
	if l.Sign() {
		return 2 * v
	}
	return 2*v + 1
}

// New builds a solver from a CNF formula. The formula is not modified.
func New(f *cnf.Formula, opts Options) *Solver {
	s := NewEmpty(f.NumVars, opts)
	for _, c := range f.Clauses {
		s.AddClause(c...)
	}
	return s
}

// NewEmpty builds a solver over n variables with no clauses.
func NewEmpty(n int, opts Options) *Solver {
	if opts.VarDecay == 0 {
		opts.VarDecay = 0.95
	}
	if opts.RestartBase == 0 {
		opts.RestartBase = 100
	}
	s := &Solver{opts: opts, varInc: 1, varDecay: opts.VarDecay, claInc: 1}
	// Index 0 is unused in all variable-indexed slices (variables are 1..n);
	// watches use two slots per variable including the dummy pair.
	s.assign = []lbool{lUndef}
	s.level = []int{0}
	s.reason = []*clause{nil}
	s.activity = []float64{0}
	s.phase = []bool{false}
	s.seen = []bool{false}
	s.watches = [][]*clause{nil, nil}
	s.growTo(n)
	return s
}

func (s *Solver) growTo(n int) {
	for s.nVars < n {
		s.nVars++
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
	}
	// Rebuild the order heap lazily at Solve time; for incremental adds,
	// push new vars now.
	s.order.ensure(s.nVars, s.activity)
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return s.nVars }

// Stats returns search counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

// value returns the current truth value of a literal.
func (s *Solver) value(l cnf.Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() == (a == lTrue) {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause at decision level 0. May only be called before
// Solve or between Solve calls (the solver backtracks to level 0 first).
// Returns false if the formula became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	s.cancelUntil(0)
	norm, taut := cnf.Clause(lits).Normalize()
	if taut {
		return true
	}
	// Track new variables.
	for _, l := range norm {
		if l.Var() > s.nVars {
			s.growTo(l.Var())
		}
	}
	// Drop satisfied clauses / false literals at level 0.
	kept := norm[:0]
	for _, l := range norm {
		switch s.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	switch len(kept) {
	case 0:
		s.unsatNow = true
		return false
	case 1:
		if !s.enqueue(kept[0], nil) {
			s.unsatNow = true
			return false
		}
		if s.propagate() != nil {
			s.unsatNow = true
			return false
		}
		return true
	}
	c := &clause{lits: append([]cnf.Lit(nil), kept...)}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	// Watch the first two literals.
	i0, i1 := litIdx(c.lits[0].Neg()), litIdx(c.lits[1].Neg())
	s.watches[i0] = append(s.watches[i0], c)
	s.watches[i1] = append(s.watches[i1], c)
}

// enqueue assigns literal l with the given reason clause. Returns false on
// an immediate conflict with the existing assignment.
func (s *Solver) enqueue(l cnf.Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.phase[v] = l.Sign()
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailAt) }

// propagate performs watched-literal BCP. Returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		wl := litIdx(l) // clauses watching ¬(assigned literal true) i.e. watching l's falsified side
		ws := s.watches[wl]
		kept := ws[:0]
		var confl *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if confl != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the falsified literal is lits[1].
			falsified := l.Neg()
			if c.lits[0] == falsified {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If lits[0] is true, the clause is satisfied.
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					ni := litIdx(c.lits[1].Neg())
					s.watches[ni] = append(s.watches[ni], c)
					moved = true
					break
				}
			}
			if moved {
				continue // watch moved elsewhere; drop from this list
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				confl = c
			}
		}
		s.watches[wl] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p cnf.Lit
	idx := len(s.trail) - 1
	cleanup := []int{}

	reasonLits := func(c *clause, skipFirst bool) []cnf.Lit {
		if skipFirst {
			return c.lits[1:]
		}
		return c.lits
	}

	first := true
	for {
		var lits []cnf.Lit
		if first {
			lits = reasonLits(confl, false)
		} else {
			lits = reasonLits(confl, true)
		}
		if confl.learnt {
			s.bumpClause(confl)
		}
		for _, q := range lits {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		first = false
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
		if confl == nil {
			panic("sat: missing reason during analysis")
		}
		// The implied literal of a reason clause is always lits[0]: enqueue
		// is only ever called with the unit/asserting literal in front, and
		// propagation never reorders a clause whose lits[0] is true.
		if confl.lits[0].Var() != p.Var() {
			panic("sat: reason clause invariant violated")
		}
	}
	learnt[0] = p.Neg()

	// Conflict-clause minimization: drop literals implied by the rest.
	learnt = s.minimize(learnt, cleanup)

	// Compute backtrack level: the second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, v := range cleanup {
		s.seen[v] = false
	}
	return learnt, btLevel
}

// minimize removes learnt-clause literals whose reason clauses are fully
// subsumed by the remaining marked literals (local minimization).
func (s *Solver) minimize(learnt []cnf.Lit, marked []int) []cnf.Lit {
	markedSet := make(map[int]bool, len(marked))
	for _, l := range learnt[1:] {
		markedSet[l.Var()] = true
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		r := s.reason[l.Var()]
		if r == nil {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range r.lits {
			if q.Var() == l.Var() {
				continue
			}
			if s.level[q.Var()] != 0 && !markedSet[q.Var()] {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	return out
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= s.varDecay
	s.claInc /= 0.999
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailAt[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailAt = s.trailAt[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar selects the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() int {
	for {
		v := s.order.pop(s.activity)
		if v == 0 {
			return 0
		}
		if s.assign[v] == lUndef {
			return v
		}
	}
}

// record attaches a learnt clause and enqueues its asserting literal.
func (s *Solver) record(lits []cnf.Lit) {
	c := &clause{lits: append([]cnf.Lit(nil), lits...), learnt: true}
	if len(lits) > 1 {
		s.learnts = append(s.learnts, c)
		s.watch(c)
		s.bumpClause(c)
		s.stats.Learnts++
	}
	s.enqueue(lits[0], c)
}

// reduceDB removes the lower half of learnt clauses by activity, keeping
// binary clauses and current reasons.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 100 {
		return
	}
	// Partial selection: compute median activity cheaply.
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = c.activity
	}
	med := quickMedian(acts)
	inUse := make(map[*clause]bool)
	for _, r := range s.reason {
		if r != nil {
			inUse[r] = true
		}
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || inUse[c] || c.activity >= med {
			kept = append(kept, c)
			continue
		}
		s.unwatch(c)
	}
	s.learnts = kept
}

func (s *Solver) unwatch(c *clause) {
	for _, l := range []cnf.Lit{c.lits[0], c.lits[1]} {
		wl := litIdx(l.Neg())
		ws := s.watches[wl]
		for i, wc := range ws {
			if wc == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Insertion-free approximate median: average of min, max and mean is
	// too crude; use nth_element-style partial sort on a copy.
	cp := append([]float64(nil), xs...)
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return cp[k]
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve runs the CDCL search. It returns Sat, Unsat, or Unknown when the
// conflict budget or deadline is exceeded.
func (s *Solver) Solve() Status {
	return s.SolveAssuming(nil)
}

// budgetExpired reports whether the wall-clock deadline has passed or the
// configured context has been cancelled.
func (s *Solver) budgetExpired() bool {
	if s.opts.Context != nil && s.opts.Context.Err() != nil {
		return true
	}
	return !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline)
}

// SolveAssuming solves under the given assumption literals, which are
// enforced as the first decisions of every descent. Unsat then means
// "unsatisfiable under the assumptions" — the solver remains usable and
// learnt clauses remain valid, which is what makes incremental
// chromatic-number search cheap (each K-colorability probe reuses all
// learning from previous probes).
func (s *Solver) SolveAssuming(assumptions []cnf.Lit) Status {
	if s.unsatNow {
		return Unsat
	}
	if s.budgetExpired() {
		return Unknown
	}
	for _, a := range assumptions {
		if a.Var() > s.nVars {
			s.growTo(a.Var())
		}
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.unsatNow = true
		return Unsat
	}
	s.order.rebuild(s.nVars, s.activity)

	restartNum := int64(1)
	conflictsAtRestart := s.stats.Conflicts
	restartLimit := luby(restartNum) * s.opts.RestartBase
	checkBudget := 0

	for {
		// Deadline check, amortized over iterations (conflict- or
		// decision-heavy alike).
		checkBudget++
		if checkBudget >= 256 {
			checkBudget = 0
			if s.budgetExpired() {
				s.cancelUntil(0)
				return Unknown
			}
		}
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsatNow = true
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			s.record(learnt)
			s.decayActivities()
			if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
				s.cancelUntil(0)
				return Unknown
			}
			if s.stats.Conflicts-conflictsAtRestart >= restartLimit {
				s.stats.Restarts++
				restartNum++
				conflictsAtRestart = s.stats.Conflicts
				restartLimit = luby(restartNum) * s.opts.RestartBase
				s.cancelUntil(0)
				if len(s.learnts) > 4000+int(s.stats.Conflicts/10) {
					s.reduceDB()
				}
			}
			continue
		}
		// Assumptions are installed as the first decision levels; after any
		// backjump below them they are re-applied here.
		if dl := s.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			switch s.value(a) {
			case lFalse:
				s.cancelUntil(0)
				return Unsat // conflicts with the assumptions
			case lTrue:
				s.trailAt = append(s.trailAt, len(s.trail)) // empty level
			default:
				s.trailAt = append(s.trailAt, len(s.trail))
				s.enqueue(a, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all variables assigned
		}
		s.stats.Decisions++
		s.trailAt = append(s.trailAt, len(s.trail))
		if d := s.decisionLevel(); d > s.stats.MaxDepth {
			s.stats.MaxDepth = d
		}
		var l cnf.Lit
		if s.opts.PhaseSaving && s.phase[v] {
			l = cnf.PosLit(v)
		} else {
			l = cnf.NegLit(v)
		}
		s.enqueue(l, nil)
	}
}

// Model returns the satisfying assignment after Solve returned Sat. Index 0
// is unused.
func (s *Solver) Model() cnf.Assignment {
	m := make(cnf.Assignment, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver{vars=%d clauses=%d learnts=%d conflicts=%d}",
		s.nVars, len(s.clauses), len(s.learnts), s.stats.Conflicts)
}

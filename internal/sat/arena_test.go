package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/solverutil"
)

// checkWellFormed validates the solver's arena-backed invariants: no freed
// clause is referenced, every long clause is watched on exactly its first
// two literals, every watcher's blocker belongs to its clause, and every
// assigned variable's clause reason has the implied literal in slot 0.
func checkWellFormed(t *testing.T, s *Solver) {
	t.Helper()
	watchCount := map[solverutil.CRef]int{}
	for wl := range s.db.Watches {
		for _, w := range s.db.Watches[wl] {
			if s.db.Arena.Freed(w.CRef) {
				t.Fatalf("watch list %d references freed clause %d", wl, w.CRef)
			}
			lits := s.db.Arena.Lits(w.CRef)
			// This list holds clauses watching the complement of wl.
			if lits[0]^1 != uint32(wl) && lits[1]^1 != uint32(wl) {
				t.Fatalf("clause %d watched on literal not in its first two slots", w.CRef)
			}
			blockerFound := false
			for _, u := range lits {
				if u == w.Blocker {
					blockerFound = true
					break
				}
			}
			if !blockerFound {
				t.Fatalf("clause %d blocker %d not in clause", w.CRef, w.Blocker)
			}
			watchCount[w.CRef]++
		}
	}
	for _, c := range append(append([]solverutil.CRef(nil), s.db.Clauses...), s.db.Learnts...) {
		if s.db.Arena.Freed(c) {
			t.Fatalf("clause list references freed clause %d", c)
		}
		if watchCount[c] != 2 {
			t.Fatalf("clause %d watched %d times, want 2", c, watchCount[c])
		}
	}
	for _, c := range s.db.Learnts {
		if !s.db.Arena.Learnt(c) {
			t.Fatalf("learnt list holds non-learnt clause %d", c)
		}
	}
	for v := 1; v <= s.nVars; v++ {
		rc := s.reasonCl[v]
		if rc == solverutil.CRefUndef {
			continue
		}
		if s.assign[v] == lUndef {
			t.Fatalf("unassigned var %d has a reason clause", v)
		}
		if s.db.Arena.Freed(rc) {
			t.Fatalf("var %d reason is a freed clause", v)
		}
		if int(s.db.Arena.Lits(rc)[0]>>1) != v {
			t.Fatalf("var %d reason clause does not imply it first", v)
		}
	}
}

// TestReduceGCCycleKeepsInvariants forces frequent LBD reductions (and with
// them arena compactions) during a hard UNSAT proof and checks that the
// proof still lands, i.e. reasons and watch lists stayed valid across every
// reduce+GC cycle mid-search. A broken remap would flip the verdict or trip
// the reason-invariant panics in analyze.
func TestReduceGCCycleKeepsInvariants(t *testing.T) {
	f := pigeonhole(8, 7)
	s := New(f, Options{ReduceInterval: 30})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status = %v, want UNSAT", st)
	}
	st := s.Stats()
	if st.Reduces == 0 {
		t.Fatalf("expected learnt-DB reductions, got stats %+v", st)
	}
	if st.Removed == 0 {
		t.Fatal("reductions removed no clauses")
	}
	if st.ArenaGCs == 0 {
		t.Fatalf("expected arena compactions, got stats %+v", st)
	}
	checkWellFormed(t, s)
}

// TestGCDirectRemap drives garbageCollect by hand against a live clause
// database and checks every reference survives the remap.
func TestGCDirectRemap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randomCNF(rng, 30, 120, 3)
	s := New(f, Options{MaxConflicts: 40})
	s.Solve() // Unknown or solved; either way learnts may exist
	before := len(s.db.Clauses)
	// Free nothing: GC with zero waste must still remap consistently.
	s.garbageCollect()
	checkWellFormed(t, s)
	if len(s.db.Clauses) != before {
		t.Fatalf("GC changed clause count %d -> %d", before, len(s.db.Clauses))
	}
	// Now delete half the learnts via reduceDB and compact again.
	s.reduceDB()
	s.garbageCollect()
	checkWellFormed(t, s)
	// The solver must still answer correctly after both compactions.
	s2 := New(f, Options{})
	want := s2.Solve()
	s.opts.MaxConflicts = 0
	if got := s.Solve(); got != want {
		t.Fatalf("after GC: %v, fresh solver: %v", got, want)
	}
}

// TestComputeLBD pins the literal-blocks-distance definition: the number of
// distinct nonzero decision levels among the clause's literals.
func TestComputeLBD(t *testing.T) {
	s := NewEmpty(6, Options{})
	copy(s.level, []int{0, 1, 1, 2, 3, 3, 0})
	all := []cnf.Lit{lit(1), nlit(2), lit(3), lit(4), nlit(5), lit(6)}
	if got := s.computeLBD(all); got != 3 {
		t.Fatalf("LBD = %d, want 3 (levels {1,2,3})", got)
	}
	if got := s.computeLBD([]cnf.Lit{lit(6)}); got != 1 {
		t.Fatalf("LBD of all-level-0 clause = %d, want floor 1", got)
	}
	// Consecutive calls must not leak stamps across generations.
	if got := s.computeLBD([]cnf.Lit{lit(1), nlit(2)}); got != 1 {
		t.Fatalf("LBD = %d, want 1 (both at level 1)", got)
	}
	if got := s.computeLBD([]cnf.Lit{lit(1), lit(3)}); got != 2 {
		t.Fatalf("LBD = %d, want 2", got)
	}
}

// TestLBDStoredOnLearnts checks that long learnt clauses carry an LBD in
// the arena header after a solve.
func TestLBDStoredOnLearnts(t *testing.T) {
	f := pigeonhole(7, 6)
	s := New(f, Options{})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status = %v", st)
	}
	if len(s.db.Learnts) == 0 {
		t.Skip("no long learnt clauses retained")
	}
	for _, c := range s.db.Learnts {
		if s.db.Arena.LBD(c) == 0 {
			t.Fatalf("learnt clause %d has LBD 0", c)
		}
	}
}

package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestSolveAssumingBasic(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	s := New(f, Options{})
	if st := s.SolveAssuming([]cnf.Lit{nlit(1)}); st != Sat {
		t.Fatalf("¬x1: %v", st)
	}
	if m := s.Model(); m[1] || !m[2] {
		t.Fatalf("model %v under ¬x1", m[1:])
	}
	if st := s.SolveAssuming([]cnf.Lit{nlit(1), nlit(2)}); st != Unsat {
		t.Fatal("¬x1∧¬x2 should be UNSAT under assumptions")
	}
	// The solver must remain usable: without assumptions it is SAT again.
	if st := s.Solve(); st != Sat {
		t.Fatal("solver damaged by assumption UNSAT")
	}
}

func TestSolveAssumingContradictoryAssumptions(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	s := New(f, Options{})
	if st := s.SolveAssuming([]cnf.Lit{lit(1), nlit(1)}); st != Unsat {
		t.Fatal("x1∧¬x1 assumptions must be UNSAT")
	}
	if st := s.Solve(); st != Sat {
		t.Fatal("solver damaged")
	}
}

func TestSolveAssumingImpliedAssumption(t *testing.T) {
	// Assumption already implied at level 0: empty decision level path.
	f := cnf.NewFormula(2)
	f.AddClause(lit(1))
	f.AddClause(nlit(1), lit(2))
	s := New(f, Options{})
	if st := s.SolveAssuming([]cnf.Lit{lit(1), lit(2)}); st != Sat {
		t.Fatal("implied assumptions should be SAT")
	}
}

// TestSolveAssumingRepeatedAssumptions pins a regression: assumptions that
// repeat an already-true literal create empty decision levels, so the
// decision-level count can exceed the variable count. Conflict analysis at
// such levels must still compute LBDs without running off the per-level
// stamp array.
func TestSolveAssumingRepeatedAssumptions(t *testing.T) {
	// UNSAT over {x2, x3}; x1 is free and only consumed by assumptions.
	f := cnf.NewFormula(3)
	f.AddClause(lit(2), lit(3))
	f.AddClause(lit(2), nlit(3))
	f.AddClause(nlit(2), lit(3))
	f.AddClause(nlit(2), nlit(3))
	s := New(f, Options{})
	// x1 assigns at level 1; the repeats create five empty levels, so the
	// first decision — and the conflict analysis it triggers — happens at a
	// decision level greater than NumVars.
	a := []cnf.Lit{lit(1), lit(1), lit(1), lit(1), lit(1), lit(1)}
	if st := s.SolveAssuming(a); st != Unsat {
		t.Fatalf("{x2,x3} clauses are contradictory: %v", st)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatal("formula is UNSAT regardless of assumptions")
	}
}

// TestSolveAssumingAgainstBruteForce cross-checks assumption solving on
// random formulas: SolveAssuming(A) must equal satisfiability of F ∧ A.
func TestSolveAssumingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(6)
		f := randomCNF(rng, nVars, 2+rng.Intn(4*nVars), 3)
		s := New(f, Options{})
		for probe := 0; probe < 4; probe++ {
			var assumps []cnf.Lit
			seen := map[int]bool{}
			for len(assumps) < 1+rng.Intn(3) {
				v := 1 + rng.Intn(nVars)
				if seen[v] {
					continue
				}
				seen[v] = true
				l := cnf.PosLit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				assumps = append(assumps, l)
			}
			fPlus := cnf.NewFormula(f.NumVars)
			for _, c := range f.Clauses {
				fPlus.AddClause(c...)
			}
			for _, a := range assumps {
				fPlus.AddClause(a)
			}
			want := bruteForce(fPlus)
			got := s.SolveAssuming(assumps)
			if (got == Sat) != want {
				t.Fatalf("iter %d probe %d: got %v want sat=%v assumps=%v\n%s",
					iter, probe, got, want, assumps, f.Dimacs())
			}
			if got == Sat {
				m := s.Model()
				if !f.Satisfies(m) {
					t.Fatal("model violates formula")
				}
				for _, a := range assumps {
					if !m.Lit(a) {
						t.Fatalf("model violates assumption %v", a)
					}
				}
			}
		}
	}
}

// TestIncrementalReuseAcrossAssumptionProbes: learnt clauses persist across
// probes (conflict counters keep growing on one solver while answers stay
// correct).
func TestIncrementalReuseAcrossAssumptionProbes(t *testing.T) {
	f := pigeonhole(6, 5)
	s := New(f, Options{})
	// UNSAT globally; also UNSAT under any assumptions.
	if st := s.SolveAssuming([]cnf.Lit{lit(1)}); st != Unsat {
		t.Fatalf("got %v", st)
	}
	after := s.Stats().Conflicts
	if st := s.Solve(); st != Unsat {
		t.Fatal("globally UNSAT")
	}
	// The second call should benefit from (at minimum not lose) learning.
	if s.Stats().Conflicts < after {
		t.Fatal("conflict counter went backwards")
	}
}

package sat

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cnf"
)

// TestRandom3SATNearThreshold runs instances near the SAT/UNSAT phase
// transition (ratio ~4.2) large enough to exercise restarts, clause-database
// reduction and conflict-clause minimization, and validates every SAT model.
func TestRandom3SATNearThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sat, unsat := 0, 0
	for iter := 0; iter < 12; iter++ {
		nVars := 50
		nClauses := 210
		f := cnf.NewFormula(nVars)
		for c := 0; c < nClauses; c++ {
			cl := make([]cnf.Lit, 0, 3)
			used := map[int]bool{}
			for len(cl) < 3 {
				v := 1 + rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				l := cnf.PosLit(v)
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			f.AddClause(cl...)
		}
		s := New(f, Options{PhaseSaving: true, RestartBase: 16})
		switch s.Solve() {
		case Sat:
			sat++
			if !f.Satisfies(s.Model()) {
				t.Fatalf("iter %d: invalid model", iter)
			}
		case Unsat:
			unsat++
		default:
			t.Fatalf("iter %d: unexpected UNKNOWN without budget", iter)
		}
		if s.Stats().Restarts == 0 && s.Stats().Conflicts > 100 {
			t.Fatalf("iter %d: restarts never fired with base 16", iter)
		}
	}
	if sat == 0 || unsat == 0 {
		t.Logf("phase split: %d SAT / %d UNSAT (both sides ideally exercised)", sat, unsat)
	}
}

// TestReduceDBPreservesCorrectness forces heavy learning and DB reduction,
// then re-checks a known answer.
func TestReduceDBPreservesCorrectness(t *testing.T) {
	f := pigeonhole(8, 7)
	s := New(f, Options{RestartBase: 8})
	if s.Solve() != Unsat {
		t.Fatal("PHP(8,7) must be UNSAT")
	}
	if s.Stats().Learnts == 0 {
		t.Fatal("expected learnt clauses")
	}
}

// TestParserFuzzNoPanic: random byte soup must produce errors, never
// panics.
func TestParserFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("pc nf-0123456789 \n\tx")
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(120)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", b, r)
				}
			}()
			_, _ = cnf.ParseDimacs(strings.NewReader(string(b)))
		}()
	}
}

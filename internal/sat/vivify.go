package sat

import (
	"repro/internal/solverutil"
)

// vivify runs one budgeted vivification pass over the long problem and
// learnt clauses (Piette, Hamadi & Saïs 2008; the "clause distillation" of
// Lintao Zhang's lineage). Must be called at decision level 0 with the
// trail propagated to fixpoint. For each clause (l1 ∨ … ∨ ln) the negated
// literals are assumed one at a time and propagated:
//
//   - a later literal becomes true  → the clause shrinks to prefix ∨ lit
//     (F ∧ ¬prefix ⊨ lit, so the shorter clause is implied by F alone);
//   - a later literal becomes false → that literal is redundant and is
//     dropped (any model violating the shrunk clause would violate F);
//   - propagation conflicts         → the prefix itself is implied.
//
// The pass spends at most budget propagations, resuming at the stored
// cursors on the next restart. Returns false when the formula was proven
// unsatisfiable at level 0.
func (s *Solver) vivify(budget int64) bool {
	// The restart may fire in the same iteration that enqueued a level-0
	// asserting literal; reach the fixpoint before probing so that probe
	// levels never swallow level-0 implications.
	if s.propagate().isConflict() {
		return false
	}
	s.probing = true
	defer func() { s.probing = false }()
	start := s.stats.Propagations
	for pass := 0; pass < 2; pass++ {
		list, cur := &s.db.Clauses, &s.vivHeadCl
		if pass == 1 {
			list, cur = &s.db.Learnts, &s.vivHeadLt
		}
		if *cur >= len(*list) {
			*cur = 0
		}
		for *cur < len(*list) {
			if s.stats.Propagations-start >= budget {
				return true
			}
			c := (*list)[*cur]
			if s.locked(c) {
				*cur++
				continue
			}
			nc, ok := s.vivifyClause(c, pass == 1)
			if !ok {
				return false
			}
			if nc == solverutil.CRefUndef {
				// Removed entirely (root-satisfied, or shrunk below the
				// arena tier): swap-delete and revisit this slot.
				(*list)[*cur] = (*list)[len(*list)-1]
				*list = (*list)[:len(*list)-1]
				continue
			}
			(*list)[*cur] = nc
			*cur++
		}
		*cur = 0
	}
	if s.db.NeedsGC() {
		s.garbageCollect()
	}
	return true
}

// vivifyClause probes one clause as described on vivify. It returns the
// clause's replacement reference (the clause itself when unchanged,
// CRefUndef when the clause was removed or re-tiered to binary/unit) and
// reports false when the probe proved the formula unsatisfiable at the
// root.
func (s *Solver) vivifyClause(c solverutil.CRef, learnt bool) (solverutil.CRef, bool) {
	origSize := s.db.Arena.Size(c)
	// Detach before probing: the clause must not participate in its own
	// strengthening (self-subsumption through propagation is circular).
	s.db.Detach(c)
	out := s.vivBuf[:0]
	satisfiedAtRoot := false
probe:
	for i := 0; i < origSize; i++ {
		l := solverutil.DecodeLit(s.db.Arena.Lits(c)[i])
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				satisfiedAtRoot = true
			} else {
				// F ∧ ¬prefix ⊨ l: keep prefix ∨ l, drop the rest.
				out = append(out, l)
			}
			break probe
		case lFalse:
			continue // root-false or implied-false under ¬prefix: drop
		}
		out = append(out, l)
		if i == origSize-1 {
			break // last literal: nothing left to shrink
		}
		s.trailAt = append(s.trailAt, len(s.trail))
		s.uncheckedEnqueue(l.Neg(), solverutil.CRefUndef, 0)
		if s.propagate().isConflict() {
			break // F ∧ ¬prefix is contradictory: the prefix is implied
		}
	}
	s.cancelUntil(0)
	s.vivBuf = out
	if satisfiedAtRoot {
		s.db.Arena.Free(c)
		return solverutil.CRefUndef, true
	}
	if len(out) == origSize {
		s.db.Attach(c)
		return c, true
	}
	s.stats.VivifiedLits += int64(origSize - len(out))
	switch len(out) {
	case 0:
		// Every literal was false at level 0: the clause (and so the
		// formula) is unsatisfiable.
		s.db.Arena.Free(c)
		return solverutil.CRefUndef, false
	case 1:
		s.db.Arena.Free(c)
		if !s.enqueue(out[0], solverutil.CRefUndef, 0) || s.propagate().isConflict() {
			return solverutil.CRefUndef, false
		}
		return solverutil.CRefUndef, true
	case 2:
		s.db.AttachBinary(out[0], out[1])
		if !learnt {
			s.nBin++
		}
		s.db.Arena.Free(c)
		return solverutil.CRefUndef, true
	default:
		lbd := s.db.Arena.LBD(c)
		act := s.db.Arena.Activity(c)
		nc := s.db.Arena.Alloc(out, learnt)
		if learnt {
			if lbd > len(out)-1 {
				lbd = len(out) - 1
			}
			s.db.Arena.SetLBD(nc, lbd)
			s.db.Arena.SetActivity(nc, act)
		}
		s.db.Arena.Free(c)
		s.db.Attach(nc)
		return nc, true
	}
}

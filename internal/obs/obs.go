// Package obs is the dependency-free tracing layer of the job pipeline:
// spans with ids, parent links, monotonic start/duration, and typed
// attributes, recorded into a per-job Trace and carried across package
// boundaries via context.Context. The service layer opens a Trace per
// accepted job and threads the current span through the solve context;
// every stage below it (core.Solve, the SBP layer, the portfolio, the
// cube-and-conquer pool) calls StartSpan unconditionally — when the
// context carries no span (tracing disabled, or a library caller outside
// the service) every operation is a nil-receiver no-op, so the layer
// costs one context lookup on the cold path and nothing in the solver's
// hot loops.
//
// Completed traces land in a bounded flight recorder (recorder.go) that
// also aggregates per-phase latency histograms, the source of the
// gcolord_phase_seconds series on /metrics and of GET /v1/jobs/{id}/trace.
package obs

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// AttrKind discriminates the typed attribute union.
type AttrKind uint8

// Attribute kinds.
const (
	KindString AttrKind = iota
	KindInt
	KindBool
)

// Attr is one typed span attribute. Exactly one value field is
// meaningful, selected by Kind; use the String/Int/Bool constructors.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
	Bool bool
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Int builds an integer attribute (any integer width, stored as int64).
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Kind: KindBool, Bool: v} }

// Value returns the attribute's dynamic value (for serialization).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindBool:
		return a.Bool
	default:
		return a.Str
	}
}

// MarshalJSON renders the attribute as {"key": ..., "value": ...}.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}{a.Key, a.Value()})
}

// Span is one timed phase of a job: a name, a parent link, a monotonic
// start (Go's time.Time carries the monotonic reading), a duration set
// by End, and typed attributes. Spans are created through Trace.StartSpan
// or the context-level StartSpan; all methods are safe on a nil receiver,
// which is how disabled tracing costs nothing at every call site.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64
	name   string

	// Mutable state below is guarded by tr.mu: parallel conquer workers
	// and portfolio engines end sibling spans concurrently.
	start time.Time
	dur   time.Duration
	ended bool
	attrs []Attr
}

// Name returns the span's phase name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttrs appends attributes to a live span. No-op on nil.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tr.mu.Unlock()
}

// End closes the span, fixing its duration from the monotonic clock and
// appending any final attributes. Idempotent (the first End wins) and a
// no-op on nil.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = now.Sub(s.start)
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	s.tr.mu.Unlock()
}

// Trace is one job's span collection. Concurrency-safe: spans may be
// started and ended from any goroutine of the job (portfolio engines,
// conquer workers).
type Trace struct {
	id    string
	jobID string

	mu     sync.Mutex
	start  time.Time
	spans  []*Span
	nextID uint64
}

// NewTrace opens a trace. id is the correlation id surfaced in logs and
// the API (the service uses the request id when the client sent one);
// jobID keys the flight recorder's lookup.
func NewTrace(id, jobID string) *Trace {
	return &Trace{id: id, jobID: jobID, start: time.Now()}
}

// ID returns the trace's correlation id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// JobID returns the traced job's id ("" on nil).
func (t *Trace) JobID() string {
	if t == nil {
		return ""
	}
	return t.jobID
}

// StartSpan opens a span under parent (nil parent = a root span) starting
// now. Safe on a nil trace (returns nil).
func (t *Trace) StartSpan(parent *Span, name string, attrs ...Attr) *Span {
	return t.StartSpanAt(parent, name, time.Now(), attrs...)
}

// StartSpanAt opens a span with an explicit start time, for phases whose
// beginning predates the trace machinery (admission timing starts before
// the job id exists). Safe on a nil trace.
func (t *Trace) StartSpanAt(parent *Span, name string, start time.Time, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{tr: t, id: t.nextID, name: name, start: start, attrs: attrs}
	if parent != nil {
		s.parent = parent.id
	}
	if start.Before(t.start) {
		t.start = start
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// PhaseDuration sums the recorded durations of every ended span named
// name (0 when none, or on nil). With the service's taxonomy each
// top-level phase appears once, so this reads as "that phase's latency".
func (t *Trace) PhaseDuration(name string) time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	t.mu.Lock()
	for _, s := range t.spans {
		if s.name == name && s.ended {
			d += s.dur
		}
	}
	t.mu.Unlock()
	return d
}

// --- context plumbing ---

type ctxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span, or nil when ctx carries none.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns a
// context carrying the child. When ctx carries no span (tracing disabled)
// it returns (ctx, nil) — and every method of the nil span is a no-op —
// so call sites never need to gate on whether tracing is live.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.StartSpan(parent, name, attrs...)
	return ContextWithSpan(ctx, s), s
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanView is the serialized form of one span in a trace's JSON tree:
// offsets are relative to the trace start so a client can render a
// flame/waterfall view without clock arithmetic.
type SpanView struct {
	ID            uint64      `json:"id"`
	Name          string      `json:"name"`
	StartOffsetMS float64     `json:"start_offset_ms"`
	DurationMS    float64     `json:"duration_ms"`
	Attrs         []Attr      `json:"attrs,omitempty"`
	Children      []*SpanView `json:"children,omitempty"`
}

// TraceView is the completed trace as served by GET /v1/jobs/{id}/trace:
// the correlation id, the wall-clock start, the end-to-end duration, and
// the span tree (Spans holds the roots; the service's taxonomy has a
// single "job" root).
type TraceView struct {
	TraceID    string      `json:"trace_id"`
	JobID      string      `json:"job_id"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Spans      []*SpanView `json:"spans"`
}

// Find returns the first span view with the given name in depth-first
// order (nil when absent) — the shape tests' accessor.
func (v *TraceView) Find(name string) *SpanView {
	if v == nil {
		return nil
	}
	var walk func(list []*SpanView) *SpanView
	walk = func(list []*SpanView) *SpanView {
		for _, s := range list {
			if s.Name == name {
				return s
			}
			if hit := walk(s.Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(v.Spans)
}

// View snapshots the trace as a span tree. Unended spans (a trace
// snapshotted mid-flight, or a phase orphaned by a panic) appear with the
// duration they had accumulated at snapshot time. Spans whose parent id
// is unknown are promoted to roots rather than dropped.
func (t *Trace) View() *TraceView {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	v := &TraceView{TraceID: t.id, JobID: t.jobID, Start: t.start}
	views := make(map[uint64]*SpanView, len(t.spans))
	var total time.Duration
	for _, s := range t.spans {
		dur := s.dur
		if !s.ended {
			dur = now.Sub(s.start)
		}
		sv := &SpanView{
			ID:            s.id,
			Name:          s.name,
			StartOffsetMS: durMS(s.start.Sub(t.start)),
			DurationMS:    durMS(dur),
			Attrs:         append([]Attr(nil), s.attrs...),
		}
		views[s.id] = sv
		if end := s.start.Sub(t.start) + dur; end > total {
			total = end
		}
	}
	// Spans were appended in start order, so children attach in order.
	for _, s := range t.spans {
		sv := views[s.id]
		if p, ok := views[s.parent]; ok && s.parent != s.id {
			p.Children = append(p.Children, sv)
		} else {
			v.Spans = append(v.Spans, sv)
		}
	}
	v.DurationMS = durMS(total)
	return v
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// PhaseBuckets are the upper bounds, in seconds, of the per-phase latency
// histograms (an implicit +Inf bucket follows). Sub-millisecond buckets
// exist because admission and persist phases run in microseconds while
// solve phases run in seconds — one bucket layout covers both.
var PhaseBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a snapshot of one phase's latency distribution. Buckets
// holds one non-cumulative count per PhaseBuckets bound plus a final
// +Inf overflow count.
type Histogram struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	Buckets    []int64 `json:"buckets"`
}

// RecorderStats are the flight recorder's own counters.
type RecorderStats struct {
	// Completed counts traces recorded since startup; Evicted counts
	// traces pushed out of the ring by newer ones; Kept is the current
	// ring occupancy.
	Completed int64 `json:"completed"`
	Evicted   int64 `json:"evicted"`
	Kept      int   `json:"kept"`
}

// Recorder is the bounded in-memory flight recorder: the newest keep
// completed traces, indexed by job id, plus cumulative per-phase latency
// histograms over every trace ever recorded (histograms survive ring
// eviction — they aggregate, the ring retains detail).
type Recorder struct {
	mu    sync.Mutex
	keep  int
	ring  []*TraceView // oldest first
	byJob map[string]*TraceView
	hist  map[string]*Histogram
	stats RecorderStats
}

// NewRecorder builds a recorder retaining the newest keep traces
// (keep < 1 is clamped to 1; fully disabled tracing is the service not
// constructing a recorder at all).
func NewRecorder(keep int) *Recorder {
	if keep < 1 {
		keep = 1
	}
	return &Recorder{
		keep:  keep,
		byJob: make(map[string]*TraceView, keep),
		hist:  make(map[string]*Histogram),
	}
}

// Record finalizes t into the ring and folds every span's duration into
// its phase histogram. Call once, after the job reached a terminal state
// and all spans have ended.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	v := t.View()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Completed++
	if old, ok := r.byJob[v.JobID]; ok {
		// A replayed job id re-traced after a restart: replace in place.
		for i, e := range r.ring {
			if e == old {
				r.ring = append(r.ring[:i], r.ring[i+1:]...)
				break
			}
		}
	}
	r.ring = append(r.ring, v)
	r.byJob[v.JobID] = v
	for len(r.ring) > r.keep {
		old := r.ring[0]
		r.ring = r.ring[1:]
		r.stats.Evicted++
		if r.byJob[old.JobID] == old {
			delete(r.byJob, old.JobID)
		}
	}
	r.stats.Kept = len(r.ring)
	var walk func(list []*SpanView)
	walk = func(list []*SpanView) {
		for _, s := range list {
			r.observeLocked(s.Name, s.DurationMS/1e3)
			walk(s.Children)
		}
	}
	walk(v.Spans)
}

// observeLocked folds one duration (seconds) into the phase's histogram.
func (r *Recorder) observeLocked(phase string, seconds float64) {
	h := r.hist[phase]
	if h == nil {
		h = &Histogram{Buckets: make([]int64, len(PhaseBuckets)+1)}
		r.hist[phase] = h
	}
	h.Count++
	h.SumSeconds += seconds
	i := sort.SearchFloat64s(PhaseBuckets, seconds)
	// SearchFloat64s finds the first bound >= seconds, which is exactly
	// the le-bucket; seconds above every bound land in the +Inf slot.
	h.Buckets[i]++
}

// Trace returns the completed trace for one job id, if still in the ring.
func (r *Recorder) Trace(jobID string) (*TraceView, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.byJob[jobID]
	return v, ok
}

// Recent returns up to n completed traces, newest first (all of them when
// n <= 0).
func (r *Recorder) Recent(n int) []*TraceView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	out := make([]*TraceView, 0, n)
	for i := len(r.ring) - 1; i >= len(r.ring)-n; i-- {
		out = append(out, r.ring[i])
	}
	return out
}

// Phases snapshots the per-phase latency histograms, keyed by span name.
func (r *Recorder) Phases() map[string]Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Histogram, len(r.hist))
	for name, h := range r.hist {
		c := *h
		c.Buckets = append([]int64(nil), h.Buckets...)
		out[name] = c
	}
	return out
}

// Stats returns the recorder's own counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every operation must be a no-op without a trace in the context:
	// this is the disabled-tracing fast path every call site relies on.
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "phase")
	if sp != nil || ctx2 != ctx {
		t.Fatalf("StartSpan without a trace must return (ctx, nil)")
	}
	sp.SetAttrs(Int("n", 1))
	sp.End(Bool("ok", true))
	if sp.Name() != "" {
		t.Fatalf("nil span name = %q", sp.Name())
	}
	var tr *Trace
	if tr.StartSpan(nil, "x") != nil || tr.View() != nil || tr.ID() != "" {
		t.Fatalf("nil trace must be inert")
	}
	var rec *Recorder
	rec.Record(nil) // must not panic
	if _, ok := rec.Trace("j"); ok {
		t.Fatalf("nil recorder returned a trace")
	}
}

func TestSpanTreeShape(t *testing.T) {
	tr := NewTrace("req-1", "job-1")
	root := tr.StartSpan(nil, "job")
	a := tr.StartSpan(root, "canon", Int("nodes", 42))
	a.End(Bool("exact", true))
	ctx := ContextWithSpan(context.Background(), root)
	sctx, solve := StartSpan(ctx, "solve")
	_, w0 := StartSpan(sctx, "solve.worker", Int("worker", 0))
	w0.End()
	solve.End(Int("conflicts", 7))
	root.End()

	v := tr.View()
	if v.TraceID != "req-1" || v.JobID != "job-1" {
		t.Fatalf("ids: %+v", v)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "job" {
		t.Fatalf("want single root 'job', got %+v", v.Spans)
	}
	if v.Find("canon") == nil || v.Find("solve") == nil {
		t.Fatalf("missing phases in %+v", v)
	}
	sv := v.Find("solve")
	if len(sv.Children) != 1 || sv.Children[0].Name != "solve.worker" {
		t.Fatalf("solve children = %+v", sv.Children)
	}
	if v.Find("solve.worker").ID == 0 {
		t.Fatalf("span ids must be assigned")
	}
	// Attrs round-trip through JSON as {"key","value"} pairs.
	raw, err := json.Marshal(v.Find("canon").Attrs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Key != "nodes" || decoded[1].Key != "exact" {
		t.Fatalf("attrs decoded as %+v", decoded)
	}
}

func TestPhaseDurationAndEndIdempotent(t *testing.T) {
	tr := NewTrace("t", "j")
	s := tr.StartSpanAt(nil, "queue", time.Now().Add(-50*time.Millisecond))
	s.End()
	first := tr.PhaseDuration("queue")
	if first < 50*time.Millisecond {
		t.Fatalf("queue duration %v < backdated 50ms", first)
	}
	s.End() // second End must not restretch the duration
	if got := tr.PhaseDuration("queue"); got != first {
		t.Fatalf("End not idempotent: %v then %v", first, got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	// Parallel conquer workers start and end sibling spans concurrently;
	// run with -race to make this meaningful.
	tr := NewTrace("t", "j")
	root := tr.StartSpan(nil, "job")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.StartSpan(root, "solve.worker", Int("worker", int64(w)))
			s.SetAttrs(Int("conflicts", int64(w*10)))
			s.End()
		}(w)
	}
	wg.Wait()
	root.End()
	v := tr.View()
	if n := len(v.Spans[0].Children); n != 8 {
		t.Fatalf("want 8 worker spans, got %d", n)
	}
}

func TestRecorderEvictionAndLookup(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i), fmt.Sprintf("job-%d", i))
		tr.StartSpan(nil, "job").End()
		rec.Record(tr)
	}
	if _, ok := rec.Trace("job-0"); ok {
		t.Fatalf("job-0 should have been evicted")
	}
	if _, ok := rec.Trace("job-1"); ok {
		t.Fatalf("job-1 should have been evicted")
	}
	for i := 2; i < 5; i++ {
		if _, ok := rec.Trace(fmt.Sprintf("job-%d", i)); !ok {
			t.Fatalf("job-%d missing from ring", i)
		}
	}
	recent := rec.Recent(0)
	if len(recent) != 3 || recent[0].JobID != "job-4" || recent[2].JobID != "job-2" {
		t.Fatalf("recent order wrong: %+v", recent)
	}
	if got := rec.Recent(2); len(got) != 2 || got[0].JobID != "job-4" {
		t.Fatalf("Recent(2) = %+v", got)
	}
	st := rec.Stats()
	if st.Completed != 5 || st.Evicted != 2 || st.Kept != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRecorderHistograms(t *testing.T) {
	rec := NewRecorder(2)
	tr := NewTrace("t", "j")
	s := tr.StartSpanAt(nil, "canon", time.Now().Add(-2*time.Millisecond))
	s.End()
	rec.Record(tr)
	phases := rec.Phases()
	h, ok := phases["canon"]
	if !ok || h.Count != 1 {
		t.Fatalf("canon histogram = %+v", phases)
	}
	if h.SumSeconds < 0.002 {
		t.Fatalf("sum %v < 2ms", h.SumSeconds)
	}
	if len(h.Buckets) != len(PhaseBuckets)+1 {
		t.Fatalf("bucket count %d != %d", len(h.Buckets), len(PhaseBuckets)+1)
	}
	var total int64
	for _, c := range h.Buckets {
		total += c
	}
	if total != h.Count {
		t.Fatalf("bucket counts sum to %d, count %d", total, h.Count)
	}
	// A 2ms observation belongs in a bucket with bound >= 0.002s and the
	// first such bound no larger than 5ms.
	for i, b := range PhaseBuckets {
		if h.Buckets[i] > 0 {
			if b < 0.002 || b > 0.005 {
				t.Fatalf("2ms observation landed in le=%v", b)
			}
			return
		}
	}
	t.Fatalf("observation fell through to +Inf: %+v", h.Buckets)
}

func TestRecorderReplacesReplayedJob(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 2; i++ {
		tr := NewTrace("t", "job-1")
		tr.StartSpan(nil, "job").End()
		rec.Record(tr)
	}
	if st := rec.Stats(); st.Kept != 1 {
		t.Fatalf("re-recorded job id must replace, kept=%d", st.Kept)
	}
}

// Package clique provides maximum-clique bounds. The max-clique size lower-
// bounds the chromatic number (paper §2.1), seeds the exact colorer, and
// supports the Coudert-style comparison in §4.3 (exact coloring via
// max-clique reasoning).
package clique

import (
	"sort"
	"time"

	"repro/internal/graph"
)

// Greedy returns a maximal clique found greedily from each of the top
// highest-degree seeds, keeping the best. Deterministic.
func Greedy(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	seeds := 8
	if seeds > n {
		seeds = n
	}
	var best []int
	for s := 0; s < seeds; s++ {
		cl := []int{order[s]}
		for _, v := range order {
			if v == order[s] {
				continue
			}
			ok := true
			for _, u := range cl {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				cl = append(cl, v)
			}
		}
		if len(cl) > len(best) {
			best = cl
		}
	}
	sort.Ints(best)
	return best
}

// Exact finds a maximum clique by branch and bound with greedy-coloring
// bounds. Returns the clique and whether the search completed within the
// deadline (zero deadline = no limit). Intended for the benchmark-scale
// graphs in this repository, not for large dense instances.
func Exact(g *graph.Graph, deadline time.Time) ([]int, bool) {
	s := &cliqueState{g: g, deadline: deadline}
	s.best = append([]int(nil), Greedy(g)...)
	cand := make([]int, g.N())
	for i := range cand {
		cand[i] = i
	}
	s.expand(nil, cand)
	sort.Ints(s.best)
	return s.best, !s.timedOut
}

type cliqueState struct {
	g        *graph.Graph
	best     []int
	deadline time.Time
	timedOut bool
	nodes    int64
}

func (s *cliqueState) expired() bool {
	if s.timedOut {
		return true
	}
	if !s.deadline.IsZero() && s.nodes%512 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
	}
	return s.timedOut
}

// colorBound greedily colors the candidate set; the color count bounds the
// largest clique inside it (Tomita-style pruning).
func (s *cliqueState) colorBound(cand []int) ([]int, []int) {
	colors := make([]int, len(cand))
	order := make([]int, 0, len(cand))
	classes := [][]int{}
	for _, v := range cand {
		placed := false
		for ci, cls := range classes {
			ok := true
			for _, u := range cls {
				if s.g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				classes[ci] = append(classes[ci], v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{v})
		}
	}
	for ci, cls := range classes {
		for _, v := range cls {
			order = append(order, v)
			colors[len(order)-1] = ci + 1
		}
	}
	return order, colors
}

func (s *cliqueState) expand(cur, cand []int) {
	s.nodes++
	if s.expired() {
		return
	}
	order, colors := s.colorBound(cand)
	for i := len(order) - 1; i >= 0; i-- {
		if len(cur)+colors[i] <= len(s.best) {
			return // color bound: no improvement possible
		}
		v := order[i]
		next := make([]int, 0, len(order))
		for j := 0; j < i; j++ {
			if s.g.HasEdge(order[j], v) {
				next = append(next, order[j])
			}
		}
		cur = append(cur, v)
		if len(cur) > len(s.best) {
			s.best = append(s.best[:0:0], cur...)
		}
		if len(next) > 0 {
			s.expand(cur, next)
		}
		cur = cur[:len(cur)-1]
	}
}

package clique

import (
	"testing"
	"time"

	"repro/internal/graph"
)

func TestGreedyFindsCliques(t *testing.T) {
	g := graph.Complete(6)
	cl := Greedy(g)
	if len(cl) != 6 || !g.IsClique(cl) {
		t.Fatalf("K6: greedy clique %v", cl)
	}
	c5 := graph.Cycle(5)
	cl = Greedy(c5)
	if len(cl) != 2 || !c5.IsClique(cl) {
		t.Fatalf("C5: greedy clique %v, want an edge", cl)
	}
}

func TestGreedyOnPlantedClique(t *testing.T) {
	g := graph.PartitePlanted("p", 40, 150, 6, 4)
	cl := Greedy(g)
	if !g.IsClique(cl) {
		t.Fatal("greedy result not a clique")
	}
	// Greedy is a heuristic; it must at least find an edge.
	if len(cl) < 2 {
		t.Fatalf("clique too small: %v", cl)
	}
}

func TestExactKnownValues(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Complete(5), 5},
		{graph.Cycle(6), 2},
		{graph.Cycle(3), 3},
		{graph.Petersen(), 2},
		{graph.Queens(5, 5), 5},
		{graph.Mycielski(4), 2}, // triangle-free
		{graph.PartitePlanted("p", 30, 100, 5, 8), 5},
	}
	for _, c := range cases {
		cl, complete := Exact(c.g, time.Time{})
		if !complete {
			t.Errorf("%s: did not complete", c.g.Name())
		}
		if len(cl) != c.want {
			t.Errorf("%s: ω = %d, want %d", c.g.Name(), len(cl), c.want)
		}
		if !c.g.IsClique(cl) {
			t.Errorf("%s: result is not a clique", c.g.Name())
		}
	}
}

func TestExactEmptyGraph(t *testing.T) {
	cl, complete := Exact(graph.New("e", 0), time.Time{})
	if len(cl) != 0 || !complete {
		t.Fatalf("empty graph: %v %v", cl, complete)
	}
	cl, _ = Exact(graph.New("iso", 4), time.Time{})
	if len(cl) != 1 {
		t.Fatalf("isolated vertices: ω = %d, want 1", len(cl))
	}
}

func TestExactDeadlineStillValid(t *testing.T) {
	g := graph.PartitePlanted("p", 60, 600, 8, 1)
	cl, _ := Exact(g, time.Now().Add(time.Millisecond))
	if !g.IsClique(cl) {
		t.Fatal("budgeted result must still be a clique")
	}
}

func TestCliqueLowerBoundsChi(t *testing.T) {
	for _, name := range []string{"queen5_5", "myciel4", "games120"} {
		g, err := graph.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		cl := Greedy(g)
		if g.Chi > 0 && len(cl) > g.Chi {
			t.Errorf("%s: clique %d exceeds χ %d", name, len(cl), g.Chi)
		}
	}
}

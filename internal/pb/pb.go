// Package pb provides pseudo-Boolean (PB) constraints and mixed CNF+PB
// formulas with an optional linear objective, the 0-1 ILP input format used
// throughout this reproduction (paper §2.3).
//
// A PB constraint is a linear inequality over literals of Boolean variables
// with integer coefficients. Internally every constraint is kept in the
// normalized form of Aloul et al. 2002:
//
//	a1*l1 + a2*l2 + ... + an*ln >= b,   ai > 0
//
// using the relations (Σ ai*li <= b) ⇔ (Σ ai*¬li >= Σai − b) and
// ¬x = (1 − x). Equality constraints normalize to a pair of >= constraints.
package pb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cnf"
)

// Comparator selects the relation of a constraint before normalization.
type Comparator int

// Comparators accepted by NewConstraint.
const (
	GE Comparator = iota // Σ terms >= bound
	LE                   // Σ terms <= bound
	EQ                   // Σ terms == bound
)

func (c Comparator) String() string {
	switch c {
	case GE:
		return ">="
	case LE:
		return "<="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one addend of a PB constraint: Coef * Lit.
type Term struct {
	Coef int
	Lit  cnf.Lit
}

// Constraint is a normalized PB constraint: Σ Terms >= Bound with all
// coefficients positive and at most one term per variable.
type Constraint struct {
	Terms []Term
	Bound int
}

// Normalize converts (terms cmp bound) into zero, one, or two normalized
// >= constraints. Zero constraints are returned when the input is trivially
// satisfied; a constraint with Bound > Σ coefficients is trivially false and
// returned as-is so solvers detect the conflict.
func Normalize(terms []Term, cmp Comparator, bound int) []Constraint {
	switch cmp {
	case GE:
		c := normalizeGE(terms, bound)
		if c == nil {
			return nil
		}
		return []Constraint{*c}
	case LE:
		// Σ ai*li <= b  ⇔  Σ ai*¬li >= Σai − b
		flipped := make([]Term, len(terms))
		sum := 0
		for i, t := range terms {
			flipped[i] = Term{Coef: t.Coef, Lit: t.Lit.Neg()}
			sum += t.Coef
		}
		c := normalizeGE(flipped, sum-bound)
		if c == nil {
			return nil
		}
		return []Constraint{*c}
	case EQ:
		out := Normalize(terms, GE, bound)
		out = append(out, Normalize(terms, LE, bound)...)
		return out
	}
	panic(fmt.Sprintf("pb: unknown comparator %d", cmp))
}

// normalizeGE brings Σ terms >= bound into normalized form: merges repeated
// variables, removes zero coefficients, and flips negative coefficients via
// −a*l = a*¬l − a. Returns nil when the constraint is trivially true.
func normalizeGE(terms []Term, bound int) *Constraint {
	// Merge terms on the same variable, folding phases onto the positive
	// literal: a*¬x = a − a*x.
	coefByVar := map[int]int{}
	order := []int{}
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		v := t.Lit.Var()
		if _, seen := coefByVar[v]; !seen {
			order = append(order, v)
		}
		if t.Lit.Sign() {
			coefByVar[v] += t.Coef
		} else {
			coefByVar[v] -= t.Coef
			bound -= t.Coef
		}
	}
	out := Constraint{}
	for _, v := range order {
		a := coefByVar[v]
		switch {
		case a > 0:
			out.Terms = append(out.Terms, Term{Coef: a, Lit: cnf.PosLit(v)})
		case a < 0:
			// −a*x >= b  ⇔  −a(1−¬x) ... fold onto negative literal.
			out.Terms = append(out.Terms, Term{Coef: -a, Lit: cnf.NegLit(v)})
			bound -= a // bound += |a|
		}
	}
	if bound <= 0 {
		return nil // trivially satisfied
	}
	// Coefficient saturation: a coefficient above the bound acts as bound.
	for i := range out.Terms {
		if out.Terms[i].Coef > bound {
			out.Terms[i].Coef = bound
		}
	}
	out.Bound = bound
	return &out
}

// Slack returns Σ coefficients − Bound, the amount by which the constraint
// can afford to lose terms. Negative slack means unsatisfiable.
func (c *Constraint) Slack() int {
	s := -c.Bound
	for _, t := range c.Terms {
		s += t.Coef
	}
	return s
}

// IsClause reports whether the constraint is equivalent to a CNF clause
// (all coefficients 1 and bound 1).
func (c *Constraint) IsClause() bool {
	if c.Bound != 1 {
		return false
	}
	for _, t := range c.Terms {
		if t.Coef != 1 {
			return false
		}
	}
	return true
}

// IsCardinality reports whether all coefficients are equal to 1.
func (c *Constraint) IsCardinality() bool {
	for _, t := range c.Terms {
		if t.Coef != 1 {
			return false
		}
	}
	return true
}

// Satisfied reports whether the constraint holds under a complete assignment.
func (c *Constraint) Satisfied(a cnf.Assignment) bool {
	sum := 0
	for _, t := range c.Terms {
		if a.Lit(t.Lit) {
			sum += t.Coef
		}
	}
	return sum >= c.Bound
}

// Signature returns a canonical string for the constraint shape: the sorted
// multiset of coefficients and the bound. Constraints with equal signatures
// are interchangeable under symmetry (used by the symmetry-graph coloring).
func (c *Constraint) Signature() string {
	coefs := make([]int, len(c.Terms))
	for i, t := range c.Terms {
		coefs[i] = t.Coef
	}
	sort.Ints(coefs)
	var b strings.Builder
	fmt.Fprintf(&b, ">=%d:", c.Bound)
	for _, a := range coefs {
		fmt.Fprintf(&b, "%d,", a)
	}
	return b.String()
}

func (c *Constraint) String() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		parts[i] = fmt.Sprintf("%+d*%s", t.Coef, t.Lit)
	}
	return fmt.Sprintf("%s >= %d", strings.Join(parts, " "), c.Bound)
}

// Formula is a 0-1 ILP instance: CNF clauses, normalized PB constraints, and
// an optional linear objective to minimize.
type Formula struct {
	NumVars     int
	Clauses     []cnf.Clause
	Constraints []Constraint
	// Objective, when non-empty, is minimized. All coefficients must be
	// positive (callers fold signs onto literals).
	Objective []Term
}

// NewFormula returns an empty formula with n variables.
func NewFormula(n int) *Formula { return &Formula{NumVars: n} }

// NewVar allocates a fresh variable.
func (f *Formula) NewVar() int {
	f.NumVars++
	return f.NumVars
}

// AddClause appends a CNF clause.
func (f *Formula) AddClause(lits ...cnf.Lit) {
	c := make(cnf.Clause, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
	f.track(c...)
}

// AddImplication adds a ⇒ b as the clause (¬a ∨ b).
func (f *Formula) AddImplication(a, b cnf.Lit) { f.AddClause(a.Neg(), b) }

// AddPB normalizes and appends a PB constraint. Constraints that normalize
// to clauses are stored as clauses so solvers treat them uniformly.
func (f *Formula) AddPB(terms []Term, cmp Comparator, bound int) {
	for _, c := range Normalize(terms, cmp, bound) {
		if c.IsClause() {
			lits := make([]cnf.Lit, len(c.Terms))
			for i, t := range c.Terms {
				lits[i] = t.Lit
			}
			f.AddClause(lits...)
			continue
		}
		f.Constraints = append(f.Constraints, c)
		for _, t := range c.Terms {
			f.trackVar(t.Lit.Var())
		}
	}
}

// SetObjective installs the minimization objective.
func (f *Formula) SetObjective(terms []Term) {
	f.Objective = append(f.Objective[:0], terms...)
	for _, t := range terms {
		f.trackVar(t.Lit.Var())
	}
}

// ObjectiveValue evaluates the objective under a complete assignment.
func (f *Formula) ObjectiveValue(a cnf.Assignment) int {
	v := 0
	for _, t := range f.Objective {
		if a.Lit(t.Lit) {
			v += t.Coef
		}
	}
	return v
}

// Satisfies reports whether the assignment satisfies all clauses and
// constraints.
func (f *Formula) Satisfies(a cnf.Assignment) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a.Lit(l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for i := range f.Constraints {
		if !f.Constraints[i].Satisfied(a) {
			return false
		}
	}
	return true
}

// Stats summarizes formula sizes as reported in the paper's Table 2.
type Stats struct {
	Vars int
	CNF  int // number of CNF clauses
	PB   int // number of PB constraints
}

// Stats returns the formula size summary.
func (f *Formula) Stats() Stats {
	return Stats{Vars: f.NumVars, CNF: len(f.Clauses), PB: len(f.Constraints)}
}

// OPB renders the formula in an OPB-like text format (objective, PB
// constraints, clauses-as-PB) for inspection and golden tests.
func (f *Formula) OPB() string {
	var b strings.Builder
	fmt.Fprintf(&b, "* #variable= %d #constraint= %d\n",
		f.NumVars, len(f.Clauses)+len(f.Constraints))
	if len(f.Objective) > 0 {
		b.WriteString("min:")
		for _, t := range f.Objective {
			fmt.Fprintf(&b, " %+d %s", t.Coef, litOPB(t.Lit))
		}
		b.WriteString(";\n")
	}
	for i := range f.Constraints {
		c := &f.Constraints[i]
		for _, t := range c.Terms {
			fmt.Fprintf(&b, "%+d %s ", t.Coef, litOPB(t.Lit))
		}
		fmt.Fprintf(&b, ">= %d;\n", c.Bound)
	}
	for _, cl := range f.Clauses {
		for _, l := range cl {
			fmt.Fprintf(&b, "+1 %s ", litOPB(l))
		}
		b.WriteString(">= 1;\n")
	}
	return b.String()
}

func litOPB(l cnf.Lit) string {
	if l.Sign() {
		return fmt.Sprintf("x%d", l.Var())
	}
	return fmt.Sprintf("~x%d", l.Var())
}

func (f *Formula) track(lits ...cnf.Lit) {
	for _, l := range lits {
		f.trackVar(l.Var())
	}
}

func (f *Formula) trackVar(v int) {
	if v > f.NumVars {
		f.NumVars = v
	}
}

package pb

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestParseOPBBasic(t *testing.T) {
	in := `* #variable= 3 #constraint= 2
min: +1 x1 +2 x2;
+1 x1 +1 x2 >= 1;
+2 x1 -3 ~x2 <= 5;
+1 x3 = 1;
`
	f, err := ParseOPB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Objective) != 2 {
		t.Fatalf("objective terms = %d", len(f.Objective))
	}
	// Constraint rows: >=1 over units becomes a clause; <= becomes a PB
	// constraint (or clause); = splits.
	if f.NumVars != 3 {
		t.Fatalf("vars = %d", f.NumVars)
	}
	// Semantics spot check: x1=1,x2=0,x3=1 is feasible.
	a := cnf.Assignment{false, true, false, true}
	if !f.Satisfies(a) {
		t.Fatal("expected satisfying assignment rejected")
	}
	// x3=0 violates the equality.
	if f.Satisfies(cnf.Assignment{false, true, false, false}) {
		t.Fatal("x3=0 should violate = 1")
	}
}

func TestParseOPBErrors(t *testing.T) {
	cases := []string{
		"+1 y1 >= 1;",     // bad variable name
		"+1 x0 >= 1;",     // variable index 0
		"+q x1 >= 1;",     // bad coefficient
		"+1 x1 >> 1;",     // bad comparator
		"+1 x1 >= one;",   // bad bound
		"+1 >= 1;",        // coefficient without variable
		"min: +1 x1 x2;",  // objective trailing garbage
		"+1 x1 >= 1 2 3;", // malformed relation
	}
	for _, in := range cases {
		if _, err := ParseOPB(strings.NewReader(in)); err == nil {
			t.Errorf("ParseOPB(%q) should fail", in)
		}
	}
}

// TestOPBRoundTripSemantics: Formula -> OPB text -> Formula preserves the
// satisfying set and objective values over all assignments.
func TestOPBRoundTripSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 100; iter++ {
		nVars := 2 + rng.Intn(5)
		f := NewFormula(nVars)
		for c := 0; c < 1+rng.Intn(3); c++ {
			w := 1 + rng.Intn(3)
			terms := make([]Term, 0, w)
			for j := 0; j < w; j++ {
				l := cnf.PosLit(1 + rng.Intn(nVars))
				if rng.Intn(2) == 0 {
					l = l.Neg()
				}
				terms = append(terms, Term{Coef: 1 + rng.Intn(3), Lit: l})
			}
			f.AddPB(terms, Comparator(rng.Intn(3)), rng.Intn(5))
		}
		if rng.Intn(2) == 0 {
			f.SetObjective([]Term{{Coef: 1 + rng.Intn(2), Lit: cnf.PosLit(1 + rng.Intn(nVars))}})
		}
		back, err := ParseOPB(strings.NewReader(f.OPB()))
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, f.OPB())
		}
		for mask := 0; mask < 1<<nVars; mask++ {
			a := make(cnf.Assignment, nVars+1)
			for v := 1; v <= nVars; v++ {
				a[v] = mask&(1<<(v-1)) != 0
			}
			if f.Satisfies(a) != back.Satisfies(a) {
				t.Fatalf("iter %d mask %b: satisfaction differs\n%s", iter, mask, f.OPB())
			}
			if f.Satisfies(a) && f.ObjectiveValue(a) != back.ObjectiveValue(a) {
				t.Fatalf("iter %d: objective differs", iter)
			}
		}
	}
}

package pb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

func lit(v int) cnf.Lit  { return cnf.PosLit(v) }
func nlit(v int) cnf.Lit { return cnf.NegLit(v) }

func TestNormalizeGESimple(t *testing.T) {
	cs := Normalize([]Term{{2, lit(1)}, {3, lit(2)}}, GE, 4)
	if len(cs) != 1 {
		t.Fatalf("got %d constraints", len(cs))
	}
	c := cs[0]
	if c.Bound != 4 || len(c.Terms) != 2 {
		t.Fatalf("bad constraint %v", c.String())
	}
}

func TestNormalizeLE(t *testing.T) {
	// 2x1 + 3x2 <= 4  =>  2¬x1 + 3¬x2 >= 1
	cs := Normalize([]Term{{2, lit(1)}, {3, lit(2)}}, LE, 4)
	if len(cs) != 1 {
		t.Fatalf("got %d constraints", len(cs))
	}
	c := cs[0]
	if c.Bound != 1 {
		t.Fatalf("bound = %d, want 1", c.Bound)
	}
	for _, tm := range c.Terms {
		if tm.Lit.Sign() {
			t.Fatalf("expected negated literals, got %v", c.String())
		}
	}
	// Saturation clips coefficients at the bound.
	for _, tm := range c.Terms {
		if tm.Coef > c.Bound {
			t.Fatalf("coefficient %d above bound %d not saturated", tm.Coef, c.Bound)
		}
	}
}

func TestNormalizeEQ(t *testing.T) {
	cs := Normalize([]Term{{1, lit(1)}, {1, lit(2)}, {1, lit(3)}}, EQ, 1)
	if len(cs) != 2 {
		t.Fatalf("EQ should produce 2 constraints, got %d", len(cs))
	}
}

func TestNormalizeTriviallyTrue(t *testing.T) {
	cs := Normalize([]Term{{1, lit(1)}}, GE, 0)
	if len(cs) != 0 {
		t.Fatalf("bound 0 should be trivially true, got %v", cs)
	}
	cs = Normalize([]Term{{3, lit(1)}}, LE, 5)
	if len(cs) != 0 {
		t.Fatalf("3x <= 5 should be trivially true, got %v", cs)
	}
}

func TestNormalizeNegativeCoefficients(t *testing.T) {
	// x1 - x2 >= 0  ⇔  x1 + ¬x2 >= 1
	cs := Normalize([]Term{{1, lit(1)}, {-1, lit(2)}}, GE, 0)
	if len(cs) != 1 {
		t.Fatalf("got %d constraints", len(cs))
	}
	c := cs[0]
	if c.Bound != 1 || len(c.Terms) != 2 {
		t.Fatalf("bad constraint %v", c.String())
	}
	sawNeg := false
	for _, tm := range c.Terms {
		if tm.Lit == nlit(2) {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Fatalf("expected ¬x2 in %v", c.String())
	}
}

func TestNormalizeMergesRepeatedVars(t *testing.T) {
	// x1 + ¬x1 >= 1 is trivially true (sum is always 1... bound 1 means >= 1 ✓).
	cs := Normalize([]Term{{1, lit(1)}, {1, nlit(1)}}, GE, 1)
	if len(cs) != 0 {
		t.Fatalf("x + ¬x >= 1 should be trivial, got %v", cs)
	}
	// 2x1 + 1¬x1 >= 2 ⇔ x1 + 1 >= 2 ⇔ x1 >= 1.
	cs = Normalize([]Term{{2, lit(1)}, {1, nlit(1)}}, GE, 2)
	if len(cs) != 1 || cs[0].Bound != 1 || len(cs[0].Terms) != 1 || cs[0].Terms[0].Lit != lit(1) {
		t.Fatalf("got %v", cs)
	}
}

// normalization preserves satisfaction over all assignments (exhaustive over
// up to 8 variables, randomized constraints).
func TestNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nv := 1 + rng.Intn(6)
		nt := 1 + rng.Intn(6)
		terms := make([]Term, nt)
		for i := range terms {
			v := 1 + rng.Intn(nv)
			l := cnf.PosLit(v)
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			terms[i] = Term{Coef: rng.Intn(7) - 3, Lit: l}
		}
		cmp := Comparator(rng.Intn(3))
		bound := rng.Intn(9) - 2
		cs := Normalize(terms, cmp, bound)
		for mask := 0; mask < 1<<nv; mask++ {
			a := make(cnf.Assignment, nv+1)
			for v := 1; v <= nv; v++ {
				a[v] = mask&(1<<(v-1)) != 0
			}
			sum := 0
			for _, tm := range terms {
				if a.Lit(tm.Lit) {
					sum += tm.Coef
				}
			}
			var wantSat bool
			switch cmp {
			case GE:
				wantSat = sum >= bound
			case LE:
				wantSat = sum <= bound
			case EQ:
				wantSat = sum == bound
			}
			gotSat := true
			for i := range cs {
				if !cs[i].Satisfied(a) {
					gotSat = false
					break
				}
			}
			if gotSat != wantSat {
				t.Fatalf("iter %d mask %b: terms=%v %v %d: got %v want %v (normalized %v)",
					iter, mask, terms, cmp, bound, gotSat, wantSat, cs)
			}
		}
	}
}

func TestConstraintPredicates(t *testing.T) {
	c := Constraint{Terms: []Term{{1, lit(1)}, {1, lit(2)}}, Bound: 1}
	if !c.IsClause() || !c.IsCardinality() {
		t.Fatalf("1x1+1x2>=1 should be clause and cardinality")
	}
	c2 := Constraint{Terms: []Term{{1, lit(1)}, {1, lit(2)}}, Bound: 2}
	if c2.IsClause() || !c2.IsCardinality() {
		t.Fatalf("bound-2 cardinality misclassified")
	}
	c3 := Constraint{Terms: []Term{{2, lit(1)}, {1, lit(2)}}, Bound: 2}
	if c3.IsClause() || c3.IsCardinality() {
		t.Fatalf("weighted constraint misclassified")
	}
}

func TestSlack(t *testing.T) {
	c := Constraint{Terms: []Term{{2, lit(1)}, {3, lit(2)}}, Bound: 4}
	if c.Slack() != 1 {
		t.Fatalf("Slack = %d, want 1", c.Slack())
	}
}

func TestSignatureGroupsIsomorphicConstraints(t *testing.T) {
	a := Constraint{Terms: []Term{{2, lit(1)}, {3, lit(2)}}, Bound: 4}
	b := Constraint{Terms: []Term{{3, lit(9)}, {2, lit(7)}}, Bound: 4}
	c := Constraint{Terms: []Term{{2, lit(1)}, {3, lit(2)}}, Bound: 5}
	if a.Signature() != b.Signature() {
		t.Fatalf("signatures should match: %q vs %q", a.Signature(), b.Signature())
	}
	if a.Signature() == c.Signature() {
		t.Fatalf("different bounds should differ: %q", a.Signature())
	}
}

func TestFormulaAddPBStoresClausesAsClauses(t *testing.T) {
	f := NewFormula(3)
	f.AddPB([]Term{{1, lit(1)}, {1, lit(2)}}, GE, 1) // a clause
	if len(f.Clauses) != 1 || len(f.Constraints) != 0 {
		t.Fatalf("clause-shaped PB not stored as clause: %d clauses %d constraints",
			len(f.Clauses), len(f.Constraints))
	}
	f.AddPB([]Term{{1, lit(1)}, {1, lit(2)}, {1, lit(3)}}, EQ, 1)
	// EQ 1 over three unit terms = (>=1: clause) + (<=1: cardinality >= 2 over negs)
	if len(f.Clauses) != 2 || len(f.Constraints) != 1 {
		t.Fatalf("EQ split wrong: %d clauses %d constraints", len(f.Clauses), len(f.Constraints))
	}
}

func TestFormulaObjective(t *testing.T) {
	f := NewFormula(2)
	f.SetObjective([]Term{{1, lit(1)}, {2, lit(2)}})
	a := cnf.Assignment{false, true, true}
	if got := f.ObjectiveValue(a); got != 3 {
		t.Fatalf("ObjectiveValue = %d, want 3", got)
	}
	a2 := cnf.Assignment{false, true, false}
	if got := f.ObjectiveValue(a2); got != 1 {
		t.Fatalf("ObjectiveValue = %d, want 1", got)
	}
}

func TestFormulaSatisfies(t *testing.T) {
	f := NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddPB([]Term{{1, lit(1)}, {1, lit(2)}, {1, lit(3)}}, GE, 2)
	if !f.Satisfies(cnf.Assignment{false, true, true, false}) {
		t.Fatal("should satisfy")
	}
	if f.Satisfies(cnf.Assignment{false, true, false, false}) {
		t.Fatal("PB constraint violated; should not satisfy")
	}
}

func TestOPBOutput(t *testing.T) {
	f := NewFormula(2)
	f.SetObjective([]Term{{1, lit(1)}})
	f.AddPB([]Term{{1, lit(1)}, {1, lit(2)}}, GE, 2)
	f.AddClause(lit(1), nlit(2))
	s := f.OPB()
	if !strings.Contains(s, "min: +1 x1;") {
		t.Fatalf("missing objective: %q", s)
	}
	if !strings.Contains(s, "+1 x1 +1 x2 >= 2;") {
		t.Fatalf("missing PB row: %q", s)
	}
	if !strings.Contains(s, "+1 x1 +1 ~x2 >= 1;") {
		t.Fatalf("missing clause row: %q", s)
	}
}

// Property: Normalize output always has positive coefficients, positive
// bound, and at most one term per variable.
func TestNormalizedShapeProperty(t *testing.T) {
	f := func(coefs []int8, boundRaw int8, cmpRaw uint8) bool {
		if len(coefs) == 0 {
			return true
		}
		if len(coefs) > 8 {
			coefs = coefs[:8]
		}
		terms := make([]Term, len(coefs))
		for i, c := range coefs {
			l := cnf.PosLit(i/2 + 1) // force some repeated vars
			if i%2 == 1 {
				l = l.Neg()
			}
			terms[i] = Term{Coef: int(c), Lit: l}
		}
		cs := Normalize(terms, Comparator(int(cmpRaw)%3), int(boundRaw))
		for _, c := range cs {
			if c.Bound <= 0 {
				return false
			}
			seen := map[int]bool{}
			for _, tm := range c.Terms {
				if tm.Coef <= 0 || tm.Coef > c.Bound {
					return false
				}
				if seen[tm.Lit.Var()] {
					return false
				}
				seen[tm.Lit.Var()] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

package pb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// ParseOPB reads a pseudo-Boolean instance in the OPB text format produced
// by Formula.OPB (and by the standard PB-competition tools):
//
//   - #variable= 4 #constraint= 2        (comment lines start with '*')
//     min: +1 x1 +2 x2;                    (optional objective)
//     +1 x1 +1 x2 >= 1;
//     +2 x1 -3 ~x2 <= 5;
//     +1 x3 = 1;
//
// Variables are written x<N>; "~" negates. Constraints are normalized on
// input, so a round trip through OPB/ParseOPB preserves semantics (not
// necessarily the literal text).
func ParseOPB(r io.Reader) (*Formula, error) {
	f := NewFormula(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		if strings.HasPrefix(line, "min:") {
			terms, rest, err := parseTerms(strings.TrimPrefix(line, "min:"))
			if err != nil {
				return nil, fmt.Errorf("opb line %d: %v", lineNo, err)
			}
			if strings.TrimSpace(rest) != "" {
				return nil, fmt.Errorf("opb line %d: trailing %q in objective", lineNo, rest)
			}
			f.SetObjective(terms)
			continue
		}
		terms, rest, err := parseTerms(line)
		if err != nil {
			return nil, fmt.Errorf("opb line %d: %v", lineNo, err)
		}
		cmp, bound, err := parseRelation(rest)
		if err != nil {
			return nil, fmt.Errorf("opb line %d: %v", lineNo, err)
		}
		f.AddPB(terms, cmp, bound)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// parseTerms consumes "+2 x1 -1 ~x3 ..." pairs and returns the remainder
// (the relation part) unconsumed.
func parseTerms(s string) ([]Term, string, error) {
	fields := strings.Fields(s)
	var terms []Term
	i := 0
	for i+1 < len(fields)+1 {
		if i >= len(fields) {
			break
		}
		tok := fields[i]
		if tok == ">=" || tok == "<=" || tok == "=" {
			break
		}
		coef, err := strconv.Atoi(strings.TrimPrefix(tok, "+"))
		if err != nil {
			return nil, "", fmt.Errorf("bad coefficient %q", tok)
		}
		if i+1 >= len(fields) {
			return nil, "", fmt.Errorf("coefficient %q without variable", tok)
		}
		lit, err := parseOPBLit(fields[i+1])
		if err != nil {
			return nil, "", err
		}
		terms = append(terms, Term{Coef: coef, Lit: lit})
		i += 2
	}
	return terms, strings.Join(fields[i:], " "), nil
}

func parseOPBLit(tok string) (cnf.Lit, error) {
	neg := false
	if strings.HasPrefix(tok, "~") {
		neg = true
		tok = tok[1:]
	}
	if !strings.HasPrefix(tok, "x") {
		return 0, fmt.Errorf("bad variable %q", tok)
	}
	v, err := strconv.Atoi(tok[1:])
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad variable %q", tok)
	}
	if neg {
		return cnf.NegLit(v), nil
	}
	return cnf.PosLit(v), nil
}

func parseRelation(s string) (Comparator, int, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("bad relation %q", s)
	}
	var cmp Comparator
	switch fields[0] {
	case ">=":
		cmp = GE
	case "<=":
		cmp = LE
	case "=":
		cmp = EQ
	default:
		return 0, 0, fmt.Errorf("bad comparator %q", fields[0])
	}
	bound, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad bound %q", fields[1])
	}
	return cmp, bound, nil
}

// Package faultinject is the repo's fault-injection harness: deterministic,
// seeded wrappers that make the failure paths of the storage and solving
// layers testable on a healthy machine.
//
// Two injection points cover the failure modes the service hardens against:
//
//   - FS wraps a store.FS and injects errors, extra latency, and partial
//     (torn) writes into the store's file operations — the inputs to the
//     store's torn-tail recovery and the service's degraded memory-only
//     mode.
//   - Panics (in solve.go) decorates a service.SolveFunc with injected
//     panics, the input to the service's per-job panic isolation.
//
// All injection is driven by a seeded math/rand source plus deterministic
// every-Nth counters, so a failing chaos run reproduces from its seed. An
// injector is Armed by default and can be disarmed (and re-armed) at
// runtime, which is how recovery drills simulate a disk that heals.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// ErrInjected is the error every injected fault returns, wrapped with the
// operation it hit. Tests match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Config tunes an FS. The zero value injects nothing.
type Config struct {
	// Seed drives the probabilistic decisions; runs with the same seed and
	// operation sequence inject identically.
	Seed int64
	// FailEvery injects an error on every Nth intercepted operation
	// (0 = disabled). Counted across Write/Sync/Truncate — the mutating
	// ops whose failure the store must degrade around.
	FailEvery int64
	// FailRate injects an error on each intercepted operation with this
	// probability (0 = disabled). Composes with FailEvery.
	FailRate float64
	// FailOpens extends injection to OpenFile calls, so reopen attempts
	// during a degraded spell keep failing until the injector is
	// disarmed.
	FailOpens bool
	// PartialWrites makes an injected Write fault tear the write: about
	// half the buffer reaches the file before the error returns, the torn
	// bytes left for the store's CRC recovery to cut off.
	PartialWrites bool
	// Latency is added to every intercepted operation, injected faults or
	// not (0 = none) — the slow-disk half of the harness.
	Latency time.Duration
}

// FS wraps an inner store.FS (the real filesystem when nil) and injects
// faults per its Config. Safe for concurrent use; plug it into
// store.Options.FS.
type FS struct {
	inner store.FS
	cfg   Config

	armed atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand
	ops int64 // intercepted operations, for FailEvery

	injected atomic.Int64
}

// NewFS builds a fault-injecting filesystem over inner (nil = the real
// one). The injector starts armed.
func NewFS(inner store.FS, cfg Config) *FS {
	if inner == nil {
		inner = store.OSFS{}
	}
	f := &FS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	f.armed.Store(true)
	return f
}

// Arm (re-)enables injection.
func (f *FS) Arm() { f.armed.Store(true) }

// Disarm stops injecting; operations pass through untouched. The
// every-Nth counter and rng state are kept, so re-arming resumes the
// deterministic schedule.
func (f *FS) Disarm() { f.armed.Store(false) }

// Injected reports how many faults have been injected so far.
func (f *FS) Injected() int64 { return f.injected.Load() }

// inject decides one operation's fate: nil, or a wrapped ErrInjected.
func (f *FS) inject(op string) error {
	if !f.armed.Load() {
		return nil
	}
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	f.mu.Lock()
	f.ops++
	hit := (f.cfg.FailEvery > 0 && f.ops%f.cfg.FailEvery == 0) ||
		(f.cfg.FailRate > 0 && f.rng.Float64() < f.cfg.FailRate)
	f.mu.Unlock()
	if !hit {
		return nil
	}
	f.injected.Add(1)
	return fmt.Errorf("%w (%s)", ErrInjected, op)
}

// OpenFile implements store.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	if f.cfg.FailOpens {
		if err := f.inject("open " + name); err != nil {
			return nil, err
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: inner, fs: f, name: name}, nil
}

// ReadFile implements store.FS (reads pass through: the harness targets
// the write path, where degraded mode is decided).
func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Rename implements store.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.inject("rename " + newpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements store.FS (passes through so recovery can always clean
// up rotated segments).
func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// Stat implements store.FS.
func (f *FS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// file intercepts the mutating operations of one open file.
type file struct {
	store.File
	fs   *FS
	name string
}

// Write injects errors and, under Config.PartialWrites, torn writes: half
// the buffer lands before the error surfaces, the residue a crash would
// leave mid-append.
func (w *file) Write(p []byte) (int, error) {
	if err := w.fs.inject("write " + w.name); err != nil {
		if w.fs.cfg.PartialWrites && len(p) > 1 {
			n, werr := w.File.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return w.File.Write(p)
}

// Sync injects errors into fsync.
func (w *file) Sync() error {
	if err := w.fs.inject("sync " + w.name); err != nil {
		return err
	}
	return w.File.Sync()
}

// Truncate injects errors into truncation (the store's torn-tail repair
// path, so even the repair of an injected fault can be made to fail).
func (w *file) Truncate(size int64) error {
	if err := w.fs.inject("truncate " + w.name); err != nil {
		return err
	}
	return w.File.Truncate(size)
}

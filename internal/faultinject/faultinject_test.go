package faultinject

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/solverutil"
	"repro/internal/store"
)

// TestDeterministicSchedule: two injectors with the same seed and config
// agree, fault for fault, over the same operation sequence.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, FailRate: 0.3}
	a, b := NewFS(nil, cfg), NewFS(nil, cfg)
	for i := 0; i < 200; i++ {
		ea := a.inject("write x")
		eb := b.inject("write x")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("op %d: schedules diverge (%v vs %v)", i, ea, eb)
		}
	}
	if a.Injected() == 0 {
		t.Fatal("rate 0.3 over 200 ops injected nothing")
	}
	if a.Injected() != b.Injected() {
		t.Fatalf("injected counts diverge: %d vs %d", a.Injected(), b.Injected())
	}
}

// TestFailEvery: the every-Nth counter fires exactly on schedule.
func TestFailEvery(t *testing.T) {
	fs := NewFS(nil, Config{FailEvery: 3})
	var got []int
	for i := 1; i <= 9; i++ {
		if err := fs.inject("op"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not match ErrInjected", err)
			}
			got = append(got, i)
		}
	}
	want := []int{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

// TestStoreSurvivesInjectedWriteFaults: a store whose WAL writes fail
// intermittently keeps its in-memory answers, reports errors on the Puts
// that were hit, and a clean reopen (injector disarmed, as when a disk
// heals) recovers every record whose append succeeded — torn tails from
// partial writes are cut, never fatal.
func TestStoreSurvivesInjectedWriteFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(nil, Config{Seed: 7, FailEvery: 4, PartialWrites: true})
	fs.Disarm() // let Open lay the files down cleanly
	s, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm()

	okKeys := map[string]bool{}
	for i := 0; i < 40; i++ {
		key := string(rune('a'+i%26)) + "-" + string(rune('0'+i/26))
		if err := s.Put(key, []byte("v")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("Put %s: unexpected error %v", key, err)
			}
			continue
		}
		okKeys[key] = true
	}
	if fs.Injected() == 0 {
		t.Fatal("no faults injected")
	}
	// Same-process reads still serve even the failed Puts (memory map
	// is installed before the append).
	if _, ok := s.Get("a-0"); !ok {
		t.Fatal("in-memory entry lost on write failure")
	}
	fs.Disarm()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir, store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for key := range okKeys {
		if _, ok := s2.Get(key); !ok {
			t.Errorf("durably-acknowledged key %s lost after reopen", key)
		}
	}
}

// TestLatencyInjection: injected latency is observable per op.
func TestLatencyInjection(t *testing.T) {
	fs := NewFS(nil, Config{Latency: 20 * time.Millisecond})
	start := time.Now()
	fs.inject("op")
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("op took %v, want >= ~20ms of injected latency", d)
	}
}

func stubSolve(calls *atomic.Int64) service.SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec service.JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		calls.Add(1)
		return core.Outcome{Instance: g.Name()}
	}
}

// TestPanicsDecorator: every Nth call panics before the inner solver runs;
// the others pass through.
func TestPanicsDecorator(t *testing.T) {
	var inner atomic.Int64
	solve, fired := Panics(stubSolve(&inner), 2)
	g := graph.New("g", 2)
	run := func() (panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		solve(context.Background(), g, service.JobSpec{}, nil, nil)
		return false
	}
	want := []bool{false, true, false, true}
	for i, w := range want {
		if got := run(); got != w {
			t.Fatalf("call %d: panicked=%v, want %v", i+1, got, w)
		}
	}
	if inner.Load() != 2 || fired.Load() != 2 {
		t.Fatalf("inner=%d fired=%d, want 2/2", inner.Load(), fired.Load())
	}
}

// TestDelayDecorator: the delay honors cancellation without running the
// inner solver.
func TestDelayDecorator(t *testing.T) {
	var inner atomic.Int64
	solve := Delay(stubSolve(&inner), time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := solve(ctx, graph.New("g", 1), service.JobSpec{}, nil, nil)
	if inner.Load() != 0 {
		t.Fatal("inner solver ran despite cancellation during injected delay")
	}
	if out.Instance != "g" {
		t.Fatalf("outcome instance = %q", out.Instance)
	}
}

package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/solverutil"
)

// Panics decorates a service.SolveFunc so every Nth call panics before the
// inner solver runs (every ≤ 0 never panics). It returns the decorated
// func and a counter of panics injected so far. The panic value carries
// the call number, so a crash log identifies which injected fault fired —
// and the service's panic isolation is expected to turn it into a
// StateFailed job, never a dead process.
func Panics(inner service.SolveFunc, every int64) (service.SolveFunc, *atomic.Int64) {
	var calls, fired atomic.Int64
	return func(ctx context.Context, g *graph.Graph, spec service.JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		n := calls.Add(1)
		if every > 0 && n%every == 0 {
			fired.Add(1)
			panic(fmt.Sprintf("faultinject: injected solver panic (call %d)", n))
		}
		return inner(ctx, g, spec, sym, progress)
	}, &fired
}

// Delay decorates a service.SolveFunc with a fixed pre-solve delay,
// honoring cancellation — the controllable slow solver crash drills use
// to catch a daemon with jobs mid-flight.
func Delay(inner service.SolveFunc, d time.Duration) service.SolveFunc {
	if d <= 0 {
		return inner
	}
	return func(ctx context.Context, g *graph.Graph, spec service.JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return core.Outcome{Instance: g.Name()}
		}
		return inner(ctx, g, spec, sym, progress)
	}
}

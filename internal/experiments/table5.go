package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// Table5Entry is one solve of the appendix's per-instance queens study.
type Table5Entry struct {
	Instance string
	Kind     encode.SBPKind
	Engine   pbsolver.Engine
	InstDep  bool
	Runtime  time.Duration
	Solved   bool
	Status   pbsolver.Status
	Chi      int
}

// Table5 runs the queens family (queen5_5, 6_6, 7_7, 8_12) through every
// configuration, as in the paper's appendix.
func Table5(cfg Config) ([]Table5Entry, error) {
	K := cfg.k()
	var out []Table5Entry
	for _, g := range graph.QueensBenchmarks() {
		if len(cfg.Instances) > 0 && !contains(cfg.Instances, g.Name()) {
			continue
		}
		for _, kind := range cfg.sbps() {
			for _, eng := range cfg.engines() {
				for _, instDep := range []bool{false, true} {
					res := core.Solve(context.Background(), g, core.Config{
						K: K, SBP: kind, InstanceDependent: instDep,
						Engine: eng, Timeout: cfg.Timeout,
						SymMaxNodes: cfg.SymMaxNodes, SymTimeout: cfg.SymTimeout,
					})
					rt := res.Result.Runtime
					if res.Sym != nil {
						rt += res.Sym.DetectTime
					}
					out = append(out, Table5Entry{
						Instance: g.Name(), Kind: kind, Engine: eng,
						InstDep: instDep, Runtime: rt,
						Solved: res.Solved(), Status: res.Result.Status,
						Chi: res.Chi,
					})
					cfg.logf("table5 %-10s %-6s %-7s instdep=%-5v %-8v %s\n",
						g.Name(), kind, eng, instDep, res.Result.Status, formatDur(rt))
				}
			}
		}
	}
	return out, nil
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// PrintTable5 renders the queens detail in the appendix layout: one block
// per instance, rows per construction, solver columns split into
// (no inst.-dep., with inst.-dep.).
func PrintTable5(w io.Writer, entries []Table5Entry, engines []pbsolver.Engine, K int, timeout time.Duration) {
	fmt.Fprintf(w, "Table 5: queens family detail, K=%d, timeout %s (T/O = not solved in time)\n", K, timeout)
	byInstance := map[string][]Table5Entry{}
	var order []string
	for _, e := range entries {
		if _, ok := byInstance[e.Instance]; !ok {
			order = append(order, e.Instance)
		}
		byInstance[e.Instance] = append(byInstance[e.Instance], e)
	}
	for _, inst := range order {
		fmt.Fprintf(w, "\n%s\n", inst)
		fmt.Fprintf(w, "%-8s", "SBP")
		for _, e := range engines {
			fmt.Fprintf(w, " | %-19s", engineLabel(e))
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-8s", "")
		for range engines {
			fmt.Fprintf(w, " | %-9s %-9s", "No", "Yes")
		}
		fmt.Fprintln(w)
		kinds := []encode.SBPKind{}
		seen := map[encode.SBPKind]bool{}
		for _, e := range byInstance[inst] {
			if !seen[e.Kind] {
				seen[e.Kind] = true
				kinds = append(kinds, e.Kind)
			}
		}
		for _, kind := range kinds {
			fmt.Fprintf(w, "%-8s", kind)
			for _, eng := range engines {
				var no, yes string
				for _, e := range byInstance[inst] {
					if e.Kind != kind || e.Engine != eng {
						continue
					}
					cell := "T/O"
					if e.Solved {
						cell = formatDur(e.Runtime)
					}
					if e.InstDep {
						yes = cell
					} else {
						no = cell
					}
				}
				fmt.Fprintf(w, " | %-9s %-9s", no, yes)
			}
			fmt.Fprintln(w)
		}
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and the appendix): Table 1 (benchmark statistics), Table 2
// (encoding sizes and symmetry statistics per SBP construction), Tables 3/4
// (solver runtime matrices at K=20/K=30), Table 5 (queens detail), and
// Figure 1 (surviving optimal assignments of the worked example under each
// SBP). The harness is shared by cmd/experiments and the bench_test.go
// benchmarks; budgets are scaled down from the paper's 1000 s SunBlade
// timeouts and are fully configurable.
package experiments

import (
	"fmt"
	"io"
	"math/big"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// Config selects instances and budgets for the solver-matrix tables.
type Config struct {
	// K is the color bound (20 for Table 3, 30 for Table 4).
	K int
	// Timeout is the per-configuration solve budget (paper: 1000 s).
	Timeout time.Duration
	// SymMaxNodes / SymTimeout bound each symmetry detection run.
	SymMaxNodes int64
	SymTimeout  time.Duration
	// Instances restricts the benchmark set (nil = all 20 of Table 1).
	Instances []string
	// Engines restricts the solver columns (nil = all four).
	Engines []pbsolver.Engine
	// SBPs restricts the construction rows (nil = all six of the paper).
	SBPs []encode.SBPKind
	// Verbose streams per-instance progress lines to Out.
	Verbose bool
	Out     io.Writer
}

func (c Config) instances() ([]*graph.Graph, error) {
	names := c.Instances
	if len(names) == 0 {
		names = make([]string, len(graph.BenchmarkTable))
		for i, info := range graph.BenchmarkTable {
			names[i] = info.Name
		}
	}
	out := make([]*graph.Graph, 0, len(names))
	for _, n := range names {
		g, err := graph.Benchmark(n)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

func (c Config) engines() []pbsolver.Engine {
	if len(c.Engines) > 0 {
		return c.Engines
	}
	return []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineBnB, pbsolver.EngineGalena, pbsolver.EnginePueblo}
}

func (c Config) sbps() []encode.SBPKind {
	if len(c.SBPs) > 0 {
		return c.SBPs
	}
	return encode.Kinds
}

func (c Config) k() int {
	if c.K == 0 {
		return 20
	}
	return c.K
}

// KOrDefault returns the effective color bound.
func (c Config) KOrDefault() int { return c.k() }

// NumInstances returns the effective benchmark count.
func (c Config) NumInstances() int {
	if len(c.Instances) > 0 {
		return len(c.Instances)
	}
	return len(graph.BenchmarkTable)
}

// EngineList returns the effective solver columns.
func (c Config) EngineList() []pbsolver.Engine { return c.engines() }

func (c Config) logf(format string, args ...any) {
	if c.Verbose && c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// engineLabel maps our engine names to the paper's solver columns.
func engineLabel(e pbsolver.Engine) string {
	switch e {
	case pbsolver.EnginePBS:
		return "PBS II"
	case pbsolver.EngineBnB:
		return "CPLEX*"
	case pbsolver.EngineGalena:
		return "Galena"
	case pbsolver.EnginePueblo:
		return "Pueblo"
	}
	return e.String()
}

// formatBig renders a big integer the way the paper prints group orders
// (e.g. "1.1e+168"); small values print exactly.
func formatBig(x *big.Int) string {
	if x.IsInt64() && x.Int64() < 1e6 {
		return x.String()
	}
	f := new(big.Float).SetInt(x)
	return fmt.Sprintf("%.1e", f)
}

// formatDur renders durations compactly for table cells.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%.0fms", float64(d.Microseconds())/1000)
	}
}

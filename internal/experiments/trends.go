package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/encode"
	"repro/internal/pbsolver"
)

// Trend is one of the paper's §4.2 empirical observations checked against a
// measured matrix.
type Trend struct {
	ID          int
	Description string
	Holds       bool
	Detail      string
}

// cell lookup helpers.
func findRow(rows []MatrixRow, kind encode.SBPKind) *MatrixRow {
	for i := range rows {
		if rows[i].Kind == kind {
			return &rows[i]
		}
	}
	return nil
}

// AnalyzeTrends evaluates the paper's key claims (observations 2-8 of
// §4.2, restated) on a measured Table 3/4 matrix. CDCL engines are all
// engines except EngineBnB (the CPLEX stand-in).
func AnalyzeTrends(rows []MatrixRow, engines []pbsolver.Engine) []Trend {
	var cdcl []pbsolver.Engine
	hasBnB := false
	for _, e := range engines {
		if e == pbsolver.EngineBnB {
			hasBnB = true
		} else {
			cdcl = append(cdcl, e)
		}
	}
	var trends []Trend
	none := findRow(rows, encode.SBPNone)
	nu := findRow(rows, encode.SBPNU)
	nusc := findRow(rows, encode.SBPNUSC)
	ca := findRow(rows, encode.SBPCA)
	li := findRow(rows, encode.SBPLI)
	sc := findRow(rows, encode.SBPSC)

	// Trend A (paper obs. 3): CDCL solvers benefit considerably from
	// instance-dependent SBPs (more instances solved on the no-SBP row).
	if none != nil {
		holds, detail := true, ""
		for _, e := range cdcl {
			p := none.Cells[e]
			detail += fmt.Sprintf("%s %d→%d ", engineLabel(e), p[0].Solved, p[1].Solved)
			if p[1].Solved < p[0].Solved {
				holds = false
			}
		}
		better := false
		for _, e := range cdcl {
			if none.Cells[e][1].Solved > none.Cells[e][0].Solved {
				better = true
			}
		}
		trends = append(trends, Trend{1,
			"instance-dependent SBPs increase #solved for CDCL solvers (no-SBP row)",
			holds && better, detail})
	}

	// Trend B (obs. 4): among instance-independent-only rows, NU or NU+SC
	// is the best for every CDCL engine; CA and LI are never best.
	if none != nil && nu != nil && nusc != nil {
		holds, detail := true, ""
		for _, e := range cdcl {
			best, _ := BestCells(rows, e)
			detail += fmt.Sprintf("%s best=%v ", engineLabel(e), best)
			if best == encode.SBPCA || best == encode.SBPLI {
				holds = false
			}
		}
		trends = append(trends, Trend{2,
			"simple constructions (never CA/LI) are the best instance-independent-only rows",
			holds, detail})
	}

	// Trend C (obs. 4): complex constructions underperform — LI solves no
	// more than NU for each CDCL engine (orig column).
	if nu != nil && li != nil {
		holds, detail := true, ""
		for _, e := range cdcl {
			nuS, liS := nu.Cells[e][0].Solved, li.Cells[e][0].Solved
			detail += fmt.Sprintf("%s NU=%d LI=%d ", engineLabel(e), nuS, liS)
			if liS > nuS {
				holds = false
			}
		}
		trends = append(trends, Trend{3,
			"LI never beats NU for CDCL engines (instance-independent only)",
			holds, detail})
	}

	// Trend D (obs. 5/6): the best overall cell uses instance-dependent
	// SBPs (typically with SC or NU+SC).
	{
		holds, detail := true, ""
		for _, e := range cdcl {
			bestSolved, bestInstDep := -1, false
			for _, r := range rows {
				for idx, c := range r.Cells[e] {
					if c.Solved > bestSolved {
						bestSolved, bestInstDep = c.Solved, idx == 1
					}
				}
			}
			detail += fmt.Sprintf("%s best(instdep=%v,#%d) ", engineLabel(e), bestInstDep, bestSolved)
			if !bestInstDep {
				holds = false
			}
		}
		trends = append(trends, Trend{4,
			"best overall configuration uses instance-dependent SBPs (CDCL engines)",
			holds, detail})
	}

	// Trend E (obs. 5): CA and LI leave (almost) nothing for instance-
	// dependent SBPs to add: solved counts barely move between columns.
	if ca != nil && li != nil {
		holds, detail := true, ""
		for _, e := range cdcl {
			dCA := ca.Cells[e][1].Solved - ca.Cells[e][0].Solved
			dLI := li.Cells[e][1].Solved - li.Cells[e][0].Solved
			detail += fmt.Sprintf("%s ΔCA=%+d ΔLI=%+d ", engineLabel(e), dCA, dLI)
			if dLI > 1 || dLI < -1 {
				holds = false
			}
		}
		trends = append(trends, Trend{5,
			"LI leaves nothing for instance-dependent SBPs (Δ#solved within ±1)",
			holds, detail})
	}

	// Trend F (obs. 7): the CDCL engines move together — for each pair of
	// engines, the per-row solved counts correlate (same sign of change
	// across rows more often than not).
	if len(cdcl) >= 2 {
		agree, total := 0, 0
		for _, r := range rows {
			for i := 0; i < len(cdcl); i++ {
				for j := i + 1; j < len(cdcl); j++ {
					a := r.Cells[cdcl[i]][0].Solved
					b := r.Cells[cdcl[j]][0].Solved
					total++
					if abs(a-b) <= 3 {
						agree++
					}
				}
			}
		}
		trends = append(trends, Trend{6,
			"CDCL engines exhibit the same per-row behaviour (solved counts within 3)",
			agree*2 >= total, fmt.Sprintf("%d/%d row-pairs agree", agree, total)})
	}

	// Trend G (obs. 8): the generic B&B solver (CPLEX stand-in) is not
	// helped — and is often hurt — by adding instance-dependent SBPs.
	if hasBnB && none != nil && sc != nil {
		gains := 0
		for _, r := range rows {
			p := r.Cells[pbsolver.EngineBnB]
			gains += p[1].Solved - p[0].Solved
		}
		trends = append(trends, Trend{7,
			"BnB (CPLEX stand-in) gains nothing from instance-dependent SBPs (Σ Δ#solved ≤ 0)",
			gains <= 0, fmt.Sprintf("total Δsolved=%+d", gains)})
	}
	return trends
}

// PrintTrends renders the trend report.
func PrintTrends(w io.Writer, trends []Trend) {
	fmt.Fprintln(w, "Trend checks against the paper's §4.2 observations:")
	for _, t := range trends {
		status := "HOLDS"
		if !t.Holds {
			status = "DIVERGES"
		}
		fmt.Fprintf(w, "  [%d] %-8s %s\n        %s\n", t.ID, status, t.Description, t.Detail)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SpeedupSummary reports, per engine, the total-runtime ratio between the
// no-SBP column and the best configuration — the "how much does symmetry
// breaking buy" headline.
func SpeedupSummary(rows []MatrixRow, engines []pbsolver.Engine) string {
	none := findRow(rows, encode.SBPNone)
	if none == nil {
		return ""
	}
	out := ""
	for _, e := range engines {
		base := none.Cells[e][0]
		best := base
		bestKind, bestInstDep := encode.SBPNone, false
		for _, r := range rows {
			for idx, c := range r.Cells[e] {
				if c.Solved > best.Solved ||
					(c.Solved == best.Solved && c.Runtime < best.Runtime) {
					best = c
					bestKind, bestInstDep = r.Kind, idx == 1
				}
			}
		}
		out += fmt.Sprintf("%s: %d→%d solved, %s→%s (best: %v instdep=%v)\n",
			engineLabel(e), base.Solved, best.Solved,
			formatDur(base.Runtime.Round(time.Millisecond)),
			formatDur(best.Runtime.Round(time.Millisecond)),
			bestKind, bestInstDep)
	}
	return out
}

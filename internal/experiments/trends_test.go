package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/pbsolver"
)

// syntheticMatrix builds a matrix embodying the paper's reported shape.
func syntheticMatrix() []MatrixRow {
	engines := []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineBnB,
		pbsolver.EngineGalena, pbsolver.EnginePueblo}
	// solved[kind][engine] = {orig, instdep} — digest of the paper's
	// Table 3.
	data := map[encode.SBPKind]map[pbsolver.Engine][2]int{
		encode.SBPNone: {pbsolver.EnginePBS: {3, 16}, pbsolver.EngineBnB: {14, 7},
			pbsolver.EngineGalena: {2, 17}, pbsolver.EnginePueblo: {3, 19}},
		encode.SBPNU: {pbsolver.EnginePBS: {13, 13}, pbsolver.EngineBnB: {15, 15},
			pbsolver.EngineGalena: {11, 11}, pbsolver.EnginePueblo: {12, 13}},
		encode.SBPCA: {pbsolver.EnginePBS: {6, 8}, pbsolver.EngineBnB: {11, 10},
			pbsolver.EngineGalena: {1, 3}, pbsolver.EnginePueblo: {12, 12}},
		encode.SBPLI: {pbsolver.EnginePBS: {6, 6}, pbsolver.EngineBnB: {4, 4},
			pbsolver.EngineGalena: {5, 5}, pbsolver.EnginePueblo: {5, 5}},
		encode.SBPSC: {pbsolver.EnginePBS: {6, 20}, pbsolver.EngineBnB: {15, 8},
			pbsolver.EngineGalena: {4, 20}, pbsolver.EnginePueblo: {5, 18}},
		encode.SBPNUSC: {pbsolver.EnginePBS: {14, 14}, pbsolver.EngineBnB: {16, 14},
			pbsolver.EngineGalena: {14, 14}, pbsolver.EnginePueblo: {13, 13}},
	}
	var rows []MatrixRow
	for _, kind := range encode.Kinds {
		row := MatrixRow{Kind: kind, Cells: map[pbsolver.Engine][2]Cell{}}
		for _, e := range engines {
			pair := data[kind][e]
			row.Cells[e] = [2]Cell{
				{Runtime: time.Duration(20-pair[0]) * time.Second, Solved: pair[0]},
				{Runtime: time.Duration(20-pair[1]) * time.Second, Solved: pair[1]},
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func TestAnalyzeTrendsOnPaperShape(t *testing.T) {
	engines := []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineBnB,
		pbsolver.EngineGalena, pbsolver.EnginePueblo}
	rows := syntheticMatrix()
	trends := AnalyzeTrends(rows, engines)
	if len(trends) < 6 {
		t.Fatalf("expected >= 6 trend checks, got %d", len(trends))
	}
	for _, tr := range trends {
		if !tr.Holds {
			t.Errorf("trend %d should hold on the paper-shaped matrix: %s (%s)",
				tr.ID, tr.Description, tr.Detail)
		}
	}
	var buf bytes.Buffer
	PrintTrends(&buf, trends)
	if !strings.Contains(buf.String(), "HOLDS") {
		t.Fatal("rendering missing")
	}
}

func TestAnalyzeTrendsDetectsInvertedShape(t *testing.T) {
	// Flip the no-SBP row so instance-dependent SBPs hurt the CDCL solvers:
	// trend 1 must report divergence.
	rows := syntheticMatrix()
	for i := range rows {
		if rows[i].Kind != encode.SBPNone {
			continue
		}
		for _, e := range []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineGalena, pbsolver.EnginePueblo} {
			p := rows[i].Cells[e]
			p[0], p[1] = Cell{Solved: 18}, Cell{Solved: 2}
			rows[i].Cells[e] = p
		}
	}
	trends := AnalyzeTrends(rows, []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineBnB,
		pbsolver.EngineGalena, pbsolver.EnginePueblo})
	found := false
	for _, tr := range trends {
		if tr.ID == 1 && !tr.Holds {
			found = true
		}
	}
	if !found {
		t.Fatal("inverted shape not detected")
	}
}

func TestSpeedupSummary(t *testing.T) {
	rows := syntheticMatrix()
	s := SpeedupSummary(rows, []pbsolver.Engine{pbsolver.EnginePBS})
	if !strings.Contains(s, "PBS II") || !strings.Contains(s, "3→20") {
		t.Fatalf("summary = %q", s)
	}
}

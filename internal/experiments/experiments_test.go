package experiments

import (
	"bytes"
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/pbsolver"
)

func TestTable1MatchesPaperShape(t *testing.T) {
	rows, err := Table1(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	for _, r := range rows {
		if r.V != r.PaperV {
			t.Errorf("%s: V=%d vs paper %d", r.Name, r.V, r.PaperV)
		}
		if r.E != r.PaperE && 2*r.E != r.PaperE {
			t.Errorf("%s: E=%d does not match paper %d under either convention", r.Name, r.E, r.PaperE)
		}
		if r.PaperChi > 0 && r.Chi != r.PaperChi {
			t.Errorf("%s: χ=%d vs paper %d", r.Name, r.Chi, r.PaperChi)
		}
		if r.PaperChi == 0 && r.Chi <= 20 {
			t.Errorf("%s: χ=%d should exceed 20", r.Name, r.Chi)
		}
		if r.CliqueLB > r.Chi || r.DsaturUB < r.Chi {
			t.Errorf("%s: bounds [%d,%d] exclude χ=%d", r.Name, r.CliqueLB, r.DsaturUB, r.Chi)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "queen8_12") || !strings.Contains(buf.String(), ">20") {
		t.Fatalf("rendering missing content:\n%s", buf.String())
	}
}

func TestTable2SmallConfig(t *testing.T) {
	cfg := Config{
		K:           6,
		Instances:   []string{"myciel3", "queen5_5"},
		SBPs:        []encode.SBPKind{encode.SBPNone, encode.SBPNU, encode.SBPLI},
		SymMaxNodes: 200000,
	}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKind := map[encode.SBPKind]Table2Row{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	none, nu, li := byKind[encode.SBPNone], byKind[encode.SBPNU], byKind[encode.SBPLI]
	// NU adds K-1 clauses per instance and no variables.
	if nu.Vars != none.Vars {
		t.Errorf("NU changed variable count: %d vs %d", nu.Vars, none.Vars)
	}
	if nu.CNF != none.CNF+2*(6-1) {
		t.Errorf("NU clauses: %d, want %d", nu.CNF, none.CNF+10)
	}
	// Symmetry counts must drop monotonically none > NU > LI when exact.
	if none.Exact && nu.Exact && none.Symmetries.Cmp(nu.Symmetries) <= 0 {
		t.Errorf("NU did not reduce symmetries: %v -> %v", none.Symmetries, nu.Symmetries)
	}
	if li.Exact && li.Symmetries.Int64() != 2 { // identity per instance
		t.Errorf("LI residual symmetries = %v, want 2 (one identity each)", li.Symmetries)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows, 6, 2)
	if !strings.Contains(buf.String(), "NU") {
		t.Fatal("rendering missing NU row")
	}
}

func TestMatrixTinyConfig(t *testing.T) {
	cfg := Config{
		K:         6,
		Timeout:   10 * time.Second,
		Instances: []string{"myciel3"},
		Engines:   []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineBnB},
		SBPs:      []encode.SBPKind{encode.SBPNone, encode.SBPNU},
	}
	rows, err := Matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, eng := range cfg.Engines {
			pair := r.Cells[eng]
			if pair[0].Solved != 1 || pair[1].Solved != 1 {
				t.Errorf("%v/%v: myciel3 should solve in both columns: %+v", r.Kind, eng, pair)
			}
		}
	}
	var buf bytes.Buffer
	PrintMatrix(&buf, rows, cfg.Engines, 6, 1, cfg.Timeout)
	out := buf.String()
	if !strings.Contains(out, "PBS II") || !strings.Contains(out, "CPLEX*") {
		t.Fatalf("rendering missing solver columns:\n%s", out)
	}
	// BestCells picks a row.
	orig, instdep := BestCells(rows, pbsolver.EnginePBS)
	_ = orig
	_ = instdep
}

func TestTable5Queen5Only(t *testing.T) {
	cfg := Config{
		K:         7,
		Timeout:   20 * time.Second,
		Instances: []string{"queen5_5"},
		Engines:   []pbsolver.Engine{pbsolver.EnginePueblo},
		SBPs:      []encode.SBPKind{encode.SBPNone, encode.SBPSC},
	}
	entries, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 instance × 2 SBPs × 1 engine × 2 (±instdep) = 4 entries.
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	for _, e := range entries {
		if e.Solved && e.Chi != 5 && e.Status == pbsolver.StatusOptimal {
			t.Errorf("queen5_5 χ=%d, want 5", e.Chi)
		}
	}
	var buf bytes.Buffer
	PrintTable5(&buf, entries, cfg.Engines, 7, cfg.Timeout)
	if !strings.Contains(buf.String(), "queen5_5") {
		t.Fatal("rendering missing instance block")
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Chi != 3 {
			t.Errorf("%v: χ=%d, want 3", r.Kind, r.Chi)
		}
		if r.Survivors != r.PaperExpect {
			t.Errorf("%v: %d survivors, paper implies %d", r.Kind, r.Survivors, r.PaperExpect)
		}
	}
	var buf bytes.Buffer
	PrintFigure1(&buf, rows)
	if !strings.Contains(buf.String(), "NU+SC") {
		t.Fatal("rendering incomplete")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	gs, err := cfg.instances()
	if err != nil || len(gs) != 20 {
		t.Fatalf("default instances: %d, %v", len(gs), err)
	}
	if len(cfg.engines()) != 4 {
		t.Fatalf("default engines: %d", len(cfg.engines()))
	}
	if len(cfg.sbps()) != 6 {
		t.Fatalf("default sbps: %d", len(cfg.sbps()))
	}
	if cfg.k() != 20 {
		t.Fatalf("default K: %d", cfg.k())
	}
}

func TestFormatHelpers(t *testing.T) {
	if s := formatDur(1500 * time.Millisecond); s != "1.5s" {
		t.Errorf("formatDur = %q", s)
	}
	if s := formatDur(90 * time.Second); s != "90s" {
		t.Errorf("formatDur = %q", s)
	}
	if s := formatDur(2500 * time.Microsecond); s != "3ms" && s != "2ms" {
		t.Errorf("formatDur = %q", s)
	}
}

func TestFormatBig(t *testing.T) {
	if s := formatBig(big.NewInt(120)); s != "120" {
		t.Errorf("formatBig small = %q", s)
	}
	huge := new(big.Int).Exp(big.NewInt(10), big.NewInt(30), nil)
	if s := formatBig(huge); s != "1.0e+30" {
		t.Errorf("formatBig huge = %q", s)
	}
}

func TestEngineLabels(t *testing.T) {
	want := map[pbsolver.Engine]string{
		pbsolver.EnginePBS:    "PBS II",
		pbsolver.EngineBnB:    "CPLEX*",
		pbsolver.EngineGalena: "Galena",
		pbsolver.EnginePueblo: "Pueblo",
	}
	for e, label := range want {
		if engineLabel(e) != label {
			t.Errorf("engineLabel(%v) = %q, want %q", e, engineLabel(e), label)
		}
	}
}

func TestMatrixInstDepAccountsDetectTime(t *testing.T) {
	cfg := Config{
		K:           5,
		Timeout:     10 * time.Second,
		Instances:   []string{"myciel3"},
		Engines:     []pbsolver.Engine{pbsolver.EnginePBS},
		SBPs:        []encode.SBPKind{encode.SBPNone},
		SymMaxNodes: 100000,
	}
	rows, err := Matrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := rows[0].Cells[pbsolver.EnginePBS]
	if pair[0].DetectTime != 0 {
		t.Error("orig column should have no detection time")
	}
	if pair[1].DetectTime == 0 {
		t.Error("instance-dependent column should account detection time")
	}
	if pair[1].Runtime < pair[1].DetectTime {
		t.Error("runtime must include detection time")
	}
}

package experiments

import (
	"fmt"
	"io"
	"math/big"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
)

// Table2Row aggregates encoding sizes and symmetry statistics for one SBP
// construction, totaled over the benchmark set (the paper's Table 2).
type Table2Row struct {
	Kind       encode.SBPKind
	Vars       int
	CNF        int
	PB         int
	Symmetries *big.Int // Σ |Aut| over instances (paper's "#S" column)
	Generators int      // Σ generators
	DetectTime time.Duration
	// Exact is false when any per-instance detection hit its budget; the
	// symmetry totals are then lower bounds.
	Exact bool
}

// Table2 encodes every instance under each construction and measures
// remaining symmetries (the Saucy columns of the paper's Table 2).
func Table2(cfg Config) ([]Table2Row, error) {
	gs, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	K := cfg.k()
	rows := make([]Table2Row, 0, len(cfg.sbps()))
	for _, kind := range cfg.sbps() {
		row := Table2Row{Kind: kind, Symmetries: big.NewInt(0), Exact: true}
		for _, g := range gs {
			sym, stats := core.DetectSymmetries(g, K, kind, cfg.SymMaxNodes, cfg.SymTimeout)
			row.Vars += stats.Vars
			row.CNF += stats.CNF
			row.PB += stats.PB
			row.Symmetries.Add(row.Symmetries, sym.Order)
			row.Generators += sym.Generators
			row.DetectTime += sym.DetectTime
			row.Exact = row.Exact && sym.Exact
			cfg.logf("table2 %-6s %-12s |Aut|=%s gens=%d t=%s\n",
				kind, g.Name(), formatBig(sym.Order), sym.Generators, formatDur(sym.DetectTime))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders the rows in the paper's layout.
func PrintTable2(w io.Writer, rows []Table2Row, K int, nInstances int) {
	fmt.Fprintf(w, "Table 2: formula sizes and symmetry stats, totals over %d benchmarks, K=%d\n", nInstances, K)
	fmt.Fprintf(w, "%-8s %9s %9s %6s %12s %6s %9s %s\n",
		"SBP", "#V", "#CL", "#PB", "#S", "#G", "Time", "exact")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d %9d %6d %12s %6d %9s %v\n",
			r.Kind, r.Vars, r.CNF, r.PB, formatBig(r.Symmetries),
			r.Generators, formatDur(r.DetectTime), r.Exact)
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/pbsolver"
)

// Cell is one (construction, solver, ±instance-dependent-SBPs) cell of the
// paper's Tables 3/4: total runtime and number of instances solved.
type Cell struct {
	Runtime time.Duration
	Solved  int
	// DetectTime is the symmetry-detection share of Runtime (instance-
	// dependent columns only).
	DetectTime time.Duration
}

// MatrixRow is one construction row across all solver columns.
type MatrixRow struct {
	Kind encode.SBPKind
	// Cells[engine][0] = without instance-dependent SBPs ("Orig."),
	// Cells[engine][1] = with ("w/ i.-d. SBPs").
	Cells map[pbsolver.Engine][2]Cell
}

// Matrix runs the full solver matrix of Table 3 (K=20) or Table 4 (K=30).
func Matrix(cfg Config) ([]MatrixRow, error) {
	gs, err := cfg.instances()
	if err != nil {
		return nil, err
	}
	K := cfg.k()
	rows := make([]MatrixRow, 0, len(cfg.sbps()))
	for _, kind := range cfg.sbps() {
		row := MatrixRow{Kind: kind, Cells: map[pbsolver.Engine][2]Cell{}}
		for _, eng := range cfg.engines() {
			var pair [2]Cell
			for idx, instDep := range []bool{false, true} {
				cell := Cell{}
				for _, g := range gs {
					out := core.Solve(context.Background(), g, core.Config{
						K: K, SBP: kind, InstanceDependent: instDep,
						Engine: eng, Timeout: cfg.Timeout,
						SymMaxNodes: cfg.SymMaxNodes, SymTimeout: cfg.SymTimeout,
					})
					cell.Runtime += out.Result.Runtime
					if out.Sym != nil {
						cell.Runtime += out.Sym.DetectTime
						cell.DetectTime += out.Sym.DetectTime
					}
					if out.Solved() {
						cell.Solved++
					}
					cfg.logf("table%d %-6s %-7s instdep=%-5v %-12s %-8v %s\n",
						map[int]int{20: 3, 30: 4}[K], kind, eng, instDep,
						g.Name(), out.Result.Status, formatDur(out.Result.Runtime))
				}
				pair[idx] = cell
			}
			row.Cells[eng] = pair
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintMatrix renders the matrix in the paper's Table 3/4 layout.
func PrintMatrix(w io.Writer, rows []MatrixRow, engines []pbsolver.Engine, K, nInstances int, timeout time.Duration) {
	tableNo := 3
	if K != 20 {
		tableNo = 4
	}
	fmt.Fprintf(w, "Table %d: runtime and #solved of %d instances, K=%d, timeout %s per solve\n",
		tableNo, nInstances, K, timeout)
	fmt.Fprintf(w, "%-8s", "SBP")
	for _, e := range engines {
		fmt.Fprintf(w, " | %-21s", engineLabel(e))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "")
	for range engines {
		fmt.Fprintf(w, " | %-10s %-10s", "Orig.", "w/i.-d.")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s", r.Kind)
		for _, e := range engines {
			pair := r.Cells[e]
			fmt.Fprintf(w, " | %6s %2d  %6s %2d",
				formatDur(pair[0].Runtime), pair[0].Solved,
				formatDur(pair[1].Runtime), pair[1].Solved)
		}
		fmt.Fprintln(w)
	}
}

// BestCells returns, per engine, the row kind with the most instances
// solved (runtime as tiebreak) for the orig and instance-dependent columns;
// used by trend assertions in tests and EXPERIMENTS.md.
func BestCells(rows []MatrixRow, eng pbsolver.Engine) (origBest, instDepBest encode.SBPKind) {
	bestIdx := func(col int) encode.SBPKind {
		best := rows[0].Kind
		bestCell := rows[0].Cells[eng][col]
		for _, r := range rows[1:] {
			c := r.Cells[eng][col]
			if c.Solved > bestCell.Solved ||
				(c.Solved == bestCell.Solved && c.Runtime < bestCell.Runtime) {
				best, bestCell = r.Kind, c
			}
		}
		return best
	}
	return bestIdx(0), bestIdx(1)
}

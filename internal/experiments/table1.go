package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/heuristic"
)

// Table1Row reproduces one row of the paper's Table 1 plus the verification
// columns of this reproduction.
type Table1Row struct {
	Name     string
	V, E     int // our generated instance (undirected edge count)
	PaperV   int
	PaperE   int // as printed in the paper (file conventions; see EXPERIMENTS.md)
	Chi      int // certified chromatic number of our instance (0 = above cap)
	PaperChi int // 0 means the paper printed "> 20"
	// Verified reports how χ was certified: "exact" (branch-and-bound
	// proof), "certificate" (planted clique + partition witness), or
	// "known" (published value for the exact queens graphs).
	Verified string
	// CliqueLB and DsaturUB bracket χ independently of the certificate.
	CliqueLB, DsaturUB int
}

// Table1 generates all 20 instances and certifies their statistics.
// exactBudget bounds the per-instance exact-χ verification (zero skips
// exact verification for everything but the smallest instances).
func Table1(exactBudget time.Duration) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(graph.BenchmarkTable))
	for _, info := range graph.BenchmarkTable {
		g, err := graph.Benchmark(info.Name)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Name: info.Name, V: g.N(), E: g.M(),
			PaperV: info.PaperV, PaperE: info.PaperE,
			Chi: g.Chi, PaperChi: info.PaperChi,
			CliqueLB: len(clique.Greedy(g)),
			DsaturUB: heuristic.DsaturCount(g),
		}
		switch {
		case len(g.Clique) > 0 && len(g.Parts) > 0:
			row.Verified = "certificate"
		case info.Exact && info.Family == "queens":
			row.Verified = "known"
		default:
			row.Verified = "derived"
		}
		if exactBudget > 0 && g.N() <= 60 {
			res := heuristic.ExactChromatic(g, time.Now().Add(exactBudget))
			if res.Complete {
				row.Verified = "exact"
				if res.Chi != g.Chi {
					return nil, fmt.Errorf("table1: %s exact χ=%d disagrees with certified %d",
						info.Name, res.Chi, g.Chi)
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders the rows in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: DIMACS graph coloring benchmarks (stand-ins; K cap 20)\n")
	fmt.Fprintf(w, "%-12s %6s %7s %5s | %6s %7s %5s | %4s %4s %s\n",
		"Instance", "#V", "#E", "K", "pV", "pE", "pK", "LB", "UB", "verified")
	for _, r := range rows {
		chi := fmt.Sprintf("%d", r.Chi)
		if r.Chi > 20 {
			chi = ">20"
		}
		pchi := fmt.Sprintf("%d", r.PaperChi)
		if r.PaperChi == 0 {
			pchi = ">20"
		}
		fmt.Fprintf(w, "%-12s %6d %7d %5s | %6d %7d %5s | %4d %4d %s\n",
			r.Name, r.V, r.E, chi, r.PaperV, r.PaperE, pchi,
			r.CliqueLB, r.DsaturUB, r.Verified)
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// Figure1Graph builds the worked example of the paper's Figure 1(a):
// V1, V2, V3 form a triangle and V4 is adjacent to V3 only, so χ=3 with two
// independent-set partitions ({V1,V4},{V2},{V3}) and ({V1},{V2,V4},{V3}).
func Figure1Graph() *graph.Graph {
	g := graph.New("figure1", 4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return g
}

// Figure1Row reports, for one SBP construction, how many optimal color
// assignments of the worked example survive, together with the class-size
// vectors (n1,...,nK) the paper uses to label assignments.
type Figure1Row struct {
	Kind        encode.SBPKind
	Survivors   int
	ClassSizes  [][]int
	Chi         int
	PaperExpect int // survivor count implied by the paper's discussion
}

// paperExpectations: 48 total optimal assignments (2 partitions × P(4,3)
// injections); NU keeps 12 (2 × 3!); CA keeps 4 (largest set pinned, two
// singleton classes swappable); LI keeps 2 (one per partition); SC keeps 4
// (two free choices after pinning); NU+SC keeps 2.
var paperExpectations = map[encode.SBPKind]int{
	encode.SBPNone: 48,
	encode.SBPNU:   12,
	encode.SBPCA:   4,
	encode.SBPLI:   2,
	encode.SBPSC:   4,
	encode.SBPNUSC: 2,
}

// Figure1 enumerates all optimal assignments of the worked example under
// each construction with K=4.
func Figure1() ([]Figure1Row, error) {
	g := Figure1Graph()
	rows := make([]Figure1Row, 0, len(encode.Kinds))
	for _, kind := range encode.Kinds {
		e := encode.Build(g, 4, kind)
		models, res := pbsolver.EnumerateOptimal(
			context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, e.XVars(), 0)
		if res.Status != pbsolver.StatusOptimal {
			return nil, fmt.Errorf("figure1: %v gave %v", kind, res.Status)
		}
		row := Figure1Row{
			Kind: kind, Survivors: len(models), Chi: res.Objective,
			PaperExpect: paperExpectations[kind],
		}
		for _, m := range models {
			row.ClassSizes = append(row.ClassSizes, e.ClassSizes(m))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure1 renders the enumeration alongside the paper's expectations.
func PrintFigure1(w io.Writer, rows []Figure1Row) {
	fmt.Fprintf(w, "Figure 1: optimal color assignments of the worked example surviving each SBP (K=4, χ=3)\n")
	fmt.Fprintf(w, "%-8s %9s %9s  example class-size vectors (n1,n2,n3,n4)\n",
		"SBP", "survive", "paper")
	for _, r := range rows {
		examples := ""
		for i, cs := range r.ClassSizes {
			if i == 3 {
				examples += " ..."
				break
			}
			examples += fmt.Sprintf(" %v", cs)
		}
		fmt.Fprintf(w, "%-8s %9d %9d %s\n", r.Kind, r.Survivors, r.PaperExpect, examples)
	}
}

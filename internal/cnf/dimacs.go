package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDimacs reads a CNF formula in DIMACS format:
//
//	c comment
//	p cnf <vars> <clauses>
//	1 -2 3 0
//
// Clauses may span lines; each is terminated by 0. The header clause count
// is not enforced (many published files get it wrong), but the variable
// bound is.
func ParseDimacs(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var f *Formula
	var cur Clause
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if f != nil {
				return nil, fmt.Errorf("dimacs line %d: duplicate problem line", lineNo)
			}
			var kind string
			var nv, nc int
			if _, err := fmt.Sscanf(line, "p %s %d %d", &kind, &nv, &nc); err != nil || kind != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: bad problem line %q", lineNo, line)
			}
			f = NewFormula(nv)
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("dimacs line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			x, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNo, tok)
			}
			if x == 0 {
				f.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			v := x
			if v < 0 {
				v = -v
			}
			if v > f.NumVars {
				return nil, fmt.Errorf("dimacs line %d: variable %d beyond header bound %d", lineNo, v, f.NumVars)
			}
			cur = append(cur, Lit(x))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("dimacs: unterminated clause at end of input")
	}
	return f, nil
}

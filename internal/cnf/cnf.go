// Package cnf provides Boolean variables, literals, clauses, and CNF
// formulas in the representation shared by the SAT and 0-1 ILP solvers.
//
// Variables are positive integers 1..n. A literal encodes a variable and a
// phase in a single int using the DIMACS-like convention: +v is the positive
// literal of variable v and -v is its negation. Literal 0 is invalid and is
// used as a sentinel.
package cnf

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a Boolean literal: +v for variable v, -v for its negation.
type Lit int

// Var returns the variable underlying the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// String renders the literal as in DIMACS ("3", "-7").
func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// PosLit returns the positive literal of variable v.
func PosLit(v int) Lit { return Lit(v) }

// NegLit returns the negative literal of variable v.
func NegLit(v int) Lit { return Lit(-v) }

// Clause is a disjunction of literals.
type Clause []Lit

// String renders the clause as space-separated literals, e.g. "(1 -2 3)".
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Normalize sorts the clause, removes duplicate literals, and reports
// whether the clause is a tautology (contains both l and ¬l). Tautological
// clauses should be dropped by the caller.
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	sorted := make(Clause, len(c))
	copy(sorted, c)
	sort.Slice(sorted, func(i, j int) bool {
		vi, vj := sorted[i].Var(), sorted[j].Var()
		if vi != vj {
			return vi < vj
		}
		return sorted[i] < sorted[j]
	})
	out := sorted[:1]
	for _, l := range sorted[1:] {
		last := out[len(out)-1]
		if l == last {
			continue
		}
		if l.Var() == last.Var() {
			return nil, true // l and ¬l both present
		}
		out = append(out, l)
	}
	return out, false
}

// Formula is a CNF formula: a set of clauses over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula with n variables.
func NewFormula(n int) *Formula {
	return &Formula{NumVars: n}
}

// NewVar allocates a fresh variable and returns its index.
func (f *Formula) NewVar() int {
	f.NumVars++
	return f.NumVars
}

// AddClause appends a clause. The clause is stored as given; callers that
// may produce duplicates or tautologies should Normalize first.
func (f *Formula) AddClause(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
	for _, l := range c {
		if v := l.Var(); v > f.NumVars {
			f.NumVars = v
		}
	}
}

// AddImplication adds the clause (¬a ∨ b), i.e. a ⇒ b.
func (f *Formula) AddImplication(a, b Lit) { f.AddClause(a.Neg(), b) }

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// MaxVarIn returns the highest variable index mentioned in the clauses
// (0 for an empty formula).
func (f *Formula) MaxVarIn() int {
	maxV := 0
	for _, c := range f.Clauses {
		for _, l := range c {
			if v := l.Var(); v > maxV {
				maxV = v
			}
		}
	}
	return maxV
}

// Assignment maps variables (1..n) to truth values. Index 0 is unused.
type Assignment []bool

// Lit reports the truth value of a literal under the assignment.
func (a Assignment) Lit(l Lit) bool {
	v := l.Var()
	if v >= len(a) {
		return !l.Sign() // unassigned beyond range counts as false
	}
	if l.Sign() {
		return a[v]
	}
	return !a[v]
}

// Satisfies reports whether the assignment satisfies every clause.
func (f *Formula) Satisfies(a Assignment) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a.Lit(l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Dimacs renders the formula in DIMACS CNF format.
func (f *Formula) Dimacs() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(&b, "%d ", int(l))
		}
		b.WriteString("0\n")
	}
	return b.String()
}

package cnf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := PosLit(5)
	if l.Var() != 5 || !l.Sign() {
		t.Fatalf("PosLit(5) = %v (var %d, sign %v)", l, l.Var(), l.Sign())
	}
	n := l.Neg()
	if n.Var() != 5 || n.Sign() {
		t.Fatalf("Neg: got var %d sign %v", n.Var(), n.Sign())
	}
	if n.Neg() != l {
		t.Fatalf("double negation changed literal: %v", n.Neg())
	}
	if NegLit(3) != Lit(-3) {
		t.Fatalf("NegLit(3) = %v", NegLit(3))
	}
}

func TestLitNegationIsInvolution(t *testing.T) {
	f := func(v uint16) bool {
		if v == 0 {
			return true
		}
		l := PosLit(int(v))
		return l.Neg().Neg() == l && l.Neg().Var() == l.Var() && l.Neg().Sign() != l.Sign()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{3, -2, 3, 1}
	n, taut := c.Normalize()
	if taut {
		t.Fatalf("unexpected tautology for %v", c)
	}
	want := Clause{1, -2, 3}
	if len(n) != len(want) {
		t.Fatalf("Normalize(%v) = %v, want %v", c, n, want)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Normalize(%v) = %v, want %v", c, n, want)
		}
	}
}

func TestClauseNormalizeTautology(t *testing.T) {
	c := Clause{1, -1, 2}
	if _, taut := c.Normalize(); !taut {
		t.Fatalf("expected tautology for %v", c)
	}
}

func TestClauseNormalizeEmpty(t *testing.T) {
	c := Clause{}
	n, taut := c.Normalize()
	if taut || len(n) != 0 {
		t.Fatalf("empty clause normalize: %v %v", n, taut)
	}
}

func TestFormulaAddClauseTracksVars(t *testing.T) {
	f := NewFormula(2)
	f.AddClause(PosLit(1), NegLit(7))
	if f.NumVars != 7 {
		t.Fatalf("NumVars = %d, want 7", f.NumVars)
	}
	if f.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d", f.NumClauses())
	}
	if f.MaxVarIn() != 7 {
		t.Fatalf("MaxVarIn = %d", f.MaxVarIn())
	}
}

func TestFormulaNewVar(t *testing.T) {
	f := NewFormula(3)
	if v := f.NewVar(); v != 4 {
		t.Fatalf("NewVar = %d, want 4", v)
	}
	if f.NumVars != 4 {
		t.Fatalf("NumVars = %d, want 4", f.NumVars)
	}
}

func TestAssignmentLit(t *testing.T) {
	a := Assignment{false, true, false} // var1=true, var2=false
	if !a.Lit(PosLit(1)) || a.Lit(NegLit(1)) {
		t.Fatal("var 1 should be true")
	}
	if a.Lit(PosLit(2)) || !a.Lit(NegLit(2)) {
		t.Fatal("var 2 should be false")
	}
	// Out-of-range variables read as false.
	if a.Lit(PosLit(9)) || !a.Lit(NegLit(9)) {
		t.Fatal("out-of-range variable should read false")
	}
}

func TestSatisfies(t *testing.T) {
	f := NewFormula(2)
	f.AddClause(PosLit(1), PosLit(2))
	f.AddImplication(PosLit(1), PosLit(2)) // 1 => 2
	if !f.Satisfies(Assignment{false, true, true}) {
		t.Fatal("1=T,2=T should satisfy")
	}
	if f.Satisfies(Assignment{false, true, false}) {
		t.Fatal("1=T,2=F violates implication")
	}
	if f.Satisfies(Assignment{false, false, false}) {
		t.Fatal("1=F,2=F violates first clause")
	}
}

func TestDimacsOutput(t *testing.T) {
	f := NewFormula(3)
	f.AddClause(PosLit(1), NegLit(2))
	f.AddClause(PosLit(3))
	s := f.Dimacs()
	if !strings.HasPrefix(s, "p cnf 3 2\n") {
		t.Fatalf("bad header: %q", s)
	}
	if !strings.Contains(s, "1 -2 0\n") || !strings.Contains(s, "3 0\n") {
		t.Fatalf("bad body: %q", s)
	}
}

func TestClauseString(t *testing.T) {
	c := Clause{1, -2}
	if c.String() != "(1 -2)" {
		t.Fatalf("String = %q", c.String())
	}
}

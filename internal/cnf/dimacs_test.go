package cnf

import (
	"strings"
	"testing"
)

func TestParseDimacsCNF(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
3 0
`
	f, err := ParseDimacs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || f.NumClauses() != 2 {
		t.Fatalf("vars=%d clauses=%d", f.NumVars, f.NumClauses())
	}
	if !f.Satisfies(Assignment{false, true, false, true}) {
		t.Fatal("1=T,2=F,3=T should satisfy")
	}
	if f.Satisfies(Assignment{false, false, true, true}) {
		t.Fatal("1=F,2=T violates first clause")
	}
}

func TestParseDimacsMultiLineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 4 0\n"
	f, err := ParseDimacs(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 4 {
		t.Fatalf("clauses=%d len=%d", f.NumClauses(), len(f.Clauses[0]))
	}
}

func TestParseDimacsErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",                // clause before header
		"p cnf 2 1\n1 3 0\n",     // variable beyond bound
		"p cnf 2 1\n1 x 0\n",     // bad literal
		"p cnf 2 1\np cnf 2 1\n", // duplicate header
		"p dnf 2 1\n",            // wrong format tag
		"",                       // empty
		"p cnf 2 1\n1 2\n",       // unterminated clause
	}
	for _, in := range cases {
		if _, err := ParseDimacs(strings.NewReader(in)); err == nil {
			t.Errorf("ParseDimacs(%q) should fail", in)
		}
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	f := NewFormula(4)
	f.AddClause(PosLit(1), NegLit(2))
	f.AddClause(NegLit(3), PosLit(4))
	f.AddClause(PosLit(2))
	back, err := ParseDimacs(strings.NewReader(f.Dimacs()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != f.NumVars || back.NumClauses() != f.NumClauses() {
		t.Fatalf("round trip size mismatch")
	}
	for mask := 0; mask < 1<<4; mask++ {
		a := make(Assignment, 5)
		for v := 1; v <= 4; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) != back.Satisfies(a) {
			t.Fatalf("mask %b: satisfaction differs", mask)
		}
	}
}

package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// TestParallelJobEndToEnd drives a real cube-and-conquer solve through the
// service and checks the result carries the subsystem's counters.
func TestParallelJobEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultTimeout: 2 * time.Minute})
	defer svc.Close()

	g, err := graph.Benchmark("myciel4")
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Submit(g, JobSpec{K: 8, SBP: encode.SBPNU, Parallel: 3, CubeDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	r := info.Result
	if r == nil || r.Status != pbsolver.StatusOptimal || r.Chi != 5 {
		t.Fatalf("result %+v, want optimal chi=5", r)
	}
	if r.ParWorkers != 3 || r.Cubes == 0 {
		t.Fatalf("missing cube-and-conquer counters: %+v", r)
	}
	if r.Winner != "pbs2" {
		t.Fatalf("winner %q, want pbs2", r.Winner)
	}
}

// TestParallelKnobsShareCacheEntries: Parallel/CubeDepth/ShareLBD steer
// the search, never the answer, so they must be excluded from the cache
// key — a parallel job and a sequential job on the same graph share one
// solve.
func TestParallelKnobsShareCacheEntries(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultTimeout: 2 * time.Minute})
	defer svc.Close()

	g, err := graph.Benchmark("myciel3")
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.Submit(g, JobSpec{K: 6, SBP: encode.SBPNU})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	second, err := svc.Submit(g, JobSpec{K: 6, SBP: encode.SBPNU, Parallel: 4, CubeDepth: 3, ShareLBD: 5})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || !info.Result.CacheHit {
		t.Fatalf("parallel resubmission missed the knob-blind cache: %+v", info.Result)
	}
	if st := svc.Stats(); st.SolverRuns != 1 {
		t.Fatalf("want 1 solver run, got %d", st.SolverRuns)
	}
}

package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestParallelSolveTraceShape drives a real cube-and-conquer solve and
// asserts the per-worker spans land as children of the solve span — not
// of the root, and not orphaned — with one span per conquer worker.
// Run under -race this also proves worker goroutines ending their spans
// concurrently with the trace's own bookkeeping is sound.
func TestParallelSolveTraceShape(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultTimeout: 2 * time.Minute})
	defer svc.Close()

	g, err := graph.Benchmark("myciel4")
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.Submit(g, JobSpec{K: 8, SBP: encode.SBPNU, Parallel: 3, CubeDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}

	tv := waitTrace(t, svc, id)
	if len(tv.Spans) != 1 || tv.Spans[0].Name != "job" {
		t.Fatalf("want one root span named job, got %+v", tv.Spans)
	}
	solve := tv.Find("solve")
	if solve == nil {
		t.Fatalf("no solve span in trace %+v", tv.Spans[0])
	}
	workers := 0
	for _, c := range solve.Children {
		if c.Name == "solve.worker" {
			workers++
			// A worker span lives inside the solve interval (1ms slack
			// for millisecond rounding in the view).
			if c.StartOffsetMS < solve.StartOffsetMS-1 ||
				c.StartOffsetMS+c.DurationMS > solve.StartOffsetMS+solve.DurationMS+1 {
				t.Fatalf("worker span [%.2f,%.2f] escapes solve [%.2f,%.2f]",
					c.StartOffsetMS, c.StartOffsetMS+c.DurationMS,
					solve.StartOffsetMS, solve.StartOffsetMS+solve.DurationMS)
			}
		}
	}
	if workers == 0 {
		t.Fatalf("no solve.worker spans under solve: %+v", solve)
	}
	// None of the per-worker spans may leak to the root: the root's
	// children are the sequential job phases only.
	for _, c := range tv.Spans[0].Children {
		if c.Name == "solve.worker" || c.Name == "solve.engine" {
			t.Fatalf("%s span attached to the root instead of solve", c.Name)
		}
	}
}

// TestConcurrentJobsTraceIsolation solves several jobs at once and checks
// every trace stays self-contained: each records its own job id and its
// spans never reference another job's. Under -race this exercises the
// recorder's ring against concurrent finishes.
func TestConcurrentJobsTraceIsolation(t *testing.T) {
	svc := New(Config{Workers: 4, DefaultTimeout: time.Minute})
	defer svc.Close()

	benches := []string{"myciel3", "myciel4", "queen5_5", "myciel3"}
	ids := make([]string, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		g, err := graph.Benchmark(b)
		if err != nil {
			t.Fatal(err)
		}
		// Distinct K per duplicate bench so each job is a distinct solve.
		id, err := svc.Submit(g, JobSpec{K: 6 + i, SBP: encode.SBPNU})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Wait(context.Background(), id)
		}()
	}
	wg.Wait()

	for _, id := range ids {
		tv := waitTrace(t, svc, id)
		if tv.JobID != id {
			t.Fatalf("trace for %s claims job %s", id, tv.JobID)
		}
		if len(tv.Spans) != 1 {
			t.Fatalf("job %s: %d root spans, want 1", id, len(tv.Spans))
		}
	}
	if got := len(svc.RecentTraces(16)); got < len(ids) {
		t.Fatalf("recorder holds %d traces, want >= %d", got, len(ids))
	}
}

// waitTrace polls the recorder until the job's completed trace lands
// (finish() records it just after the job turns terminal).
func waitTrace(t *testing.T, svc *Service, id string) *obs.TraceView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tv, err := svc.Trace(id)
		if err == nil {
			return tv
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: trace never recorded: %v", id, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/solverutil"
	"repro/internal/testutil"
)

// TestKnobPlumbingReachesSolver: every JobSpec search knob must arrive at
// the solve function exactly as submitted.
func TestKnobPlumbingReachesSolver(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]JobSpec{}
	svc := New(Config{Workers: 1, Solve: func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		mu.Lock()
		seen[g.Name()] = spec
		mu.Unlock()
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}})
	defer svc.Close()

	g := graph.Random("knobs", 10, 20, 3)
	want := JobSpec{
		K: 5, Engine: pbsolver.EnginePueblo,
		InstanceDependent: true, SBPVariant: sbp.VariantInvolution,
		ChronoThreshold: 7, VivifyBudget: 1234, DynamicLBD: true,
		GlueLBD: 3, ReduceInterval: 4000, RestartBase: 64,
	}
	id, err := svc.Submit(g, want)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := seen["knobs"]
	mu.Unlock()
	if got != want {
		t.Fatalf("solver saw spec %+v, submitted %+v", got, want)
	}
}

// TestKnobsShareCacheEntries: the search knobs steer the solver without
// changing answers, so two jobs on the same graph that differ only in
// knobs must share one cache entry — while a spec field that is part of
// the key (K) must not.
func TestKnobsShareCacheEntries(t *testing.T) {
	runs := 0
	svc := New(Config{Workers: 1, Solve: func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs++
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}})
	defer svc.Close()

	g := graph.Random("shared", 12, 30, 5)
	submitAndWait := func(spec JobSpec) *Result {
		t.Helper()
		id, err := svc.Submit(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		info, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Result == nil {
			t.Fatalf("job %s finished %s without result", id, info.State)
		}
		return info.Result
	}

	first := submitAndWait(JobSpec{K: 6})
	tuned := submitAndWait(JobSpec{K: 6, ChronoThreshold: 2, VivifyBudget: 500, DynamicLBD: true})
	if !tuned.CacheHit {
		t.Fatal("job differing only in search knobs missed the cache")
	}
	if tuned.Chi != first.Chi {
		t.Fatalf("cached result chi=%d, original chi=%d", tuned.Chi, first.Chi)
	}
	if runs != 1 {
		t.Fatalf("solver ran %d times, want 1 (knobs are not part of the key)", runs)
	}

	other := submitAndWait(JobSpec{K: 7, ChronoThreshold: 2})
	if other.CacheHit {
		t.Fatal("job with a different K (part of the key) hit the cache")
	}
	if runs != 2 {
		t.Fatalf("solver ran %d times after a K change, want 2", runs)
	}
}

// TestDefaultSolveAppliesKnobs runs the real coloring flow with every knob
// enabled and cross-checks the answer against the brute-force oracle.
func TestDefaultSolveAppliesKnobs(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultTimeout: 30 * time.Second})
	defer svc.Close()
	g := graph.Random("oracle", 8, 16, 1)
	chi := testutil.BruteForceChromatic(g)
	id, err := svc.Submit(g, JobSpec{
		K: 8, ChronoThreshold: 1, VivifyBudget: 500, DynamicLBD: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || !info.Result.Solved {
		t.Fatalf("job did not solve: %+v", info)
	}
	if info.Result.Chi != chi {
		t.Fatalf("chi = %d with knobs on, brute force says %d", info.Result.Chi, chi)
	}
	if err := testutil.CheckColoring(g, info.Result.Coloring, 8); err != nil {
		t.Fatal(err)
	}
}

// TestCancelThenResubmit is the cache edge case: a cancelled leader must
// not poison the canonical cache — its non-definitive entry is removed, so
// an identical resubmission solves fresh and succeeds.
func TestCancelThenResubmit(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	started := make(chan struct{})
	var once sync.Once
	svc := New(Config{Workers: 1, Solve: func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			once.Do(func() { close(started) })
			<-ctx.Done()                            // simulate a long solve that only ends on cancel
			return core.Outcome{Instance: g.Name()} // StatusUnknown: non-definitive
		}
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}})
	defer svc.Close()

	g := graph.Random("resubmit", 14, 30, 7)
	id1, err := svc.Submit(g, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := svc.Cancel(id1); err != nil {
		t.Fatal(err)
	}
	info1, err := svc.Wait(context.Background(), id1)
	if err != nil {
		t.Fatal(err)
	}
	if info1.State != StateCanceled.String() {
		t.Fatalf("first job state %s, want canceled", info1.State)
	}

	// Resubmission of the same graph+spec must get its own fresh solve —
	// neither a poisoned cache entry nor a forever-pending singleflight.
	id2, err := svc.Submit(g, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	info2, err := svc.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.State != StateDone.String() || info2.Result == nil || !info2.Result.Solved {
		t.Fatalf("resubmitted job: state %s result %+v, want done+solved", info2.State, info2.Result)
	}
	if info2.Result.CacheHit {
		t.Fatal("resubmitted job reported a cache hit off a cancelled leader")
	}
	if calls != 2 {
		t.Fatalf("solver ran %d times, want 2 (cancelled run + fresh run)", calls)
	}
	st := svc.Stats()
	if st.Canceled != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 canceled and 1 completed", st)
	}
}

package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/solverutil"
)

// gatedOrderSolve blocks every solve on gate and records the order solves
// start in (by graph name).
func gatedOrderSolve(gate chan struct{}, mu *sync.Mutex, order *[]string) SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		mu.Lock()
		*order = append(*order, g.Name())
		mu.Unlock()
		<-gate
		out := core.Outcome{Instance: g.Name(), Chi: 1, Coloring: make([]int, g.N())}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}
}

// distinctGraph returns a graph no other test graph is isomorphic to by
// accident: a path of unique length, so priority tests never collapse
// into dedup joins.
func distinctGraph(name string, n int) *graph.Graph {
	g := graph.New(name, n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// TestPriorityOrdering: with one busy worker, queued jobs dequeue by
// priority class, FIFO within a class.
func TestPriorityOrdering(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	svc := New(Config{Workers: 1, Solve: gatedOrderSolve(gate, &mu, &order)})
	defer svc.Close()

	// Occupy the single worker so subsequent submissions queue up.
	gateID, err := svc.Submit(distinctGraph("gate", 2), JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitUntilRunning(t, svc, gateID)

	submit := func(name string, n, prio int) string {
		id, err := svc.Submit(distinctGraph(name, n), JobSpec{K: 5, Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	submit("low-a", 3, 0)
	submit("high", 4, 5)
	submit("low-b", 5, 0)
	submit("mid", 6, 3)
	last := submit("high-b", 7, 5)

	// Release the gate; the worker drains the queue in priority order.
	close(gate)
	if _, err := svc.Wait(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	want := "gate,high,high-b,mid,low-a,low-b"
	if got != want {
		t.Fatalf("dequeue order %q, want %q", got, want)
	}
}

// TestAgingPreventsStarvation: a low-priority job that has waited longer
// than MaxPriority aging steps outranks a fresh top-priority job, so no
// class can starve another indefinitely.
func TestAgingPreventsStarvation(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	step := 20 * time.Millisecond
	svc := New(Config{Workers: 1, AgingStep: step, Solve: gatedOrderSolve(gate, &mu, &order)})
	defer svc.Close()

	gateID, err := svc.Submit(distinctGraph("gate", 2), JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitUntilRunning(t, svc, gateID)

	if _, err := svc.Submit(distinctGraph("old-low", 3), JobSpec{K: 5, Priority: 0}); err != nil {
		t.Fatal(err)
	}
	// Let the low-priority job accrue more seniority than the whole
	// priority range is worth.
	time.Sleep(time.Duration(MaxPriority+2) * step)
	last, err := svc.Submit(distinctGraph("new-high", 4), JobSpec{K: 5, Priority: MaxPriority})
	if err != nil {
		t.Fatal(err)
	}

	close(gate)
	if _, err := svc.Wait(context.Background(), last); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	if got != "gate,old-low,new-high" {
		t.Fatalf("dequeue order %q: aged job should beat fresh top priority", got)
	}
}

// TestTenantQuotaIsolation: tenant A saturating its in-flight quota is
// rejected with a typed over-quota error while tenant B keeps submitting
// freely — A cannot starve B.
func TestTenantQuotaIsolation(t *testing.T) {
	gate := make(chan struct{})
	blocking := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return core.Outcome{Instance: g.Name()}
	}
	svc := New(Config{Workers: 1, QueueDepth: 64, TenantMaxInFlight: 3, Solve: blocking})
	defer svc.Close()
	defer close(gate) // LIFO: release the solves before Close drains them

	var rejected error
	accepted := 0
	for i := 0; i < 10; i++ {
		_, err := svc.SubmitTenant("tenant-a", distinctGraph("a", 3+i), JobSpec{K: 5})
		if err != nil {
			rejected = err
			break
		}
		accepted++
	}
	if accepted != 3 {
		t.Fatalf("tenant A: %d accepts, want exactly the in-flight quota of 3", accepted)
	}
	if !errors.Is(rejected, ErrOverQuota) {
		t.Fatalf("tenant A over quota: got %v, want ErrOverQuota", rejected)
	}
	var adm *AdmissionError
	if !errors.As(rejected, &adm) || adm.Reason != ReasonOverQuota || adm.Tenant != "tenant-a" {
		t.Fatalf("over-quota detail %+v", adm)
	}
	if adm.RetryAfter <= 0 {
		t.Fatalf("over-quota RetryAfter = %v, want > 0", adm.RetryAfter)
	}

	// Tenant B is unaffected by A's saturation.
	for i := 0; i < 3; i++ {
		if _, err := svc.SubmitTenant("tenant-b", distinctGraph("b", 20+i), JobSpec{K: 5}); err != nil {
			t.Fatalf("tenant B submission %d rejected: %v", i, err)
		}
	}

	st := svc.Stats()
	if st.Tenants["tenant-a"].Accepts != 3 || st.Tenants["tenant-a"].Rejects == 0 {
		t.Fatalf("tenant A stats %+v", st.Tenants["tenant-a"])
	}
	if st.Tenants["tenant-b"].Accepts != 3 || st.Tenants["tenant-b"].Rejects != 0 {
		t.Fatalf("tenant B stats %+v", st.Tenants["tenant-b"])
	}
	if st.RejectsOverQuota == 0 {
		t.Fatalf("stats %+v: expected over-quota rejects", st)
	}
}

// TestTenantRateLimit: the token bucket admits a burst, then rejects with
// the exact refill wait.
func TestTenantRateLimit(t *testing.T) {
	var runs atomic.Int64
	svc := New(Config{
		Workers: 1, TenantRate: 0.001, TenantBurst: 2,
		Solve: countingSolve(&runs, 0),
	})
	defer svc.Close()

	for i := 0; i < 2; i++ {
		if _, err := svc.SubmitTenant("t", distinctGraph("g", 3+i), JobSpec{K: 5}); err != nil {
			t.Fatalf("burst submission %d rejected: %v", i, err)
		}
	}
	_, err := svc.SubmitTenant("t", distinctGraph("g", 9), JobSpec{K: 5})
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("rate-limited submission: got %v, want ErrOverQuota", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.RetryAfter <= 0 {
		t.Fatalf("rate-limit rejection lacks a retry hint: %+v", adm)
	}
	// At 0.001 tokens/sec the refill wait is ~1000s — the hint must be
	// the computed wait, not the generic 1s default.
	if adm.RetryAfter < time.Minute {
		t.Fatalf("RetryAfter = %v, want the token-refill wait (minutes)", adm.RetryAfter)
	}
}

// TestDeadlineExpiresInQueue: a job whose end-to-end deadline elapses
// while queued finishes as "expired" without the solver ever running.
func TestDeadlineExpiresInQueue(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	blocking := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return core.Outcome{Instance: g.Name()}
	}
	svc := New(Config{Workers: 1, Solve: blocking})
	defer svc.Close()

	gateID, err := svc.Submit(distinctGraph("gate", 2), JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitUntilRunning(t, svc, gateID)

	id, err := svc.Submit(distinctGraph("doomed", 4), JobSpec{K: 5, Deadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the deadline lapse in queue
	close(gate)

	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "expired" {
		t.Fatalf("state %q, want expired", info.State)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1 (gate only) — expired job must not solve", got)
	}
	if st := svc.Stats(); st.Expired != 1 {
		t.Fatalf("stats.Expired = %d, want 1", st.Expired)
	}
}

// TestQueueWaitHistogram: dequeued jobs land in the queue-wait histogram.
func TestQueueWaitHistogram(t *testing.T) {
	var runs atomic.Int64
	svc := New(Config{Workers: 1, Solve: countingSolve(&runs, 0)})
	defer svc.Close()
	id, err := svc.Submit(distinctGraph("g", 5), JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.QueueWait.Count != 1 {
		t.Fatalf("histogram count %d, want 1", st.QueueWait.Count)
	}
	var total int64
	for _, b := range st.QueueWait.Buckets {
		total += b.Count
	}
	if total != 1 {
		t.Fatalf("bucket counts sum to %d, want 1 (%+v)", total, st.QueueWait.Buckets)
	}
	if n := len(st.QueueWait.Buckets); n != len(QueueWaitBucketsMS)+1 {
		t.Fatalf("%d buckets, want %d (+Inf included)", n, len(QueueWaitBucketsMS)+1)
	}
}

// TestValidateFieldErrors: every out-of-bounds field is reported with its
// JSON name, all in one error.
func TestValidateFieldErrors(t *testing.T) {
	spec := JobSpec{
		K:        -1,
		Priority: MaxPriority + 1,
		Parallel: MaxParallel + 1,
		Deadline: -time.Second,
	}
	err := spec.Validate()
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("Validate: got %v, want *ValidationError", err)
	}
	got := map[string]bool{}
	for _, f := range verr.Fields {
		got[f.Field] = true
	}
	for _, want := range []string{"k", "priority", "parallel", "deadline"} {
		if !got[want] {
			t.Fatalf("missing field error for %q in %v", want, verr.Fields)
		}
	}
	if svcErr := (JobSpec{K: 5}).Validate(); svcErr != nil {
		t.Fatalf("valid spec rejected: %v", svcErr)
	}

	// Submit must refuse an invalid spec before admission.
	svc := New(Config{Workers: 1})
	defer svc.Close()
	if _, err := svc.Submit(distinctGraph("g", 4), spec); !errors.As(err, &verr) {
		t.Fatalf("Submit accepted an invalid spec: %v", err)
	}
	if st := svc.Stats(); st.RejectsInvalidSpec != 1 {
		t.Fatalf("RejectsInvalidSpec = %d, want 1", st.RejectsInvalidSpec)
	}
}

// waitUntilRunning polls until the job leaves the queue.
func waitUntilRunning(t *testing.T, svc *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := svc.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != "queued" {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

package service

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/encode"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
)

// Validation bounds for JobSpec fields. They are deliberately generous —
// their job is to reject nonsense (negative budgets, absurd fan-outs)
// with a field-level error before a job ever reaches the queue, not to
// tune the solver.
const (
	// MaxPriority is the highest admission priority class (0 = normal).
	MaxPriority = 9
	// MaxK bounds the color bound K.
	MaxK = 1 << 20
	// MaxParallel bounds the cube-and-conquer worker fan-out.
	MaxParallel = 256
	// MaxCubeDepth bounds the cube branching depth.
	MaxCubeDepth = 32
	// MaxShareLBD bounds the clause-exchange LBD threshold (negative
	// values disable sharing and are always valid).
	MaxShareLBD = 1000
	// MaxTimeout bounds per-job solve budgets and deadlines.
	MaxTimeout = 24 * time.Hour
)

// FieldError locates one invalid JobSpec field.
type FieldError struct {
	// Field is the JSON field name ("k", "priority", ...).
	Field string `json:"field"`
	// Message says what is wrong with it.
	Message string `json:"message"`
}

// Error implements error.
func (e FieldError) Error() string { return e.Field + ": " + e.Message }

// ValidationError aggregates every invalid field of one submission, so a
// client can fix them all in one round trip. The HTTP layer surfaces the
// list verbatim in the error envelope under code "invalid_spec".
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

// Error implements error.
func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "service: invalid job spec: " + strings.Join(msgs, "; ")
}

// Validate checks every JobSpec field against its documented bounds and
// returns a *ValidationError listing all violations (nil when the spec is
// valid). Submit validates automatically; the HTTP layer calls it too so
// a bad submission is rejected with field-level detail before a graph is
// even parsed.
func (s JobSpec) Validate() error {
	var errs []FieldError
	add := func(field, format string, args ...any) {
		errs = append(errs, FieldError{Field: field, Message: fmt.Sprintf(format, args...)})
	}
	if s.K < 0 || s.K > MaxK {
		add("k", "must be in [0, %d]", MaxK)
	}
	switch {
	case s.SBP >= encode.SBPNone && s.SBP <= encode.SBPNUSC:
	case s.SBP == encode.SBPLIQuad || s.SBP == encode.SBPClique:
	default:
		add("sbp", "unknown SBP kind %d", s.SBP)
	}
	if s.Engine < pbsolver.EnginePBS || s.Engine > pbsolver.EngineBnB {
		add("engine", "unknown engine %d", s.Engine)
	}
	if s.SBPVariant < sbp.VariantFull || s.SBPVariant > sbp.VariantRace {
		add("sbp_variant", "unknown SBP variant %d", s.SBPVariant)
	}
	if s.Timeout < 0 || s.Timeout > MaxTimeout {
		add("timeout", "must be in [0, %v]", MaxTimeout)
	}
	if s.Deadline < 0 || s.Deadline > MaxTimeout {
		add("deadline", "must be in [0, %v]", MaxTimeout)
	}
	if s.Priority < 0 || s.Priority > MaxPriority {
		add("priority", "must be in [0, %d]", MaxPriority)
	}
	if s.ChronoThreshold < 0 {
		add("chrono_threshold", "must be >= 0")
	}
	if s.VivifyBudget < 0 {
		add("vivify_budget", "must be >= 0")
	}
	if s.GlueLBD < 0 {
		add("glue_lbd", "must be >= 0")
	}
	if s.ReduceInterval < 0 {
		add("reduce_interval", "must be >= 0")
	}
	if s.RestartBase < 0 {
		add("restart_base", "must be >= 0")
	}
	if s.Parallel < 0 || s.Parallel > MaxParallel {
		add("parallel", "must be in [0, %d]", MaxParallel)
	}
	if s.CubeDepth < 0 || s.CubeDepth > MaxCubeDepth {
		add("cube_depth", "must be in [0, %d]", MaxCubeDepth)
	}
	if s.ShareLBD > MaxShareLBD {
		add("share_lbd", "must be <= %d (negative disables sharing)", MaxShareLBD)
	}
	if errs != nil {
		return &ValidationError{Fields: errs}
	}
	return nil
}

package service

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/pbsolver"
	"repro/internal/store"
)

// CacheRecord is one definitive solve result in canonical vertex space —
// the unit the result cache stores, shares between isomorphic submissions,
// and (with a disk backend) persists across restarts. Only definitive
// outcomes (optimum proven, or χ > K proven) become records, which is what
// makes them safely reusable under any knob settings (the knobs steer the
// search, never the answer).
type CacheRecord struct {
	// Status is pbsolver.StatusOptimal or pbsolver.StatusUnsat.
	Status pbsolver.Status `json:"status"`
	// Chi is the proven chromatic number within K (0 for UNSAT records).
	Chi int `json:"chi"`
	// CanonColoring is the witness coloring indexed by canonical vertex
	// position; each submission translates it through its own canonical
	// permutation.
	CanonColoring []int `json:"coloring,omitempty"`
	// Winner names the engine that produced the result ("" if unknown).
	Winner string `json:"winner,omitempty"`
	// Runtime, Conflicts and the knob counters are the original solve's,
	// reported verbatim to every cache hit.
	Runtime          time.Duration `json:"runtime"`
	Conflicts        int64         `json:"conflicts"`
	ChronoBacktracks int64         `json:"chrono_backtracks,omitempty"`
	VivifiedLits     int64         `json:"vivified_lits,omitempty"`
	LBDUpdates       int64         `json:"lbd_updates,omitempty"`
}

// Backend is the pluggable storage layer under the canonical result cache:
// a key/value map from cache keys (spec + canonical-form hash, see
// cacheKey) to definitive records. Implementations must be safe for
// concurrent use. The in-memory backend is the default; DiskBackend makes
// the cache survive restarts. Lookup misses are cheap — the worst case is
// one redundant solve — so backends may evict freely.
type Backend interface {
	// Get returns the record stored under key.
	Get(key string) (CacheRecord, bool)
	// Put stores the record under key, superseding any previous record.
	Put(key string, rec CacheRecord) error
	// Len reports the number of stored records.
	Len() int
	// Close releases the backend's resources. The Service closes the
	// backend it was configured with during Service.Close.
	Close() error
}

// MemoryBackend is the default cache backend: an in-process map with FIFO
// eviction beyond its capacity. It does not survive restarts.
type MemoryBackend struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]CacheRecord
	order    []string // insertion order, for eviction
}

// NewMemoryBackend builds a memory backend holding at most capacity
// records (≤ 0 selects 4096).
func NewMemoryBackend(capacity int) *MemoryBackend {
	if capacity <= 0 {
		capacity = 4096
	}
	return &MemoryBackend{capacity: capacity, entries: make(map[string]CacheRecord)}
}

// Get implements Backend.
func (b *MemoryBackend) Get(key string) (CacheRecord, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	rec, ok := b.entries[key]
	return rec, ok
}

// Put implements Backend.
func (b *MemoryBackend) Put(key string, rec CacheRecord) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.entries[key]; !exists {
		b.order = append(b.order, key)
	}
	b.entries[key] = rec
	for len(b.entries) > b.capacity && len(b.order) > 0 {
		old := b.order[0]
		b.order = b.order[1:]
		delete(b.entries, old)
	}
	return nil
}

// Len implements Backend.
func (b *MemoryBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Range calls fn for every record until fn returns false, iterating a
// point-in-time copy in unspecified order.
func (b *MemoryBackend) Range(fn func(key string, rec CacheRecord) bool) {
	b.mu.Lock()
	keys := make([]string, 0, len(b.entries))
	recs := make([]CacheRecord, 0, len(b.entries))
	for k, r := range b.entries {
		keys = append(keys, k)
		recs = append(recs, r)
	}
	b.mu.Unlock()
	for i := range keys {
		if !fn(keys[i], recs[i]) {
			return
		}
	}
}

// Close implements Backend (a no-op for the memory backend).
func (b *MemoryBackend) Close() error { return nil }

// DiskBackend persists cache records through an internal/store snapshot+WAL
// log, so a restarted service answers isomorphic resubmissions of anything
// it ever solved without running a solver. Records are stored as JSON
// values under the cache key; records that fail to decode (foreign format,
// partial corruption the CRC happened to miss) degrade to cache misses.
type DiskBackend struct {
	st *store.Store
}

// NewDiskBackend wraps an open store. The backend assumes ownership: its
// Close closes the store.
func NewDiskBackend(st *store.Store) *DiskBackend { return &DiskBackend{st: st} }

// OpenDiskBackend opens (or creates) a disk backend rooted at dir with
// default store options (no TTL, unbounded size).
func OpenDiskBackend(dir string) (*DiskBackend, error) {
	return OpenDiskBackendOptions(dir, store.Options{})
}

// OpenDiskBackendOptions opens (or creates) a disk backend rooted at dir
// with explicit store options — in particular the MaxAge/MaxBytes GC
// policy that keeps a long-lived cache directory from growing without
// bound (the gcolord -store.maxage / -store.maxbytes flags).
func OpenDiskBackendOptions(dir string, opts store.Options) (*DiskBackend, error) {
	st, err := store.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return NewDiskBackend(st), nil
}

// Get implements Backend.
func (b *DiskBackend) Get(key string) (CacheRecord, bool) {
	raw, ok := b.st.Get(key)
	if !ok {
		return CacheRecord{}, false
	}
	var rec CacheRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return CacheRecord{}, false
	}
	return rec, true
}

// Put implements Backend.
func (b *DiskBackend) Put(key string, rec CacheRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return b.st.Put(key, raw)
}

// Len implements Backend.
func (b *DiskBackend) Len() int { return b.st.Len() }

// Stats exposes the underlying store's counters (WAL/snapshot sizes,
// dropped tail records, compactions) for operational endpoints.
func (b *DiskBackend) Stats() store.Stats { return b.st.Stats() }

// StoreStats implements StoreStatser.
func (b *DiskBackend) StoreStats() (store.Stats, bool) { return b.st.Stats(), true }

// Close implements Backend, closing the underlying store.
func (b *DiskBackend) Close() error { return b.st.Close() }

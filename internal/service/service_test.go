package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/solverutil"
)

// relabel returns g with vertices renamed by perm (vertex v becomes
// perm[v]) — an isomorphic copy.
func relabel(name string, g *graph.Graph, perm []int) *graph.Graph {
	out := graph.New(name, g.N())
	for _, e := range g.Edges() {
		out.AddEdge(perm[e[0]], perm[e[1]])
	}
	return out
}

func randomPerm(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// greedyColor is a deterministic proper coloring used by stub solvers.
func greedyColor(g *graph.Graph) ([]int, int) {
	col := make([]int, g.N())
	for i := range col {
		col[i] = -1
	}
	max := 0
	for v := 0; v < g.N(); v++ {
		used := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if col[u] >= 0 {
				used[col[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		col[v] = c
		if c+1 > max {
			max = c + 1
		}
	}
	return col, max
}

// countingSolve returns a stub SolveFunc that counts invocations and
// produces a definitive (optimal) outcome with a real witness coloring.
func countingSolve(runs *atomic.Int64, delay time.Duration) SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return core.Outcome{Instance: g.Name()}
			}
		}
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		out.Result.Objective = k
		return out
	}
}

// TestIsomorphicDedup is the acceptance scenario: N concurrent submissions
// of relabelled copies of one graph must trigger exactly one solver run,
// with every submitter receiving an equivalent result translated into its
// own vertex numbering.
func TestIsomorphicDedup(t *testing.T) {
	const N = 8
	rng := rand.New(rand.NewSource(42))
	base := graph.Random("base", 24, 80, 9)
	var runs atomic.Int64
	// A small artificial delay keeps the leader in flight while the other
	// submissions arrive, exercising the singleflight join path (and not
	// just the completed-cache path).
	svc := New(Config{Workers: 4, Solve: countingSolve(&runs, 50*time.Millisecond)})
	defer svc.Close()

	spec := JobSpec{K: 10}
	graphs := make([]*graph.Graph, N)
	ids := make([]string, N)
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		graphs[i] = relabel("copy", base, randomPerm(rng, base.N()))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = svc.Submit(graphs[i], spec)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	wantChi := -1
	hits := 0
	for i, id := range ids {
		info, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if info.State != "done" || info.Result == nil {
			t.Fatalf("job %d: state %s, result %v", i, info.State, info.Result)
		}
		r := info.Result
		if r.Status != pbsolver.StatusOptimal || !r.Solved {
			t.Fatalf("job %d: status %v", i, r.Status)
		}
		if wantChi == -1 {
			wantChi = r.Chi
		} else if r.Chi != wantChi {
			t.Fatalf("job %d: chi %d, others got %d", i, r.Chi, wantChi)
		}
		if !graphs[i].IsProperColoring(r.Coloring) {
			t.Fatalf("job %d: translated coloring is not proper for its own graph", i)
		}
		if r.CacheHit {
			hits++
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want exactly 1", got)
	}
	if hits != N-1 {
		t.Fatalf("%d cache hits, want %d", hits, N-1)
	}
	st := svc.Stats()
	if st.SolverRuns != 1 || st.CacheHits+st.DedupJoins != N-1 || st.Completed != N {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCacheHitAfterCompletion covers the cold path: a submission arriving
// after an isomorphic job already finished must hit the completed entry.
func TestCacheHitAfterCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := graph.Random("base", 16, 40, 5)
	var runs atomic.Int64
	svc := New(Config{Workers: 2, Solve: countingSolve(&runs, 0)})
	defer svc.Close()

	id1, err := svc.Submit(base, JobSpec{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id1); err != nil {
		t.Fatal(err)
	}
	iso := relabel("iso", base, randomPerm(rng, base.N()))
	id2, err := svc.Submit(iso, JobSpec{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Result.CacheHit {
		t.Fatal("second submission missed the cache")
	}
	if !iso.IsProperColoring(info.Result.Coloring) {
		t.Fatal("cached coloring not proper after translation")
	}
	if runs.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1", runs.Load())
	}
}

// TestSpecIsPartOfCacheKey: the same graph under different solver specs
// must not share results.
func TestSpecIsPartOfCacheKey(t *testing.T) {
	g := graph.Random("g", 16, 40, 5)
	var runs atomic.Int64
	svc := New(Config{Workers: 1, Solve: countingSolve(&runs, 0)})
	defer svc.Close()
	for _, k := range []int{8, 9} {
		id, err := svc.Submit(g, JobSpec{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if runs.Load() != 2 {
		t.Fatalf("solver ran %d times, want 2 (distinct specs)", runs.Load())
	}
}

// TestNonDefinitiveResultsNotCached: a budget-exhausted outcome must not
// poison the cache for later (possibly better-funded) submissions.
func TestNonDefinitiveResultsNotCached(t *testing.T) {
	g := graph.Random("g", 16, 40, 5)
	var runs atomic.Int64
	unknownSolve := func(ctx context.Context, gg *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs.Add(1)
		return core.Outcome{Instance: gg.Name()} // StatusUnknown
	}
	svc := New(Config{Workers: 1, Solve: unknownSolve})
	defer svc.Close()
	for i := 0; i < 2; i++ {
		id, err := svc.Submit(g, JobSpec{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		info, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Result == nil || info.Result.Solved {
			t.Fatalf("iteration %d: unexpected result %+v", i, info.Result)
		}
	}
	if runs.Load() != 2 {
		t.Fatalf("solver ran %d times, want 2 (unknown results must not be cached)", runs.Load())
	}
}

// TestCancelStopsInFlightPortfolio is the acceptance scenario for
// cancellation: a job running a real engine portfolio on a hard instance
// must stop promptly when cancelled, well before its solve budget.
func TestCancelStopsInFlightPortfolio(t *testing.T) {
	// Dense random graph with K far below its chromatic number: the UNSAT
	// proof is out of reach for every engine at this size, so the
	// portfolio would run for the full budget if cancellation leaked.
	g := graph.Random("hard", 80, 1580, 7)
	svc := New(Config{Workers: 2, DefaultTimeout: 5 * time.Minute})
	defer svc.Close()

	id, err := svc.Submit(g, JobSpec{K: 10, Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	info, err := svc.Wait(waitCtx, id)
	if err != nil {
		t.Fatalf("portfolio did not stop within 15s of cancellation: %v", err)
	}
	if info.State != "canceled" {
		t.Fatalf("state %s, want canceled", info.State)
	}
	t.Logf("cancelled portfolio unwound in %v", time.Since(start).Round(time.Millisecond))
}

// TestCancelQueuedJob: cancelling a job that never left the queue.
func TestCancelQueuedJob(t *testing.T) {
	var runs atomic.Int64
	block := make(chan struct{})
	blockingSolve := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs.Add(1)
		<-block
		return core.Outcome{Instance: g.Name()}
	}
	svc := New(Config{Workers: 1, Solve: blockingSolve})
	defer svc.Close()

	// Distinct graphs so the second job does not join the first's entry.
	// Job 1 occupies the only worker; job 2 is cancelled while still
	// queued, then the worker is released to drain the queue.
	id1, err := svc.Submit(graph.Random("a", 12, 30, 1), JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(graph.Random("b", 12, 30, 2), JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	_ = id1
	if err := svc.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	close(block)
	info, err := svc.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "canceled" {
		t.Fatalf("state %s, want canceled", info.State)
	}
	if runs.Load() != 1 {
		t.Fatalf("cancelled queued job still reached the solver (%d runs)", runs.Load())
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	blockingSolve := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		<-block
		return core.Outcome{Instance: g.Name()}
	}
	svc := New(Config{Workers: 1, QueueDepth: 1, Solve: blockingSolve})
	defer svc.Close()
	defer close(block)

	submitted := 0
	var lastErr error
	for i := 0; i < 4; i++ {
		_, err := svc.Submit(graph.Random("g", 10, 20, int64(i)), JobSpec{K: 5})
		if err != nil {
			lastErr = err
			break
		}
		submitted++
	}
	if !errors.Is(lastErr, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v after %d submissions", lastErr, submitted)
	}
	var adm *AdmissionError
	if !errors.As(lastErr, &adm) {
		t.Fatalf("queue-full rejection is not an *AdmissionError: %v", lastErr)
	}
	if adm.Reason != ReasonQueueFull || adm.RetryAfter <= 0 {
		t.Fatalf("typed rejection %+v: want reason %q and a positive RetryAfter", adm, ReasonQueueFull)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	svc := New(Config{Workers: 1})
	svc.Close()
	if _, err := svc.Submit(graph.Random("g", 8, 12, 1), JobSpec{K: 4}); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

// TestEndToEndRealSolve drives the default solver through the service on a
// small instance, checking the full path (canonicalize, solve, translate).
func TestEndToEndRealSolve(t *testing.T) {
	g, err := graph.Benchmark("myciel3")
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 2, DefaultTimeout: time.Minute})
	defer svc.Close()
	id, err := svc.Submit(g, JobSpec{K: 6, Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	r := info.Result
	if r == nil || r.Status != pbsolver.StatusOptimal || r.Chi != 4 {
		t.Fatalf("myciel3: %+v", r)
	}
	if !g.IsProperColoring(r.Coloring) {
		t.Fatal("improper coloring")
	}
	if r.Winner == "" {
		t.Fatal("portfolio winner missing")
	}
}

// TestJobHistoryBounded: a long-running service must forget old finished
// jobs beyond MaxJobs instead of growing without bound.
func TestJobHistoryBounded(t *testing.T) {
	var runs atomic.Int64
	svc := New(Config{Workers: 1, MaxJobs: 2, Solve: countingSolve(&runs, 0)})
	defer svc.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := svc.Submit(graph.Random("g", 10, 20, int64(i)), JobSpec{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := svc.Job(ids[0]); err != ErrNoSuchJob {
		t.Fatalf("oldest job should be pruned, got err=%v", err)
	}
	if _, err := svc.Job(ids[4]); err != nil {
		t.Fatalf("newest job missing: %v", err)
	}
	if n := len(svc.Jobs()); n > 2 {
		t.Fatalf("%d jobs retained, want <= 2", n)
	}
}

package service

import (
	"fmt"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
)

// cacheKey derives the result-cache key: the job spec (everything that
// changes the answer or its provenance) plus the canonical-form hash.
// Equal canonical encodings imply isomorphic graphs even when the
// canonical search was truncated, so keying on the hash is always sound;
// truncation only costs dedup opportunities. Timeout, the six engine
// tuning knobs (ChronoThreshold, VivifyBudget, DynamicLBD, GlueLBD,
// ReduceInterval, RestartBase), the parallel knobs (Parallel, CubeDepth,
// ShareLBD), the SBP variant (SBPVariant — every variant is a sound
// partial break of the same group, see internal/sbp), and the admission
// fields (Priority, Deadline) are deliberately left out: they change how
// fast a definitive answer is reached, never which answer, so differently
// tuned submissions safely share entries. The same key addresses both the
// in-flight singleflight table and the durable Backend, so its format is
// part of the on-disk store contract (see docs/API.md).
//
// The leading version token tracks the canonical encoding format: v2
// switched the adjacency bitmap to column-major bit order (the layout the
// orbit-pruned search's prefix comparison requires). Bumping the version
// quarantines records written under the old bit order — a v1 disk entry
// simply never matches a v2 key, which is sound (a miss re-solves) and
// lets store GC age the stale records out.
func cacheKey(spec JobSpec, canon *autom.Canonical) string {
	return fmt.Sprintf("v2 k=%d sbp=%d eng=%d pf=%t id=%t %x",
		spec.K, spec.SBP, spec.Engine, spec.Portfolio, spec.InstanceDependent,
		canon.Hash)
}

// entry is one singleflight slot in the in-flight table: the first job to
// claim a key solves and publishes; concurrent isomorphic jobs wait on
// done. Completed results do not live here — they move to the Backend the
// moment they are published.
type entry struct {
	done chan struct{}

	// rec and ok are written once before done is closed.
	rec CacheRecord
	ok  bool
}

func newEntry() *entry { return &entry{done: make(chan struct{})} }

// publishRecord hands the leader's definitive result to every waiter.
func (e *entry) publishRecord(rec CacheRecord) {
	e.rec = rec
	e.ok = true
	close(e.done)
}

// publishNone wakes the waiters with no result (the leader's solve was not
// definitive); each waiter then solves on its own.
func (e *entry) publishNone() { close(e.done) }

// materialize translates the published record into the given graph's own
// numbering; nil when no definitive result was published.
func (e *entry) materialize(g *graph.Graph, canon *autom.Canonical) *Result {
	if !e.ok {
		return nil
	}
	return materializeRecord(e.rec, g, canon)
}

// recordFromOutcome converts a definitive solve outcome into a cache
// record in canonical vertex space. canon is the solving graph's canonical
// form.
func recordFromOutcome(out core.Outcome, spec JobSpec, canon *autom.Canonical) CacheRecord {
	rec := CacheRecord{
		Status:           out.Result.Status,
		Chi:              out.Chi,
		Runtime:          out.Result.Runtime,
		Conflicts:        out.Result.Stats.Conflicts,
		ChronoBacktracks: out.Result.Stats.ChronoBacktracks,
		VivifiedLits:     out.Result.Stats.VivifiedLits,
		LBDUpdates:       out.Result.Stats.LBDUpdates,
	}
	// Records are only built from definitive outcomes, so the portfolio
	// winner is always meaningful here.
	if spec.Portfolio {
		rec.Winner = out.Winner.String()
	} else {
		rec.Winner = spec.Engine.String()
	}
	if out.Coloring != nil {
		rec.CanonColoring = make([]int, len(out.Coloring))
		for v, c := range out.Coloring {
			rec.CanonColoring[canon.Perm[v]] = c
		}
	}
	return rec
}

// materializeRecord translates a cached canonical-space record into the
// given graph's own numbering. It returns nil when the record cannot serve
// this job — the coloring's length does not match or the translated
// coloring fails the (defensive) propriety check, e.g. a stale or
// hash-colliding disk record — in which case the caller solves directly.
func materializeRecord(rec CacheRecord, g *graph.Graph, canon *autom.Canonical) *Result {
	res := &Result{
		Status:           rec.Status,
		Solved:           true,
		Chi:              rec.Chi,
		Winner:           rec.Winner,
		Runtime:          rec.Runtime,
		Conflicts:        rec.Conflicts,
		ChronoBacktracks: rec.ChronoBacktracks,
		VivifiedLits:     rec.VivifiedLits,
		LBDUpdates:       rec.LBDUpdates,
		CacheHit:         true,
		CanonExact:       canon.Exact,
	}
	if rec.CanonColoring != nil {
		if len(rec.CanonColoring) != g.N() {
			return nil
		}
		col := make([]int, g.N())
		for v := range col {
			col[v] = rec.CanonColoring[canon.Perm[v]]
		}
		if !g.IsProperColoring(col) {
			return nil
		}
		res.Coloring = col
	}
	return res
}

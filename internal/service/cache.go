package service

import (
	"fmt"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// cacheKey derives the result-cache key: the job spec (everything that
// changes the answer or its provenance) plus the canonical-form hash.
// Equal canonical encodings imply isomorphic graphs even when the
// canonical search was truncated, so keying on the hash is always sound;
// truncation only costs dedup opportunities. Timeout and all six tuning
// knobs (ChronoThreshold, VivifyBudget, DynamicLBD, GlueLBD,
// ReduceInterval, RestartBase) are deliberately left out: they change how
// fast a definitive answer is reached, never which answer, so differently
// tuned submissions safely share entries.
func cacheKey(spec JobSpec, canon *autom.Canonical) string {
	return fmt.Sprintf("k=%d sbp=%d eng=%d pf=%t id=%t %x",
		spec.K, spec.SBP, spec.Engine, spec.Portfolio, spec.InstanceDependent,
		canon.Hash)
}

// entry is one singleflight cache slot: the first job to claim a key
// solves and publishes; concurrent isomorphic jobs wait on done.
type entry struct {
	done chan struct{}

	// All fields below are written once before done is closed.
	status    pbsolver.Status
	solved    bool
	chi       int
	canonCol  []int // witness coloring indexed by canonical position
	winner    pbsolver.Engine
	hasWinner bool
	runtime   time.Duration
	conflicts int64
	chrono    int64
	vivified  int64
	lbdUpd    int64
}

func newEntry() *entry { return &entry{done: make(chan struct{})} }

func (e *entry) ready() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// publish records the leader's outcome in canonical vertex space and wakes
// all waiters. canon is the leader graph's canonical form.
func (e *entry) publish(out core.Outcome, spec JobSpec, canon *autom.Canonical, solved bool) {
	e.status = out.Result.Status
	e.solved = solved
	e.chi = out.Chi
	e.runtime = out.Result.Runtime
	e.conflicts = out.Result.Stats.Conflicts
	e.chrono = out.Result.Stats.ChronoBacktracks
	e.vivified = out.Result.Stats.VivifiedLits
	e.lbdUpd = out.Result.Stats.LBDUpdates
	if spec.Portfolio {
		e.winner = out.Winner
		e.hasWinner = solved || out.Result.Status == pbsolver.StatusSat
	} else {
		e.winner = spec.Engine
		e.hasWinner = true
	}
	if out.Coloring != nil {
		e.canonCol = make([]int, len(out.Coloring))
		for v, c := range out.Coloring {
			e.canonCol[canon.Perm[v]] = c
		}
	}
	close(e.done)
}

// materialize translates the cached canonical-space result into the given
// graph's own numbering. It returns nil when the entry cannot serve this
// job — the cached result is not definitive, or the translated coloring
// fails the (defensive) propriety check — in which case the caller solves
// directly.
func (e *entry) materialize(g *graph.Graph, canon *autom.Canonical) *Result {
	if !e.solved {
		return nil
	}
	res := &Result{
		Status:           e.status,
		Solved:           e.solved,
		Chi:              e.chi,
		Runtime:          e.runtime,
		Conflicts:        e.conflicts,
		ChronoBacktracks: e.chrono,
		VivifiedLits:     e.vivified,
		LBDUpdates:       e.lbdUpd,
		CacheHit:         true,
		CanonExact:       canon.Exact,
	}
	if e.hasWinner {
		res.Winner = e.winner.String()
	}
	if e.canonCol != nil {
		col := make([]int, g.N())
		for v := range col {
			col[v] = e.canonCol[canon.Perm[v]]
		}
		if !g.IsProperColoring(col) {
			return nil
		}
		res.Coloring = col
	}
	return res
}

// canonCache maps cache keys to entries with FIFO eviction of completed
// entries. It is not self-locking: the Service serializes access under its
// own mutex (waiting on an entry's done channel happens outside the lock).
type canonCache struct {
	capacity int
	entries  map[string]*entry
	order    []string // insertion order, for eviction
}

func newCanonCache(capacity int) *canonCache {
	return &canonCache{capacity: capacity, entries: make(map[string]*entry)}
}

func (c *canonCache) len() int { return len(c.entries) }

func (c *canonCache) get(key string) (*entry, bool) {
	e, ok := c.entries[key]
	return e, ok
}

func (c *canonCache) put(key string, e *entry) {
	c.entries[key] = e
	c.order = append(c.order, key)
	// Evict the oldest completed entries; in-flight entries are skipped
	// (their leaders still need to publish to waiters).
	for len(c.entries) > c.capacity {
		evicted := false
		for i, k := range c.order {
			old, ok := c.entries[k]
			if !ok {
				continue // already removed
			}
			if !old.ready() {
				continue
			}
			delete(c.entries, k)
			c.order = append(c.order[:i], c.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break // everything in flight; allow temporary overshoot
		}
	}
}

func (c *canonCache) remove(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/store"
)

// JournalEntry is one accepted submission as the durable job journal
// records it: everything needed to reconstruct and re-run the job after a
// crash — the graph itself (vertex count + edge list), the spec, the
// tenant, and the original submission time and absolute deadline so
// replayed jobs keep their queue seniority and expire exactly when the
// original would have.
type JournalEntry struct {
	ID     string   `json:"id"`
	Tenant string   `json:"tenant,omitempty"`
	Name   string   `json:"name,omitempty"`
	N      int      `json:"n"`
	Edges  [][2]int `json:"edges,omitempty"`
	Spec   JobSpec  `json:"spec"`
	// Submitted is the original wall-clock submission time; replay
	// schedules the job as if it were still waiting since then.
	Submitted time.Time `json:"submitted"`
	// Deadline is the absolute end-to-end deadline (zero = none). A
	// replayed entry already past it finishes as StateExpired without
	// running a solver.
	Deadline time.Time `json:"deadline,omitempty"`
}

// Graph reconstructs the submitted graph.
func (e *JournalEntry) Graph() *graph.Graph {
	g := graph.New(e.Name, e.N)
	for _, ed := range e.Edges {
		g.AddEdge(ed[0], ed[1])
	}
	return g
}

// Journal is the durable job log under the service: accepted submissions
// are recorded before Submit returns and marked done when they reach a
// terminal state, so a restarted service can Replay the jobs a crash
// interrupted. Implementations must be safe for concurrent use and must
// degrade rather than fail: a journal whose disk is misbehaving keeps
// accepting writes in memory (reported via Health) instead of failing
// submissions.
type Journal interface {
	// Record durably logs one accepted submission.
	Record(e JournalEntry) error
	// Done marks the job as terminal; it will not be replayed again.
	Done(id string) error
	// Replay returns every entry not yet marked done, oldest first. The
	// service calls it once at startup.
	Replay() ([]JournalEntry, error)
	// Pending reports the number of entries not yet marked done.
	Pending() int
	// Health reports the journal's degraded-mode state.
	Health() Health
	// Close releases the journal's resources.
	Close() error
}

// DiskJournal is the Journal over an internal/store snapshot+WAL log (one
// record per live job, deleted on completion via the store's V3 delete
// records). A failing disk never fails a submission: the first write error
// flips the journal into a memory-only degraded mode — entries and
// completions accumulate in memory and reopen attempts run in the
// background with exponential backoff — and a successful reopen flushes
// the accumulated state back to disk. Entries recorded during a degraded
// spell are lost if the process dies before the disk heals; that is the
// mode's documented cost, and Health surfaces it.
type DiskJournal struct {
	dir    string
	opts   store.Options
	logger *slog.Logger

	// baseBackoff/maxBackoff bound the reopen schedule (defaults 1s/30s;
	// tests shrink them).
	baseBackoff time.Duration
	maxBackoff  time.Duration

	mu          sync.Mutex
	st          *store.Store // nil while degraded
	pendingRec  map[string][]byte
	pendingDone map[string]bool
	h           Health
	backoff     time.Duration
	timer       *time.Timer
	closed      bool
}

// OpenDiskJournal opens (or creates) a disk journal rooted at dir. logger
// receives degradation and recovery records (nil = silent).
func OpenDiskJournal(dir string, opts store.Options, logger *slog.Logger) (*DiskJournal, error) {
	st, err := store.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &DiskJournal{
		dir: dir, opts: opts, logger: logger,
		baseBackoff: time.Second, maxBackoff: 30 * time.Second,
		st:          st,
		pendingRec:  make(map[string][]byte),
		pendingDone: make(map[string]bool),
	}, nil
}

// Record implements Journal. Write failures flip the journal into
// degraded mode instead of surfacing: the submission proceeds, merely
// without crash durability for the degraded spell.
func (j *DiskJournal) Record(e JournalEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.st == nil {
		j.pendingRec[e.ID] = raw
		j.h.Errors++
		return nil
	}
	if err := j.st.Put(e.ID, raw); err != nil {
		j.enterDegradedLocked(err)
		j.pendingRec[e.ID] = raw
		j.h.Errors++
	}
	return nil
}

// Done implements Journal.
func (j *DiskJournal) Done(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	delete(j.pendingRec, id)
	if j.st == nil {
		j.pendingDone[id] = true
		return nil
	}
	if err := j.st.Delete(id); err != nil {
		j.enterDegradedLocked(err)
		j.pendingDone[id] = true
		j.h.Errors++
	}
	return nil
}

// Replay implements Journal, returning pending entries oldest-first
// (submission time, then id, so replay order is deterministic).
func (j *DiskJournal) Replay() ([]JournalEntry, error) {
	j.mu.Lock()
	st := j.st
	j.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("journal: store degraded, nothing to replay")
	}
	var entries []JournalEntry
	var malformed int
	st.Range(func(key string, val []byte) bool {
		var e JournalEntry
		if err := json.Unmarshal(val, &e); err != nil || e.ID == "" {
			malformed++
			return true
		}
		entries = append(entries, e)
		return true
	})
	if malformed > 0 {
		j.logger.Warn("journal replay skipped malformed entries", "count", malformed)
	}
	sort.Slice(entries, func(a, b int) bool {
		if !entries[a].Submitted.Equal(entries[b].Submitted) {
			return entries[a].Submitted.Before(entries[b].Submitted)
		}
		return entries[a].ID < entries[b].ID
	})
	return entries, nil
}

// Pending implements Journal.
func (j *DiskJournal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.st == nil {
		return len(j.pendingRec)
	}
	return j.st.Len() + len(j.pendingRec)
}

// Health implements Journal.
func (j *DiskJournal) Health() Health {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.h
}

// Close implements Journal.
func (j *DiskJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.timer != nil {
		j.timer.Stop()
	}
	if j.st != nil {
		err := j.st.Close()
		j.st = nil
		return err
	}
	return nil
}

// enterDegradedLocked drops the broken store and starts the reopen loop.
// Caller holds j.mu.
func (j *DiskJournal) enterDegradedLocked(err error) {
	if j.st == nil {
		return
	}
	j.h.Degraded = true
	j.h.DegradedSince = time.Now()
	j.h.Flips++
	st := j.st
	j.st = nil
	// Close in the background: Close waits for in-flight compaction, and
	// the submit path must not.
	go st.Close()
	j.backoff = j.baseBackoff
	j.logger.Error("job journal degraded to memory-only", "dir", j.dir, "err", err)
	j.scheduleReopenLocked()
}

// scheduleReopenLocked arms the next reopen attempt. Caller holds j.mu.
func (j *DiskJournal) scheduleReopenLocked() {
	if j.closed {
		return
	}
	j.timer = time.AfterFunc(j.backoff, j.tryReopen)
}

// tryReopen attempts to reopen the store and flush the memory-only
// backlog; on failure the backoff doubles (capped) and the loop re-arms.
func (j *DiskJournal) tryReopen() {
	j.mu.Lock()
	if j.closed || j.st != nil {
		j.mu.Unlock()
		return
	}
	j.h.ReopenAttempts++
	j.mu.Unlock()

	st, err := store.Open(j.dir, j.opts)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.st != nil {
		if err == nil {
			go st.Close()
		}
		return
	}
	if err == nil {
		// Apply the backlog: completions first (a done job's record must
		// not survive), then the entries still live.
		for id := range j.pendingDone {
			if err == nil {
				err = st.Delete(id)
			}
		}
		for id, raw := range j.pendingRec {
			if err == nil {
				err = st.Put(id, raw)
			}
		}
		if err != nil {
			go st.Close()
		}
	}
	if err != nil {
		j.backoff *= 2
		if j.backoff > j.maxBackoff {
			j.backoff = j.maxBackoff
		}
		j.logger.Warn("job journal reopen failed", "dir", j.dir, "err", err,
			"attempt", j.h.ReopenAttempts, "next_try_in", j.backoff)
		j.scheduleReopenLocked()
		return
	}
	j.st = st
	j.pendingRec = make(map[string][]byte)
	j.pendingDone = make(map[string]bool)
	j.h.Degraded = false
	j.logger.Info("job journal recovered", "dir", j.dir,
		"attempts", j.h.ReopenAttempts, "entries", st.Len())
}

// journalEntryFor captures a job for the journal.
func journalEntryFor(j *job) JournalEntry {
	return JournalEntry{
		ID:        j.id,
		Tenant:    j.tenant,
		Name:      j.g.Name(),
		N:         j.g.N(),
		Edges:     j.g.Edges(),
		Spec:      j.spec,
		Submitted: j.submitted,
		Deadline:  j.deadlineAt,
	}
}

package service

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/solverutil"
)

// TestInexactKeyNotPersisted checks the cache-soundness fix: a solved result
// whose canonical key was truncated (inexact) is still published to in-flight
// waiters but never written to the backend — an inexact key is budget- and
// order-dependent, so a durable entry under it would be unreachable bloat at
// best and, across budget changes, a collision hazard.
func TestInexactKeyNotPersisted(t *testing.T) {
	backend := NewMemoryBackend(0)
	var runs atomic.Int64
	svc := New(Config{
		Workers: 1,
		Backend: backend,
		Solve:   countingSolve(&runs, 0),
		// A one-node budget truncates every canonical search on a graph
		// with any non-singleton refinement cell.
		CanonMaxNodes: 1,
	})
	defer svc.Close()

	id, err := svc.Submit(graph.Cycle(6), JobSpec{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || !info.Result.Solved {
		t.Fatalf("job did not solve: %+v", info)
	}
	if info.Result.CanonExact {
		t.Fatal("expected an inexact canonical form under CanonMaxNodes=1")
	}
	st := svc.Stats()
	if st.CanonInexact == 0 {
		t.Fatal("CanonInexact not counted")
	}
	if st.InexactSkips != 1 {
		t.Fatalf("InexactSkips = %d, want 1", st.InexactSkips)
	}
	if backend.Len() != 0 {
		t.Fatalf("inexact-keyed record persisted: backend holds %d entries", backend.Len())
	}
}

// TestCanonKeyIndependentOfDeadline checks that canonical labeling no longer
// runs under the job's deadline-derived solve context: even a job whose
// timeout has effectively already elapsed gets an exact canonical form (and
// hence a deterministic cache key), where the old wiring would have aborted
// the search mid-flight and produced a timing-dependent truncated key.
func TestCanonKeyIndependentOfDeadline(t *testing.T) {
	var runs atomic.Int64
	svc := New(Config{
		Workers:        1,
		Solve:          countingSolve(&runs, 0),
		DefaultTimeout: time.Nanosecond,
	})
	defer svc.Close()

	// Large symmetric graph: thousands of search nodes without pruning,
	// plenty of work for a 1ns deadline to interrupt were it applied.
	id, err := svc.Submit(graph.Cycle(200), JobSpec{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.CanonInexact != 0 {
		t.Fatalf("canonical search truncated %d times; the deadline leaked into canonicalization", st.CanonInexact)
	}
}

// TestDiscoveredGeneratorsReachSolver checks the solver plumbing: the
// automorphism generators the canonical search discovers are handed to the
// SolveFunc so instance-symmetry breaking can lift them onto the encoding.
func TestDiscoveredGeneratorsReachSolver(t *testing.T) {
	var got atomic.Int64
	solve := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		got.Store(int64(len(sym)))
		for _, p := range sym {
			if len(p) != g.N() {
				t.Errorf("generator has length %d, want %d", len(p), g.N())
			}
		}
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		out.Result.Objective = k
		return out
	}
	svc := New(Config{Workers: 1, Solve: solve})
	defer svc.Close()

	id, err := svc.Submit(graph.Cycle(12), JobSpec{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if got.Load() == 0 {
		t.Fatal("no discovered generators reached the solver for a cycle graph")
	}
	st := svc.Stats()
	if st.CanonGenerators == 0 || st.CanonOrbitPrunes == 0 {
		t.Fatalf("canon stats not accumulated: %+v", st)
	}
}

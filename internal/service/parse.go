package service

import (
	"fmt"
	"strings"

	"repro/internal/encode"
	"repro/internal/pbsolver"
)

// ParseSBP maps a user-facing SBP name ("none", "NU", "NU+SC", ...) to its
// construction kind. Shared by the CLI and the HTTP daemon.
func ParseSBP(name string) (encode.SBPKind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "NONE":
		return encode.SBPNone, nil
	case "NU":
		return encode.SBPNU, nil
	case "CA":
		return encode.SBPCA, nil
	case "LI":
		return encode.SBPLI, nil
	case "SC":
		return encode.SBPSC, nil
	case "NU+SC", "NUSC":
		return encode.SBPNUSC, nil
	}
	return 0, fmt.Errorf("unknown SBP %q", name)
}

// ParseEngine maps a user-facing engine name to its configuration.
func ParseEngine(name string) (pbsolver.Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "pbs", "pbs2", "pbsii":
		return pbsolver.EnginePBS, nil
	case "galena":
		return pbsolver.EngineGalena, nil
	case "pueblo":
		return pbsolver.EnginePueblo, nil
	case "bnb", "cplex":
		return pbsolver.EngineBnB, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

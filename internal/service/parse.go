package service

import (
	"fmt"
	"strings"

	"repro/internal/encode"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
)

// ParseSBP maps a user-facing SBP name ("none", "NU", "NU+SC", ...) to its
// construction kind. Shared by the CLI and the HTTP daemon.
func ParseSBP(name string) (encode.SBPKind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "NONE":
		return encode.SBPNone, nil
	case "NU":
		return encode.SBPNU, nil
	case "CA":
		return encode.SBPCA, nil
	case "LI":
		return encode.SBPLI, nil
	case "SC":
		return encode.SBPSC, nil
	case "NU+SC", "NUSC":
		return encode.SBPNUSC, nil
	}
	return 0, fmt.Errorf("unknown SBP %q", name)
}

// ParseSBPVariant maps a user-facing SBP-variant name to its enum value:
// "full" (or empty), "involution", "canonset", "race".
func ParseSBPVariant(name string) (sbp.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "full":
		return sbp.VariantFull, nil
	case "involution", "inv":
		return sbp.VariantInvolution, nil
	case "canonset", "canon":
		return sbp.VariantCanonSet, nil
	case "race":
		return sbp.VariantRace, nil
	}
	return 0, fmt.Errorf("unknown SBP variant %q", name)
}

// ParseSBPSpec parses the gcolor -sbp flag's combined syntax: a
// comma-separated list mixing at most one instance-independent
// construction name (ParseSBP) with at most one variant name
// (ParseSBPVariant), in any order. A bare variant ("involution") keeps
// SBPNone; a bare kind ("NU") keeps VariantFull; "NU,canonset" sets both.
func ParseSBPSpec(s string) (encode.SBPKind, sbp.Variant, error) {
	kind, variant := encode.SBPNone, sbp.VariantFull
	kindSet, variantSet := false, false
	for _, tok := range strings.Split(s, ",") {
		if strings.TrimSpace(tok) == "" {
			continue
		}
		if k, err := ParseSBP(tok); err == nil {
			if kindSet {
				return 0, 0, fmt.Errorf("duplicate SBP kind %q", tok)
			}
			kind, kindSet = k, true
			continue
		}
		v, err := ParseSBPVariant(tok)
		if err != nil {
			return 0, 0, fmt.Errorf("unknown SBP kind or variant %q", strings.TrimSpace(tok))
		}
		if variantSet {
			return 0, 0, fmt.Errorf("duplicate SBP variant %q", tok)
		}
		variant, variantSet = v, true
	}
	return kind, variant, nil
}

// ParseEngine maps a user-facing engine name to its configuration.
func ParseEngine(name string) (pbsolver.Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "pbs", "pbs2", "pbsii":
		return pbsolver.EnginePBS, nil
	case "galena":
		return pbsolver.EngineGalena, nil
	case "pueblo":
		return pbsolver.EnginePueblo, nil
	case "bnb", "cplex":
		return pbsolver.EngineBnB, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/solverutil"
	"repro/internal/testutil"
)

// TestSBPVariantsShareCacheEntries: every SBP variant is a sound partial
// break of the same symmetry group, so the variant knob must be excluded
// from the cache key — four submissions of one graph differing only in
// SBPVariant share a single solver run.
func TestSBPVariantsShareCacheEntries(t *testing.T) {
	runs := 0
	svc := New(Config{Workers: 1, Solve: func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs++
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}})
	defer svc.Close()

	g := graph.Random("sbpshared", 12, 30, 9)
	submitAndWait := func(spec JobSpec) *Result {
		t.Helper()
		id, err := svc.Submit(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		info, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Result == nil {
			t.Fatalf("job %s finished %s without result", id, info.State)
		}
		return info.Result
	}

	first := submitAndWait(JobSpec{K: 6, InstanceDependent: true, SBPVariant: sbp.VariantFull})
	for _, v := range []sbp.Variant{sbp.VariantInvolution, sbp.VariantCanonSet, sbp.VariantRace} {
		res := submitAndWait(JobSpec{K: 6, InstanceDependent: true, SBPVariant: v})
		if !res.CacheHit {
			t.Fatalf("variant %v missed the cache; the SBP variant must not be part of the key", v)
		}
		if res.Chi != first.Chi {
			t.Fatalf("variant %v: cached chi=%d, original chi=%d", v, res.Chi, first.Chi)
		}
	}
	if runs != 1 {
		t.Fatalf("solver ran %d times across 4 variant submissions, want 1", runs)
	}
}

// TestSBPVariantStatsAggregation: Stats.SBPVariants folds each solver
// run's emitted-predicate counters into its variant's row; outcomes whose
// predicate layer never ran contribute nothing.
func TestSBPVariantStatsAggregation(t *testing.T) {
	svc := New(Config{Workers: 1, Solve: func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		out.SBPVariant = spec.SBPVariant
		if spec.InstanceDependent {
			out.Sym = &core.SymmetryStats{
				Variant:        spec.SBPVariant,
				PredicatePerms: 3,
				AddedCNF:       40,
			}
		}
		return out
	}})
	defer svc.Close()

	g := graph.Random("sbpstats", 12, 30, 11)
	submit := func(spec JobSpec) {
		t.Helper()
		id, err := svc.Submit(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}

	// Distinct K values force distinct cache entries, so each submission
	// is a real solver run.
	submit(JobSpec{K: 5, InstanceDependent: true, SBPVariant: sbp.VariantInvolution})
	submit(JobSpec{K: 6, InstanceDependent: true, SBPVariant: sbp.VariantInvolution})
	submit(JobSpec{K: 7, InstanceDependent: true, SBPVariant: sbp.VariantCanonSet})
	submit(JobSpec{K: 8}) // no predicate layer: must not appear in the table

	st := svc.Stats()
	if got := st.SBPVariants["involution"]; got.Runs != 2 || got.Perms != 6 || got.Clauses != 80 {
		t.Fatalf("involution row = %+v, want runs=2 perms=6 clauses=80", got)
	}
	if got := st.SBPVariants["canonset"]; got.Runs != 1 || got.Perms != 3 || got.Clauses != 40 {
		t.Fatalf("canonset row = %+v, want runs=1 perms=3 clauses=40", got)
	}
	if _, ok := st.SBPVariants["full"]; ok {
		t.Fatal("a run without a predicate layer produced a full-variant row")
	}
}

// TestSBPVariantRaceEndToEnd runs the real solve flow with the variant
// race: the portfolio must return the brute-force optimum, name a
// concrete winning variant, and surface that variant in Stats.
func TestSBPVariantRaceEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 1, DefaultTimeout: 30 * time.Second})
	defer svc.Close()
	g := graph.Random("sbprace", 8, 16, 2)
	chi := testutil.BruteForceChromatic(g)
	id, err := svc.Submit(g, JobSpec{K: 8, InstanceDependent: true, SBPVariant: sbp.VariantRace})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || !info.Result.Solved {
		t.Fatalf("race job did not solve: %+v", info)
	}
	if info.Result.Chi != chi {
		t.Fatalf("race chi = %d, brute force says %d", info.Result.Chi, chi)
	}
	if err := testutil.CheckColoring(g, info.Result.Coloring, 8); err != nil {
		t.Fatal(err)
	}
	winner := info.Result.SBPVariant
	switch winner {
	case sbp.VariantFull.String(), sbp.VariantInvolution.String(), sbp.VariantCanonSet.String():
	default:
		t.Fatalf("race winner %q is not a concrete variant", winner)
	}
	st := svc.Stats()
	row, ok := st.SBPVariants[winner]
	if !ok || row.Runs < 1 {
		t.Fatalf("stats missing a row for race winner %q: %+v", winner, st.SBPVariants)
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/solverutil"
	"repro/internal/store"
)

// flakyFS is an in-package stand-in for the faultinject harness (which
// cannot be imported here without a cycle): every file write fails while
// fail is set.
type flakyFS struct {
	store.OSFS
	fail atomic.Bool
}

var errFlaky = errors.New("flaky: injected write failure")

func (f *flakyFS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	inner, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: inner, fs: f}, nil
}

type flakyFile struct {
	store.File
	fs *flakyFS
}

func (w *flakyFile) Write(p []byte) (int, error) {
	if w.fs.fail.Load() {
		return 0, errFlaky
	}
	return w.File.Write(p)
}

// blockingSolve blocks until the job's context is canceled, so tests can
// hold a worker (or a queue) in a known state.
func blockingSolve() SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		<-ctx.Done()
		return core.Outcome{Instance: g.Name()}
	}
}

// TestPanicIsolation: a panicking solve fails its own job — typed error,
// captured stack, panic counter — without disturbing jobs around it.
func TestPanicIsolation(t *testing.T) {
	solve := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		if g.Name() == "boom" {
			panic("kaboom")
		}
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		return out
	}
	svc := New(Config{Workers: 2, Solve: solve})
	defer svc.Close()

	boom := graph.Random("boom", 12, 20, 3)
	fine := graph.Random("fine", 14, 25, 4)
	idBoom, err := svc.Submit(boom, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	idFine, err := svc.Submit(fine, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	infoBoom, err := svc.Wait(ctx, idBoom)
	if err != nil {
		t.Fatal(err)
	}
	if infoBoom.State != StateFailed.String() {
		t.Fatalf("panicked job state = %q, want failed", infoBoom.State)
	}
	if !strings.Contains(infoBoom.Err, "solver panic") || !strings.Contains(infoBoom.Err, "kaboom") {
		t.Fatalf("panicked job error = %q, want a solver-panic message carrying the panic value", infoBoom.Err)
	}
	if infoBoom.Stack == "" {
		t.Fatal("panicked job carries no stack trace")
	}

	infoFine, err := svc.Wait(ctx, idFine)
	if err != nil {
		t.Fatal(err)
	}
	if infoFine.State != StateDone.String() {
		t.Fatalf("bystander job state = %q, want done", infoFine.State)
	}

	st := svc.Stats()
	if st.Panics != 1 {
		t.Fatalf("Stats().Panics = %d, want 1", st.Panics)
	}
	if st.Failed != 1 {
		t.Fatalf("Stats().Failed = %d, want 1", st.Failed)
	}
}

// TestJournalReplayCompletesJobs: entries left pending in a journal are
// resurrected by a new service under their original ids — live ones run to
// completion, an entry past its deadline expires without a solve, and the
// id sequence is bumped past every replayed id.
func TestJournalReplayCompletesJobs(t *testing.T) {
	dir := t.TempDir()
	jr, err := OpenDiskJournal(dir, store.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Random("crashed", 12, 20, 5)
	now := time.Now()
	live := JournalEntry{
		ID: "job-7", Tenant: "acme", Name: g.Name(), N: g.N(), Edges: g.Edges(),
		Spec: JobSpec{K: 6}, Submitted: now.Add(-time.Minute),
	}
	expired := JournalEntry{
		ID: "job-8", Name: g.Name(), N: g.N(), Edges: g.Edges(),
		Spec:      JobSpec{K: 6, Deadline: time.Second},
		Submitted: now.Add(-time.Minute), Deadline: now.Add(-59 * time.Second),
	}
	for _, e := range []JournalEntry{live, expired} {
		if err := jr.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	jr.Close() // the crash: entries never marked done

	jr2, err := OpenDiskJournal(dir, store.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	svc := New(Config{Workers: 2, Solve: countingSolve(&runs, 0), Journal: jr2})
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	info, err := svc.Wait(ctx, "job-7")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone.String() || info.Result == nil {
		t.Fatalf("replayed job-7 = %q (result %v), want done with a result", info.State, info.Result)
	}
	if info.Tenant != "acme" {
		t.Fatalf("replayed job-7 tenant = %q, want acme", info.Tenant)
	}
	infoExp, err := svc.Wait(ctx, "job-8")
	if err != nil {
		t.Fatal(err)
	}
	if infoExp.State != StateExpired.String() {
		t.Fatalf("replayed past-deadline job-8 = %q, want expired", infoExp.State)
	}
	if st := svc.Stats(); st.Replayed != 2 {
		t.Fatalf("Stats().Replayed = %d, want 2", st.Replayed)
	}
	if runs.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1 (expired entry must not solve)", runs.Load())
	}

	// New submissions must not collide with resurrected ids.
	id, err := svc.Submit(graph.Random("fresh", 10, 15, 9), JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if id == "job-7" || id == "job-8" {
		t.Fatalf("fresh submission reused a replayed id %q", id)
	}

	// Completed jobs are marked done: a third life replays nothing.
	svc.Close()
	jr3, err := OpenDiskJournal(dir, store.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	entries, err := jr3.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("after clean completion the journal still holds %d entries", len(entries))
	}
}

// TestJournalDegradedModeAndRecovery: a write failure flips the journal
// memory-only without failing the calls; healing the disk flushes the
// backlog so nothing recorded during the spell is lost (and nothing
// completed is resurrected).
func TestJournalDegradedModeAndRecovery(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyFS{}
	jr, err := OpenDiskJournal(dir, store.Options{FS: fs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	jr.baseBackoff = 5 * time.Millisecond
	jr.maxBackoff = 50 * time.Millisecond

	entry := func(id string) JournalEntry {
		return JournalEntry{ID: id, N: 3, Edges: [][2]int{{0, 1}, {1, 2}}, Submitted: time.Now()}
	}
	if err := jr.Record(entry("job-1")); err != nil {
		t.Fatal(err)
	}

	fs.fail.Store(true)
	if err := jr.Record(entry("job-2")); err != nil {
		t.Fatalf("Record during disk failure returned %v, want nil (degrade, not fail)", err)
	}
	if h := jr.Health(); !h.Degraded || h.Flips != 1 || h.Errors == 0 {
		t.Fatalf("after failed write Health = %+v, want degraded with errors counted", h)
	}
	if err := jr.Done("job-1"); err != nil { // completion during the spell
		t.Fatal(err)
	}
	if err := jr.Record(entry("job-3")); err != nil {
		t.Fatal(err)
	}
	if got := jr.Pending(); got != 2 {
		t.Fatalf("Pending during degraded spell = %d, want 2", got)
	}

	fs.fail.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for jr.Health().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("journal never recovered; health %+v", jr.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := jr.Health(); h.ReopenAttempts == 0 {
		t.Fatalf("recovered with zero reopen attempts: %+v", h)
	}
	jr.Close()

	// The healed journal must hold exactly the backlog: job-2 and job-3
	// recorded during the spell, job-1 completed during it.
	jr2, err := OpenDiskJournal(dir, store.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	entries, err := jr2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, e := range entries {
		ids = append(ids, e.ID)
	}
	if fmt.Sprint(ids) != "[job-2 job-3]" {
		t.Fatalf("replay after recovery = %v, want [job-2 job-3]", ids)
	}
}

// failingBackend fails every Put while fail is set; everything else
// delegates to an in-memory backend.
type failingBackend struct {
	*MemoryBackend
	fail atomic.Bool
}

func (b *failingBackend) Put(key string, rec CacheRecord) error {
	if b.fail.Load() {
		return errFlaky
	}
	return b.MemoryBackend.Put(key, rec)
}

// TestResilientBackendDegradesAndRecovers: a failed primary write diverts
// to the memory fallback (Put never errors), and a successful reopen
// flushes the fallback into the fresh primary.
func TestResilientBackendDegradesAndRecovers(t *testing.T) {
	primary := &failingBackend{MemoryBackend: NewMemoryBackend(0)}
	var reopened atomic.Int64
	b := NewResilientBackend(primary, func() (Backend, error) {
		reopened.Add(1)
		return NewMemoryBackend(0), nil
	}, nil)
	b.baseBackoff = 5 * time.Millisecond
	b.maxBackoff = 50 * time.Millisecond
	defer b.Close()

	if err := b.Put("k1", CacheRecord{Chi: 3}); err != nil {
		t.Fatal(err)
	}
	primary.fail.Store(true)
	if err := b.Put("k2", CacheRecord{Chi: 4}); err != nil {
		t.Fatalf("Put with broken primary returned %v, want nil (divert to fallback)", err)
	}
	if h := b.Health(); !h.Degraded || h.Flips != 1 {
		t.Fatalf("after failed Put Health = %+v, want degraded", h)
	}
	if rec, ok := b.Get("k2"); !ok || rec.Chi != 4 {
		t.Fatalf("degraded Get(k2) = %+v %v, want the diverted record", rec, ok)
	}

	deadline := time.Now().Add(10 * time.Second)
	for b.Health().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("backend never recovered; health %+v", b.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reopened.Load() == 0 {
		t.Fatal("recovered without calling reopen")
	}
	if rec, ok := b.Get("k2"); !ok || rec.Chi != 4 {
		t.Fatalf("post-recovery Get(k2) = %+v %v, want the flushed record", rec, ok)
	}
}

// TestWaitAndNextProgressSurviveCloseRace: callers blocked in Wait and
// NextProgress while the service shuts down get answers, not deadlocks.
func TestWaitAndNextProgressSurviveCloseRace(t *testing.T) {
	solve := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
		}
		col, k := greedyColor(g)
		return core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
	}
	svc := New(Config{Workers: 1, Solve: solve})
	id, err := svc.Submit(graph.Random("race", 10, 15, 1), JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var waitInfo JobInfo
	var waitErr, progErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		waitInfo, waitErr = svc.Wait(ctx, id)
	}()
	go func() {
		defer wg.Done()
		// Keep pulling progress until the terminal state reports no more.
		var seq int64
		for {
			p, ok, err := svc.NextProgress(ctx, id, seq)
			if err != nil || !ok {
				progErr = err
				return
			}
			seq = p.Seq
		}
	}()
	svc.Close() // races both blocked callers

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait/NextProgress deadlocked against Close")
	}
	if waitErr != nil {
		t.Fatalf("Wait returned %v", waitErr)
	}
	if waitInfo.State != StateDone.String() {
		t.Fatalf("Wait saw state %q, want done (Close waits for in-flight jobs)", waitInfo.State)
	}
	if progErr != nil {
		t.Fatalf("NextProgress returned %v", progErr)
	}
}

// TestCancelAllWithQueuedJobs: CancelAll reaches jobs still in the
// priority queue, not just the one occupying the worker — every submission
// terminates as canceled and Wait observes it.
func TestCancelAllWithQueuedJobs(t *testing.T) {
	svc := New(Config{Workers: 1, Solve: blockingSolve()})
	defer svc.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		g := graph.Random(fmt.Sprintf("q-%d", i), 10, 15, int64(i+1))
		id, err := svc.Submit(g, JobSpec{K: 6})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Wait until the single worker holds one job and the rest are queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.Running == 1 && st.QueueDepth == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 1 running / 3 queued: %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	svc.CancelAll()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range ids {
		info, err := svc.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if info.State != StateCanceled.String() {
			t.Fatalf("job %s state = %q, want canceled", id, info.State)
		}
	}
	if st := svc.Stats(); st.Canceled != 4 {
		t.Fatalf("Stats().Canceled = %d, want 4", st.Canceled)
	}
}

package service

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/solverutil"
)

// reportingSolve emits n progress snapshots through the service's sink
// before returning a definitive outcome — a stand-in for a solver's
// rate-limited callbacks.
func reportingSolve(n int, gate chan struct{}) SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		for i := 1; i <= n; i++ {
			progress(solverutil.Progress{
				Engine:    "pbs2",
				Incumbent: 10 - i,
				Conflicts: int64(i * 100),
				Restarts:  int64(i),
			})
			if gate != nil {
				<-gate // let the test observe between snapshots
			}
		}
		col, k := greedyColor(g)
		out := core.Outcome{Instance: g.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}
}

// TestProgressStreaming: NextProgress must deliver every snapshot in
// order and then report the terminal transition.
func TestProgressStreaming(t *testing.T) {
	const snapshots = 3
	svc := New(Config{Workers: 1, Solve: reportingSolve(snapshots, nil)})
	defer svc.Close()

	g := graph.Random("g", 12, 30, 5)
	id, err := svc.Submit(g, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var seq int64
	var got []Progress
	for {
		p, more, err := svc.NextProgress(ctx, id, seq)
		if err != nil {
			t.Fatalf("NextProgress: %v", err)
		}
		if p.Seq > seq {
			got = append(got, p)
			seq = p.Seq
		}
		if !more {
			break
		}
	}
	if len(got) == 0 {
		t.Fatal("no progress snapshots before the terminal state")
	}
	last := got[len(got)-1]
	if last.Seq != snapshots {
		t.Fatalf("final Seq = %d, want %d", last.Seq, snapshots)
	}
	if last.Conflicts != snapshots*100 || last.Engine != "pbs2" {
		t.Fatalf("final snapshot wrong: %+v", last)
	}
	if last.K != 6 {
		t.Fatalf("progress K = %d, want effective color bound 6", last.K)
	}

	// After the terminal state the job info must carry the result.
	info, err := svc.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "done" || info.Result == nil {
		t.Fatalf("terminal job info: %+v", info)
	}
}

// TestProgressLatestSnapshot: the polling accessor returns the newest
// snapshot (or Seq 0 before any report).
func TestProgressLatestSnapshot(t *testing.T) {
	gate := make(chan struct{})
	svc := New(Config{Workers: 1, Solve: reportingSolve(2, gate)})
	defer svc.Close()

	g := graph.Random("g", 10, 20, 8)
	id, err := svc.Submit(g, JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Wait until the first snapshot lands, then check Progress sees it.
	if _, _, err := svc.NextProgress(ctx, id, 0); err != nil {
		t.Fatal(err)
	}
	p, err := svc.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq != 1 || p.Conflicts != 100 {
		t.Fatalf("latest snapshot: %+v", p)
	}
	gate <- struct{}{}
	gate <- struct{}{}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}

	if _, err := svc.Progress("job-missing"); err != ErrNoSuchJob {
		t.Fatalf("Progress(missing) = %v, want ErrNoSuchJob", err)
	}
}

// TestCacheHitReportsNoProgress: jobs served from the cache never ran a
// solver, so their progress stays at Seq 0.
func TestCacheHitReportsNoProgress(t *testing.T) {
	var runs atomic.Int64
	svc := New(Config{Workers: 1, Solve: countingSolve(&runs, 0)})
	defer svc.Close()

	g := graph.Random("g", 10, 25, 2)
	id1, err := svc.Submit(g, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id1); err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(g, JobSpec{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || !info.Result.CacheHit {
		t.Fatalf("second submission not a cache hit: %+v", info)
	}
	p, err := svc.Progress(id2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq != 0 {
		t.Fatalf("cache hit reported progress: %+v", p)
	}
}

package service

import (
	"fmt"
	"sync"
	"time"
)

// Admission-control reject reasons, the stable machine-readable vocabulary
// shared by AdmissionError, the Stats reject counters, and the HTTP error
// envelope (docs/API.md).
const (
	ReasonQueueFull   = "queue_full"
	ReasonOverQuota   = "tenant_over_quota"
	ReasonInvalidSpec = "invalid_spec"
	ReasonDraining    = "draining"
)

// AdmissionError is a typed Submit rejection: the service is applying
// backpressure (bounded queue) or enforcing a tenant's quota, and the
// caller should retry after RetryAfter rather than treat the job as
// failed. It matches the ErrQueueFull / ErrOverQuota sentinels through
// errors.Is, so existing callers keep working.
type AdmissionError struct {
	// Reason is ReasonQueueFull or ReasonOverQuota.
	Reason string
	// Tenant is the tenant the rejection applies to.
	Tenant string
	// RetryAfter is the suggested wait before resubmitting. For
	// rate-limit rejections it is exact (the time until the token bucket
	// refills); for queue and in-flight rejections it is a hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *AdmissionError) Error() string {
	return fmt.Sprintf("service: %s (tenant %q, retry after %v)", e.Reason, e.Tenant, e.RetryAfter)
}

// Is matches the package's admission sentinels, so
// errors.Is(err, ErrQueueFull) works on typed rejections.
func (e *AdmissionError) Is(target error) bool {
	switch target {
	case ErrQueueFull:
		return e.Reason == ReasonQueueFull
	case ErrOverQuota:
		return e.Reason == ReasonOverQuota
	case ErrDraining:
		return e.Reason == ReasonDraining
	}
	return false
}

// tenantState is one tenant's admission bookkeeping: a token bucket for
// the accept rate and an in-flight (queued + running) count for the
// concurrency quota. Guarded by Service.mu.
type tenantState struct {
	tokens   float64
	last     time.Time
	inFlight int
	accepts  int64
	rejects  int64
}

// TenantStats is one tenant's externally visible admission counters.
type TenantStats struct {
	// Accepts counts submissions admitted to the queue.
	Accepts int64 `json:"accepts"`
	// Rejects counts submissions refused by rate limit or quota.
	Rejects int64 `json:"rejects"`
	// InFlight is the tenant's current queued + running jobs.
	InFlight int `json:"in_flight"`
}

// tenant returns (creating on first use) the named tenant's state. Caller
// holds s.mu.
func (s *Service) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{last: time.Now()}
		if s.cfg.TenantRate > 0 {
			ts.tokens = float64(s.cfg.TenantBurst) // start full
		}
		s.tenants[name] = ts
	}
	return ts
}

// takeToken refills the tenant's bucket for the elapsed time and consumes
// one token. When the bucket is empty it returns false and the exact wait
// until the next token. Caller holds s.mu; no-op (always admit) when no
// rate is configured.
func (s *Service) takeToken(ts *tenantState, now time.Time) (bool, time.Duration) {
	rate := s.cfg.TenantRate
	if rate <= 0 {
		return true, 0
	}
	burst := float64(s.cfg.TenantBurst)
	ts.tokens += now.Sub(ts.last).Seconds() * rate
	if ts.tokens > burst {
		ts.tokens = burst
	}
	ts.last = now
	if ts.tokens < 1 {
		wait := time.Duration((1 - ts.tokens) / rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		return false, wait
	}
	ts.tokens--
	return true, 0
}

// QueueWaitBucketsMS are the upper bounds (milliseconds) of the queue-wait
// histogram buckets; an implicit +Inf bucket follows the last bound.
var QueueWaitBucketsMS = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Histogram is a fixed-bucket latency histogram (queue wait, in Stats).
type Histogram struct {
	// Count and SumMS aggregate every observation.
	Count int64 `json:"count"`
	SumMS int64 `json:"sum_ms"`
	// Buckets holds one non-cumulative count per QueueWaitBucketsMS
	// bound, plus a final overflow (+Inf) bucket.
	Buckets []HistogramBucket `json:"buckets"`
}

// HistogramBucket is one histogram bucket: observations ≤ LEms not
// counted by an earlier bucket. LEms of -1 marks the +Inf bucket.
type HistogramBucket struct {
	LEms  int64 `json:"le_ms"`
	Count int64 `json:"count"`
}

// observeQueueWait records one job's time-in-queue. Caller must not hold
// s.mu.
func (s *Service) observeQueueWait(d time.Duration) {
	ms := d.Milliseconds()
	idx := len(QueueWaitBucketsMS) // +Inf
	for i, le := range QueueWaitBucketsMS {
		if ms <= le {
			idx = i
			break
		}
	}
	s.mu.Lock()
	s.queueWaitCount++
	s.queueWaitSumMS += ms
	s.queueWaitBuckets[idx]++
	s.mu.Unlock()
}

// pqueue is the admission queue: a blocking priority heap ordered by
// virtual submission time (vtime), ties broken by submission sequence.
// vtime = submitted − Priority·AgingStep, so each priority level is worth
// one aging step of queue seniority: within a class the order is exactly
// FIFO, a higher class overtakes a lower one submitted up to
// Priority·AgingStep earlier, and any waiting job eventually outranks all
// newer arrivals regardless of class — starvation-proof by construction,
// with a totally static key (no rebalancing as time passes).
type pqueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	closed bool
}

func newPQueue() *pqueue {
	q := &pqueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func jobLess(a, b *job) bool {
	if !a.vtime.Equal(b.vtime) {
		return a.vtime.Before(b.vtime)
	}
	return a.seq < b.seq
}

// push enqueues a job and wakes one waiting worker. Push on a closed
// queue is a no-op (the job is dropped; Submit never races Close thanks
// to Service.mu).
func (q *pqueue) push(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, j)
	q.up(len(q.items) - 1)
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed and drained;
// the bool is false only in the latter case (mirroring a closed channel).
func (q *pqueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return j, true
}

func (q *pqueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops accepting pushes and lets pops drain the remaining items.
func (q *pqueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *pqueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(q.items[i], q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *pqueue) down(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		least := i
		if left < n && jobLess(q.items[left], q.items[least]) {
			least = left
		}
		if right < n && jobLess(q.items[right], q.items[least]) {
			least = right
		}
		if least == i {
			return
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}

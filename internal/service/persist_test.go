package service

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/solverutil"
)

// TestWarmRestartServesFromDisk is the durability acceptance scenario:
// solve instances with a disk backend, tear the whole service down,
// bring a fresh service up over the same directory, and resubmit
// isomorphic relabelings — every one must be answered from disk with
// zero solver invocations.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	const N = 5
	bases := make([]*graph.Graph, N)
	for i := range bases {
		bases[i] = graph.Random("base", 18, 50, int64(100+i))
	}

	// First life: solve everything.
	backend, err := OpenDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs1 atomic.Int64
	svc := New(Config{Workers: 2, Backend: backend, Solve: countingSolve(&runs1, 0)})
	for i, g := range bases {
		id, err := svc.Submit(g, JobSpec{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		info, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Result == nil || !info.Result.Solved {
			t.Fatalf("job %d not solved: %+v", i, info)
		}
	}
	if got := runs1.Load(); got != N {
		t.Fatalf("first life: %d solver runs, want %d", got, N)
	}
	svc.Close() // closes the backend and its store

	// Second life: a brand-new service over the same directory. Isomorphic
	// relabelings of every instance must be cache hits served from disk —
	// the restart must not cost a single solver invocation.
	backend2, err := OpenDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if backend2.Len() != N {
		t.Fatalf("reloaded backend holds %d records, want %d", backend2.Len(), N)
	}
	var runs2 atomic.Int64
	svc2 := New(Config{Workers: 2, Backend: backend2, Solve: countingSolve(&runs2, 0)})
	defer svc2.Close()
	for i, g := range bases {
		iso := relabel("iso", g, randomPerm(rng, g.N()))
		id, err := svc2.Submit(iso, JobSpec{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		info, err := svc2.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		r := info.Result
		if r == nil || !r.Solved {
			t.Fatalf("resubmission %d not solved: %+v", i, info)
		}
		if !r.CacheHit {
			t.Fatalf("resubmission %d was not a cache hit", i)
		}
		if !iso.IsProperColoring(r.Coloring) {
			t.Fatalf("resubmission %d: translated coloring is improper", i)
		}
	}
	if got := runs2.Load(); got != 0 {
		t.Fatalf("second life ran the solver %d times, want 0", got)
	}
	if st := svc2.Stats(); st.CacheHits != N {
		t.Fatalf("second life: %d cache hits, want %d", st.CacheHits, N)
	}
}

// TestUnsolvedOutcomesAreNotPersisted: budget-exhausted results must not
// create durable records.
func TestUnsolvedOutcomesAreNotPersisted(t *testing.T) {
	dir := t.TempDir()
	backend, err := OpenDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	unknownSolve := func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		out := core.Outcome{Instance: g.Name()}
		out.Result.Status = pbsolver.StatusUnknown
		return out
	}
	svc := New(Config{Workers: 1, Backend: backend, Solve: unknownSolve})
	g := graph.Random("g", 12, 30, 3)
	id, err := svc.Submit(g, JobSpec{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	backend2, err := OpenDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer backend2.Close()
	if backend2.Len() != 0 {
		t.Fatalf("unsolved outcome was persisted: %d records", backend2.Len())
	}
}

// TestWaiterResolvePersists: when a leader's solve is not definitive, a
// waiter that falls back to solving on its own must still persist its
// definitive answer — the equivalence class may not be lost to the cache.
func TestWaiterResolvePersists(t *testing.T) {
	backend := NewMemoryBackend(16)
	g := graph.Random("g", 14, 40, 21)
	block := make(chan struct{})
	var calls atomic.Int64
	solve := func(ctx context.Context, gg *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		if calls.Add(1) == 1 {
			// Leader: hold the singleflight slot until the waiter joined,
			// then come back empty-handed (budget-exhausted shape).
			<-block
			out := core.Outcome{Instance: gg.Name()}
			out.Result.Status = pbsolver.StatusUnknown
			return out
		}
		col, k := greedyColor(gg)
		out := core.Outcome{Instance: gg.Name(), Chi: k, Coloring: col}
		out.Result.Status = pbsolver.StatusOptimal
		return out
	}
	svc := New(Config{Workers: 2, Backend: backend, Solve: solve})
	defer svc.Close()

	idA, err := svc.Submit(g, JobSpec{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := svc.Submit(g, JobSpec{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until both workers are busy: the leader inside the stub, the
	// waiter parked on the singleflight entry.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Running != 2 {
		if time.Now().After(deadline) {
			t.Fatal("jobs did not both start")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)

	if _, err := svc.Wait(context.Background(), idA); err != nil {
		t.Fatal(err)
	}
	infoB, err := svc.Wait(context.Background(), idB)
	if err != nil {
		t.Fatal(err)
	}
	if infoB.Result == nil || !infoB.Result.Solved {
		t.Fatalf("waiter fallback did not solve: %+v", infoB)
	}
	if backend.Len() != 1 {
		t.Fatalf("waiter's definitive result not persisted (backend len %d)", backend.Len())
	}

	// A third isomorphic submission is now a pure cache hit.
	idC, err := svc.Submit(g, JobSpec{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	infoC, err := svc.Wait(context.Background(), idC)
	if err != nil {
		t.Fatal(err)
	}
	if infoC.Result == nil || !infoC.Result.CacheHit {
		t.Fatalf("resubmission after waiter solve missed the cache: %+v", infoC.Result)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("solver calls = %d, want 2", got)
	}
}

// TestCorruptRecordFallsBackToSolving: a record whose coloring cannot
// serve the submitted graph degrades to a fresh solve, never a wrong
// answer.
func TestCorruptRecordFallsBackToSolving(t *testing.T) {
	backend := NewMemoryBackend(16)
	g := graph.Random("g", 14, 40, 11)
	var runs atomic.Int64
	svc := New(Config{Workers: 1, Backend: backend, Solve: countingSolve(&runs, 0)})
	defer svc.Close()

	id, err := svc.Submit(g, JobSpec{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", runs.Load())
	}

	// Sabotage the single stored record: an all-zero "coloring" cannot be
	// proper on a graph with edges.
	backend.mu.Lock()
	for k, rec := range backend.entries {
		rec.CanonColoring = make([]int, g.N())
		backend.entries[k] = rec
	}
	backend.mu.Unlock()

	id, err = svc.Submit(g, JobSpec{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("corrupt record did not trigger a re-solve (runs = %d)", runs.Load())
	}
	if info.Result == nil || !info.Result.Solved || info.Result.CacheHit {
		t.Fatalf("re-solve result wrong: %+v", info.Result)
	}
	if !g.IsProperColoring(info.Result.Coloring) {
		t.Fatal("re-solve returned improper coloring")
	}
}

package service

import (
	"io"
	"log/slog"
	"sync"
	"time"

	"repro/internal/store"
)

// Health describes the degraded-mode state of a disk-backed component (the
// result-cache backend or the job journal). The zero value means healthy.
type Health struct {
	// Degraded reports whether the component is currently running
	// memory-only because its disk writes failed.
	Degraded bool `json:"degraded"`
	// DegradedSince is when the current (or most recent) degraded spell
	// began.
	DegradedSince time.Time `json:"degraded_since,omitempty"`
	// Flips counts healthy→degraded transitions over the component's
	// lifetime.
	Flips int64 `json:"flips"`
	// ReopenAttempts counts background attempts to reattach the disk.
	ReopenAttempts int64 `json:"reopen_attempts"`
	// Errors counts writes that failed or were diverted to memory.
	Errors int64 `json:"errors"`
}

// HealthReporter is implemented by components that can degrade
// (ResilientBackend, DiskJournal). The service surfaces their Health in
// Stats.
type HealthReporter interface {
	Health() Health
}

// StoreStatser is implemented by backends with a persistent store
// currently attached. The second return is false while no store is
// attached (memory backend, or a resilient backend mid-degradation).
type StoreStatser interface {
	StoreStats() (store.Stats, bool)
}

// ResilientBackend wraps a primary (disk) Backend so that storage failures
// degrade the result cache to memory-only instead of surfacing: the first
// failed Put closes the primary, diverts writes into an in-process
// fallback, and starts background reopen attempts with exponential
// backoff. A successful reopen flushes the fallback's records into the
// fresh primary and restores normal service. Reads always consult the
// primary first (when attached), then the fallback.
type ResilientBackend struct {
	reopen func() (Backend, error)
	logger *slog.Logger

	// baseBackoff/maxBackoff bound the reopen schedule (defaults 1s/30s;
	// tests shrink them).
	baseBackoff time.Duration
	maxBackoff  time.Duration

	mu       sync.Mutex
	primary  Backend // nil while degraded
	fallback *MemoryBackend
	h        Health
	backoff  time.Duration
	timer    *time.Timer
	closed   bool
}

// NewResilientBackend wraps primary. reopen builds a replacement primary
// during recovery (typically re-running OpenDiskBackendOptions); it must
// not return the broken instance. logger receives degradation and recovery
// records (nil = silent).
func NewResilientBackend(primary Backend, reopen func() (Backend, error), logger *slog.Logger) *ResilientBackend {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &ResilientBackend{
		reopen: reopen, logger: logger,
		baseBackoff: time.Second, maxBackoff: 30 * time.Second,
		primary:  primary,
		fallback: NewMemoryBackend(0),
	}
}

// Get implements Backend.
func (b *ResilientBackend) Get(key string) (CacheRecord, bool) {
	b.mu.Lock()
	p := b.primary
	b.mu.Unlock()
	if p != nil {
		if rec, ok := p.Get(key); ok {
			return rec, ok
		}
	}
	return b.fallback.Get(key)
}

// Put implements Backend. It never returns a disk error: a failed primary
// write flips the backend into degraded mode and the record lands in the
// memory fallback instead.
func (b *ResilientBackend) Put(key string, rec CacheRecord) error {
	b.mu.Lock()
	p := b.primary
	b.mu.Unlock()
	if p != nil {
		err := p.Put(key, rec)
		if err == nil {
			return nil
		}
		b.mu.Lock()
		if b.primary == p {
			b.enterDegradedLocked(err)
		}
		b.h.Errors++
		b.mu.Unlock()
	} else {
		b.mu.Lock()
		b.h.Errors++
		b.mu.Unlock()
	}
	return b.fallback.Put(key, rec)
}

// Len implements Backend.
func (b *ResilientBackend) Len() int {
	b.mu.Lock()
	p := b.primary
	b.mu.Unlock()
	if p != nil {
		return p.Len()
	}
	return b.fallback.Len()
}

// Close implements Backend.
func (b *ResilientBackend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	p := b.primary
	b.primary = nil
	b.mu.Unlock()
	if p != nil {
		return p.Close()
	}
	return nil
}

// Health implements HealthReporter.
func (b *ResilientBackend) Health() Health {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.h
}

// StoreStats implements StoreStatser, delegating to the attached primary.
// Reports false while degraded (no store attached) or when the primary has
// no persistent store.
func (b *ResilientBackend) StoreStats() (store.Stats, bool) {
	b.mu.Lock()
	p := b.primary
	b.mu.Unlock()
	if sp, ok := p.(StoreStatser); ok && p != nil {
		return sp.StoreStats()
	}
	return store.Stats{}, false
}

// enterDegradedLocked detaches the broken primary and starts the reopen
// loop. Caller holds b.mu.
func (b *ResilientBackend) enterDegradedLocked(err error) {
	if b.primary == nil {
		return
	}
	b.h.Degraded = true
	b.h.DegradedSince = time.Now()
	b.h.Flips++
	p := b.primary
	b.primary = nil
	// Close in the background: DiskBackend.Close waits for in-flight
	// compaction, and the solver's result-publish path must not.
	go p.Close()
	b.backoff = b.baseBackoff
	b.logger.Error("result cache degraded to memory-only", "err", err)
	b.scheduleReopenLocked()
}

// scheduleReopenLocked arms the next reopen attempt. Caller holds b.mu.
func (b *ResilientBackend) scheduleReopenLocked() {
	if b.closed || b.reopen == nil {
		return
	}
	b.timer = time.AfterFunc(b.backoff, b.tryReopen)
}

// tryReopen attempts to rebuild the primary and flush the fallback into
// it; on failure the backoff doubles (capped) and the loop re-arms.
func (b *ResilientBackend) tryReopen() {
	b.mu.Lock()
	if b.closed || b.primary != nil {
		b.mu.Unlock()
		return
	}
	b.h.ReopenAttempts++
	b.mu.Unlock()

	nb, err := b.reopen()

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.primary != nil {
		if err == nil {
			go nb.Close()
		}
		return
	}
	if err == nil {
		// Flush the records cached while degraded so they gain durability.
		b.fallback.Range(func(key string, rec CacheRecord) bool {
			err = nb.Put(key, rec)
			return err == nil
		})
		if err != nil {
			go nb.Close()
		}
	}
	if err != nil {
		b.backoff *= 2
		if b.backoff > b.maxBackoff {
			b.backoff = b.maxBackoff
		}
		b.logger.Warn("result cache reopen failed", "err", err,
			"attempt", b.h.ReopenAttempts, "next_try_in", b.backoff)
		b.scheduleReopenLocked()
		return
	}
	flushed := b.fallback.Len()
	b.primary = nb
	b.fallback = NewMemoryBackend(0)
	b.h.Degraded = false
	b.logger.Info("result cache recovered", "attempts", b.h.ReopenAttempts,
		"flushed_records", flushed)
}

// Package service is the throughput layer over the paper's coloring flow:
// a batch scheduler with a bounded worker pool, per-job context
// cancellation and timeouts, and a canonical-form result cache. Jobs are
// keyed by a canonical labeling of the input graph (internal/autom's
// individualization-refinement machinery), so isomorphic submissions —
// symmetric instances of the same coloring problem, in the sense the
// paper's symmetry-breaking predicates exploit — are deduplicated: the
// first submission solves, concurrent isomorphic ones join the in-flight
// solve, and later ones hit the cache. Each submitter gets the result
// translated back into its own vertex numbering through its canonical
// permutation.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/solverutil"
)

// Errors returned by Submit and the accessors. Admission rejections
// (ErrQueueFull, ErrOverQuota) are returned as *AdmissionError values
// carrying the tenant and a RetryAfter hint; match them with errors.Is
// against these sentinels or errors.As for the detail.
var (
	ErrClosed    = errors.New("service: closed")
	ErrQueueFull = errors.New("service: queue full")
	ErrOverQuota = errors.New("service: tenant over quota")
	ErrNoSuchJob = errors.New("service: no such job")
	// ErrDraining rejects submissions while the service is draining for
	// shutdown; in-flight jobs keep running, new work belongs elsewhere.
	ErrDraining = errors.New("service: draining")
	// ErrNoTrace is returned by Trace for a job the service knows but has
	// no completed trace for: the job has not finished yet, its trace was
	// evicted from the flight recorder, or tracing is disabled.
	ErrNoTrace = errors.New("service: no trace for job")
)

// PanicError is the typed failure a job receives when its solver panicked:
// the worker recovers, the job fails with this error (StateFailed), and
// the daemon keeps serving. Stack is the recovering goroutine's stack,
// preserved for the job record and the structured log.
type PanicError struct {
	Value string `json:"value"`
	Stack string `json:"stack"`
}

// Error implements error.
func (e *PanicError) Error() string { return "service: solver panic: " + e.Value }

// JobSpec holds the solver-relevant parameters of a submission. The spec is
// part of the cache key: two jobs share a result only when both their
// canonical graph forms and their specs agree. The exceptions are Timeout
// and the search knobs (ChronoThreshold, VivifyBudget, DynamicLBD) — they
// steer the search without ever changing a definitive answer, so excluding
// them from the key is safe and lets differently tuned submissions share
// results; only definitive (budget-independent) results are ever cached.
type JobSpec struct {
	// K is the color bound (0 = max degree + 1, as in core.Solve).
	K int `json:"k"`
	// SBP selects the instance-independent construction.
	SBP encode.SBPKind `json:"sbp"`
	// Engine selects a single solver engine; ignored when Portfolio is set.
	Engine pbsolver.Engine `json:"engine"`
	// Portfolio races all engines and keeps the first definitive answer.
	Portfolio bool `json:"portfolio"`
	// InstanceDependent adds lex-leader SBPs for detected symmetries.
	InstanceDependent bool `json:"instance_dependent"`
	// SBPVariant selects the lex-leader construction of the predicate
	// layer: full detected-generator break (default), involution-restricted
	// break, precomputed canonizing set, or a race of all three (see
	// sbp.Variant). Every variant is a sound partial break of the same
	// group — the knob changes solve speed, never the answer — so it is
	// excluded from the cache key and differently configured submissions
	// share results.
	SBPVariant sbp.Variant `json:"sbp_variant,omitempty"`
	// Timeout bounds this job's solve; 0 = the service default.
	Timeout time.Duration `json:"timeout"`
	// Priority is the admission class, 0 (normal) to MaxPriority (most
	// urgent). Higher classes dequeue first; within a class the order is
	// FIFO, and waiting jobs age upward so no class starves (see
	// Config.AgingStep). Excluded from the cache key.
	Priority int `json:"priority,omitempty"`
	// Deadline bounds the job end to end from submission, *including*
	// time spent queued: a job still waiting past its deadline expires
	// without ever occupying a worker, and a running job's solve context
	// is cut at the deadline even when Timeout allows more. 0 = no
	// deadline. Excluded from the cache key.
	Deadline time.Duration `json:"deadline,omitempty"`
	// ChronoThreshold enables chronological backtracking in the CDCL
	// engines: backjumps undoing more than this many levels retreat one
	// level instead (0 = disabled). Excluded from the cache key.
	ChronoThreshold int `json:"chrono_threshold,omitempty"`
	// VivifyBudget enables clause vivification at restarts, bounded by
	// this many propagations per pass (0 = disabled). Excluded from the
	// cache key.
	VivifyBudget int64 `json:"vivify_budget,omitempty"`
	// DynamicLBD recomputes learnt-clause LBDs during conflict analysis.
	// Excluded from the cache key.
	DynamicLBD bool `json:"dynamic_lbd,omitempty"`
	// GlueLBD, ReduceInterval and RestartBase override the engines'
	// learnt-database and restart defaults (0 = engine default). Like the
	// search knobs above, they steer the search without changing answers
	// and are excluded from the cache key.
	GlueLBD        int   `json:"glue_lbd,omitempty"`
	ReduceInterval int64 `json:"reduce_interval,omitempty"`
	RestartBase    int64 `json:"restart_base,omitempty"`
	// Parallel > 1 solves with the cube-and-conquer subsystem
	// (internal/par) on that many workers; CubeDepth and ShareLBD tune
	// the split and the learnt-clause exchange (see core.Config). All
	// three steer how the search is run, never which answer it reaches,
	// so they too are excluded from the cache key.
	Parallel  int `json:"parallel,omitempty"`
	CubeDepth int `json:"cube_depth,omitempty"`
	ShareLBD  int `json:"share_lbd,omitempty"`
}

// State is a job's lifecycle phase.
type State int32

// Job states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
	// StateExpired marks a job whose deadline elapsed while it was still
	// queued: it never ran a solver and never occupied a worker.
	StateExpired
)

// String returns the lowercase wire name of the state ("queued",
// "running", "done", "failed", "canceled", "expired"), the form JobInfo
// serializes.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateExpired:
		return "expired"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Result is a completed job's outcome, in the submitted graph's own vertex
// numbering (cache hits are translated through the canonical permutation).
type Result struct {
	Status pbsolver.Status `json:"status"`
	// Solved reports a definitive answer: optimum proven or χ > K proven.
	Solved bool `json:"solved"`
	// Chi is the proven chromatic number within K (0 unless optimal).
	Chi int `json:"chi"`
	// Coloring is a witness coloring when one is available.
	Coloring []int `json:"coloring,omitempty"`
	// Winner is the engine that produced the result (portfolio runs).
	Winner string `json:"winner,omitempty"`
	// SBPVariant is the symmetry-breaking construction the solve emitted
	// predicates under ("full", "involution", "canonset"); after a variant
	// race it names the winner. Empty when no predicate layer ran or the
	// result came from the cache.
	SBPVariant string `json:"sbp_variant,omitempty"`
	// Runtime is the solver wall-clock time (the original solve's, for
	// cache hits).
	Runtime time.Duration `json:"runtime"`
	// Conflicts is the solver conflict count (original solve's).
	Conflicts int64 `json:"conflicts"`
	// ChronoBacktracks, VivifiedLits and LBDUpdates report the solver's
	// search-improvement counters. Like Runtime and Conflicts they are
	// the original solve's: a knob-blind cache hit reports the counters
	// of whichever submission actually solved, regardless of this job's
	// own knob settings.
	ChronoBacktracks int64 `json:"chrono_backtracks,omitempty"`
	VivifiedLits     int64 `json:"vivified_lits,omitempty"`
	LBDUpdates       int64 `json:"lbd_updates,omitempty"`
	// Cube-and-conquer counters, present when the job ran with
	// Parallel > 1: workers used, cubes generated / refuted by lookahead
	// / conquered, and learnt clauses exchanged. Run-specific, so cache
	// hits do not carry them.
	ParWorkers      int   `json:"par_workers,omitempty"`
	Cubes           int64 `json:"cubes,omitempty"`
	CubesRefuted    int64 `json:"cubes_refuted,omitempty"`
	CubesClosed     int64 `json:"cubes_closed,omitempty"`
	ClausesShared   int64 `json:"clauses_shared,omitempty"`
	ClausesImported int64 `json:"clauses_imported,omitempty"`
	// CacheHit reports the result was served from the canonical cache
	// (including joins on an in-flight isomorphic solve).
	CacheHit bool `json:"cache_hit"`
	// CanonExact reports the canonical labeling search completed; when
	// false, isomorphic submissions may miss each other in the cache.
	CanonExact bool `json:"canon_exact"`
}

// Stats are the service's cumulative counters.
type Stats struct {
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Canceled   int64 `json:"canceled"`
	SolverRuns int64 `json:"solver_runs"`
	// CacheHits counts results served from the cache backend (memory or
	// disk); DedupJoins counts submissions that waited on an identical
	// in-flight solve instead of starting their own.
	CacheHits  int64 `json:"cache_hits"`
	DedupJoins int64 `json:"dedup_joins"`
	// StoreErrors counts failed backend writes; the cache stays
	// best-effort (the result is still returned, just not persisted).
	StoreErrors int64 `json:"store_errors"`
	// CanonInexact counts canonical searches that hit their node budget.
	CanonInexact int64 `json:"canon_inexact"`
	// InexactSkips counts solved results NOT persisted to the backend
	// because their canonical key was inexact — such a key is budget- and
	// order-dependent, so a durable entry under it would never be hit
	// again and only bloat the store. (In-flight waiters under the same
	// key still receive the result: an equal key in-process always means
	// isomorphic graphs.)
	InexactSkips int64 `json:"inexact_skips"`
	// SBPVariants aggregates predicate emission per SBP variant across all
	// solver runs whose symmetry-breaking layer ran: run count, lex-leader
	// permutations emitted, and CNF clauses added. Keyed by variant wire
	// name ("full", "involution", "canonset"); a variant race contributes
	// one row per finished racer through the winning outcome only (losers
	// are cancelled mid-flight and report nothing).
	SBPVariants map[string]SBPVariantStats `json:"sbp_variants,omitempty"`
	// CanonGenerators / CanonOrbitPrunes / CanonPrefixPrunes report the
	// automorphism discovery fused into the canonical labeling search:
	// verified generators found at equal leaves, sibling subtrees skipped
	// because a generator maps them onto an explored one, and subtrees cut
	// by incumbent prefix comparison.
	CanonGenerators   int64 `json:"canon_generators"`
	CanonOrbitPrunes  int64 `json:"canon_orbit_prunes"`
	CanonPrefixPrunes int64 `json:"canon_prefix_prunes"`
	// CacheEntries is the number of definitive records in the backend;
	// InFlight is the number of solves currently leading a singleflight
	// group.
	CacheEntries int `json:"cache_entries"`
	InFlight     int `json:"in_flight"`
	QueueDepth   int `json:"queue_depth"`
	Running      int `json:"running"`

	// Admission counters. Expired counts jobs whose deadline elapsed in
	// the queue (they never reached a worker); the Rejects* counters
	// split Submit refusals by reason; QueueWait is the histogram of
	// time-in-queue for every dequeued job; Tenants holds the per-tenant
	// accept/reject/in-flight counters, keyed by tenant name.
	Expired            int64                  `json:"expired"`
	RejectsQueueFull   int64                  `json:"rejects_queue_full"`
	RejectsOverQuota   int64                  `json:"rejects_over_quota"`
	RejectsInvalidSpec int64                  `json:"rejects_invalid_spec"`
	RejectsDraining    int64                  `json:"rejects_draining"`
	QueueWait          Histogram              `json:"queue_wait"`
	Tenants            map[string]TenantStats `json:"tenants,omitempty"`

	// Fault-tolerance counters. Panics counts solver panics isolated into
	// per-job failures; Replayed counts jobs resurrected from the journal
	// at startup; Draining reports admission refusing new work for
	// shutdown. StoreDegraded is true while the result-cache backend or
	// the job journal runs memory-only after disk failures; StoreHealth /
	// JournalHealth carry the detail when those components can degrade,
	// and JournalPending is the number of journaled jobs not yet terminal.
	Panics         int64   `json:"panics"`
	Replayed       int64   `json:"replayed"`
	Draining       bool    `json:"draining"`
	StoreDegraded  bool    `json:"store_degraded"`
	StoreHealth    *Health `json:"store_health,omitempty"`
	JournalHealth  *Health `json:"journal_health,omitempty"`
	JournalPending int     `json:"journal_pending,omitempty"`
}

// SBPVariantStats is one row of Stats.SBPVariants: the cumulative
// symmetry-breaking work done under one SBP variant.
type SBPVariantStats struct {
	// Runs counts solver runs that emitted predicates under this variant.
	Runs int64 `json:"runs"`
	// Perms counts lex-leader permutations actually emitted (after variant
	// filtering and verification).
	Perms int64 `json:"perms"`
	// Clauses counts the CNF clauses those predicates added.
	Clauses int64 `json:"clauses"`
}

// SolveFunc produces the outcome for one job; tests inject counters and
// stubs here. The default is DefaultSolve. sym carries automorphisms of
// the job's graph discovered by the canonical-labeling search (possibly
// empty); implementations may forward them to the solver as an
// instance-symmetry source. progress may be nil; when non-nil,
// implementations should forward it to the solver so the job reports live
// search counters.
type SolveFunc func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome

// DefaultSolve runs core.Solve with the spec's parameters and the default
// progress pacing (solverutil.DefaultProgressInterval).
func DefaultSolve(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
	return defaultSolve(0)(ctx, g, spec, sym, progress)
}

// defaultSolve builds the core.Solve-backed SolveFunc with the given
// progress interval (0 = the solverutil default). The service uses this to
// honor Config.ProgressInterval; custom SolveFuncs pace themselves.
func defaultSolve(progressInterval time.Duration) SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		return core.Solve(ctx, g, core.Config{
			K:                 spec.K,
			SBP:               spec.SBP,
			Engine:            spec.Engine,
			Portfolio:         spec.Portfolio,
			InstanceDependent: spec.InstanceDependent,
			SBPVariant:        spec.SBPVariant,
			GraphGens:         sym,
			Timeout:           spec.Timeout,
			ChronoThreshold:   spec.ChronoThreshold,
			VivifyBudget:      spec.VivifyBudget,
			DynamicLBD:        spec.DynamicLBD,
			GlueLBD:           spec.GlueLBD,
			ReduceInterval:    spec.ReduceInterval,
			RestartBase:       spec.RestartBase,
			Parallel:          spec.Parallel,
			CubeDepth:         spec.CubeDepth,
			ShareLBD:          spec.ShareLBD,
			Progress:          progress,
			ProgressInterval:  progressInterval,
		})
	}
}

// Config configures a Service.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-unstarted jobs (default 1024); Submit
	// returns ErrQueueFull beyond it.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not set their own (0 = none).
	DefaultTimeout time.Duration
	// CanonMaxNodes bounds each canonical labeling search (0 = the
	// autom package default).
	CanonMaxNodes int64
	// CacheCapacity bounds the default in-memory backend's completed
	// cache entries (default 4096); the oldest entries are evicted first.
	// Ignored when Backend is set.
	CacheCapacity int
	// Backend stores definitive results under their canonical cache key.
	// nil selects an in-memory backend bounded by CacheCapacity; use
	// NewDiskBackend / OpenDiskBackend for a cache that survives
	// restarts. The service assumes ownership and closes the backend in
	// Close.
	Backend Backend
	// ProgressInterval is the minimum spacing of a job's progress
	// snapshots per reporting engine (0 selects
	// solverutil.DefaultProgressInterval, 200ms). It applies to the
	// built-in solver; a custom Solve paces its own reports.
	ProgressInterval time.Duration
	// TraceKeep bounds the flight recorder: completed jobs keep their span
	// trace, served by Trace/RecentTraces, and the newest TraceKeep traces
	// are retained (0 selects the default of 256). Negative disables
	// tracing entirely — no per-job trace, no recorder, no phase
	// histograms — which is the `-trace.keep=0` benchmark baseline.
	TraceKeep int
	// MaxJobs bounds retained job records (default 16384). When exceeded,
	// the oldest *finished* jobs are forgotten — their ids then return
	// ErrNoSuchJob — so a long-running daemon does not grow without bound.
	MaxJobs int
	// AgingStep is the queue seniority one priority class is worth
	// (default 30s): a priority-P job is scheduled as if submitted
	// P·AgingStep earlier, so higher classes overtake bounded amounts of
	// lower-class backlog and every waiting job eventually outranks all
	// newer arrivals — no class starves.
	AgingStep time.Duration
	// TenantRate caps each tenant's long-run accepted submissions per
	// second with a token bucket of TenantBurst capacity (0 = no rate
	// limit). TenantBurst defaults to max(1, ceil(TenantRate)).
	TenantRate  float64
	TenantBurst int
	// TenantMaxInFlight bounds one tenant's queued + running jobs
	// (0 = unlimited). Beyond it, Submit rejects with ErrOverQuota so a
	// single tenant saturating the service cannot starve the others.
	TenantMaxInFlight int
	// RetryAfterHint is the retry delay suggested on queue-full and
	// in-flight-quota rejections (default 1s; rate-limit rejections
	// compute the exact token-refill wait instead).
	RetryAfterHint time.Duration
	// Logger receives structured job-lifecycle records (accepts,
	// rejects, and one line per finished job with tenant, cache hit/miss,
	// queue wait, solve time, and outcome). nil disables logging.
	Logger *slog.Logger
	// Solve overrides the solver (tests); nil selects DefaultSolve.
	Solve SolveFunc
	// Journal, when set, makes accepted jobs durable: each submission is
	// recorded before Submit returns and marked done at its terminal
	// state, and New replays the entries a crash left pending — queued and
	// running jobs resume after a restart instead of vanishing. The
	// service assumes ownership and closes the journal in Close.
	Journal Journal
}

type job struct {
	id     string
	tenant string
	g      *graph.Graph
	spec   JobSpec
	ctx    context.Context
	cancel context.CancelFunc

	// Admission-queue key: seq is the global submission order, vtime the
	// aging-adjusted virtual submission time (see pqueue), deadlineAt the
	// absolute end-to-end deadline (zero when the spec sets none).
	seq        int64
	vtime      time.Time
	deadlineAt time.Time

	// Tracing state: the per-job trace, its root "job" span, and the
	// "queue" span opened at admission and closed when a worker picks the
	// job up. All nil when tracing is disabled — every obs operation is a
	// nil-receiver no-op. Immutable after the job is enqueued.
	trace     *obs.Trace
	rootSpan  *obs.Span
	queueSpan *obs.Span

	mu        sync.Mutex
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	queueWait time.Duration
	err       error
	result    *Result
	canceled  bool // explicit Cancel call (vs timeout)
	expired   bool // deadline elapsed while still queued
	// phase names the lifecycle stage the job is in right now ("queued",
	// "canon", "solve", "persist", "done") for progress/heartbeat events.
	phase string

	// Live progress: the latest snapshot, a monotonically increasing
	// sequence number, and a wake channel closed (and replaced) on every
	// update so streamers can block without polling.
	prog     Progress
	progWake chan struct{}

	done chan struct{}
}

// Progress is a live view of a running job's search, assembled from the
// solver's rate-limited progress callbacks. Seq increases with every
// snapshot; a Seq of 0 means the job has not reported yet.
type Progress struct {
	// Seq orders snapshots within one job.
	Seq int64 `json:"seq"`
	// K is the effective color bound the job is solving under (the
	// submitted K, or max degree + 1 when the submission left it 0).
	K int `json:"k"`
	// Elapsed is the time since the job started running.
	Elapsed time.Duration `json:"elapsed"`
	// Phase names the lifecycle stage the job was in when the snapshot was
	// taken ("queued", "canon", "solve", "persist", "done").
	Phase string `json:"phase,omitempty"`
	solverutil.Progress
}

// recordProgress stores a new snapshot and wakes all watchers. Called from
// solver goroutines — under a portfolio, several concurrently.
func (j *job) recordProgress(effK int, p solverutil.Progress) {
	j.mu.Lock()
	j.prog = Progress{
		Seq:      j.prog.Seq + 1,
		K:        effK,
		Elapsed:  time.Since(j.started),
		Phase:    j.phase,
		Progress: p,
	}
	close(j.progWake)
	j.progWake = make(chan struct{})
	j.mu.Unlock()
}

// setPhase records the lifecycle stage the job just entered.
func (j *job) setPhase(p string) {
	j.mu.Lock()
	j.phase = p
	j.mu.Unlock()
}

// JobInfo is a point-in-time snapshot of a job.
type JobInfo struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant,omitempty"`
	Instance  string    `json:"instance"`
	Spec      JobSpec   `json:"spec"`
	State     string    `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// QueueWait is the time the job spent in the admission queue before
	// a worker picked it up (0 while still queued).
	QueueWait time.Duration `json:"queue_wait,omitempty"`
	Err       string        `json:"error,omitempty"`
	// Stack is the captured goroutine stack when the job failed because
	// its solver panicked (see PanicError); empty otherwise.
	Stack  string  `json:"stack,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Service is the concurrent coloring scheduler.
type Service struct {
	cfg     Config
	solve   SolveFunc
	backend Backend
	journal Journal
	pq      *pqueue
	logger  *slog.Logger
	// recorder is the bounded flight recorder completed job traces land
	// in; nil when Config.TraceKeep is negative (tracing disabled).
	recorder *obs.Recorder
	wg       sync.WaitGroup
	// stopCtx is cancelled when Close begins, aborting canonical labeling
	// searches promptly on shutdown. It deliberately carries no deadline:
	// cache keys must not depend on how much solve time a job has left.
	stopCtx    context.Context
	stopCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job ids, oldest first, for pruning
	// inflight maps cache keys to singleflight entries (guarded by mu;
	// waiting on an entry's done channel happens outside the lock). Its
	// size is bounded by the worker count — leaders remove their entry
	// the moment they publish.
	inflight map[string]*entry
	// tenants holds per-tenant admission state (token bucket, in-flight
	// count, counters), created on first submission.
	tenants map[string]*tenantState
	// sbpVariants aggregates per-variant predicate emission (guarded by
	// mu), keyed by variant wire name; see Stats.SBPVariants.
	sbpVariants map[string]*SBPVariantStats
	// Queue-wait histogram: one count per QueueWaitBucketsMS bound plus
	// the +Inf overflow bucket.
	queueWaitBuckets []int64
	queueWaitCount   int64
	queueWaitSumMS   int64
	closed           bool
	// draining stops admission (typed ReasonDraining rejections) while
	// in-flight jobs run to completion; see BeginDrain/Drain.
	draining bool

	nextID      atomic.Int64
	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	canceled    atomic.Int64
	expired     atomic.Int64
	solverRuns  atomic.Int64
	cacheHits   atomic.Int64
	dedupJoins  atomic.Int64
	storeErrs   atomic.Int64
	inexact     atomic.Int64
	inexactSkip atomic.Int64
	canonGens   atomic.Int64
	canonOrbit  atomic.Int64
	canonPrefix atomic.Int64
	running     atomic.Int64
	rejectFull  atomic.Int64
	rejectQuota atomic.Int64
	rejectSpec  atomic.Int64
	rejectDrain atomic.Int64
	panics      atomic.Int64
	replayed    atomic.Int64
}

// New starts a service with the given configuration.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 16384
	}
	if cfg.AgingStep <= 0 {
		cfg.AgingStep = 30 * time.Second
	}
	if cfg.TenantRate > 0 && cfg.TenantBurst <= 0 {
		cfg.TenantBurst = int(math.Ceil(cfg.TenantRate))
		if cfg.TenantBurst < 1 {
			cfg.TenantBurst = 1
		}
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = time.Second
	}
	s := &Service{
		cfg:              cfg,
		solve:            cfg.Solve,
		backend:          cfg.Backend,
		pq:               newPQueue(),
		logger:           cfg.Logger,
		jobs:             make(map[string]*job),
		inflight:         make(map[string]*entry),
		tenants:          make(map[string]*tenantState),
		sbpVariants:      make(map[string]*SBPVariantStats),
		queueWaitBuckets: make([]int64, len(QueueWaitBucketsMS)+1),
	}
	if cfg.TraceKeep >= 0 {
		keep := cfg.TraceKeep
		if keep == 0 {
			keep = 256
		}
		s.recorder = obs.NewRecorder(keep)
	}
	s.stopCtx, s.stopCancel = context.WithCancel(context.Background())
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if s.solve == nil {
		s.solve = defaultSolve(cfg.ProgressInterval)
	}
	if s.backend == nil {
		s.backend = NewMemoryBackend(cfg.CacheCapacity)
	}
	// Replay the journal before any worker starts: jobs a crash left
	// queued or running re-enter the queue with their original ids,
	// submission times, and deadlines, so nothing accepted is ever
	// silently lost.
	if s.journal = cfg.Journal; s.journal != nil {
		entries, err := s.journal.Replay()
		if err != nil {
			s.logger.Error("journal replay failed; pending jobs lost", "err", err)
		}
		for _, e := range entries {
			s.replayJob(e)
		}
		if n := len(entries); n > 0 {
			s.logger.Info("journal replay complete", "jobs", n)
		}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// replayJob re-admits one journaled submission after a restart. The job
// keeps its original id, tenant, submission time (so its queue seniority
// carries over) and absolute deadline; an entry already past its deadline
// finishes as StateExpired without touching a worker. Admission control is
// deliberately not re-applied — the job was admitted once, in its previous
// life.
func (s *Service) replayJob(e JournalEntry) {
	tenant := e.Tenant
	if tenant == "" {
		tenant = "default"
	}
	// Keep the id sequence ahead of every replayed id so new submissions
	// never collide with resurrected ones.
	seq := s.nextID.Add(1)
	if n, err := strconv.ParseInt(strings.TrimPrefix(e.ID, "job-"), 10, 64); err == nil && n > 0 {
		seq = n
		for {
			cur := s.nextID.Load()
			if n <= cur || s.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:         e.ID,
		tenant:     tenant,
		g:          e.Graph(),
		spec:       e.Spec,
		ctx:        ctx,
		cancel:     cancel,
		seq:        seq,
		vtime:      e.Submitted.Add(-time.Duration(e.Spec.Priority) * s.cfg.AgingStep),
		deadlineAt: e.Deadline,
		state:      StateQueued,
		submitted:  e.Submitted,
		phase:      "queued",
		progWake:   make(chan struct{}),
		done:       make(chan struct{}),
	}
	s.mu.Lock()
	if _, dup := s.jobs[j.id]; dup {
		s.mu.Unlock()
		cancel()
		return
	}
	s.tenant(tenant).inFlight++
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.replayed.Add(1)
	if !j.deadlineAt.IsZero() && !time.Now().Before(j.deadlineAt) {
		j.mu.Lock()
		j.expired = true
		j.mu.Unlock()
		s.finish(j, nil, nil)
		return
	}
	s.attachTrace(j, "", time.Now())
	s.pq.push(j)
	s.logger.Info("job replayed from journal", "job", j.id, "tenant", tenant,
		"instance", j.g.Name())
}

// Submit enqueues one coloring job for the anonymous default tenant. The
// graph must not be mutated by the caller afterwards. Returns the job id.
func (s *Service) Submit(g *graph.Graph, spec JobSpec) (string, error) {
	return s.SubmitTenantTraced("", "", g, spec)
}

// SubmitTenant enqueues one coloring job on behalf of the named tenant
// ("" = "default"). The spec is validated (*ValidationError on bad
// fields) and the submission passes admission control: the tenant's token
// bucket and in-flight quota, then the bounded queue. Rejections are
// *AdmissionError values carrying a RetryAfter hint and matching
// ErrOverQuota / ErrQueueFull via errors.Is — the service never blocks
// the caller and rejected jobs never occupy a worker.
func (s *Service) SubmitTenant(tenant string, g *graph.Graph, spec JobSpec) (string, error) {
	return s.SubmitTenantTraced(tenant, "", g, spec)
}

// SubmitTenantTraced is SubmitTenant with an explicit trace correlation
// id, normally the request id the HTTP layer echoes as X-Request-ID, so a
// log line's request id finds the job's trace and vice versa. Empty falls
// back to the job id.
func (s *Service) SubmitTenantTraced(tenant, traceID string, g *graph.Graph, spec JobSpec) (string, error) {
	if tenant == "" {
		tenant = "default"
	}
	admitStart := time.Now()
	if err := spec.Validate(); err != nil {
		s.rejectSpec.Add(1)
		s.logger.Warn("job rejected", "tenant", tenant, "reason", ReasonInvalidSpec, "err", err)
		return "", err
	}
	now := time.Now()
	seq := s.nextID.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        fmt.Sprintf("job-%d", seq),
		tenant:    tenant,
		g:         g,
		spec:      spec,
		ctx:       ctx,
		cancel:    cancel,
		seq:       seq,
		vtime:     now.Add(-time.Duration(spec.Priority) * s.cfg.AgingStep),
		state:     StateQueued,
		submitted: now,
		phase:     "queued",
		progWake:  make(chan struct{}),
		done:      make(chan struct{}),
	}
	if spec.Deadline > 0 {
		j.deadlineAt = now.Add(spec.Deadline)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	if s.draining {
		ts := s.tenant(tenant)
		ts.rejects++
		s.mu.Unlock()
		cancel()
		return "", s.reject(&AdmissionError{
			Reason: ReasonDraining, Tenant: tenant, RetryAfter: s.cfg.RetryAfterHint,
		})
	}
	ts := s.tenant(tenant)
	if q := s.cfg.TenantMaxInFlight; q > 0 && ts.inFlight >= q {
		ts.rejects++
		s.mu.Unlock()
		cancel()
		return "", s.reject(&AdmissionError{
			Reason: ReasonOverQuota, Tenant: tenant, RetryAfter: s.cfg.RetryAfterHint,
		})
	}
	if s.pq.len() >= s.cfg.QueueDepth {
		ts.rejects++
		s.mu.Unlock()
		cancel()
		return "", s.reject(&AdmissionError{
			Reason: ReasonQueueFull, Tenant: tenant, RetryAfter: s.cfg.RetryAfterHint,
		})
	}
	// Last so a rejection for any other reason never burns a token.
	if ok, wait := s.takeToken(ts, now); !ok {
		ts.rejects++
		s.mu.Unlock()
		cancel()
		return "", s.reject(&AdmissionError{
			Reason: ReasonOverQuota, Tenant: tenant, RetryAfter: wait,
		})
	}
	ts.inFlight++
	ts.accepts++
	s.jobs[j.id] = j
	// Journal before the job becomes runnable, so every submission the
	// caller sees accepted is durable (a degraded journal diverts to
	// memory rather than erroring; see DiskJournal).
	if s.journal != nil {
		if jerr := s.journal.Record(journalEntryFor(j)); jerr != nil {
			s.storeErrs.Add(1)
		}
	}
	// Trace must be attached before the job is runnable: a worker may pop
	// it the instant push returns.
	s.attachTrace(j, traceID, admitStart)
	s.pq.push(j)
	s.mu.Unlock()
	s.submitted.Add(1)
	s.logger.Debug("job accepted", "tenant", tenant, "job", j.id,
		"priority", spec.Priority, "queue_depth", s.pq.len())
	return j.id, nil
}

// attachTrace opens the job's trace: the root "job" span, an "admission"
// span backdated to the submission's entry into admission control, and
// the "queue" span left open until a worker picks the job up. No-op when
// tracing is disabled (the job's trace fields stay nil and every span
// operation downstream is a nil no-op).
func (s *Service) attachTrace(j *job, traceID string, admitStart time.Time) {
	if s.recorder == nil {
		return
	}
	if traceID == "" {
		traceID = j.id
	}
	j.trace = obs.NewTrace(traceID, j.id)
	j.rootSpan = j.trace.StartSpanAt(nil, "job", admitStart,
		obs.String("tenant", j.tenant), obs.String("instance", j.g.Name()))
	adm := j.trace.StartSpanAt(j.rootSpan, "admission", admitStart)
	adm.End()
	j.queueSpan = j.trace.StartSpan(j.rootSpan, "queue")
}

// reject counts and logs one admission rejection.
func (s *Service) reject(e *AdmissionError) error {
	switch e.Reason {
	case ReasonQueueFull:
		s.rejectFull.Add(1)
	case ReasonOverQuota:
		s.rejectQuota.Add(1)
	case ReasonDraining:
		s.rejectDrain.Add(1)
	}
	s.logger.Warn("job rejected", "tenant", e.Tenant, "reason", e.Reason,
		"retry_after", e.RetryAfter)
	return e
}

// Cancel cancels a job; queued jobs are dropped when dequeued, running jobs
// have their solve context cancelled.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrNoSuchJob
	}
	j.mu.Lock()
	j.canceled = true
	j.mu.Unlock()
	j.cancel()
	return nil
}

// Job returns a snapshot of the job's current state.
func (s *Service) Job(id string) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNoSuchJob
	}
	return j.info(), nil
}

// Wait blocks until the job finishes (done, failed, or canceled) or ctx is
// cancelled, and returns the final snapshot.
func (s *Service) Wait(ctx context.Context, id string) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNoSuchJob
	}
	select {
	case <-j.done:
		return j.info(), nil
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// Jobs lists snapshots of all known jobs (unordered).
func (s *Service) Jobs() []JobInfo {
	s.mu.Lock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.info())
	}
	s.mu.Unlock()
	return out
}

// Stats returns the cumulative service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	inflight := len(s.inflight)
	draining := s.draining
	tenants := make(map[string]TenantStats, len(s.tenants))
	for name, ts := range s.tenants {
		tenants[name] = TenantStats{Accepts: ts.accepts, Rejects: ts.rejects, InFlight: ts.inFlight}
	}
	var sbpVariants map[string]SBPVariantStats
	if len(s.sbpVariants) > 0 {
		sbpVariants = make(map[string]SBPVariantStats, len(s.sbpVariants))
		for name, st := range s.sbpVariants {
			sbpVariants[name] = *st
		}
	}
	hist := Histogram{
		Count:   s.queueWaitCount,
		SumMS:   s.queueWaitSumMS,
		Buckets: make([]HistogramBucket, len(s.queueWaitBuckets)),
	}
	for i, n := range s.queueWaitBuckets {
		le := int64(-1) // +Inf
		if i < len(QueueWaitBucketsMS) {
			le = QueueWaitBucketsMS[i]
		}
		hist.Buckets[i] = HistogramBucket{LEms: le, Count: n}
	}
	s.mu.Unlock()
	var storeHealth, journalHealth *Health
	if hr, ok := s.backend.(HealthReporter); ok {
		h := hr.Health()
		storeHealth = &h
	}
	journalPending := 0
	if s.journal != nil {
		h := s.journal.Health()
		journalHealth = &h
		journalPending = s.journal.Pending()
	}
	return Stats{
		Submitted:          s.submitted.Load(),
		Completed:          s.completed.Load(),
		Failed:             s.failed.Load(),
		Canceled:           s.canceled.Load(),
		SolverRuns:         s.solverRuns.Load(),
		CacheHits:          s.cacheHits.Load(),
		DedupJoins:         s.dedupJoins.Load(),
		StoreErrors:        s.storeErrs.Load(),
		CanonInexact:       s.inexact.Load(),
		InexactSkips:       s.inexactSkip.Load(),
		CanonGenerators:    s.canonGens.Load(),
		CanonOrbitPrunes:   s.canonOrbit.Load(),
		CanonPrefixPrunes:  s.canonPrefix.Load(),
		CacheEntries:       s.backend.Len(),
		InFlight:           inflight,
		QueueDepth:         s.pq.len(),
		Running:            int(s.running.Load()),
		Expired:            s.expired.Load(),
		RejectsQueueFull:   s.rejectFull.Load(),
		RejectsOverQuota:   s.rejectQuota.Load(),
		RejectsInvalidSpec: s.rejectSpec.Load(),
		RejectsDraining:    s.rejectDrain.Load(),
		QueueWait:          hist,
		Tenants:            tenants,
		SBPVariants:        sbpVariants,
		Panics:             s.panics.Load(),
		Replayed:           s.replayed.Load(),
		Draining:           draining,
		StoreDegraded: (storeHealth != nil && storeHealth.Degraded) ||
			(journalHealth != nil && journalHealth.Degraded),
		StoreHealth:    storeHealth,
		JournalHealth:  journalHealth,
		JournalPending: journalPending,
	}
}

// Close stops accepting submissions, waits for queued and running jobs to
// finish, closes the cache backend, and returns. Use CancelAll first for a
// fast shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Stop canonical searches promptly: jobs still draining solve under
	// their own contexts, but shutdown does not wait out a labeling
	// budget. Their keys turn inexact, which is sound (and, per the
	// inexact-skip rule, never persisted).
	s.stopCancel()
	s.pq.close()
	s.wg.Wait()
	if err := s.backend.Close(); err != nil {
		s.storeErrs.Add(1)
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.storeErrs.Add(1)
		}
	}
}

// BeginDrain stops admission without stopping work: subsequent Submits are
// rejected with a typed ReasonDraining AdmissionError (ErrDraining via
// errors.Is) while queued and running jobs continue to completion.
// Idempotent.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.logger.Info("drain started",
			"queue_depth", s.pq.len(), "running", s.running.Load())
	}
}

// Draining reports whether admission is currently refusing new work.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain begins draining (see BeginDrain) and blocks until every in-flight
// job — queued or running — reaches a terminal state, or ctx is done. It
// returns nil when the service is idle; the caller then typically calls
// Close, which at that point has nothing left to wait for.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	for {
		s.mu.Lock()
		var pending []*job
		for _, j := range s.jobs {
			select {
			case <-j.done:
			default:
				pending = append(pending, j)
			}
		}
		s.mu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		for _, j := range pending {
			select {
			case <-j.done:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// CancelAll cancels every job that has not finished yet.
func (s *Service) CancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		select {
		case <-j.done:
		default:
			j.mu.Lock()
			j.canceled = true
			j.mu.Unlock()
			j.cancel()
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.pq.pop()
		if !ok {
			return
		}
		s.run(j)
	}
}

// run executes one job: canonicalize, join an in-flight isomorphic solve
// when one exists, otherwise consult the durable backend, and only when
// both miss run a solver and publish the result to waiters and backend.
// Canceled and deadline-expired jobs are finished here without a solver
// call — dequeuing them is the only work a worker spends on them.
func (s *Service) run(j *job) {
	wait := time.Since(j.submitted)
	j.mu.Lock()
	j.queueWait = wait
	j.mu.Unlock()
	j.queueSpan.End()
	s.observeQueueWait(wait)
	if j.ctx.Err() != nil {
		s.finish(j, nil, nil)
		return
	}
	if !j.deadlineAt.IsZero() && !time.Now().Before(j.deadlineAt) {
		j.mu.Lock()
		j.expired = true
		j.mu.Unlock()
		s.finish(j, nil, nil)
		return
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	defer j.cancel() // release the job context's resources

	ctx := j.ctx
	timeout := j.spec.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	// The end-to-end deadline keeps counting while the job runs: cut the
	// solve context at whichever bound lands first.
	if !j.deadlineAt.IsZero() && (deadline.IsZero() || j.deadlineAt.Before(deadline)) {
		deadline = j.deadlineAt
	}
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	// Canonicalize under the node budget and cancellation only — never the
	// deadline-derived solve context. A near-deadline job would otherwise
	// get a timing-dependent (truncated, hence inexact) key, and isomorphic
	// resubmissions would miss both the singleflight table and the backend.
	// j.ctx carries explicit Cancel/CancelAll but no deadline; stopCtx
	// aborts labeling when the service shuts down.
	j.setPhase("canon")
	canonSpan := j.trace.StartSpan(j.rootSpan, "canon")
	canonCtx, canonDone := context.WithCancel(j.ctx)
	stopWatch := context.AfterFunc(s.stopCtx, canonDone)
	var canon *autom.Canonical
	pprof.Do(canonCtx, pprof.Labels("tenant", j.tenant, "job", j.id, "phase", "canon"),
		func(ctx context.Context) {
			canon = canonicalize(ctx, j.g, s.cfg.CanonMaxNodes)
		})
	stopWatch()
	canonDone()
	canonSpan.End(
		obs.Int("nodes", canon.Nodes),
		obs.Int("generators", int64(len(canon.Generators))),
		obs.Int("orbit_prunes", canon.OrbitPrunes),
		obs.Int("prefix_prunes", canon.PrefixPrunes),
		obs.Bool("exact", canon.Exact),
	)
	if !canon.Exact {
		s.inexact.Add(1)
	}
	s.canonGens.Add(int64(len(canon.Generators)))
	s.canonOrbit.Add(canon.OrbitPrunes)
	s.canonPrefix.Add(canon.PrefixPrunes)
	key := cacheKey(j.spec, canon)

	s.mu.Lock()
	e, joined := s.inflight[key]
	if !joined {
		e = newEntry()
		s.inflight[key] = e
	}
	s.mu.Unlock()

	if joined {
		// Another worker is solving this equivalence class right now:
		// wait for its answer instead of duplicating the work.
		select {
		case <-e.done:
		case <-ctx.Done(): // job cancelled, or its own timeout expired
			s.finish(j, nil, nil)
			return
		}
		if res := e.materialize(j.g, canon); res != nil {
			s.dedupJoins.Add(1)
			s.finish(j, res, nil)
			return
		}
		// The leader's solve was not definitive (or the defensive
		// coloring check tripped): solve directly, without becoming a
		// leader ourselves — re-registering here could livelock with
		// other disappointed waiters. A definitive answer still goes to
		// the backend so the equivalence class is not lost to the cache.
		s.runSolver(ctx, j, canon, key)
		return
	}

	// Leader for this key. A durable backend may already hold the answer
	// from an earlier run of this process — or, with a disk backend, an
	// earlier life of this service.
	if rec, ok := s.backend.Get(key); ok {
		if res := materializeRecord(rec, j.g, canon); res != nil {
			e.publishRecord(rec)
			s.unregister(key)
			s.cacheHits.Add(1)
			s.finish(j, res, nil)
			return
		}
		// Unusable record (e.g. foreign or stale disk state): fall
		// through and re-solve; the fresh result overwrites it.
	}

	out, serr := s.runSolverOutcome(ctx, j, canon.Generators)
	if serr != nil {
		// The solver panicked. Release the singleflight group first —
		// waiters re-solve for themselves rather than inheriting a failure
		// that may be specific to this run.
		e.publishNone()
		s.unregister(key)
		s.finish(j, nil, serr)
		return
	}
	res := resultFromOutcome(out, j.spec, canon.Exact)
	if res.Solved {
		rec := recordFromOutcome(out, j.spec, canon)
		// Waiters always get the record — an equal key in-process means
		// isomorphic graphs even when inexact. Persisting is another
		// matter: an inexact key is budget- and order-dependent, never
		// produced again, so a durable entry under it is pure store bloat.
		e.publishRecord(rec)
		if !canon.Exact {
			s.inexactSkip.Add(1)
		} else {
			j.setPhase("persist")
			persist := j.trace.StartSpan(j.rootSpan, "persist")
			err := s.backend.Put(key, rec)
			persist.End(obs.Bool("cache_write", err == nil))
			if err != nil {
				// Best-effort persistence: the result still stands, the
				// entry is just not durable.
				s.storeErrs.Add(1)
			}
		}
	} else {
		// Do not let a budget-exhausted result poison future submissions
		// that may carry a larger budget.
		e.publishNone()
	}
	s.unregister(key)
	s.finish(j, res, nil)
}

// unregister removes a published singleflight entry from the in-flight
// table.
func (s *Service) unregister(key string) {
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
}

// runSolver solves the job directly (the non-leader path) and finishes
// it, persisting a definitive outcome under key so later isomorphic
// submissions still hit the cache.
func (s *Service) runSolver(ctx context.Context, j *job, canon *autom.Canonical, key string) {
	out, serr := s.runSolverOutcome(ctx, j, canon.Generators)
	if serr != nil {
		s.finish(j, nil, serr)
		return
	}
	res := resultFromOutcome(out, j.spec, canon.Exact)
	if res.Solved {
		if !canon.Exact {
			s.inexactSkip.Add(1)
		} else {
			j.setPhase("persist")
			persist := j.trace.StartSpan(j.rootSpan, "persist")
			err := s.backend.Put(key, recordFromOutcome(out, j.spec, canon))
			persist.End(obs.Bool("cache_write", err == nil))
			if err != nil {
				s.storeErrs.Add(1)
			}
		}
	}
	s.finish(j, res, nil)
}

// runSolverOutcome invokes the solver with this job's progress sink. A
// panicking solver is isolated here: the worker recovers, the panic value
// and stack become a *PanicError for this job alone, and the pool keeps
// serving every other job.
func (s *Service) runSolverOutcome(ctx context.Context, j *job, sym []autom.Perm) (out core.Outcome, err error) {
	j.setPhase("solve")
	solveSpan := j.trace.StartSpan(j.rootSpan, "solve")
	defer func() {
		if r := recover(); r != nil {
			stack := string(debug.Stack())
			s.panics.Add(1)
			s.logger.Error("solver panic isolated", "job", j.id, "tenant", j.tenant,
				"instance", j.g.Name(), "panic", fmt.Sprint(r), "stack", stack)
			err = &PanicError{Value: fmt.Sprint(r), Stack: stack}
			solveSpan.End(obs.String("panic", fmt.Sprint(r)))
			return
		}
		solveSpan.End(
			obs.String("status", out.Result.Status.String()),
			obs.Int("conflicts", out.Result.Stats.Conflicts),
			obs.Int("restarts", out.Result.Stats.Restarts),
		)
	}()
	effK := core.EffectiveK(j.g, j.spec.K)
	progress := func(p solverutil.Progress) { j.recordProgress(effK, p) }
	// Thread the solve span through the context so core.Solve's phases
	// (encode, sbp) and the per-engine / per-worker spans in pbsolver and
	// par nest under it; label the goroutine so CPU profiles attribute
	// solver samples to (tenant, job, phase).
	sctx := obs.ContextWithSpan(ctx, solveSpan)
	pprof.Do(sctx, pprof.Labels("tenant", j.tenant, "job", j.id, "phase", "solve"),
		func(ctx context.Context) {
			out = s.solve(ctx, j.g, j.spec, sym, progress)
		})
	s.solverRuns.Add(1)
	s.noteSBPVariant(out)
	return out, nil
}

// noteSBPVariant folds one outcome's symmetry-breaking work into the
// per-variant aggregates. Outcomes whose predicate layer never ran (Sym
// nil) contribute nothing.
func (s *Service) noteSBPVariant(out core.Outcome) {
	if out.Sym == nil {
		return
	}
	name := out.Sym.Variant.String()
	s.mu.Lock()
	st := s.sbpVariants[name]
	if st == nil {
		st = &SBPVariantStats{}
		s.sbpVariants[name] = st
	}
	st.Runs++
	st.Perms += int64(out.Sym.PredicatePerms)
	st.Clauses += int64(out.Sym.AddedCNF)
	s.mu.Unlock()
}

// Progress returns the job's latest progress snapshot. A Seq of 0 means
// the job has not reported yet (still queued, done before the first
// report, or served from the cache without running a solver).
func (s *Service) Progress(id string) (Progress, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Progress{}, ErrNoSuchJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.prog, nil
}

// NextProgress blocks until the job publishes a progress snapshot with
// Seq > afterSeq, the job reaches a terminal state, or ctx is done. It
// returns (snapshot, true, nil) for a new snapshot and (last, false, nil)
// once the job is terminal — the streaming consumer then reads the final
// JobInfo. Pass the returned Seq back in to iterate.
func (s *Service) NextProgress(ctx context.Context, id string, afterSeq int64) (Progress, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Progress{}, false, ErrNoSuchJob
	}
	for {
		j.mu.Lock()
		if j.prog.Seq > afterSeq {
			p := j.prog
			j.mu.Unlock()
			return p, true, nil
		}
		wake := j.progWake
		j.mu.Unlock()
		select {
		case <-wake:
			continue
		case <-j.done:
			// Terminal; report a snapshot that raced the finish, if any.
			j.mu.Lock()
			p := j.prog
			j.mu.Unlock()
			if p.Seq > afterSeq {
				return p, true, nil
			}
			return p, false, nil
		case <-ctx.Done():
			return Progress{}, false, ctx.Err()
		}
	}
}

// JobPhase reports the lifecycle stage the job is in right now ("queued",
// "canon", "solve", "persist", "done").
func (s *Service) JobPhase(id string) (string, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return "", ErrNoSuchJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.phase, nil
}

// TracingEnabled reports whether per-job tracing is on (Config.TraceKeep
// was not negative).
func (s *Service) TracingEnabled() bool { return s.recorder != nil }

// Trace returns the completed span tree for one job. ErrNoSuchJob when the
// id is unknown; ErrNoTrace when the job exists but no completed trace is
// available (still running, evicted from the recorder, or tracing off).
func (s *Service) Trace(id string) (*obs.TraceView, error) {
	if v, ok := s.recorder.Trace(id); ok {
		return v, nil
	}
	s.mu.Lock()
	_, known := s.jobs[id]
	s.mu.Unlock()
	if !known {
		return nil, ErrNoSuchJob
	}
	return nil, ErrNoTrace
}

// RecentTraces returns up to n completed traces, newest first (n <= 0 =
// everything the flight recorder holds).
func (s *Service) RecentTraces(n int) []*obs.TraceView {
	return s.recorder.Recent(n)
}

// PhaseStats snapshots the per-phase latency histograms aggregated over
// every recorded trace (nil when tracing is disabled), keyed by span name.
func (s *Service) PhaseStats() map[string]obs.Histogram {
	return s.recorder.Phases()
}

// TraceStats returns the flight recorder's own counters.
func (s *Service) TraceStats() obs.RecorderStats {
	return s.recorder.Stats()
}

// finish moves a job to its terminal state. A nil result means the job
// was cancelled (or, with j.expired set, its deadline elapsed in queue).
func (s *Service) finish(j *job, res *Result, err error) {
	j.mu.Lock()
	switch {
	case err != nil:
		j.state = StateFailed
		j.err = err
		s.failed.Add(1)
	case res == nil && j.expired && !j.canceled:
		j.state = StateExpired
		j.err = context.DeadlineExceeded
		s.expired.Add(1)
	case res == nil || j.canceled:
		j.state = StateCanceled
		if res != nil {
			j.result = res
		}
		s.canceled.Add(1)
	default:
		j.state = StateDone
		j.result = res
		s.completed.Add(1)
	}
	state := j.state
	queueWait := j.queueWait
	var solveTime time.Duration
	if !j.started.IsZero() {
		solveTime = time.Since(j.started)
	}
	j.finished = time.Now()
	j.phase = "done"
	j.mu.Unlock()
	close(j.done)

	// The job is terminal: retire its journal entry so a restart does not
	// resurrect it. Failures flip the journal degraded rather than
	// surfacing here (see DiskJournal); worst case a replay re-finishes an
	// already-answered job through the result cache.
	if s.journal != nil {
		persist := j.trace.StartSpan(j.rootSpan, "persist")
		err := s.journal.Done(j.id)
		persist.End(obs.Bool("journal_retire", err == nil))
		if err != nil {
			s.storeErrs.Add(1)
		}
	}

	// Finalize the trace: a queue span still open here means the job never
	// reached a worker (expired or cancelled in queue); End is idempotent
	// for the normal path. The completed trace lands in the flight
	// recorder, feeding /v1/jobs/{id}/trace and the phase histograms.
	j.queueSpan.End()
	j.rootSpan.End(obs.String("outcome", state.String()))
	s.recorder.Record(j.trace)

	// One structured record per finished job: who, what, how long it
	// waited and ran, and how it ended. With tracing on, the per-phase
	// durations and the trace id correlate this line with the job's span
	// tree (the trace id is the request id when the client sent one).
	attrs := []any{
		"tenant", j.tenant, "job", j.id, "instance", j.g.Name(),
		"outcome", state.String(),
		"queue_wait_ms", queueWait.Milliseconds(),
	}
	if j.trace != nil {
		attrs = append(attrs,
			"solve_ms", j.trace.PhaseDuration("solve").Milliseconds(),
			"canon_ms", j.trace.PhaseDuration("canon").Milliseconds(),
			"persist_ms", j.trace.PhaseDuration("persist").Milliseconds(),
			"trace", j.trace.ID(),
		)
	} else {
		attrs = append(attrs, "solve_ms", solveTime.Milliseconds())
	}
	if res != nil {
		cache := "miss"
		if res.CacheHit {
			cache = "hit"
		}
		attrs = append(attrs, "cache", cache, "status", res.Status.String(), "chi", res.Chi)
	}
	s.logger.Info("job finished", attrs...)

	// Release the tenant's in-flight slot and bound the job history:
	// forget the oldest finished jobs beyond MaxJobs (queued/running jobs
	// are never pruned).
	s.mu.Lock()
	if ts, ok := s.tenants[j.tenant]; ok {
		ts.inFlight--
	}
	s.finished = append(s.finished, j.id)
	for len(s.jobs) > s.cfg.MaxJobs && len(s.finished) > 0 {
		old := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, old)
	}
	s.mu.Unlock()
}

func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:        j.id,
		Tenant:    j.tenant,
		Instance:  j.g.Name(),
		Spec:      j.spec,
		State:     j.state.String(),
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		QueueWait: j.queueWait,
		Result:    j.result,
	}
	if j.err != nil {
		info.Err = j.err.Error()
		var pe *PanicError
		if errors.As(j.err, &pe) {
			info.Stack = pe.Stack
		}
	}
	return info
}

// resultFromOutcome converts a core outcome (already in the submitted
// graph's numbering) to a service result.
func resultFromOutcome(out core.Outcome, spec JobSpec, canonExact bool) *Result {
	res := &Result{
		Status:           out.Result.Status,
		Solved:           out.Solved(),
		Chi:              out.Chi,
		Coloring:         out.Coloring,
		Runtime:          out.Result.Runtime,
		Conflicts:        out.Result.Stats.Conflicts,
		ChronoBacktracks: out.Result.Stats.ChronoBacktracks,
		VivifiedLits:     out.Result.Stats.VivifiedLits,
		LBDUpdates:       out.Result.Stats.LBDUpdates,
		CanonExact:       canonExact,
	}
	if out.Sym != nil {
		res.SBPVariant = out.SBPVariant.String()
	}
	if out.Par != nil {
		res.ParWorkers = out.Par.Workers
		res.Cubes = out.Par.CubesGenerated
		res.CubesRefuted = out.Par.CubesRefuted
		res.CubesClosed = out.Par.CubesClosed
		res.ClausesShared = out.Par.ClausesExported
		res.ClausesImported = out.Par.ClausesImported
	}
	switch {
	case spec.Parallel > 1:
		res.Winner = out.Winner.String() // the engine par conquered with
	case spec.Portfolio:
		if res.Solved || res.Status == pbsolver.StatusSat {
			res.Winner = out.Winner.String()
		}
	default:
		res.Winner = spec.Engine.String()
	}
	return res
}

// canonicalize computes the canonical form of a plain (uncolored) graph.
func canonicalize(ctx context.Context, g *graph.Graph, maxNodes int64) *autom.Canonical {
	a := autom.NewGraph(g.N())
	for _, e := range g.Edges() {
		a.AddEdge(e[0], e[1])
	}
	return autom.CanonicalForm(a, autom.CanonicalOptions{MaxNodes: maxNodes, Context: ctx})
}

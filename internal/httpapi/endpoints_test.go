package httpapi

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint: /metrics serves the Prometheus text format with
// the service counters, reflecting real activity.
func TestMetricsEndpoint(t *testing.T) {
	srv, svc := startDaemon(t, "")
	id := submitJob(t, srv, `{"bench":"myciel3","k":6,"engine":"pbs2"}`)
	waitDone(t, srv, id)
	_ = svc

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE gcolord_jobs_submitted_total counter",
		"gcolord_jobs_submitted_total 1",
		"gcolord_solver_runs_total 1",
		"# TYPE gcolord_queue_depth gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	// No store configured: no store metrics.
	if strings.Contains(text, "gcolord_store_wal_bytes") {
		t.Fatalf("store metrics exposed without -store.dir:\n%s", text)
	}
}

// TestMetricsEndpointWithStore includes the persistent-store gauges.
func TestMetricsEndpointWithStore(t *testing.T) {
	srv, _ := startDaemon(t, t.TempDir())
	id := submitJob(t, srv, `{"bench":"myciel3","k":6}`)
	waitDone(t, srv, id)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"gcolord_store_entries", "gcolord_store_wal_bytes", "gcolord_store_gc_dropped_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestEventsResumeAfter: ?after=<seq> suppresses already-seen snapshots —
// a finished job streamed with a huge after yields only the result event,
// and a malformed after is a 400.
func TestEventsResumeAfter(t *testing.T) {
	srv, _ := startDaemon(t, "")
	id := submitJob(t, srv, `{"bench":"myciel4","k":8,"timeout":"2s"}`)

	// First stream: collect at least one progress seq, then disconnect.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Type     string `json:"type"`
			Progress *struct {
				Seq int64 `json:"seq"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == "progress" {
			lastSeq = ev.Progress.Seq
			break
		}
	}
	resp.Body.Close()
	if lastSeq == 0 {
		t.Fatal("no progress event on the first stream")
	}
	waitDone(t, srv, id)

	// Reconnect past everything: only the terminal result may arrive.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/events?after=1000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc = bufio.NewScanner(resp.Body)
	var types []string
	for sc.Scan() {
		var ev struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type != "heartbeat" {
			types = append(types, ev.Type)
		}
	}
	if len(types) != 1 || types[0] != "result" {
		t.Fatalf("resume past end: want only [result], got %v", types)
	}

	// Malformed after.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + id + "/events?after=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("after=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestParallelJobOverHTTP submits a cube-and-conquer job through the JSON
// API and reads its cube counters back from the result.
func TestParallelJobOverHTTP(t *testing.T) {
	srv, _ := startDaemon(t, "")
	id := submitJob(t, srv, `{"bench":"myciel4","k":8,"sbp":"NU","parallel":3,"cube_depth":4,"share_lbd":6}`)
	waitDone(t, srv, id)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Status     int   `json:"status"`
		Chi        int   `json:"chi"`
		ParWorkers int   `json:"par_workers"`
		Cubes      int64 `json:"cubes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Chi != 5 || res.ParWorkers != 3 || res.Cubes == 0 {
		t.Fatalf("parallel result over HTTP: %+v", res)
	}
}

// waitDone polls the job snapshot until it reaches a terminal state.
func waitDone(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch info.State {
		case "done", "failed", "canceled", "expired":
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
}

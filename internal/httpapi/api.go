// Package httpapi is gcolord's HTTP surface: the /v1 JSON API over
// service.Service, plus /metrics, /healthz, and the NDJSON event streams.
// It owns the API contract — tenancy (X-Tenant), request ids
// (X-Request-ID), strict submission decoding, the unified error envelope
// (errors.go), and the 429 + Retry-After backpressure mapping — so the
// daemon binary, the load generator, and the tests all drive the same
// code.
package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/service"
)

// Config configures the API handler.
type Config struct {
	// Service is the admission-controlled scheduler (required).
	Service *service.Service
	// Disk, when non-nil, enables /v1/store and the store metrics. It is
	// an interface (DiskBackend and ResilientBackend both satisfy it)
	// because a degraded-capable backend may have no store attached at any
	// given moment; leave it nil — not a typed-nil pointer — when no
	// persistent store is configured.
	Disk service.StoreStatser
	// Heartbeat is the idle keep-alive interval on event streams
	// (default 10s).
	Heartbeat time.Duration
	// RequestTimeout bounds each non-streaming /v1 request's handling via
	// its context (default 30s; < 0 disables). The NDJSON event streams
	// are exempt — they are long-lived by design and bounded by their own
	// heartbeat/disconnect logic.
	RequestTimeout time.Duration
	// EnablePprof additionally mounts /debug/pprof.
	EnablePprof bool
	// Logger receives one structured record per request (method, path,
	// status, tenant, request id, duration). nil disables logging.
	Logger *slog.Logger
	// MaxVertices / MaxEdges bound submitted graphs; larger submissions
	// are rejected with 413 graph_too_large (0 = 100000 vertices /
	// 10000000 edges).
	MaxVertices int
	MaxEdges    int
}

type api struct {
	cfg Config
	svc *service.Service
}

// New builds the complete gcolord handler.
func New(cfg Config) http.Handler {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	if cfg.MaxVertices <= 0 {
		cfg.MaxVertices = 100000
	}
	if cfg.MaxEdges <= 0 {
		cfg.MaxEdges = 10000000
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	a := &api{cfg: cfg, svc: cfg.Service}
	mux := http.NewServeMux()
	if cfg.EnablePprof {
		// Opt-in only: profiling endpoints leak operational detail, so
		// they stay off unless -pprof is passed for a field
		// investigation.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Catch-all so unknown routes answer with the error envelope instead
	// of net/http's plain-text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		apiError(w, r, http.StatusNotFound, ErrorDetail{
			Code: CodeNotFound, Message: "unknown route " + r.URL.Path,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", a.getOnly(a.readyz))
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/v1/stats", a.timed(a.getOnly(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, a.svc.Stats())
	})))
	mux.HandleFunc("/v1/store", a.timed(a.getOnly(func(w http.ResponseWriter, r *http.Request) {
		if a.cfg.Disk == nil {
			apiError(w, r, http.StatusNotFound, ErrorDetail{
				Code:    CodeNotFound,
				Message: "no persistent store configured (run with -store.dir)",
			})
			return
		}
		ds, ok := a.cfg.Disk.StoreStats()
		if !ok {
			apiError(w, r, http.StatusServiceUnavailable, ErrorDetail{
				Code:    CodeStoreDegraded,
				Message: "persistent store detached after write failures; running memory-only while reopen attempts continue",
			})
			return
		}
		writeJSON(w, http.StatusOK, ds)
	})))
	mux.HandleFunc("/v1/jobs", a.timed(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			a.submit(w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, a.svc.Jobs())
		default:
			apiError(w, r, http.StatusMethodNotAllowed, ErrorDetail{
				Code: CodeMethodNotAllowed, Message: "use GET or POST",
			})
		}
	}))
	mux.HandleFunc("/v1/jobs/", a.jobRoutes)
	mux.HandleFunc("/v1/trace/recent", a.timed(a.getOnly(a.recentTraces)))
	return withRequestID(withLogging(cfg.Logger, mux))
}

// readyz serves GET /readyz, the load-balancer readiness probe. Unlike
// /healthz (process liveness, always 200 while serving), readiness goes
// 503 the moment a drain starts, so rotations stop sending new work while
// in-flight jobs finish. The body reports the drain state, queue pressure,
// and disk-component health either way; a degraded store keeps the daemon
// ready (it still serves, memory-only) but is surfaced for alerting.
func (a *api) readyz(w http.ResponseWriter, r *http.Request) {
	st := a.svc.Stats()
	status := "ok"
	if st.StoreDegraded {
		status = "degraded"
	}
	if st.Draining {
		status = "draining"
	}
	body := map[string]any{
		"status":          status,
		"queue_depth":     st.QueueDepth,
		"running":         st.Running,
		"journal_pending": st.JournalPending,
		"store_degraded":  st.StoreDegraded,
	}
	if st.Draining {
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// timed bounds one non-streaming handler through the request context: a
// stalled downstream (e.g. a disk-wedged stats call) times the one request
// out instead of pinning a connection forever. Streaming routes never pass
// through here.
func (a *api) timed(h http.HandlerFunc) http.HandlerFunc {
	if a.cfg.RequestTimeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), a.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// jobRoutes dispatches /v1/jobs/{id}[/sub]. Every subroute except the
// NDJSON events stream runs under the per-request timeout.
func (a *api) jobRoutes(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if sub != "events" {
		a.timed(func(w http.ResponseWriter, r *http.Request) {
			a.jobRoute(w, r, id, sub)
		})(w, r)
		return
	}
	a.jobRoute(w, r, id, sub)
}

func (a *api) jobRoute(w http.ResponseWriter, r *http.Request, id, sub string) {
	switch {
	case r.Method == http.MethodDelete && sub == "":
		if err := a.svc.Cancel(id); err != nil {
			a.jobNotFound(w, r, id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
	case r.Method == http.MethodGet && sub == "":
		info, err := a.svc.Job(id)
		if err != nil {
			a.jobNotFound(w, r, id)
			return
		}
		writeJSON(w, http.StatusOK, info)
	case r.Method == http.MethodGet && sub == "events":
		a.streamEvents(w, r, id)
	case r.Method == http.MethodGet && sub == "result":
		a.result(w, r, id)
	case r.Method == http.MethodGet && sub == "trace":
		a.trace(w, r, id)
	case sub == "" || sub == "events" || sub == "result" || sub == "trace":
		apiError(w, r, http.StatusMethodNotAllowed, ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "unsupported method for this route",
		})
	default:
		apiError(w, r, http.StatusNotFound, ErrorDetail{
			Code: CodeNotFound, Message: "unknown route",
		})
	}
}

// result serves GET /v1/jobs/{id}/result: the result when there is one, a
// 202 snapshot while the job is pending, and a typed error envelope for
// terminal states that will never produce a result.
func (a *api) result(w http.ResponseWriter, r *http.Request, id string) {
	info, err := a.svc.Job(id)
	if err != nil {
		a.jobNotFound(w, r, id)
		return
	}
	if info.Result != nil {
		writeJSON(w, http.StatusOK, info.Result)
		return
	}
	switch info.State {
	case "expired":
		apiError(w, r, http.StatusGatewayTimeout, ErrorDetail{
			Code:    CodeDeadlineExceeded,
			Message: fmt.Sprintf("job %s: deadline elapsed while queued", id),
		})
	case "canceled":
		apiError(w, r, http.StatusGone, ErrorDetail{
			Code:    CodeJobCanceled,
			Message: fmt.Sprintf("job %s was canceled before producing a result", id),
		})
	case "failed":
		apiError(w, r, http.StatusInternalServerError, ErrorDetail{
			Code:    CodeJobFailed,
			Message: fmt.Sprintf("job %s failed: %s", id, info.Err),
		})
	default: // queued or running
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": info.State})
	}
}

func (a *api) jobNotFound(w http.ResponseWriter, r *http.Request, id string) {
	apiError(w, r, http.StatusNotFound, ErrorDetail{
		Code:    CodeJobNotFound,
		Message: fmt.Sprintf("no job %q", id),
	})
}

// getOnly wraps a handler with a 405 envelope for non-GET methods.
func (a *api) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			apiError(w, r, http.StatusMethodNotAllowed, ErrorDetail{
				Code: CodeMethodNotAllowed, Message: "use GET",
			})
			return
		}
		h(w, r)
	}
}

// JobRequest is the POST /v1/jobs body. Unknown fields are rejected
// (DisallowUnknownFields), so typos fail loudly instead of silently
// running with defaults.
type JobRequest struct {
	// Exactly one graph source: a named benchmark, an inline DIMACS .col
	// document, or an explicit vertex count + edge list.
	Bench  string   `json:"bench,omitempty"`
	Dimacs string   `json:"dimacs,omitempty"`
	Name   string   `json:"name,omitempty"`
	N      int      `json:"n,omitempty"`
	Edges  [][2]int `json:"edges,omitempty"`

	K   int    `json:"k,omitempty"`
	SBP string `json:"sbp,omitempty"`
	// SBPVariant selects the lex-leader construction of the predicate
	// layer: "full" (default), "involution", "canonset", or "race".
	// Answer-invariant and excluded from the result-cache key.
	SBPVariant        string `json:"sbp_variant,omitempty"`
	Engine            string `json:"engine,omitempty"`
	Portfolio         bool   `json:"portfolio,omitempty"`
	InstanceDependent bool   `json:"instance_dependent,omitempty"`
	Timeout           string `json:"timeout,omitempty"`

	// Admission fields: Priority is the queue class (0 = normal, up to
	// service.MaxPriority), Deadline the end-to-end budget including
	// queue time (Go duration string, e.g. "30s").
	Priority int    `json:"priority,omitempty"`
	Deadline string `json:"deadline,omitempty"`

	// Per-job solver search knobs (see service.JobSpec); all optional and
	// excluded from the isomorphism result cache's key.
	ChronoThreshold int   `json:"chrono_threshold,omitempty"`
	VivifyBudget    int64 `json:"vivify_budget,omitempty"`
	DynamicLBD      bool  `json:"dynamic_lbd,omitempty"`
	GlueLBD         int   `json:"glue_lbd,omitempty"`
	ReduceInterval  int64 `json:"reduce_interval,omitempty"`
	RestartBase     int64 `json:"restart_base,omitempty"`

	// Cube-and-conquer knobs: Parallel > 1 solves the job with that many
	// workers over generated cubes; CubeDepth and ShareLBD tune the split
	// and the learnt-clause exchange. Also excluded from the cache key.
	Parallel  int `json:"parallel,omitempty"`
	CubeDepth int `json:"cube_depth,omitempty"`
	ShareLBD  int `json:"share_lbd,omitempty"`
}

// Graph materializes the request's graph source.
func (r *JobRequest) Graph() (*graph.Graph, error) {
	sources := 0
	for _, has := range []bool{r.Bench != "", r.Dimacs != "", len(r.Edges) > 0 || r.N > 0} {
		if has {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("specify exactly one of bench, dimacs, or n+edges")
	}
	switch {
	case r.Bench != "":
		return graph.Benchmark(r.Bench)
	case r.Dimacs != "":
		name := r.Name
		if name == "" {
			name = "dimacs"
		}
		return graph.ParseDimacs(name, strings.NewReader(r.Dimacs))
	default:
		name := r.Name
		if name == "" {
			name = "edges"
		}
		g := graph.New(name, r.N)
		for _, e := range r.Edges {
			if e[0] < 0 || e[1] < 0 || e[0] >= r.N || e[1] >= r.N {
				return nil, fmt.Errorf("edge (%d,%d) out of range [0,%d)", e[0], e[1], r.N)
			}
			g.AddEdge(e[0], e[1])
		}
		return g, nil
	}
}

// Spec converts the request's solver parameters to a JobSpec. Bounds are
// checked later by JobSpec.Validate (via service.SubmitTenant).
func (r *JobRequest) Spec() (service.JobSpec, error) {
	var spec service.JobSpec
	kind, err := service.ParseSBP(r.SBP)
	if err != nil {
		return spec, err
	}
	variant, err := service.ParseSBPVariant(r.SBPVariant)
	if err != nil {
		return spec, err
	}
	eng, err := service.ParseEngine(r.Engine)
	if err != nil {
		return spec, err
	}
	spec = service.JobSpec{
		K: r.K, SBP: kind, SBPVariant: variant, Engine: eng,
		Portfolio: r.Portfolio, InstanceDependent: r.InstanceDependent,
		Priority:        r.Priority,
		ChronoThreshold: r.ChronoThreshold, VivifyBudget: r.VivifyBudget,
		DynamicLBD: r.DynamicLBD,
		GlueLBD:    r.GlueLBD, ReduceInterval: r.ReduceInterval, RestartBase: r.RestartBase,
		Parallel: r.Parallel, CubeDepth: r.CubeDepth, ShareLBD: r.ShareLBD,
	}
	if r.Timeout != "" {
		d, err := time.ParseDuration(r.Timeout)
		if err != nil {
			return spec, fmt.Errorf("timeout: %w", err)
		}
		spec.Timeout = d
	}
	if r.Deadline != "" {
		d, err := time.ParseDuration(r.Deadline)
		if err != nil {
			return spec, fmt.Errorf("deadline: %w", err)
		}
		spec.Deadline = d
	}
	return spec, nil
}

// submit handles POST /v1/jobs: strict decode, graph-size limits, then
// tenant-aware admission with typed 429 backpressure.
func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		apiError(w, r, http.StatusBadRequest, ErrorDetail{
			Code: CodeInvalidSpec, Message: "bad json: " + err.Error(),
		})
		return
	}
	g, err := req.Graph()
	if err != nil {
		apiError(w, r, http.StatusBadRequest, ErrorDetail{
			Code: CodeInvalidSpec, Message: err.Error(),
		})
		return
	}
	if g.N() > a.cfg.MaxVertices || g.M() > a.cfg.MaxEdges {
		apiError(w, r, http.StatusRequestEntityTooLarge, ErrorDetail{
			Code: CodeGraphTooLarge,
			Message: fmt.Sprintf("graph has %d vertices / %d edges; this daemon accepts at most %d / %d",
				g.N(), g.M(), a.cfg.MaxVertices, a.cfg.MaxEdges),
		})
		return
	}
	spec, err := req.Spec()
	if err != nil {
		apiError(w, r, http.StatusBadRequest, ErrorDetail{
			Code: CodeInvalidSpec, Message: err.Error(),
		})
		return
	}
	// The request id doubles as the trace correlation id, so the
	// X-Request-ID a client sent (or we generated) finds the job's span
	// tree under /v1/jobs/{id}/trace.
	id, err := a.svc.SubmitTenantTraced(tenantOf(r), requestID(r), g, spec)
	if err != nil {
		a.submitError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "request_id": requestID(r)})
}

// submitError maps service.SubmitTenant failures onto the envelope:
// validation → 400, backpressure → 429 + Retry-After, shutdown → 503.
func (a *api) submitError(w http.ResponseWriter, r *http.Request, err error) {
	var verr *service.ValidationError
	var adm *service.AdmissionError
	switch {
	case errors.As(err, &verr):
		apiError(w, r, http.StatusBadRequest, ErrorDetail{
			Code: CodeInvalidSpec, Message: "invalid job spec", Fields: verr.Fields,
		})
	case errors.As(err, &adm):
		if adm.Reason == service.ReasonDraining {
			// Draining is not backpressure: this instance is going away.
			// 503 + Retry-After tells a balanced client to try a peer (or
			// the restarted instance) rather than hammer this one.
			apiError(w, r, http.StatusServiceUnavailable, ErrorDetail{
				Code:         CodeDraining,
				Message:      err.Error(),
				RetryAfterMS: retryMS(adm.RetryAfter),
			})
			return
		}
		code := CodeQueueFull
		if adm.Reason == service.ReasonOverQuota {
			code = CodeTenantOverQuota
		}
		apiError(w, r, http.StatusTooManyRequests, ErrorDetail{
			Code:         code,
			Message:      err.Error(),
			RetryAfterMS: retryMS(adm.RetryAfter),
		})
	case errors.Is(err, service.ErrClosed):
		apiError(w, r, http.StatusServiceUnavailable, ErrorDetail{
			Code: CodeUnavailable, Message: "service is shutting down",
		})
	default:
		apiError(w, r, http.StatusInternalServerError, ErrorDetail{
			Code: CodeInternal, Message: err.Error(),
		})
	}
}

// trace serves GET /v1/jobs/{id}/trace: the job's completed span tree
// from the flight recorder. 404 job_not_found for unknown ids; 404
// not_found when the job exists but no completed trace is available
// (still running, evicted by -trace.keep, or tracing disabled).
func (a *api) trace(w http.ResponseWriter, r *http.Request, id string) {
	v, err := a.svc.Trace(id)
	if err != nil {
		if errors.Is(err, service.ErrNoSuchJob) {
			a.jobNotFound(w, r, id)
			return
		}
		apiError(w, r, http.StatusNotFound, ErrorDetail{
			Code:    CodeNotFound,
			Message: fmt.Sprintf("no completed trace for job %s (still running, evicted, or tracing disabled)", id),
		})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// recentTraces serves GET /v1/trace/recent?n=: the newest completed
// traces in the flight recorder, newest first (default 20).
func (a *api) recentTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			apiError(w, r, http.StatusBadRequest, ErrorDetail{
				Code: CodeInvalidSpec, Message: "n must be a positive integer",
			})
			return
		}
		n = parsed
	}
	views := a.svc.RecentTraces(n)
	if views == nil {
		views = []*obs.TraceView{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": views})
}

// event is one NDJSON line on a /v1/jobs/{id}/events stream.
type event struct {
	// Type is "progress" (live solver counters), "heartbeat" (stream
	// keep-alive while the search is between reports), or "result" (the
	// terminal event: the job's final snapshot; the stream closes after
	// it).
	Type string `json:"type"`
	// TS is the server's wall-clock timestamp for the event, so clients
	// can show staleness without trusting their own clock skew.
	TS time.Time `json:"ts"`
	// Phase names the job's lifecycle stage at emission time ("queued",
	// "canon", "solve", "persist", "done") — the live phase indicator
	// `gcolor -progress` renders.
	Phase    string            `json:"phase,omitempty"`
	Progress *service.Progress `json:"progress,omitempty"`
	Job      *service.JobInfo  `json:"job,omitempty"`
}

// streamEvents serves the NDJSON progress stream for one job: progress
// events as the solver reports, heartbeats while idle, one terminal
// result event, then EOF. An already-finished job yields just the result
// event. A reconnecting client passes ?after=<seq> (the Seq of the last
// progress event it saw) to resume without replaying: only snapshots
// newer than that are sent. The service keeps the latest snapshot per
// job, so "resume" means "skip stale", never "replay history".
func (a *api) streamEvents(w http.ResponseWriter, r *http.Request, id string) {
	if _, err := a.svc.Job(id); err != nil {
		a.jobNotFound(w, r, id)
		return
	}
	var after int64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			apiError(w, r, http.StatusBadRequest, ErrorDetail{
				Code:    CodeInvalidSpec,
				Message: "after must be a non-negative integer sequence number",
			})
			return
		}
		after = n
	}
	fl, ok := flusher(w)
	if !ok {
		apiError(w, r, http.StatusInternalServerError, ErrorDetail{
			Code: CodeInternal, Message: "streaming unsupported by this connection",
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(ev event) bool {
		ev.TS = time.Now()
		if err := enc.Encode(ev); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	seq := after
	for {
		hbCtx, cancel := context.WithTimeout(r.Context(), a.cfg.Heartbeat)
		p, more, err := a.svc.NextProgress(hbCtx, id, seq)
		cancel()
		switch {
		case err == nil && more:
			seq = p.Seq
			if !emit(event{Type: "progress", Phase: p.Phase, Progress: &p}) {
				return
			}
		case err == nil && !more:
			info, jerr := a.svc.Job(id)
			if jerr != nil {
				return // pruned between calls
			}
			emit(event{Type: "result", Phase: "done", Job: &info})
			return
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			phase, _ := a.svc.JobPhase(id)
			if !emit(event{Type: "heartbeat", Phase: phase}) {
				return
			}
		default:
			return // client went away, or the job record was pruned
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// --- middleware ---

type ctxKey int

const requestIDKey ctxKey = 0

// requestID returns the request's id (set by withRequestID; "" outside
// the middleware, e.g. in unit tests hitting handlers directly).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// tenantOf maps the X-Tenant header to the service tenant ("" falls
// through to the service's "default").
func tenantOf(r *http.Request) string {
	return strings.TrimSpace(r.Header.Get("X-Tenant"))
}

// withRequestID attaches an id to every request: the client's
// X-Request-ID when present, a generated one otherwise. The id is echoed
// on the response header, embedded in error envelopes, and logged.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimSpace(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

func newRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "req-unknown"
	}
	return hex.EncodeToString(buf[:])
}

// withLogging emits one structured record per request.
func withLogging(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"tenant", tenantOf(r),
			"request_id", requestID(r),
			"duration_ms", time.Since(start).Milliseconds(),
		)
	})
}

// statusRecorder captures the response status for the request log while
// passing Flush through so NDJSON streaming keeps working.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// flusher unwraps the ResponseWriter to find a Flusher (the logging
// wrapper hides the concrete type).
func flusher(w http.ResponseWriter) (http.Flusher, bool) {
	for {
		switch v := w.(type) {
		case *statusRecorder:
			w = v.ResponseWriter
		case http.Flusher:
			return v, true
		default:
			return nil, false
		}
	}
}

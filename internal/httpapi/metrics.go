package httpapi

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/obs"
	"repro/internal/service"
)

// metrics serves GET /metrics in the Prometheus text exposition format
// (version 0.0.4): the cumulative service counters, the scheduler and
// admission gauges, the per-tenant accept/reject/in-flight series, the
// queue-wait histogram, and — when a persistent store is configured —
// the store's file-size and GC counters. Everything here mirrors the
// JSON under /v1/stats and /v1/store; the text form exists so a stock
// Prometheus scrape needs no adapter.
func (a *api) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, r, http.StatusMethodNotAllowed, ErrorDetail{
			Code: CodeMethodNotAllowed, Message: "use GET",
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := a.svc.Stats()
	header := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP gcolord_%s %s\n# TYPE gcolord_%s %s\n", name, help, name, typ)
	}
	counter := func(name, help string, v int64) {
		header(name, help, "counter")
		fmt.Fprintf(w, "gcolord_%s %d\n", name, v)
	}
	gauge := func(name, help string, v int64) {
		header(name, help, "gauge")
		fmt.Fprintf(w, "gcolord_%s %d\n", name, v)
	}
	counter("jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", st.Submitted)
	counter("jobs_completed_total", "Jobs finished with a result.", st.Completed)
	counter("jobs_failed_total", "Jobs that failed.", st.Failed)
	counter("jobs_canceled_total", "Jobs canceled or timed out before a result.", st.Canceled)
	counter("jobs_expired_total", "Jobs whose deadline elapsed while still queued.", st.Expired)
	counter("solver_runs_total", "Actual solver invocations (cache misses).", st.SolverRuns)
	counter("cache_hits_total", "Results served from the cache backend.", st.CacheHits)
	counter("dedup_joins_total", "Submissions that joined an identical in-flight solve.", st.DedupJoins)
	counter("store_errors_total", "Failed cache-backend writes.", st.StoreErrors)
	counter("canon_inexact_total", "Canonical searches truncated by their node budget.", st.CanonInexact)
	counter("inexact_skips_total", "Solved results not persisted because their canonical key was inexact.", st.InexactSkips)
	counter("canon_generators_total", "Automorphism generators discovered by canonical labeling searches.", st.CanonGenerators)
	counter("canon_orbit_prunes_total", "Canonical search subtrees skipped via discovered-automorphism orbits.", st.CanonOrbitPrunes)
	counter("canon_prefix_prunes_total", "Canonical search subtrees cut by incumbent prefix comparison.", st.CanonPrefixPrunes)

	// Per-SBP-variant predicate emission, labeled and sorted so scrapes
	// are deterministic. Rows appear once a variant's predicate layer has
	// run at least once.
	variants := make([]string, 0, len(st.SBPVariants))
	for name := range st.SBPVariants {
		variants = append(variants, name)
	}
	sort.Strings(variants)
	header("sbp_runs_total", "Solver runs that emitted symmetry-breaking predicates, per SBP variant.", "counter")
	for _, name := range variants {
		fmt.Fprintf(w, "gcolord_sbp_runs_total{variant=%q} %d\n", name, st.SBPVariants[name].Runs)
	}
	header("sbp_perms_total", "Lex-leader permutations emitted, per SBP variant.", "counter")
	for _, name := range variants {
		fmt.Fprintf(w, "gcolord_sbp_perms_total{variant=%q} %d\n", name, st.SBPVariants[name].Perms)
	}
	header("sbp_clauses_total", "CNF clauses added by symmetry-breaking predicates, per SBP variant.", "counter")
	for _, name := range variants {
		fmt.Fprintf(w, "gcolord_sbp_clauses_total{variant=%q} %d\n", name, st.SBPVariants[name].Clauses)
	}

	counter("solver_panics_total", "Solver panics isolated into per-job failures.", st.Panics)
	counter("jobs_replayed_total", "Jobs resurrected from the job journal at startup.", st.Replayed)

	// Admission rejections, labeled by the envelope's error code.
	header("rejects_total", "Submissions refused at admission, by reason.", "counter")
	fmt.Fprintf(w, "gcolord_rejects_total{reason=%q} %d\n", service.ReasonQueueFull, st.RejectsQueueFull)
	fmt.Fprintf(w, "gcolord_rejects_total{reason=%q} %d\n", service.ReasonOverQuota, st.RejectsOverQuota)
	fmt.Fprintf(w, "gcolord_rejects_total{reason=%q} %d\n", service.ReasonInvalidSpec, st.RejectsInvalidSpec)
	fmt.Fprintf(w, "gcolord_rejects_total{reason=%q} %d\n", service.ReasonDraining, st.RejectsDraining)

	// Per-tenant admission series, sorted so scrapes are deterministic.
	tenants := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	header("tenant_accepts_total", "Admitted submissions per tenant.", "counter")
	for _, name := range tenants {
		fmt.Fprintf(w, "gcolord_tenant_accepts_total{tenant=%q} %d\n", name, st.Tenants[name].Accepts)
	}
	header("tenant_rejects_total", "Rate-limit and quota rejections per tenant.", "counter")
	for _, name := range tenants {
		fmt.Fprintf(w, "gcolord_tenant_rejects_total{tenant=%q} %d\n", name, st.Tenants[name].Rejects)
	}
	header("tenant_in_flight", "Queued plus running jobs per tenant.", "gauge")
	for _, name := range tenants {
		fmt.Fprintf(w, "gcolord_tenant_in_flight{tenant=%q} %d\n", name, int64(st.Tenants[name].InFlight))
	}

	// Queue-wait histogram. The service keeps per-bucket counts; the
	// exposition format wants cumulative le-buckets ending at +Inf.
	header("queue_wait_seconds", "Time jobs spend queued before a worker picks them up.", "histogram")
	var cum int64
	for _, b := range st.QueueWait.Buckets {
		cum += b.Count
		le := "+Inf"
		if b.LEms >= 0 {
			le = strconv.FormatFloat(float64(b.LEms)/1000, 'g', -1, 64)
		}
		fmt.Fprintf(w, "gcolord_queue_wait_seconds_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(w, "gcolord_queue_wait_seconds_sum %g\n", float64(st.QueueWait.SumMS)/1000)
	fmt.Fprintf(w, "gcolord_queue_wait_seconds_count %d\n", st.QueueWait.Count)

	// Per-phase latency histograms from the trace flight recorder, one
	// labeled series per span name, sorted for deterministic scrapes.
	// Absent entirely when tracing is disabled (-trace.keep=0).
	if a.svc.TracingEnabled() {
		phases := a.svc.PhaseStats()
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		header("phase_seconds", "Time spent per job lifecycle phase, from completed traces.", "histogram")
		for _, name := range names {
			h := phases[name]
			var cum int64
			for i, c := range h.Buckets {
				cum += c
				le := "+Inf"
				if i < len(obs.PhaseBuckets) {
					le = strconv.FormatFloat(obs.PhaseBuckets[i], 'g', -1, 64)
				}
				fmt.Fprintf(w, "gcolord_phase_seconds_bucket{phase=%q,le=%q} %d\n", name, le, cum)
			}
			fmt.Fprintf(w, "gcolord_phase_seconds_sum{phase=%q} %g\n", name, h.SumSeconds)
			fmt.Fprintf(w, "gcolord_phase_seconds_count{phase=%q} %d\n", name, h.Count)
		}
		ts := a.svc.TraceStats()
		counter("traces_recorded_total", "Completed job traces recorded by the flight recorder.", ts.Completed)
		counter("traces_evicted_total", "Traces pushed out of the flight recorder ring by newer ones.", ts.Evicted)
		gauge("traces_kept", "Completed traces currently held by the flight recorder.", int64(ts.Kept))
	}

	gauge("cache_entries", "Definitive records in the cache backend.", int64(st.CacheEntries))
	gauge("in_flight", "Solves currently leading a singleflight group.", int64(st.InFlight))
	gauge("queue_depth", "Jobs queued but not yet started.", int64(st.QueueDepth))
	gauge("running", "Jobs currently solving.", int64(st.Running))
	gauge("draining", "1 while admission is refusing new work for shutdown.", b2i(st.Draining))
	gauge("store_degraded", "1 while a disk-backed component runs memory-only.", b2i(st.StoreDegraded))
	gauge("journal_pending", "Journaled jobs not yet terminal.", int64(st.JournalPending))

	// Degraded-mode detail per disk-backed component, labeled so the cache
	// backend and the job journal alert independently.
	components := []struct {
		name string
		h    *service.Health
	}{{"cache", st.StoreHealth}, {"journal", st.JournalHealth}}
	header("component_degraded", "Whether this disk-backed component is running memory-only.", "gauge")
	for _, c := range components {
		if c.h != nil {
			fmt.Fprintf(w, "gcolord_component_degraded{component=%q} %d\n", c.name, b2i(c.h.Degraded))
		}
	}
	header("component_degraded_flips_total", "Healthy-to-degraded transitions per component.", "counter")
	for _, c := range components {
		if c.h != nil {
			fmt.Fprintf(w, "gcolord_component_degraded_flips_total{component=%q} %d\n", c.name, c.h.Flips)
		}
	}
	header("component_reopen_attempts_total", "Background attempts to reattach the component's disk.", "counter")
	for _, c := range components {
		if c.h != nil {
			fmt.Fprintf(w, "gcolord_component_reopen_attempts_total{component=%q} %d\n", c.name, c.h.ReopenAttempts)
		}
	}
	header("component_write_errors_total", "Writes that failed or were diverted to memory, per component.", "counter")
	for _, c := range components {
		if c.h != nil {
			fmt.Fprintf(w, "gcolord_component_write_errors_total{component=%q} %d\n", c.name, c.h.Errors)
		}
	}

	if a.cfg.Disk != nil {
		if ds, ok := a.cfg.Disk.StoreStats(); ok {
			gauge("store_entries", "Live records in the persistent store.", int64(ds.Entries))
			gauge("store_wal_bytes", "Current WAL size in bytes.", ds.WALBytes)
			gauge("store_snapshot_bytes", "Current snapshot size in bytes.", ds.SnapshotBytes)
			counter("store_tail_dropped_total", "Corrupt or truncated tail records dropped at startup.", int64(ds.TailDropped))
			counter("store_compactions_total", "Completed WAL-into-snapshot compactions.", ds.Compactions)
			counter("store_gc_dropped_total", "Records removed by the TTL/size GC policy.", ds.GCDropped)
		}
	}
}

// b2i renders a boolean as a 0/1 gauge value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

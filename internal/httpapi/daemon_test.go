package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// startDaemon spins up the full handler over a real service (real solver)
// backed by dir (memory backend when dir is "").
func startDaemon(t *testing.T, dir string) (*httptest.Server, *service.Service) {
	t.Helper()
	var backend service.Backend
	var disk *service.DiskBackend
	if dir != "" {
		var err error
		disk, err = service.OpenDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		backend = disk
	}
	svc := service.New(service.Config{
		Workers:          2,
		DefaultTimeout:   30 * time.Second,
		Backend:          backend,
		ProgressInterval: time.Millisecond,
	})
	cfg := Config{Service: svc, Heartbeat: 50 * time.Millisecond}
	if disk != nil { // assign only when real: a typed-nil interface would read as configured
		cfg.Disk = disk
	}
	srv := httptest.NewServer(New(cfg))
	t.Cleanup(func() {
		srv.Close()
		svc.CancelAll()
		svc.Close()
	})
	return srv, svc
}

func submitJob(t *testing.T, srv *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

// TestEventsStream drives a real (small but non-trivial) solve through the
// daemon and asserts the NDJSON stream yields progress events before the
// terminal result event.
func TestEventsStream(t *testing.T) {
	srv, _ := startDaemon(t, "")
	// myciel4 at K=8 finds a feasible coloring quickly but cannot prove
	// optimality, so the 2s budget guarantees ~2s of live search — plenty
	// of crossings of the 1ms progress interval — with a deterministic
	// test duration. (The solved-terminal path is covered by
	// TestKillAndRestartServesFromDisk.)
	id := submitJob(t, srv, `{"bench":"myciel4","k":8,"engine":"pbs2","timeout":"2s"}`)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events: content-type %q", ct)
	}

	type ev struct {
		Type     string            `json:"type"`
		Progress *service.Progress `json:"progress"`
		Job      *service.JobInfo  `json:"job"`
	}
	var progressEvents, heartbeats int
	var terminal *ev
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var e ev
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch e.Type {
		case "progress":
			progressEvents++
			if e.Progress == nil || e.Progress.Conflicts < 0 {
				t.Fatalf("malformed progress event: %s", line)
			}
		case "heartbeat":
			heartbeats++
		case "result":
			terminal = &e
		default:
			t.Fatalf("unknown event type %q", e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if terminal == nil {
		t.Fatal("stream ended without a result event")
	}
	if progressEvents == 0 {
		t.Fatal("no progress events before the terminal result")
	}
	if terminal.Job == nil || terminal.Job.Result == nil {
		t.Fatalf("terminal event lacks a result: %+v", terminal.Job)
	}
	if terminal.Job.State != "done" {
		t.Fatalf("terminal state = %q, want done", terminal.Job.State)
	}
	t.Logf("stream: %d progress events, %d heartbeats, final status %s",
		progressEvents, heartbeats, terminal.Job.Result.Status)
}

// TestEventsStreamFinishedJob: opening the stream after the job finished
// yields the last progress snapshot (if the solve ever reported one) and
// then the terminal event, immediately — no waiting, no heartbeats.
func TestEventsStreamFinishedJob(t *testing.T) {
	srv, svc := startDaemon(t, "")
	id := submitJob(t, srv, `{"bench":"myciel3","k":5}`)
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var types []string
	for sc.Scan() {
		var e struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		types = append(types, e.Type)
	}
	if len(types) == 0 || types[len(types)-1] != "result" {
		t.Fatalf("finished-job stream = %v, want ... result", types)
	}
	for _, ty := range types[:len(types)-1] {
		if ty != "progress" {
			t.Fatalf("finished-job stream = %v: unexpected %q", types, ty)
		}
	}
}

// TestEventsUnknownJob: 404 with a JSON error body.
func TestEventsUnknownJob(t *testing.T) {
	srv, _ := startDaemon(t, "")
	resp, err := http.Get(srv.URL + "/v1/jobs/job-999/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestKillAndRestartServesFromDisk is the daemon-level acceptance
// scenario: solve through one daemon with a store directory, tear it down,
// start a second daemon over the same directory, submit an isomorphic
// relabeling, and require a cache hit with zero solver runs.
func TestKillAndRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	srv1, svc1 := startDaemon(t, dir)
	id := submitJob(t, srv1, `{"bench":"queen5_5","k":5}`)
	info, err := svc1.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || !info.Result.Solved {
		t.Fatalf("first daemon failed to solve: %+v", info)
	}
	srv1.Close()
	svc1.Close()

	// Second life. Submit queen5_5 relabelled by an explicit edge list
	// (reversed vertex numbering — an isomorphic copy the daemon has
	// never seen under this name).
	srv2, svc2 := startDaemon(t, dir)
	g := queenGraphEdges(5)
	n := 25
	var edges []string
	for _, e := range g {
		edges = append(edges, fmt.Sprintf("[%d,%d]", n-1-e[0], n-1-e[1]))
	}
	body := fmt.Sprintf(`{"name":"queen5_5-relabeled","n":%d,"edges":[%s],"k":5}`,
		n, strings.Join(edges, ","))
	id2 := submitJob(t, srv2, body)
	info2, err := svc2.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Result == nil || !info2.Result.Solved {
		t.Fatalf("second daemon failed: %+v", info2)
	}
	if !info2.Result.CacheHit {
		t.Fatal("restarted daemon did not serve the isomorphic submission from disk")
	}
	if st := svc2.Stats(); st.SolverRuns != 0 {
		t.Fatalf("restarted daemon ran %d solves, want 0", st.SolverRuns)
	}

	// The store endpoint reports the persisted state.
	resp, err := http.Get(srv2.URL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var storeStats struct {
		Entries int `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&storeStats); err != nil {
		t.Fatal(err)
	}
	if storeStats.Entries != 1 {
		t.Fatalf("store entries = %d, want 1", storeStats.Entries)
	}
}

// queenGraphEdges reproduces the queen graph's edge set (two squares
// attack each other on a row, column, or diagonal) without going through
// the benchmark registry, so the test controls the vertex numbering.
func queenGraphEdges(n int) [][2]int {
	var edges [][2]int
	for a := 0; a < n*n; a++ {
		for b := a + 1; b < n*n; b++ {
			r1, c1 := a/n, a%n
			r2, c2 := b/n, b%n
			if r1 == r2 || c1 == c2 || r1-c1 == r2-c2 || r1+c1 == r2+c2 {
				edges = append(edges, [2]int{a, b})
			}
		}
	}
	return edges
}

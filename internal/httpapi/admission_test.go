package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/solverutil"
)

// startStub serves the full handler over a service with a test solver, so
// admission behavior can be driven without real solves.
func startStub(t *testing.T, cfg service.Config, api Config) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(cfg)
	api.Service = svc
	srv := httptest.NewServer(New(api))
	t.Cleanup(func() {
		srv.Close()
		svc.CancelAll()
		svc.Close()
	})
	return srv, svc
}

// blockingSolve parks every solve until gate closes (or the job context
// ends) and counts invocations.
func blockingSolve(gate chan struct{}, runs *atomic.Int64) service.SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec service.JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		runs.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return core.Outcome{Instance: g.Name()}
	}
}

// pathJobJSON builds a submission body for a path graph of n vertices —
// paths of distinct lengths are pairwise non-isomorphic, so test jobs
// never collapse into cache or dedup joins.
func pathJobJSON(name string, n int, extra string) string {
	var edges []string
	for v := 0; v+1 < n; v++ {
		edges = append(edges, fmt.Sprintf("[%d,%d]", v, v+1))
	}
	return fmt.Sprintf(`{"name":%q,"n":%d,"edges":[%s],"k":5%s}`,
		name, n, strings.Join(edges, ","), extra)
}

func doReq(t *testing.T, method, url, body string, header map[string]string) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeEnvelope parses the unified error envelope, failing the test if
// the body is not one.
func decodeEnvelope(t *testing.T, resp *http.Response) ErrorDetail {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response content-type %q, want application/json", ct)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not an envelope: %v", err)
	}
	if env.Error.Code == "" {
		t.Fatal("error envelope has empty code")
	}
	return env.Error
}

// TestErrorEnvelopeEverywhere: every failure class on every endpoint
// answers with the unified envelope and its documented code + status.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, _ := startStub(t,
		service.Config{Workers: 1, Solve: blockingSolve(gate, &runs)},
		Config{MaxVertices: 50, MaxEdges: 100})
	defer close(gate)

	bigGraph := pathJobJSON("big", 51, "")
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"bad json", "POST", "/v1/jobs", "{not json", 400, CodeInvalidSpec},
		{"unknown field", "POST", "/v1/jobs", `{"bench":"myciel3","k":5,"bogus":1}`, 400, CodeInvalidSpec},
		{"no graph source", "POST", "/v1/jobs", `{"k":5}`, 400, CodeInvalidSpec},
		{"spec out of bounds", "POST", "/v1/jobs", pathJobJSON("neg", 3, `,"priority":-1`), 400, CodeInvalidSpec},
		{"graph too large", "POST", "/v1/jobs", bigGraph, 413, CodeGraphTooLarge},
		{"job status 404", "GET", "/v1/jobs/job-999", "", 404, CodeJobNotFound},
		{"job result 404", "GET", "/v1/jobs/job-999/result", "", 404, CodeJobNotFound},
		{"job events 404", "GET", "/v1/jobs/job-999/events", "", 404, CodeJobNotFound},
		{"cancel 404", "DELETE", "/v1/jobs/job-999", "", 404, CodeJobNotFound},
		{"unknown route", "GET", "/v1/bogus", "", 404, CodeNotFound},
		{"unknown subresource", "GET", "/v1/jobs/job-999/bogus", "", 404, CodeNotFound},
		{"store unconfigured", "GET", "/v1/store", "", 404, CodeNotFound},
		{"stats wrong method", "POST", "/v1/stats", "", 405, CodeMethodNotAllowed},
		{"jobs wrong method", "PUT", "/v1/jobs", "", 405, CodeMethodNotAllowed},
		{"job wrong method", "PUT", "/v1/jobs/job-999", "", 405, CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doReq(t, tc.method, srv.URL+tc.path, tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				resp.Body.Close()
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			detail := decodeEnvelope(t, resp)
			if detail.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", detail.Code, tc.wantCode)
			}
			if detail.RequestID == "" {
				t.Fatal("envelope lacks a request id")
			}
		})
	}
	if runs.Load() != 0 {
		t.Fatalf("rejected submissions invoked the solver %d times", runs.Load())
	}
}

// TestValidationFieldsOverHTTP: out-of-bounds spec values come back as
// per-field errors inside the envelope.
func TestValidationFieldsOverHTTP(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, _ := startStub(t, service.Config{Workers: 1, Solve: blockingSolve(gate, &runs)}, Config{})
	defer close(gate)

	resp := doReq(t, "POST", srv.URL+"/v1/jobs",
		pathJobJSON("bad", 3, `,"priority":99,"parallel":-2`), nil)
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	detail := decodeEnvelope(t, resp)
	if detail.Code != CodeInvalidSpec {
		t.Fatalf("code = %q", detail.Code)
	}
	got := map[string]bool{}
	for _, f := range detail.Fields {
		got[f.Field] = true
	}
	if !got["priority"] || !got["parallel"] {
		t.Fatalf("fields = %+v, want priority and parallel", detail.Fields)
	}
}

// TestQueueFullBackpressure: saturating the queue yields 429 queue_full
// with both retry_after_ms and a Retry-After header, and burns no worker.
func TestQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, _ := startStub(t,
		service.Config{Workers: 1, QueueDepth: 2, Solve: blockingSolve(gate, &runs)},
		Config{})
	defer close(gate)

	var rejected *http.Response
	for i := 0; i < 10; i++ {
		resp := doReq(t, "POST", srv.URL+"/v1/jobs", pathJobJSON("q", 3+i, ""), nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if rejected == nil {
		t.Fatal("queue never filled")
	}
	if ra := rejected.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 lacks a Retry-After header")
	}
	detail := decodeEnvelope(t, rejected)
	if detail.Code != CodeQueueFull {
		t.Fatalf("code = %q, want %q", detail.Code, CodeQueueFull)
	}
	if detail.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", detail.RetryAfterMS)
	}
	if runs.Load() > 1 {
		t.Fatalf("rejected submissions reached the solver: %d runs", runs.Load())
	}
}

// TestTenantQuotaOverHTTP: one tenant exhausting its in-flight quota gets
// 429 tenant_over_quota while another tenant keeps submitting freely.
func TestTenantQuotaOverHTTP(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, _ := startStub(t,
		service.Config{Workers: 1, QueueDepth: 64, TenantMaxInFlight: 2, Solve: blockingSolve(gate, &runs)},
		Config{})
	defer close(gate)

	submit := func(tenant, name string, n int) *http.Response {
		return doReq(t, "POST", srv.URL+"/v1/jobs", pathJobJSON(name, n, ""),
			map[string]string{"X-Tenant": tenant})
	}
	for i := 0; i < 2; i++ {
		resp := submit("tenant-a", "a", 3+i)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("tenant-a submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := submit("tenant-a", "a-over", 20)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-a over quota: status %d, want 429", resp.StatusCode)
	}
	detail := decodeEnvelope(t, resp)
	if detail.Code != CodeTenantOverQuota {
		t.Fatalf("code = %q, want %q", detail.Code, CodeTenantOverQuota)
	}
	// An unrelated tenant is not affected by tenant-a's saturation.
	resp = submit("tenant-b", "b", 30)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant-b blocked by tenant-a's quota: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRequestIDEcho: a client-provided X-Request-ID is echoed on the
// response header and embedded in error envelopes; absent one, the daemon
// generates an id.
func TestRequestIDEcho(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, _ := startStub(t, service.Config{Workers: 1, Solve: blockingSolve(gate, &runs)}, Config{})
	defer close(gate)

	resp := doReq(t, "GET", srv.URL+"/v1/jobs/job-999", "",
		map[string]string{"X-Request-ID": "req-abc-123"})
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc-123" {
		t.Fatalf("X-Request-ID header = %q, want echo", got)
	}
	detail := decodeEnvelope(t, resp)
	if detail.RequestID != "req-abc-123" {
		t.Fatalf("envelope request_id = %q, want req-abc-123", detail.RequestID)
	}

	resp = doReq(t, "GET", srv.URL+"/healthz", "", nil)
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID on a bare request")
	}
	resp.Body.Close()
}

// TestDeadlineExpiredOverHTTP: a job whose end-to-end deadline elapses in
// the queue finishes as "expired" without a solver run, and its /result
// answers 504 deadline_exceeded.
func TestDeadlineExpiredOverHTTP(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, _ := startStub(t, service.Config{Workers: 1, Solve: blockingSolve(gate, &runs)}, Config{})

	// Park the only worker.
	resp := doReq(t, "POST", srv.URL+"/v1/jobs", pathJobJSON("gate", 2, ""), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("gate submit: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = doReq(t, "POST", srv.URL+"/v1/jobs",
		pathJobJSON("doomed", 4, `,"deadline":"30ms"`), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("doomed submit: status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := out["id"]

	time.Sleep(50 * time.Millisecond) // let the deadline pass while queued
	close(gate)                       // release the worker; it pops the expired job
	waitDone(t, srv, id)

	resp = doReq(t, "GET", srv.URL+"/v1/jobs/"+id+"/result", "", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired result: status %d, want 504", resp.StatusCode)
	}
	detail := decodeEnvelope(t, resp)
	if detail.Code != CodeDeadlineExceeded {
		t.Fatalf("code = %q, want %q", detail.Code, CodeDeadlineExceeded)
	}
	if runs.Load() != 1 {
		t.Fatalf("solver runs = %d, want 1 (gate only; expired job must not solve)", runs.Load())
	}
}

// TestPriorityOrderingOverHTTP: the priority field in the submission body
// reorders queued work end to end.
func TestPriorityOrderingOverHTTP(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	solve := func(ctx context.Context, g *graph.Graph, spec service.JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		mu.Lock()
		order = append(order, g.Name())
		mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return core.Outcome{Instance: g.Name()}
	}
	srv, svc := startStub(t, service.Config{Workers: 1, Solve: solve}, Config{})

	submit := func(name string, n, prio int) {
		resp := doReq(t, "POST", srv.URL+"/v1/jobs",
			pathJobJSON(name, n, fmt.Sprintf(`,"priority":%d`, prio)), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	submit("gate", 2, 0)
	// Wait for the gate job to occupy the worker so the rest queue up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		started := len(order) == 1
		mu.Unlock()
		if started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate job never started")
		}
		time.Sleep(time.Millisecond)
	}
	submit("low", 3, 0)
	submit("high", 4, 5)
	close(gate)
	for _, info := range svc.Jobs() {
		if _, err := svc.Wait(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	if got != "gate,high,low" {
		t.Fatalf("solve order = %q, want gate,high,low", got)
	}
}

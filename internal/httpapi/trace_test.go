package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// fetchTraceView polls GET /v1/jobs/{id}/trace until the flight recorder
// serves the completed trace. The job being terminal does not make the
// trace visible in the same instant — finish() records it just after the
// state flips — so a short retry loop keeps the tests deterministic.
func fetchTraceView(t *testing.T, srv *httptest.Server, id string) obs.TraceView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var tv obs.TraceView
			err := json.NewDecoder(resp.Body).Decode(&tv)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return tv
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("job %s: trace never became available (last status %d)", id, resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceEndpointShape: a completed job's trace is a single-root span
// tree whose root is the job, whose children are the lifecycle phases in
// order, and whose trace id is the X-Request-ID the submission carried.
func TestTraceEndpointShape(t *testing.T) {
	srv, _ := startDaemon(t, "")

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
		strings.NewReader(`{"bench":"myciel3","k":6}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "trace-test-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	id := out["id"]
	waitDone(t, srv, id)

	tv := fetchTraceView(t, srv, id)
	if tv.TraceID != "trace-test-42" {
		t.Fatalf("trace id %q, want the submitted X-Request-ID", tv.TraceID)
	}
	if tv.JobID != id {
		t.Fatalf("trace names job %q, want %q", tv.JobID, id)
	}
	if len(tv.Spans) != 1 || tv.Spans[0].Name != "job" {
		t.Fatalf("want exactly one root span named job, got %+v", tv.Spans)
	}
	root := tv.Spans[0]
	for _, phase := range []string{"admission", "queue", "canon", "solve", "persist"} {
		if tv.Find(phase) == nil {
			t.Fatalf("trace missing %q span:\n%+v", phase, root)
		}
	}
	// encode and sbp run inside the solver, so they must hang off the
	// solve span, not the root.
	solve := tv.Find("solve")
	foundEncode := false
	for _, c := range solve.Children {
		if c.Name == "encode" {
			foundEncode = true
		}
	}
	if !foundEncode {
		t.Fatalf("encode span is not a child of solve: %+v", solve)
	}
	// Every child interval nests inside its parent (1ms slack for view
	// rounding), and the root accounts for the whole trace.
	var checkNesting func(parent, s *obs.SpanView)
	checkNesting = func(parent, s *obs.SpanView) {
		if s.StartOffsetMS < parent.StartOffsetMS-1 ||
			s.StartOffsetMS+s.DurationMS > parent.StartOffsetMS+parent.DurationMS+1 {
			t.Fatalf("span %s [%.2f,%.2f] escapes parent %s [%.2f,%.2f]",
				s.Name, s.StartOffsetMS, s.StartOffsetMS+s.DurationMS,
				parent.Name, parent.StartOffsetMS, parent.StartOffsetMS+parent.DurationMS)
		}
		for _, c := range s.Children {
			checkNesting(s, c)
		}
	}
	for _, c := range root.Children {
		checkNesting(root, c)
	}
}

// TestTraceEndpointUnknownJob: both flavors of "no trace" answer with the
// unified 404 envelope — an unknown job id, and a known job whose trace
// is not (yet) in the recorder.
func TestTraceEndpointUnknownJob(t *testing.T) {
	srv, _ := startDaemon(t, "")
	resp, err := http.Get(srv.URL + "/v1/jobs/no-such-job/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("404 body is not the error envelope: %v", err)
	}
	if env.Error.Code != CodeJobNotFound {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeJobNotFound)
	}
}

// TestTraceRecentAndEviction: the flight recorder keeps only the newest
// -trace.keep traces; /v1/trace/recent lists them newest first, and a
// job evicted from the ring answers 404 even though the job itself is
// still known.
func TestTraceRecentAndEviction(t *testing.T) {
	svc := service.New(service.Config{
		Workers:        2,
		DefaultTimeout: 30 * time.Second,
		TraceKeep:      2,
	})
	srv := httptest.NewServer(New(Config{Service: svc}))
	t.Cleanup(func() {
		srv.Close()
		svc.CancelAll()
		svc.Close()
	})

	// Three distinct graphs solved in sequence: the first trace must be
	// evicted when the third lands.
	ids := make([]string, 3)
	for i, bench := range []string{"myciel3", "path", "triangle"} {
		body := map[string]string{
			"myciel3":  `{"bench":"myciel3","k":6}`,
			"path":     `{"name":"p3","n":3,"edges":[[0,1],[1,2]],"k":3}`,
			"triangle": `{"name":"t3","n":3,"edges":[[0,1],[1,2],[0,2]],"k":3}`,
		}[bench]
		ids[i] = submitJob(t, srv, body)
		waitDone(t, srv, ids[i])
		fetchTraceView(t, srv, ids[i]) // wait until this trace is recorded
	}

	resp, err := http.Get(srv.URL + "/v1/trace/recent?n=10")
	if err != nil {
		t.Fatal(err)
	}
	var recent struct {
		Traces []obs.TraceView `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&recent)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recent.Traces) != 2 {
		t.Fatalf("recent: got %d traces, want the 2 the ring keeps", len(recent.Traces))
	}
	if recent.Traces[0].JobID != ids[2] || recent.Traces[1].JobID != ids[1] {
		t.Fatalf("recent order: got %s,%s want newest-first %s,%s",
			recent.Traces[0].JobID, recent.Traces[1].JobID, ids[2], ids[1])
	}

	// The evicted job is still known (its snapshot answers 200) but its
	// trace is gone: 404 with the envelope.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + ids[0] + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted trace: status %d, want 404", resp.StatusCode)
	}

	// Malformed n is an enveloped 400.
	resp, err = http.Get(srv.URL + "/v1/trace/recent?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", resp.StatusCode)
	}
}

// Package graph provides the undirected graphs that feed the coloring
// encoder: a simple graph type, DIMACS .col input/output, and deterministic
// generators for the 20 benchmark instances used in the paper's evaluation
// (queens and Mycielski graphs exactly; structure-matched stand-ins for the
// DIMACS data files that are not shipped with this repository — see
// DESIGN.md "Substitutions").
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N()-1.
type Graph struct {
	name string
	adj  []map[int]struct{}
	m    int // number of undirected edges

	// Chi is the known chromatic number when the generator guarantees one
	// (0 when unknown). For planted-partition stand-ins the guarantee is
	// structural: the k-partition is a proper k-coloring (upper bound) and
	// the planted k-clique forces k colors (lower bound).
	Chi int
	// Clique optionally records a known clique (used as the χ lower-bound
	// witness by tests).
	Clique []int
	// Parts optionally records a proper coloring witness: Parts[v] is the
	// part (color class) of v in the generating partition.
	Parts []int
}

// New returns an empty graph with n vertices.
func New(name string, n int) *Graph {
	g := &Graph{name: name, adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// Name returns the instance name (e.g. "queen5_5").
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge (a,b). Self-loops and duplicate edges
// are ignored. It reports whether a new edge was added.
func (g *Graph) AddEdge(a, b int) bool {
	if a == b {
		return false
	}
	if a < 0 || b < 0 || a >= g.N() || b >= g.N() {
		panic(fmt.Sprintf("graph %q: edge (%d,%d) out of range [0,%d)", g.name, a, b, g.N()))
	}
	if _, dup := g.adj[a][b]; dup {
		return false
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
	g.m++
	return true
}

// HasEdge reports whether (a,b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || b < 0 || a >= g.N() || b >= g.N() {
		return false
	}
	_, ok := g.adj[a][b]
	return ok
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all undirected edges as (a,b) pairs with a < b, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for a := range g.adj {
		for b := range g.adj[a] {
			if a < b {
				out = append(out, [2]int{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MaxDegreeVertex returns the vertex with the largest degree (lowest index
// on ties), or -1 for an empty graph. Used by the SC (selective coloring)
// predicate construction (paper §3.4).
func (g *Graph) MaxDegreeVertex() int {
	best, bestDeg := -1, -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// MaxDegreeNeighbor returns the neighbor of v with the largest degree
// (lowest index on ties), or -1 when v has no neighbors.
func (g *Graph) MaxDegreeNeighbor(v int) int {
	best, bestDeg := -1, -1
	for _, u := range g.Neighbors(v) {
		if d := g.Degree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// IsProperColoring reports whether colors (one entry per vertex) assigns
// distinct colors to every adjacent pair.
func (g *Graph) IsProperColoring(colors []int) bool {
	if len(colors) != g.N() {
		return false
	}
	for a := range g.adj {
		for b := range g.adj[a] {
			if a < b && colors[a] == colors[b] {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether the given vertices are pairwise adjacent.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy with the same name and metadata.
func (g *Graph) Clone() *Graph {
	out := New(g.name, g.N())
	for a := range g.adj {
		for b := range g.adj[a] {
			if a < b {
				out.AddEdge(a, b)
			}
		}
	}
	out.Chi = g.Chi
	out.Clique = append([]int(nil), g.Clique...)
	out.Parts = append([]int(nil), g.Parts...)
	return out
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s(|V|=%d |E|=%d)", g.name, g.N(), g.m)
}

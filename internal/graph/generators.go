package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Queens returns the n×m queen graph: one vertex per board square, edges
// between squares that share a row, column, or diagonal. These are the exact
// graphs behind the paper's queen5_5 .. queen8_12 instances. The chromatic
// number is not set here except for cases with known values recorded by the
// benchmark registry.
func Queens(rows, cols int) *Graph {
	g := New(fmt.Sprintf("queen%d_%d", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r1 := 0; r1 < rows; r1++ {
		for c1 := 0; c1 < cols; c1++ {
			for r2 := r1; r2 < rows; r2++ {
				for c2 := 0; c2 < cols; c2++ {
					if r2 == r1 && c2 <= c1 {
						continue
					}
					sameRow := r1 == r2
					sameCol := c1 == c2
					sameDiag := r1-c1 == r2-c2 || r1+c1 == r2+c2
					if sameRow || sameCol || sameDiag {
						g.AddEdge(id(r1, c1), id(r2, c2))
					}
				}
			}
		}
	}
	// A row is an n-clique (m-clique): record the larger as a lower bound
	// witness.
	k := cols
	cl := make([]int, 0, k)
	for c := 0; c < cols; c++ {
		cl = append(cl, id(0, c))
	}
	if rows > cols {
		cl = cl[:0]
		for r := 0; r < rows; r++ {
			cl = append(cl, id(r, 0))
		}
	}
	g.Clique = cl
	return g
}

// Mycielski returns the DIMACS mycielN graph: starting from K2, the
// Mycielski transformation is applied level−1 times. Vertex/edge counts and
// chromatic numbers follow the classical recurrences:
//
//	level 3: 11 vertices,  20 edges, χ=4 (the Grötzsch graph)
//	level 4: 23 vertices,  71 edges, χ=5
//	level 5: 47 vertices, 236 edges, χ=6
func Mycielski(level int) *Graph {
	if level < 2 {
		panic("graph: Mycielski level must be >= 2")
	}
	// Start from K2 and apply level−1 transformations: K2 → C5 → Grötzsch
	// (= myciel3) → myciel4 → ...
	n := 2
	edges := [][2]int{{0, 1}}
	for s := 0; s < level-1; s++ {
		n, edges = mycielskiStep(n, edges)
	}
	g := New(fmt.Sprintf("myciel%d", level), n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	g.Chi = level + 1
	return g
}

// mycielskiStep applies one Mycielski transformation: for G(V,E) with
// vertices 0..n-1, add shadow vertices n..2n-1 (shadow of v is n+v) and apex
// 2n. Shadow u' is adjacent to the original neighbors of u; the apex is
// adjacent to every shadow.
func mycielskiStep(n int, edges [][2]int) (int, [][2]int) {
	out := make([][2]int, 0, 3*len(edges)+n)
	out = append(out, edges...)
	for _, e := range edges {
		a, b := e[0], e[1]
		out = append(out, [2]int{a, n + b}, [2]int{b, n + a})
	}
	apex := 2 * n
	for v := 0; v < n; v++ {
		out = append(out, [2]int{n + v, apex})
	}
	return 2*n + 1, out
}

// partition splits n vertices into k near-equal parts and returns the part
// index of each vertex plus one representative per part (the first vertex).
func partition(n, k int) (parts []int, reps []int) {
	parts = make([]int, n)
	reps = make([]int, k)
	base, extra := n/k, n%k
	v := 0
	for p := 0; p < k; p++ {
		size := base
		if p < extra {
			size++
		}
		reps[p] = v
		for i := 0; i < size; i++ {
			parts[v] = p
			v++
		}
	}
	return parts, reps
}

// plantChi installs the χ=k certificates on a partite graph: the planted
// clique (one representative per part, fully connected by the caller) and
// the partition witness.
func plantChi(g *Graph, parts, reps []int, k int) {
	g.Chi = k
	g.Clique = append([]int(nil), reps...)
	g.Parts = append([]int(nil), parts...)
}

// PartitePlanted returns a random k-partite graph on n vertices with exactly
// e edges, a planted k-clique (one vertex per part), and hence chromatic
// number exactly k: the partition is a proper k-coloring (χ ≤ k) and the
// clique forces k colors (χ ≥ k). It is the generic stand-in for DIMACS
// instances whose data files are not available offline (DESIGN.md
// "Substitutions"). Generation is deterministic in seed.
func PartitePlanted(name string, n, e, k int, seed int64) *Graph {
	g, parts, reps := partiteBase(name, n, e, k)
	rng := rand.New(rand.NewSource(seed))
	for g.M() < e {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if parts[a] != parts[b] {
			g.AddEdge(a, b)
		}
	}
	plantChi(g, parts, reps, k)
	return g
}

// PartiteGeometric is the locality-flavored stand-in for mileage graphs
// (miles250): vertices get deterministic pseudo-random positions in the unit
// square and the e−C(k,2) non-clique edges are the shortest cross-part pairs,
// mimicking a distance-threshold graph while keeping χ exactly k.
func PartiteGeometric(name string, n, e, k int, seed int64) *Graph {
	g, parts, reps := partiteBase(name, n, e, k)
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	type cand struct {
		a, b int
		d2   float64
	}
	cands := make([]cand, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if parts[a] == parts[b] {
				continue
			}
			dx, dy := xs[a]-xs[b], ys[a]-ys[b]
			cands = append(cands, cand{a, b, dx*dx + dy*dy})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d2 < cands[j].d2 })
	for _, c := range cands {
		if g.M() >= e {
			break
		}
		g.AddEdge(c.a, c.b)
	}
	if g.M() < e {
		panic(fmt.Sprintf("graph %s: cannot reach %d edges (max cross-part %d)", name, e, g.M()))
	}
	plantChi(g, parts, reps, k)
	return g
}

// PartiteScenes is the co-occurrence-flavored stand-in for the book graphs
// (anna, david, huck, jean): edges arrive in small "scenes" — cliques over
// 2..5 vertices drawn from distinct parts — so the graph is a union of
// overlapping cliques like a character-interaction network, with χ exactly k.
func PartiteScenes(name string, n, e, k int, seed int64) *Graph {
	g, parts, reps := partiteBase(name, n, e, k)
	rng := rand.New(rand.NewSource(seed))
	for g.M() < e {
		size := 2 + rng.Intn(4)
		if size > k {
			size = k
		}
		// Draw `size` vertices from distinct parts.
		scene := make([]int, 0, size)
		used := make(map[int]bool, size)
		for tries := 0; len(scene) < size && tries < 8*size; tries++ {
			v := rng.Intn(n)
			if !used[parts[v]] {
				used[parts[v]] = true
				scene = append(scene, v)
			}
		}
		for i := 0; i < len(scene) && g.M() < e; i++ {
			for j := i + 1; j < len(scene) && g.M() < e; j++ {
				g.AddEdge(scene[i], scene[j])
			}
		}
	}
	plantChi(g, parts, reps, k)
	return g
}

// partiteBase builds the skeleton shared by the partite generators: n
// vertices in k parts with the planted k-clique over part representatives.
func partiteBase(name string, n, e, k int) (*Graph, []int, []int) {
	if k < 2 || k > n {
		panic(fmt.Sprintf("graph %s: need 2 <= k <= n, got k=%d n=%d", name, k, n))
	}
	if minE := k * (k - 1) / 2; e < minE {
		panic(fmt.Sprintf("graph %s: e=%d below planted clique size %d", name, e, minE))
	}
	g := New(name, n)
	parts, reps := partition(n, k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(reps[i], reps[j])
		}
	}
	return g, parts, reps
}

// Interval is a live range [Start, End) used by IntervalInterference.
type Interval struct {
	Start, End int
}

// IntervalInterference generates a register-allocation-style interference
// graph: n live ranges over a linear program with maximum simultaneous
// overlap exactly k. Interval graphs are perfect, so χ equals the max
// overlap, i.e. exactly k. Used by the registeralloc example and tests;
// the mulsol/zeroin table stand-ins use PartitePlanted for exact edge
// counts.
func IntervalInterference(name string, n, k int, seed int64) (*Graph, []Interval) {
	if k < 1 || k > n {
		panic(fmt.Sprintf("graph %s: need 1 <= k <= n", name))
	}
	rng := rand.New(rand.NewSource(seed))
	horizon := 4 * n
	intervals := make([]Interval, 0, n)
	// Sweep-based generation: keep at most k ranges live; force the overlap
	// to reach exactly k at least once by opening k ranges at time 0.
	type open struct{ idx, end int }
	live := []open{}
	expire := func(t int) {
		keep := live[:0]
		for _, o := range live {
			if o.end > t {
				keep = append(keep, o)
			}
		}
		live = keep
	}
	for i := 0; i < k; i++ {
		end := 1 + rng.Intn(horizon/2)
		intervals = append(intervals, Interval{0, end})
		live = append(live, open{i, end})
	}
	t := 1
	for len(intervals) < n {
		t += 1 + rng.Intn(3)
		expire(t)
		if len(live) >= k {
			continue
		}
		end := t + 1 + rng.Intn(horizon/4)
		intervals = append(intervals, Interval{t, end})
		live = append(live, open{len(intervals) - 1, end})
	}
	g := New(name, n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if intervals[a].Start < intervals[b].End && intervals[b].Start < intervals[a].End {
				g.AddEdge(a, b)
			}
		}
	}
	g.Chi = k
	// The first k intervals all contain time 0: they form the witness clique.
	g.Clique = make([]int, k)
	for i := 0; i < k; i++ {
		g.Clique[i] = i
	}
	return g, intervals
}

// Random returns an Erdős–Rényi G(n,m) graph with exactly m edges,
// deterministic in seed. χ is unknown (left 0).
func Random(name string, n, m int, seed int64) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph %s: m=%d exceeds max %d", name, m, maxM))
	}
	g := New(name, n)
	rng := rand.New(rand.NewSource(seed))
	for g.M() < m {
		a, b := rng.Intn(n), rng.Intn(n)
		g.AddEdge(a, b)
	}
	return g
}

// Cycle returns the n-cycle C_n.
func Cycle(n int) *Graph {
	g := New(fmt.Sprintf("cycle%d", n), n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	if n%2 == 0 {
		g.Chi = 2
	} else if n >= 3 {
		g.Chi = 3
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(fmt.Sprintf("k%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	g.Chi = n
	cl := make([]int, n)
	for i := range cl {
		cl[i] = i
	}
	g.Clique = cl
	return g
}

// Petersen returns the Petersen graph (χ=3), useful in automorphism tests
// (its automorphism group has order 120).
func Petersen() *Graph {
	g := New("petersen", 10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5) // outer cycle
		g.AddEdge(5+i, 5+(i+2)%5)
		g.AddEdge(i, 5+i)
	}
	g.Chi = 3
	return g
}

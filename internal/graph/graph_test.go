package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New("t", 4)
	if !g.AddEdge(0, 1) {
		t.Fatal("first AddEdge should report true")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("reversed duplicate should report false")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self loop should be ignored")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("absent edge reported present")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New("t", 5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 4)
	if g.Degree(0) != 3 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	nb := g.Neighbors(0)
	want := []int{1, 2, 4}
	if len(nb) != 3 || nb[0] != want[0] || nb[1] != want[1] || nb[2] != want[2] {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
}

func TestMaxDegreeVertexAndNeighbor(t *testing.T) {
	g := New("t", 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if v := g.MaxDegreeVertex(); v != 1 {
		t.Fatalf("MaxDegreeVertex = %d, want 1", v)
	}
	// Neighbors of 1: 0 (deg 1), 2 (deg 2), 3 (deg 2) → 2 on tie-break.
	if u := g.MaxDegreeNeighbor(1); u != 2 {
		t.Fatalf("MaxDegreeNeighbor(1) = %d, want 2", u)
	}
	empty := New("e", 1)
	if empty.MaxDegreeNeighbor(0) != -1 {
		t.Fatal("isolated vertex should have no max-degree neighbor")
	}
}

func TestIsProperColoring(t *testing.T) {
	g := Cycle(4)
	if !g.IsProperColoring([]int{0, 1, 0, 1}) {
		t.Fatal("2-coloring of C4 should be proper")
	}
	if g.IsProperColoring([]int{0, 0, 1, 1}) {
		t.Fatal("adjacent same colors should fail")
	}
	if g.IsProperColoring([]int{0, 1}) {
		t.Fatal("wrong length should fail")
	}
}

func TestCliqueHelpers(t *testing.T) {
	g := Complete(4)
	if !g.IsClique([]int{0, 1, 2, 3}) {
		t.Fatal("K4 should be a clique")
	}
	g2 := Cycle(4)
	if g2.IsClique([]int{0, 1, 2}) {
		t.Fatal("path in C4 is not a clique")
	}
}

func TestQueensCounts(t *testing.T) {
	cases := []struct {
		rows, cols, wantV, wantE int
	}{
		{5, 5, 25, 160},
		{6, 6, 36, 290},
		{7, 7, 49, 476},
		{8, 12, 96, 1368},
	}
	for _, c := range cases {
		g := Queens(c.rows, c.cols)
		if g.N() != c.wantV || g.M() != c.wantE {
			t.Errorf("Queens(%d,%d): |V|=%d |E|=%d, want %d/%d",
				c.rows, c.cols, g.N(), g.M(), c.wantV, c.wantE)
		}
		if !g.IsClique(g.Clique) {
			t.Errorf("Queens(%d,%d): recorded clique is not a clique", c.rows, c.cols)
		}
		if len(g.Clique) != max(c.rows, c.cols) {
			t.Errorf("Queens(%d,%d): clique size %d, want %d",
				c.rows, c.cols, len(g.Clique), max(c.rows, c.cols))
		}
	}
}

func TestMycielskiCounts(t *testing.T) {
	cases := []struct {
		level, wantV, wantE, wantChi int
	}{
		{3, 11, 20, 4},
		{4, 23, 71, 5},
		{5, 47, 236, 6},
	}
	for _, c := range cases {
		g := Mycielski(c.level)
		if g.N() != c.wantV || g.M() != c.wantE || g.Chi != c.wantChi {
			t.Errorf("Mycielski(%d): V=%d E=%d chi=%d, want %d/%d/%d",
				c.level, g.N(), g.M(), g.Chi, c.wantV, c.wantE, c.wantChi)
		}
	}
}

func TestMycielskiIsTriangleFree(t *testing.T) {
	g := Mycielski(4)
	for _, e := range g.Edges() {
		for w := 0; w < g.N(); w++ {
			if g.HasEdge(e[0], w) && g.HasEdge(e[1], w) {
				t.Fatalf("triangle %d-%d-%d in Mycielski graph", e[0], e[1], w)
			}
		}
	}
}

func TestPartitePlantedCertificates(t *testing.T) {
	g := PartitePlanted("p", 40, 120, 6, 7)
	if g.N() != 40 || g.M() != 120 || g.Chi != 6 {
		t.Fatalf("bad stats: %v chi=%d", g, g.Chi)
	}
	if !g.IsClique(g.Clique) || len(g.Clique) != 6 {
		t.Fatal("planted clique invalid")
	}
	if !g.IsProperColoring(g.Parts) {
		t.Fatal("partition witness is not a proper coloring")
	}
	mx := 0
	for _, p := range g.Parts {
		if p > mx {
			mx = p
		}
	}
	if mx != 5 {
		t.Fatalf("partition uses %d classes, want 6", mx+1)
	}
}

func TestPartiteGeneratorsDeterministic(t *testing.T) {
	a := PartitePlanted("p", 30, 80, 5, 11)
	b := PartitePlanted("p", 30, 80, 5, 11)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestPartiteScenesAndGeometric(t *testing.T) {
	s := PartiteScenes("s", 50, 150, 7, 3)
	if s.M() != 150 || !s.IsClique(s.Clique) || !s.IsProperColoring(s.Parts) {
		t.Fatalf("scenes generator invalid: %v", s)
	}
	ge := PartiteGeometric("g", 50, 150, 7, 3)
	if ge.M() != 150 || !ge.IsClique(ge.Clique) || !ge.IsProperColoring(ge.Parts) {
		t.Fatalf("geometric generator invalid: %v", ge)
	}
}

func TestIntervalInterference(t *testing.T) {
	g, ivs := IntervalInterference("regs", 30, 5, 9)
	if g.N() != 30 || len(ivs) != 30 {
		t.Fatalf("bad sizes: %d vertices %d intervals", g.N(), len(ivs))
	}
	if !g.IsClique(g.Clique) || len(g.Clique) != 5 {
		t.Fatal("witness clique invalid")
	}
	// Edges must match interval overlaps exactly.
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			overlap := ivs[a].Start < ivs[b].End && ivs[b].Start < ivs[a].End
			if overlap != g.HasEdge(a, b) {
				t.Fatalf("edge (%d,%d) = %v but overlap = %v", a, b, g.HasEdge(a, b), overlap)
			}
		}
	}
	// Max simultaneous overlap must be exactly Chi=5 (interval graphs are
	// perfect, so this pins the chromatic number).
	events := map[int]int{}
	for _, iv := range ivs {
		events[iv.Start]++
		events[iv.End]--
	}
	times := make([]int, 0, len(events))
	for t := range events {
		times = append(times, t)
	}
	// Sweep in time order.
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			if times[j] < times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	cur, mx := 0, 0
	for _, tm := range times {
		cur += events[tm]
		if cur > mx {
			mx = cur
		}
	}
	if mx != 5 {
		t.Fatalf("max overlap = %d, want 5", mx)
	}
}

func TestBenchmarkRegistryStats(t *testing.T) {
	for _, info := range BenchmarkTable {
		g, err := Benchmark(info.Name)
		if err != nil {
			t.Fatalf("Benchmark(%s): %v", info.Name, err)
		}
		if g.N() != info.PaperV {
			t.Errorf("%s: |V|=%d, want %d", info.Name, g.N(), info.PaperV)
		}
		// Edge counts: paper numbers follow file conventions (some double).
		if g.M() != info.PaperE && 2*g.M() != info.PaperE {
			t.Errorf("%s: |E|=%d, neither matches paper %d nor half",
				info.Name, g.M(), info.PaperE)
		}
		if info.PaperChi > 0 && g.Chi != info.PaperChi {
			t.Errorf("%s: chi=%d, want %d", info.Name, g.Chi, info.PaperChi)
		}
		if info.PaperChi == 0 && g.Chi <= 20 {
			t.Errorf("%s: chi=%d, want >20", info.Name, g.Chi)
		}
		// Verify certificates where present.
		if len(g.Clique) > 0 && !g.IsClique(g.Clique) {
			t.Errorf("%s: invalid clique certificate", info.Name)
		}
		if len(g.Parts) > 0 && !g.IsProperColoring(g.Parts) {
			t.Errorf("%s: invalid partition certificate", info.Name)
		}
	}
}

func TestAllBenchmarksCount(t *testing.T) {
	gs, err := AllBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 20 {
		t.Fatalf("got %d benchmarks, want 20", len(gs))
	}
}

func TestQueensBenchmarksHaveKnownChi(t *testing.T) {
	want := map[string]int{"queen5_5": 5, "queen6_6": 7, "queen7_7": 7, "queen8_12": 12}
	for _, g := range QueensBenchmarks() {
		if g.Chi != want[g.Name()] {
			t.Errorf("%s chi = %d, want %d", g.Name(), g.Chi, want[g.Name()])
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	g := Queens(5, 5)
	var b strings.Builder
	if err := WriteDimacs(&b, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDimacs("queen5_5", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip: %v vs %v", back, g)
	}
	ea, eb := g.Edges(), back.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestParseDimacsErrors(t *testing.T) {
	cases := []string{
		"e 1 2\n",                  // edge before problem line
		"p edge 2 1\ne 1 5\n",      // endpoint out of range
		"p edge 2 1\np edge 2 1\n", // duplicate problem line
		"p graph 2 1\n",            // unsupported format
		"x nonsense\n",             // unrecognized line
		"",                         // no problem line
	}
	for _, in := range cases {
		if _, err := ParseDimacs("bad", strings.NewReader(in)); err == nil {
			t.Errorf("ParseDimacs(%q) should fail", in)
		}
	}
}

func TestParseDimacsToleratesDuplicates(t *testing.T) {
	in := "c comment\np edge 3 4\ne 1 2\ne 2 1\ne 2 3\ne 2 3\n"
	g, err := ParseDimacs("dup", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 unique edges", g.M())
	}
}

func TestClonePreservesEverything(t *testing.T) {
	g := PartitePlanted("p", 20, 40, 4, 1)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() || c.Chi != g.Chi {
		t.Fatal("clone stats differ")
	}
	c.AddEdge(0, 1) // may or may not be new, but must not affect g
	ea, eb := g.Edges(), PartitePlanted("p", 20, 40, 4, 1).Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("clone mutated original")
		}
	}
}

// Property: generated partite graphs never contain intra-part edges, which
// is the structural fact guaranteeing χ ≤ k.
func TestPartiteNoIntraPartEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := PartitePlanted("p", 24, 60, 5, seed)
		for _, e := range g.Edges() {
			if g.Parts[e[0]] == g.Parts[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

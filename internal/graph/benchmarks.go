package graph

import "fmt"

// BenchmarkInfo describes one of the paper's 20 DIMACS instances (Table 1)
// together with the stand-in used in this reproduction.
type BenchmarkInfo struct {
	Name string
	// PaperV and PaperE are the #V/#E values printed in the paper's
	// Table 1. Several DIMACS files list each edge in both directions, so
	// PaperE is 2× the undirected edge count for those families (see
	// EXPERIMENTS.md for the per-instance mapping).
	PaperV, PaperE int
	// PaperChi is the chromatic number in Table 1; 0 means the paper
	// reports "> 20".
	PaperChi int
	// Family describes which generator produces the instance.
	Family string
	// Exact marks families generated exactly (queens, Mycielski) rather
	// than via structure-matched stand-ins.
	Exact bool
}

// benchmarkSeed fixes the deterministic generator seed for stand-ins.
const benchmarkSeed = 20040324 // DATE 2004 publication date

// BenchmarkTable lists the paper's 20 instances in Table 1 order.
var BenchmarkTable = []BenchmarkInfo{
	{Name: "anna", PaperV: 138, PaperE: 986, PaperChi: 11, Family: "book"},
	{Name: "david", PaperV: 87, PaperE: 812, PaperChi: 11, Family: "book"},
	{Name: "DSJC125.1", PaperV: 125, PaperE: 1472, PaperChi: 5, Family: "random"},
	{Name: "DSJC125.9", PaperV: 125, PaperE: 13922, PaperChi: 0, Family: "random"},
	{Name: "games120", PaperV: 120, PaperE: 1276, PaperChi: 9, Family: "games"},
	{Name: "huck", PaperV: 74, PaperE: 602, PaperChi: 11, Family: "book"},
	{Name: "jean", PaperV: 80, PaperE: 508, PaperChi: 10, Family: "book"},
	{Name: "miles250", PaperV: 128, PaperE: 774, PaperChi: 8, Family: "mileage"},
	{Name: "mulsol.i.2", PaperV: 188, PaperE: 3885, PaperChi: 0, Family: "register"},
	{Name: "mulsol.i.4", PaperV: 185, PaperE: 3946, PaperChi: 0, Family: "register"},
	{Name: "myciel3", PaperV: 11, PaperE: 20, PaperChi: 4, Family: "mycielski", Exact: true},
	{Name: "myciel4", PaperV: 23, PaperE: 71, PaperChi: 5, Family: "mycielski", Exact: true},
	{Name: "myciel5", PaperV: 47, PaperE: 236, PaperChi: 6, Family: "mycielski", Exact: true},
	{Name: "queen5_5", PaperV: 25, PaperE: 320, PaperChi: 5, Family: "queens", Exact: true},
	{Name: "queen6_6", PaperV: 36, PaperE: 580, PaperChi: 7, Family: "queens", Exact: true},
	{Name: "queen7_7", PaperV: 49, PaperE: 952, PaperChi: 7, Family: "queens", Exact: true},
	{Name: "queen8_12", PaperV: 96, PaperE: 2736, PaperChi: 12, Family: "queens", Exact: true},
	{Name: "zeroin.i.1", PaperV: 211, PaperE: 4100, PaperChi: 0, Family: "register"},
	{Name: "zeroin.i.2", PaperV: 211, PaperE: 3541, PaperChi: 0, Family: "register"},
	{Name: "zeroin.i.3", PaperV: 206, PaperE: 3540, PaperChi: 0, Family: "register"},
}

// Benchmark generates the named benchmark instance. Queens and Mycielski
// instances are exact; the others are deterministic structure-matched
// stand-ins (same |V|, same undirected |E|, same chromatic number as the
// original DIMACS graph — the chromatic numbers of the ">20" register
// allocation and DSJC125.9 instances use the published values for the real
// graphs: mulsol.i.2/i.4 → 31, zeroin.i.1 → 49, zeroin.i.2/i.3 → 30,
// DSJC125.9 → 44).
func Benchmark(name string) (*Graph, error) {
	seed := benchmarkSeed
	switch name {
	case "anna":
		return PartiteScenes("anna", 138, 493, 11, int64(seed)+1), nil
	case "david":
		return PartiteScenes("david", 87, 406, 11, int64(seed)+2), nil
	case "DSJC125.1":
		return PartitePlanted("DSJC125.1", 125, 736, 5, int64(seed)+3), nil
	case "DSJC125.9":
		return PartitePlanted("DSJC125.9", 125, 6961, 44, int64(seed)+4), nil
	case "games120":
		return PartitePlanted("games120", 120, 638, 9, int64(seed)+5), nil
	case "huck":
		return PartiteScenes("huck", 74, 301, 11, int64(seed)+6), nil
	case "jean":
		return PartiteScenes("jean", 80, 254, 10, int64(seed)+7), nil
	case "miles250":
		return PartiteGeometric("miles250", 128, 387, 8, int64(seed)+8), nil
	case "mulsol.i.2":
		return PartitePlanted("mulsol.i.2", 188, 3885, 31, int64(seed)+9), nil
	case "mulsol.i.4":
		return PartitePlanted("mulsol.i.4", 185, 3946, 31, int64(seed)+10), nil
	case "myciel3":
		return Mycielski(3), nil
	case "myciel4":
		return Mycielski(4), nil
	case "myciel5":
		return Mycielski(5), nil
	case "queen5_5":
		g := Queens(5, 5)
		g.Chi = 5
		return g, nil
	case "queen6_6":
		g := Queens(6, 6)
		g.Chi = 7
		return g, nil
	case "queen7_7":
		g := Queens(7, 7)
		g.Chi = 7
		return g, nil
	case "queen8_12":
		g := Queens(8, 12)
		g.Chi = 12
		return g, nil
	case "zeroin.i.1":
		return PartitePlanted("zeroin.i.1", 211, 4100, 49, int64(seed)+11), nil
	case "zeroin.i.2":
		return PartitePlanted("zeroin.i.2", 211, 3541, 30, int64(seed)+12), nil
	case "zeroin.i.3":
		return PartitePlanted("zeroin.i.3", 206, 3540, 30, int64(seed)+13), nil
	}
	return nil, fmt.Errorf("graph: unknown benchmark %q", name)
}

// AllBenchmarks generates all 20 instances in Table 1 order.
func AllBenchmarks() ([]*Graph, error) {
	out := make([]*Graph, 0, len(BenchmarkTable))
	for _, info := range BenchmarkTable {
		g, err := Benchmark(info.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// QueensBenchmarks returns the four queens instances used in the paper's
// appendix (Table 5).
func QueensBenchmarks() []*Graph {
	names := []string{"queen5_5", "queen6_6", "queen7_7", "queen8_12"}
	out := make([]*Graph, len(names))
	for i, n := range names {
		g, err := Benchmark(n)
		if err != nil {
			panic(err) // names are static; cannot fail
		}
		out[i] = g
	}
	return out
}

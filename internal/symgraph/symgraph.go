// Package symgraph reduces symmetry detection in 0-1 ILP formulas to
// colored-graph automorphism (paper §2.4): a PB formula is expressed as a
// colored undirected graph whose automorphism group is isomorphic to the
// symmetry group of the formula. The construction follows Aloul, Ramani,
// Markov & Sakallah (2003, 2004):
//
//   - one vertex per literal, positive and negative literals of a variable
//     sharing one color class and joined by a Boolean-consistency edge, so
//     phase-shift symmetries remain detectable;
//   - binary clauses as direct literal–literal edges (no clause vertex);
//   - one vertex per longer (or unit) clause, colored as a clause;
//   - one vertex per PB constraint, colored by the constraint's
//     (coefficient multiset, bound) signature; terms attach directly for
//     uniform-coefficient constraints and through per-term nodes colored by
//     coefficient value otherwise;
//   - one vertex for the objective, with its own color, attached the same
//     way.
//
// Detected vertex generators are mapped back to literal permutations and
// verified against the formula (VerifyLitPerm), which rules out the
// spurious symmetries the binary-clause optimization can admit in graphs
// with circular implication chains.
package symgraph

import (
	"sort"

	"repro/internal/autom"
	"repro/internal/cnf"
	"repro/internal/pb"
)

// Vertex color classes. PB signature classes are allocated from
// colorPBBase upward.
const (
	colorLiteral   = 0
	colorClause    = 1
	colorObjective = 2
	colorCoefBase  = 3 // + coefficient class index
	// PB signature colors start after coefficient classes; allocated
	// dynamically.
)

// Encoding is the colored graph of a formula plus the vertex layout needed
// to translate automorphisms back to the formula.
type Encoding struct {
	G     *autom.Graph
	nVars int
}

// posVertex/negVertex give the literal-vertex layout: variables are 1..n.
func posVertex(v int) int { return 2 * (v - 1) }
func negVertex(v int) int { return 2*(v-1) + 1 }

// vertexLit is the inverse layout map.
func vertexLit(x int) cnf.Lit {
	v := x/2 + 1
	if x%2 == 0 {
		return cnf.PosLit(v)
	}
	return cnf.NegLit(v)
}

func litVertex(l cnf.Lit) int {
	if l.Sign() {
		return posVertex(l.Var())
	}
	return negVertex(l.Var())
}

// Build constructs the colored graph for the formula.
func Build(f *pb.Formula) *Encoding {
	n := f.NumVars
	// Pre-compute vertex count: 2n literal vertices, one per clause with
	// len != 2, one per PB constraint (+ per-term nodes for mixed
	// coefficients), one for the objective if present.
	extra := 0
	for _, c := range f.Clauses {
		if len(c) != 2 {
			extra++
		}
	}
	for i := range f.Constraints {
		extra++
		if !uniformCoefs(f.Constraints[i].Terms) {
			extra += len(f.Constraints[i].Terms)
		}
	}
	if len(f.Objective) > 0 {
		extra++
		if !uniformCoefs(f.Objective) {
			extra += len(f.Objective)
		}
	}
	g := autom.NewGraph(2*n + extra)
	next := 2 * n

	// Boolean consistency edges; literal vertices keep color 0.
	for v := 1; v <= n; v++ {
		g.AddEdge(posVertex(v), negVertex(v))
	}

	// Clauses.
	binSeen := map[[2]int]bool{}
	for v := 1; v <= n; v++ {
		binSeen[binKey(posVertex(v), negVertex(v))] = true
	}
	clauseSeen := map[string]bool{}
	for _, c := range f.Clauses {
		norm, taut := c.Normalize()
		if taut {
			continue
		}
		if len(norm) == 2 {
			k := binKey(litVertex(norm[0]), litVertex(norm[1]))
			if !binSeen[k] {
				binSeen[k] = true
				g.AddEdge(litVertex(norm[0]), litVertex(norm[1]))
			}
			continue
		}
		// Dedup identical clauses: they carry no extra structure and would
		// create spurious swappable twin vertices.
		key := norm.String()
		if clauseSeen[key] {
			continue
		}
		clauseSeen[key] = true
		cv := next
		next++
		g.SetColor(cv, colorClause)
		for _, l := range norm {
			g.AddEdge(cv, litVertex(l))
		}
	}

	// Coefficient classes for mixed-coefficient rows.
	coefClass := map[int]int{}
	coefColor := func(coef int) int {
		if c, ok := coefClass[coef]; ok {
			return c
		}
		c := colorCoefBase + len(coefClass)
		coefClass[coef] = c
		return c
	}
	// Reserve signature colors after a fixed-size coefficient block: use a
	// disjoint numbering by hashing signatures into dense ids offset by a
	// gap that coefficient classes cannot reach (coef classes are bounded
	// by the number of distinct coefficients, below 1<<20 in any sane
	// formula).
	sigClass := map[string]int{}
	sigColor := func(sig string) int {
		if c, ok := sigClass[sig]; ok {
			return c
		}
		c := colorCoefBase + (1 << 20) + len(sigClass)
		sigClass[sig] = c
		return c
	}

	attachRow := func(rowVertex int, terms []pb.Term) {
		if uniformCoefs(terms) {
			for _, t := range terms {
				g.AddEdge(rowVertex, litVertex(t.Lit))
			}
			return
		}
		for _, t := range terms {
			tn := next
			next++
			g.SetColor(tn, coefColor(t.Coef))
			g.AddEdge(rowVertex, tn)
			g.AddEdge(tn, litVertex(t.Lit))
		}
	}

	for i := range f.Constraints {
		c := &f.Constraints[i]
		cv := next
		next++
		g.SetColor(cv, sigColor(c.Signature()))
		attachRow(cv, c.Terms)
	}

	if len(f.Objective) > 0 {
		ov := next
		next++
		g.SetColor(ov, colorObjective)
		attachRow(ov, f.Objective)
	}

	return &Encoding{G: g, nVars: n}
}

func uniformCoefs(terms []pb.Term) bool {
	for i := 1; i < len(terms); i++ {
		if terms[i].Coef != terms[0].Coef {
			return false
		}
	}
	return true
}

func binKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// LitPerm is a symmetry of the formula: Img[v] is the image literal of
// PosLit(v) (index 0 unused). The image of NegLit(v) is Img[v].Neg().
type LitPerm struct {
	Img []cnf.Lit
}

// NewIdentityPerm returns the identity literal permutation on n variables.
func NewIdentityPerm(n int) LitPerm {
	img := make([]cnf.Lit, n+1)
	for v := 1; v <= n; v++ {
		img[v] = cnf.PosLit(v)
	}
	return LitPerm{Img: img}
}

// Image returns the image of an arbitrary literal.
func (p LitPerm) Image(l cnf.Lit) cnf.Lit {
	img := p.Img[l.Var()]
	if l.Sign() {
		return img
	}
	return img.Neg()
}

// IsIdentity reports whether the permutation fixes every literal.
func (p LitPerm) IsIdentity() bool {
	for v := 1; v < len(p.Img); v++ {
		if p.Img[v] != cnf.PosLit(v) {
			return false
		}
	}
	return true
}

// Support returns the moved variables, ascending.
func (p LitPerm) Support() []int {
	var out []int
	for v := 1; v < len(p.Img); v++ {
		if p.Img[v] != cnf.PosLit(v) {
			out = append(out, v)
		}
	}
	return out
}

// LitPerms translates vertex generators back to literal permutations,
// dropping generators that act trivially on literals or violate Boolean
// consistency (cannot happen for generators produced by autom on graphs
// built here, but checked defensively).
func (e *Encoding) LitPerms(gens []autom.Perm) []LitPerm {
	var out []LitPerm
	for _, g := range gens {
		img := make([]cnf.Lit, e.nVars+1)
		ok := true
		trivial := true
		for v := 1; v <= e.nVars && ok; v++ {
			pi := g[posVertex(v)]
			ni := g[negVertex(v)]
			if pi >= 2*e.nVars || ni >= 2*e.nVars {
				ok = false
				break
			}
			pl, nl := vertexLit(pi), vertexLit(ni)
			if pl.Neg() != nl {
				ok = false
				break
			}
			img[v] = pl
			if pl != cnf.PosLit(v) {
				trivial = false
			}
		}
		if ok && !trivial {
			out = append(out, LitPerm{Img: img})
		}
	}
	return out
}

// VerifyLitPerm checks that a literal permutation is a symmetry of the
// formula: it maps the clause multiset and constraint multiset onto
// themselves and fixes the objective as a set. This guards the
// binary-clause graph optimization against spurious symmetries from
// circular implication chains (paper §2.4).
func VerifyLitPerm(f *pb.Formula, p LitPerm) bool {
	clauseCount := map[string]int{}
	add := func(set map[string]int, key string, d int) {
		set[key] += d
		if set[key] == 0 {
			delete(set, key)
		}
	}
	for _, c := range f.Clauses {
		norm, taut := c.Normalize()
		if taut {
			continue
		}
		add(clauseCount, norm.String(), 1)
		mapped := make(cnf.Clause, len(norm))
		for i, l := range norm {
			mapped[i] = p.Image(l)
		}
		mnorm, mtaut := mapped.Normalize()
		if mtaut {
			return false
		}
		add(clauseCount, mnorm.String(), -1)
	}
	if len(clauseCount) != 0 {
		return false
	}
	consCount := map[string]int{}
	for i := range f.Constraints {
		c := &f.Constraints[i]
		add(consCount, constraintKey(c.Terms, c.Bound), 1)
		mapped := make([]pb.Term, len(c.Terms))
		for j, t := range c.Terms {
			mapped[j] = pb.Term{Coef: t.Coef, Lit: p.Image(t.Lit)}
		}
		add(consCount, constraintKey(mapped, c.Bound), -1)
	}
	if len(consCount) != 0 {
		return false
	}
	if len(f.Objective) > 0 {
		obj := map[string]int{}
		add(obj, constraintKey(f.Objective, 0), 1)
		mapped := make([]pb.Term, len(f.Objective))
		for j, t := range f.Objective {
			mapped[j] = pb.Term{Coef: t.Coef, Lit: p.Image(t.Lit)}
		}
		add(obj, constraintKey(mapped, 0), -1)
		if len(obj) != 0 {
			return false
		}
	}
	return true
}

// constraintKey canonicalizes a term list plus bound for multiset
// comparison.
func constraintKey(terms []pb.Term, bound int) string {
	type ct struct {
		coef int
		lit  cnf.Lit
	}
	cts := make([]ct, len(terms))
	for i, t := range terms {
		cts[i] = ct{t.Coef, t.Lit}
	}
	sort.Slice(cts, func(i, j int) bool {
		if cts[i].lit != cts[j].lit {
			return cts[i].lit < cts[j].lit
		}
		return cts[i].coef < cts[j].coef
	})
	b := make([]byte, 0, 8*len(cts)+4)
	b = appendInt(b, bound)
	for _, t := range cts {
		b = appendInt(b, t.coef)
		b = appendInt(b, int(t.lit))
	}
	return string(b)
}

func appendInt(b []byte, x int) []byte {
	u := uint64(x)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56), ';')
}

// Detect is the convenience entry point: build the graph, search for
// automorphisms, translate and verify generators against the formula.
// It returns the verified literal permutations and the raw search result
// (whose Order field reports the full group size including any symmetries
// that act only on auxiliary vertices — in the constructions used here the
// two coincide).
func Detect(f *pb.Formula, opts autom.Options) ([]LitPerm, *autom.Result) {
	enc := Build(f)
	res := autom.FindAutomorphisms(enc.G, opts)
	perms := enc.LitPerms(res.Generators)
	verified := perms[:0]
	for _, p := range perms {
		if VerifyLitPerm(f, p) {
			verified = append(verified, p)
		}
	}
	return verified, res
}

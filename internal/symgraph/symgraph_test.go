package symgraph

import (
	"math/big"
	"testing"

	"repro/internal/autom"
	"repro/internal/cnf"
	"repro/internal/pb"
)

func lit(v int) cnf.Lit  { return cnf.PosLit(v) }
func nlit(v int) cnf.Lit { return cnf.NegLit(v) }

func TestDetectSwapSymmetry(t *testing.T) {
	// (x1 ∨ x2) is symmetric under x1 ↔ x2.
	f := pb.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	perms, res := Detect(f, autom.Options{})
	if !res.Exact {
		t.Fatal("search did not complete")
	}
	found := false
	for _, p := range perms {
		if p.Img[1] == lit(2) && p.Img[2] == lit(1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("swap x1↔x2 not found; perms=%d order=%v", len(perms), res.Order)
	}
}

func TestDetectPhaseShiftSymmetry(t *testing.T) {
	// (x1 ∨ x2)(¬x1 ∨ ¬x2): symmetric under the phase shift x_i ↔ ¬x_i
	// applied to both variables (and under x1 ↔ x2).
	f := pb.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.AddClause(nlit(1), nlit(2))
	perms, _ := Detect(f, autom.Options{})
	sawPhase := false
	for _, p := range perms {
		if !p.Img[1].Sign() || !p.Img[2].Sign() {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Fatal("no phase-shift generator detected")
	}
	for _, p := range perms {
		if !VerifyLitPerm(f, p) {
			t.Fatal("detected symmetry fails verification")
		}
	}
}

func TestDetectAsymmetricFormula(t *testing.T) {
	// (x1)(x1 ∨ x2): x1 and x2 are NOT interchangeable.
	f := pb.NewFormula(2)
	f.AddClause(lit(1))
	f.AddClause(lit(1), lit(2))
	perms, _ := Detect(f, autom.Options{})
	for _, p := range perms {
		if p.Img[1].Var() == 2 {
			t.Fatalf("spurious symmetry x1→%v", p.Img[1])
		}
	}
}

func TestPBConstraintSymmetry(t *testing.T) {
	// x1+x2+x3 >= 2 is symmetric under all 3! permutations.
	f := pb.NewFormula(3)
	f.AddPB([]pb.Term{
		{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}, {Coef: 1, Lit: lit(3)},
	}, pb.GE, 2)
	perms, res := Detect(f, autom.Options{})
	if len(perms) == 0 {
		t.Fatal("no symmetry detected for symmetric PB constraint")
	}
	// Order should be at least 6 (S3 on variables; phase structure may add
	// nothing because the constraint distinguishes phases).
	if res.Order.Cmp(big.NewInt(6)) < 0 {
		t.Fatalf("order %v < 6", res.Order)
	}
	for _, p := range perms {
		if !VerifyLitPerm(f, p) {
			t.Fatal("unverifiable generator")
		}
	}
}

func TestWeightedConstraintBreaksSymmetry(t *testing.T) {
	// 2x1+1x2 >= 2: x1 and x2 are not interchangeable (different
	// coefficients → different coefficient-node colors).
	f := pb.NewFormula(2)
	f.AddPB([]pb.Term{{Coef: 2, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}}, pb.GE, 2)
	perms, _ := Detect(f, autom.Options{})
	for _, p := range perms {
		if p.Img[1].Var() == 2 {
			t.Fatal("coefficient distinction lost")
		}
	}
}

func TestObjectiveRestrictsSymmetry(t *testing.T) {
	// x1+x2 >= 1 symmetric; objective min x1 breaks the swap.
	f := pb.NewFormula(2)
	f.AddPB([]pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}}, pb.GE, 1)
	f.SetObjective([]pb.Term{{Coef: 1, Lit: lit(1)}})
	perms, _ := Detect(f, autom.Options{})
	for _, p := range perms {
		if p.Img[1].Var() == 2 || p.Img[2].Var() == 1 {
			t.Fatal("objective asymmetry lost")
		}
	}
	// With a symmetric objective the swap must reappear.
	f2 := pb.NewFormula(2)
	f2.AddPB([]pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}}, pb.GE, 1)
	f2.SetObjective([]pb.Term{{Coef: 1, Lit: lit(1)}, {Coef: 1, Lit: lit(2)}})
	perms2, _ := Detect(f2, autom.Options{})
	found := false
	for _, p := range perms2 {
		if p.Img[1] == lit(2) {
			found = true
		}
	}
	if !found {
		t.Fatal("symmetric objective should preserve the swap")
	}
}

func TestVerifyLitPermRejectsNonSymmetry(t *testing.T) {
	f := pb.NewFormula(2)
	f.AddClause(lit(1))
	bogus := NewIdentityPerm(2)
	bogus.Img[1] = lit(2)
	bogus.Img[2] = lit(1)
	if VerifyLitPerm(f, bogus) {
		t.Fatal("swap should not verify against (x1)")
	}
	if !VerifyLitPerm(f, NewIdentityPerm(2)) {
		t.Fatal("identity always verifies")
	}
}

func TestVerifyLitPermPhase(t *testing.T) {
	// (x1 ∨ x2)(¬x1 ∨ ¬x2): global phase shift verifies; single-variable
	// phase shift does not.
	f := pb.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.AddClause(nlit(1), nlit(2))
	both := NewIdentityPerm(2)
	both.Img[1], both.Img[2] = nlit(1), nlit(2)
	if !VerifyLitPerm(f, both) {
		t.Fatal("global phase shift is a symmetry")
	}
	one := NewIdentityPerm(2)
	one.Img[1] = nlit(1)
	if VerifyLitPerm(f, one) {
		t.Fatal("single phase shift is not a symmetry")
	}
}

func TestLitPermBasics(t *testing.T) {
	p := NewIdentityPerm(3)
	if !p.IsIdentity() || len(p.Support()) != 0 {
		t.Fatal("fresh perm should be identity")
	}
	p.Img[1] = nlit(2)
	p.Img[2] = nlit(1)
	if p.IsIdentity() {
		t.Fatal("no longer identity")
	}
	if got := p.Image(lit(1)); got != nlit(2) {
		t.Fatalf("Image(x1) = %v", got)
	}
	if got := p.Image(nlit(1)); got != lit(2) {
		t.Fatalf("Image(¬x1) = %v", got)
	}
	sup := p.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 2 {
		t.Fatalf("Support = %v", sup)
	}
}

func TestUnitClauseVertex(t *testing.T) {
	// Unit clauses must pin their literal: (x1) with (x1∨x2∨x3) makes x1
	// distinguishable from x2,x3 but keeps x2↔x3.
	f := pb.NewFormula(3)
	f.AddClause(lit(1))
	f.AddClause(lit(1), lit(2), lit(3))
	perms, _ := Detect(f, autom.Options{})
	swap23 := false
	for _, p := range perms {
		if p.Img[1].Var() != 1 {
			t.Fatal("x1 must stay fixed")
		}
		if p.Img[2] == lit(3) {
			swap23 = true
		}
	}
	if !swap23 {
		t.Fatal("x2↔x3 not detected")
	}
}

func TestDuplicateClausesNoSpuriousSymmetry(t *testing.T) {
	// Duplicate long clauses are collapsed; formula symmetry is unchanged.
	f := pb.NewFormula(3)
	f.AddClause(lit(1), lit(2), lit(3))
	f.AddClause(lit(1), lit(2), lit(3))
	perms, _ := Detect(f, autom.Options{})
	for _, p := range perms {
		if !VerifyLitPerm(f, p) {
			t.Fatal("verification failed")
		}
	}
}

func TestColoringEncodingColorSymmetry(t *testing.T) {
	// Mini coloring encoding of a single edge with K=3: x[v][c] variables
	// v∈{a,b}, y[c] usage variables. All 3! color permutations must appear:
	// order divisible by 6.
	K := 3
	x := func(v, c int) cnf.Lit { return cnf.PosLit(v*K + c + 1) }
	y := func(c int) cnf.Lit { return cnf.PosLit(2*K + c + 1) }
	f := pb.NewFormula(3 * K)
	for v := 0; v < 2; v++ {
		terms := make([]pb.Term, K)
		for c := 0; c < K; c++ {
			terms[c] = pb.Term{Coef: 1, Lit: x(v, c)}
		}
		f.AddPB(terms, pb.EQ, 1)
	}
	for c := 0; c < K; c++ {
		f.AddClause(x(0, c).Neg(), x(1, c).Neg())
		f.AddImplication(x(0, c), y(c))
		f.AddImplication(x(1, c), y(c))
		f.AddClause(y(c).Neg(), x(0, c), x(1, c))
	}
	obj := make([]pb.Term, K)
	for c := 0; c < K; c++ {
		obj[c] = pb.Term{Coef: 1, Lit: y(c)}
	}
	f.SetObjective(obj)
	perms, res := Detect(f, autom.Options{})
	if len(perms) == 0 {
		t.Fatal("no color symmetry detected")
	}
	mod := new(big.Int).Mod(res.Order, big.NewInt(6))
	if mod.Sign() != 0 {
		t.Fatalf("order %v not divisible by |S3|=6", res.Order)
	}
	for _, p := range perms {
		if !VerifyLitPerm(f, p) {
			t.Fatal("color symmetry failed verification")
		}
	}
}

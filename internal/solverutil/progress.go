package solverutil

import "time"

// Progress is a point-in-time snapshot of a running CDCL (or BnB) search,
// the payload of the rate-limited progress callbacks both engines offer.
// The counter fields mirror the engines' Stats; the remaining fields are
// filled in by the layers above the engine (optimization loop, portfolio).
type Progress struct {
	// Engine names the configuration emitting the snapshot ("pbs2",
	// "galena", "pueblo", "bnb"; empty for the plain SAT solver).
	Engine string `json:"engine,omitempty"`
	// Incumbent is the best objective value found so far by the
	// optimization loop driving the engine — for the coloring flow, the
	// color count of the best coloring seen. -1 until the first feasible
	// solution (and always -1 in pure decision solves).
	Incumbent int `json:"incumbent"`

	Conflicts    int64 `json:"conflicts"`
	Decisions    int64 `json:"decisions"`
	Propagations int64 `json:"propagations"`
	Restarts     int64 `json:"restarts"`
	Learnts      int64 `json:"learnts"`
	// Reduces and Removed report learnt-database reductions and the
	// clauses they deleted; together with Learnts they describe the LBD
	// tiering's churn.
	Reduces int64 `json:"reduces"`
	Removed int64 `json:"removed"`
	// ChronoBacktracks, VivifiedLits and LBDUpdates report the search
	// knobs' activity (see the package comments of internal/sat and
	// internal/pbsolver).
	ChronoBacktracks int64 `json:"chrono_backtracks"`
	VivifiedLits     int64 `json:"vivified_lits"`
	LBDUpdates       int64 `json:"lbd_updates"`

	// Cube-and-conquer fields, filled by internal/par's merged snapshots
	// (zero on single-engine and portfolio runs). Workers is the conquer
	// pool size; the cube counters track the split's lifecycle and
	// SharedExported/SharedImported count learnt clauses through the
	// exchange.
	Workers        int   `json:"workers,omitempty"`
	CubesTotal     int64 `json:"cubes_total,omitempty"`
	CubesClosed    int64 `json:"cubes_closed,omitempty"`
	CubesRefuted   int64 `json:"cubes_refuted,omitempty"`
	SharedExported int64 `json:"shared_exported,omitempty"`
	SharedImported int64 `json:"shared_imported,omitempty"`
}

// ProgressFunc receives progress snapshots. It is called from the solving
// goroutine — several concurrently under a portfolio — so implementations
// must be fast and safe for concurrent use.
type ProgressFunc func(Progress)

// DefaultProgressInterval is the minimum spacing between progress
// callbacks when the caller does not choose one.
const DefaultProgressInterval = 200 * time.Millisecond

// ProgressEmitter rate-limits progress callbacks inside a solver's search
// loop. The zero value is a disabled emitter; engines can therefore embed
// one unconditionally and keep the hot loop branch to a nil check plus a
// time comparison on the same amortized schedule as their budget checks.
type ProgressEmitter struct {
	fn       ProgressFunc
	interval time.Duration
	next     time.Time
}

// NewProgressEmitter builds an emitter for fn (nil fn = disabled emitter);
// interval ≤ 0 selects DefaultProgressInterval. The limiter starts armed:
// the first snapshot comes one interval into the search, so solves faster
// than the interval report nothing (their terminal result is all there is
// to say).
func NewProgressEmitter(fn ProgressFunc, interval time.Duration) ProgressEmitter {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	return ProgressEmitter{fn: fn, interval: interval, next: time.Now().Add(interval)}
}

// Enabled reports whether the emitter has a callback at all; use it to
// skip snapshot assembly entirely when no one is listening.
func (e *ProgressEmitter) Enabled() bool { return e.fn != nil }

// Ready reports whether enough time has passed since the last emission.
// Call it on an amortized schedule (every few hundred loop iterations),
// not per propagation.
func (e *ProgressEmitter) Ready() bool {
	return e.fn != nil && time.Now().After(e.next)
}

// Emit delivers one snapshot and arms the rate limiter. Callers gate on
// Ready (or Enabled, for unconditional milestone events such as an
// improved incumbent).
func (e *ProgressEmitter) Emit(p Progress) {
	if e.fn == nil {
		return
	}
	e.next = time.Now().Add(e.interval)
	e.fn(p)
}

package solverutil

import (
	"testing"

	"repro/internal/cnf"
)

func lits(vs ...int) []cnf.Lit {
	out := make([]cnf.Lit, len(vs))
	for i, v := range vs {
		out[i] = cnf.Lit(v)
	}
	return out
}

func TestEncodeDecodeLit(t *testing.T) {
	for _, l := range lits(1, -1, 7, -7, 123456, -123456) {
		if got := DecodeLit(EncodeLit(l)); got != l {
			t.Fatalf("roundtrip %v -> %v", l, got)
		}
	}
	if EncodeLit(cnf.PosLit(3)) != 6 || EncodeLit(cnf.NegLit(3)) != 7 {
		t.Fatalf("encoding convention changed: +3=%d -3=%d",
			EncodeLit(cnf.PosLit(3)), EncodeLit(cnf.NegLit(3)))
	}
	// Complement is always code^1 (the watch-index identity BCP relies on).
	for _, l := range lits(5, -5, 9) {
		if EncodeLit(l.Neg()) != EncodeLit(l)^1 {
			t.Fatalf("complement of %v is not code^1", l)
		}
	}
}

func TestArenaAllocAndAccessors(t *testing.T) {
	var a Arena
	c1 := a.Alloc(lits(1, -2, 3), false)
	c2 := a.Alloc(lits(-4, 5, 6, -7), true)

	if a.Size(c1) != 3 || a.Size(c2) != 4 {
		t.Fatalf("sizes: %d %d", a.Size(c1), a.Size(c2))
	}
	if a.Learnt(c1) || !a.Learnt(c2) {
		t.Fatalf("learnt flags: %v %v", a.Learnt(c1), a.Learnt(c2))
	}
	if a.Lit(c1, 1) != cnf.NegLit(2) || a.Lit(c2, 3) != cnf.NegLit(7) {
		t.Fatalf("lits: %v %v", a.Lit(c1, 1), a.Lit(c2, 3))
	}
	a.SetLBD(c2, 3)
	if a.LBD(c2) != 3 {
		t.Fatalf("LBD = %d, want 3", a.LBD(c2))
	}
	if a.Size(c2) != 4 || !a.Learnt(c2) {
		t.Fatal("SetLBD clobbered size or learnt flag")
	}
	a.SetLBD(c2, MaxLBD+100)
	if a.LBD(c2) != MaxLBD {
		t.Fatalf("LBD should saturate at %d, got %d", MaxLBD, a.LBD(c2))
	}
	a.SetActivity(c1, 2.5)
	if a.Activity(c1) != 2.5 {
		t.Fatalf("activity = %v", a.Activity(c1))
	}
	// Literal views are mutable and shared with the store.
	v := a.Lits(c1)
	v[0], v[2] = v[2], v[0]
	if a.Lit(c1, 0) != cnf.PosLit(3) {
		t.Fatalf("swap through view not visible: %v", a.Lit(c1, 0))
	}
}

func TestArenaFreeAndGC(t *testing.T) {
	var a Arena
	c1 := a.Alloc(lits(1, 2, 3), false)
	c2 := a.Alloc(lits(4, 5, 6), true)
	c3 := a.Alloc(lits(-1, -2, -3, -4), true)
	a.SetLBD(c3, 5)
	a.SetActivity(c3, 1.5)

	a.Free(c2)
	a.Free(c2) // double free is a no-op
	if a.Wasted() != 2+3 {
		t.Fatalf("wasted = %d, want 5", a.Wasted())
	}

	to := a.BeginGC()
	n1 := a.Reloc(to, c1)
	n3 := a.Reloc(to, c3)
	if again := a.Reloc(to, c3); again != n3 {
		t.Fatalf("second Reloc returned %d, want forwarding %d", again, n3)
	}
	a.FinishGC(to)

	if a.Wasted() != 0 {
		t.Fatalf("wasted after GC = %d", a.Wasted())
	}
	if a.Len() != (2+3)+(2+4) {
		t.Fatalf("len after GC = %d", a.Len())
	}
	if a.Size(n1) != 3 || a.Learnt(n1) {
		t.Fatal("c1 corrupted by GC")
	}
	if a.Size(n3) != 4 || !a.Learnt(n3) || a.LBD(n3) != 5 || a.Activity(n3) != 1.5 {
		t.Fatalf("c3 metadata lost: size=%d learnt=%v lbd=%d act=%v",
			a.Size(n3), a.Learnt(n3), a.LBD(n3), a.Activity(n3))
	}
	for i, want := range lits(-1, -2, -3, -4) {
		if a.Lit(n3, i) != want {
			t.Fatalf("c3 literal %d = %v, want %v", i, a.Lit(n3, i), want)
		}
	}
}

func TestArenaRelocFreedPanics(t *testing.T) {
	var a Arena
	c := a.Alloc(lits(1, 2, 3), true)
	a.Free(c)
	to := a.BeginGC()
	defer func() {
		if recover() == nil {
			t.Fatal("relocating a freed clause should panic")
		}
	}()
	a.Reloc(to, c)
}

func TestVarHeapOrdering(t *testing.T) {
	act := []float64{0, 5, 1, 9, 3}
	var h VarHeap
	h.Rebuild(4, act)
	got := []int{}
	for !h.Empty() {
		got = append(got, h.Pop(act))
	}
	want := []int{3, 1, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order = %v, want %v", got, want)
		}
	}
}

func TestVarHeapUpdateAndPush(t *testing.T) {
	act := []float64{0, 1, 2, 3}
	var h VarHeap
	h.Rebuild(3, act)
	v := h.Pop(act) // 3
	if v != 3 {
		t.Fatalf("pop = %d", v)
	}
	act[1] = 10
	h.Update(1, act)
	if got := h.Pop(act); got != 1 {
		t.Fatalf("after update pop = %d, want 1", got)
	}
	h.Push(3, act)
	h.Push(3, act) // duplicate push ignored
	cnt := 0
	for !h.Empty() {
		h.Pop(act)
		cnt++
	}
	if cnt != 2 { // vars 2 and 3
		t.Fatalf("heap size = %d, want 2", cnt)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := Luby(int64(i + 1)); got != w {
			t.Fatalf("Luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

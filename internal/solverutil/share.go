package solverutil

import "repro/internal/cnf"

// DefaultShareLBD is the export threshold used when clause sharing is
// enabled without an explicit LBD cutoff: only "glue-grade" learnt clauses
// (LBD ≤ 2, the tier Glucose-style portfolio solvers exchange) cross
// engine boundaries by default.
const DefaultShareLBD = 2

// MaxShareLen bounds the literal count of an exported clause. Low-LBD
// clauses are almost always short; the cap only exists so a pathological
// wide glue clause cannot blow up every importer's database.
const MaxShareLen = 64

// SharedClause is one learnt clause in transit between solver instances:
// the literals plus the exporter's LBD at export time (importers use it to
// tier the clause without recomputing level structure they do not have).
//
// A shared clause must be implied by the clause database it was learnt
// from alone — never by the exporting solver's assumptions, which hold
// only in its own subproblem. CDCL learnt clauses satisfy this by
// construction (they are resolvents of database clauses; assumptions enter
// the trail as decisions, not as clauses), which is what makes
// cube-and-conquer sharing sound: a clause learnt while conquering one
// cube is valid in every other cube of the same formula.
type SharedClause struct {
	Lits []cnf.Lit
	LBD  int
}

// ExportFunc receives learnt clauses whose LBD passed the engine's export
// threshold. It is called from the solving goroutine on the conflict path,
// so implementations must be fast and must copy lits before returning —
// the slice is the engine's reusable analysis buffer.
type ExportFunc func(lits []cnf.Lit, lbd int)

// ImportFunc returns foreign learnt clauses accumulated since the previous
// call, appending to buf (which may be reused between calls). The returned
// clauses become the property of the caller; implementations must hand out
// copies if the underlying storage is shared. Engines call it at restarts,
// when their trail is empty and attaching new clauses is cheap.
type ImportFunc func(buf []SharedClause) []SharedClause

package solverutil

import (
	"fmt"
	"math"

	"repro/internal/cnf"
)

// CRef is a clause reference: the word offset of the clause header inside an
// Arena. CRefUndef marks "no clause".
type CRef int32

// CRefUndef is the nil clause reference.
const CRefUndef CRef = -1

// EncodeLit maps a literal to its dense uint32 code: positive literal of v
// is 2v, negative is 2v+1. The code doubles as the watch-list index, and the
// code of the complementary literal is code^1.
func EncodeLit(l cnf.Lit) uint32 {
	v := l.Var()
	if l.Sign() {
		return uint32(2 * v)
	}
	return uint32(2*v + 1)
}

// DecodeLit inverts EncodeLit.
func DecodeLit(u uint32) cnf.Lit {
	if u&1 == 0 {
		return cnf.PosLit(int(u >> 1))
	}
	return cnf.NegLit(int(u >> 1))
}

// Watcher is one watch-list entry: the watched clause plus a blocker
// literal (the clause's other watched literal, encoded). When the blocker
// is already true the clause is satisfied and propagation skips it without
// touching the arena — the cache-locality trick watched-literal solvers in
// the Glucose lineage rely on.
type Watcher struct {
	CRef    CRef
	Blocker uint32 // encoded literal
}

// Clause layout inside the store: one header word (size, learnt/reloc/free
// flags, LBD), one activity word (float32 bits; reused as the forwarding
// address during GC), then the literals, one encoded literal per word.
const (
	hdrWords = 2

	sizeBits = 20
	sizeMask = 1<<sizeBits - 1

	learntBit = 1 << 20
	relocBit  = 1 << 21
	freeBit   = 1 << 22

	lbdShift = 23
	// MaxLBD is the largest storable LBD; larger values saturate. Reduction
	// policies only compare LBDs near the glue cutoff, so saturation is
	// harmless.
	MaxLBD = 1<<(32-lbdShift) - 1
)

// Arena is a flat clause store: clauses are spans of uint32 words addressed
// by CRef, so the clause database is one allocation and watch lists carry
// int32 offsets instead of pointers. Detached clauses are marked free and
// their space is reclaimed by an explicit GC pass (BeginGC/Reloc/FinishGC).
//
// An Arena must not be shared between solver instances; each engine owns
// exactly one.
type Arena struct {
	store  []uint32
	wasted int // words occupied by freed clauses
}

// Alloc appends a clause and returns its reference. Clauses of size < 2 are
// rejected (units live on the trail, binaries in the binary watch lists).
func (a *Arena) Alloc(lits []cnf.Lit, learnt bool) CRef {
	if len(lits) < 2 || len(lits) > sizeMask {
		panic(fmt.Sprintf("solverutil: clause size %d out of arena range", len(lits)))
	}
	c := CRef(len(a.store))
	hdr := uint32(len(lits))
	if learnt {
		hdr |= learntBit
	}
	a.store = append(a.store, hdr, 0)
	for _, l := range lits {
		a.store = append(a.store, EncodeLit(l))
	}
	return c
}

// Len returns the number of words in use (including freed clauses).
func (a *Arena) Len() int { return len(a.store) }

// Wasted returns the number of words held by freed clauses.
func (a *Arena) Wasted() int { return a.wasted }

// Size returns the clause's literal count.
func (a *Arena) Size(c CRef) int { return int(a.store[c] & sizeMask) }

// Learnt reports whether the clause was learnt.
func (a *Arena) Learnt(c CRef) bool { return a.store[c]&learntBit != 0 }

// Freed reports whether the clause has been freed.
func (a *Arena) Freed(c CRef) bool { return a.store[c]&freeBit != 0 }

// LBD returns the clause's literal-blocks-distance score.
func (a *Arena) LBD(c CRef) int { return int(a.store[c] >> lbdShift) }

// SetLBD stores the clause's LBD, saturating at MaxLBD.
func (a *Arena) SetLBD(c CRef, lbd int) {
	if lbd > MaxLBD {
		lbd = MaxLBD
	}
	a.store[c] = a.store[c]&(1<<lbdShift-1) | uint32(lbd)<<lbdShift
}

// Activity returns the clause's bump activity.
func (a *Arena) Activity(c CRef) float32 {
	return math.Float32frombits(a.store[c+1])
}

// SetActivity stores the clause's bump activity.
func (a *Arena) SetActivity(c CRef, act float32) {
	a.store[c+1] = math.Float32bits(act)
}

// Lits returns the clause's encoded literals as a mutable view into the
// store. The view is invalidated by Alloc and GC.
func (a *Arena) Lits(c CRef) []uint32 {
	n := int(a.store[c] & sizeMask)
	return a.store[int(c)+hdrWords : int(c)+hdrWords+n : int(c)+hdrWords+n]
}

// Lit returns the i-th literal of the clause, decoded.
func (a *Arena) Lit(c CRef, i int) cnf.Lit {
	return DecodeLit(a.store[int(c)+hdrWords+i])
}

// Free marks the clause detached; its words are reclaimed at the next GC.
func (a *Arena) Free(c CRef) {
	if a.store[c]&freeBit != 0 {
		return
	}
	a.store[c] |= freeBit
	a.wasted += hdrWords + a.Size(c)
}

// BeginGC starts a compaction pass, returning the destination arena sized
// for the live clauses. The caller relocates every live reference with
// Reloc and then installs the destination with FinishGC.
func (a *Arena) BeginGC() *Arena {
	return &Arena{store: make([]uint32, 0, len(a.store)-a.wasted)}
}

// Reloc moves clause c into the destination arena (once — later calls
// return the forwarding address) and returns its new reference.
func (a *Arena) Reloc(to *Arena, c CRef) CRef {
	hdr := a.store[c]
	if hdr&relocBit != 0 {
		return CRef(a.store[c+1])
	}
	if hdr&freeBit != 0 {
		panic("solverutil: relocating a freed clause")
	}
	n := int(hdr & sizeMask)
	nc := CRef(len(to.store))
	to.store = append(to.store, a.store[int(c):int(c)+hdrWords+n]...)
	a.store[c] = hdr | relocBit
	a.store[c+1] = uint32(nc)
	return nc
}

// FinishGC replaces the arena's contents with the compacted destination.
func (a *Arena) FinishGC(to *Arena) {
	a.store = to.store
	a.wasted = 0
}

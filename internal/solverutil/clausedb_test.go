package solverutil

import (
	"testing"

	"repro/internal/cnf"
)

func newDB(t *testing.T, nVars int) *ClauseDB {
	t.Helper()
	db := &ClauseDB{}
	db.Init()
	for v := 0; v < nVars; v++ {
		db.GrowVar()
	}
	return db
}

// watcherFor reports whether literal l's falsification watch list contains
// clause c, and returns the blocker it carries.
func watcherFor(db *ClauseDB, l cnf.Lit, c CRef) (uint32, bool) {
	for _, w := range db.Watches[EncodeLit(l)^1] {
		if w.CRef == c {
			return w.Blocker, true
		}
	}
	return 0, false
}

func TestAttachInstallsBothWatchersWithBlockers(t *testing.T) {
	db := newDB(t, 4)
	c := db.Arena.Alloc(lits(1, -2, 3), false)
	db.Clauses = append(db.Clauses, c)
	db.Attach(c)

	b0, ok0 := watcherFor(db, cnf.PosLit(1), c)
	b1, ok1 := watcherFor(db, cnf.NegLit(2), c)
	if !ok0 || !ok1 {
		t.Fatal("Attach did not install watchers on the first two literals")
	}
	// Each watcher's blocker is the other watched literal.
	if b0 != EncodeLit(cnf.NegLit(2)) || b1 != EncodeLit(cnf.PosLit(1)) {
		t.Fatalf("blockers are %d and %d, want the opposite watched literals", b0, b1)
	}
	if _, ok := watcherFor(db, cnf.PosLit(3), c); ok {
		t.Fatal("third literal must not be watched")
	}
}

func TestDetachRemovesExactlyOwnWatchers(t *testing.T) {
	db := newDB(t, 4)
	c1 := db.Arena.Alloc(lits(1, 2, 3), false)
	c2 := db.Arena.Alloc(lits(1, 2, 4), false)
	db.Attach(c1)
	db.Attach(c2)
	db.Detach(c1)
	if _, ok := watcherFor(db, cnf.PosLit(1), c1); ok {
		t.Fatal("c1 still watched after Detach")
	}
	if _, ok := watcherFor(db, cnf.PosLit(2), c1); ok {
		t.Fatal("c1 still watched after Detach")
	}
	if _, ok := watcherFor(db, cnf.PosLit(1), c2); !ok {
		t.Fatal("Detach(c1) also removed c2's watcher")
	}
	if _, ok := watcherFor(db, cnf.PosLit(2), c2); !ok {
		t.Fatal("Detach(c1) also removed c2's watcher")
	}
}

func TestAttachBinaryImpliesBothDirections(t *testing.T) {
	db := newDB(t, 2)
	a, b := cnf.PosLit(1), cnf.NegLit(2)
	db.AttachBinary(a, b)
	// Falsifying a must imply b and vice versa.
	if got := db.BinWatches[EncodeLit(a)^1]; len(got) != 1 || got[0] != EncodeLit(b) {
		t.Fatalf("BinWatches[¬a] = %v, want [enc(b)]", got)
	}
	if got := db.BinWatches[EncodeLit(b)^1]; len(got) != 1 || got[0] != EncodeLit(a) {
		t.Fatalf("BinWatches[¬b] = %v, want [enc(a)]", got)
	}
}

// addLearnt allocates an attached learnt clause with the given LBD and
// activity over three fresh-ish variables.
func addLearnt(db *ClauseDB, vs []int, lbd int, act float32) CRef {
	c := db.Arena.Alloc(lits(vs...), true)
	db.Arena.SetLBD(c, lbd)
	db.Arena.SetActivity(c, act)
	db.Learnts = append(db.Learnts, c)
	db.Attach(c)
	return c
}

func TestReduceBelowThresholdIsNoop(t *testing.T) {
	db := newDB(t, 10)
	for i := 0; i < 19; i++ {
		addLearnt(db, []int{1 + i%8, 9, 10}, 5, 0)
	}
	if removed := db.Reduce(2, func(CRef) bool { return false }); removed != 0 {
		t.Fatalf("Reduce removed %d clauses below the 20-clause threshold", removed)
	}
}

// TestReduceOrderingAndProtection: reduction removes roughly half the
// learnts, worst-first (highest LBD, then lowest activity), and never
// touches glue or locked clauses.
func TestReduceOrderingAndProtection(t *testing.T) {
	db := newDB(t, 40)
	var glue, locked, badHighLBD, goodHighLBD CRef
	lockedSet := map[CRef]bool{}
	// 40 clauses: LBD ramps 3..12; two special high-LBD clauses at the
	// end differ only in activity.
	for i := 0; i < 38; i++ {
		c := addLearnt(db, []int{1 + i%20, 21 + i%10, 31 + i%8}, 3+i%10, float32(i))
		switch i {
		case 0:
			glue = addLearnt(db, []int{5, 6, 7}, 2, 0) // LBD ≤ glue: kept
		case 1:
			locked = c
			lockedSet[c] = true
		}
	}
	badHighLBD = addLearnt(db, []int{1, 2, 3}, 12, 0.0)
	goodHighLBD = addLearnt(db, []int{4, 5, 6}, 12, 1e6)
	_ = goodHighLBD

	all := append([]CRef{}, db.Learnts...)
	before := len(db.Learnts)
	removed := db.Reduce(2, func(c CRef) bool { return lockedSet[c] })
	if removed == 0 {
		t.Fatal("Reduce removed nothing on an over-full learnt DB")
	}
	if got := before - len(db.Learnts); got != removed {
		t.Fatalf("Reduce reported %d removals, list shrank by %d", removed, got)
	}
	stillHave := func(c CRef) bool {
		for _, l := range db.Learnts {
			if l == c {
				return true
			}
		}
		return false
	}
	if !stillHave(glue) {
		t.Fatal("Reduce deleted a glue clause (LBD ≤ cutoff)")
	}
	if !stillHave(locked) {
		t.Fatal("Reduce deleted a locked clause")
	}
	if db.Arena.Freed(glue) || db.Arena.Freed(locked) {
		t.Fatal("protected clause freed in the arena")
	}
	// The worst clause (max LBD, min activity) must be the first to go.
	if stillHave(badHighLBD) {
		t.Fatal("Reduce kept the worst clause (LBD 12, activity 0)")
	}
	// Ordering: every removed clause must sort no better (higher LBD,
	// then lower activity) than every kept clause that was eligible for
	// deletion (not glue, not locked).
	worseOrEqual := func(r, k CRef) bool {
		lr, lk := db.Arena.LBD(r), db.Arena.LBD(k)
		if lr != lk {
			return lr > lk
		}
		return db.Arena.Activity(r) <= db.Arena.Activity(k)
	}
	for _, c := range all {
		if stillHave(c) {
			continue
		}
		for _, k := range db.Learnts {
			if db.Arena.LBD(k) <= 2 || lockedSet[k] {
				continue
			}
			if !worseOrEqual(c, k) {
				t.Fatalf("removed clause (LBD %d, act %g) sorts better than kept (LBD %d, act %g)",
					db.Arena.LBD(c), db.Arena.Activity(c), db.Arena.LBD(k), db.Arena.Activity(k))
			}
		}
	}
	// Removed clauses must be detached from every watch list and freed.
	for _, ws := range db.Watches {
		for _, w := range ws {
			if db.Arena.Freed(w.CRef) {
				t.Fatal("a freed clause is still watched")
			}
		}
	}
}

// TestGCRemapsEverything frees clauses, compacts, and checks that clause
// registries, watchers, and engine-held reason references all point at
// identical literals afterwards.
func TestGCRemapsEverything(t *testing.T) {
	db := newDB(t, 30)
	var kept []CRef
	for i := 0; i < 20; i++ {
		c := db.Arena.Alloc(lits(1+i, 2+i, 3+i), i%2 == 1)
		db.Attach(c)
		if i%2 == 1 {
			db.Learnts = append(db.Learnts, c)
		} else {
			db.Clauses = append(db.Clauses, c)
		}
		kept = append(kept, c)
	}
	// Free every third clause (detaching first, as engines do).
	freed := map[CRef]bool{}
	for i, c := range kept {
		if i%3 == 0 {
			db.Detach(c)
			db.Arena.Free(c)
			freed[c] = true
		}
	}
	filter := func(cs []CRef) []CRef {
		out := cs[:0]
		for _, c := range cs {
			if !freed[c] {
				out = append(out, c)
			}
		}
		return out
	}
	db.Clauses = filter(db.Clauses)
	db.Learnts = filter(db.Learnts)

	// Record surviving clauses' literal payloads, and hold one as a
	// "reason" the way an engine would.
	want := map[string][]uint32{}
	snapshot := func(c CRef) string {
		return string(rune(db.Arena.Lits(c)[0])) + string(rune(db.Arena.Lits(c)[1])) + string(rune(db.Arena.Lits(c)[2]))
	}
	for _, c := range append(append([]CRef{}, db.Clauses...), db.Learnts...) {
		cp := append([]uint32(nil), db.Arena.Lits(c)...)
		want[snapshot(c)] = cp
	}
	reason := db.Learnts[0]
	reasonLits := append([]uint32(nil), db.Arena.Lits(reason)...)

	wastedBefore := db.Arena.Wasted()
	if wastedBefore == 0 {
		t.Fatal("test setup: nothing wasted before GC")
	}
	db.GC(func(reloc func(CRef) CRef) {
		reason = reloc(reason)
	})
	if db.Arena.Wasted() != 0 {
		t.Fatalf("Wasted = %d after GC, want 0", db.Arena.Wasted())
	}
	for _, c := range append(append([]CRef{}, db.Clauses...), db.Learnts...) {
		got := db.Arena.Lits(c)
		w, ok := want[snapshot(c)]
		if !ok {
			t.Fatalf("clause %d has unrecognized payload after GC", c)
		}
		for i := range got {
			if got[i] != w[i] {
				t.Fatalf("clause %d literals changed across GC", c)
			}
		}
	}
	for i, u := range db.Arena.Lits(reason) {
		if u != reasonLits[i] {
			t.Fatal("reason reference not remapped consistently")
		}
	}
	// Watchers must reference live clauses whose first two literals match
	// the watched positions.
	for _, ws := range db.Watches {
		for _, w := range ws {
			if db.Arena.Freed(w.CRef) {
				t.Fatal("watcher references a freed clause after GC")
			}
		}
	}
}

func TestNeedsGCThreshold(t *testing.T) {
	db := newDB(t, 10)
	var cs []CRef
	for i := 0; i < 8; i++ {
		cs = append(cs, db.Arena.Alloc(lits(1, 2, 3), false))
	}
	if db.NeedsGC() {
		t.Fatal("NeedsGC with nothing freed")
	}
	// Free 3 of 8 clauses: wasted = 3/8 > 1/4.
	for _, c := range cs[:3] {
		db.Arena.Free(c)
	}
	if !db.NeedsGC() {
		t.Fatalf("NeedsGC = false with %d/%d words wasted", db.Arena.Wasted(), db.Arena.Len())
	}
}

// Package solverutil holds the data structures shared by the two CDCL
// engines (internal/sat and internal/pbsolver): the VSIDS order heap, the
// flat clause arena with its watcher lists, and the Luby restart sequence.
// Keeping them here stops the engines from drifting apart and keeps the hot
// propagation path free of per-clause pointer chasing.
package solverutil

// VarHeap is an indexed binary max-heap over variable activities, the VSIDS
// decision order (Moskewicz et al. 2001). Variables are 1..n; position 0 of
// the index array is unused.
type VarHeap struct {
	heap []int // heap of variables
	pos  []int // pos[v] = index of v in heap, -1 if absent
}

// Ensure grows the heap's index to cover variables 1..n, pushing new ones.
func (h *VarHeap) Ensure(n int, act []float64) {
	for len(h.pos) <= n {
		v := len(h.pos)
		h.pos = append(h.pos, -1)
		if v >= 1 {
			h.Push(v, act)
		}
	}
}

// Rebuild resets the heap to contain all n variables.
func (h *VarHeap) Rebuild(n int, act []float64) {
	h.heap = h.heap[:0]
	h.pos = make([]int, n+1)
	for v := 1; v <= n; v++ {
		h.pos[v] = -1
	}
	for v := 1; v <= n; v++ {
		h.Push(v, act)
	}
}

// Empty reports whether no variable is queued.
func (h *VarHeap) Empty() bool { return len(h.heap) == 0 }

// Push inserts v unless already present.
func (h *VarHeap) Push(v int, act []float64) {
	if v < len(h.pos) && h.pos[v] != -1 {
		return // already present
	}
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
	h.heap = append(h.heap, v)
	h.pos[v] = len(h.heap) - 1
	h.up(len(h.heap)-1, act)
}

// Pop removes and returns the variable with maximum activity (0 when empty).
func (h *VarHeap) Pop(act []float64) int {
	if len(h.heap) == 0 {
		return 0
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0, act)
	}
	return v
}

// Update restores heap order after v's activity increased.
func (h *VarHeap) Update(v int, act []float64) {
	if v >= len(h.pos) || h.pos[v] == -1 {
		return
	}
	h.up(h.pos[v], act)
}

func (h *VarHeap) up(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if act[h.heap[parent]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = i
}

func (h *VarHeap) down(i int, act []float64) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && act[h.heap[right]] > act[h.heap[left]] {
			best = right
		}
		if act[v] >= act[h.heap[best]] {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = i
		i = best
	}
	h.heap[i] = v
	h.pos[v] = i
}

// Luby returns the i-th element (1-based) of the Luby restart sequence.
func Luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return Luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

package solverutil

import "repro/internal/cnf"

// LBDCounter counts distinct decision levels (Audemard & Simon's
// literal-blocks distance) with a generation-stamped scratch array, so
// repeated counts need no clearing. Both engines embed one; keeping the
// stamp logic here stops the four former per-engine copies from drifting.
type LBDCounter struct {
	stamp []int64 // per decision level
	gen   int64
}

// Count returns the LBD of the encoded literals (floored at 1; level-0
// literals are not counted). level is indexed by variable.
func (c *LBDCounter) Count(lits []uint32, level []int) int {
	c.gen++
	n := 0
	for _, u := range lits {
		n += c.mark(level[u>>1])
	}
	if n == 0 {
		n = 1
	}
	return n
}

// CountLits is Count for decoded literals.
func (c *LBDCounter) CountLits(lits []cnf.Lit, level []int) int {
	c.gen++
	n := 0
	for _, l := range lits {
		n += c.mark(level[l.Var()])
	}
	if n == 0 {
		n = 1
	}
	return n
}

func (c *LBDCounter) mark(lv int) int {
	// Empty assumption levels can push decision levels past the variable
	// count, the stamp array's natural size; grow on demand.
	for lv >= len(c.stamp) {
		c.stamp = append(c.stamp, 0)
	}
	if lv > 0 && c.stamp[lv] != c.gen {
		c.stamp[lv] = c.gen
		return 1
	}
	return 0
}

package solverutil

import (
	"math/rand"
	"sort"
	"testing"
)

// checkHeapInvariants verifies the max-heap ordering and the heap/pos
// cross-indexing after any sequence of operations.
func checkHeapInvariants(t *testing.T, h *VarHeap, act []float64) {
	t.Helper()
	for i, v := range h.heap {
		if h.pos[v] != i {
			t.Fatalf("pos[%d] = %d, but heap[%d] = %d", v, h.pos[v], i, v)
		}
		if i > 0 {
			parent := h.heap[(i-1)/2]
			if act[parent] < act[v] {
				t.Fatalf("heap order violated: parent %d (%.2f) < child %d (%.2f)",
					parent, act[parent], v, act[v])
			}
		}
	}
	inHeap := 0
	for v := 1; v < len(h.pos); v++ {
		if h.pos[v] != -1 {
			inHeap++
		}
	}
	if inHeap != len(h.heap) {
		t.Fatalf("pos marks %d vars present, heap holds %d", inHeap, len(h.heap))
	}
}

func TestVarHeapPopsInActivityOrder(t *testing.T) {
	const n = 50
	rng := rand.New(rand.NewSource(11))
	act := make([]float64, n+1)
	for v := 1; v <= n; v++ {
		act[v] = rng.Float64() * 100
	}
	var h VarHeap
	h.Rebuild(n, act)
	checkHeapInvariants(t, &h, act)

	var popped []float64
	for !h.Empty() {
		v := h.Pop(act)
		popped = append(popped, act[v])
		checkHeapInvariants(t, &h, act)
	}
	if len(popped) != n {
		t.Fatalf("popped %d vars, want %d", len(popped), n)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(popped))) {
		t.Fatal("Pop did not return variables in descending activity order")
	}
	if h.Pop(act) != 0 {
		t.Fatal("Pop on empty heap should return 0")
	}
}

func TestVarHeapDuplicatePushIgnored(t *testing.T) {
	act := []float64{0, 5, 3}
	var h VarHeap
	h.Rebuild(2, act)
	h.Push(1, act) // already present
	if len(h.heap) != 2 {
		t.Fatalf("duplicate Push grew the heap to %d entries", len(h.heap))
	}
	if v := h.Pop(act); v != 1 {
		t.Fatalf("Pop = %d, want 1 (highest activity)", v)
	}
	h.Push(1, act) // re-insert after pop
	if len(h.heap) != 2 {
		t.Fatalf("re-Push after Pop: heap has %d entries, want 2", len(h.heap))
	}
}

func TestVarHeapUpdateAfterBump(t *testing.T) {
	const n = 20
	act := make([]float64, n+1)
	var h VarHeap
	h.Rebuild(n, act)
	// Bump a low variable past everyone else, as bumpVar does.
	act[17] = 42
	h.Update(17, act)
	checkHeapInvariants(t, &h, act)
	if v := h.Pop(act); v != 17 {
		t.Fatalf("Pop = %d after bumping var 17, want 17", v)
	}
	// Updating an absent variable is a no-op.
	h.Update(17, act)
	checkHeapInvariants(t, &h, act)
}

// TestVarHeapSurvivesActivityRescale mirrors the engines' VSIDS rescale:
// when every activity is multiplied by 1e-100 the relative order (and so
// the heap structure) is preserved, and subsequent bumps still reorder
// correctly.
func TestVarHeapSurvivesActivityRescale(t *testing.T) {
	const n = 30
	rng := rand.New(rand.NewSource(13))
	act := make([]float64, n+1)
	for v := 1; v <= n; v++ {
		act[v] = rng.Float64() * 1e100
	}
	var h VarHeap
	h.Rebuild(n, act)
	top := h.heap[0]
	for v := 1; v <= n; v++ {
		act[v] *= 1e-100
	}
	// The heap is untouched by the rescale (order preserved), so the max
	// must not change and invariants must still hold.
	checkHeapInvariants(t, &h, act)
	if h.heap[0] != top {
		t.Fatalf("rescale changed the max from %d to %d", top, h.heap[0])
	}
	act[5] += 1e10 // a post-rescale bump dominates
	h.Update(5, act)
	if v := h.Pop(act); v != 5 {
		t.Fatalf("Pop = %d after post-rescale bump, want 5", v)
	}
}

func TestVarHeapEnsureGrows(t *testing.T) {
	act := make([]float64, 8)
	var h VarHeap
	h.Ensure(3, act)
	if len(h.heap) != 3 {
		t.Fatalf("Ensure(3) queued %d vars, want 3", len(h.heap))
	}
	h.Ensure(7, act)
	if len(h.heap) != 7 {
		t.Fatalf("Ensure(7) queued %d vars, want 7", len(h.heap))
	}
	checkHeapInvariants(t, &h, act)
	// Ensure with a smaller n must not shrink anything.
	h.Ensure(2, act)
	if len(h.heap) != 7 {
		t.Fatal("Ensure with smaller n mutated the heap")
	}
}

func TestVarHeapRandomizedOperations(t *testing.T) {
	const n = 40
	rng := rand.New(rand.NewSource(17))
	act := make([]float64, n+1)
	var h VarHeap
	h.Rebuild(n, act)
	for op := 0; op < 2000; op++ {
		v := 1 + rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			act[v] += rng.Float64() * 10
			h.Update(v, act)
		case 1:
			h.Push(v, act)
		case 2:
			h.Pop(act)
		}
		checkHeapInvariants(t, &h, act)
	}
}

package solverutil

import (
	"sort"

	"repro/internal/cnf"
)

// Default solver knobs shared by both engines (zero-valued options select
// these).
const (
	// DefaultGlueLBD is the LBD at or below which learnt clauses are never
	// deleted (Audemard & Simon 2009's "glue" clauses).
	DefaultGlueLBD = 2
	// DefaultReduceInterval is the conflict count between learnt-database
	// reductions.
	DefaultReduceInterval = 2000
)

// ClauseDB is the clause-storage layer both CDCL engines share: the arena,
// the watcher lists for long clauses, the inline binary watch lists, and
// the problem/learnt clause registries. It owns attachment, detachment,
// LBD-based reduction, and arena compaction; the engines keep only the
// assignment-dependent parts (value, reasons, locked detection).
type ClauseDB struct {
	Arena      Arena
	Watches    [][]Watcher // indexed by encoded literal (2 per var)
	BinWatches [][]uint32  // encoded implied literal per binary clause
	Clauses    []CRef      // problem clauses with ≥3 literals
	Learnts    []CRef      // learnt clauses with ≥3 literals
}

// Init installs the dummy watch slots for the unused variable 0.
func (db *ClauseDB) Init() {
	db.Watches = [][]Watcher{nil, nil}
	db.BinWatches = [][]uint32{nil, nil}
}

// GrowVar extends the watch lists for one newly tracked variable.
func (db *ClauseDB) GrowVar() {
	db.Watches = append(db.Watches, nil, nil)
	db.BinWatches = append(db.BinWatches, nil, nil)
}

// Attach installs the clause's two watchers, each carrying the other
// watched literal as blocker.
func (db *ClauseDB) Attach(c CRef) {
	lits := db.Arena.Lits(c)
	db.Watches[lits[0]^1] = append(db.Watches[lits[0]^1], Watcher{CRef: c, Blocker: lits[1]})
	db.Watches[lits[1]^1] = append(db.Watches[lits[1]^1], Watcher{CRef: c, Blocker: lits[0]})
}

// Detach removes the clause's watchers (swap-delete).
func (db *ClauseDB) Detach(c CRef) {
	lits := db.Arena.Lits(c)
	for _, u := range []uint32{lits[0], lits[1]} {
		ws := db.Watches[u^1]
		for i := range ws {
			if ws[i].CRef == c {
				ws[i] = ws[len(ws)-1]
				db.Watches[u^1] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// AttachBinary wires the binary clause (a ∨ b) into the inline binary
// watch lists: each side's falsification implies the other literal.
func (db *ClauseDB) AttachBinary(a, b cnf.Lit) {
	ea, eb := EncodeLit(a), EncodeLit(b)
	db.BinWatches[ea^1] = append(db.BinWatches[ea^1], eb)
	db.BinWatches[eb^1] = append(db.BinWatches[eb^1], ea)
}

// Reduce deletes roughly half of the long learnt clauses, worst (highest
// LBD, then lowest activity) first. Glue clauses (LBD ≤ glue) and clauses
// the engine reports locked (current reasons) are kept. Returns the number
// of clauses freed; the caller decides when to compact (see GC).
func (db *ClauseDB) Reduce(glue int, locked func(CRef) bool) int {
	if len(db.Learnts) < 20 {
		return 0
	}
	sort.Slice(db.Learnts, func(i, j int) bool {
		ci, cj := db.Learnts[i], db.Learnts[j]
		li, lj := db.Arena.LBD(ci), db.Arena.LBD(cj)
		if li != lj {
			return li > lj
		}
		return db.Arena.Activity(ci) < db.Arena.Activity(cj)
	})
	target := len(db.Learnts) / 2
	kept := db.Learnts[:0]
	removed := 0
	for _, c := range db.Learnts {
		if removed < target && db.Arena.LBD(c) > glue && !locked(c) {
			db.Detach(c)
			db.Arena.Free(c)
			removed++
			continue
		}
		kept = append(kept, c)
	}
	db.Learnts = kept
	return removed
}

// NeedsGC reports whether freed clauses waste more than a quarter of the
// arena, the compaction trigger.
func (db *ClauseDB) NeedsGC() bool {
	return db.Arena.Wasted()*4 > db.Arena.Len()
}

// GC compacts the arena, remapping the clause registries and every
// watcher. remapReasons is called with the relocation function so the
// engine can remap its reason references in the same pass.
func (db *ClauseDB) GC(remapReasons func(reloc func(CRef) CRef)) {
	to := db.Arena.BeginGC()
	reloc := func(c CRef) CRef { return db.Arena.Reloc(to, c) }
	for i, c := range db.Clauses {
		db.Clauses[i] = reloc(c)
	}
	for i, c := range db.Learnts {
		db.Learnts[i] = reloc(c)
	}
	for wl := range db.Watches {
		ws := db.Watches[wl]
		for i := range ws {
			ws[i].CRef = reloc(ws[i].CRef)
		}
	}
	remapReasons(reloc)
	db.Arena.FinishGC(to)
}

// Package testutil provides the reference oracles the solver test suites
// and fuzz targets check against: a brute-force SAT solver for small
// formulas, model and coloring validity checkers, and deterministic random
// instance generators. Everything here favors being obviously correct over
// being fast — the oracles exist so the optimized engines (internal/sat,
// internal/pbsolver) have an independent ground truth.
package testutil

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/graph"
)

// MaxBruteForceVars bounds BruteForceSAT's exhaustive enumeration.
const MaxBruteForceVars = 20

// BruteForceSAT decides a CNF formula by exhaustive enumeration and, when
// satisfiable, returns a witness assignment (index 0 unused). It panics
// when the formula has more than MaxBruteForceVars variables — the oracle
// is for small randomized instances only.
func BruteForceSAT(f *cnf.Formula) (bool, cnf.Assignment) {
	n := f.NumVars
	if n > MaxBruteForceVars {
		panic(fmt.Sprintf("testutil: BruteForceSAT on %d vars (max %d)", n, MaxBruteForceVars))
	}
	a := make(cnf.Assignment, n+1)
	for mask := uint64(0); mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			return true, a
		}
	}
	return false, nil
}

// CheckModel verifies that the assignment satisfies every clause of the
// formula, returning a descriptive error naming the first violated clause.
func CheckModel(f *cnf.Formula, a cnf.Assignment) error {
	for i, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if a.Lit(l) {
				sat = true
				break
			}
		}
		if !sat {
			return fmt.Errorf("clause %d %v is falsified", i, c)
		}
	}
	return nil
}

// CheckColoring verifies that coloring is a proper K-coloring of g: one
// color in [0, k) per vertex, distinct across every edge. A descriptive
// error names the first violation.
func CheckColoring(g *graph.Graph, coloring []int, k int) error {
	if len(coloring) != g.N() {
		return fmt.Errorf("coloring has %d entries for %d vertices", len(coloring), g.N())
	}
	for v, c := range coloring {
		if c < 0 || c >= k {
			return fmt.Errorf("vertex %d has color %d outside [0,%d)", v, c, k)
		}
	}
	for _, e := range g.Edges() {
		if coloring[e[0]] == coloring[e[1]] {
			return fmt.Errorf("edge (%d,%d) is monochromatic (color %d)", e[0], e[1], coloring[e[0]])
		}
	}
	return nil
}

// BruteForceChromatic returns the chromatic number of g by trying K = 1, 2,
// … with exhaustive assignment search. Exponential; keep g tiny (≤ ~8
// vertices).
func BruteForceChromatic(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if colorable(g, make([]int, n), 0, k) {
			return k
		}
	}
}

func colorable(g *graph.Graph, col []int, v, k int) bool {
	if v == g.N() {
		return true
	}
next:
	for c := 0; c < k; c++ {
		for _, w := range g.Neighbors(v) {
			if w < v && col[w] == c {
				continue next
			}
		}
		col[v] = c
		if colorable(g, col, v+1, k) {
			return true
		}
	}
	return false
}

// RandomCNF generates a uniform random k-CNF formula: nClauses clauses of
// width 1..maxWidth over nVars variables. Deterministic in rng.
func RandomCNF(rng *rand.Rand, nVars, nClauses, maxWidth int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		w := 1 + rng.Intn(maxWidth)
		cl := make([]cnf.Lit, 0, w)
		for j := 0; j < w; j++ {
			l := cnf.PosLit(1 + rng.Intn(nVars))
			if rng.Intn(2) == 0 {
				l = l.Neg()
			}
			cl = append(cl, l)
		}
		f.AddClause(cl...)
	}
	return f
}

// RandomGraph generates a G(n, p) random graph. Deterministic in rng.
func RandomGraph(rng *rand.Rand, name string, n int, p float64) *graph.Graph {
	g := graph.New(name, n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

package testutil_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/pbsolver"
	"repro/internal/sat"
	"repro/internal/testutil"
)

// satKnobMatrix is every solver configuration the properties must hold
// under: the zero value plus each new search knob alone and all together.
var satKnobMatrix = []sat.Options{
	{},
	{ChronoThreshold: 1},
	{VivifyBudget: 300, RestartBase: 1},
	{DynamicLBD: true},
	{ChronoThreshold: 1, VivifyBudget: 300, DynamicLBD: true, RestartBase: 1},
}

var pbKnobMatrix = []pbsolver.Options{
	{},
	{ChronoThreshold: 1},
	{VivifyBudget: 300, RestartBaseOverride: 1},
	{DynamicLBD: true},
	{ChronoThreshold: 1, VivifyBudget: 300, DynamicLBD: true, RestartBaseOverride: 1},
}

// TestSATAgainstReference: on deterministic random small CNFs, the CDCL SAT
// engine agrees with exhaustive enumeration under every knob combination,
// and every SAT model satisfies every clause.
func TestSATAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 80; iter++ {
		f := testutil.RandomCNF(rng, 5+rng.Intn(8), 15+rng.Intn(35), 3)
		want, _ := testutil.BruteForceSAT(f)
		for ki, opts := range satKnobMatrix {
			s := sat.New(f, opts)
			got := s.Solve()
			if got == sat.Unknown {
				t.Fatalf("iter %d knobs %d: Unknown without a budget", iter, ki)
			}
			if (got == sat.Sat) != want {
				t.Fatalf("iter %d knobs %d: engine says %v, reference says sat=%t", iter, ki, got, want)
			}
			if got == sat.Sat {
				if err := testutil.CheckModel(f, s.Model()); err != nil {
					t.Fatalf("iter %d knobs %d: %v", iter, ki, err)
				}
			}
		}
	}
}

// TestPBSolverAgainstReference: the PB engines, fed the same clause sets,
// agree with the reference under every knob combination.
func TestPBSolverAgainstReference(t *testing.T) {
	engines := []pbsolver.Engine{pbsolver.EnginePBS, pbsolver.EngineGalena, pbsolver.EnginePueblo}
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		f := testutil.RandomCNF(rng, 5+rng.Intn(6), 15+rng.Intn(25), 3)
		want, _ := testutil.BruteForceSAT(f)
		pf := pb.NewFormula(f.NumVars)
		for _, c := range f.Clauses {
			pf.AddClause(c...)
		}
		for ki, base := range pbKnobMatrix {
			for _, eng := range engines {
				opts := base
				opts.Engine = eng
				res := pbsolver.Decide(context.Background(), pf, opts)
				switch {
				case want && res.Status != pbsolver.StatusOptimal:
					t.Fatalf("iter %d knobs %d %v: status %v, reference says SAT", iter, ki, eng, res.Status)
				case !want && res.Status != pbsolver.StatusUnsat:
					t.Fatalf("iter %d knobs %d %v: status %v, reference says UNSAT", iter, ki, eng, res.Status)
				}
				if want {
					if err := testutil.CheckModel(f, res.Model); err != nil {
						t.Fatalf("iter %d knobs %d %v: %v", iter, ki, eng, err)
					}
				}
			}
		}
	}
}

// TestColoringFlowAgainstReference: the full coloring flow returns the true
// chromatic number and a proper coloring on random tiny graphs, with and
// without the search knobs.
func TestColoringFlowAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfgs := []core.Config{
		{},
		{ChronoThreshold: 1, VivifyBudget: 300, DynamicLBD: true, RestartBase: 1},
	}
	for iter := 0; iter < 12; iter++ {
		n := 4 + rng.Intn(4)
		g := testutil.RandomGraph(rng, "prop", n, 0.5)
		chi := testutil.BruteForceChromatic(g)
		for ci, base := range cfgs {
			cfg := base
			cfg.K = n
			out := core.Solve(context.Background(), g, cfg)
			if !out.Solved() || out.Chi != chi {
				t.Fatalf("iter %d cfg %d: chi=%d solved=%t, reference chromatic=%d",
					iter, ci, out.Chi, out.Solved(), chi)
			}
			// The witness picks χ distinct colors out of [0, K), not
			// necessarily the first χ.
			if err := testutil.CheckColoring(g, out.Coloring, cfg.K); err != nil {
				t.Fatalf("iter %d cfg %d: %v", iter, ci, err)
			}
			used := map[int]bool{}
			for _, c := range out.Coloring {
				used[c] = true
			}
			if len(used) != chi {
				t.Fatalf("iter %d cfg %d: witness uses %d colors, chromatic number is %d",
					iter, ci, len(used), chi)
			}
		}
	}
}

// TestBruteForceOracleSelfCheck pins the oracle on formulas with known
// answers, so the property tests cannot silently test against a broken
// reference.
func TestBruteForceOracleSelfCheck(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.PosLit(1), cnf.PosLit(2))
	f.AddClause(cnf.NegLit(1))
	ok, m := testutil.BruteForceSAT(f)
	if !ok || m.Lit(cnf.PosLit(1)) || !m.Lit(cnf.PosLit(2)) {
		t.Fatalf("oracle: got ok=%t model=%v, want x1=false x2=true", ok, m)
	}
	f.AddClause(cnf.NegLit(2))
	if ok, _ := testutil.BruteForceSAT(f); ok {
		t.Fatal("oracle: contradictory formula reported SAT")
	}
}

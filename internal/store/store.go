// Package store implements the durable layer under the service's canonical
// result cache: an append-only, CRC-checked key/value log with snapshot +
// write-ahead-log (WAL) files and background compaction.
//
// The design goal is restart safety for a cache whose entries are expensive
// to recompute (one entry is one definitive solve of an isomorphism class)
// but individually cheap to lose: every Put appends one self-checking
// record to the WAL, Open replays snapshot then WAL with last-write-wins
// semantics, and a corrupt or truncated WAL tail — the normal residue of a
// crash mid-append — is cut off rather than treated as fatal. When the WAL
// outgrows the snapshot, a background compaction rotates the WAL aside,
// rewrites the snapshot from the in-memory map, and removes the rotated
// segment; a crash at any point of that sequence leaves a state Open knows
// how to finish.
//
// On-disk layout inside the store directory:
//
//	snapshot.gcs   full key/value dump as of the last compaction
//	wal.gcs        records appended since the snapshot
//	wal.old.gcs    rotated WAL, present only mid-compaction (or post-crash)
//	snapshot.tmp   snapshot being rewritten, present only mid-compaction
//
// Every file starts with the 8-byte magic "GCSTORE1" followed by records:
//
//	uint32 key length (little-endian)
//	uint32 value length
//	key bytes
//	value bytes
//	uint32 CRC-32 (IEEE) over everything above
//
// Records never mutate in place; a later record for the same key supersedes
// the earlier one at replay. The store keeps the full map in memory (values
// are a few hundred bytes per solved equivalence class), so Get never
// touches disk.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

const (
	magic = "GCSTORE1"

	snapshotName = "snapshot.gcs"
	walName      = "wal.gcs"
	walOldName   = "wal.old.gcs"
	snapTmpName  = "snapshot.tmp"

	// maxKeyLen and maxValueLen bound a single record; lengths beyond them
	// mean the header itself is garbage, not merely a big record.
	maxKeyLen   = 1 << 20
	maxValueLen = 1 << 28

	recordOverhead = 4 + 4 + 4 // two length words + CRC
)

// Options tune a Store.
type Options struct {
	// CompactMinWALBytes is the WAL size below which compaction is never
	// triggered automatically (0 selects 1 MiB). Compaction also requires
	// the WAL to have outgrown the snapshot, so steady-state rewrite cost
	// stays proportional to churn.
	CompactMinWALBytes int64
	// SyncWrites fsyncs the WAL after every Put. Off by default: the cache
	// is a performance layer, and losing the final records of a hard crash
	// only costs re-solves, never correctness.
	SyncWrites bool
}

func (o Options) compactMin() int64 {
	if o.CompactMinWALBytes <= 0 {
		return 1 << 20
	}
	return o.CompactMinWALBytes
}

// Stats report a store's state and lifetime counters.
type Stats struct {
	Entries       int   `json:"entries"`
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// TailDropped counts records discarded at Open because the tail of a
	// file failed its CRC or was truncated mid-record.
	TailDropped int   `json:"tail_dropped"`
	Compactions int64 `json:"compactions"`
}

// Store is a crash-safe key/value map backed by snapshot + WAL files. All
// methods are safe for concurrent use.
type Store struct {
	opts Options
	dir  string

	mu         sync.Mutex
	entries    map[string][]byte
	lock       *os.File // exclusive directory lock, held until Close
	wal        *os.File
	walBytes   int64
	snapBytes  int64
	tailDrops  int
	compacts   int64
	compacting bool
	compactErr error
	closed     bool
	compactWG  sync.WaitGroup
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Open loads (or creates) the store under dir, replaying the snapshot and
// WAL. Corrupt or truncated file tails are dropped, never fatal: the store
// opens with every record up to the first bad one, and the WAL is truncated
// back to its last intact record so subsequent appends start clean. An
// interrupted compaction (a leftover rotated WAL) is completed before Open
// returns. The directory is locked exclusively (flock) for the life of the
// store: a second process opening the same directory fails here rather
// than interleaving WAL appends with the first.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			unlockDir(lock)
		}
	}()
	s := &Store{opts: opts, dir: dir, entries: make(map[string][]byte), lock: lock}

	snapBytes, drops, err := s.loadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, err
	}
	s.snapBytes = snapBytes
	s.tailDrops += drops

	walOld := filepath.Join(dir, walOldName)
	oldExists := false
	if _, statErr := os.Stat(walOld); statErr == nil {
		oldExists = true
		if _, drops, err = s.loadFile(walOld); err != nil {
			return nil, err
		}
		s.tailDrops += drops
	}

	walPath := filepath.Join(dir, walName)
	walGood, drops, err := s.loadFile(walPath)
	if err != nil {
		return nil, err
	}
	s.tailDrops += drops

	if oldExists {
		// A compaction died between rotating the WAL and removing the
		// rotated segment. Finish it now: the in-memory map already merges
		// snapshot + rotated WAL + current WAL, so a fresh snapshot of the
		// map supersedes the rotated segment (the current WAL replays on
		// top idempotently).
		if err := s.writeSnapshot(); err != nil {
			return nil, err
		}
		if err := os.Remove(walOld); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}

	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if walGood == 0 {
		// New or fully corrupt file: start from a clean header.
		if err := wal.Truncate(0); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if _, err := wal.Write([]byte(magic)); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		walGood = int64(len(magic))
	} else if err := wal.Truncate(walGood); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := wal.Seek(walGood, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walBytes = walGood
	ok = true
	return s, nil
}

// loadFile replays one record file into the map (last write wins). It
// returns the offset just past the last intact record (0 when the file is
// missing or its header is bad) and the number of tail records dropped.
// Only I/O errors other than a short tail are returned as errors.
func (s *Store) loadFile(path string) (good int64, dropped int, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		if len(data) > 0 {
			dropped++
		}
		return 0, dropped, nil
	}
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, dropped, nil
		}
		if len(rest) < 8 {
			return off, dropped + 1, nil
		}
		keyLen := binary.LittleEndian.Uint32(rest[0:4])
		valLen := binary.LittleEndian.Uint32(rest[4:8])
		if keyLen > maxKeyLen || valLen > maxValueLen {
			return off, dropped + 1, nil
		}
		recLen := int64(recordOverhead) + int64(keyLen) + int64(valLen)
		if int64(len(rest)) < recLen {
			return off, dropped + 1, nil
		}
		body := rest[:recLen-4]
		want := binary.LittleEndian.Uint32(rest[recLen-4 : recLen])
		if crc32.ChecksumIEEE(body) != want {
			return off, dropped + 1, nil
		}
		key := string(rest[8 : 8+keyLen])
		val := make([]byte, valLen)
		copy(val, rest[8+keyLen:8+int64(keyLen)+int64(valLen)])
		s.entries[key] = val
		off += recLen
	}
}

// appendRecord writes one record to w.
func appendRecord(w io.Writer, key string, val []byte) (int64, error) {
	buf := make([]byte, 0, recordOverhead+len(key)+len(val))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, key...)
	buf = append(buf, val...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	n, err := w.Write(buf)
	return int64(n), err
}

// Get returns the stored value for key. The returned slice is shared and
// must not be modified by the caller.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.entries[key]
	return v, ok
}

// Put durably records key → val (val is copied). When the WAL has outgrown
// both the compaction threshold and the snapshot, a background compaction
// is started.
func (s *Store) Put(key string, val []byte) error {
	if len(key) > maxKeyLen || len(val) > maxValueLen {
		return fmt.Errorf("store: record too large (key %d, value %d bytes)", len(key), len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// The in-memory entry is installed even when the append fails below:
	// a durability error must not also disable same-process caching.
	s.entries[key] = append([]byte(nil), val...)
	n, err := appendRecord(s.wal, key, val)
	if err != nil {
		// Cut a partial append back off the WAL: left in place it would
		// end replay at the next Open, silently dropping every good
		// record written after it.
		if s.wal.Truncate(s.walBytes) == nil {
			s.wal.Seek(s.walBytes, io.SeekStart)
		} else {
			s.walBytes += n // truncate failed; account for the torn bytes
		}
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes += n
	if s.opts.SyncWrites {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if !s.compacting && s.walBytes >= s.opts.compactMin() && s.walBytes > s.snapBytes {
		s.startCompactionLocked()
	}
	return nil
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a point-in-time snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:       len(s.entries),
		WALBytes:      s.walBytes,
		SnapshotBytes: s.snapBytes,
		TailDropped:   s.tailDrops,
		Compactions:   s.compacts,
	}
}

// Err reports the last background-compaction failure, if any. A failed
// compaction never loses data (the rotated WAL stays on disk and replays at
// the next Open); it only postpones space reclamation.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactErr
}

// Compact synchronously rewrites the snapshot from the in-memory map and
// resets the WAL. Safe to call concurrently with Puts.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.compacting {
		// A background pass is already running; wait for it.
		s.mu.Unlock()
		s.compactWG.Wait()
		return s.Err()
	}
	if err := s.rotateWALLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.compactWG.Add(1)
	s.mu.Unlock()
	defer s.compactWG.Done()
	return s.finishCompaction()
}

// startCompactionLocked rotates the WAL and kicks off the snapshot rewrite
// in the background. Caller holds s.mu.
func (s *Store) startCompactionLocked() {
	if err := s.rotateWALLocked(); err != nil {
		s.compactErr = err
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		if err := s.finishCompaction(); err != nil {
			s.mu.Lock()
			s.compactErr = err
			s.mu.Unlock()
		}
	}()
}

// rotateWALLocked moves the live WAL aside and opens a fresh one, marking
// the store as compacting. Caller holds s.mu. On any failure it restores a
// usable append handle on the un-rotated WAL, so a transient error (disk
// full, EMFILE) degrades to "compaction postponed", never to a wedged
// store whose every Put fails against a closed file.
func (s *Store) rotateWALLocked() error {
	walPath := filepath.Join(s.dir, walName)
	oldPath := filepath.Join(s.dir, walOldName)
	reopen := func() {
		if f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644); err == nil {
			if _, err := f.Seek(0, io.SeekEnd); err == nil {
				s.wal = f
				return
			}
			f.Close()
		}
	}
	if err := s.wal.Close(); err != nil {
		reopen()
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(walPath, oldPath); err != nil {
		reopen()
		return fmt.Errorf("store: %w", err)
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err == nil {
		if _, werr := wal.Write([]byte(magic)); werr != nil {
			wal.Close()
			os.Remove(walPath)
			err = werr
		}
	}
	if err != nil {
		// Undo the rotation and resume appending to the original WAL.
		os.Rename(oldPath, walPath)
		reopen()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walBytes = int64(len(magic))
	s.compacting = true
	return nil
}

// finishCompaction writes the snapshot and removes the rotated WAL.
func (s *Store) finishCompaction() error {
	err := s.writeSnapshot()
	if err == nil {
		err = os.Remove(filepath.Join(s.dir, walOldName))
		if err != nil {
			err = fmt.Errorf("store: %w", err)
		}
	}
	s.mu.Lock()
	s.compacting = false
	if err == nil {
		s.compacts++
		s.compactErr = nil
	}
	s.mu.Unlock()
	return err
}

// writeSnapshot dumps the current map to snapshot.tmp and renames it over
// the snapshot atomically.
func (s *Store) writeSnapshot() error {
	s.mu.Lock()
	dump := make(map[string][]byte, len(s.entries))
	for k, v := range s.entries {
		dump[k] = v
	}
	s.mu.Unlock()

	tmpPath := filepath.Join(s.dir, snapTmpName)
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var bytes int64 = int64(len(magic))
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	for k, v := range dump {
		n, err := appendRecord(f, k, v)
		bytes += n
		if err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Make the rename durable before the caller deletes the rotated WAL:
	// without the directory fsync, a power cut could persist the WAL
	// removal but not the snapshot rename, losing the rotated records.
	// Best-effort — not every platform supports fsync on directories.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.mu.Lock()
	s.snapBytes = bytes
	s.mu.Unlock()
	return nil
}

// Close waits for any in-flight compaction, flushes, and closes the WAL.
// The store is unusable afterwards.
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer unlockDir(s.lock)
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Package store implements the durable layer under the service's canonical
// result cache: an append-only, CRC-checked key/value log with snapshot +
// write-ahead-log (WAL) files and background compaction.
//
// The design goal is restart safety for a cache whose entries are expensive
// to recompute (one entry is one definitive solve of an isomorphism class)
// but individually cheap to lose: every Put appends one self-checking
// record to the WAL, Open replays snapshot then WAL with last-write-wins
// semantics, and a corrupt or truncated WAL tail — the normal residue of a
// crash mid-append — is cut off rather than treated as fatal. When the WAL
// outgrows the snapshot, a background compaction rotates the WAL aside,
// rewrites the snapshot from the in-memory map, and removes the rotated
// segment; a crash at any point of that sequence leaves a state Open knows
// how to finish.
//
// On-disk layout inside the store directory:
//
//	snapshot.gcs   full key/value dump as of the last compaction
//	wal.gcs        records appended since the snapshot
//	wal.old.gcs    rotated WAL, present only mid-compaction (or post-crash)
//	snapshot.tmp   snapshot being rewritten, present only mid-compaction
//
// Every file starts with the 8-byte magic "GCSTORE1" followed by records:
//
//	uint32 key length (little-endian)
//	uint32 value length
//	key bytes
//	value bytes
//	uint32 CRC-32 (IEEE) over everything above
//
// Records never mutate in place; a later record for the same key supersedes
// the earlier one at replay. The store keeps the full map in memory (values
// are a few hundred bytes per solved equivalence class), so Get never
// touches disk.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// magicV1 is the original timestamp-free record format; magicV2 added
	// a write timestamp so the TTL/GC policy survives restarts; magic is
	// the current format, whose records additionally carry an operation
	// byte so a key can be durably deleted (the journal's "job finished"
	// marker) instead of only superseded. Files of any format replay at
	// Open; new files (the WAL, rewritten snapshots) are always written as
	// V3.
	magicV1 = "GCSTORE1"
	magicV2 = "GCSTORE2"
	magic   = "GCSTORE3"

	snapshotName = "snapshot.gcs"
	walName      = "wal.gcs"
	walOldName   = "wal.old.gcs"
	snapTmpName  = "snapshot.tmp"

	// maxKeyLen and maxValueLen bound a single record; lengths beyond them
	// mean the header itself is garbage, not merely a big record.
	maxKeyLen   = 1 << 20
	maxValueLen = 1 << 28

	recordOverheadV1 = 4 + 4 + 4         // two length words + CRC
	recordOverheadV2 = 4 + 4 + 8 + 4     // + unix-nano stamp
	recordOverhead   = 4 + 4 + 8 + 1 + 4 // + operation byte

	// Record operations (V3). A delete record's value is empty; at replay
	// it removes the key instead of installing it.
	opPut    = 0
	opDelete = 1
)

// Options tune a Store.
type Options struct {
	// CompactMinWALBytes is the WAL size below which compaction is never
	// triggered automatically (0 selects 1 MiB). Compaction also requires
	// the WAL to have outgrown the snapshot, so steady-state rewrite cost
	// stays proportional to churn.
	CompactMinWALBytes int64
	// SyncWrites fsyncs the WAL after every Put. Off by default: the cache
	// is a performance layer, and losing the final records of a hard crash
	// only costs re-solves, never correctness.
	SyncWrites bool
	// MaxAge expires records this long after their last write (0 = keep
	// forever). Expired records stop being returned by Get immediately
	// and are dropped from disk at the next compaction. Records replayed
	// from V1 files carry no timestamp and are stamped with the Open
	// time, so a format upgrade never mass-expires an existing store.
	MaxAge time.Duration
	// MaxBytes is the target on-disk footprint (0 = unbounded). When the
	// snapshot and WAL together exceed it, a compaction is triggered and
	// the snapshot rewrite drops the oldest records until the estimated
	// size fits. A cache, not a quota: the bound is approximate and
	// enforced at compaction granularity.
	MaxBytes int64
	// FS is the filesystem the store's file operations go through (nil =
	// the real one). Tests and chaos drills inject an
	// internal/faultinject FS here to exercise the error paths.
	FS FS
}

func (o Options) compactMin() int64 {
	if o.CompactMinWALBytes <= 0 {
		return 1 << 20
	}
	return o.CompactMinWALBytes
}

// Stats report a store's state and lifetime counters.
type Stats struct {
	Entries       int   `json:"entries"`
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// TailDropped counts records discarded at Open because the tail of a
	// file failed its CRC or was truncated mid-record.
	TailDropped int   `json:"tail_dropped"`
	Compactions int64 `json:"compactions"`
	// GCDropped counts records the TTL/size policy removed (expired past
	// MaxAge, or oldest-first evictions enforcing MaxBytes).
	GCDropped int64 `json:"gc_dropped"`
}

// Store is a crash-safe key/value map backed by snapshot + WAL files. All
// methods are safe for concurrent use.
type Store struct {
	opts Options
	dir  string
	fsys FS

	mu         sync.Mutex
	entries    map[string]entry
	lock       *os.File // exclusive directory lock, held until Close
	wal        File
	walBytes   int64
	snapBytes  int64
	tailDrops  int
	compacts   int64
	gcDropped  int64
	compacting bool
	compactErr error
	closed     bool
	compactWG  sync.WaitGroup
}

// entry is one live record: the value plus its last-write time (unix
// nanoseconds), the input to the MaxAge/MaxBytes GC policy.
type entry struct {
	val []byte
	at  int64
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Open loads (or creates) the store under dir, replaying the snapshot and
// WAL. Corrupt or truncated file tails are dropped, never fatal: the store
// opens with every record up to the first bad one, and the WAL is truncated
// back to its last intact record so subsequent appends start clean. An
// interrupted compaction (a leftover rotated WAL) is completed before Open
// returns. The directory is locked exclusively (flock) for the life of the
// store: a second process opening the same directory fails here rather
// than interleaving WAL appends with the first.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			unlockDir(lock)
		}
	}()
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	s := &Store{opts: opts, dir: dir, fsys: fsys, entries: make(map[string]entry), lock: lock}

	snapBytes, _, drops, err := s.loadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, err
	}
	s.snapBytes = snapBytes
	s.tailDrops += drops

	walOld := filepath.Join(dir, walOldName)
	oldExists := false
	if _, statErr := s.fsys.Stat(walOld); statErr == nil {
		oldExists = true
		if _, _, drops, err = s.loadFile(walOld); err != nil {
			return nil, err
		}
		s.tailDrops += drops
	}

	walPath := filepath.Join(dir, walName)
	walGood, walVer, drops, err := s.loadFile(walPath)
	if err != nil {
		return nil, err
	}
	s.tailDrops += drops

	// An old-format WAL cannot be appended to in the current format (one
	// file replays under a single record layout), so its intact records —
	// already merged into the map — must be preserved through a snapshot
	// rewrite before the WAL is reset to a fresh current-format header.
	upgradeWAL := walGood > 0 && walVer != verV3

	if oldExists || upgradeWAL {
		// Either a compaction died between rotating the WAL and removing
		// the rotated segment, or the WAL needs a format upgrade. Both are
		// finished the same way: the in-memory map already merges snapshot
		// + rotated WAL + current WAL, so a fresh snapshot of the map
		// supersedes both segments.
		if err := s.writeSnapshot(); err != nil {
			return nil, err
		}
		if oldExists {
			if err := s.fsys.Remove(walOld); err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
		}
	}

	wal, err := s.fsys.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if walGood == 0 || upgradeWAL {
		// New file, fully corrupt file, or old format (now folded into the
		// snapshot): start from a clean current-format header.
		if err := wal.Truncate(0); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if _, err := wal.Write([]byte(magic)); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		walGood = int64(len(magic))
	} else if err := wal.Truncate(walGood); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := wal.Seek(walGood, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walBytes = walGood
	ok = true
	return s, nil
}

// File format versions, detected per file from its magic.
const (
	verV1 = 1
	verV2 = 2
	verV3 = 3
)

// loadFile replays one record file into the map (last write wins, delete
// records remove), accepting the current format (GCSTORE3) and both older
// ones (GCSTORE2, and GCSTORE1 whose records are stamped with the load
// time). It returns the offset just past the last intact record (0 when
// the file is missing or its header is bad), the detected format version,
// and the number of tail records dropped. Only I/O errors other than a
// short tail are returned as errors.
func (s *Store) loadFile(path string) (good int64, ver int, dropped int, err error) {
	data, err := s.fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, 0, nil
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: %w", err)
	}
	switch {
	case len(data) >= len(magic) && string(data[:len(magic)]) == magic:
		ver = verV3
	case len(data) >= len(magicV2) && string(data[:len(magicV2)]) == magicV2:
		ver = verV2
	case len(data) >= len(magicV1) && string(data[:len(magicV1)]) == magicV1:
		ver = verV1
	default:
		if len(data) > 0 {
			dropped++
		}
		return 0, 0, dropped, nil
	}
	var overhead, hdrLen int64
	switch ver {
	case verV1:
		overhead, hdrLen = recordOverheadV1, 8
	case verV2:
		overhead, hdrLen = recordOverheadV2, 16
	default:
		overhead, hdrLen = recordOverhead, 17
	}
	loadAt := time.Now().UnixNano()
	off := int64(len(magic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, ver, dropped, nil
		}
		if int64(len(rest)) < hdrLen {
			return off, ver, dropped + 1, nil
		}
		keyLen := binary.LittleEndian.Uint32(rest[0:4])
		valLen := binary.LittleEndian.Uint32(rest[4:8])
		if keyLen > maxKeyLen || valLen > maxValueLen {
			return off, ver, dropped + 1, nil
		}
		at := loadAt
		if ver >= verV2 {
			at = int64(binary.LittleEndian.Uint64(rest[8:16]))
		}
		op := byte(opPut)
		if ver >= verV3 {
			op = rest[16]
		}
		recLen := overhead + int64(keyLen) + int64(valLen)
		if int64(len(rest)) < recLen {
			return off, ver, dropped + 1, nil
		}
		body := rest[:recLen-4]
		want := binary.LittleEndian.Uint32(rest[recLen-4 : recLen])
		if crc32.ChecksumIEEE(body) != want {
			return off, ver, dropped + 1, nil
		}
		key := string(rest[hdrLen : hdrLen+int64(keyLen)])
		switch op {
		case opDelete:
			delete(s.entries, key)
		case opPut:
			val := make([]byte, valLen)
			copy(val, rest[hdrLen+int64(keyLen):hdrLen+int64(keyLen)+int64(valLen)])
			s.entries[key] = entry{val: val, at: at}
		default:
			// An operation this version does not know: treat the rest of
			// the file like any other unparseable tail.
			return off, ver, dropped + 1, nil
		}
		off += recLen
	}
}

// appendRecord writes one current-format (V3) record to w.
func appendRecord(w io.Writer, op byte, key string, val []byte, at int64) (int64, error) {
	buf := make([]byte, 0, recordOverhead+len(key)+len(val))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(at))
	buf = append(buf, op)
	buf = append(buf, key...)
	buf = append(buf, val...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	n, err := w.Write(buf)
	return int64(n), err
}

// Get returns the stored value for key. The returned slice is shared and
// must not be modified by the caller. A record expired past MaxAge is a
// miss the moment it expires — it is dropped from memory immediately and
// from disk at the next compaction.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	if s.expiredLocked(e, time.Now().UnixNano()) {
		delete(s.entries, key)
		s.gcDropped++
		return nil, false
	}
	return e.val, true
}

// expiredLocked reports whether the entry is past the MaxAge policy.
func (s *Store) expiredLocked(e entry, now int64) bool {
	return s.opts.MaxAge > 0 && now-e.at > int64(s.opts.MaxAge)
}

// Put durably records key → val (val is copied). When the WAL has outgrown
// both the compaction threshold and the snapshot, a background compaction
// is started.
func (s *Store) Put(key string, val []byte) error {
	if len(key) > maxKeyLen || len(val) > maxValueLen {
		return fmt.Errorf("store: record too large (key %d, value %d bytes)", len(key), len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// The in-memory entry is installed even when the append fails below:
	// a durability error must not also disable same-process caching.
	at := time.Now().UnixNano()
	s.entries[key] = entry{val: append([]byte(nil), val...), at: at}
	n, err := appendRecord(s.wal, opPut, key, val, at)
	if err != nil {
		// Cut a partial append back off the WAL: left in place it would
		// end replay at the next Open, silently dropping every good
		// record written after it.
		if s.wal.Truncate(s.walBytes) == nil {
			s.wal.Seek(s.walBytes, io.SeekStart)
		} else {
			s.walBytes += n // truncate failed; account for the torn bytes
		}
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes += n
	if s.opts.SyncWrites {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	overBudget := s.opts.MaxBytes > 0 && s.walBytes+s.snapBytes > s.opts.MaxBytes
	if !s.compacting && (overBudget ||
		(s.walBytes >= s.opts.compactMin() && s.walBytes > s.snapBytes)) {
		s.startCompactionLocked()
	}
	return nil
}

// Delete durably removes key: the entry leaves the in-memory map at once
// and a delete record is appended to the WAL so the removal survives a
// restart (the next snapshot rewrite drops the key and its tombstone
// entirely). Deleting an absent key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.entries[key]; !ok {
		return nil
	}
	delete(s.entries, key)
	n, err := appendRecord(s.wal, opDelete, key, nil, time.Now().UnixNano())
	if err != nil {
		// Same torn-append recovery as Put: cut the partial record off so
		// it does not end replay early at the next Open.
		if s.wal.Truncate(s.walBytes) == nil {
			s.wal.Seek(s.walBytes, io.SeekStart)
		} else {
			s.walBytes += n
		}
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes += n
	if s.opts.SyncWrites {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Range calls fn for every live entry until fn returns false. Iteration
// order is unspecified. The callback runs outside the store's lock on a
// point-in-time copy, so it may call back into the store.
func (s *Store) Range(fn func(key string, val []byte) bool) {
	type kv struct {
		k string
		v []byte
	}
	s.mu.Lock()
	now := time.Now().UnixNano()
	all := make([]kv, 0, len(s.entries))
	for k, e := range s.entries {
		if s.expiredLocked(e, now) {
			continue
		}
		all = append(all, kv{k, e.val})
	}
	s.mu.Unlock()
	for _, e := range all {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a point-in-time snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:       len(s.entries),
		WALBytes:      s.walBytes,
		SnapshotBytes: s.snapBytes,
		TailDropped:   s.tailDrops,
		Compactions:   s.compacts,
		GCDropped:     s.gcDropped,
	}
}

// Err reports the last background-compaction failure, if any. A failed
// compaction never loses data (the rotated WAL stays on disk and replays at
// the next Open); it only postpones space reclamation.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactErr
}

// Compact synchronously rewrites the snapshot from the in-memory map and
// resets the WAL. Safe to call concurrently with Puts.
func (s *Store) Compact() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.compacting {
		// A background pass is already running; wait for it.
		s.mu.Unlock()
		s.compactWG.Wait()
		return s.Err()
	}
	if err := s.rotateWALLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.compactWG.Add(1)
	s.mu.Unlock()
	defer s.compactWG.Done()
	return s.finishCompaction()
}

// startCompactionLocked rotates the WAL and kicks off the snapshot rewrite
// in the background. Caller holds s.mu.
func (s *Store) startCompactionLocked() {
	if err := s.rotateWALLocked(); err != nil {
		s.compactErr = err
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		if err := s.finishCompaction(); err != nil {
			s.mu.Lock()
			s.compactErr = err
			s.mu.Unlock()
		}
	}()
}

// rotateWALLocked moves the live WAL aside and opens a fresh one, marking
// the store as compacting. Caller holds s.mu. On any failure it restores a
// usable append handle on the un-rotated WAL, so a transient error (disk
// full, EMFILE) degrades to "compaction postponed", never to a wedged
// store whose every Put fails against a closed file.
func (s *Store) rotateWALLocked() error {
	walPath := filepath.Join(s.dir, walName)
	oldPath := filepath.Join(s.dir, walOldName)
	reopen := func() {
		if f, err := s.fsys.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644); err == nil {
			if _, err := f.Seek(0, io.SeekEnd); err == nil {
				s.wal = f
				return
			}
			f.Close()
		}
	}
	if err := s.wal.Close(); err != nil {
		reopen()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fsys.Rename(walPath, oldPath); err != nil {
		reopen()
		return fmt.Errorf("store: %w", err)
	}
	wal, err := s.fsys.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err == nil {
		if _, werr := wal.Write([]byte(magic)); werr != nil {
			wal.Close()
			s.fsys.Remove(walPath)
			err = werr
		}
	}
	if err != nil {
		// Undo the rotation and resume appending to the original WAL.
		s.fsys.Rename(oldPath, walPath)
		reopen()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walBytes = int64(len(magic))
	s.compacting = true
	return nil
}

// finishCompaction writes the snapshot and removes the rotated WAL.
func (s *Store) finishCompaction() error {
	err := s.writeSnapshot()
	if err == nil {
		err = s.fsys.Remove(filepath.Join(s.dir, walOldName))
		if err != nil {
			err = fmt.Errorf("store: %w", err)
		}
	}
	s.mu.Lock()
	s.compacting = false
	if err == nil {
		s.compacts++
		s.compactErr = nil
	}
	s.mu.Unlock()
	return err
}

// writeSnapshot dumps the current map to snapshot.tmp and renames it over
// the snapshot atomically. This is where the GC policy bites the disk: the
// dump excludes records expired past MaxAge, and when MaxBytes is set the
// oldest records are dropped (from the dump and the live map) until the
// estimated rewritten size fits. A record dropped here never reappears —
// the snapshot replaces the history that contained it.
func (s *Store) writeSnapshot() error {
	now := time.Now().UnixNano()
	s.mu.Lock()
	type aged struct {
		key string
		at  int64
	}
	dump := make(map[string][]byte, len(s.entries))
	var order []aged
	var estBytes int64 = int64(len(magic))
	for k, e := range s.entries {
		if s.expiredLocked(e, now) {
			delete(s.entries, k)
			s.gcDropped++
			continue
		}
		dump[k] = e.val
		order = append(order, aged{key: k, at: e.at})
		estBytes += int64(recordOverhead + len(k) + len(e.val))
	}
	if s.opts.MaxBytes > 0 && estBytes > s.opts.MaxBytes {
		// Evict to 7/8 of the budget, not the budget itself: stopping at
		// exactly MaxBytes would re-arm the over-budget compaction
		// trigger on the very next Put, degenerating into a full
		// snapshot rewrite per write at steady state.
		target := s.opts.MaxBytes - s.opts.MaxBytes/8
		sort.Slice(order, func(i, j int) bool { return order[i].at < order[j].at })
		for _, a := range order {
			if estBytes <= target {
				break
			}
			estBytes -= int64(recordOverhead + len(a.key) + len(dump[a.key]))
			delete(dump, a.key)
			delete(s.entries, a.key)
			s.gcDropped++
		}
	}
	ats := make(map[string]int64, len(order))
	for _, a := range order {
		if _, live := dump[a.key]; live {
			ats[a.key] = a.at
		}
	}
	s.mu.Unlock()

	tmpPath := filepath.Join(s.dir, snapTmpName)
	f, err := s.fsys.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var bytes int64 = int64(len(magic))
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	for k, v := range dump {
		n, err := appendRecord(f, opPut, k, v, ats[k])
		bytes += n
		if err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fsys.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Make the rename durable before the caller deletes the rotated WAL:
	// without the directory fsync, a power cut could persist the WAL
	// removal but not the snapshot rename, losing the rotated records.
	// Best-effort — not every platform supports fsync on directories.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.mu.Lock()
	s.snapBytes = bytes
	s.mu.Unlock()
	return nil
}

// Close waits for any in-flight compaction, flushes, and closes the WAL.
// The store is unusable afterwards.
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	defer unlockDir(s.lock)
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

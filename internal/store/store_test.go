package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func put(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func expect(t *testing.T, s *Store, key, val string) {
	t.Helper()
	got, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get(%s): missing", key)
	}
	if string(got) != val {
		t.Fatalf("Get(%s) = %q, want %q", key, got, val)
	}
}

func expectMissing(t *testing.T, s *Store, key string) {
	t.Helper()
	if _, ok := s.Get(key); ok {
		t.Fatalf("Get(%s): present, want missing", key)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 100; i++ {
		put(t, s, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
	}
	put(t, s, "key-7", "rewritten") // last write wins
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	expect(t, s, "key-0", "value-0")
	expect(t, s, "key-7", "rewritten")
	expect(t, s, "key-99", "value-99")
}

func TestTruncatedWALTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "alpha", "1")
	put(t, s, "beta", "2")
	put(t, s, "gamma", "3")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the last record in half: the crash-mid-append shape.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	expect(t, s, "alpha", "1")
	expect(t, s, "beta", "2")
	expectMissing(t, s, "gamma")
	if st := s.Stats(); st.TailDropped == 0 {
		t.Fatalf("TailDropped = 0, want > 0")
	}

	// The WAL was truncated back to its last intact record, so new appends
	// land cleanly after it.
	put(t, s, "delta", "4")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expect(t, s, "beta", "2")
	expect(t, s, "delta", "4")
}

func TestBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "alpha", "1")
	put(t, s, "beta", "2")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside the *last* record's value; its CRC check must
	// reject the record while everything before it survives.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x40
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expect(t, s, "alpha", "1")
	expectMissing(t, s, "beta")
	if st := s.Stats(); st.TailDropped != 1 {
		t.Fatalf("TailDropped = %d, want 1", st.TailDropped)
	}
}

func TestCorruptHeaderIsNotFatal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "alpha", "1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expectMissing(t, s, "alpha")
	put(t, s, "beta", "2") // store still usable
	expect(t, s, "beta", "2")
}

func TestSnapshotReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 50; i++ {
		put(t, s, fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i))
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := s.Stats(); st.Compactions != 1 || st.SnapshotBytes == 0 {
		t.Fatalf("after compact: %+v", st)
	}
	// Post-compaction records land in the fresh WAL on top of the snapshot.
	put(t, s, "key-3", "overwritten")
	put(t, s, "extra", "tail")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if s.Len() != 51 {
		t.Fatalf("Len = %d, want 51", s.Len())
	}
	expect(t, s, "key-3", "overwritten")
	expect(t, s, "key-49", "v49")
	expect(t, s, "extra", "tail")
}

func TestInterruptedCompactionRecovers(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "alpha", "1")
	put(t, s, "beta", "2")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash after the WAL rotation but before the snapshot
	// rewrite finished: the data lives only in wal.old.gcs.
	if err := os.Rename(filepath.Join(dir, walName), filepath.Join(dir, walOldName)); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expect(t, s, "alpha", "1")
	expect(t, s, "beta", "2")
	if _, err := os.Stat(filepath.Join(dir, walOldName)); !os.IsNotExist(err) {
		t.Fatalf("wal.old.gcs still present after recovery (err=%v)", err)
	}
	// The completed recovery snapshot holds the data on its own.
	if st := s.Stats(); st.SnapshotBytes == 0 {
		t.Fatalf("snapshot empty after recovery: %+v", st)
	}
}

func TestAutomaticBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CompactMinWALBytes: 256})
	for i := 0; i < 200; i++ {
		put(t, s, fmt.Sprintf("key-%d", i%10), fmt.Sprintf("value-%d", i))
	}
	if err := s.Close(); err != nil { // Close waits for background passes
		t.Fatal(err)
	}
	if err := func() error {
		s := mustOpen(t, dir, Options{})
		defer s.Close()
		if s.Len() != 10 {
			return fmt.Errorf("Len = %d, want 10", s.Len())
		}
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expectMissing(t, s, "anything")
}

func TestSecondOpenOfLockedDirFails(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if s2, err := Open(dir, Options{}); err == nil {
		s2.Close()
		t.Fatal("second Open of a locked directory succeeded")
	}
	// After Close the directory is free again.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	s3.Close()
}

func TestPutAfterCloseFails(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}

// TestDeletePersists: a deleted key stays gone across reopen (the WAL
// tombstone replays), across a compaction (the snapshot simply omits it),
// and deleting an absent key is a cheap no-op.
func TestDeletePersists(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "keep", "1")
	put(t, s, "gone", "2")
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatal(err)
	}
	expectMissing(t, s, "gone")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	expect(t, s, "keep", "1")
	expectMissing(t, s, "gone")
	put(t, s, "gone", "reborn") // a later put resurrects the key
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expect(t, s, "keep", "1")
	expect(t, s, "gone", "reborn")
}

// TestV2WALUpgrade: a WAL written in the V2 (GCSTORE2) format is folded
// into the snapshot at Open and reset to a current-format header, so new
// records are never appended in a different layout than the file's magic
// declares.
func TestV2WALUpgrade(t *testing.T) {
	dir := t.TempDir()
	data := []byte(magicV2)
	for k, v := range map[string]string{"a": "1", "b": "2"} {
		rec := binary.LittleEndian.AppendUint32(nil, uint32(len(k)))
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(v)))
		rec = binary.LittleEndian.AppendUint64(rec, uint64(time.Now().UnixNano()))
		rec = append(rec, k...)
		rec = append(rec, v...)
		rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
		data = append(data, rec...)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, Options{})
	expect(t, s, "a", "1")
	expect(t, s, "b", "2")
	put(t, s, "c", "3")
	if err := s.Delete("a"); err != nil { // exercises a V3-only record post-upgrade
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if string(wal[:len(magic)]) != magic {
		t.Fatalf("WAL header after upgrade = %q, want %q", wal[:len(magic)], magic)
	}
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	expectMissing(t, s, "a")
	expect(t, s, "b", "2")
	expect(t, s, "c", "3")
}

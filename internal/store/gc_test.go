package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestMaxAgeExpiry: an expired record is a Get miss immediately and is
// gone from disk after a compaction, surviving neither in memory nor in a
// reopened store.
func TestMaxAgeExpiry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxAge: 50 * time.Millisecond})
	put(t, s, "old", "v1")
	time.Sleep(80 * time.Millisecond)
	put(t, s, "fresh", "v2")

	if _, ok := s.Get("old"); ok {
		t.Fatal("expired record still served")
	}
	if _, ok := s.Get("fresh"); !ok {
		t.Fatal("fresh record lost")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.GCDropped == 0 {
		t.Fatalf("expiry not counted: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without a TTL: the expired record must not resurrect.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.Get("old"); ok {
		t.Fatal("expired record resurrected after compaction+reopen")
	}
	if v, ok := s2.Get("fresh"); !ok || string(v) != "v2" {
		t.Fatalf("fresh record lost across reopen: %q %v", v, ok)
	}
}

// TestMaxAgeSurvivesRestartStamps: record age is persisted, so a record
// written long ago expires after a restart even though the process never
// saw it being written.
func TestMaxAgeSurvivesRestartStamps(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	put(t, s, "k", "v")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	s2 := mustOpen(t, dir, Options{MaxAge: 30 * time.Millisecond})
	defer s2.Close()
	if _, ok := s2.Get("k"); ok {
		t.Fatal("record written before the restart did not expire by its persisted stamp")
	}
}

// TestMaxBytesEviction: when the footprint exceeds the budget the oldest
// records are dropped at compaction, newest kept.
func TestMaxBytesEviction(t *testing.T) {
	dir := t.TempDir()
	val := make([]byte, 1024)
	s := mustOpen(t, dir, Options{MaxBytes: 8 * 1024, CompactMinWALBytes: 1 << 30})
	for i := 0; i < 32; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), val); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // distinct timestamps for eviction order
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GCDropped == 0 {
		t.Fatalf("no evictions under a 8KiB budget with 32KiB of records: %+v", st)
	}
	if st.SnapshotBytes > 8*1024 {
		t.Fatalf("snapshot still over budget: %+v", st)
	}
	if _, ok := s.Get("key-31"); !ok {
		t.Fatal("newest record evicted before older ones")
	}
	if _, ok := s.Get("key-00"); ok {
		t.Fatal("oldest record survived eviction")
	}
	s.Close()
}

// TestMaxBytesTriggersCompaction: crossing the budget starts a compaction
// even when the WAL alone is below the usual threshold.
func TestMaxBytesTriggersCompaction(t *testing.T) {
	dir := t.TempDir()
	val := make([]byte, 512)
	s := mustOpen(t, dir, Options{MaxBytes: 4 * 1024})
	defer s.Close()
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i%8), val); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats().Compactions > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no compaction despite exceeding MaxBytes: %+v", s.Stats())
}

// TestV1FormatCompat: a store written in the original timestamp-free
// format replays fully; its records are stamped at load time, so a TTL
// does not mass-expire them, and the next compaction rewrites them as V2.
func TestV1FormatCompat(t *testing.T) {
	dir := t.TempDir()
	writeV1File(t, filepath.Join(dir, snapshotName), map[string]string{
		"a": "1", "b": "2",
	})
	s := mustOpen(t, dir, Options{MaxAge: time.Hour})
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("v1 record a: %q %v", v, ok)
	}
	put(t, s, "c", "3")
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		if v, ok := s2.Get(k); !ok || string(v) != want {
			t.Fatalf("after v2 rewrite, %s: %q %v", k, v, ok)
		}
	}
}

// writeV1File emits a GCSTORE1 file with the original record layout.
func writeV1File(t *testing.T, path string, entries map[string]string) {
	t.Helper()
	data := []byte(magicV1)
	for k, v := range entries {
		rec := binary.LittleEndian.AppendUint32(nil, uint32(len(k)))
		rec = binary.LittleEndian.AppendUint32(rec, uint32(len(v)))
		rec = append(rec, k...)
		rec = append(rec, v...)
		rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
		data = append(data, rec...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

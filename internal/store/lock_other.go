//go:build !unix

package store

import "os"

// lockDir is a no-op on platforms without flock semantics; single-process
// use per directory is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}

package store

import (
	"io"
	"os"
)

// FS is the slice of filesystem the store performs its file operations
// through. The default implementation (OSFS) forwards to the os package;
// internal/faultinject wraps any FS to inject errors, latency, and partial
// writes for crash and degraded-mode drills, which is why the store never
// calls os file primitives directly. Directory creation, locking, and the
// best-effort directory fsync stay on the real filesystem: faults there
// would only block Open, not exercise the degraded paths the seam exists
// for.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads a whole file with os.ReadFile semantics.
	ReadFile(name string) ([]byte, error)
	// Rename renames a file with os.Rename semantics.
	Rename(oldpath, newpath string) error
	// Remove removes a file with os.Remove semantics.
	Remove(name string) error
	// Stat stats a file with os.Stat semantics.
	Stat(name string) (os.FileInfo, error)
}

// File is the open-file surface the store uses: append writes, fsync,
// truncation (to cut torn WAL tails), and seeking back to the append
// position.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// OSFS is the passthrough FS over the os package, the default when
// Options.FS is nil.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory flock on a lock file inside dir, so
// two processes pointing -store.dir at the same directory fail loudly at
// Open instead of silently interleaving WAL appends. The kernel releases
// the lock when the process exits (any way, including SIGKILL), so there
// are no stale locks to clean up.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}

package sbp

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"sort"
)

// Embedded canonizing-set data for VariantCanonSet. The file is generated
// offline by cmd/sbpgen (make sbpdata) from GreedyCanonSet and committed;
// CI regenerates it and fails the build on any diff, so the data can never
// drift from the generator. Color bounds outside the embedded bands fall
// back to SyntheticCanonSet — the variant stays total over K.

//go:embed canonsets.json
var canonSetData []byte

// CanonSetFileVersion is the format version stamped into canonsets.json;
// loading any other version panics at init (stale committed data).
const CanonSetFileVersion = 1

type canonSetFile struct {
	Version int             `json:"version"`
	Sets    []canonSetEntry `json:"sets"`
}

type canonSetEntry struct {
	K     int     `json:"k"`
	Perms [][]int `json:"perms"`
}

var embeddedCanonSets = mustLoadCanonSets(canonSetData)

// CanonSet returns the canonizing set of color permutations for color
// bound k: the embedded precomputed set when the band is covered,
// otherwise the synthesized structural fallback. Every returned
// permutation is over {0..k-1}. Callers must not mutate the result.
func CanonSet(k int) [][]int {
	if set, ok := embeddedCanonSets[k]; ok {
		return set
	}
	return SyntheticCanonSet(k)
}

// EmbeddedCanonSetBands lists the color bounds covered by the embedded
// data, ascending.
func EmbeddedCanonSetBands() []int {
	ks := make([]int, 0, len(embeddedCanonSets))
	for k := range embeddedCanonSets {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// EncodeCanonSets renders canonizing sets in the canonsets.json format —
// the single serializer shared by cmd/sbpgen and the stale-data check, so
// "regenerate and diff" is byte-exact. Bands are emitted ascending.
func EncodeCanonSets(sets map[int][][]int) ([]byte, error) {
	file := canonSetFile{Version: CanonSetFileVersion}
	ks := make([]int, 0, len(sets))
	for k := range sets {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		if err := validateCanonSet(k, sets[k]); err != nil {
			return nil, err
		}
		file.Sets = append(file.Sets, canonSetEntry{K: k, Perms: sets[k]})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCanonSets parses canonsets.json-format data, validating every
// permutation. The inverse of EncodeCanonSets.
func DecodeCanonSets(data []byte) (map[int][][]int, error) {
	var file canonSetFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("canonsets: %w", err)
	}
	if file.Version != CanonSetFileVersion {
		return nil, fmt.Errorf("canonsets: version %d, want %d", file.Version, CanonSetFileVersion)
	}
	sets := make(map[int][][]int, len(file.Sets))
	for _, e := range file.Sets {
		if _, dup := sets[e.K]; dup {
			return nil, fmt.Errorf("canonsets: duplicate band k=%d", e.K)
		}
		if err := validateCanonSet(e.K, e.Perms); err != nil {
			return nil, err
		}
		sets[e.K] = e.Perms
	}
	return sets, nil
}

// validateCanonSet checks every entry is a genuine non-identity
// permutation of {0..k-1}. Corrupt data must fail loudly: a non-bijective
// "permutation" would make the lex-leader break unsound.
func validateCanonSet(k int, perms [][]int) error {
	if k < 2 {
		return fmt.Errorf("canonsets: band k=%d below 2", k)
	}
	for pi, p := range perms {
		if len(p) != k {
			return fmt.Errorf("canonsets: k=%d perm %d has length %d", k, pi, len(p))
		}
		seen := make([]bool, k)
		identity := true
		for j, v := range p {
			if v < 0 || v >= k || seen[v] {
				return fmt.Errorf("canonsets: k=%d perm %d is not a permutation", k, pi)
			}
			seen[v] = true
			if v != j {
				identity = false
			}
		}
		if identity {
			return fmt.Errorf("canonsets: k=%d perm %d is the identity", k, pi)
		}
	}
	return nil
}

func mustLoadCanonSets(data []byte) map[int][][]int {
	sets, err := DecodeCanonSets(data)
	if err != nil {
		panic(fmt.Sprintf("sbp: embedded canonizing-set data invalid (regenerate with make sbpdata): %v", err))
	}
	return sets
}

package sbp_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/testutil"
)

// FuzzSBPVariant cross-checks every SBP variant against the brute-force
// chromatic oracle on arbitrary tiny graphs: the variant knob must never
// change a definitive answer. Input encoding: byte 0 picks n in [3,6],
// byte 1 picks k in [2,4], byte 2 picks the variant, and the remaining
// bytes are the upper-triangle edge bitmap.
func FuzzSBPVariant(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0xff})             // triangle-ish, k=2, full
	f.Add([]byte{1, 1, 1, 0b101101})         // n=4, k=3, involution
	f.Add([]byte{2, 2, 2, 0xaa, 0x55})       // n=5, k=4, canonset
	f.Add([]byte{3, 0, 2, 0x00, 0x00, 0x01}) // n=6 sparse, k=2, canonset
	f.Add([]byte{3, 2, 0, 0xff, 0xff, 0xff}) // n=6 dense, k=4, full
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 3 + int(data[0]%4)
		k := 2 + int(data[1]%3)
		variant := sbp.Variant(int(data[2]) % len(sbp.Variants))
		g := graph.New("fuzz", n)
		bit := 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				byteIdx := 3 + bit/8
				if byteIdx < len(data) && data[byteIdx]&(1<<(bit%8)) != 0 {
					g.AddEdge(a, b)
				}
				bit++
			}
		}
		chi := testutil.BruteForceChromatic(g)
		out := core.Solve(context.Background(), g, core.Config{
			K:                 k,
			SBPVariant:        variant,
			InstanceDependent: true,
		})
		if chi <= k {
			if out.Result.Status != pbsolver.StatusOptimal {
				t.Fatalf("n=%d k=%d chi=%d variant=%v: status = %v, want optimal",
					n, k, chi, variant, out.Result.Status)
			}
			if out.Chi != chi {
				t.Fatalf("n=%d k=%d variant=%v: chi = %d, oracle says %d",
					n, k, variant, out.Chi, chi)
			}
			if err := testutil.CheckColoring(g, out.Coloring, k); err != nil {
				t.Fatalf("n=%d k=%d variant=%v: witness: %v", n, k, variant, err)
			}
		} else if out.Result.Status != pbsolver.StatusUnsat {
			t.Fatalf("n=%d k=%d chi=%d variant=%v: status = %v, want unsat",
				n, k, chi, variant, out.Result.Status)
		}
	})
}

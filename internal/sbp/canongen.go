package sbp

import (
	"math/rand"
	"sort"
)

// Canonizing-set generation: the offline construction behind
// VariantCanonSet, following the set-covering perspective on symmetry
// breaking. The group is the value symmetry S_k acting on the K colors of
// the coloring encoding (σ maps color j to σ[j], lifting to the formula
// symmetry x(v,j) → x(v,σ(j)), y(j) → y(σ(j))). A canonizing set C ⊆ S_k
// approximates the complete lex-leader break: the conjunction of the
// lex-leader constraints of the members of C excludes as many
// non-lex-least assignments as possible while staying small.
//
// The greedy chooses permutations one at a time, each step keeping the
// candidate that minimizes the number of surviving vectors over a
// universe of color vectors — exactly the classic greedy set-cover bound
// applied to "assignments still to exclude". Soundness never depends on
// the choice: any subset of the group keeps at least the lex-least member
// of every orbit.
//
// cmd/sbpgen runs this generator offline and embeds the result
// (canonsets.json); CanonSet falls back to SyntheticCanonSet for color
// bounds outside the embedded bands.

// Generation bounds. Exact enumeration (all k^k vectors, all k!
// candidates) is used for small k; larger bands switch to a seeded sampled
// universe and a structured candidate pool so generation stays fast and
// deterministic.
const (
	// GreedyExactMaxK is the largest k whose universe is enumerated
	// exhaustively.
	GreedyExactMaxK = 6
	// GreedyFullGroupMaxK is the largest k whose candidate pool is all of
	// S_k; beyond it the pool is transpositions, rotations, and the
	// reversal.
	GreedyFullGroupMaxK = 7
	// greedySampleSize is the sampled-universe size for k > GreedyExactMaxK.
	greedySampleSize = 4096
	// greedySeed fixes the sampled universe; regeneration must be
	// byte-identical for the committed-data CI diff.
	greedySeed = 1
)

// GreedyCanonSet computes a canonizing set of at most maxSize color
// permutations for a K = k coloring band (maxSize <= 0 selects 2k).
// Deterministic: identical inputs always yield the identical set, which is
// what lets CI diff regenerated data against the committed copy. Returns
// nil for k < 2 (no value symmetry to break).
func GreedyCanonSet(k, maxSize int) [][]int {
	if k < 2 {
		return nil
	}
	if maxSize <= 0 {
		maxSize = 2 * k
	}
	universe := canonUniverse(k)
	candidates := canonCandidates(k)
	target := canonicalCount(universe)
	survivors := universe
	var set [][]int
	img := make([]int, k) // scratch for applyValuePerm
	for len(set) < maxSize && len(survivors) > target {
		bestIdx, bestKept := -1, len(survivors)
		for ci, p := range candidates {
			kept := 0
			for _, vec := range survivors {
				if lexLeqImage(vec, p, img) {
					kept++
				}
			}
			if kept < bestKept {
				bestKept, bestIdx = kept, ci
			}
		}
		if bestIdx < 0 || bestKept == len(survivors) {
			break // no candidate excludes anything further
		}
		p := candidates[bestIdx]
		next := make([][]int, 0, bestKept)
		for _, vec := range survivors {
			if lexLeqImage(vec, p, img) {
				next = append(next, vec)
			}
		}
		survivors = next
		set = append(set, p)
	}
	return set
}

// SyntheticCanonSet is the structured fallback for color bounds outside
// the embedded data: the adjacent transpositions (the classic value-precede
// partial break), the rotation by one, and the full reversal. Valid for
// every k >= 2 and cheap to build at encode time.
func SyntheticCanonSet(k int) [][]int {
	if k < 2 {
		return nil
	}
	out := make([][]int, 0, k+1)
	for j := 0; j+1 < k; j++ {
		p := identityPerm(k)
		p[j], p[j+1] = p[j+1], p[j]
		out = append(out, p)
	}
	rot := make([]int, k)
	for j := 0; j < k; j++ {
		rot[j] = (j + 1) % k
	}
	out = append(out, rot)
	if k > 2 {
		rev := make([]int, k)
		for j := 0; j < k; j++ {
			rev[j] = k - 1 - j
		}
		out = append(out, rev)
	}
	return out
}

// lexLeqImage reports vec <=lex σ(vec), where σ acts on values:
// σ(vec)[i] = p[vec[i]]. img is caller-provided scratch.
func lexLeqImage(vec, p, img []int) bool {
	for i, v := range vec {
		img[i] = p[v]
	}
	for i := range vec {
		if vec[i] != img[i] {
			return vec[i] < img[i]
		}
	}
	return true
}

// canonUniverse is the vector set the greedy scores against: all k^k
// color vectors of length k for small k, a seeded sample beyond.
func canonUniverse(k int) [][]int {
	if k <= GreedyExactMaxK {
		total := 1
		for i := 0; i < k; i++ {
			total *= k
		}
		out := make([][]int, 0, total)
		vec := make([]int, k)
		for {
			out = append(out, append([]int(nil), vec...))
			i := k - 1
			for ; i >= 0; i-- {
				vec[i]++
				if vec[i] < k {
					break
				}
				vec[i] = 0
			}
			if i < 0 {
				return out
			}
		}
	}
	rng := rand.New(rand.NewSource(greedySeed))
	seen := map[string]bool{}
	out := make([][]int, 0, greedySampleSize)
	buf := make([]byte, k)
	for len(out) < greedySampleSize {
		vec := make([]int, k)
		for i := range vec {
			vec[i] = rng.Intn(k)
			buf[i] = byte(vec[i])
		}
		if key := string(buf); !seen[key] {
			seen[key] = true
			out = append(out, vec)
		}
	}
	return out
}

// canonCandidates is the permutation pool the greedy selects from.
func canonCandidates(k int) [][]int {
	if k <= GreedyFullGroupMaxK {
		return allPerms(k)
	}
	// Structured pool: every transposition, every rotation, the reversal.
	var out [][]int
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			p := identityPerm(k)
			p[a], p[b] = p[b], p[a]
			out = append(out, p)
		}
	}
	for r := 1; r < k; r++ {
		p := make([]int, k)
		for j := 0; j < k; j++ {
			p[j] = (j + r) % k
		}
		out = append(out, p)
	}
	rev := make([]int, k)
	for j := 0; j < k; j++ {
		rev[j] = k - 1 - j
	}
	return append(out, rev)
}

// canonicalCount counts universe vectors that are the lex-least member of
// their own S_k value orbit — those satisfy every lex-leader constraint,
// so no canonizing set can push survivors below this floor. Reaching it
// means the break is complete over the universe; it is the greedy's
// stopping target. The lex-least orbit member is exactly the
// first-occurrence relabeling (colors appear in order 0,1,2,... as read),
// so the check is a single pass per vector.
func canonicalCount(universe [][]int) int {
	count := 0
	for _, vec := range universe {
		next, canonical := 0, true
		for _, v := range vec {
			if v > next {
				canonical = false
				break
			}
			if v == next {
				next++
			}
		}
		if canonical {
			count++
		}
	}
	return count
}

// allPerms enumerates S_k in a deterministic (lexicographic) order.
func allPerms(k int) [][]int {
	var out [][]int
	p := identityPerm(k)
	for {
		out = append(out, append([]int(nil), p...))
		// next lexicographic permutation
		i := k - 2
		for i >= 0 && p[i] >= p[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := k - 1
		for p[j] <= p[i] {
			j--
		}
		p[i], p[j] = p[j], p[i]
		sort.Ints(p[i+1:])
	}
}

func identityPerm(k int) []int {
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	return p
}

package sbp

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/pb"
	"repro/internal/pbsolver"
	"repro/internal/symgraph"
)

func lit(v int) cnf.Lit  { return cnf.PosLit(v) }
func nlit(v int) cnf.Lit { return cnf.NegLit(v) }

// assignments enumerates all assignments over vars 1..n satisfying f.
func satisfyingSet(f *pb.Formula, n int) map[uint32]bool {
	out := map[uint32]bool{}
	total := f.NumVars
	for mask := 0; mask < 1<<total; mask++ {
		a := make(cnf.Assignment, total+1)
		for v := 1; v <= total; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if f.Satisfies(a) {
			key := uint32(0)
			for v := 1; v <= n; v++ {
				if a[v] {
					key |= 1 << (v - 1)
				}
			}
			out[key] = true
		}
	}
	return out
}

// applyPerm maps an assignment key through a literal permutation: the image
// assignment B has B[π(v)] = A[v] with phase adjustment. Iterating it over
// the generators closes orbits (finite order makes inverses reachable).
func applyPerm(key uint32, p symgraph.LitPerm, n int) uint32 {
	out := uint32(0)
	for v := 1; v <= n; v++ {
		val := key&(1<<(v-1)) != 0
		img := p.Img[v]
		if !img.Sign() {
			val = !val
		}
		if val {
			out |= 1 << (img.Var() - 1)
		}
	}
	return out
}

// imageValues returns, per variable v, the value of the image literal
// π(PosLit(v)) under the assignment: the right-hand side of the lex-leader
// comparison A ≤lex A∘π that the SBP construction enforces.
func imageValues(key uint32, p symgraph.LitPerm, n int) uint32 {
	out := uint32(0)
	for v := 1; v <= n; v++ {
		img := p.Img[v]
		val := key&(1<<(img.Var()-1)) != 0
		if !img.Sign() {
			val = !val
		}
		if val {
			out |= 1 << (v - 1)
		}
	}
	return out
}

// lexLeq compares assignments by the lex order over variables 1..n where
// variable 1 is most significant and false < true... The SBP construction
// enforces A ≤lex π(A) with l_i → m_i per prefix, i.e. A[v]=1,π(A)[v]=0
// forbidden at the first difference: true > false, variable order
// ascending. Equivalent integer comparison with bit v-1 weighted by
// 2^(n-v).
func lexKey(key uint32, n int) uint32 {
	out := uint32(0)
	for v := 1; v <= n; v++ {
		if key&(1<<(v-1)) != 0 {
			out |= 1 << (n - v)
		}
	}
	return out
}

func TestSwapSBPSemantics(t *testing.T) {
	// Free formula over x1,x2 with swap symmetry: SBP keeps exactly
	// assignments with x1 ≤lex-image, i.e. A ≤ swap(A): 00, 01, 11 survive,
	// 10 is cut.
	f := pb.NewFormula(2)
	swap := symgraph.NewIdentityPerm(2)
	swap.Img[1], swap.Img[2] = lit(2), lit(1)
	st := AddSBPs(f, []symgraph.LitPerm{swap}, Options{})
	if st.Generators != 1 {
		t.Fatalf("generators = %d", st.Generators)
	}
	got := satisfyingSet(f, 2)
	want := map[uint32]bool{0b00: true, 0b10: true, 0b11: true} // bit v-1; 0b10 = x2 only
	if len(got) != len(want) {
		t.Fatalf("surviving = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing assignment %02b", k)
		}
	}
}

func TestPhaseShiftTruncation(t *testing.T) {
	// Generator x1 → ¬x1: SBP must be the single unit clause ¬x1.
	f := pb.NewFormula(1)
	g := symgraph.NewIdentityPerm(1)
	g.Img[1] = nlit(1)
	st := AddSBPs(f, []symgraph.LitPerm{g}, Options{})
	if st.Clauses != 1 || st.AddedVars != 0 {
		t.Fatalf("clauses=%d vars=%d, want 1/0", st.Clauses, st.AddedVars)
	}
	got := satisfyingSet(f, 1)
	if len(got) != 1 || !got[0] {
		t.Fatalf("surviving = %v, want {0}", got)
	}
}

func TestIdentitySkipped(t *testing.T) {
	f := pb.NewFormula(3)
	st := AddSBPs(f, []symgraph.LitPerm{symgraph.NewIdentityPerm(3)}, Options{})
	if st.Generators != 0 || st.Clauses != 0 {
		t.Fatalf("identity should add nothing: %+v", st)
	}
}

func TestMaxSupportTruncation(t *testing.T) {
	// Rotation over 4 variables with MaxSupport 2: fewer clauses, still
	// sound (orbit representatives survive).
	f := pb.NewFormula(4)
	rot := symgraph.NewIdentityPerm(4)
	rot.Img[1], rot.Img[2], rot.Img[3], rot.Img[4] = lit(2), lit(3), lit(4), lit(1)
	stFull := AddSBPs(pb.NewFormula(4), []symgraph.LitPerm{rot}, Options{})
	stTrunc := AddSBPs(f, []symgraph.LitPerm{rot}, Options{MaxSupport: 2})
	if stTrunc.Clauses >= stFull.Clauses {
		t.Fatalf("truncated %d >= full %d", stTrunc.Clauses, stFull.Clauses)
	}
}

// TestLexLeaderExactSemantics verifies, by exhaustive enumeration on random
// variable permutations, that the SBP admits exactly the assignments
// A ≤lex π(A).
func TestLexLeaderExactSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(5)
		// Random permutation with random phase flips.
		vp := rng.Perm(n)
		g := symgraph.NewIdentityPerm(n)
		for v := 1; v <= n; v++ {
			img := cnf.PosLit(vp[v-1] + 1)
			if rng.Intn(3) == 0 {
				img = img.Neg()
			}
			g.Img[v] = img
		}
		if g.IsIdentity() {
			continue
		}
		f := pb.NewFormula(n)
		AddSBPs(f, []symgraph.LitPerm{g}, Options{})
		got := satisfyingSet(f, n)
		for key := uint32(0); key < 1<<n; key++ {
			img := imageValues(key, g, n)
			wantIn := lexKey(key, n) <= lexKey(img, n)
			if got[key] != wantIn {
				t.Fatalf("iter %d n=%d key=%0*b img=%0*b: survived=%v want=%v",
					iter, n, n, key, n, img, got[key], wantIn)
			}
		}
	}
}

// TestOrbitRepresentativeSurvives: for random generator sets, every orbit
// of the generated group keeps at least one satisfying representative.
func TestOrbitRepresentativeSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(4)
		nGens := 1 + rng.Intn(2)
		gens := make([]symgraph.LitPerm, 0, nGens)
		for k := 0; k < nGens; k++ {
			vp := rng.Perm(n)
			g := symgraph.NewIdentityPerm(n)
			for v := 1; v <= n; v++ {
				g.Img[v] = cnf.PosLit(vp[v-1] + 1)
			}
			gens = append(gens, g)
		}
		f := pb.NewFormula(n)
		AddSBPs(f, gens, Options{})
		got := satisfyingSet(f, n)
		// Close each assignment's orbit under the generators; at least one
		// member must survive.
		for key := uint32(0); key < 1<<n; key++ {
			orbit := map[uint32]bool{key: true}
			frontier := []uint32{key}
			for len(frontier) > 0 {
				cur := frontier[len(frontier)-1]
				frontier = frontier[:len(frontier)-1]
				for _, g := range gens {
					img := applyPerm(cur, g, n)
					if !orbit[img] {
						orbit[img] = true
						frontier = append(frontier, img)
					}
				}
			}
			any := false
			for m := range orbit {
				if got[m] {
					any = true
					break
				}
			}
			if !any {
				t.Fatalf("iter %d: orbit of %0*b fully eliminated", iter, n, key)
			}
		}
	}
}

// TestSBPsPreserveOptimum: adding SBPs from genuine formula symmetries never
// changes satisfiability or the optimal objective value.
func TestSBPsPreserveOptimum(t *testing.T) {
	// Pigeonhole PHP(4,3) with row-swap symmetry generators (pigeons are
	// interchangeable): UNSAT stays UNSAT.
	f := pigeonPB(4, 3)
	gens := pigeonRowSwaps(4, 3)
	for _, g := range gens {
		if !symgraph.VerifyLitPerm(f, g) {
			t.Fatal("row swap should be a formula symmetry")
		}
	}
	AddSBPs(f, gens, Options{})
	res := pbsolver.Decide(context.Background(), f, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if res.Status != pbsolver.StatusUnsat {
		t.Fatalf("PHP(4,3)+SBP = %v, want UNSAT", res.Status)
	}
	// PHP(3,3) with objective: minimum number of "used holes" stays 3.
	f2 := pigeonPB(3, 3)
	obj := make([]pb.Term, 0)
	// Reuse x variables as a stand-in objective: minimize pigeons in hole 0.
	for p := 0; p < 3; p++ {
		obj = append(obj, pb.Term{Coef: 1, Lit: cnf.PosLit(p*3 + 1)})
	}
	f2.SetObjective(obj)
	base := pbsolver.Optimize(context.Background(), f2, pbsolver.Options{Engine: pbsolver.EnginePBS})
	f3 := pigeonPB(3, 3)
	f3.SetObjective(obj)
	AddSBPs(f3, pigeonRowSwaps(3, 3), Options{})
	withSBP := pbsolver.Optimize(context.Background(), f3, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if base.Status != withSBP.Status || base.Objective != withSBP.Objective {
		t.Fatalf("optimum changed: %v/%d vs %v/%d",
			base.Status, base.Objective, withSBP.Status, withSBP.Objective)
	}
}

// TestSymmetryBreakingSpeedsUpPigeonhole reproduces the motivating
// observation (paper §2.2, Krishnamurthy): pigeonhole instances are
// exponentially hard for resolution-based solvers but easy once symmetries
// are broken — conflicts should drop dramatically.
func TestSymmetryBreakingSpeedsUpPigeonhole(t *testing.T) {
	plain := pigeonPB(8, 7)
	resPlain := pbsolver.Decide(context.Background(), plain, pbsolver.Options{Engine: pbsolver.EnginePBS})
	broken := pigeonPB(8, 7)
	AddSBPs(broken, pigeonRowSwaps(8, 7), Options{})
	resBroken := pbsolver.Decide(context.Background(), broken, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if resPlain.Status != pbsolver.StatusUnsat || resBroken.Status != pbsolver.StatusUnsat {
		t.Fatalf("both must be UNSAT: %v / %v", resPlain.Status, resBroken.Status)
	}
	if resBroken.Stats.Conflicts >= resPlain.Stats.Conflicts {
		t.Fatalf("SBPs did not reduce conflicts: %d -> %d",
			resPlain.Stats.Conflicts, resBroken.Stats.Conflicts)
	}
}

func pigeonPB(pigeons, holes int) *pb.Formula {
	f := pb.NewFormula(pigeons * holes)
	v := func(p, h int) cnf.Lit { return cnf.PosLit(p*holes + h + 1) }
	for p := 0; p < pigeons; p++ {
		terms := make([]pb.Term, holes)
		for h := 0; h < holes; h++ {
			terms[h] = pb.Term{Coef: 1, Lit: v(p, h)}
		}
		f.AddPB(terms, pb.EQ, 1)
	}
	for h := 0; h < holes; h++ {
		terms := make([]pb.Term, pigeons)
		for p := 0; p < pigeons; p++ {
			terms[p] = pb.Term{Coef: 1, Lit: v(p, h)}
		}
		f.AddPB(terms, pb.LE, 1)
	}
	return f
}

// pigeonRowSwaps returns adjacent-pigeon transpositions (generators of the
// pigeon symmetric group).
func pigeonRowSwaps(pigeons, holes int) []symgraph.LitPerm {
	n := pigeons * holes
	var gens []symgraph.LitPerm
	for p := 0; p+1 < pigeons; p++ {
		g := symgraph.NewIdentityPerm(n)
		for h := 0; h < holes; h++ {
			a := p*holes + h + 1
			b := (p+1)*holes + h + 1
			g.Img[a] = cnf.PosLit(b)
			g.Img[b] = cnf.PosLit(a)
		}
		gens = append(gens, g)
	}
	return gens
}

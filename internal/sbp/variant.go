package sbp

import "fmt"

// Variant selects which symmetry-breaking predicate construction the
// instance-dependent layer emits. All variants are partial breaks of the
// same group, so they are answer-invariant: each keeps at least the
// lex-least member of every orbit of assignments, hence the optimum (and
// satisfiability) of the formula is preserved. Like the engine search
// knobs, the variant is therefore excluded from the service's result-cache
// key — differently broken submissions of isomorphic graphs share one
// solve.
type Variant int

const (
	// VariantFull emits the lex-leader predicate for every detected
	// generator (the Shatter flow, the construction this package started
	// with).
	VariantFull Variant = iota
	// VariantInvolution restricts the lex-leader predicates to involutions
	// derived from the detected generators (generators of order two, the
	// involutive powers g^(ord/2), and involutive pairwise products), the
	// compact-yet-strong break of "Breaking Symmetries with Involutions"
	// (Codish line of work, PAPERS.md).
	VariantInvolution
	// VariantCanonSet emits lex-leader predicates over a precomputed
	// canonizing set of color permutations (per "Breaking Symmetries in
	// Graph Search with Canonizing Sets" / "Breaking Symmetries from a
	// Set-Covering Perspective"): no detection run is needed, the sets ship
	// as embedded data keyed by the color bound K (see cmd/sbpgen).
	VariantCanonSet
	// VariantRace is not a construction: it races the three concrete
	// variants on separate encodings and keeps the first definitive
	// answer (core.Solve implements the race).
	VariantRace
)

// Variants lists the concrete (raceable) constructions in race order.
var Variants = []Variant{VariantFull, VariantInvolution, VariantCanonSet}

// String returns the wire name used by the -sbp flag, the gcolord JSON
// field, and the per-variant stats rows.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "full"
	case VariantInvolution:
		return "involution"
	case VariantCanonSet:
		return "canonset"
	case VariantRace:
		return "race"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

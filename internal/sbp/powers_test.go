package sbp

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/pb"
	"repro/internal/symgraph"
)

func rotation(n int) symgraph.LitPerm {
	g := symgraph.NewIdentityPerm(n)
	for v := 1; v <= n; v++ {
		g.Img[v] = cnf.PosLit(v%n + 1)
	}
	return g
}

func TestCompose(t *testing.T) {
	r := rotation(4) // 1→2→3→4→1
	r2 := Compose(r, r)
	if r2.Img[1] != lit(3) || r2.Img[3] != lit(1) {
		t.Fatalf("r² wrong: %v", r2.Img)
	}
	r4 := Compose(r2, r2)
	if !r4.IsIdentity() {
		t.Fatalf("r⁴ should be identity: %v", r4.Img)
	}
	// Phases compose: (1→¬1)² = id.
	p := symgraph.NewIdentityPerm(1)
	p.Img[1] = nlit(1)
	if !Compose(p, p).IsIdentity() {
		t.Fatal("phase shift squared should be identity")
	}
}

func TestExpandPowers(t *testing.T) {
	r := rotation(5) // order 5
	out := ExpandPowers([]symgraph.LitPerm{r}, 4)
	// r, r², r³, r⁴ — all non-identity.
	if len(out) != 4 {
		t.Fatalf("got %d perms, want 4", len(out))
	}
	for i, p := range out {
		if p.IsIdentity() {
			t.Fatalf("power %d is identity", i)
		}
	}
	// maxPower beyond the order stops at the order.
	out = ExpandPowers([]symgraph.LitPerm{r}, 100)
	if len(out) != 4 {
		t.Fatalf("got %d perms, want 4 (order-1)", len(out))
	}
	// maxPower 1 = generators only.
	out = ExpandPowers([]symgraph.LitPerm{r}, 1)
	if len(out) != 1 {
		t.Fatalf("got %d perms, want 1", len(out))
	}
}

func TestExpandPowersSoundInSBPs(t *testing.T) {
	// Breaking a rotation plus its powers still keeps one representative
	// per orbit (reuses the orbit-survival machinery).
	n := 4
	r := rotation(n)
	gens := ExpandPowers([]symgraph.LitPerm{r}, 3)
	f := pb.NewFormula(n)
	AddSBPs(f, gens, Options{})
	got := satisfyingSet(f, n)
	for key := uint32(0); key < 1<<n; key++ {
		orbit := map[uint32]bool{key: true}
		cur := key
		for {
			cur = applyPerm(cur, r, n)
			if orbit[cur] {
				break
			}
			orbit[cur] = true
		}
		any := false
		for m := range orbit {
			if got[m] {
				any = true
				break
			}
		}
		if !any {
			t.Fatalf("orbit of %04b eliminated", key)
		}
	}
	// Powers break strictly more than the generator alone on some orbit:
	// count survivors.
	fGen := pb.NewFormula(n)
	AddSBPs(fGen, []symgraph.LitPerm{r}, Options{})
	genSurvivors := len(satisfyingSet(fGen, n))
	powSurvivors := len(got)
	if powSurvivors > genSurvivors {
		t.Fatalf("powers should not increase survivors: %d > %d", powSurvivors, genSurvivors)
	}
}

// Property suite for the SBP variants: every variant must preserve the
// chromatic number against the brute-force oracle (on seeded random and
// transitive families, with and without relabeling), and every partial
// break must keep at least one model of each satisfiable instance. The
// tests live in an external package because they drive the variants
// through core.Solve, which imports sbp.
package sbp_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
	"repro/internal/sbp"
	"repro/internal/symgraph"
	"repro/internal/testutil"
)

// allVariants includes the race on top of the three concrete
// constructions; every entry must produce identical answers.
var allVariants = []sbp.Variant{
	sbp.VariantFull, sbp.VariantInvolution, sbp.VariantCanonSet, sbp.VariantRace,
}

// oracleFamilies are the instances the chromatic-preservation property is
// checked on: seeded G(n,p) graphs plus the transitive families whose
// symmetry groups give the variants real work.
func oracleFamilies() []*graph.Graph {
	gs := []*graph.Graph{
		graph.Cycle(5),    // chi 3, dihedral symmetry
		graph.Cycle(6),    // chi 2
		graph.Complete(4), // chi 4, full S_4
		graph.Petersen(),  // chi 3, vertex-transitive
	}
	rng := rand.New(rand.NewSource(7))
	for n := 5; n <= 7; n++ {
		gs = append(gs, testutil.RandomGraph(rng, fmt.Sprintf("rand-%d", n), n, 0.5))
	}
	return gs
}

// relabel returns a copy of g with vertex v renamed perm[v].
func relabel(g *graph.Graph, perm []int) *graph.Graph {
	out := graph.New(g.Name()+"-relabeled", g.N())
	for _, e := range g.Edges() {
		out.AddEdge(perm[e[0]], perm[e[1]])
	}
	return out
}

// rotation is the deterministic relabeling used by the ± relabeling leg.
func rotation(n int) []int {
	perm := make([]int, n)
	for v := range perm {
		perm[v] = (v + 1) % n
	}
	return perm
}

func solveVariant(t *testing.T, g *graph.Graph, k int, v sbp.Variant, kind encode.SBPKind) core.Outcome {
	t.Helper()
	return core.Solve(context.Background(), g, core.Config{
		K:                 k,
		SBP:               kind,
		SBPVariant:        v,
		InstanceDependent: true,
	})
}

// TestVariantsPreserveChromaticNumber is the oracle property: under every
// variant (and the race), on every family member and its relabeled twin,
// the solver must prove exactly the brute-force chromatic number. A
// variant that cut a whole orbit of colorings would surface here as a
// wrong optimum or a bogus UNSAT.
func TestVariantsPreserveChromaticNumber(t *testing.T) {
	for _, g := range oracleFamilies() {
		chi := testutil.BruteForceChromatic(g)
		for _, twin := range []*graph.Graph{g, relabel(g, rotation(g.N()))} {
			for _, v := range allVariants {
				t.Run(fmt.Sprintf("%s/%s", twin.Name(), v), func(t *testing.T) {
					out := solveVariant(t, twin, chi+2, v, encode.SBPNone)
					if out.Result.Status != pbsolver.StatusOptimal {
						t.Fatalf("status = %v, want optimal", out.Result.Status)
					}
					if out.Chi != chi {
						t.Fatalf("chi = %d, oracle says %d", out.Chi, chi)
					}
					if err := testutil.CheckColoring(twin, out.Coloring, chi+2); err != nil {
						t.Fatalf("witness coloring: %v", err)
					}
				})
			}
		}
	}
}

// TestVariantsKeepSatisfiableInstances is the model-retention property at
// the instance level: a satisfiable decision instance (k >= chi) must stay
// satisfiable under every variant's predicates, and an unsatisfiable one
// (k < chi) must stay unsatisfiable — partial breaks may thin the model
// space, never empty or grow it.
func TestVariantsKeepSatisfiableInstances(t *testing.T) {
	for _, g := range oracleFamilies() {
		chi := testutil.BruteForceChromatic(g)
		for _, k := range []int{chi - 1, chi, chi + 1} {
			if k < 1 {
				continue
			}
			for _, v := range allVariants {
				t.Run(fmt.Sprintf("%s/k=%d/%s", g.Name(), k, v), func(t *testing.T) {
					out := solveVariant(t, g, k, v, encode.SBPNone)
					if k < chi {
						if out.Result.Status != pbsolver.StatusUnsat {
							t.Fatalf("k=%d < chi=%d: status = %v, want unsat", k, chi, out.Result.Status)
						}
						return
					}
					if out.Result.Status != pbsolver.StatusOptimal || out.Chi != chi {
						t.Fatalf("k=%d >= chi=%d: status = %v chi = %d", k, chi, out.Result.Status, out.Chi)
					}
				})
			}
		}
	}
}

// TestVariantsAgreeWithInstanceIndependentSBPs pins the interplay with the
// paper's instance-independent constructions: combining any variant with
// any SBPKind (including the color-ordering ones that break the very
// symmetries the canonizing set lifts) must leave the answer unchanged.
func TestVariantsAgreeWithInstanceIndependentSBPs(t *testing.T) {
	g := graph.Petersen()
	const chi = 3
	for _, kind := range []encode.SBPKind{encode.SBPNone, encode.SBPNU, encode.SBPNUSC} {
		for _, v := range []sbp.Variant{sbp.VariantInvolution, sbp.VariantCanonSet} {
			t.Run(fmt.Sprintf("%v/%s", kind, v), func(t *testing.T) {
				out := solveVariant(t, g, chi+2, v, kind)
				if out.Result.Status != pbsolver.StatusOptimal || out.Chi != chi {
					t.Fatalf("status = %v chi = %d, want optimal chi %d", out.Result.Status, out.Chi, chi)
				}
			})
		}
	}
}

// liftColorPerm mirrors core's canon-set lifting for the direct
// orbit-retention check: σ acts on color values of the encoding.
func liftColorPerm(enc *encode.Encoding, cp []int) symgraph.LitPerm {
	lp := symgraph.NewIdentityPerm(enc.F.NumVars)
	for v := 0; v < enc.G.N(); v++ {
		for j := 0; j < enc.K; j++ {
			lp.Img[enc.X(v, j)] = cnf.PosLit(enc.X(v, cp[j]))
		}
	}
	for j := 0; j < enc.K; j++ {
		lp.Img[enc.Y(j)] = cnf.PosLit(enc.Y(cp[j]))
	}
	return lp
}

// properColorings enumerates every proper k-coloring of g.
func properColorings(g *graph.Graph, k int) [][]int {
	var out [][]int
	col := make([]int, g.N())
	var rec func(v int)
	rec = func(v int) {
		if v == g.N() {
			out = append(out, append([]int(nil), col...))
			return
		}
	next:
		for c := 0; c < k; c++ {
			for _, w := range g.Neighbors(v) {
				if w < v && col[w] == c {
					continue next
				}
			}
			col[v] = c
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

// colorOrbitKey identifies a coloring's orbit under color permutations by
// its first-occurrence relabeling pattern.
func colorOrbitKey(col []int) string {
	label := map[int]int{}
	key := make([]byte, len(col))
	for i, c := range col {
		l, ok := label[c]
		if !ok {
			l = len(label)
			label[c] = l
		}
		key[i] = byte(l)
	}
	return string(key)
}

// TestCanonSetKeepsOrbitRepresentatives is the sharp model-retention
// property for the canonizing set, where the orbit structure is known
// exactly: after adding the canon-set predicates, every orbit of proper
// colorings under color permutations must keep at least one member that
// still extends to a model. Checked by pinning each candidate coloring
// with unit clauses and asking the solver whether the pinned formula is
// satisfiable.
func TestCanonSetKeepsOrbitRepresentatives(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(4), graph.Cycle(5), graph.Complete(3)} {
		for _, k := range []int{3, 4} {
			t.Run(fmt.Sprintf("%s/k=%d", g.Name(), k), func(t *testing.T) {
				orbits := map[string][][]int{}
				for _, col := range properColorings(g, k) {
					key := colorOrbitKey(col)
					orbits[key] = append(orbits[key], col)
				}
				if len(orbits) == 0 {
					t.Fatalf("no proper colorings to test")
				}
				// pinnedSatisfiable rebuilds the encoding + canon-set
				// predicates fresh (pb.Formula has no clone) and pins the
				// candidate coloring with unit clauses.
				pinnedSatisfiable := func(col []int) bool {
					enc := encode.Build(g, k, encode.SBPNone)
					var perms []symgraph.LitPerm
					for _, cp := range sbp.CanonSet(k) {
						lp := liftColorPerm(enc, cp)
						if !symgraph.VerifyLitPerm(enc.F, lp) {
							t.Fatalf("canon-set perm %v failed verification on SBPNone", cp)
						}
						perms = append(perms, lp)
					}
					if st := sbp.AddSBPs(enc.F, perms, sbp.Options{}); st.Generators == 0 {
						t.Fatalf("no predicates emitted")
					}
					for v, c := range col {
						for j := 0; j < k; j++ {
							lit := cnf.PosLit(enc.X(v, j))
							if j != c {
								lit = lit.Neg()
							}
							enc.F.AddClause(lit)
						}
					}
					res := pbsolver.Optimize(context.Background(), enc.F, pbsolver.Options{})
					return res.Status == pbsolver.StatusOptimal || res.Status == pbsolver.StatusSat
				}
				for key, members := range orbits {
					kept := false
					for _, col := range members {
						if pinnedSatisfiable(col) {
							kept = true
							break
						}
					}
					if !kept {
						t.Fatalf("orbit %q lost all %d members", key, len(members))
					}
				}
			})
		}
	}
}

// TestInvolutionDerivation covers the involution machinery directly:
// recognition, derivation of involutive powers, deduplication, and the
// cap.
func TestInvolutionDerivation(t *testing.T) {
	// swap is the transposition of variables 1 and 2 over 4 variables.
	swap := symgraph.NewIdentityPerm(4)
	swap.Img[1], swap.Img[2] = cnf.PosLit(2), cnf.PosLit(1)
	if !sbp.IsInvolution(swap) {
		t.Fatalf("transposition not recognized as involution")
	}
	if sbp.IsInvolution(symgraph.NewIdentityPerm(4)) {
		t.Fatalf("identity recognized as involution")
	}
	// cycle4 is the 4-cycle (1 2 3 4); its square (1 3)(2 4) is the only
	// involution in its cyclic group.
	cycle4 := symgraph.NewIdentityPerm(4)
	for v := 1; v <= 4; v++ {
		img := v + 1
		if img > 4 {
			img = 1
		}
		cycle4.Img[v] = cnf.PosLit(img)
	}
	if sbp.IsInvolution(cycle4) {
		t.Fatalf("4-cycle recognized as involution")
	}
	invs := sbp.Involutions([]symgraph.LitPerm{cycle4}, 0, 0)
	if len(invs) != 1 {
		t.Fatalf("Involutions(4-cycle) = %d perms, want 1 (the square)", len(invs))
	}
	sq := sbp.Compose(cycle4, cycle4)
	for v := 1; v <= 4; v++ {
		if invs[0].Img[v] != sq.Img[v] {
			t.Fatalf("derived involution is not the square: %v vs %v", invs[0].Img, sq.Img)
		}
	}
	// Duplicated generators must not duplicate derived involutions, and
	// the cap must bound the result.
	if got := sbp.Involutions([]symgraph.LitPerm{swap, swap, cycle4}, 0, 0); len(got) != 2 {
		t.Fatalf("dedup failed: %d involutions, want 2", len(got))
	}
	if got := sbp.Involutions([]symgraph.LitPerm{swap, cycle4}, 0, 1); len(got) != 1 {
		t.Fatalf("cap ignored: %d involutions, want 1", len(got))
	}
}

// TestCanonSetData pins the embedded canonizing-set data: every committed
// band decodes and validates, generation is deterministic (the CI
// staleness gate depends on it), and color bounds outside the data fall
// back to the synthesized set.
func TestCanonSetData(t *testing.T) {
	bands := sbp.EmbeddedCanonSetBands()
	if len(bands) == 0 {
		t.Fatalf("no embedded bands")
	}
	for _, k := range bands {
		set := sbp.CanonSet(k)
		if len(set) == 0 {
			t.Fatalf("k=%d: empty embedded set", k)
		}
		for _, p := range set {
			if len(p) != k {
				t.Fatalf("k=%d: perm %v has wrong length", k, p)
			}
		}
	}
	// Round-trip through the shared serializer.
	sets := map[int][][]int{bands[0]: sbp.CanonSet(bands[0])}
	data, err := sbp.EncodeCanonSets(sets)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := sbp.DecodeCanonSets(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back) != 1 || len(back[bands[0]]) != len(sets[bands[0]]) {
		t.Fatalf("round trip changed the data")
	}
	// Determinism: regeneration must be byte-identical.
	a := fmt.Sprint(sbp.GreedyCanonSet(4, 0))
	b := fmt.Sprint(sbp.GreedyCanonSet(4, 0))
	if a != b {
		t.Fatalf("GreedyCanonSet(4) not deterministic:\n%s\n%s", a, b)
	}
	// Fallback outside the embedded bands.
	const bigK = 99
	fallback := sbp.CanonSet(bigK)
	if len(fallback) == 0 {
		t.Fatalf("no fallback set for k=%d", bigK)
	}
	for _, p := range fallback {
		if len(p) != bigK {
			t.Fatalf("fallback perm has length %d, want %d", len(p), bigK)
		}
	}
	if sbp.CanonSet(1) != nil {
		t.Fatalf("k=1 should have no set")
	}
}

// TestVariantsAgreeOnBenchmarks is the acceptance check behind
// `gcolor -sbp involution|canonset`: on the example instances every
// variant must report the chromatic number VariantFull proves.
func TestVariantsAgreeOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark instances are slow under -short")
	}
	for _, name := range []string{"myciel3", "queen5_5"} {
		g, err := graph.Benchmark(name)
		if err != nil {
			t.Fatalf("benchmark %s: %v", name, err)
		}
		ref := solveVariant(t, g, 8, sbp.VariantFull, encode.SBPNone)
		if ref.Result.Status != pbsolver.StatusOptimal {
			t.Fatalf("%s: full variant status = %v", name, ref.Result.Status)
		}
		for _, v := range []sbp.Variant{sbp.VariantInvolution, sbp.VariantCanonSet, sbp.VariantRace} {
			out := solveVariant(t, g, 8, v, encode.SBPNone)
			if out.Result.Status != pbsolver.StatusOptimal || out.Chi != ref.Chi {
				t.Fatalf("%s/%s: status = %v chi = %d, full proved %d",
					name, v, out.Result.Status, out.Chi, ref.Chi)
			}
		}
	}
}

// Package sbp constructs instance-dependent symmetry-breaking predicates
// from detected symmetry generators: the efficient, tautology-free,
// linear-size lex-leader construction of Aloul, Markov & Sakallah 2003
// (the Shatter flow, extended to PB formulas in their 2004 paper, §2.4).
//
// For a generator π with support v₁ < v₂ < ... (variables moved), the
// predicate keeps exactly the assignments A with A ≤lex π(A):
//
//	∧_i [ equal-prefix(i−1) → (l_i → π(l_i)) ]
//
// using chaining variables e_i ⇐ e_{i−1} ∧ (l_i ⇔ π(l_i)). Only the ⇐
// direction of the chain definition is emitted (three clauses per support
// variable): the SBP stays satisfiable by exactly the lex-leaders, and the
// chain truncates at the first phase-shifted variable, where l_i ⇔ ¬l_i is
// unsatisfiable and everything beyond is vacuous.
package sbp

import (
	"repro/internal/cnf"
	"repro/internal/pb"
	"repro/internal/symgraph"
)

// Stats reports the size of the added predicates.
type Stats struct {
	Generators int // generators for which SBPs were emitted
	AddedVars  int
	Clauses    int
}

// Options tune the construction.
type Options struct {
	// MaxSupport truncates each generator's chain after this many support
	// variables (0 = full support). Truncation keeps the predicate sound
	// (a prefix of the lex-leader condition is still implied by it).
	MaxSupport int
}

// AddSBPs appends lex-leader predicates for every generator to the formula
// and returns size statistics.
func AddSBPs(f *pb.Formula, gens []symgraph.LitPerm, opts Options) Stats {
	var st Stats
	for _, g := range gens {
		if addOne(f, g, opts, &st) {
			st.Generators++
		}
	}
	return st
}

// Compose returns q∘p as literal permutations: first apply p, then q.
func Compose(p, q symgraph.LitPerm) symgraph.LitPerm {
	out := symgraph.NewIdentityPerm(len(p.Img) - 1)
	for v := 1; v < len(p.Img); v++ {
		out.Img[v] = q.Image(p.Img[v])
	}
	return out
}

// ExpandPowers augments a generator set with powers g², g³, ... of each
// generator up to maxPower (or the generator's order, whichever is
// smaller). Breaking powers in addition to the generators themselves breaks
// strictly more of the group at the cost of more predicates — the
// generator-powers ablation called out in DESIGN.md.
func ExpandPowers(gens []symgraph.LitPerm, maxPower int) []symgraph.LitPerm {
	out := append([]symgraph.LitPerm(nil), gens...)
	for _, g := range gens {
		cur := g
		for p := 2; p <= maxPower; p++ {
			cur = Compose(cur, g)
			if cur.IsIdentity() {
				break
			}
			out = append(out, cur)
		}
	}
	return out
}

// addOne emits the predicate for one generator. Returns false for
// generators with empty support.
func addOne(f *pb.Formula, g symgraph.LitPerm, opts Options, st *Stats) bool {
	support := g.Support()
	if len(support) == 0 {
		return false
	}
	if opts.MaxSupport > 0 && len(support) > opts.MaxSupport {
		support = support[:opts.MaxSupport]
	}
	addClause := func(lits ...cnf.Lit) {
		f.AddClause(lits...)
		st.Clauses++
	}
	// ePrev is the literal meaning "prefix equal so far"; 0 means the
	// constant true (before the first support variable).
	var ePrev cnf.Lit
	for i, v := range support {
		l := cnf.PosLit(v)
		m := g.Image(l)
		// Enforcement: equal-prefix → (l → m).
		if ePrev == 0 {
			if m == l.Neg() {
				addClause(l.Neg()) // l → ¬l collapses to ¬l
				return true        // chain dead beyond a phase shift
			}
			addClause(l.Neg(), m)
		} else {
			if m == l.Neg() {
				addClause(ePrev.Neg(), l.Neg())
				return true
			}
			addClause(ePrev.Neg(), l.Neg(), m)
		}
		if i == len(support)-1 {
			break // no successor needs the chain variable
		}
		// Chain: e_i ⇐ e_{i−1} ∧ (l ⇔ m).
		e := cnf.PosLit(f.NewVar())
		st.AddedVars++
		if ePrev == 0 {
			addClause(e, l, m)
			addClause(e, l.Neg(), m.Neg())
		} else {
			addClause(e, ePrev.Neg(), l, m)
			addClause(e, ePrev.Neg(), l.Neg(), m.Neg())
		}
		ePrev = e
	}
	return true
}

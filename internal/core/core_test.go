package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

func TestSolveSmallGraphsAllConfigurations(t *testing.T) {
	graphs := []struct {
		g   *graph.Graph
		chi int
	}{
		{graph.Cycle(5), 3},
		{graph.Complete(4), 4},
		{graph.Mycielski(3), 4},
	}
	for _, tc := range graphs {
		for _, kind := range encode.Kinds {
			for _, instDep := range []bool{false, true} {
				cfg := Config{
					K: 6, SBP: kind, InstanceDependent: instDep,
					Engine: pbsolver.EnginePBS, Timeout: 30 * time.Second,
				}
				out := Solve(context.Background(), tc.g, cfg)
				if !out.Solved() || out.Chi != tc.chi {
					t.Errorf("%s sbp=%v instdep=%v: status=%v χ=%d, want %d",
						tc.g.Name(), kind, instDep, out.Result.Status, out.Chi, tc.chi)
				}
				if out.Coloring == nil || !tc.g.IsProperColoring(out.Coloring) {
					t.Errorf("%s sbp=%v: bad witness", tc.g.Name(), kind)
				}
				if instDep && out.Sym == nil {
					t.Errorf("%s: missing symmetry stats", tc.g.Name())
				}
			}
		}
	}
}

func TestSolveAllEnginesAgree(t *testing.T) {
	g := graph.Queens(4, 4) // χ=5
	for _, eng := range pbsolver.Engines {
		out := Solve(context.Background(), g, Config{K: 7, Engine: eng, Timeout: 60 * time.Second})
		if !out.Solved() || out.Chi != 5 {
			t.Errorf("engine %v: status=%v χ=%d, want 5", eng, out.Result.Status, out.Chi)
		}
	}
}

func TestSolveUnsatWhenChiExceedsK(t *testing.T) {
	out := Solve(context.Background(), graph.Complete(6), Config{K: 4, Engine: pbsolver.EnginePBS})
	if out.Result.Status != pbsolver.StatusUnsat || !out.Solved() {
		t.Fatalf("K6 with K=4: %v", out.Result.Status)
	}
	if out.Chi != 0 || out.Coloring != nil {
		t.Fatal("UNSAT outcome must not carry χ or a coloring")
	}
}

func TestSolveDefaultKIsMaxDegreePlusOne(t *testing.T) {
	g := graph.Cycle(5)
	out := Solve(context.Background(), g, Config{Engine: pbsolver.EnginePBS})
	if out.K != 3 {
		t.Fatalf("default K = %d, want Δ+1 = 3", out.K)
	}
	if out.Chi != 3 {
		t.Fatalf("χ = %d", out.Chi)
	}
}

func TestSolveTimeoutReturnsUnknownOrFeasible(t *testing.T) {
	g, err := graph.Benchmark("queen8_12")
	if err != nil {
		t.Fatal(err)
	}
	out := Solve(context.Background(), g, Config{K: 20, Engine: pbsolver.EnginePBS, Timeout: 30 * time.Millisecond})
	if out.Solved() && out.Result.Runtime > 5*time.Second {
		t.Fatal("timeout not respected")
	}
}

func TestSymmetryStatsShrinkWithSBPs(t *testing.T) {
	// Table 2's headline: instance-independent SBPs cut the number of
	// symmetries. Compare |Aut| for no-SBP vs NU vs LI on a small instance.
	g := graph.Cycle(5)
	K := 4
	none, _ := DetectSymmetries(g, K, encode.SBPNone, 0, 0)
	nu, _ := DetectSymmetries(g, K, encode.SBPNU, 0, 0)
	li, _ := DetectSymmetries(g, K, encode.SBPLI, 0, 0)
	if !none.Exact || !nu.Exact || !li.Exact {
		t.Fatal("detection did not complete")
	}
	if none.Order.Cmp(nu.Order) <= 0 {
		t.Errorf("NU should reduce symmetries: %v -> %v", none.Order, nu.Order)
	}
	if li.Order.Int64() != 1 {
		t.Errorf("LI should break all symmetries, got %v", li.Order)
	}
}

func TestDetectSymmetriesColorGroupPresent(t *testing.T) {
	// Without SBPs, the encoding has at least the full color symmetry S_K.
	g := graph.Cycle(4)
	K := 3
	st, enc := DetectSymmetries(g, K, encode.SBPNone, 0, 0)
	if !st.Exact {
		t.Fatal("incomplete")
	}
	if st.Order.Int64()%6 != 0 {
		t.Errorf("|Aut| = %v not divisible by |S_3| = 6", st.Order)
	}
	if enc.Vars != g.N()*K+K {
		t.Errorf("encode stats vars = %d", enc.Vars)
	}
}

func TestInstanceDependentSBPsPreserveChi(t *testing.T) {
	g := graph.Queens(4, 4)
	base := Solve(context.Background(), g, Config{K: 6, Engine: pbsolver.EnginePueblo})
	withSym := Solve(context.Background(), g, Config{K: 6, Engine: pbsolver.EnginePueblo, InstanceDependent: true})
	if base.Chi != withSym.Chi || base.Chi != 5 {
		t.Fatalf("χ changed: %d vs %d", base.Chi, withSym.Chi)
	}
	if withSym.Sym.Generators == 0 {
		t.Fatal("no generators found on a symmetric encoding")
	}
	if withSym.Sym.AddedCNF == 0 {
		t.Fatal("no SBP clauses added")
	}
}

func TestSequentialChromatic(t *testing.T) {
	cases := []struct {
		g   *graph.Graph
		chi int
	}{
		{graph.Cycle(5), 3},
		{graph.Complete(4), 4},
		{graph.Petersen(), 3},
		{graph.Mycielski(3), 4},
	}
	for _, tc := range cases {
		ub := 6
		chi, proven := SequentialChromatic(context.Background(), tc.g, ub)
		if !proven || chi != tc.chi {
			t.Errorf("%s: sequential χ = %d (proven=%v), want %d", tc.g.Name(), chi, proven, tc.chi)
		}
	}
}

func TestSequentialChromaticIncremental(t *testing.T) {
	cases := []struct {
		g   *graph.Graph
		chi int
	}{
		{graph.Cycle(5), 3},
		{graph.Complete(4), 4},
		{graph.Petersen(), 3},
		{graph.Mycielski(4), 5},
		{graph.Queens(5, 5), 5},
	}
	for _, tc := range cases {
		chi, proven := SequentialChromaticIncremental(context.Background(), tc.g, 7)
		if !proven || chi != tc.chi {
			t.Errorf("%s: incremental χ = %d (proven=%v), want %d",
				tc.g.Name(), chi, proven, tc.chi)
		}
	}
}

func TestSequentialVariantsAgree(t *testing.T) {
	g := graph.Mycielski(3)
	a, ap := SequentialChromatic(context.Background(), g, 6)
	b, bp := SequentialChromaticIncremental(context.Background(), g, 6)
	if !ap || !bp || a != b {
		t.Fatalf("variants disagree: %d/%v vs %d/%v", a, ap, b, bp)
	}
}

func TestDecisionCNF(t *testing.T) {
	g := graph.Cycle(5)
	f := DecisionCNF(g, 3)
	// n*K vars; clauses: n at-least-one + n*C(K,2) AMO + m*K conflicts.
	if f.NumVars != 15 {
		t.Fatalf("vars = %d", f.NumVars)
	}
	want := 5 + 5*3 + 5*3
	if f.NumClauses() != want {
		t.Fatalf("clauses = %d, want %d", f.NumClauses(), want)
	}
}

func TestOutcomeSolvedSemantics(t *testing.T) {
	o := Outcome{}
	o.Result.Status = pbsolver.StatusOptimal
	if !o.Solved() {
		t.Fatal("optimal is solved")
	}
	o.Result.Status = pbsolver.StatusUnsat
	if !o.Solved() {
		t.Fatal("unsat (χ>K proven) counts as solved")
	}
	o.Result.Status = pbsolver.StatusSat
	if o.Solved() {
		t.Fatal("feasible-but-unproven is not solved")
	}
}

package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// TestParallelMatchesSequentialDSJC is the subsystem's acceptance check: a
// DSJC-style random instance solved with 4 cube-and-conquer workers must
// report the same chromatic number as the sequential engine.
func TestParallelMatchesSequentialDSJC(t *testing.T) {
	// A planted DSJC-style random graph, scaled so the test stays fast.
	g := graph.PartitePlanted("DSJC-style-45", 45, 280, 5, 11)
	base := Config{K: 8, SBP: encode.SBPNU, Engine: pbsolver.EnginePBS, Timeout: 2 * time.Minute}

	seq := Solve(context.Background(), g, base)
	if !seq.Solved() {
		t.Fatalf("sequential did not finish: %v", seq.Result.Status)
	}

	par4 := base
	par4.Parallel = 4
	par := Solve(context.Background(), g, par4)
	if !par.Solved() {
		t.Fatalf("parallel did not finish: %v", par.Result.Status)
	}
	if par.Chi != seq.Chi || par.Result.Status != seq.Result.Status {
		t.Fatalf("parallel (chi=%d, %v) disagrees with sequential (chi=%d, %v)",
			par.Chi, par.Result.Status, seq.Chi, seq.Result.Status)
	}
	if par.Par == nil {
		t.Fatal("parallel outcome is missing cube-and-conquer stats")
	}
	if par.Par.Workers != 4 || par.Par.CubesGenerated == 0 {
		t.Fatalf("unexpected par stats: %+v", par.Par)
	}
	if par.Coloring != nil && !g.IsProperColoring(par.Coloring) {
		t.Fatal("parallel witness coloring is improper")
	}
}

// TestParallelBnBFallsBackToCDCL: EngineBnB has no assumption core, so a
// parallel solve conquers with PBS workers and says so in Winner.
func TestParallelBnBFallsBackToCDCL(t *testing.T) {
	g, err := graph.Benchmark("myciel3")
	if err != nil {
		t.Fatal(err)
	}
	out := Solve(context.Background(), g, Config{
		K: 6, SBP: encode.SBPNU, Engine: pbsolver.EngineBnB, Parallel: 2,
	})
	if out.Chi != 4 {
		t.Fatalf("chi=%d, want 4", out.Chi)
	}
	if out.Winner != pbsolver.EnginePBS {
		t.Fatalf("winner %v, want pbs2 fallback", out.Winner)
	}
}

// TestParallelKnobsAnswerInvariant: cube depth, seed and sharing settings
// may change the search shape, never the answer.
func TestParallelKnobsAnswerInvariant(t *testing.T) {
	g, err := graph.Benchmark("queen5_5")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{K: 7, SBP: encode.SBPNU, Parallel: 2, CubeDepth: 1},
		{K: 7, SBP: encode.SBPNU, Parallel: 3, CubeDepth: 6, CubeSeed: 99},
		{K: 7, SBP: encode.SBPNU, Parallel: 4, ShareLBD: -1},
		{K: 7, SBP: encode.SBPNU, Parallel: 4, ShareLBD: 8},
	} {
		out := Solve(context.Background(), g, cfg)
		if out.Chi != 5 {
			t.Fatalf("cfg %+v: chi=%d, want 5", cfg, out.Chi)
		}
	}
}

// Package core wires the paper's full flow together: reduce a graph
// coloring instance to 0-1 ILP with an instance-independent SBP
// construction (§2.5, §3), optionally detect and break instance-dependent
// symmetries via colored-graph automorphism and lex-leader predicates
// (§2.4, the Shatter flow), and solve with one of the 0-1 ILP engines
// (§2.3). This is the public API a downstream user of the library calls.
package core

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"repro/internal/autom"
	"repro/internal/cnf"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pb"
	"repro/internal/pbsolver"
	"repro/internal/sat"
	"repro/internal/sbp"
	"repro/internal/solverutil"
	"repro/internal/symgraph"
)

// Config selects one cell of the paper's experimental matrix.
type Config struct {
	// K is the color bound (the paper uses 20 and 30). Zero selects
	// max degree + 1, the greedy upper bound.
	K int
	// SBP is the instance-independent construction added during encoding.
	SBP encode.SBPKind
	// InstanceDependent adds lex-leader SBPs for detected symmetries of the
	// generated 0-1 ILP instance before solving (the "w/ i.-d. SBPs"
	// columns of Tables 3-5).
	InstanceDependent bool
	// SBPVariant selects the lex-leader construction the predicate layer
	// emits: the full detected-generator break (default), the involution
	// restriction, the precomputed canonizing set of color permutations, or
	// a race of all three. VariantFull and VariantInvolution only act when
	// InstanceDependent is set (they consume detected generators);
	// VariantCanonSet needs no detection and acts whenever selected. Every
	// variant is a sound partial break, so the knob never changes the
	// answer — only how fast the solver reaches it.
	SBPVariant sbp.Variant
	// GraphGens are automorphisms of the instance graph known to the
	// caller (the service layer forwards generators its canonical-labeling
	// search discovered). When InstanceDependent is set they are lifted to
	// formula symmetries — x(v,j) -> x(π(v),j) — verified against the
	// formula, deduplicated against symgraph's own detections, and fed to
	// the same lex-leader construction. Generators the instance-independent
	// SBP already broke fail verification and are dropped, so the lift is
	// always sound.
	GraphGens []autom.Perm
	// Engine selects the solver configuration (PBS II / Galena / Pueblo /
	// BnB-as-CPLEX). Ignored when Portfolio is set.
	Engine pbsolver.Engine
	// Portfolio races all engines on the instance and keeps the first
	// definitive answer (the service layer's default solve mode). Ignored
	// when Parallel > 1 (cube-and-conquer takes precedence).
	Portfolio bool
	// Parallel enables the cube-and-conquer subsystem (internal/par) when
	// > 1: the encoded instance is split into cubes and conquered by this
	// many workers sharing incumbents and glue-grade learnt clauses. 0 or
	// 1 solves sequentially. EngineBnB has no incremental assumption
	// core, so parallel runs conquer with EnginePBS workers.
	Parallel int
	// CubeDepth is the branching depth of the cube generator (at most
	// 2^CubeDepth cubes; 0 = auto, about eight cubes per worker).
	CubeDepth int
	// ShareLBD is the learnt-clause exchange threshold between parallel
	// workers (0 = default 2; negative disables sharing).
	ShareLBD int
	// CubeSeed steers the cube generator's deterministic tie-breaking.
	CubeSeed int64
	// Strategy selects the optimization loop (linear by default).
	Strategy pbsolver.Strategy
	// Timeout bounds the solve; zero means no limit. The paper used 1000 s;
	// the experiment harness scales this down.
	Timeout time.Duration
	// MaxConflicts optionally bounds total conflicts instead of (or in
	// addition to) wall-clock time.
	MaxConflicts int64
	// GlueLBD is the literal-blocks-distance at or below which learnt
	// clauses are never deleted (0 = engine default 2).
	GlueLBD int
	// ReduceInterval is the conflict count between learnt-database
	// reductions (0 = engine default 2000).
	ReduceInterval int64
	// RestartBase overrides the Luby restart unit in conflicts (0 = engine
	// default: 100, or 50 for Pueblo).
	RestartBase int64
	// ChronoThreshold enables chronological backtracking: backjumps that
	// would undo more than this many levels retreat a single level
	// instead (0 = disabled, always backjump).
	ChronoThreshold int
	// VivifyBudget enables clause vivification at restarts, spending up
	// to this many propagations per restart shrinking long clauses whose
	// suffix is implied (0 = disabled).
	VivifyBudget int64
	// DynamicLBD recomputes learnt-clause LBDs during conflict analysis,
	// re-tiering glue clauses as the search evolves.
	DynamicLBD bool
	// SymMaxNodes and SymTimeout bound symmetry detection.
	SymMaxNodes int64
	SymTimeout  time.Duration
	// SBPMaxSupport truncates each lex-leader chain (0 = full).
	SBPMaxSupport int
	// Progress, when non-nil, receives rate-limited snapshots of the
	// solver's search counters while Solve runs: conflicts, restarts,
	// learnt-clause and LBD statistics, and the best color count found so
	// far (Progress.Incumbent). With Portfolio set, every racing engine
	// reports through the same callback (tagged by Progress.Engine), so
	// the callback must be safe for concurrent use.
	Progress solverutil.ProgressFunc
	// ProgressInterval is the minimum time between Progress calls per
	// engine; 0 selects solverutil.DefaultProgressInterval (200ms).
	ProgressInterval time.Duration
}

// SymmetryStats reports the symmetry detection and breaking step
// (Table 2's columns).
type SymmetryStats struct {
	Order      *big.Int // |Aut| of the instance graph (lower bound if !Exact)
	Generators int      // generators found
	Exact      bool
	DetectTime time.Duration
	AddedVars  int // variables added by lex-leader SBPs
	AddedCNF   int // clauses added by lex-leader SBPs
	// FromGraph counts generators contributed by Config.GraphGens (the
	// canonical search's discoveries) that survived verification and were
	// not already found by formula-level detection.
	FromGraph int
	// Variant is the SBP construction that produced the predicates.
	Variant sbp.Variant
	// PredicatePerms counts the permutations whose lex-leader predicates
	// were actually emitted (after variant filtering, verification, and
	// empty-support drops) — the per-variant counter /v1/stats and /metrics
	// aggregate.
	PredicatePerms int
	// Involutions counts the involutions derived from the generator set
	// (VariantInvolution only).
	Involutions int
	// CanonSetSize is the size of the precomputed canonizing set consulted
	// for the color bound (VariantCanonSet only; emitted perms can be fewer
	// when the instance-independent SBP already broke some).
	CanonSetSize int
}

// Outcome is the result of solving one instance under one configuration.
type Outcome struct {
	Instance string
	K        int
	SBP      encode.SBPKind
	// SBPVariant is the predicate construction this outcome was solved
	// under; after a VariantRace it is the concrete variant that won.
	SBPVariant sbp.Variant
	// EncodeStats are the formula sizes before instance-dependent SBPs.
	EncodeStats pb.Stats
	// Sym is nil unless instance-dependent symmetry breaking ran.
	Sym *SymmetryStats
	// Result is the raw solver outcome; Result.Objective is the color count
	// when Status is StatusOptimal.
	Result pbsolver.Result
	// Winner is the engine that produced Result when Portfolio ran.
	Winner pbsolver.Engine
	// Par carries the cube-and-conquer counters when Parallel > 1 ran
	// (nil otherwise).
	Par *par.Stats
	// Chi is the proven chromatic number within the K bound (0 unless
	// optimal). An UNSAT outcome means χ > K.
	Chi int
	// Coloring is a witness optimal coloring (0-based), when available.
	Coloring []int
}

// Solved reports whether the configuration answered the instance
// definitively within budget (optimum proven or χ > K proven), the "#S"
// counting rule of Tables 3-5.
func (o Outcome) Solved() bool {
	return o.Result.Status == pbsolver.StatusOptimal ||
		o.Result.Status == pbsolver.StatusUnsat
}

// Solve runs the full flow on one instance. Cancelling ctx aborts the
// solve (and symmetry detection) promptly; the outcome then reports the
// best result reached.
func Solve(ctx context.Context, g *graph.Graph, cfg Config) Outcome {
	if cfg.SBPVariant == sbp.VariantRace {
		return solveVariantRace(ctx, g, cfg)
	}
	cfg.K = EffectiveK(g, cfg.K)
	_, encSpan := obs.StartSpan(ctx, "encode")
	enc := encode.Build(g, cfg.K, cfg.SBP)
	out := Outcome{
		Instance:    g.Name(),
		K:           cfg.K,
		SBP:         cfg.SBP,
		SBPVariant:  cfg.SBPVariant,
		EncodeStats: enc.F.Stats(),
	}
	encSpan.End(
		obs.Int("vars", int64(out.EncodeStats.Vars)),
		obs.Int("cnf", int64(out.EncodeStats.CNF)),
		obs.Int("pb", int64(out.EncodeStats.PB)),
	)
	// The sbp span is emitted even when the predicate layer is skipped so
	// every trace has the same phase skeleton.
	sbpCtx, sbpSpan := obs.StartSpan(ctx, "sbp",
		obs.String("variant", cfg.SBPVariant.String()))
	if cfg.InstanceDependent || cfg.SBPVariant == sbp.VariantCanonSet {
		out.Sym = breakSymmetries(sbpCtx, enc, cfg)
	}
	if out.Sym != nil {
		sbpSpan.End(
			obs.Int("perms", int64(out.Sym.PredicatePerms)),
			obs.Int("clauses", int64(out.Sym.AddedCNF)),
		)
	} else {
		sbpSpan.End(obs.Bool("skipped", true))
	}
	sOpts := pbsolver.Options{
		Engine:              cfg.Engine,
		Strategy:            cfg.Strategy,
		Timeout:             cfg.Timeout,
		MaxConflicts:        cfg.MaxConflicts,
		GlueLBD:             cfg.GlueLBD,
		ReduceInterval:      cfg.ReduceInterval,
		RestartBaseOverride: cfg.RestartBase,
		ChronoThreshold:     cfg.ChronoThreshold,
		VivifyBudget:        cfg.VivifyBudget,
		DynamicLBD:          cfg.DynamicLBD,
		Progress:            cfg.Progress,
		ProgressInterval:    cfg.ProgressInterval,
	}
	switch {
	case cfg.Parallel > 1:
		pres := par.Optimize(ctx, enc.F, par.Options{
			Workers:   cfg.Parallel,
			CubeDepth: cfg.CubeDepth,
			ShareLBD:  cfg.ShareLBD,
			Seed:      cfg.CubeSeed,
			Solver:    sOpts,
		})
		out.Result = pres.Result
		out.Par = &pres.Par
		out.Winner = cfg.Engine
		if cfg.Engine == pbsolver.EngineBnB {
			out.Winner = pbsolver.EnginePBS // par conquers with CDCL workers
		}
	case cfg.Portfolio:
		pres := pbsolver.PortfolioSolve(ctx, enc.F, pbsolver.PortfolioOptions{Base: sOpts})
		out.Result = pres.Result
		out.Winner = pres.Winner
	default:
		out.Result = pbsolver.Optimize(ctx, enc.F, sOpts)
	}
	if out.Result.Status == pbsolver.StatusOptimal || out.Result.Status == pbsolver.StatusSat {
		out.Coloring = enc.ColoringFromModel(out.Result.Model)
		if !g.IsProperColoring(out.Coloring) {
			panic(fmt.Sprintf("core: solver returned improper coloring for %s", g.Name()))
		}
		if out.Result.Status == pbsolver.StatusOptimal {
			out.Chi = out.Result.Objective
		}
	}
	return out
}

// EffectiveK resolves the color bound Solve actually uses: k itself when
// positive, max degree + 1 (the greedy upper bound) when k is 0.
func EffectiveK(g *graph.Graph, k int) int {
	if k != 0 {
		return k
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg + 1
}

// breakSymmetries appends the lex-leader predicates the configured SBP
// variant selects and returns the statistics. VariantFull and
// VariantInvolution consume detected symmetries of the formula (merged
// with any caller-supplied graph automorphisms that survive verification);
// VariantCanonSet skips detection entirely and lifts the precomputed
// canonizing set of color permutations instead. Returns nil when the
// variant has no generator source (full/involution without
// InstanceDependent).
func breakSymmetries(ctx context.Context, enc *encode.Encoding, cfg Config) *SymmetryStats {
	opts := sbp.Options{MaxSupport: cfg.SBPMaxSupport}
	if cfg.SBPVariant == sbp.VariantCanonSet {
		// The canonizing set is precomputed per color bound: no detection
		// run, no group order to report (Order stays nil). Lifts broken by
		// the instance-independent SBP fail verification and drop out.
		set := sbp.CanonSet(enc.K)
		perms := canonSetLitPerms(enc, set)
		st := sbp.AddSBPs(enc.F, perms, opts)
		return &SymmetryStats{
			Generators:     len(perms),
			Variant:        cfg.SBPVariant,
			PredicatePerms: st.Generators,
			CanonSetSize:   len(set),
			AddedVars:      st.AddedVars,
			AddedCNF:       st.Clauses,
		}
	}
	if !cfg.InstanceDependent {
		return nil
	}
	aOpts := autom.Options{MaxNodes: cfg.SymMaxNodes, Context: ctx}
	if cfg.SymTimeout > 0 {
		aOpts.Deadline = time.Now().Add(cfg.SymTimeout)
	}
	perms, res := symgraph.Detect(enc.F, aOpts)
	fromGraph := 0
	if len(cfg.GraphGens) > 0 {
		seen := make(map[string]bool, len(perms))
		for _, p := range perms {
			seen[litPermKey(p)] = true
		}
		for _, gp := range cfg.GraphGens {
			lp, ok := graphAutToLitPerm(enc, gp)
			if !ok || lp.IsIdentity() || !symgraph.VerifyLitPerm(enc.F, lp) {
				// Verification rejects exactly the generators the
				// instance-independent SBP already broke (and any bogus
				// input); keeping only verified lifts is what makes this
				// source safe to combine with every SBPKind.
				continue
			}
			if k := litPermKey(lp); !seen[k] {
				seen[k] = true
				perms = append(perms, lp)
				fromGraph++
			}
		}
	}
	sym := &SymmetryStats{
		Order:      res.Order,
		Generators: len(perms),
		Exact:      res.Exact,
		DetectTime: res.Time,
		FromGraph:  fromGraph,
		Variant:    cfg.SBPVariant,
	}
	emit := perms
	if cfg.SBPVariant == sbp.VariantInvolution {
		// Restrict the break to involutions derived from the generators
		// (order-2 generators, involutive powers, involutive products) —
		// weaker in general, far more compact on high-order generators.
		emit = sbp.Involutions(perms, 0, 0)
		sym.Involutions = len(emit)
	}
	st := sbp.AddSBPs(enc.F, emit, opts)
	sym.PredicatePerms = st.Generators
	sym.AddedVars = st.AddedVars
	sym.AddedCNF = st.Clauses
	return sym
}

// canonSetLitPerms lifts the canonizing set's color permutations to
// literal permutations of the encoding — σ acts on color values:
// x(v,j) → x(v,σ(j)) for every vertex, y(j) → y(σ(j)) — keeping only
// lifts verified to be symmetries of the formula. Instance-independent
// constructions that order colors (NU, CA, LI) break some or all color
// permutations; those fail verification and contribute nothing, which is
// what keeps the variant sound under every SBPKind.
func canonSetLitPerms(enc *encode.Encoding, set [][]int) []symgraph.LitPerm {
	var out []symgraph.LitPerm
	for _, cp := range set {
		if len(cp) != enc.K {
			continue
		}
		lp := symgraph.NewIdentityPerm(enc.F.NumVars)
		for v := 0; v < enc.G.N(); v++ {
			for j := 0; j < enc.K; j++ {
				lp.Img[enc.X(v, j)] = cnf.PosLit(enc.X(v, cp[j]))
			}
		}
		for j := 0; j < enc.K; j++ {
			lp.Img[enc.Y(j)] = cnf.PosLit(enc.Y(cp[j]))
		}
		if lp.IsIdentity() || !symgraph.VerifyLitPerm(enc.F, lp) {
			continue
		}
		out = append(out, lp)
	}
	return out
}

// solveVariantRace races the three concrete SBP variants on independent
// encodings of the instance and keeps the first definitive answer,
// cancelling the rest — the same first-past-the-post rule as the engine
// portfolio, one level up. If nobody solves within budget, the best
// partial outcome (a satisfiable incumbent beats none; lower objective
// beats higher) is returned.
func solveVariantRace(ctx context.Context, g *graph.Graph, cfg Config) Outcome {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the racer count: losers finishing after the return have
	// a slot to exit through, so no goroutine leaks.
	ch := make(chan Outcome, len(sbp.Variants))
	for _, v := range sbp.Variants {
		vcfg := cfg
		vcfg.SBPVariant = v
		go func() { ch <- Solve(rctx, g, vcfg) }()
	}
	var best Outcome
	for i := 0; i < len(sbp.Variants); i++ {
		out := <-ch
		if out.Solved() {
			return out
		}
		if i == 0 || betterPartial(out, best) {
			best = out
		}
	}
	return best
}

// betterPartial orders unsolved outcomes for the race fallback.
func betterPartial(a, b Outcome) bool {
	aSat := a.Result.Status == pbsolver.StatusSat
	bSat := b.Result.Status == pbsolver.StatusSat
	if aSat != bSat {
		return aSat
	}
	return aSat && a.Result.Objective < b.Result.Objective
}

// graphAutToLitPerm lifts a vertex automorphism of the instance graph to a
// literal permutation of its encoding: x(v,j) -> x(perm(v),j) for every
// color j, with the color-usage and auxiliary variables fixed. Adjacency
// preservation makes the lift map conflict constraints onto conflict
// constraints, so for symmetric encodings it is a formula symmetry; the
// caller still verifies before use.
func graphAutToLitPerm(enc *encode.Encoding, perm autom.Perm) (symgraph.LitPerm, bool) {
	n := enc.G.N()
	if len(perm) != n {
		return symgraph.LitPerm{}, false
	}
	lp := symgraph.NewIdentityPerm(enc.F.NumVars)
	for v := 0; v < n; v++ {
		for j := 0; j < enc.K; j++ {
			lp.Img[enc.X(v, j)] = cnf.PosLit(enc.X(perm[v], j))
		}
	}
	return lp, true
}

// litPermKey is a map key identifying a literal permutation by image.
func litPermKey(p symgraph.LitPerm) string {
	return fmt.Sprint(p.Img)
}

// DetectSymmetries runs only the symmetry-detection half of the flow on the
// encoding of an instance (Table 2's measurement: symmetries remaining
// after each instance-independent construction).
func DetectSymmetries(g *graph.Graph, K int, kind encode.SBPKind, maxNodes int64, timeout time.Duration) (*SymmetryStats, pb.Stats) {
	enc := encode.Build(g, K, kind)
	aOpts := autom.Options{MaxNodes: maxNodes}
	if timeout > 0 {
		aOpts.Deadline = time.Now().Add(timeout)
	}
	perms, res := symgraph.Detect(enc.F, aOpts)
	return &SymmetryStats{
		Order:      res.Order,
		Generators: len(perms),
		Exact:      res.Exact,
		DetectTime: res.Time,
	}, enc.F.Stats()
}

// SequentialChromatic determines the chromatic number with repeated calls
// to the pure CNF-SAT solver on the K-coloring decision variant, the
// alternative the paper contrasts with direct 0-1 ILP optimization (§2.3).
// It performs a downward linear search from the DSATUR upper bound (the
// paper's per-instance bound procedure). Returns (χ, proven) — proven is
// false on budget exhaustion (ctx cancelled or deadline passed).
func SequentialChromatic(ctx context.Context, g *graph.Graph, startUB int) (int, bool) {
	k := startUB
	best := startUB
	for k >= 1 {
		f := DecisionCNF(g, k)
		opts := sat.Options{Context: ctx}
		s := sat.New(f, opts)
		switch s.Solve() {
		case sat.Sat:
			best = k
			k--
		case sat.Unsat:
			return best, true
		default:
			return best, false
		}
	}
	return best, true
}

// SequentialChromaticIncremental determines the chromatic number with a
// single incremental SAT solver: the K-coloring CNF is extended with color
// usage variables u[j], and each probe "is the graph j-colorable?" is a
// SolveAssuming call with assumptions ¬u[j], ..., ¬u[K−1]. Learnt clauses
// carry over between probes, the advantage a black-box one-shot SAT solver
// cannot offer (ablation against SequentialChromatic and PB optimization).
func SequentialChromaticIncremental(ctx context.Context, g *graph.Graph, startUB int) (int, bool) {
	K := startUB
	n := g.N()
	f := DecisionCNF(g, K)
	// Usage variables u[j] = n*K + j + 1 with x[i][j] ⇒ u[j].
	u := func(j int) cnf.Lit { return cnf.PosLit(n*K + j + 1) }
	x := func(i, j int) cnf.Lit { return cnf.PosLit(i*K + j + 1) }
	for i := 0; i < n; i++ {
		for j := 0; j < K; j++ {
			f.AddImplication(x(i, j), u(j))
		}
	}
	s := sat.New(f, sat.Options{Context: ctx, PhaseSaving: true})
	best := K
	for k := K; k >= 1; k-- {
		assumps := make([]cnf.Lit, 0, K-k+1)
		for j := k; j < K; j++ {
			assumps = append(assumps, u(j).Neg())
		}
		switch s.SolveAssuming(assumps) {
		case sat.Sat:
			best = k
		case sat.Unsat:
			return best, true
		default:
			return best, false
		}
	}
	return best, true
}

// DecisionCNF encodes the K-colorability decision problem as pure CNF
// (at-least-one + conflict clauses + pairwise at-most-one), the reduction
// used with black-box SAT solvers.
func DecisionCNF(g *graph.Graph, K int) *cnf.Formula {
	n := g.N()
	f := cnf.NewFormula(n * K)
	x := func(i, j int) cnf.Lit { return cnf.PosLit(i*K + j + 1) }
	for i := 0; i < n; i++ {
		cl := make([]cnf.Lit, K)
		for j := 0; j < K; j++ {
			cl[j] = x(i, j)
		}
		f.AddClause(cl...)
		for a := 0; a < K; a++ {
			for b := a + 1; b < K; b++ {
				f.AddClause(x(i, a).Neg(), x(i, b).Neg())
			}
		}
	}
	for _, e := range g.Edges() {
		for j := 0; j < K; j++ {
			f.AddClause(x(e[0], j).Neg(), x(e[1], j).Neg())
		}
	}
	return f
}

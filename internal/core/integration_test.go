package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/heuristic"
	"repro/internal/pbsolver"
)

// TestChromaticCrossValidation pits three independent exact methods against
// each other on random graphs: the 0-1 ILP flow (with and without SBPs),
// the DSATUR branch-and-bound, and the incremental SAT probe loop. All must
// agree on the chromatic number.
func TestChromaticCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 25; iter++ {
		n := 5 + rng.Intn(5)
		m := rng.Intn(n * (n - 1) / 2)
		g := graph.Random("r", n, m, rng.Int63())
		exact := heuristic.ExactChromatic(g, time.Time{})
		if !exact.Complete {
			t.Fatalf("iter %d: exact did not complete", iter)
		}
		want := exact.Chi

		satChi, proven := SequentialChromaticIncremental(context.Background(), g, n)
		if !proven || satChi != want {
			t.Fatalf("iter %d: incremental SAT χ=%d, exact %d", iter, satChi, want)
		}

		for _, kind := range []encode.SBPKind{encode.SBPNone, encode.SBPNU, encode.SBPLI} {
			out := Solve(context.Background(), g, Config{K: n, SBP: kind, Engine: pbsolver.EnginePueblo})
			if !out.Solved() || out.Chi != want {
				t.Fatalf("iter %d: ILP(%v) χ=%d status=%v, exact %d",
					iter, kind, out.Chi, out.Result.Status, want)
			}
		}
		out := Solve(context.Background(), g, Config{K: n, SBP: encode.SBPNUSC, InstanceDependent: true,
			Engine: pbsolver.EnginePBS})
		if !out.Solved() || out.Chi != want {
			t.Fatalf("iter %d: ILP+instdep χ=%d, exact %d", iter, out.Chi, want)
		}
	}
}

// TestSymmetryBreakingReducesConflictsOnMyciel4 reproduces the dramatic
// single-instance effect measured during development: myciel4 without SBPs
// needs >100k conflicts, with NU a few thousand.
func TestSymmetryBreakingReducesConflictsOnMyciel4(t *testing.T) {
	if testing.Short() {
		t.Skip("slow no-SBP baseline")
	}
	g := graph.Mycielski(4)
	withNU := Solve(context.Background(), g, Config{K: 7, SBP: encode.SBPNU, Engine: pbsolver.EnginePBS,
		Timeout: 2 * time.Minute})
	if withNU.Chi != 5 {
		t.Fatalf("NU: χ=%d", withNU.Chi)
	}
	base := Solve(context.Background(), g, Config{K: 7, SBP: encode.SBPNone, Engine: pbsolver.EnginePBS,
		Timeout: 5 * time.Minute})
	if base.Chi != 5 {
		t.Fatalf("base: χ=%d (%v)", base.Chi, base.Result.Status)
	}
	if base.Result.Stats.Conflicts < 4*withNU.Result.Stats.Conflicts {
		t.Fatalf("expected large conflict reduction: base %d, NU %d",
			base.Result.Stats.Conflicts, withNU.Result.Stats.Conflicts)
	}
}

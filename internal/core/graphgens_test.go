package core

import (
	"context"
	"testing"

	"repro/internal/autom"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

// rotation is the cyclic shift v -> v+1 (mod n), an automorphism of C_n.
func rotation(n int) autom.Perm {
	p := make(autom.Perm, n)
	for v := range p {
		p[v] = (v + 1) % n
	}
	return p
}

// TestGraphGensFeedSymmetryBreaking checks the generator hand-off: vertex
// automorphisms supplied via Config.GraphGens are lifted onto the encoding,
// verified, and counted in Sym.FromGraph — with formula-level detection
// crippled so the contribution is unambiguous.
func TestGraphGensFeedSymmetryBreaking(t *testing.T) {
	g := graph.Cycle(6)
	base := Config{
		K: 3, Engine: pbsolver.EnginePueblo,
		InstanceDependent: true,
		SBP:               encode.SBPNone,
		SymMaxNodes:       1, // starve symgraph so only lifted gens remain
	}

	cfg := base
	cfg.GraphGens = []autom.Perm{rotation(6)}
	out := Solve(context.Background(), g, cfg)
	if out.Sym == nil {
		t.Fatal("instance-dependent path did not run")
	}
	if out.Sym.FromGraph != 1 {
		t.Fatalf("Sym.FromGraph = %d, want 1 (verified rotation lift)", out.Sym.FromGraph)
	}
	if out.Chi != 2 || out.Result.Status != pbsolver.StatusOptimal {
		t.Fatalf("lifted SBPs changed the answer: chi=%d status=%v", out.Chi, out.Result.Status)
	}

	// A vertex swap that is not an automorphism of C6 must fail
	// verification and contribute nothing.
	bogus := autom.Perm{1, 0, 2, 3, 4, 5}
	cfg = base
	cfg.GraphGens = []autom.Perm{bogus}
	out = Solve(context.Background(), g, cfg)
	if out.Sym.FromGraph != 0 {
		t.Fatalf("non-automorphism accepted: FromGraph = %d", out.Sym.FromGraph)
	}

	// Wrong-length permutations are rejected before lifting.
	cfg = base
	cfg.GraphGens = []autom.Perm{rotation(5)}
	out = Solve(context.Background(), g, cfg)
	if out.Sym.FromGraph != 0 {
		t.Fatalf("wrong-length permutation accepted: FromGraph = %d", out.Sym.FromGraph)
	}
}

// TestGraphGensRespectInstanceIndependentSBPs checks the composition rule:
// under an instance-independent construction that already breaks a symmetry
// (LI pins specific vertices), the same rotation no longer maps the formula
// to itself, so verification rejects the lift instead of adding unsound
// breaking predicates.
func TestGraphGensRespectInstanceIndependentSBPs(t *testing.T) {
	g := graph.Cycle(6)
	cfg := Config{
		K: 3, Engine: pbsolver.EnginePueblo,
		InstanceDependent: true,
		SBP:               encode.SBPLI,
		SymMaxNodes:       1,
		GraphGens:         []autom.Perm{rotation(6)},
	}
	out := Solve(context.Background(), g, cfg)
	if out.Sym == nil {
		t.Fatal("instance-dependent path did not run")
	}
	if out.Sym.FromGraph != 0 {
		t.Fatalf("rotation survived verification under LI: FromGraph = %d", out.Sym.FromGraph)
	}
	if out.Chi != 2 || out.Result.Status != pbsolver.StatusOptimal {
		t.Fatalf("answer changed: chi=%d status=%v", out.Chi, out.Result.Status)
	}
}

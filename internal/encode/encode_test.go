package encode

import (
	"context"
	"testing"

	"repro/internal/cnf"
	"repro/internal/graph"
	"repro/internal/pbsolver"
)

func solveOpt(t *testing.T, e *Encoding) pbsolver.Result {
	t.Helper()
	res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if res.Status != pbsolver.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	return res
}

func TestEncodingSizes(t *testing.T) {
	// Paper §2.5: nK+K variables, K(m+n+1) CNF clauses, n PB rows (our EQ
	// rows normalize to one clause + one cardinality constraint each, so
	// clauses = K(m+n+1) + n and PB constraints = n).
	g := graph.Cycle(5)
	K := 4
	e := Build(g, K, SBPNone)
	n, m := 5, 5
	if e.F.NumVars != n*K+K {
		t.Fatalf("vars = %d, want %d", e.F.NumVars, n*K+K)
	}
	wantCNF := K*(m+n+1) + n
	if len(e.F.Clauses) != wantCNF {
		t.Fatalf("clauses = %d, want %d", len(e.F.Clauses), wantCNF)
	}
	if len(e.F.Constraints) != n {
		t.Fatalf("PB rows = %d, want %d", len(e.F.Constraints), n)
	}
	if len(e.F.Objective) != K {
		t.Fatalf("objective terms = %d, want %d", len(e.F.Objective), K)
	}
}

func TestOptimalColoringSmallGraphs(t *testing.T) {
	cases := []struct {
		g   *graph.Graph
		chi int
	}{
		{graph.Cycle(4), 2},
		{graph.Cycle(5), 3},
		{graph.Complete(4), 4},
		{graph.Petersen(), 3},
		{graph.Mycielski(3), 4},
	}
	for _, c := range cases {
		for _, kind := range Kinds {
			e := Build(c.g, c.chi+2, kind)
			res := solveOpt(t, e)
			if res.Objective != c.chi {
				t.Errorf("%s with %v: χ=%d, want %d", c.g.Name(), kind, res.Objective, c.chi)
			}
			colors := e.ColoringFromModel(res.Model)
			if !c.g.IsProperColoring(colors) {
				t.Errorf("%s with %v: improper coloring", c.g.Name(), kind)
			}
			if UsedColors(colors) != c.chi {
				t.Errorf("%s with %v: witness uses %d colors", c.g.Name(), kind, UsedColors(colors))
			}
		}
	}
}

func TestUnsatWhenKTooSmall(t *testing.T) {
	for _, kind := range Kinds {
		e := Build(graph.Complete(4), 3, kind)
		res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
		if res.Status != pbsolver.StatusUnsat {
			t.Errorf("K4 with K=3 and %v: %v, want UNSAT", kind, res.Status)
		}
	}
}

func TestNUForcesLeadingColors(t *testing.T) {
	// With NU, any optimal model uses colors 0..χ-1 exactly.
	g := graph.Cycle(5) // χ=3
	e := Build(g, 6, SBPNU)
	res := solveOpt(t, e)
	sizes := e.ClassSizes(res.Model)
	for j := 0; j < 3; j++ {
		if sizes[j] == 0 {
			t.Fatalf("NU violated: color %d empty in %v", j, sizes)
		}
	}
	for j := 3; j < 6; j++ {
		if sizes[j] != 0 {
			t.Fatalf("NU violated: trailing color %d used in %v", j, sizes)
		}
	}
}

func TestCAForcesDescendingCardinalities(t *testing.T) {
	g := graph.PartitePlanted("p", 12, 30, 3, 5)
	e := Build(g, 5, SBPCA)
	res := solveOpt(t, e)
	sizes := e.ClassSizes(res.Model)
	for j := 0; j+1 < len(sizes); j++ {
		if sizes[j] < sizes[j+1] {
			t.Fatalf("CA violated: %v", sizes)
		}
	}
}

func TestLIUniqueOptimalAssignmentPerPartition(t *testing.T) {
	// LI breaks all color symmetries: for K4 (unique partition into 4
	// singleton classes) exactly one optimal x-assignment survives.
	g := graph.Complete(4)
	e := Build(g, 5, SBPLI)
	models, res := pbsolver.EnumerateOptimal(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, e.XVars(), 0)
	if res.Status != pbsolver.StatusOptimal || res.Objective != 4 {
		t.Fatalf("optimize: %v obj=%d", res.Status, res.Objective)
	}
	if len(models) != 1 {
		t.Fatalf("LI left %d optimal assignments for K4, want 1", len(models))
	}
	// Without any SBP all 5!/(5-4)! = 120 color injections survive.
	e2 := Build(g, 5, SBPNone)
	models2, _ := pbsolver.EnumerateOptimal(context.Background(), e2.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, e2.XVars(), 0)
	if len(models2) != 120 {
		t.Fatalf("no-SBP K4 should have 120 optimal assignments, got %d", len(models2))
	}
}

func TestLIOrderingMatchesPaperExample(t *testing.T) {
	// Paper §3.3 example semantics: lowest indices strictly decrease with
	// the color number. Verify on every optimal model of a small graph.
	g := graph.Cycle(5)
	e := Build(g, 4, SBPLI)
	models, res := pbsolver.EnumerateOptimal(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, e.XVars(), 0)
	if res.Status != pbsolver.StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	for _, m := range models {
		colors := e.ColoringFromModel(m)
		lowest := map[int]int{}
		for v := len(colors) - 1; v >= 0; v-- {
			lowest[colors[v]] = v
		}
		for c := 1; c < res.Objective; c++ {
			if lowest[c] >= lowest[c-1] {
				t.Fatalf("LI ordering violated: lowest[%d]=%d lowest[%d]=%d colors=%v",
					c, lowest[c], c-1, lowest[c-1], colors)
			}
		}
	}
}

func TestSCPinsTwoVertices(t *testing.T) {
	g := graph.Queens(4, 4)
	e := Build(g, 6, SBPSC)
	res := solveOpt(t, e)
	vl := g.MaxDegreeVertex()
	vn := g.MaxDegreeNeighbor(vl)
	if !res.Model.Lit(cnf.PosLit(e.X(vl, 0))) {
		t.Fatal("SC: max-degree vertex not pinned to color 1")
	}
	if !res.Model.Lit(cnf.PosLit(e.X(vn, 1))) {
		t.Fatal("SC: neighbor not pinned to color 2")
	}
}

func TestNUSCCombinesBoth(t *testing.T) {
	g := graph.Cycle(5)
	e := Build(g, 5, SBPNUSC)
	res := solveOpt(t, e)
	sizes := e.ClassSizes(res.Model)
	for j := 3; j < 5; j++ {
		if sizes[j] != 0 {
			t.Fatalf("NU half violated: %v", sizes)
		}
	}
	vl := g.MaxDegreeVertex()
	if !res.Model.Lit(cnf.PosLit(e.X(vl, 0))) {
		t.Fatal("SC half violated")
	}
}

// TestSBPsPreserveChromaticNumber: all constructions are satisfiability-
// and optimum-preserving (paper's correctness proofs in §3).
func TestSBPsPreserveChromaticNumber(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(7),
		graph.Queens(4, 4),
		graph.Mycielski(3), // myciel4 without SBPs alone takes ~161k conflicts
		graph.PartitePlanted("p", 14, 40, 4, 3),
	}
	for _, g := range graphs {
		base := Build(g, 7, SBPNone)
		want := pbsolver.Optimize(context.Background(), base.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
		if want.Status != pbsolver.StatusOptimal {
			t.Fatalf("%s base: %v", g.Name(), want.Status)
		}
		for _, kind := range Kinds[1:] {
			e := Build(g, 7, kind)
			res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
			if res.Status != pbsolver.StatusOptimal || res.Objective != want.Objective {
				t.Errorf("%s with %v: %v/%d, want OPTIMAL/%d",
					g.Name(), kind, res.Status, res.Objective, want.Objective)
			}
		}
	}
}

func TestSBPKindStrings(t *testing.T) {
	want := map[SBPKind]string{
		SBPNone: "none", SBPNU: "NU", SBPCA: "CA",
		SBPLI: "LI", SBPSC: "SC", SBPNUSC: "NU+SC",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
}

func TestFigure1Example(t *testing.T) {
	// The paper's Figure 1: V1V2V3 form a triangle, V4 adjacent to V3 (and
	// not to V1, V2): χ=3 with two independent-set partitions.
	g := figure1Graph()
	for _, kind := range Kinds {
		e := Build(g, 4, kind)
		res := solveOpt(t, e)
		if res.Objective != 3 {
			t.Fatalf("figure 1 graph χ=%d with %v, want 3", res.Objective, kind)
		}
	}
	// Optimal-assignment counts: no SBP admits every injection of 3 classes
	// into 4 colors for both partitions; NU collapses null-color placement;
	// LI leaves exactly one assignment per partition (2 total).
	counts := map[SBPKind]int{}
	for _, kind := range Kinds {
		e := Build(g, 4, kind)
		models, _ := pbsolver.EnumerateOptimal(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, e.XVars(), 0)
		counts[kind] = len(models)
	}
	// Two partitions × 4·3·2 color injections = 48 without SBPs.
	if counts[SBPNone] != 48 {
		t.Errorf("none: %d optimal assignments, want 48", counts[SBPNone])
	}
	// NU: null color must trail → colors {1,2,3} in some order: 2×3! = 12.
	if counts[SBPNU] != 12 {
		t.Errorf("NU: %d, want 12", counts[SBPNU])
	}
	// LI: unique assignment per partition.
	if counts[SBPLI] != 2 {
		t.Errorf("LI: %d, want 2", counts[SBPLI])
	}
	// CA: largest class (the 2-set) gets color 1, two singletons may swap
	// within colors 2,3 → 2 partitions × 2 = 4.
	if counts[SBPCA] != 4 {
		t.Errorf("CA: %d, want 4", counts[SBPCA])
	}
	// SC pins V3 (max degree) to color 1 and V1 to color 2: V2 may take
	// color 3 or 4, V4 may join V1's or V2's class → 4.
	if counts[SBPSC] != 4 {
		t.Errorf("SC: %d, want 4", counts[SBPSC])
	}
	// NU+SC: SC pins plus NU forbidding color 4 → V2 on color 3, V4 in
	// either 2-class → 2.
	if counts[SBPNUSC] != 2 {
		t.Errorf("NU+SC: %d, want 2", counts[SBPNUSC])
	}
}

// figure1Graph builds the worked example of the paper's Figure 1(a).
func figure1Graph() *graph.Graph {
	g := graph.New("figure1", 4)
	g.AddEdge(0, 1) // V1-V2
	g.AddEdge(0, 2) // V1-V3
	g.AddEdge(1, 2) // V2-V3
	g.AddEdge(2, 3) // V3-V4
	return g
}

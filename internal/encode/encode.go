// Package encode reduces minimum graph coloring to 0-1 ILP (paper §2.5) and
// implements the four instance-independent symmetry-breaking predicate
// constructions of §3: null-color elimination (NU), cardinality-based color
// ordering (CA), lowest-index color ordering (LI), and selective coloring
// (SC), plus the NU+SC combination evaluated in §4.
//
// For a graph G(V,E) with |V| = n, |E| = m and color bound K:
//
//   - indicator variables x[i][j] (vertex i gets color j) and usage
//     variables y[j] (color j used by some vertex): nK + K variables;
//   - per vertex, the PB constraint Σ_j x[i][j] = 1;
//   - per edge (a,b) and color j, the clause (¬x[a][j] ∨ ¬x[b][j]);
//   - usage linking y[j] ⇔ ∨_i x[i][j], as nK + K clauses;
//   - objective MIN Σ_j y[j].
package encode

import (
	"fmt"

	"repro/internal/clique"
	"repro/internal/cnf"
	"repro/internal/graph"
	"repro/internal/pb"
)

// SBPKind selects the instance-independent SBP construction added during
// encoding (paper §3).
type SBPKind int

// The constructions compared in the paper's Tables 2-5.
const (
	SBPNone SBPKind = iota
	SBPNU           // null-color elimination: y[k+1] ⇒ y[k]
	SBPCA           // cardinality-based ordering: |class k| ≥ |class k+1|
	SBPLI           // lowest-index color ordering (complete)
	SBPSC           // selective coloring: pin colors of two high-degree vertices
	SBPNUSC         // NU and SC combined
)

func (k SBPKind) String() string {
	switch k {
	case SBPNone:
		return "none"
	case SBPNU:
		return "NU"
	case SBPCA:
		return "CA"
	case SBPLI:
		return "LI"
	case SBPSC:
		return "SC"
	case SBPNUSC:
		return "NU+SC"
	}
	return fmt.Sprintf("sbp(%d)", int(k))
}

// SBPLIQuad is the paper-literal quadratic variant of LI (V[i][k] excludes
// every earlier vertex pairwise instead of via prefix variables); it is not
// part of the evaluated constructions and exists for the encoding-size
// ablation bench.
const SBPLIQuad SBPKind = 100

// SBPClique pre-colors a maximal clique with colors 1..|clique| (unit
// clauses). It is the "even stronger construction" §3.4 sketches and leaves
// unimplemented because "clique finding is complicated" — this repository
// has a clique finder, so the extension is provided and ablated against SC.
const SBPClique SBPKind = 101

// Kinds lists the rows of the paper's tables in order.
var Kinds = []SBPKind{SBPNone, SBPNU, SBPCA, SBPLI, SBPSC, SBPNUSC}

// Options tune encoding details for ablation studies; the zero value is the
// paper's encoding.
type Options struct {
	// PairwiseExactlyOne replaces the per-vertex PB row Σ_j x[i][j] = 1
	// with pure CNF (one at-least-one clause plus pairwise at-most-one
	// clauses), the CNF-vs-PB encoding tradeoff of §2.3.
	PairwiseExactlyOne bool
}

// Encoding is a 0-1 ILP reduction of a K-coloring instance.
type Encoding struct {
	F    *pb.Formula
	G    *graph.Graph
	K    int
	Kind SBPKind
	// x[i][j] is the variable index for "vertex i has color j"; y[j] for
	// "color j is used". Colors are 0-based here (the paper numbers them
	// 1..K).
	x [][]int
	y []int
}

// X returns the indicator variable for vertex i, color j.
func (e *Encoding) X(i, j int) int { return e.x[i][j] }

// Y returns the usage variable for color j.
func (e *Encoding) Y(j int) int { return e.y[j] }

// XVars returns all indicator variable indices (used as the enumeration
// projection for Figure 1).
func (e *Encoding) XVars() []int {
	out := make([]int, 0, e.G.N()*e.K)
	for i := 0; i < e.G.N(); i++ {
		out = append(out, e.x[i]...)
	}
	return out
}

// Build encodes the K-coloring optimization instance with the chosen
// instance-independent SBP construction.
func Build(g *graph.Graph, K int, kind SBPKind) *Encoding {
	return BuildWithOptions(g, K, kind, Options{})
}

// BuildWithOptions is Build with encoding ablation knobs.
func BuildWithOptions(g *graph.Graph, K int, kind SBPKind, opts Options) *Encoding {
	if K < 1 {
		panic("encode: K must be >= 1")
	}
	n := g.N()
	e := &Encoding{G: g, K: K, Kind: kind}
	f := pb.NewFormula(n*K + K)
	e.F = f
	e.x = make([][]int, n)
	for i := 0; i < n; i++ {
		e.x[i] = make([]int, K)
		for j := 0; j < K; j++ {
			e.x[i][j] = i*K + j + 1
		}
	}
	e.y = make([]int, K)
	for j := 0; j < K; j++ {
		e.y[j] = n*K + j + 1
	}

	xl := func(i, j int) cnf.Lit { return cnf.PosLit(e.x[i][j]) }
	yl := func(j int) cnf.Lit { return cnf.PosLit(e.y[j]) }

	// Each vertex gets exactly one color.
	for i := 0; i < n; i++ {
		if opts.PairwiseExactlyOne {
			alo := make([]cnf.Lit, K)
			for j := 0; j < K; j++ {
				alo[j] = xl(i, j)
			}
			f.AddClause(alo...)
			for a := 0; a < K; a++ {
				for b := a + 1; b < K; b++ {
					f.AddClause(xl(i, a).Neg(), xl(i, b).Neg())
				}
			}
			continue
		}
		terms := make([]pb.Term, K)
		for j := 0; j < K; j++ {
			terms[j] = pb.Term{Coef: 1, Lit: xl(i, j)}
		}
		f.AddPB(terms, pb.EQ, 1)
	}
	// Adjacent vertices get different colors.
	for _, ed := range g.Edges() {
		for j := 0; j < K; j++ {
			f.AddClause(xl(ed[0], j).Neg(), xl(ed[1], j).Neg())
		}
	}
	// y[j] ⇔ some vertex uses color j.
	for j := 0; j < K; j++ {
		long := make([]cnf.Lit, 0, n+1)
		long = append(long, yl(j).Neg())
		for i := 0; i < n; i++ {
			f.AddImplication(xl(i, j), yl(j))
			long = append(long, xl(i, j))
		}
		f.AddClause(long...)
	}
	// Objective: minimize used colors.
	obj := make([]pb.Term, K)
	for j := 0; j < K; j++ {
		obj[j] = pb.Term{Coef: 1, Lit: yl(j)}
	}
	f.SetObjective(obj)

	switch kind {
	case SBPNone:
	case SBPNU:
		e.addNU()
	case SBPCA:
		e.addCA()
	case SBPLI:
		e.addLI()
	case SBPSC:
		e.addSC()
	case SBPNUSC:
		e.addNU()
		e.addSC()
	case SBPLIQuad:
		e.addLIQuadratic()
	case SBPClique:
		e.addClique()
	default:
		panic(fmt.Sprintf("encode: unknown SBP kind %d", int(kind)))
	}
	return e
}

// addNU adds null-color elimination (paper §3.1): null colors may only
// trail, enforced by K−1 binary clauses y[k+1] ⇒ y[k].
func (e *Encoding) addNU() {
	for j := 0; j+1 < e.K; j++ {
		e.F.AddImplication(cnf.PosLit(e.y[j+1]), cnf.PosLit(e.y[j]))
	}
}

// addCA adds cardinality-based color ordering (paper §3.2): the class of
// color k is at least as large as that of color k+1, as K−1 PB constraints
// Σ_i x[i][k] − Σ_i x[i][k+1] ≥ 0.
func (e *Encoding) addCA() {
	n := e.G.N()
	for j := 0; j+1 < e.K; j++ {
		terms := make([]pb.Term, 0, 2*n)
		for i := 0; i < n; i++ {
			terms = append(terms,
				pb.Term{Coef: 1, Lit: cnf.PosLit(e.x[i][j])},
				pb.Term{Coef: -1, Lit: cnf.PosLit(e.x[i][j+1])})
		}
		e.F.AddPB(terms, pb.GE, 0)
	}
}

// addLI adds lowest-index color ordering (paper §3.3). The paper introduces
// V[i][k] ("vertex i is the lowest-index vertex colored k") and requires the
// lowest indices to be ordered across colors; we implement the equivalent
// definitional encoding with prefix variables to keep the construction
// O(nK):
//
//	P[i][k] ⇔ (∃ j ≤ i: x[j][k])        (prefix occupancy)
//	V[i][k] ⇔ x[i][k] ∧ ¬P[i−1][k]      (unique lowest index)
//	y[k]   ⇒ ∨_i V[i][k]                 (every used color has one)
//	V[i][k] ⇒ ∨_{j>i} V[j][k−1]          (lowest indices strictly decrease
//	                                      with the color number, matching
//	                                      the paper's worked example)
//
// LI breaks all instance-independent symmetries and, as the paper stresses,
// also destroys instance-dependent vertex symmetries.
func (e *Encoding) addLI() {
	f := e.F
	n, K := e.G.N(), e.K
	P := make([][]int, n)
	V := make([][]int, n)
	for i := 0; i < n; i++ {
		P[i] = make([]int, K)
		V[i] = make([]int, K)
		for k := 0; k < K; k++ {
			P[i][k] = f.NewVar()
			V[i][k] = f.NewVar()
		}
	}
	pl := func(i, k int) cnf.Lit { return cnf.PosLit(P[i][k]) }
	vl := func(i, k int) cnf.Lit { return cnf.PosLit(V[i][k]) }
	xl := func(i, k int) cnf.Lit { return cnf.PosLit(e.x[i][k]) }
	yl := func(k int) cnf.Lit { return cnf.PosLit(e.y[k]) }

	for k := 0; k < K; k++ {
		for i := 0; i < n; i++ {
			if i == 0 {
				// P[0][k] ⇔ x[0][k]; V[0][k] ⇔ x[0][k].
				f.AddImplication(pl(0, k), xl(0, k))
				f.AddImplication(xl(0, k), pl(0, k))
				f.AddImplication(vl(0, k), xl(0, k))
				f.AddImplication(xl(0, k), vl(0, k))
				continue
			}
			// P[i][k] ⇔ P[i−1][k] ∨ x[i][k].
			f.AddImplication(pl(i-1, k), pl(i, k))
			f.AddImplication(xl(i, k), pl(i, k))
			f.AddClause(pl(i, k).Neg(), pl(i-1, k), xl(i, k))
			// V[i][k] ⇔ x[i][k] ∧ ¬P[i−1][k].
			f.AddImplication(vl(i, k), xl(i, k))
			f.AddClause(vl(i, k).Neg(), pl(i-1, k).Neg())
			f.AddClause(xl(i, k).Neg(), pl(i-1, k), vl(i, k))
		}
		// Every used color has a lowest-index vertex.
		long := make([]cnf.Lit, 0, n+1)
		long = append(long, yl(k).Neg())
		for i := 0; i < n; i++ {
			long = append(long, vl(i, k))
		}
		f.AddClause(long...)
	}
	// Ordering between adjacent color numbers: the lowest index of color k
	// is above some lowest index of color k−1 placed later in vertex order.
	for k := 1; k < K; k++ {
		for i := 0; i < n; i++ {
			cl := make([]cnf.Lit, 0, n-i)
			cl = append(cl, vl(i, k).Neg())
			for j := i + 1; j < n; j++ {
				cl = append(cl, vl(j, k-1))
			}
			f.AddClause(cl...)
		}
	}
}

// addLIQuadratic is the paper-literal LI variant for the encoding ablation:
// V[i][k] is tied to x[i][k] with pairwise exclusions over every earlier
// vertex (Θ(n²K) clauses) instead of the O(nK) prefix chain. Semantically
// equivalent to addLI.
func (e *Encoding) addLIQuadratic() {
	f := e.F
	n, K := e.G.N(), e.K
	V := make([][]int, n)
	for i := 0; i < n; i++ {
		V[i] = make([]int, K)
		for k := 0; k < K; k++ {
			V[i][k] = f.NewVar()
		}
	}
	vl := func(i, k int) cnf.Lit { return cnf.PosLit(V[i][k]) }
	xl := func(i, k int) cnf.Lit { return cnf.PosLit(e.x[i][k]) }
	yl := func(k int) cnf.Lit { return cnf.PosLit(e.y[k]) }
	for k := 0; k < K; k++ {
		for i := 0; i < n; i++ {
			// V[i][k] ⇔ x[i][k] ∧ ∧_{j<i} ¬x[j][k].
			f.AddImplication(vl(i, k), xl(i, k))
			long := make([]cnf.Lit, 0, i+2)
			long = append(long, xl(i, k).Neg())
			for j := 0; j < i; j++ {
				f.AddClause(vl(i, k).Neg(), xl(j, k).Neg())
				long = append(long, xl(j, k))
			}
			long = append(long, vl(i, k))
			f.AddClause(long...)
		}
		long := make([]cnf.Lit, 0, n+1)
		long = append(long, yl(k).Neg())
		for i := 0; i < n; i++ {
			long = append(long, vl(i, k))
		}
		f.AddClause(long...)
	}
	for k := 1; k < K; k++ {
		for i := 0; i < n; i++ {
			cl := make([]cnf.Lit, 0, n-i)
			cl = append(cl, vl(i, k).Neg())
			for j := i + 1; j < n; j++ {
				cl = append(cl, vl(j, k-1))
			}
			f.AddClause(cl...)
		}
	}
}

// addSC adds selective coloring (paper §3.4): pin color 1 on a maximum-
// degree vertex and color 2 on its maximum-degree neighbour — two unit
// clauses with near-zero overhead.
func (e *Encoding) addSC() {
	vl := e.G.MaxDegreeVertex()
	if vl < 0 {
		return
	}
	e.F.AddClause(cnf.PosLit(e.x[vl][0]))
	if e.K < 2 {
		return
	}
	vn := e.G.MaxDegreeNeighbor(vl)
	if vn < 0 {
		return
	}
	e.F.AddClause(cnf.PosLit(e.x[vn][1]))
}

// addClique pins a maximal clique (greedy, or the instance's recorded
// clique certificate when present) to colors 1..|clique|: clique vertices
// need pairwise-distinct colors in every solution, and fixing which is pure
// symmetry breaking. Correctness mirrors the SC proof (§3.4): any optimal
// solution can be color-permuted to satisfy the pins.
func (e *Encoding) addClique() {
	cl := e.G.Clique
	if len(cl) == 0 {
		cl = clique.Greedy(e.G)
	}
	if len(cl) > e.K {
		cl = cl[:e.K]
	}
	for i, v := range cl {
		e.F.AddClause(cnf.PosLit(e.x[v][i]))
	}
}

// ColoringFromModel extracts the vertex coloring (0-based colors) from a
// satisfying model. Vertices with no color set (cannot happen for models of
// the encoding) get -1.
func (e *Encoding) ColoringFromModel(m cnf.Assignment) []int {
	out := make([]int, e.G.N())
	for i := range out {
		out[i] = -1
		for j := 0; j < e.K; j++ {
			if m.Lit(cnf.PosLit(e.x[i][j])) {
				out[i] = j
				break
			}
		}
	}
	return out
}

// UsedColors counts distinct colors in a coloring.
func UsedColors(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}

// ClassSizes returns (n_1, ..., n_K): the number of vertices per color,
// the paper's color-assignment notation for Figure 1.
func (e *Encoding) ClassSizes(m cnf.Assignment) []int {
	sizes := make([]int, e.K)
	for i := 0; i < e.G.N(); i++ {
		for j := 0; j < e.K; j++ {
			if m.Lit(cnf.PosLit(e.x[i][j])) {
				sizes[j]++
			}
		}
	}
	return sizes
}

package encode

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/pbsolver"
)

func TestLIQuadraticMatchesLI(t *testing.T) {
	// The paper-literal quadratic LI variant must agree with the prefix
	// encoding on optimum and on the surviving assignment count.
	graphs := []*graph.Graph{
		graph.Cycle(5),
		graph.Complete(4),
		graph.Queens(3, 3),
	}
	for _, g := range graphs {
		lin := Build(g, 5, SBPLI)
		quad := Build(g, 5, SBPLIQuad)
		if quad.F.NumVars >= lin.F.NumVars {
			// Quadratic variant has no prefix vars: fewer variables...
			t.Logf("%s: quad vars %d, linear vars %d", g.Name(), quad.F.NumVars, lin.F.NumVars)
		}
		mLin, rLin := pbsolver.EnumerateOptimal(context.Background(), lin.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, lin.XVars(), 0)
		mQuad, rQuad := pbsolver.EnumerateOptimal(context.Background(), quad.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, quad.XVars(), 0)
		if rLin.Status != pbsolver.StatusOptimal || rQuad.Status != pbsolver.StatusOptimal {
			t.Fatalf("%s: %v / %v", g.Name(), rLin.Status, rQuad.Status)
		}
		if rLin.Objective != rQuad.Objective {
			t.Errorf("%s: optimum differs %d vs %d", g.Name(), rLin.Objective, rQuad.Objective)
		}
		if len(mLin) != len(mQuad) {
			t.Errorf("%s: survivor count differs: linear %d vs quadratic %d",
				g.Name(), len(mLin), len(mQuad))
		}
	}
}

func TestLIQuadraticClauseGrowth(t *testing.T) {
	// The quadratic variant's clause count must grow ~n² per color while the
	// prefix encoding stays linear.
	small := graph.Cycle(8)
	big := graph.Cycle(32)
	K := 4
	linGrowth := float64(Build(big, K, SBPLI).F.Stats().CNF-Build(big, K, SBPNone).F.Stats().CNF) /
		float64(Build(small, K, SBPLI).F.Stats().CNF-Build(small, K, SBPNone).F.Stats().CNF)
	quadGrowth := float64(Build(big, K, SBPLIQuad).F.Stats().CNF-Build(big, K, SBPNone).F.Stats().CNF) /
		float64(Build(small, K, SBPLIQuad).F.Stats().CNF-Build(small, K, SBPNone).F.Stats().CNF)
	// 4x vertices: linear ≈ 4x, quadratic ≈ 16x.
	if linGrowth > 6 {
		t.Errorf("prefix LI growth %.1f not linear", linGrowth)
	}
	if quadGrowth < 8 {
		t.Errorf("quadratic LI growth %.1f not quadratic", quadGrowth)
	}
}

func TestCliqueSBPPreservesChiAndPins(t *testing.T) {
	cases := []struct {
		g   *graph.Graph
		chi int
	}{
		{graph.Queens(4, 4), 5},
		{graph.Complete(5), 5},
		{graph.PartitePlanted("p", 15, 45, 4, 6), 4},
	}
	for _, tc := range cases {
		e := Build(tc.g, 7, SBPClique)
		res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
		if res.Status != pbsolver.StatusOptimal || res.Objective != tc.chi {
			t.Errorf("%s: %v χ=%d, want %d", tc.g.Name(), res.Status, res.Objective, tc.chi)
			continue
		}
		colors := e.ColoringFromModel(res.Model)
		if !tc.g.IsProperColoring(colors) {
			t.Errorf("%s: improper coloring", tc.g.Name())
		}
	}
}

func TestCliqueSBPStrongerThanSC(t *testing.T) {
	// On the Figure-1 example the clique {V1,V2,V3} is pinned entirely:
	// only V4's class choice remains → 2 survivors (vs 4 for SC).
	g := figure1Graph()
	g.Clique = []int{0, 1, 2}
	e := Build(g, 4, SBPClique)
	models, res := pbsolver.EnumerateOptimal(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS}, e.XVars(), 0)
	if res.Status != pbsolver.StatusOptimal || res.Objective != 3 {
		t.Fatalf("%v obj=%d", res.Status, res.Objective)
	}
	if len(models) != 2 {
		t.Fatalf("clique SBP survivors = %d, want 2", len(models))
	}
}

func TestCliqueSBPFallsBackToGreedy(t *testing.T) {
	// Without a recorded certificate the greedy clique is used.
	g := graph.Queens(4, 4)
	g.Clique = nil
	e := Build(g, 7, SBPClique)
	res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if res.Status != pbsolver.StatusOptimal || res.Objective != 5 {
		t.Fatalf("%v obj=%d", res.Status, res.Objective)
	}
}

func TestCliqueSBPCapsAtK(t *testing.T) {
	// A clique larger than K must not make a feasible instance infeasible
	// beyond the true χ>K outcome: K6 with K=4 is UNSAT either way.
	e := Build(graph.Complete(6), 4, SBPClique)
	res := pbsolver.Optimize(context.Background(), e.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if res.Status != pbsolver.StatusUnsat {
		t.Fatalf("K6/K=4 with clique pins: %v, want UNSAT", res.Status)
	}
}

func TestPairwiseExactlyOneEquivalent(t *testing.T) {
	// The CNF-pairwise encoding must give the same optimum with zero PB
	// rows.
	g := graph.Cycle(5)
	pbEnc := BuildWithOptions(g, 4, SBPNU, Options{})
	cnfEnc := BuildWithOptions(g, 4, SBPNU, Options{PairwiseExactlyOne: true})
	if len(cnfEnc.F.Constraints) != 0 {
		t.Fatalf("pairwise encoding has %d PB rows", len(cnfEnc.F.Constraints))
	}
	if len(pbEnc.F.Constraints) != g.N() {
		t.Fatalf("PB encoding has %d rows, want %d", len(pbEnc.F.Constraints), g.N())
	}
	a := pbsolver.Optimize(context.Background(), pbEnc.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
	b := pbsolver.Optimize(context.Background(), cnfEnc.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if a.Status != b.Status || a.Objective != b.Objective {
		t.Fatalf("encodings disagree: %v/%d vs %v/%d", a.Status, a.Objective, b.Status, b.Objective)
	}
}

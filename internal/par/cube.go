package par

import (
	"math/rand"
	"sort"

	"repro/internal/cnf"
	"repro/internal/pb"
)

// CubeOptions configure the lookahead cube generator.
type CubeOptions struct {
	// Depth is the number of branching decisions per cube: the generator
	// emits at most 2^Depth cubes.
	Depth int
	// Seed steers tie-breaking between equal-score branching variables
	// and the polarity order of each split. Generation is fully
	// deterministic for a fixed seed.
	Seed int64
	// MaxCubes soft-caps the emitted cubes (0 = 16384): once reached,
	// open branches are emitted as shorter cubes instead of being split
	// further, so the cap never breaks the covering property.
	MaxCubes int
}

func (o CubeOptions) maxCubes() int {
	if o.MaxCubes > 0 {
		return o.MaxCubes
	}
	return 16384
}

// CubeSet is the generator's output: the cubes (conjunctions of decision
// literals, to be installed as assumptions), the branching variables in
// the order they were ranked, and the pruning statistics. The cubes are
// the leaves of one branching tree over Vars, so together with the
// Refuted branches they cover the formula's entire model set.
type CubeSet struct {
	Cubes [][]cnf.Lit
	// Vars is the ranked branching-variable pool (highest score first).
	Vars []int
	// Refuted counts branches closed by lookahead propagation alone.
	Refuted int64
	// RootUnsat reports that unit propagation refuted the formula before
	// any branching: there is nothing to conquer.
	RootUnsat bool
}

// CubesPB generates cubes for a 0-1 ILP formula. Branching variables are
// ranked by weighted occurrence (short clauses and tight PB constraints
// weigh more — the static analogue of the VSIDS scores a running engine
// would offer), and every branch literal is propagated through both the
// clauses and the counter-based PB slacks before the branch is kept.
func CubesPB(f *pb.Formula, opt CubeOptions) CubeSet {
	p := newProp(f.NumVars, f.Clauses, f.Constraints)
	return generate(p, f.NumVars, opt)
}

// CubesCNF generates cubes for a pure CNF formula (the K-coloring decision
// variant conquered by internal/sat workers).
func CubesCNF(f *cnf.Formula, opt CubeOptions) CubeSet {
	p := newProp(f.NumVars, f.Clauses, nil)
	return generate(p, f.NumVars, opt)
}

// generate runs the lookahead DFS over the ranked variables.
func generate(p *prop, numVars int, opt CubeOptions) CubeSet {
	cs := CubeSet{}
	if !p.propagateRoot() {
		cs.RootUnsat = true
		return cs
	}
	cs.Vars = rankVars(p, numVars, opt.Seed)
	maxCubes := opt.maxCubes()

	emit := func(cube []cnf.Lit) {
		cs.Cubes = append(cs.Cubes, append([]cnf.Lit(nil), cube...))
	}
	var dfs func(pos, depth int, cube []cnf.Lit)
	dfs = func(pos, depth int, cube []cnf.Lit) {
		if depth >= opt.Depth || len(cs.Cubes) >= maxCubes {
			emit(cube)
			return
		}
		// Next unassigned ranked variable (earlier ones may have been
		// fixed by propagation along this branch).
		for pos < len(cs.Vars) && p.assigned(cs.Vars[pos]) {
			pos++
		}
		if pos == len(cs.Vars) {
			emit(cube)
			return
		}
		v := cs.Vars[pos]
		for _, l := range []cnf.Lit{cnf.PosLit(v), cnf.NegLit(v)} {
			mark := p.mark()
			if p.assume(l) {
				dfs(pos+1, depth+1, append(cube, l))
			} else {
				cs.Refuted++
			}
			p.undo(mark)
		}
	}
	dfs(0, 0, make([]cnf.Lit, 0, opt.Depth))
	return cs
}

// rankVars scores every variable by weighted occurrence and returns the
// top ones (enough to feed the DFS even when propagation fixes some), in
// deterministic order: score descending, seeded permutation ascending.
func rankVars(p *prop, numVars int, seed int64) []int {
	score := make([]float64, numVars+1)
	for _, cl := range p.clauses {
		w := clauseWeight(len(cl.lits))
		for _, l := range cl.lits {
			score[l.Var()] += w
		}
	}
	for _, c := range p.pbcs {
		// Tight constraints (low slack relative to their coefficients)
		// constrain their variables more; weigh like a short clause.
		w := clauseWeight(len(c.terms))
		for _, t := range c.terms {
			score[t.Lit.Var()] += 2 * w
		}
	}
	// Deterministic tie-break: a seeded permutation of the variable
	// indices, so equal-score variables still order reproducibly and a
	// different seed explores a different split of the tie classes.
	rng := rand.New(rand.NewSource(seed))
	tie := rng.Perm(numVars + 1)
	vars := make([]int, 0, numVars)
	for v := 1; v <= numVars; v++ {
		if score[v] > 0 && !p.assigned(v) {
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		vi, vj := vars[i], vars[j]
		if score[vi] != score[vj] {
			return score[vi] > score[vj]
		}
		return tie[vi] < tie[vj]
	})
	return vars
}

// clauseWeight is the Jeroslow–Wang style occurrence weight 2^-len,
// flattened beyond length 8.
func clauseWeight(n int) float64 {
	if n > 8 {
		n = 8
	}
	return float64(int(1)<<uint(8-n)) / 256
}

// prop is the generator's throwaway propagation engine: counting BCP over
// the clauses plus counter-based slack propagation over the PB
// constraints, with an undo trail for the DFS. Deliberately simple — it
// runs once per instance at cube depth, never in the solve hot path.
type prop struct {
	assign []int8 // 0 unassigned, +1 true, −1 false, by variable

	clauses []propClause
	occPos  [][]int32 // clause indices containing +v
	occNeg  [][]int32 // clause indices containing −v

	pbcs   []propPBC
	pbcPos [][]int32 // constraint indices containing +v (by literal sign)
	pbcNeg [][]int32

	trail []cnf.Lit
	empty bool // an empty clause or infeasible constraint exists
}

type propClause struct {
	lits   []cnf.Lit
	nFalse int32
	nTrue  int32
}

type propPBC struct {
	terms []pb.Term
	slack int // Σ coef of non-false literals − bound
}

func newProp(numVars int, clauses []cnf.Clause, constraints []pb.Constraint) *prop {
	p := &prop{
		assign: make([]int8, numVars+1),
		occPos: make([][]int32, numVars+1),
		occNeg: make([][]int32, numVars+1),
		pbcPos: make([][]int32, numVars+1),
		pbcNeg: make([][]int32, numVars+1),
	}
	for _, cl := range clauses {
		norm, taut := cl.Normalize()
		if taut {
			continue
		}
		if len(norm) == 0 {
			p.empty = true
			continue
		}
		idx := int32(len(p.clauses))
		p.clauses = append(p.clauses, propClause{lits: norm})
		for _, l := range norm {
			if l.Sign() {
				p.occPos[l.Var()] = append(p.occPos[l.Var()], idx)
			} else {
				p.occNeg[l.Var()] = append(p.occNeg[l.Var()], idx)
			}
		}
	}
	for i := range constraints {
		c := &constraints[i]
		idx := int32(len(p.pbcs))
		p.pbcs = append(p.pbcs, propPBC{terms: c.Terms, slack: c.Slack()})
		for _, t := range c.Terms {
			if t.Lit.Sign() {
				p.pbcPos[t.Lit.Var()] = append(p.pbcPos[t.Lit.Var()], idx)
			} else {
				p.pbcNeg[t.Lit.Var()] = append(p.pbcNeg[t.Lit.Var()], idx)
			}
		}
	}
	return p
}

func (p *prop) assigned(v int) bool { return p.assign[v] != 0 }

func (p *prop) valueLit(l cnf.Lit) int8 {
	a := p.assign[l.Var()]
	if !l.Sign() {
		a = -a
	}
	return a
}

func (p *prop) mark() int { return len(p.trail) }

// undo unassigns every literal past the mark, restoring all counters.
func (p *prop) undo(mark int) {
	for i := len(p.trail) - 1; i >= mark; i-- {
		l := p.trail[i]
		v := l.Var()
		sameOcc, oppOcc := p.occPos[v], p.occNeg[v]
		oppPBC := p.pbcNeg[v]
		if !l.Sign() {
			sameOcc, oppOcc = oppOcc, sameOcc
			oppPBC = p.pbcPos[v]
		}
		for _, ci := range sameOcc {
			p.clauses[ci].nTrue--
		}
		for _, ci := range oppOcc {
			p.clauses[ci].nFalse--
		}
		// Slack counts non-false literals, so only the constraints where
		// the literal had become false (those containing ¬l) moved.
		for _, pi := range oppPBC {
			for _, t := range p.pbcs[pi].terms {
				if t.Lit == l.Neg() {
					p.pbcs[pi].slack += t.Coef
					break
				}
			}
		}
		p.assign[v] = 0
	}
	p.trail = p.trail[:mark]
}

// propagateRoot checks the empty formula state and propagates all initial
// units and PB-forced literals. Returns false when the root is refuted.
func (p *prop) propagateRoot() bool {
	if p.empty {
		return false
	}
	head := 0
	// Seed with unit clauses and immediately forced PB literals.
	for ci := range p.clauses {
		if len(p.clauses[ci].lits) == 1 {
			if !p.enqueue(p.clauses[ci].lits[0]) {
				return false
			}
		}
	}
	for pi := range p.pbcs {
		c := &p.pbcs[pi]
		if c.slack < 0 {
			return false
		}
		for _, t := range c.terms {
			if t.Coef > c.slack && p.valueLit(t.Lit) == 0 {
				if !p.enqueue(t.Lit) {
					return false
				}
			}
		}
	}
	return p.propagate(head)
}

// assume enqueues a decision literal and propagates to fixpoint. Returns
// false when the branch is refuted (the caller must undo to its mark).
func (p *prop) assume(l cnf.Lit) bool {
	head := len(p.trail)
	if !p.enqueue(l) {
		return false
	}
	return p.propagate(head)
}

// enqueue assigns l true and updates the clause and PB counters. Returns
// false on an immediate conflict with the current assignment.
func (p *prop) enqueue(l cnf.Lit) bool {
	switch p.valueLit(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l.Var()
	if l.Sign() {
		p.assign[v] = 1
	} else {
		p.assign[v] = -1
	}
	p.trail = append(p.trail, l)
	sameOcc, oppOcc := p.occPos[v], p.occNeg[v]
	oppPBC := p.pbcNeg[v]
	if !l.Sign() {
		sameOcc, oppOcc = oppOcc, sameOcc
		oppPBC = p.pbcPos[v]
	}
	for _, ci := range sameOcc {
		p.clauses[ci].nTrue++
	}
	for _, ci := range oppOcc {
		p.clauses[ci].nFalse++
	}
	for _, pi := range oppPBC {
		for _, t := range p.pbcs[pi].terms {
			if t.Lit == l.Neg() {
				p.pbcs[pi].slack -= t.Coef
				break
			}
		}
	}
	return true
}

// propagate processes the trail from head to fixpoint: unit clauses and
// PB-forced literals. Returns false on conflict.
func (p *prop) propagate(head int) bool {
	for head < len(p.trail) {
		l := p.trail[head]
		head++
		v := l.Var()
		oppOcc, oppPBC := p.occNeg[v], p.pbcNeg[v]
		if !l.Sign() {
			oppOcc, oppPBC = p.occPos[v], p.pbcPos[v]
		}
		for _, ci := range oppOcc {
			cl := &p.clauses[ci]
			if cl.nTrue > 0 {
				continue
			}
			n := int32(len(cl.lits))
			switch {
			case cl.nFalse == n:
				return false
			case cl.nFalse == n-1:
				// Exactly one non-false literal left: find and force it.
				for _, u := range cl.lits {
					if p.valueLit(u) == 0 {
						if !p.enqueue(u) {
							return false
						}
						break
					}
				}
			}
		}
		for _, pi := range oppPBC {
			c := &p.pbcs[pi]
			if c.slack < 0 {
				return false
			}
			for _, t := range c.terms {
				if t.Coef > c.slack && p.valueLit(t.Lit) == 0 {
					if !p.enqueue(t.Lit) {
						return false
					}
				}
			}
		}
	}
	return true
}

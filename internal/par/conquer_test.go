package par

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/pb"
	"repro/internal/pbsolver"
	"repro/internal/sat"
	"repro/internal/testutil"
)

// TestSolveCNFMatchesOracle is the exchange-soundness property test: many
// small random CNFs solved by a sharing cube-and-conquer pool must agree
// with the brute-force oracle, and every SAT model must check out. The
// high ShareLBD forces heavy clause traffic between workers.
func TestSolveCNFMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 60; round++ {
		f := testutil.RandomCNF(rng, 8+rng.Intn(9), 20+rng.Intn(50), 3)
		want, _ := testutil.BruteForceSAT(f)
		st, model, stats := SolveCNF(context.Background(), f, Options{
			Workers:   4,
			CubeDepth: 3,
			ShareLBD:  30, // export essentially every learnt clause
			Seed:      int64(round),
		})
		switch st {
		case sat.Sat:
			if !want {
				t.Fatalf("round %d: par found SAT, oracle says UNSAT (stats %+v)", round, stats)
			}
			if err := testutil.CheckModel(f, model); err != nil {
				t.Fatalf("round %d: bad model: %v", round, err)
			}
		case sat.Unsat:
			if want {
				t.Fatalf("round %d: par found UNSAT, oracle says SAT (stats %+v)", round, stats)
			}
		default:
			t.Fatalf("round %d: unexpected Unknown without a budget", round)
		}
	}
}

// TestOptimizeMatchesBruteForceChromatic cross-checks the full parallel
// optimization loop (incumbent sharing, bound tightening, clause
// exchange) against the brute-force chromatic number on small graphs.
func TestOptimizeMatchesBruteForceChromatic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 10; round++ {
		g := testutil.RandomGraph(rng, "par-rand", 7+rng.Intn(2), 0.5)
		want := testutil.BruteForceChromatic(g)
		enc := encode.Build(g, want+2, encode.SBPNU)
		res := Optimize(context.Background(), enc.F, Options{
			Workers:   3,
			CubeDepth: 3,
			ShareLBD:  10,
			Seed:      int64(round),
		})
		if res.Status != pbsolver.StatusOptimal {
			t.Fatalf("round %d: status %v, want OPTIMAL (par %+v)", round, res.Status, res.Par)
		}
		if res.Objective != want {
			t.Fatalf("round %d: chi %d, want %d", round, res.Objective, want)
		}
		if res.Par.CubesGenerated == 0 {
			t.Fatalf("round %d: no cubes generated", round)
		}
	}
}

// TestOptimizeAgreesWithSequential compares the parallel and sequential
// paths on a benchmark instance, sharing enabled and disabled.
func TestOptimizeAgreesWithSequential(t *testing.T) {
	g, err := graph.Benchmark("queen5_5")
	if err != nil {
		t.Fatal(err)
	}
	enc := encode.Build(g, 7, encode.SBPNU)
	seq := pbsolver.Optimize(context.Background(), enc.F, pbsolver.Options{Engine: pbsolver.EnginePBS})
	if seq.Status != pbsolver.StatusOptimal {
		t.Fatalf("sequential: %v", seq.Status)
	}
	for _, share := range []int{0, -1} {
		res := Optimize(context.Background(), enc.F, Options{Workers: 4, ShareLBD: share})
		if res.Status != pbsolver.StatusOptimal || res.Objective != seq.Objective {
			t.Fatalf("share=%d: got (%v, %d), want (OPTIMAL, %d); par %+v",
				share, res.Status, res.Objective, seq.Objective, res.Par)
		}
		if share < 0 && (res.Par.ClausesExported != 0 || res.Par.ClausesImported != 0) {
			t.Fatalf("share=%d: sharing disabled but clauses moved: %+v", share, res.Par)
		}
	}
}

// TestOptimizeUnsat: a color bound below the clique number must prove
// UNSAT through the parallel path too.
func TestOptimizeUnsat(t *testing.T) {
	g := graph.Complete(5)
	enc := encode.Build(g, 4, encode.SBPNU)
	res := Optimize(context.Background(), enc.F, Options{Workers: 3, CubeDepth: 2})
	if res.Status != pbsolver.StatusUnsat {
		t.Fatalf("K4-bound on K5: got %v, want UNSAT (par %+v)", res.Status, res.Par)
	}
}

// TestOptimizeDecisionMode exercises the no-objective path: first
// satisfying cube wins; all-cubes-unsat proves UNSAT.
func TestOptimizeDecisionMode(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 30; round++ {
		cf := testutil.RandomCNF(rng, 8+rng.Intn(6), 15+rng.Intn(40), 3)
		f := pb.NewFormula(cf.NumVars)
		for _, cl := range cf.Clauses {
			f.AddClause(cl...)
		}
		want, _ := testutil.BruteForceSAT(cf)
		res := Optimize(context.Background(), f, Options{Workers: 4, CubeDepth: 3, Seed: int64(round)})
		if want && res.Status != pbsolver.StatusOptimal {
			t.Fatalf("round %d: got %v, want OPTIMAL(SAT)", round, res.Status)
		}
		if !want && res.Status != pbsolver.StatusUnsat {
			t.Fatalf("round %d: got %v, want UNSAT", round, res.Status)
		}
		if want {
			m := res.Model
			for _, cl := range cf.Clauses {
				ok := false
				for _, l := range cl {
					if m.Lit(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("round %d: model violates %v", round, cl)
				}
			}
		}
	}
}

// TestOptimizeCancellation: a pre-cancelled and a promptly-cancelled
// context both abort without a definitive claim.
func TestOptimizeCancellation(t *testing.T) {
	g, err := graph.Benchmark("queen6_6")
	if err != nil {
		t.Fatal(err)
	}
	enc := encode.Build(g, 9, encode.SBPNone)

	done, cancel := context.WithCancel(context.Background())
	cancel()
	res := Optimize(done, enc.F, Options{Workers: 2})
	if res.Status != pbsolver.StatusUnknown {
		t.Fatalf("pre-cancelled: got %v, want UNKNOWN", res.Status)
	}

	// Many cubes and few workers, cancelled mid-conquest: cubes still
	// sitting in the feeder must not be forgotten — a truncated run may
	// never claim a definitive (covering-proof) answer.
	ctx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	res = Optimize(ctx, enc.F, Options{Workers: 2, CubeDepth: 8})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
	if res.Status == pbsolver.StatusUnsat || res.Status == pbsolver.StatusOptimal {
		t.Fatalf("timed-out run claimed a definitive answer: %v (closed %d of %d cubes)",
			res.Status, res.Par.CubesClosed, res.Par.CubesGenerated)
	}
}

// TestOptimizeSharesAcrossWorkers asserts the exchange actually carries
// clauses on a real instance (the soundness tests above would pass
// vacuously if sharing never fired).
func TestOptimizeSharesAcrossWorkers(t *testing.T) {
	g, err := graph.Benchmark("queen6_6")
	if err != nil {
		t.Fatal(err)
	}
	enc := encode.Build(g, 8, encode.SBPNU)
	res := Optimize(context.Background(), enc.F, Options{Workers: 4, ShareLBD: 6})
	if res.Status != pbsolver.StatusOptimal || res.Objective != 7 {
		t.Fatalf("queen6_6: got (%v, %d), want (OPTIMAL, 7)", res.Status, res.Objective)
	}
	if res.Par.ClausesExported == 0 {
		t.Fatalf("no clauses exported on a nontrivial instance: %+v", res.Par)
	}
	if res.Stats.Imported == 0 {
		t.Fatalf("engines never attached an imported clause: %+v", res.Par)
	}
}

// TestSolveCNFColoringDecision runs the CNF conquest on a real coloring
// decision encoding in both phases (colorable and not).
func TestSolveCNFColoringDecision(t *testing.T) {
	g := graph.Petersen() // chi = 3
	for _, tc := range []struct {
		k    int
		want sat.Status
	}{{3, sat.Sat}, {2, sat.Unsat}} {
		f := decisionCNF(g, tc.k)
		st, model, _ := SolveCNF(context.Background(), f, Options{Workers: 3, CubeDepth: 4})
		if st != tc.want {
			t.Fatalf("k=%d: got %v, want %v", tc.k, st, tc.want)
		}
		if st == sat.Sat {
			if err := testutil.CheckModel(f, model); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// decisionCNF mirrors core.DecisionCNF (not imported to keep par's test
// dependencies on the formula layers only).
func decisionCNF(g *graph.Graph, K int) *cnf.Formula {
	n := g.N()
	f := cnf.NewFormula(n * K)
	x := func(i, j int) cnf.Lit { return cnf.PosLit(i*K + j + 1) }
	for i := 0; i < n; i++ {
		cl := make([]cnf.Lit, K)
		for j := 0; j < K; j++ {
			cl[j] = x(i, j)
		}
		f.AddClause(cl...)
		for a := 0; a < K; a++ {
			for b := a + 1; b < K; b++ {
				f.AddClause(x(i, a).Neg(), x(i, b).Neg())
			}
		}
	}
	for _, e := range g.Edges() {
		for j := 0; j < K; j++ {
			f.AddClause(x(e[0], j).Neg(), x(e[1], j).Neg())
		}
	}
	return f
}

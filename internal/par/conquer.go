package par

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/pb"
	"repro/internal/pbsolver"
	"repro/internal/sat"
	"repro/internal/solverutil"
)

// Optimize solves a 0-1 ILP formula with parallel cube-and-conquer: the
// instance is split into cubes (CubesPB), and a bounded pool of
// incremental pbsolver sessions conquers them, each cube installed as
// assumptions. Workers share one global incumbent — every improving model
// found in any cube tightens every worker's objective bound — and, unless
// disabled, exchange glue-grade learnt clauses at restarts.
//
// Termination is first-finisher-wins through a context derived from ctx:
// a worker that proves the instance as a whole (root-level contradiction,
// an infeasible objective bound, a feasible objective of 0, or — in
// decision mode — any satisfying model) cancels the rest of the pool.
// Otherwise the run ends when every cube is conquered (StatusOptimal or
// StatusUnsat, by the covering property of the cube tree) or the budget
// expires (StatusSat with the best incumbent, or StatusUnknown).
//
// With an empty objective this degenerates to a parallel decision solve:
// SAT the moment any cube is satisfiable, UNSAT when all cubes are closed.
func Optimize(ctx context.Context, f *pb.Formula, opts Options) Result {
	start := time.Now()
	workers := opts.workers()
	res := Result{}
	res.Status = pbsolver.StatusUnknown
	res.Par.Workers = workers
	if ctx.Err() != nil {
		res.Runtime = time.Since(start)
		return res
	}

	// Pin the shared wall-clock budget once (a worker scheduled late must
	// not restart the clock); the derived context is the single
	// cancellation path for deadline, caller cancellation, and
	// first-finisher-wins alike.
	base := opts.Solver
	if base.Engine == pbsolver.EngineBnB {
		base.Engine = pbsolver.EnginePBS // no incremental assumption core in BnB
	}
	var pctx context.Context
	var cancel context.CancelFunc
	if base.Timeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, base.Timeout)
		base.Timeout = 0
	} else {
		pctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	cs := CubesPB(f, CubeOptions{Depth: opts.cubeDepth(), Seed: opts.Seed})
	res.Par.CubesGenerated = int64(len(cs.Cubes))
	res.Par.CubesRefuted = cs.Refuted
	if cs.RootUnsat {
		res.Status = pbsolver.StatusUnsat
		res.Runtime = time.Since(start)
		return res
	}

	var exch *Exchange
	if opts.sharing() && workers > 1 {
		exch = NewExchange(opts.ExchangeCapacity)
	}
	decision := len(f.Objective) == 0

	// Shared conquest state.
	var (
		mu        sync.Mutex
		bestZ     = -1 // best feasible objective (global incumbent)
		bestModel cnf.Assignment
		satModel  cnf.Assignment // decision mode: first satisfying model
	)
	var (
		closed atomic.Int64 // cubes conquered definitively
		proven atomic.Bool  // whole-instance proof found early
	)
	merge := newMerger(base.Progress, base.ProgressInterval, workers, &res.Par, exch, &closed)
	merge.cubesTotal = int64(len(cs.Cubes))
	merge.best = func() int { mu.Lock(); defer mu.Unlock(); return bestZ }

	cubeCh := make(chan []cnf.Lit)
	go func() {
		defer close(cubeCh)
		for _, c := range cs.Cubes {
			select {
			case cubeCh <- c:
			case <-pctx.Done():
				return
			}
		}
	}()

	perWorker := make([]pbsolver.Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			_, wspan := obs.StartSpan(pctx, "solve.worker", obs.Int("worker", int64(wid)))
			o := base
			o.Progress = merge.hook(wid)
			if exch != nil {
				o.Export = exch.Exporter(wid)
				o.ExportLBD = opts.shareLBD()
				o.Import = exch.Importer(wid)
			}
			sess := pbsolver.NewSession(pctx, f, o)
			defer func() {
				st := sess.Stats()
				perWorker[wid] = st
				wspan.End(
					obs.Int("conflicts", st.Conflicts),
					obs.Int("restarts", st.Restarts),
					obs.Int("solver_calls", st.SolverCalls),
				)
			}()
			appliedBound := int(^uint(0) >> 1) // no bound yet
			for cube := range cubeCh {
				for {
					if pctx.Err() != nil {
						return
					}
					// Tighten to the global incumbent before (re)probing.
					mu.Lock()
					gb := bestZ
					mu.Unlock()
					if !decision && gb >= 0 && gb-1 < appliedBound {
						if gb == 0 || !sess.AddObjectiveBound(gb-1) {
							// Objective 0 cannot improve; an infeasible
							// bound refutes "objective < incumbent"
							// globally. Either way the optimum is proven.
							proven.Store(true)
							cancel()
							return
						}
						appliedBound = gb - 1
						sess.SetIncumbent(gb)
					}
					switch sess.DecideAssuming(cube) {
					case pbsolver.StatusSat:
						m := sess.Model()
						if decision {
							mu.Lock()
							if satModel == nil {
								satModel = m
							}
							mu.Unlock()
							proven.Store(true)
							cancel() // first finisher wins
							return
						}
						z := sess.ObjectiveValue(m)
						mu.Lock()
						if bestZ < 0 || z < bestZ {
							bestZ, bestModel = z, m
						}
						mu.Unlock()
						sess.SetIncumbent(z)
						// Loop: tighten the bound and re-probe this cube.
					case pbsolver.StatusUnsat:
						if sess.RootUnsat() {
							// Contradiction at level 0: the formula (plus
							// globally justified bounds) is refuted — not
							// just this cube.
							proven.Store(true)
							cancel()
							return
						}
						closed.Add(1)
						goto nextCube
					default: // budget exhausted
						return
					}
				}
			nextCube:
			}
		}(w)
	}
	wg.Wait()

	for _, st := range perWorker {
		res.Stats.Add(st)
		res.Stats.SolverCalls += st.SolverCalls
	}
	if exch != nil {
		res.Par.ClausesExported = exch.Exported()
		res.Par.ClausesImported = exch.Imported()
	}
	res.Par.CubesClosed = closed.Load()
	res.Runtime = time.Since(start)

	mu.Lock()
	defer mu.Unlock()
	switch {
	case decision && satModel != nil:
		res.Status = pbsolver.StatusOptimal // decision answered definitively
		res.Model = satModel
	case proven.Load():
		// Whole-instance proof: optimal when an incumbent exists (no
		// model beats it anywhere), UNSAT otherwise (no bound was ever
		// installed before the refutation, so the formula itself is out).
		if bestZ >= 0 {
			res.Status = pbsolver.StatusOptimal
			res.Model, res.Objective = bestModel, bestZ
		} else {
			res.Status = pbsolver.StatusUnsat
		}
	case closed.Load() == int64(len(cs.Cubes)):
		// Every generated cube was conquered definitively (counted one by
		// one — cancellation mid-feed leaves this short, so a truncated
		// run can never masquerade as a covering proof); the cube tree
		// covers the model space.
		if bestZ >= 0 {
			res.Status = pbsolver.StatusOptimal
			res.Model, res.Objective = bestModel, bestZ
		} else {
			res.Status = pbsolver.StatusUnsat
		}
	case bestZ >= 0:
		res.Status = pbsolver.StatusSat // feasible, optimality unproven
		res.Model, res.Objective = bestModel, bestZ
	}
	return res
}

// SolveCNF decides a pure CNF formula with parallel cube-and-conquer over
// internal/sat workers (the K-coloring decision variant). It returns the
// first satisfying model found in any cube (cancelling the laggards),
// Unsat when every cube is conquered, or Unknown on budget exhaustion.
// Engine-agnostic fields of opts.Solver (knobs, MaxConflicts per worker,
// Timeout, Progress) carry over; the Engine field is ignored.
func SolveCNF(ctx context.Context, f *cnf.Formula, opts Options) (sat.Status, cnf.Assignment, Stats) {
	workers := opts.workers()
	stats := Stats{Workers: workers}
	if ctx.Err() != nil {
		return sat.Unknown, nil, stats
	}
	base := opts.Solver
	var pctx context.Context
	var cancel context.CancelFunc
	if base.Timeout > 0 {
		pctx, cancel = context.WithTimeout(ctx, base.Timeout)
	} else {
		pctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	cs := CubesCNF(f, CubeOptions{Depth: opts.cubeDepth(), Seed: opts.Seed})
	stats.CubesGenerated = int64(len(cs.Cubes))
	stats.CubesRefuted = cs.Refuted
	if cs.RootUnsat {
		return sat.Unsat, nil, stats
	}

	var exch *Exchange
	if opts.sharing() && workers > 1 {
		exch = NewExchange(opts.ExchangeCapacity)
	}
	var (
		mu     sync.Mutex
		model  cnf.Assignment
		closed atomic.Int64
	)
	merge := newMerger(base.Progress, base.ProgressInterval, workers, &stats, exch, &closed)
	merge.cubesTotal = int64(len(cs.Cubes))
	merge.best = func() int { return -1 }

	cubeCh := make(chan []cnf.Lit)
	go func() {
		defer close(cubeCh)
		for _, c := range cs.Cubes {
			select {
			case cubeCh <- c:
			case <-pctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			_, wspan := obs.StartSpan(pctx, "solve.worker", obs.Int("worker", int64(wid)))
			var s *sat.Solver
			defer func() {
				if s == nil {
					wspan.End()
					return
				}
				st := s.Stats()
				wspan.End(
					obs.Int("conflicts", st.Conflicts),
					obs.Int("restarts", st.Restarts),
				)
			}()
			o := sat.Options{
				Context:          pctx,
				MaxConflicts:     base.MaxConflicts,
				PhaseSaving:      true,
				VarDecay:         base.VarDecayOverride,
				RestartBase:      base.RestartBaseOverride,
				GlueLBD:          base.GlueLBD,
				ReduceInterval:   base.ReduceInterval,
				ChronoThreshold:  base.ChronoThreshold,
				VivifyBudget:     base.VivifyBudget,
				DynamicLBD:       base.DynamicLBD,
				Progress:         merge.satHook(wid),
				ProgressInterval: base.ProgressInterval,
			}
			if exch != nil {
				o.Export = exch.Exporter(wid)
				o.ExportLBD = opts.shareLBD()
				o.Import = exch.Importer(wid)
			}
			s = sat.New(f, o)
			for cube := range cubeCh {
				switch s.SolveAssuming(cube) {
				case sat.Sat:
					mu.Lock()
					if model == nil {
						model = s.Model()
					}
					mu.Unlock()
					cancel() // first finisher wins
					return
				case sat.Unsat:
					closed.Add(1)
				default:
					return // budget exhausted or cancelled
				}
			}
		}(w)
	}
	wg.Wait()

	if exch != nil {
		stats.ClausesExported = exch.Exported()
		stats.ClausesImported = exch.Imported()
	}
	stats.CubesClosed = closed.Load()
	mu.Lock()
	defer mu.Unlock()
	switch {
	case model != nil:
		return sat.Sat, model, stats
	case closed.Load() == int64(len(cs.Cubes)):
		// Every cube conquered (cancellation mid-feed leaves the count
		// short, so a truncated run can never claim UNSAT).
		return sat.Unsat, nil, stats
	}
	return sat.Unknown, nil, stats
}

// merger fans per-worker progress snapshots into one merged stream:
// counters are summed over every worker's latest snapshot, the cube and
// sharing gauges are attached, and emission is rate-limited once for the
// whole pool (the per-engine emitters already limited each worker).
type merger struct {
	mu      sync.Mutex
	emit    solverutil.ProgressEmitter
	per     []solverutil.Progress
	workers int

	cubesTotal int64
	stats      *Stats
	exch       *Exchange
	closed     *atomic.Int64
	best       func() int
}

func newMerger(fn solverutil.ProgressFunc, interval time.Duration, workers int, stats *Stats, exch *Exchange, closed *atomic.Int64) *merger {
	return &merger{
		emit:    solverutil.NewProgressEmitter(fn, interval),
		per:     make([]solverutil.Progress, workers),
		workers: workers,
		stats:   stats,
		exch:    exch,
		closed:  closed,
	}
}

// hook returns the pbsolver progress callback for one worker.
func (m *merger) hook(wid int) solverutil.ProgressFunc {
	if !m.emit.Enabled() {
		return nil
	}
	return func(p solverutil.Progress) { m.record(wid, p) }
}

// satHook is hook for sat workers (identical; kept separate for clarity
// at the call sites).
func (m *merger) satHook(wid int) solverutil.ProgressFunc { return m.hook(wid) }

func (m *merger) record(wid int, p solverutil.Progress) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.per[wid] = p
	if !m.emit.Ready() {
		return
	}
	merged := solverutil.Progress{
		Engine:    "par:" + p.Engine,
		Incumbent: m.best(),
	}
	if p.Engine == "" {
		merged.Engine = "par"
	}
	for i := range m.per {
		q := &m.per[i]
		merged.Conflicts += q.Conflicts
		merged.Decisions += q.Decisions
		merged.Propagations += q.Propagations
		merged.Restarts += q.Restarts
		merged.Learnts += q.Learnts
		merged.Reduces += q.Reduces
		merged.Removed += q.Removed
		merged.ChronoBacktracks += q.ChronoBacktracks
		merged.VivifiedLits += q.VivifiedLits
		merged.LBDUpdates += q.LBDUpdates
	}
	merged.Workers = m.workers
	merged.CubesTotal = m.cubesTotal
	merged.CubesClosed = m.closed.Load()
	merged.CubesRefuted = m.stats.CubesRefuted
	if m.exch != nil {
		merged.SharedExported = m.exch.Exported()
		merged.SharedImported = m.exch.Imported()
	}
	m.emit.Emit(merged)
}

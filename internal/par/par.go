// Package par is the parallel cube-and-conquer subsystem: it splits the
// symmetry-reduced search space of an encoded instance into cubes with a
// lookahead-based generator (cube.go), conquers the cubes on a bounded
// pool of the existing CDCL engines — internal/pbsolver sessions for 0-1
// ILP optimization, internal/sat solvers for the CNF decision variant —
// each seeded with its cube as assumptions (conquer.go), and lets the
// workers exchange glue-grade learnt clauses through a lock-light ring
// buffer (exchange.go), in the style of Glucose-syrup portfolio solvers.
//
// Soundness rests on three invariants:
//
//  1. Cubes cover the space. The generated cubes are the leaves of one
//     branching tree; every pruned branch was refuted by propagation and
//     therefore contains no models. Any model of the formula satisfies at
//     least one cube, so "all cubes conquered" is a proof for the whole
//     instance, and the cubes are pairwise disjoint (sibling branches
//     differ in the branch literal's phase), so no work is duplicated.
//  2. Shared clauses are assumption-free. CDCL learnt clauses are
//     resolvents of database clauses; assumptions enter the trail as
//     decisions, never as clauses, so a clause learnt while conquering one
//     cube is implied by the shared formula (plus globally justified
//     objective bounds) and is valid in every other cube.
//  3. Objective bounds are globally justified. A worker only tightens its
//     objective bound from the shared incumbent, and incumbents are real
//     models of the unrestricted formula (a cube only restricts, never
//     extends, the model set). Pruning a model of objective ≥ the shared
//     incumbent can therefore never change the optimum.
//
// The subsystem sits between the engines and internal/core: core.Solve
// routes to par.Optimize when Config.Parallel > 1, and the knobs flow
// through service.JobSpec, the gcolord JSON API, and gcolor -parallel.
package par

import (
	"runtime"

	"repro/internal/pbsolver"
	"repro/internal/solverutil"
)

// Options configure a parallel solve.
type Options struct {
	// Workers is the conquer pool size (0 = GOMAXPROCS; requests are
	// clamped to 4× GOMAXPROCS, since Workers reaches this layer from
	// untrusted job submissions and each worker builds a full engine).
	// One CDCL engine is built per worker; workers pull cubes from a
	// shared queue.
	Workers int
	// CubeDepth is the number of branching decisions per cube, so the
	// generator emits at most 2^CubeDepth cubes (fewer when propagation
	// refutes branches). 0 selects a depth that yields roughly eight
	// cubes per worker, the usual over-decomposition for load balance.
	CubeDepth int
	// ShareLBD is the learnt-clause exchange threshold: workers export
	// clauses with LBD at or below it and import the other workers'
	// exports at restarts. 0 selects solverutil.DefaultShareLBD (2);
	// negative disables sharing entirely.
	ShareLBD int
	// Seed steers the cube generator's tie-breaking between equal-score
	// branching variables. Generation is fully deterministic for a fixed
	// seed (the conquest order is not — workers race).
	Seed int64
	// ExchangeCapacity bounds the sharing ring buffer (0 = 4096 clauses).
	// A worker that falls more than a full ring behind misses the
	// overwritten clauses — sharing is best-effort by design.
	ExchangeCapacity int
	// Solver is the per-worker engine template: engine selection, search
	// knobs, Timeout and MaxConflicts (both per worker, spanning all of
	// its cubes), and the Progress callback, which receives snapshots
	// merged across the whole pool. EngineBnB has no incremental
	// assumption core; it is conquered with EnginePBS workers.
	Solver pbsolver.Options
}

func (o Options) workers() int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Clamp requested parallelism to a small multiple of the usable CPUs:
	// Workers arrives from untrusted job submissions (the gcolord JSON
	// field), and each worker builds a full CDCL engine over the formula.
	// Beyond the CPU count extra workers only smooth load imbalance, so
	// the clamp costs nothing and keeps one request from amplifying into
	// unbounded engines.
	if limit := 4 * runtime.GOMAXPROCS(0); w > limit {
		w = limit
	}
	return w
}

func (o Options) cubeDepth() int {
	if o.CubeDepth > 0 {
		return o.CubeDepth
	}
	d := 0
	for n := o.workers() * 8; n > 1; n >>= 1 {
		d++
	}
	if d < 1 {
		d = 1
	}
	if d > maxAutoDepth {
		d = maxAutoDepth
	}
	return d
}

func (o Options) shareLBD() int {
	if o.ShareLBD == 0 {
		return solverutil.DefaultShareLBD
	}
	return o.ShareLBD
}

func (o Options) sharing() bool { return o.ShareLBD >= 0 }

// maxAutoDepth caps the automatically chosen cube depth (2^12 cubes).
const maxAutoDepth = 12

// Stats aggregate the parallel run's lifecycle counters across the cube
// generator, the conquer pool, and the clause exchange.
type Stats struct {
	// Workers is the conquer pool size actually used.
	Workers int `json:"workers"`
	// CubesGenerated counts emitted cubes; CubesRefuted counts branches
	// the lookahead pruned by propagation (closed before any engine ran);
	// CubesClosed counts cubes conquered definitively by a worker.
	CubesGenerated int64 `json:"cubes_generated"`
	CubesRefuted   int64 `json:"cubes_refuted"`
	CubesClosed    int64 `json:"cubes_closed"`
	// ClausesExported and ClausesImported count learnt clauses through
	// the exchange, summed over workers (one export is typically imported
	// by Workers−1 peers).
	ClausesExported int64 `json:"clauses_exported"`
	ClausesImported int64 `json:"clauses_imported"`
}

// Result is the merged outcome of a parallel solve: the usual engine
// result plus the subsystem's own counters.
type Result struct {
	pbsolver.Result
	Par Stats
}

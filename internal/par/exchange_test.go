package par

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/solverutil"
)

func lits(xs ...int) []cnf.Lit {
	out := make([]cnf.Lit, len(xs))
	for i, x := range xs {
		out[i] = cnf.Lit(x)
	}
	return out
}

// TestExchangeRouting: importers see every foreign clause exactly once and
// never their own exports.
func TestExchangeRouting(t *testing.T) {
	x := NewExchange(16)
	exp0, exp1 := x.Exporter(0), x.Exporter(1)
	imp0, imp1 := x.Importer(0), x.Importer(1)

	exp0(lits(1, -2), 2)
	exp1(lits(3, 4, -5), 2)
	exp0(lits(-6), 1)

	got := imp0(nil)
	if len(got) != 1 || len(got[0].Lits) != 3 {
		t.Fatalf("importer 0: want only worker 1's clause, got %v", got)
	}
	got = imp1(nil)
	if len(got) != 2 {
		t.Fatalf("importer 1: want worker 0's two clauses, got %v", got)
	}
	if got[1].LBD != 1 || got[1].Lits[0] != cnf.Lit(-6) {
		t.Fatalf("importer 1: LBD/payload mismatch: %+v", got[1])
	}
	// Second drain: nothing new.
	if got := imp1(nil); len(got) != 0 {
		t.Fatalf("importer 1 re-drain: want empty, got %v", got)
	}
	if x.Exported() != 3 || x.Imported() != 3 {
		t.Fatalf("counters: exported=%d imported=%d", x.Exported(), x.Imported())
	}
}

// TestExchangeImportIsolation: importers get private copies, so solver-side
// normalization cannot corrupt other importers' views.
func TestExchangeImportIsolation(t *testing.T) {
	x := NewExchange(4)
	x.Exporter(0)(lits(7, 8), 2)
	a := x.Importer(1)(nil)
	a[0].Lits[0] = cnf.Lit(99) // simulate in-place normalization
	b := x.Importer(2)(nil)
	if b[0].Lits[0] != cnf.Lit(7) {
		t.Fatalf("importer 2 saw importer 1's mutation: %v", b[0].Lits)
	}
}

// TestExchangeRingOverflow: a laggard that missed more than a full ring
// only gets the surviving window — dropped, never duplicated or stale.
func TestExchangeRingOverflow(t *testing.T) {
	x := NewExchange(4)
	imp := x.Importer(1)
	exp := x.Exporter(0)
	for i := 0; i < 10; i++ {
		exp(lits(i+1), 1)
	}
	got := imp(make([]solverutil.SharedClause, 0, 8))
	if len(got) != 4 {
		t.Fatalf("laggard drain: want the 4 surviving slots, got %d", len(got))
	}
	for i, sc := range got {
		if want := cnf.Lit(7 + i); sc.Lits[0] != want {
			t.Fatalf("slot %d: want %v, got %v", i, want, sc.Lits[0])
		}
	}
}

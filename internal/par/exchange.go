package par

import (
	"sync"
	"sync/atomic"

	"repro/internal/cnf"
	"repro/internal/solverutil"
)

// DefaultExchangeCapacity is the ring size used when Options leave it 0.
const DefaultExchangeCapacity = 4096

// Exchange is the lock-light learnt-clause channel between conquer
// workers: a fixed-capacity ring buffer of shared clauses with one global
// sequence counter. Exporting appends one slot under a short mutex hold;
// importing copies the slots published since the importer's private
// cursor, skipping its own. A worker that falls more than a full ring
// behind simply misses the overwritten clauses — sharing improves search,
// it never carries correctness, so dropping is always safe.
//
// Clause payloads are copied on the way in and on the way out: slots are
// overwritten as the ring wraps, and importers hand the clauses to solver
// code that normalizes in place.
type Exchange struct {
	mu  sync.Mutex
	buf []slot
	seq uint64 // total clauses ever published

	exported atomic.Int64
	imported atomic.Int64
}

type slot struct {
	src  int
	lbd  int
	lits []cnf.Lit
}

// NewExchange builds an exchange with the given ring capacity (≤ 0 selects
// DefaultExchangeCapacity).
func NewExchange(capacity int) *Exchange {
	if capacity <= 0 {
		capacity = DefaultExchangeCapacity
	}
	return &Exchange{buf: make([]slot, capacity)}
}

// Exporter returns the Export hook for worker src: it copies the clause
// and publishes it to every other worker.
func (x *Exchange) Exporter(src int) solverutil.ExportFunc {
	return func(lits []cnf.Lit, lbd int) {
		cp := append([]cnf.Lit(nil), lits...)
		x.mu.Lock()
		x.buf[x.seq%uint64(len(x.buf))] = slot{src: src, lbd: lbd, lits: cp}
		x.seq++
		x.mu.Unlock()
		x.exported.Add(1)
	}
}

// Importer returns the Import hook for worker src. The returned function
// is owned by that worker's goroutine (the cursor is captured, unshared)
// and drains every foreign clause published since its previous call that
// still lives in the ring.
func (x *Exchange) Importer(src int) solverutil.ImportFunc {
	var cursor uint64
	return func(buf []solverutil.SharedClause) []solverutil.SharedClause {
		start := len(buf)
		x.mu.Lock()
		lo := cursor
		if n := uint64(len(x.buf)); x.seq > n && lo < x.seq-n {
			lo = x.seq - n // fell behind a full ring: skip the overwritten part
		}
		for i := lo; i < x.seq; i++ {
			s := x.buf[i%uint64(len(x.buf))]
			if s.src == src {
				continue
			}
			buf = append(buf, solverutil.SharedClause{
				Lits: append([]cnf.Lit(nil), s.lits...),
				LBD:  s.lbd,
			})
		}
		cursor = x.seq
		x.mu.Unlock()
		x.imported.Add(int64(len(buf) - start))
		return buf
	}
}

// Exported returns the total clauses published; Imported the total clause
// copies handed to importers.
func (x *Exchange) Exported() int64 { return x.exported.Load() }
func (x *Exchange) Imported() int64 { return x.imported.Load() }

package par

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cnf"
	"repro/internal/pb"
	"repro/internal/testutil"
)

// TestCubeDeterminism pins the generator's contract: a fixed seed yields
// byte-identical cube sets on repeated runs, and the branching pool is
// ranked identically too.
func TestCubeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := testutil.RandomCNF(rng, 18, 60, 4)
	for _, seed := range []int64{0, 1, 42} {
		a := CubesCNF(f, CubeOptions{Depth: 4, Seed: seed})
		b := CubesCNF(f, CubeOptions{Depth: 4, Seed: seed})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic:\n%v\nvs\n%v", seed, a, b)
		}
		if len(a.Cubes) == 0 && !a.RootUnsat {
			t.Fatalf("seed %d: no cubes and no root refutation", seed)
		}
	}
}

// TestCubesCoverModels is the soundness half of the split: every model of
// the formula must satisfy at least one emitted cube (refuted branches
// may only ever exclude non-models).
func TestCubesCoverModels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		f := testutil.RandomCNF(rng, 6+rng.Intn(8), 10+rng.Intn(25), 3)
		cs := CubesCNF(f, CubeOptions{Depth: 3, Seed: int64(round)})
		sat, _ := testutil.BruteForceSAT(f)
		if cs.RootUnsat {
			if sat {
				t.Fatalf("round %d: generator refuted a satisfiable formula", round)
			}
			continue
		}
		// Enumerate all assignments; every model must hit some cube.
		n := f.NumVars
		for mask := uint64(0); mask < 1<<n; mask++ {
			m := make(cnf.Assignment, n+1)
			for v := 1; v <= n; v++ {
				m[v] = mask&(1<<(v-1)) != 0
			}
			if !f.Satisfies(m) {
				continue
			}
			covered := false
			for _, cube := range cs.Cubes {
				all := true
				for _, l := range cube {
					if !m.Lit(l) {
						all = false
						break
					}
				}
				if all {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("round %d: model %v not covered by any of %d cubes", round, m, len(cs.Cubes))
			}
		}
	}
}

// TestCubesDisjoint: sibling branches differ in the branch literal's
// phase, so no assignment satisfies two distinct cubes.
func TestCubesDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := testutil.RandomCNF(rng, 12, 30, 3)
	cs := CubesCNF(f, CubeOptions{Depth: 4, Seed: 5})
	for i := range cs.Cubes {
		for j := i + 1; j < len(cs.Cubes); j++ {
			if !conflicting(cs.Cubes[i], cs.Cubes[j]) {
				t.Fatalf("cubes %v and %v are not mutually exclusive", cs.Cubes[i], cs.Cubes[j])
			}
		}
	}
}

func conflicting(a, b []cnf.Lit) bool {
	for _, la := range a {
		for _, lb := range b {
			if la == lb.Neg() {
				return true
			}
		}
	}
	return false
}

// TestCubesPBPruning: PB slack propagation refutes branches CNF clauses
// alone cannot, and the root refutation fires on infeasible constraints.
func TestCubesPBPruning(t *testing.T) {
	// x1 + x2 + x3 >= 2: once one variable goes false the slack forces the
	// other two true, so no surviving cube sets two variables false.
	f := pb.NewFormula(3)
	f.AddPB([]pb.Term{{Coef: 1, Lit: cnf.PosLit(1)}, {Coef: 1, Lit: cnf.PosLit(2)}, {Coef: 1, Lit: cnf.PosLit(3)}}, pb.GE, 2)
	cs := CubesPB(f, CubeOptions{Depth: 3, Seed: 0})
	if cs.RootUnsat {
		t.Fatal("feasible formula reported root-unsat")
	}
	for _, cube := range cs.Cubes {
		neg := 0
		for _, l := range cube {
			if !l.Sign() {
				neg++
			}
		}
		if neg >= 2 {
			t.Fatalf("cube %v sets two variables false but survived the >=2 constraint", cube)
		}
	}

	// An infeasible constraint refutes the root.
	g := pb.NewFormula(2)
	g.AddPB([]pb.Term{{Coef: 1, Lit: cnf.PosLit(1)}, {Coef: 1, Lit: cnf.PosLit(2)}}, pb.GE, 3)
	if cs := CubesPB(g, CubeOptions{Depth: 2}); !cs.RootUnsat {
		t.Fatal("infeasible constraint not refuted at the root")
	}
}

// TestCubesDepthZero emits exactly one empty cube (sequential conquest).
func TestCubesDepthZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := testutil.RandomCNF(rng, 10, 20, 3)
	cs := CubesCNF(f, CubeOptions{Depth: 0, Seed: 0})
	if cs.RootUnsat {
		t.Skip("random formula happened to be root-unsat")
	}
	if len(cs.Cubes) != 1 || len(cs.Cubes[0]) != 0 {
		t.Fatalf("depth 0: want one empty cube, got %v", cs.Cubes)
	}
}

package autom

import (
	"math/big"
	"math/rand"
	"testing"
)

// factorial returns n! as big.Int.
func factorial(n int) *big.Int {
	out := big.NewInt(1)
	for i := 2; i <= n; i++ {
		out.Mul(out, big.NewInt(int64(i)))
	}
	return out
}

func completeGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func cycleGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func pathGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func petersenGraph() *Graph {
	g := NewGraph(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
		g.AddEdge(5+i, 5+(i+2)%5)
		g.AddEdge(i, 5+i)
	}
	return g
}

func checkGroup(t *testing.T, g *Graph, wantOrder *big.Int, name string) *Result {
	t.Helper()
	res := FindAutomorphisms(g, Options{})
	if !res.Exact {
		t.Fatalf("%s: search did not complete", name)
	}
	if res.Order.Cmp(wantOrder) != 0 {
		t.Fatalf("%s: |Aut| = %v, want %v", name, res.Order, wantOrder)
	}
	for i, p := range res.Generators {
		if !g.isAutomorphism(p) {
			t.Fatalf("%s: generator %d is not an automorphism: %s", name, i, p.Cycles())
		}
		if p.IsIdentity() {
			t.Fatalf("%s: identity reported as generator", name)
		}
	}
	return res
}

func TestCompleteGraphGroup(t *testing.T) {
	for n := 1; n <= 7; n++ {
		checkGroup(t, completeGraph(n), factorial(n), "K_n")
	}
}

func TestCycleGroupIsDihedral(t *testing.T) {
	for n := 3; n <= 9; n++ {
		checkGroup(t, cycleGraph(n), big.NewInt(int64(2*n)), "C_n")
	}
}

func TestPathGroupIsReflection(t *testing.T) {
	for n := 2; n <= 8; n++ {
		checkGroup(t, pathGraph(n), big.NewInt(2), "P_n")
	}
}

func TestPetersenGroupOrder120(t *testing.T) {
	checkGroup(t, petersenGraph(), big.NewInt(120), "petersen")
}

func TestStarGraphGroup(t *testing.T) {
	// K_{1,n}: center fixed, leaves freely permutable: n!.
	for n := 2; n <= 6; n++ {
		g := NewGraph(n + 1)
		for i := 1; i <= n; i++ {
			g.AddEdge(0, i)
		}
		checkGroup(t, g, factorial(n), "star")
	}
}

func TestCompleteBipartiteGroup(t *testing.T) {
	// K_{2,3}: 2! * 3! = 12 (sides not swappable).
	g := NewGraph(5)
	for a := 0; a < 2; a++ {
		for b := 2; b < 5; b++ {
			g.AddEdge(a, b)
		}
	}
	checkGroup(t, g, big.NewInt(12), "K_{2,3}")
	// K_{3,3}: (3!)^2 * 2 = 72 (sides swappable).
	g2 := NewGraph(6)
	for a := 0; a < 3; a++ {
		for b := 3; b < 6; b++ {
			g2.AddEdge(a, b)
		}
	}
	checkGroup(t, g2, big.NewInt(72), "K_{3,3}")
}

func TestColorsRestrictGroup(t *testing.T) {
	// C4 with two opposite vertices colored: only the reflections fixing
	// the colored pair survive: order 2*... C4 Aut = dihedral order 8;
	// coloring {0} separately leaves stabilizer of vertex 0: order 2.
	g := cycleGraph(4)
	g.SetColor(0, 1)
	checkGroup(t, g, big.NewInt(2), "C4 colored")

	// All distinct colors: trivial group.
	g2 := cycleGraph(5)
	for v := 0; v < 5; v++ {
		g2.SetColor(v, v)
	}
	checkGroup(t, g2, big.NewInt(1), "C5 rainbow")
}

func TestDisjointTrianglesSwap(t *testing.T) {
	// Two disjoint triangles: (S3 × S3) ⋊ S2 = 72.
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		g.AddEdge(e[0], e[1])
	}
	checkGroup(t, g, big.NewInt(72), "2xK3")
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	// Empty graph on n vertices: S_n.
	g := NewGraph(4)
	checkGroup(t, g, factorial(4), "empty4")
	// Single vertex.
	checkGroup(t, NewGraph(1), big.NewInt(1), "single")
	// Zero vertices.
	checkGroup(t, NewGraph(0), big.NewInt(1), "null")
}

func TestAsymmetricGraphTrivialGroup(t *testing.T) {
	// The smallest asymmetric graphs have 6 vertices; build one: a triangle
	// with pendant paths of distinct lengths.
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 4}, {4, 5}} {
		g.AddEdge(e[0], e[1])
	}
	checkGroup(t, g, big.NewInt(1), "asymmetric")
}

func TestQueen5GraphGroupOrder8(t *testing.T) {
	// The queen5_5 graph inherits the board symmetries: dihedral of order 8.
	n := 5
	g := NewGraph(n * n)
	id := func(r, c int) int { return r*n + c }
	for r1 := 0; r1 < n; r1++ {
		for c1 := 0; c1 < n; c1++ {
			for r2 := 0; r2 < n; r2++ {
				for c2 := 0; c2 < n; c2++ {
					if r1*n+c1 >= r2*n+c2 {
						continue
					}
					if r1 == r2 || c1 == c2 || r1-c1 == r2-c2 || r1+c1 == r2+c2 {
						g.AddEdge(id(r1, c1), id(r2, c2))
					}
				}
			}
		}
	}
	checkGroup(t, g, big.NewInt(8), "queen5_5")
}

func TestBudgetTruncationIsSound(t *testing.T) {
	g := completeGraph(8)
	res := FindAutomorphisms(g, Options{MaxNodes: 3})
	if res.Exact {
		t.Fatal("tiny budget should not complete on K8")
	}
	for _, p := range res.Generators {
		if !g.isAutomorphism(p) {
			t.Fatal("truncated search returned a non-automorphism")
		}
	}
	if res.Order.Cmp(factorial(8)) > 0 {
		t.Fatalf("truncated order %v exceeds true order", res.Order)
	}
}

func TestOrbitsOfGenerators(t *testing.T) {
	res := FindAutomorphisms(cycleGraph(5), Options{})
	orbits := Orbits(5, res.Generators)
	if len(orbits) != 1 || len(orbits[0]) != 5 {
		t.Fatalf("C5 should be vertex-transitive, got orbits %v", orbits)
	}
	// No generators: all singleton orbits.
	o2 := Orbits(3, nil)
	if len(o2) != 3 {
		t.Fatalf("expected 3 singleton orbits, got %v", o2)
	}
}

func TestPermBasics(t *testing.T) {
	p := Perm{1, 2, 0, 3}
	if p.IsIdentity() {
		t.Fatal("not identity")
	}
	if !Identity(4).IsIdentity() {
		t.Fatal("identity is identity")
	}
	inv := p.Inverse()
	if !p.Compose(inv).IsIdentity() {
		t.Fatalf("p∘p⁻¹ != id: %v", p.Compose(inv))
	}
	sup := p.Support()
	if len(sup) != 3 || sup[0] != 0 || sup[2] != 2 {
		t.Fatalf("support = %v", sup)
	}
	if c := p.Cycles(); c != "(0 1 2)" {
		t.Fatalf("cycles = %q", c)
	}
	if c := Identity(2).Cycles(); c != "()" {
		t.Fatalf("identity cycles = %q", c)
	}
}

func TestGeneratorClosureProperty(t *testing.T) {
	// Random products of generators must remain automorphisms.
	g := petersenGraph()
	res := FindAutomorphisms(g, Options{})
	if len(res.Generators) == 0 {
		t.Fatal("petersen has nontrivial group")
	}
	rng := rand.New(rand.NewSource(9))
	cur := Identity(10)
	for i := 0; i < 50; i++ {
		gen := res.Generators[rng.Intn(len(res.Generators))]
		if rng.Intn(2) == 0 {
			gen = gen.Inverse()
		}
		cur = cur.Compose(gen)
		if !g.isAutomorphism(cur) {
			t.Fatalf("product %d of generators is not an automorphism", i)
		}
	}
}

func TestRandomGraphGroupBruteForce(t *testing.T) {
	// Cross-check group order against brute-force enumeration on small
	// random graphs (n ≤ 7: at most 5040 permutations).
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(6)
		g := NewGraph(n)
		seen := map[[2]int]bool{}
		for e := 0; e < rng.Intn(n*(n-1)/2+1); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.AddEdge(a, b)
		}
		if rng.Intn(3) == 0 {
			g.SetColor(rng.Intn(n), 1)
		}
		want := bruteGroupOrder(g)
		res := FindAutomorphisms(g, Options{})
		if !res.Exact || res.Order.Cmp(big.NewInt(int64(want))) != 0 {
			t.Fatalf("iter %d (n=%d): |Aut| = %v, brute force %d", iter, n, res.Order, want)
		}
	}
}

// bruteGroupOrder counts automorphisms by enumerating all permutations.
func bruteGroupOrder(g *Graph) int {
	g.freeze()
	n := g.N()
	perm := make(Perm, n)
	used := make([]bool, n)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if g.isAutomorphism(perm) {
				count++
			}
			return
		}
		for v := 0; v < n; v++ {
			if used[v] || g.Color(v) != g.Color(i) || g.Degree(v) != g.Degree(i) {
				continue
			}
			used[v] = true
			perm[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return count
}

func TestGroupOrderFromChain(t *testing.T) {
	if got := GroupOrderFromChain([]int{3, 2, 1}); got.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("chain product = %v", got)
	}
	if got := GroupOrderFromChain(nil); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty chain = %v", got)
	}
}

package autom

import "math/big"

// This file implements a deterministic Schreier–Sims stabilizer chain. The
// individualization-refinement search already derives the group order from
// its own orbit products; the chain provides an independent certificate
// (used by tests and cross-checks) that the returned generators really
// generate a group of that order, mirroring how the paper's tools hand
// generator sets to GAP for inspection.

// Chain is a stabilizer chain for a permutation group on n points: level j
// holds the generators of G^(j) (the pointwise stabilizer of bases
// b_0..b_{j-1}) together with the orbit of b_j and a transversal.
type Chain struct {
	n      int
	levels []*chainLevel
}

type chainLevel struct {
	base        int
	gens        []Perm
	transversal map[int]Perm // orbit point -> permutation mapping base to it
}

// NewChain returns the chain of the trivial group on n points.
func NewChain(n int) *Chain {
	return &Chain{n: n}
}

// OrderOf computes |⟨gens⟩| for permutations on n points.
func OrderOf(n int, gens []Perm) *big.Int {
	c := NewChain(n)
	for _, g := range gens {
		c.Extend(g)
	}
	return c.Order()
}

// Order returns the group order: the product of orbit sizes down the chain.
func (c *Chain) Order() *big.Int {
	out := big.NewInt(1)
	for _, l := range c.levels {
		out.Mul(out, big.NewInt(int64(len(l.transversal))))
	}
	return out
}

// Contains reports whether g is in the group represented by the chain.
func (c *Chain) Contains(g Perm) bool {
	res, _ := c.stripFrom(0, g)
	return res.IsIdentity()
}

// Base returns the base points of the chain.
func (c *Chain) Base() []int {
	out := make([]int, len(c.levels))
	for i, l := range c.levels {
		out[i] = l.base
	}
	return out
}

// Extend adds a generator to the group, maintaining the chain invariants.
func (c *Chain) Extend(g Perm) {
	if len(g) != c.n {
		panic("autom: degree mismatch")
	}
	c.insertFrom(0, g)
}

// stripFrom sifts g through levels start.. and returns the residue and the
// level at which sifting stopped (len(levels) when fully stripped). The
// residue fixes the base points of all levels in [start, stop).
func (c *Chain) stripFrom(start int, g Perm) (Perm, int) {
	cur := g
	for i := start; i < len(c.levels); i++ {
		l := c.levels[i]
		img := cur[l.base]
		t, ok := l.transversal[img]
		if !ok {
			return cur, i
		}
		// cur := t⁻¹ ∘ cur fixes the level's base.
		cur = cur.Compose(t.Inverse())
	}
	return cur, len(c.levels)
}

// insertFrom sifts h from level min and, when a non-identity residue
// remains, installs it as a generator of every level in [min, stop] —
// the residue fixes those levels' bases but can still extend their orbits —
// then re-closes those orbits, sifting each Schreier generator into the
// next level down.
func (c *Chain) insertFrom(min int, h Perm) {
	res, stop := c.stripFrom(min, h)
	if res.IsIdentity() {
		return
	}
	if stop == len(c.levels) {
		// Residue fixes every existing base: open a new level on a point it
		// moves.
		b := -1
		for i, v := range res {
			if i != v {
				b = i
				break
			}
		}
		c.levels = append(c.levels, &chainLevel{
			base:        b,
			transversal: map[int]Perm{b: Identity(c.n)},
		})
	}
	for j := min; j <= stop && j < len(c.levels); j++ {
		c.levels[j].gens = append(c.levels[j].gens, res)
	}
	for j := min; j <= stop && j < len(c.levels); j++ {
		c.closeOrbit(j)
	}
}

// closeOrbit recomputes the orbit/transversal of level j under its current
// generators and sifts every Schreier generator into level j+1.
func (c *Chain) closeOrbit(j int) {
	l := c.levels[j]
	frontier := make([]int, 0, len(l.transversal))
	for p := range l.transversal {
		frontier = append(frontier, p)
	}
	for len(frontier) > 0 {
		p := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		tp := l.transversal[p]
		for _, g := range l.gens {
			q := g[p]
			tq, ok := l.transversal[q]
			if !ok {
				// New orbit point; transversal element is g ∘ t_p.
				l.transversal[q] = tp.Compose(g)
				frontier = append(frontier, q)
				continue
			}
			// Schreier generator t_q⁻¹ ∘ g ∘ t_p stabilizes the base; it is
			// a product of level-j generators, so it only carries new
			// information for deeper levels.
			s := tp.Compose(g).Compose(tq.Inverse())
			if s.IsIdentity() {
				continue
			}
			if s[l.base] != l.base {
				panic("autom: Schreier generator moves base")
			}
			c.insertFrom(j+1, s)
		}
	}
}

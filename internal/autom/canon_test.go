package autom

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// relabel applies perm to g: vertex v of g becomes perm[v].
func relabel(g *Graph, perm Perm) *Graph {
	out := NewGraph(g.N())
	for v := 0; v < g.N(); v++ {
		out.SetColor(perm[v], g.Color(v))
		for _, w := range g.adj[v] {
			if v < int(w) {
				out.AddEdge(perm[v], perm[int(w)])
			}
		}
	}
	return out
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

func randomPerm(rng *rand.Rand, n int) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestCanonicalFormInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		n := 4 + rng.Intn(12)
		g := randomGraph(rng, n, 0.4)
		c1 := CanonicalForm(g, CanonicalOptions{})
		if !c1.Exact {
			t.Fatalf("iter %d: inexact on n=%d", iter, n)
		}
		for trial := 0; trial < 3; trial++ {
			h := relabel(g, randomPerm(rng, n))
			c2 := CanonicalForm(h, CanonicalOptions{})
			if !bytes.Equal(c1.Bytes, c2.Bytes) {
				t.Fatalf("iter %d trial %d: canonical forms differ for isomorphic graphs", iter, trial)
			}
			if c1.Hash != c2.Hash {
				t.Fatalf("iter %d trial %d: hashes differ", iter, trial)
			}
		}
	}
}

// TestCanonicalFormSymmetricGraphs exercises graphs with large automorphism
// groups, where many leaves tie and the branching is widest.
func TestCanonicalFormSymmetricGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func(kind int, n int) *Graph {
		g := NewGraph(n)
		switch kind {
		case 0: // cycle
			for v := 0; v < n; v++ {
				g.AddEdge(v, (v+1)%n)
			}
		case 1: // complete bipartite halves
			for a := 0; a < n/2; a++ {
				for b := n / 2; b < n; b++ {
					g.AddEdge(a, b)
				}
			}
		case 2: // complete
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					g.AddEdge(a, b)
				}
			}
		}
		return g
	}
	for kind := 0; kind < 3; kind++ {
		g := build(kind, 8)
		c1 := CanonicalForm(g, CanonicalOptions{})
		for trial := 0; trial < 5; trial++ {
			h := relabel(build(kind, 8), randomPerm(rng, 8))
			c2 := CanonicalForm(h, CanonicalOptions{})
			if !bytes.Equal(c1.Bytes, c2.Bytes) {
				t.Fatalf("kind %d: canonical forms differ", kind)
			}
		}
	}
}

func TestCanonicalFormDistinguishesNonIsomorphic(t *testing.T) {
	// Path P4 and star K1,3: same vertex and edge counts, different shape.
	path := NewGraph(4)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	path.AddEdge(2, 3)
	star := NewGraph(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	cp := CanonicalForm(path, CanonicalOptions{})
	cs := CanonicalForm(star, CanonicalOptions{})
	if bytes.Equal(cp.Bytes, cs.Bytes) {
		t.Fatal("P4 and K1,3 got equal canonical forms")
	}
}

func TestCanonicalFormRespectsColors(t *testing.T) {
	// Same structure, different color classes: must not collide.
	a := NewGraph(3)
	a.AddEdge(0, 1)
	b := NewGraph(3)
	b.AddEdge(0, 1)
	b.SetColor(2, 1)
	ca := CanonicalForm(a, CanonicalOptions{})
	cb := CanonicalForm(b, CanonicalOptions{})
	if bytes.Equal(ca.Bytes, cb.Bytes) {
		t.Fatal("differently colored graphs got equal canonical forms")
	}
}

// TestCanonicalFormPermIsValidRelabeling checks that Perm really maps the
// input onto the graph the encoding describes: relabeling g by Perm and
// re-encoding the identity labeling must reproduce Bytes.
func TestCanonicalFormPermIsValidRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 10; iter++ {
		g := randomGraph(rng, 10, 0.5)
		c := CanonicalForm(g, CanonicalOptions{})
		h := relabel(g, c.Perm)
		h.freeze()
		lab := make([]int, h.N())
		for i := range lab {
			lab[i] = i
		}
		enc := encodeCanonical(h, lab, adjacencyBits(h, lab))
		if !bytes.Equal(enc, c.Bytes) {
			t.Fatalf("iter %d: Perm does not reproduce the canonical encoding", iter)
		}
	}
}

func TestCanonicalFormBudget(t *testing.T) {
	// A graph with a big automorphism group under a tiny node budget: the
	// result must still be a valid relabeling, just inexact.
	g := NewGraph(12)
	for a := 0; a < 6; a++ {
		for b := 6; b < 12; b++ {
			g.AddEdge(a, b)
		}
	}
	c := CanonicalForm(g, CanonicalOptions{MaxNodes: 3})
	if c.Exact {
		t.Fatal("expected inexact under MaxNodes=3")
	}
	seen := make([]bool, 12)
	for _, p := range c.Perm {
		if p < 0 || p >= 12 || seen[p] {
			t.Fatal("Perm is not a permutation")
		}
		seen[p] = true
	}
}

func TestCanonicalFormCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 0.5)
	c := CanonicalForm(g, CanonicalOptions{Context: ctx})
	// The leftmost leaf always completes, so the form is usable even when
	// the context is already dead.
	if len(c.Perm) != 30 || len(c.Bytes) == 0 {
		t.Fatal("no usable canonical form")
	}
}

func TestCanonicalFormEmptyAndTrivial(t *testing.T) {
	e := CanonicalForm(NewGraph(0), CanonicalOptions{})
	if !e.Exact || len(e.Perm) != 0 {
		t.Fatal("empty graph")
	}
	one := CanonicalForm(NewGraph(1), CanonicalOptions{})
	if !one.Exact || len(one.Perm) != 1 {
		t.Fatal("single vertex")
	}
}

package autom

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
)

// CanonicalOptions bound the canonical labeling search.
type CanonicalOptions struct {
	// MaxNodes caps individualization steps; 0 selects the default of
	// 200000. When exceeded the result is still a valid relabelling of the
	// input (equal encodings still imply isomorphic graphs) but is no
	// longer guaranteed to agree across isomorphic inputs, and Exact is
	// false.
	MaxNodes int64
	// Context, when non-nil, aborts the search early (Exact=false) once
	// cancelled. Cancellation is observed on an amortized schedule that is
	// independent of node progress, so it is honored during
	// refinement-heavy stretches and on the first descent.
	Context context.Context
	// DisablePruning turns off automorphism discovery, orbit pruning and
	// incumbent prefix pruning, exploring every child of every
	// non-singleton cell. The canonical encoding is identical either way —
	// pruning provably preserves the minimum leaf — so the switch exists
	// only as the baseline for soundness tests and benchmarks.
	DisablePruning bool
}

// Canonical is a canonical form of a colored graph: a relabelling chosen
// invariantly under isomorphism, so two isomorphic graphs (with matching
// color multisets) produce byte-identical encodings. This is the key the
// service-layer result cache dedups on — isomorphic submissions are
// symmetric instances of the same coloring problem (cf. Walsh 2008;
// Itzhakov & Codish 2015), so one solve serves them all.
type Canonical struct {
	// Perm maps each input vertex to its position in the canonical
	// labeling: vertex v becomes canonical vertex Perm[v].
	Perm Perm
	// Bytes encodes the relabelled graph: vertex count, per-position
	// colors, and the column-major upper-triangle adjacency bitmap. Two
	// graphs with equal Bytes are isomorphic (the encoding reconstructs
	// the graph); when Exact is true the converse also holds for
	// isomorphic inputs.
	Bytes []byte
	// Hash is the SHA-256 of Bytes, a compact cache key.
	Hash [sha256.Size]byte
	// Exact reports whether the full canonical search completed.
	Exact bool
	// Nodes counts individualization steps performed.
	Nodes int64
	// Generators are verified automorphisms of the input graph discovered
	// as a byproduct of the search (a leaf whose encoding ties the
	// incumbent exhibits one). They generate a subgroup of the full
	// automorphism group — enough to feed symmetry-breaking predicates,
	// not guaranteed to be a complete generating set.
	Generators []Perm
	// OrbitPrunes counts sibling candidates skipped because a discovered
	// automorphism maps them onto an already-explored sibling.
	OrbitPrunes int64
	// PrefixPrunes counts subtrees cut because their determined encoding
	// prefix already exceeded the incumbent leaf.
	PrefixPrunes int64
}

type canonizer struct {
	g        *Graph
	cnt      []int
	maxNodes int64
	nodes    int64
	tick     int64
	aborted  bool
	disable  bool
	ctx      context.Context

	best    []byte // column-major adjacency bitmap of the best (minimal) leaf
	bestLab []int  // elems of the best leaf: position -> vertex
	bestVer int64  // bumped whenever best is replaced

	gens         []Perm     // verified automorphisms from equal-leaf collisions
	uf           *unionFind // global orbits under gens (root-level stabilizer)
	gensVer      int64
	orbitPrunes  int64
	prefixPrunes int64
}

// CanonicalForm computes a canonical labeling of g by
// individualization-refinement: descend the refinement tree, branching on
// the first non-singleton cell, and keep the leaf whose relabelled
// adjacency bitmap is lexicographically minimal (bit order: pair (i,j),
// i<j, at index j(j-1)/2+i). Cell order under equitable refinement is
// label-invariant, so the set of leaf encodings — and hence their minimum —
// depends only on the isomorphism class of g.
//
// The search prunes nauty/Traces-style without changing that minimum:
// a leaf whose encoding ties the incumbent exhibits an automorphism
// (verified, recorded in a union-find), siblings in the same orbit under
// the node's discovered stabilizer are skipped, and subtrees whose
// determined encoding prefix already exceeds the incumbent are cut.
//
// The search is exponential in the worst case; MaxNodes bounds it. On
// budget exhaustion the best leaf found so far is returned with
// Exact=false: still a sound cache key (equal encodings remain
// isomorphic), merely no longer guaranteed to collide for isomorphic
// inputs.
func CanonicalForm(g *Graph, opts CanonicalOptions) *Canonical {
	g.freeze()
	n := g.n
	out := &Canonical{Perm: Identity(n), Exact: true}
	if n == 0 {
		out.Bytes = encodeCanonical(g, nil, nil)
		out.Hash = sha256.Sum256(out.Bytes)
		return out
	}
	c := &canonizer{
		g:        g,
		cnt:      make([]int, n),
		maxNodes: opts.MaxNodes,
		ctx:      opts.Context,
		disable:  opts.DisablePruning,
		uf:       newUnionFind(n),
	}
	if c.maxNodes == 0 {
		c.maxNodes = 200000
	}
	p := newPartition(g.colors)
	work := []int{}
	for i := 0; i < n; i += p.clen[i] {
		work = append(work, i)
	}
	refineRecord(g, p, work, c.cnt, c.pollCancel)
	c.explore(p, 0, 0)
	if c.bestLab == nil {
		// The context died before the first leaf completed: fall back to
		// the root-refined ordering. Still a valid relabelling (sound key,
		// equal encodings imply isomorphic graphs), just inexact.
		c.aborted = true
		c.bestLab = append([]int(nil), p.elems...)
		c.best = adjacencyBits(g, c.bestLab)
	}
	out.Perm = make(Perm, n)
	for pos, v := range c.bestLab {
		out.Perm[v] = pos
	}
	out.Bytes = encodeCanonical(g, c.bestLab, c.best)
	out.Hash = sha256.Sum256(out.Bytes)
	out.Exact = !c.aborted
	out.Nodes = c.nodes
	out.Generators = c.gens
	out.OrbitPrunes = c.orbitPrunes
	out.PrefixPrunes = c.prefixPrunes
	return out
}

// explore walks the individualization-refinement tree depth-first.
// fixed is the parent's determined prefix length (singleton positions);
// cmp is the comparison of the node's determined encoding prefix against
// the incumbent leaf: 0 equal so far, -1 already strictly smaller. A node
// whose prefix exceeds the incumbent never recurses (prefix pruning),
// candidates mapped onto an explored sibling by a discovered automorphism
// are skipped (orbit pruning), and a leaf that ties the incumbent yields a
// verified generator instead of a relabelling.
func (c *canonizer) explore(p *partition, fixed, cmp int) {
	t := p.firstNonSingleton()
	det := t
	if t < 0 {
		det = p.n()
	}
	if !c.disable && cmp == 0 && c.best != nil && det > fixed {
		switch c.compareColumns(p.elems, fixed, det) {
		case 1:
			c.prefixPrunes++
			return
		case -1:
			cmp = -1
		}
	}
	if t < 0 {
		c.leaf(p, cmp)
		return
	}
	cands := append([]int(nil), p.elems[t:t+p.clen[t]]...)
	var (
		localUF  *unionFind
		localVer int64 = -1
		explored []int
	)
	ver := c.bestVer
	for _, u := range cands {
		if c.budgetExceeded() {
			return
		}
		if !c.disable && len(c.gens) > 0 && len(explored) > 0 {
			if localVer != c.gensVer {
				localUF = c.stabilizerOrbits(p, t)
				localVer = c.gensVer
			}
			skip := false
			for _, w := range explored {
				if localUF.same(u, w) {
					skip = true
					break
				}
			}
			if skip {
				c.orbitPrunes++
				continue
			}
		}
		cp := p.copy()
		cp.individualize(u)
		c.nodes++
		refineRecord(c.g, cp, []int{t, t + 1}, c.cnt, c.pollCancel)
		if c.aborted {
			return
		}
		c.explore(cp, det, cmp)
		if c.bestVer != ver {
			// A descendant installed a new incumbent. Every new best found
			// inside this loop descends from this node, so the node's
			// determined prefix is a prefix of it: cmp resets to equal.
			cmp = 0
			ver = c.bestVer
		}
		explored = append(explored, u)
	}
}

// leaf handles a discrete partition: install a strictly smaller leaf as
// the incumbent, or — when it ties the incumbent byte-for-byte — record
// the position-wise map between the two labelings as an automorphism.
func (c *canonizer) leaf(p *partition, cmp int) {
	if c.best == nil {
		c.setBest(p.elems)
		return
	}
	if c.disable {
		// No prefix comparisons were made on the way down; compare the
		// whole leaf here and keep only strictly smaller ones.
		if c.compareColumns(p.elems, 0, p.n()) < 0 {
			c.setBest(p.elems)
		}
		return
	}
	switch cmp {
	case -1:
		c.setBest(p.elems)
	case 0:
		// Equal encodings: bestLab[i] -> elems[i] preserves adjacency and
		// (since refinement never moves vertices across the initial color
		// cells) colors. Verify defensively before trusting it.
		perm := make(Perm, c.g.n)
		for i, v := range c.bestLab {
			perm[v] = p.elems[i]
		}
		if !perm.IsIdentity() && c.g.isAutomorphism(perm) {
			c.gens = append(c.gens, perm)
			c.uf.addPerm(perm)
			c.gensVer++
		}
	}
}

func (c *canonizer) setBest(elems []int) {
	c.best = adjacencyBits(c.g, elems)
	c.bestLab = append(c.bestLab[:0], elems...)
	c.bestVer++
}

// stabilizerOrbits returns vertex orbits under the discovered generators
// that fix the node's determined prefix pointwise — exactly the group
// elements that permute the node's subtrees among themselves, which is
// what makes skipping same-orbit siblings sound. At the root (empty
// prefix) that is the whole discovered group, for which the global
// union-find is maintained incrementally.
func (c *canonizer) stabilizerOrbits(p *partition, t int) *unionFind {
	if t == 0 {
		return c.uf
	}
	uf := newUnionFind(c.g.n)
	for _, gen := range c.gens {
		fixesPrefix := true
		for i := 0; i < t; i++ {
			if v := p.elems[i]; gen[v] != v {
				fixesPrefix = false
				break
			}
		}
		if fixesPrefix {
			uf.addPerm(gen)
		}
	}
	return uf
}

// compareColumns compares adjacency columns [lo, hi) of the current
// labeling against the incumbent leaf in canonical bit order. Because bit
// (i,j) lives at index j(j-1)/2+i, the pairs internal to the first t
// positions occupy the contiguous index range [0, t(t-1)/2): once those
// positions are singletons the comparison is final for every leaf below —
// the invariant prefix pruning rests on.
func (c *canonizer) compareColumns(elems []int, lo, hi int) int {
	if lo < 1 {
		lo = 1
	}
	k := lo * (lo - 1) / 2
	for j := lo; j < hi; j++ {
		vj := elems[j]
		for i := 0; i < j; i, k = i+1, k+1 {
			mine := c.g.hasEdge(elems[i], vj)
			if best := c.best[k/8]&(1<<uint(k%8)) != 0; mine != best {
				if best {
					return -1
				}
				return 1
			}
		}
	}
	return 0
}

// budgetExceeded stops the search once the node budget is spent (but never
// before a first leaf exists, so the result is always usable) or the
// context is cancelled (checked even before the first leaf: a dead context
// falls back to the root-refined labeling).
func (c *canonizer) budgetExceeded() bool {
	if c.aborted {
		return true
	}
	if c.best != nil && c.nodes >= c.maxNodes {
		c.aborted = true
		return true
	}
	return c.pollCancel()
}

// pollCancel samples the context on an amortized schedule independent of
// node progress; it is also the stop hook threaded into refinement
// worklist loops, bounding cancellation latency during refinement-heavy
// stretches and on the first descent.
func (c *canonizer) pollCancel() bool {
	if c.aborted {
		return true
	}
	if c.ctx == nil {
		return false
	}
	c.tick++
	if c.tick&15 != 0 {
		return false
	}
	if c.ctx.Err() != nil {
		c.aborted = true
		return true
	}
	return false
}

// adjacencyBits packs the upper triangle of the relabelled adjacency
// matrix column-major: bit (i,j), i<j, set when lab[i] and lab[j] are
// adjacent, at index j(j-1)/2+i. Column-major order is load-bearing: all
// pairs among the first t positions precede every pair reaching past
// them, so a singleton prefix determines a contiguous encoding prefix.
func adjacencyBits(g *Graph, lab []int) []byte {
	n := len(lab)
	out := make([]byte, (n*(n-1)/2+7)/8)
	k := 0
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if g.hasEdge(lab[i], lab[j]) {
				out[k/8] |= 1 << uint(k%8)
			}
			k++
		}
	}
	return out
}

// encodeCanonical serializes (n, per-position colors, adjacency bitmap).
// The color sequence by canonical position is itself label-invariant
// (refinement orders cells by color), so including it keeps differently
// colored but structurally equal graphs from colliding.
func encodeCanonical(g *Graph, lab []int, adj []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(g.n))
	for _, v := range lab {
		out = binary.AppendVarint(out, int64(g.colors[v]))
	}
	out = append(out, adj...)
	return out
}

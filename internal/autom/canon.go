package autom

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
)

// CanonicalOptions bound the canonical labeling search.
type CanonicalOptions struct {
	// MaxNodes caps individualization steps; 0 selects the default of
	// 200000. When exceeded the result is still a valid relabelling of the
	// input (equal encodings still imply isomorphic graphs) but is no
	// longer guaranteed to agree across isomorphic inputs, and Exact is
	// false.
	MaxNodes int64
	// Context, when non-nil, aborts the search early (Exact=false) once
	// cancelled.
	Context context.Context
}

// Canonical is a canonical form of a colored graph: a relabelling chosen
// invariantly under isomorphism, so two isomorphic graphs (with matching
// color multisets) produce byte-identical encodings. This is the key the
// service-layer result cache dedups on — isomorphic submissions are
// symmetric instances of the same coloring problem (cf. Walsh 2008;
// Itzhakov & Codish 2015), so one solve serves them all.
type Canonical struct {
	// Perm maps each input vertex to its position in the canonical
	// labeling: vertex v becomes canonical vertex Perm[v].
	Perm Perm
	// Bytes encodes the relabelled graph: vertex count, per-position
	// colors, and the upper-triangle adjacency bitmap. Two graphs with
	// equal Bytes are isomorphic (the encoding reconstructs the graph);
	// when Exact is true the converse also holds for isomorphic inputs.
	Bytes []byte
	// Hash is the SHA-256 of Bytes, a compact cache key.
	Hash [sha256.Size]byte
	// Exact reports whether the full canonical search completed.
	Exact bool
	// Nodes counts individualization steps performed.
	Nodes int64
}

type canonizer struct {
	g        *Graph
	cnt      []int
	maxNodes int64
	nodes    int64
	aborted  bool
	ctx      context.Context
	best     []byte // adjacency bitmap of the best (minimal) leaf so far
	bestLab  []int  // elems of the best leaf: position -> vertex
}

// CanonicalForm computes a canonical labeling of g by
// individualization-refinement: descend the refinement tree, branching on
// every vertex of the first non-singleton cell, and keep the leaf whose
// relabelled adjacency bitmap is lexicographically minimal. Cell order
// under equitable refinement is label-invariant (cells sort by color, then
// by splitter degree counts), so the set of leaf encodings — and hence
// their minimum — depends only on the isomorphism class of g.
//
// The search is exponential in the worst case; MaxNodes bounds it. On
// budget exhaustion the best leaf found so far is returned with
// Exact=false: still a sound cache key (equal encodings remain
// isomorphic), merely no longer guaranteed to collide for isomorphic
// inputs.
func CanonicalForm(g *Graph, opts CanonicalOptions) *Canonical {
	g.freeze()
	n := g.n
	out := &Canonical{Perm: Identity(n), Exact: true}
	if n == 0 {
		out.Bytes = encodeCanonical(g, nil, nil)
		out.Hash = sha256.Sum256(out.Bytes)
		return out
	}
	c := &canonizer{
		g:        g,
		cnt:      make([]int, n),
		maxNodes: opts.MaxNodes,
		ctx:      opts.Context,
	}
	if c.maxNodes == 0 {
		c.maxNodes = 200000
	}
	p := newPartition(g.colors)
	work := []int{}
	for i := 0; i < n; i += p.clen[i] {
		work = append(work, i)
	}
	refineRecord(g, p, work, c.cnt)
	c.explore(p)
	out.Perm = make(Perm, n)
	for pos, v := range c.bestLab {
		out.Perm[v] = pos
	}
	out.Bytes = encodeCanonical(g, c.bestLab, c.best)
	out.Hash = sha256.Sum256(out.Bytes)
	out.Exact = !c.aborted
	out.Nodes = c.nodes
	return out
}

// explore walks the individualization-refinement tree depth-first. The
// leftmost descent always completes (the budget only cuts off once a first
// leaf exists), so bestLab is never nil on return.
func (c *canonizer) explore(p *partition) {
	t := p.firstNonSingleton()
	if t < 0 {
		leaf := adjacencyBits(c.g, p.elems)
		if c.best == nil || bytes.Compare(leaf, c.best) < 0 {
			c.best = leaf
			c.bestLab = append([]int(nil), p.elems...)
		}
		return
	}
	cands := append([]int(nil), p.elems[t:t+p.clen[t]]...)
	for _, u := range cands {
		if c.budgetExceeded() {
			return
		}
		cp := p.copy()
		cp.individualize(u)
		c.nodes++
		refineRecord(c.g, cp, []int{t, t + 1}, c.cnt)
		c.explore(cp)
	}
}

func (c *canonizer) budgetExceeded() bool {
	if c.best == nil {
		return false // always finish the leftmost leaf
	}
	if c.aborted {
		return true
	}
	if c.nodes >= c.maxNodes {
		c.aborted = true
		return true
	}
	if c.ctx != nil && c.nodes%64 == 0 && c.ctx.Err() != nil {
		c.aborted = true
		return true
	}
	return false
}

// adjacencyBits packs the upper triangle of the relabelled adjacency
// matrix: bit (i,j), i<j, is set when lab[i] and lab[j] are adjacent.
func adjacencyBits(g *Graph, lab []int) []byte {
	n := len(lab)
	out := make([]byte, (n*(n-1)/2+7)/8)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.hasEdge(lab[i], lab[j]) {
				out[k/8] |= 1 << uint(k%8)
			}
			k++
		}
	}
	return out
}

// encodeCanonical serializes (n, per-position colors, adjacency bitmap).
// The color sequence by canonical position is itself label-invariant
// (refinement orders cells by color), so including it keeps differently
// colored but structurally equal graphs from colliding.
func encodeCanonical(g *Graph, lab []int, adj []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(g.n))
	for _, v := range lab {
		out = binary.AppendVarint(out, int64(g.colors[v]))
	}
	out = append(out, adj...)
	return out
}

// Package autom detects automorphisms of vertex-colored undirected graphs,
// the engine behind instance-dependent symmetry detection (paper §2.4). It
// plays the role of Saucy (Darga et al. 2004): given a colored graph it
// returns a set of generators for the automorphism group, found by
// individualization-refinement search with orbit pruning, plus the exact
// group order obtained from the orbit-stabilizer products of the search.
package autom

import (
	"fmt"
	"math/big"
	"sort"
)

// Graph is an undirected graph with integer vertex colors. Only
// automorphisms that preserve colors are considered.
type Graph struct {
	n      int
	adj    [][]int32
	colors []int
	frozen bool
}

// NewGraph returns a graph with n vertices, all colored 0.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int32, n), colors: make([]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge. Duplicate edges must not be added.
func (g *Graph) AddEdge(a, b int) {
	if g.frozen {
		panic("autom: AddEdge after search started")
	}
	if a == b {
		panic("autom: self loop")
	}
	g.adj[a] = append(g.adj[a], int32(b))
	g.adj[b] = append(g.adj[b], int32(a))
}

// SetColor assigns a color class to vertex v.
func (g *Graph) SetColor(v, color int) {
	if g.frozen {
		panic("autom: SetColor after search started")
	}
	g.colors[v] = color
}

// Color returns the color of v.
func (g *Graph) Color(v int) int { return g.colors[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

func (g *Graph) freeze() {
	if g.frozen {
		return
	}
	g.frozen = true
	for v := range g.adj {
		a := g.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
}

// hasEdge reports adjacency via binary search (adjacency lists are sorted
// once the graph is frozen).
func (g *Graph) hasEdge(a, b int) bool {
	l := g.adj[a]
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case l[mid] < int32(b):
			lo = mid + 1
		case l[mid] > int32(b):
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Perm is a vertex permutation: Perm[v] is the image of v.
type Perm []int

// Identity returns the identity permutation on n points.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// IsIdentity reports whether the permutation fixes every point.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if i != v {
			return false
		}
	}
	return true
}

// Support returns the points moved by the permutation, ascending.
func (p Perm) Support() []int {
	var out []int
	for i, v := range p {
		if i != v {
			out = append(out, i)
		}
	}
	return out
}

// Compose returns q∘p: first apply p, then q.
func (p Perm) Compose(q Perm) Perm {
	out := make(Perm, len(p))
	for i := range p {
		out[i] = q[p[i]]
	}
	return out
}

// Inverse returns the inverse permutation.
func (p Perm) Inverse() Perm {
	out := make(Perm, len(p))
	for i, v := range p {
		out[v] = i
	}
	return out
}

// Cycles renders the permutation in disjoint cycle notation, e.g.
// "(0 1 2)(4 5)".
func (p Perm) Cycles() string {
	seen := make([]bool, len(p))
	out := ""
	for i := range p {
		if seen[i] || p[i] == i {
			continue
		}
		cyc := []int{}
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
			cyc = append(cyc, j)
		}
		out += "("
		for k, v := range cyc {
			if k > 0 {
				out += " "
			}
			out += fmt.Sprintf("%d", v)
		}
		out += ")"
	}
	if out == "" {
		return "()"
	}
	return out
}

// isAutomorphism verifies that p preserves colors and adjacency exactly.
func (g *Graph) isAutomorphism(p Perm) bool {
	for v := 0; v < g.n; v++ {
		if g.colors[p[v]] != g.colors[v] {
			return false
		}
		if len(g.adj[p[v]]) != len(g.adj[v]) {
			return false
		}
		for _, w := range g.adj[v] {
			if !g.hasEdge(p[v], p[int(w)]) {
				return false
			}
		}
	}
	return true
}

// unionFind tracks vertex orbits under a growing set of generators.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

func (u *unionFind) same(a, b int) bool { return u.find(a) == u.find(b) }

// addPerm merges the orbits moved by a permutation.
func (u *unionFind) addPerm(p Perm) {
	for i, v := range p {
		if i != v {
			u.union(i, v)
		}
	}
}

// Orbits groups 0..n-1 into orbits under the given generators; singleton
// orbits are included. Each orbit is ascending; orbits are ordered by their
// minimum element.
func Orbits(n int, gens []Perm) [][]int {
	uf := newUnionFind(n)
	for _, g := range gens {
		uf.addPerm(g)
	}
	byRoot := map[int][]int{}
	for v := 0; v < n; v++ {
		r := uf.find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return byRoot[roots[i]][0] < byRoot[roots[j]][0] })
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// GroupOrderFromChain multiplies orbit sizes along a stabilizer chain; used
// internally and exported for tests.
func GroupOrderFromChain(orbitSizes []int) *big.Int {
	out := big.NewInt(1)
	for _, s := range orbitSizes {
		out.Mul(out, big.NewInt(int64(s)))
	}
	return out
}

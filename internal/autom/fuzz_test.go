package autom

import (
	"bytes"
	"testing"
)

// graphFromFuzz decodes fuzz input into a small graph plus a permutation
// of its vertices, deterministically. Byte 0 picks the vertex count; the
// following n*(n-1)/2 bits (MSB-first across bytes) select edges; the
// remaining bytes drive Fisher-Yates swaps for the permutation.
func graphFromFuzz(data []byte) (*Graph, Perm, bool) {
	if len(data) < 2 {
		return nil, nil, false
	}
	n := 2 + int(data[0]%10)
	g := NewGraph(n)
	bit := 0
	rest := data[1:]
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			byteIdx := bit / 8
			if byteIdx < len(rest) && rest[byteIdx]&(1<<(7-bit%8)) != 0 {
				g.AddEdge(a, b)
			}
			bit++
		}
	}
	perm := Identity(n)
	permBytes := rest
	if bit/8+1 < len(rest) {
		permBytes = rest[bit/8+1:]
	}
	for i, b := range permBytes {
		j := i % n
		k := int(b) % n
		perm[j], perm[k] = perm[k], perm[j]
	}
	return g, perm, true
}

// fuzzSeed builds a corpus entry reproducing g under graphFromFuzz's
// decoding (vertex-count byte, MSB-first edge bits, permutation swap
// bytes), so structured graphs can be planted in the seed corpus.
func fuzzSeed(g *Graph, permBytes ...byte) []byte {
	n := g.N()
	if n < 2 || n > 11 {
		panic("fuzzSeed: vertex count outside decodable range")
	}
	g.freeze()
	edgeBytes := make([]byte, (n*(n-1)/2+7)/8)
	bit := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.hasEdge(a, b) {
				edgeBytes[bit/8] |= 1 << (7 - bit%8)
			}
			bit++
		}
	}
	out := append([]byte{byte(n - 2)}, edgeBytes...)
	return append(out, permBytes...)
}

// FuzzCanonicalForm checks the canonical-labeling invariant the service's
// isomorphism cache depends on: relabeling a graph by any permutation must
// canonicalize to the identical encoding, and the reported Perm must be a
// valid permutation.
func FuzzCanonicalForm(f *testing.F) {
	f.Add([]byte{3, 0xFF, 1, 2})
	f.Add([]byte{5, 0xA5, 0x5A, 3, 1, 4})
	f.Add([]byte{9, 0x12, 0x34, 0x56, 0x78, 0x9A, 7, 2, 5, 0, 1})
	f.Add([]byte{2, 0x80})
	// Vertex-transitive seeds: wide refinement cells exercise the orbit /
	// prefix pruning and leaf-automorphism paths of the search.
	f.Add(fuzzSeed(cycleGraph(10), 7, 3, 1))
	f.Add(fuzzSeed(cycleGraph(11), 2, 9))
	f.Add(fuzzSeed(petersenGraph(), 4, 8, 1, 6))
	f.Add(fuzzSeed(completeBipartite(5), 5, 2, 7))
	f.Add(fuzzSeed(completeGraph(7), 1, 3))
	f.Add(fuzzSeed(circulantGraph(11, 1, 3), 6, 0, 2))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, perm, ok := graphFromFuzz(data)
		if !ok {
			return
		}
		// Graphs with many interchangeable vertices (e.g. isolated ones)
		// can exhaust even a generous node budget; the cache-consistency
		// invariant is only promised for exact searches, so truncated
		// ones are skipped (their Perm must still be valid, below).
		opts := CanonicalOptions{MaxNodes: 2_000_000}
		c1 := CanonicalForm(g, opts)
		h := relabel(g, perm)
		c2 := CanonicalForm(h, opts)
		if c1.Exact && c2.Exact {
			if !bytes.Equal(c1.Bytes, c2.Bytes) || c1.Hash != c2.Hash {
				t.Fatalf("isomorphic graphs canonicalized differently (n=%d, perm=%v)", g.N(), perm)
			}
		}
		for _, c := range []*Canonical{c1, c2} {
			seen := make([]bool, g.N())
			for _, p := range c.Perm {
				if p < 0 || p >= g.N() || seen[p] {
					t.Fatalf("canonical Perm %v is not a permutation of %d vertices", c.Perm, g.N())
				}
				seen[p] = true
			}
		}
	})
}

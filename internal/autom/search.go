package autom

import (
	"context"
	"math/big"
	"time"
)

// Options bound the automorphism search.
type Options struct {
	// MaxNodes caps individualization steps across the whole search;
	// 0 selects the default of 500000. When exceeded the result is still
	// sound (every reported generator is an automorphism) but possibly
	// incomplete, and Exact is false.
	MaxNodes int64
	// Deadline stops the search when passed (zero = none).
	Deadline time.Time
	// Context, when non-nil, aborts the search (sound but inexact result)
	// once cancelled; checked on the same amortized schedule as Deadline.
	Context context.Context
}

// Result reports the discovered automorphism group.
type Result struct {
	// Generators generate (a subgroup of) the automorphism group. Identity
	// is never included.
	Generators []Perm
	// Order is the group order computed from orbit-stabilizer products
	// along the search base. Exact when Exact is true, otherwise a lower
	// bound.
	Order *big.Int
	// Exact reports whether the search ran to completion.
	Exact bool
	// Nodes is the number of individualization steps performed.
	Nodes int64
	// BaseLen is the length of the stabilizer base (search depth).
	BaseLen int
	// Time is the wall-clock search duration.
	Time time.Duration
}

type level struct {
	snapshot *partition // partition before individualization at this level
	target   int        // target cell start (position-aligned on all branches)
	base     int        // vertex individualized on the canonical path
	tr       *trace     // refinement transcript after individualization
}

type searcher struct {
	g        *Graph
	opts     Options
	levels   []level
	leafLeft []int
	uf       *unionFind
	gens     []Perm
	nodes    int64
	maxNodes int64
	tick     int64
	aborted  bool
	cnt      []int // shared scratch for refinement
	deadline time.Time
	ctx      context.Context
}

// FindAutomorphisms searches for generators of the color-preserving
// automorphism group of g (Saucy-style individualization-refinement with
// orbit pruning) and computes the group order from the stabilizer chain.
func FindAutomorphisms(g *Graph, opts Options) *Result {
	start := time.Now()
	g.freeze()
	n := g.n
	res := &Result{Order: big.NewInt(1), Exact: true}
	if n == 0 {
		res.Time = time.Since(start)
		return res
	}
	s := &searcher{
		g:        g,
		opts:     opts,
		uf:       newUnionFind(n),
		maxNodes: opts.MaxNodes,
		cnt:      make([]int, n),
		deadline: opts.Deadline,
		ctx:      opts.Context,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 500000
	}

	// Canonical (left) path: repeatedly individualize the first vertex of
	// the first non-singleton cell and refine, recording transcripts.
	p := newPartition(g.colors)
	work := []int{}
	for i := 0; i < n; i += p.clen[i] {
		work = append(work, i)
	}
	refineRecord(g, p, work, s.cnt, s.pollCancel)
	for {
		t := p.firstNonSingleton()
		if t < 0 || s.budgetExceeded() {
			break
		}
		snap := p.copy()
		b := p.elems[t]
		p.individualize(b)
		s.nodes++
		tr := refineRecord(g, p, []int{t, t + 1}, s.cnt, s.pollCancel)
		s.levels = append(s.levels, level{snapshot: snap, target: t, base: b, tr: tr})
	}
	s.leafLeft = append([]int(nil), p.elems...)
	res.BaseLen = len(s.levels)

	// Bottom-up candidate exploration: generators found at level L fix all
	// base points above L, so one union-find accumulates valid stabilizer
	// orbits for every level processed afterwards.
	orbitSizes := make([]int, len(s.levels))
	for L := len(s.levels) - 1; L >= 0; L-- {
		lvl := s.levels[L]
		t := lvl.target
		cands := lvl.snapshot.elems[t : t+lvl.snapshot.clen[t]]
		for _, u := range cands {
			if u == lvl.base || s.uf.same(u, lvl.base) {
				continue
			}
			if s.budgetExceeded() {
				break
			}
			cp := lvl.snapshot.copy()
			cp.individualize(u)
			s.nodes++
			if refineReplay(g, cp, lvl.tr, s.cnt, s.pollCancel) {
				s.dfs(cp, L+1)
			}
		}
		// Orbit of the base vertex within its cell (base included).
		sz := 0
		for _, u := range cands {
			if s.uf.same(u, lvl.base) {
				sz++
			}
		}
		orbitSizes[L] = sz
	}

	res.Generators = s.gens
	res.Order = GroupOrderFromChain(orbitSizes)
	res.Exact = !s.aborted
	res.Nodes = s.nodes
	res.Time = time.Since(start)
	return res
}

func (s *searcher) budgetExceeded() bool {
	if s.aborted {
		return true
	}
	if s.nodes >= s.maxNodes {
		s.aborted = true
		return true
	}
	return s.pollCancel()
}

// pollCancel samples the context and deadline on an amortized schedule
// (every 16 polls) that is independent of node progress — the old
// nodes%64 gate could starve for the whole of a refinement-heavy stretch.
// It doubles as the stop hook threaded into refineRecord/refineReplay, so
// cancellation latency is bounded even inside a single refinement.
// Aborting mid-search is sound: every generator is verified by
// isAutomorphism before being reported.
func (s *searcher) pollCancel() bool {
	if s.aborted {
		return true
	}
	if s.ctx == nil && s.deadline.IsZero() {
		return false
	}
	s.tick++
	if s.tick&15 != 0 {
		return false
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		s.aborted = true
		return true
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.aborted = true
		return true
	}
	return false
}

// dfs searches for one automorphism extending the current deviation branch.
// Returns true when a generator was recorded.
func (s *searcher) dfs(cp *partition, lvl int) bool {
	if lvl == len(s.levels) {
		// Discrete leaf: candidate maps the left leaf onto this leaf.
		perm := make(Perm, s.g.n)
		for i, v := range s.leafLeft {
			perm[v] = cp.elems[i]
		}
		if perm.IsIdentity() || !s.g.isAutomorphism(perm) {
			return false
		}
		s.gens = append(s.gens, perm)
		s.uf.addPerm(perm)
		return true
	}
	t := s.levels[lvl].target
	b := s.levels[lvl].base
	cl := cp.clen[t]
	cands := make([]int, cl)
	copy(cands, cp.elems[t:t+cl])
	// Prefer continuing along the left base vertex: it usually completes
	// the mapping immediately.
	for i, u := range cands {
		if u == b && i != 0 {
			cands[0], cands[i] = cands[i], cands[0]
			break
		}
	}
	for _, u := range cands {
		if s.budgetExceeded() {
			return false
		}
		cp2 := cp.copy()
		cp2.individualize(u)
		s.nodes++
		if !refineReplay(s.g, cp2, s.levels[lvl].tr, s.cnt, s.pollCancel) {
			continue
		}
		if s.dfs(cp2, lvl+1) {
			return true
		}
	}
	return false
}

package autom

import "sort"

// partition is an ordered partition of vertices into consecutive cells of
// the elems array. The left (canonical-path) partition and the deviation
// partitions share cell boundary positions by construction: refinement on
// the deviation side replays the recorded trace of the left side and fails
// on any structural mismatch.
type partition struct {
	elems []int // permutation of 0..n-1
	pos   []int // pos[v] = index of v in elems
	cbeg  []int // cbeg[i] = start index of the cell containing position i
	clen  []int // clen[s] = length of the cell starting at s (valid at starts)
}

// newPartition builds the unit partition split by vertex colors: one cell
// per color class, cells ordered by color value.
func newPartition(colors []int) *partition {
	n := len(colors)
	p := &partition{
		elems: make([]int, n),
		pos:   make([]int, n),
		cbeg:  make([]int, n),
		clen:  make([]int, n),
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return colors[order[i]] < colors[order[j]] })
	copy(p.elems, order)
	for i, v := range p.elems {
		p.pos[v] = i
	}
	start := 0
	for i := 0; i <= n; i++ {
		if i == n || (i > 0 && colors[p.elems[i]] != colors[p.elems[i-1]]) {
			for j := start; j < i; j++ {
				p.cbeg[j] = start
			}
			p.clen[start] = i - start
			start = i
		}
	}
	return p
}

func (p *partition) n() int { return len(p.elems) }

func (p *partition) copy() *partition {
	q := &partition{
		elems: append([]int(nil), p.elems...),
		pos:   append([]int(nil), p.pos...),
		cbeg:  append([]int(nil), p.cbeg...),
		clen:  append([]int(nil), p.clen...),
	}
	return q
}

// discrete reports whether all cells are singletons.
func (p *partition) discrete() bool {
	for i := 0; i < p.n(); i++ {
		if p.cbeg[i] == i && p.clen[i] != 1 {
			return false
		}
	}
	return true
}

// firstNonSingleton returns the start of the first cell with length > 1, or
// -1 when the partition is discrete.
func (p *partition) firstNonSingleton() int {
	i := 0
	for i < p.n() {
		if p.clen[i] > 1 {
			return i
		}
		i += p.clen[i]
	}
	return -1
}

// individualize moves vertex v to the front of its cell and splits off a
// singleton. The cell must contain v and have length > 1.
func (p *partition) individualize(v int) {
	s := p.cbeg[p.pos[v]]
	l := p.clen[s]
	if l < 2 {
		panic("autom: individualize on singleton cell")
	}
	// Swap v to position s.
	pv := p.pos[v]
	other := p.elems[s]
	p.elems[s], p.elems[pv] = v, other
	p.pos[v], p.pos[other] = s, pv
	// Split: [s,1] and [s+1, l-1].
	p.clen[s] = 1
	p.clen[s+1] = l - 1
	p.cbeg[s] = s
	for i := s + 1; i < s+l; i++ {
		p.cbeg[i] = s + 1
	}
}

// splitPart describes one degree-group of a split cell.
type splitPart struct {
	deg  int
	size int
}

// splitOp records the outcome of refining the cells touched by one
// splitter: for each touched cell (by start position, ascending) the
// ordered (degree, size) groups.
type splitOp struct {
	splitter int
	cells    []cellSplit
}

type cellSplit struct {
	start int
	parts []splitPart
}

// trace is the refinement transcript of the left path at one level.
type trace struct {
	ops []splitOp
}

// refineRecord runs equitable refinement to fixpoint starting from the
// given worklist of cell starts, recording the transcript. cnt is a zeroed
// scratch buffer of length g.n; it is returned zeroed. stop, when non-nil,
// is polled once per worklist iteration so a cancelled search aborts
// mid-refinement instead of waiting for the fixpoint; on stop the
// transcript is truncated and the caller must discard the partition.
func refineRecord(g *Graph, p *partition, work []int, cnt []int, stop func() bool) *trace {
	tr := &trace{}
	touchedList := make([]int, 0, 64)
	for len(work) > 0 {
		if stop != nil && stop() {
			return tr
		}
		s := work[len(work)-1]
		work = work[:len(work)-1]
		// Stale worklist entry: s may no longer be a cell start after other
		// splits; it always is, because splits keep sub-cell starts at or
		// after the original start and we only push starts. Guard anyway.
		if p.cbeg[s] != s {
			continue
		}
		op := splitOp{splitter: s}
		touchedList = touchedList[:0]
		send := s + p.clen[s]
		for i := s; i < send; i++ {
			v := p.elems[i]
			for _, w := range g.adj[v] {
				if cnt[w] == 0 {
					cs := p.cbeg[p.pos[int(w)]]
					if p.clen[cs] >= 1 {
						touchedList = append(touchedList, cs)
					}
				}
				cnt[w]++
			}
		}
		// Dedup touched cell starts (recompute: starts may repeat).
		sort.Ints(touchedList)
		touched := touchedList[:0]
		for i, cs := range touchedList {
			if i == 0 || cs != touched[len(touched)-1] {
				touched = append(touched, cs)
			}
		}
		for _, cs := range touched {
			if p.cbeg[cs] != cs {
				// The cell was split earlier in this op's loop; its members'
				// counts were computed against the same splitter, so refine
				// each sub-cell that originated from it. Simplest correct
				// handling: skip; sub-cells are re-touched because their
				// members still have nonzero counts only if they were in
				// touchedList, which recorded the pre-split start. Recompute
				// the current start of each member instead.
				continue
			}
			split, parts := splitCellByCount(p, cs, cnt)
			op.cells = append(op.cells, cellSplit{start: cs, parts: parts})
			for _, ns := range split {
				work = append(work, ns)
			}
		}
		// Reset counters.
		for i := s; i < send; i++ {
			v := p.elems[i]
			for _, w := range g.adj[v] {
				cnt[w] = 0
			}
		}
		tr.ops = append(tr.ops, op)
	}
	return tr
}

// splitCellByCount reorders the cell starting at cs by ascending count and
// installs sub-cell boundaries. It returns the new sub-cell starts (all of
// them, including the first) and the ordered (deg,size) groups.
func splitCellByCount(p *partition, cs int, cnt []int) (newStarts []int, parts []splitPart) {
	l := p.clen[cs]
	members := p.elems[cs : cs+l]
	sort.SliceStable(members, func(i, j int) bool { return cnt[members[i]] < cnt[members[j]] })
	// Uniform count: no split, but still record the group for alignment.
	uniform := cnt[members[0]] == cnt[members[l-1]]
	if uniform {
		for i, v := range members {
			p.pos[v] = cs + i
		}
		return nil, []splitPart{{deg: cnt[members[0]], size: l}}
	}
	start := cs
	for i := 0; i <= l; i++ {
		if i == l || (i > 0 && cnt[members[i]] != cnt[members[i-1]]) {
			sz := cs + i - start
			parts = append(parts, splitPart{deg: cnt[members[i-1]], size: sz})
			p.clen[start] = sz
			for j := start; j < cs+i; j++ {
				p.cbeg[j] = start
			}
			newStarts = append(newStarts, start)
			start = cs + i
		}
	}
	for i, v := range members {
		p.pos[v] = cs + i
	}
	return newStarts, parts
}

// refineReplay replays a recorded transcript on a deviation partition,
// verifying that every split matches the left side structurally. Returns
// false on mismatch (no automorphism can extend this branch). cnt is a
// zeroed scratch buffer of length g.n; it is returned zeroed. stop, when
// non-nil, is polled once per op so cancellation is observed inside long
// replays; a stopped replay reports a mismatch, which is always sound
// (the branch is merely not pursued).
func refineReplay(g *Graph, p *partition, tr *trace, cnt []int, stop func() bool) bool {
	for _, op := range tr.ops {
		if stop != nil && stop() {
			return false
		}
		s := op.splitter
		if p.cbeg[s] != s {
			return false
		}
		send := s + p.clen[s]
		for i := s; i < send; i++ {
			v := p.elems[i]
			for _, w := range g.adj[v] {
				cnt[w]++
			}
		}
		ok := true
		// The touched cells must be exactly those recorded, with identical
		// group structure.
		seen := map[int]bool{}
		for _, cspl := range op.cells {
			cs := cspl.start
			seen[cs] = true
			if p.cbeg[cs] != cs {
				ok = false
				break
			}
			_, parts := splitCellByCount(p, cs, cnt)
			if !partsEqual(parts, cspl.parts) {
				ok = false
				break
			}
		}
		if ok {
			// Any touched cell not in the recorded set is a mismatch.
			for i := s; i < send && ok; i++ {
				v := p.elems[i]
				for _, w := range g.adj[v] {
					cs := p.cbeg[p.pos[int(w)]]
					// After splitting, members moved into sub-cells whose
					// origin was recorded. Walk up: the recorded start is
					// the original cell start which is <= cs; approximate
					// check: the member must have nonzero count only if its
					// original cell was recorded. Verify via count > 0 and
					// membership in any recorded range.
					if cnt[w] > 0 && !startCovered(op.cells, cs) {
						ok = false
						break
					}
				}
			}
		}
		for i := s; i < send; i++ {
			v := p.elems[i]
			for _, w := range g.adj[v] {
				cnt[w] = 0
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// startCovered reports whether position cs falls inside any recorded cell
// range [start, start+Σsizes).
func startCovered(cells []cellSplit, cs int) bool {
	for _, c := range cells {
		total := 0
		for _, p := range c.parts {
			total += p.size
		}
		if cs >= c.start && cs < c.start+total {
			return true
		}
	}
	return false
}

func partsEqual(a, b []splitPart) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package autom

import (
	"bytes"
	"math/rand"
	"testing"
)

// Transitive-family constructors beyond the ones autom_test.go already
// provides. These are exactly the graphs the paper targets: wide
// refinement cells, huge automorphism groups.

func completeBipartite(h int) *Graph {
	g := NewGraph(2 * h)
	for a := 0; a < h; a++ {
		for b := h; b < 2*h; b++ {
			g.AddEdge(a, b)
		}
	}
	return g
}

// circulantGraph connects v to v±d for each offset d; vertex-transitive by
// construction (rotations are automorphisms).
func circulantGraph(n int, offsets ...int) *Graph {
	g := NewGraph(n)
	seen := map[[2]int]bool{}
	for v := 0; v < n; v++ {
		for _, d := range offsets {
			a, b := v, (v+d)%n
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

func queenGraph(rows, cols int) *Graph {
	n := rows * cols
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		ai, aj := a/cols, a%cols
		for b := a + 1; b < n; b++ {
			bi, bj := b/cols, b%cols
			if ai == bi || aj == bj || ai-aj == bi-bj || ai+aj == bi+bj {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

// TestCanonicalFormPrunedMatchesUnpruned is the pruning soundness property:
// orbit pruning, prefix pruning and automorphism discovery must not change
// the canonical encoding — the pruned search returns byte-identical Bytes
// to the exhaustive (DisablePruning) search, never visiting more nodes.
func TestCanonicalFormPrunedMatchesUnpruned(t *testing.T) {
	check := func(name string, g *Graph, h *Graph) {
		t.Helper()
		pruned := CanonicalForm(g, CanonicalOptions{})
		unpruned := CanonicalForm(h, CanonicalOptions{DisablePruning: true})
		if !pruned.Exact || !unpruned.Exact {
			t.Fatalf("%s: inexact search (pruned=%v unpruned=%v)", name, pruned.Exact, unpruned.Exact)
		}
		if !bytes.Equal(pruned.Bytes, unpruned.Bytes) {
			t.Fatalf("%s: pruned and unpruned canonical encodings differ", name)
		}
		if pruned.Nodes > unpruned.Nodes {
			t.Fatalf("%s: pruned search visited more nodes (%d > %d)", name, pruned.Nodes, unpruned.Nodes)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 40; iter++ {
		n := 4 + rng.Intn(16)
		p := []float64{0.15, 0.3, 0.5, 0.8}[iter%4]
		g := randomGraph(rng, n, p)
		if iter%3 == 0 {
			// Exercise nontrivial color classes too.
			for v := 0; v < n; v++ {
				g.SetColor(v, rng.Intn(3))
			}
		}
		check("random", g, relabel(g, Identity(n)))
	}
	transitive := map[string]func() *Graph{
		"C12":       func() *Graph { return cycleGraph(12) },
		"C13":       func() *Graph { return cycleGraph(13) },
		"K8":        func() *Graph { return completeGraph(8) },
		"K5,5":      func() *Graph { return completeBipartite(5) },
		"petersen":  petersenGraph,
		"circulant": func() *Graph { return circulantGraph(14, 1, 4) },
		"queen5":    func() *Graph { return queenGraph(5, 5) },
		"empty8":    func() *Graph { return NewGraph(8) },
	}
	for name, build := range transitive {
		check(name, build(), build())
		// The pruned form must also stay invariant under relabeling, with
		// the unpruned search run on the relabelled copy: both searches see
		// different vertex orders yet must agree byte-for-byte.
		g := build()
		check(name+"/relabeled", g, relabel(build(), randomPerm(rng, g.N())))
	}
}

// TestCanonicalFormNodeReduction pins the headline numbers: on the
// transitive graphs the paper targets, discovered-automorphism orbit
// pruning collapses the search by well over an order of magnitude while
// producing the identical encoding. queen-8 is included for coverage but
// asserted only as no-worse: queen graphs are irregular (corner/edge/center
// degrees differ), so equitable refinement alone already collapses the
// unpruned tree to single digits and a 10x ratio does not exist to claim.
func TestCanonicalFormNodeReduction(t *testing.T) {
	cases := []struct {
		name    string
		g       *Graph
		min10x  bool
		maxNode int64 // ceiling on the pruned node count, 0 = none
	}{
		{"C100", cycleGraph(100), true, 50},
		{"K12,12", completeBipartite(12), true, 0},
		{"petersen", petersenGraph(), true, 0},
		{"queen8", queenGraph(8, 8), false, 0},
	}
	for _, tc := range cases {
		pruned := CanonicalForm(tc.g, CanonicalOptions{})
		unpruned := CanonicalForm(tc.g, CanonicalOptions{DisablePruning: true})
		if !pruned.Exact {
			t.Fatalf("%s: pruned search inexact within default budget", tc.name)
		}
		if unpruned.Exact && !bytes.Equal(pruned.Bytes, unpruned.Bytes) {
			t.Fatalf("%s: pruned and unpruned encodings differ", tc.name)
		}
		if tc.min10x && pruned.Nodes*10 > unpruned.Nodes {
			t.Fatalf("%s: want >=10x node reduction, got %d pruned vs %d unpruned",
				tc.name, pruned.Nodes, unpruned.Nodes)
		}
		if !tc.min10x && pruned.Nodes > unpruned.Nodes {
			t.Fatalf("%s: pruned search visited more nodes (%d > %d)",
				tc.name, pruned.Nodes, unpruned.Nodes)
		}
		if len(pruned.Generators) == 0 {
			t.Fatalf("%s: expected discovered generators on a symmetric graph", tc.name)
		}
		if tc.maxNode > 0 && pruned.Nodes > tc.maxNode {
			t.Fatalf("%s: pruned node count regressed: %d > %d", tc.name, pruned.Nodes, tc.maxNode)
		}
	}
}

// TestCanonicalFormExactOnPreviouslyExhaustedGraphs checks the cache-key
// payoff: graphs whose unpruned search burns the whole default node budget
// (falling back to inexact, undedupable keys) now finish exactly.
func TestCanonicalFormExactOnPreviouslyExhaustedGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"K12,12", completeBipartite(12)},
		{"empty40", NewGraph(40)},
	} {
		unpruned := CanonicalForm(tc.g, CanonicalOptions{DisablePruning: true})
		if unpruned.Exact {
			t.Fatalf("%s: expected the unpruned baseline to exhaust the default budget", tc.name)
		}
		pruned := CanonicalForm(tc.g, CanonicalOptions{})
		if !pruned.Exact {
			t.Fatalf("%s: pruned search still inexact (nodes=%d)", tc.name, pruned.Nodes)
		}
	}
}

// TestCanonicalFormGenerators checks every reported generator is a genuine
// non-identity automorphism and that the prune counters are consistent
// with what the search claims to have skipped.
func TestCanonicalFormGenerators(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"C30", cycleGraph(30)},
		{"K4,4", completeBipartite(4)},
		{"petersen", petersenGraph()},
	} {
		g := tc.g
		c := CanonicalForm(g, CanonicalOptions{})
		if len(c.Generators) == 0 {
			t.Fatalf("%s: no generators discovered", tc.name)
		}
		for i, perm := range c.Generators {
			if perm.IsIdentity() {
				t.Fatalf("%s: generator %d is the identity", tc.name, i)
			}
			if !g.isAutomorphism(perm) {
				t.Fatalf("%s: generator %d is not an automorphism: %v", tc.name, i, perm)
			}
		}
		if c.OrbitPrunes == 0 {
			t.Fatalf("%s: expected orbit prunes on a symmetric graph", tc.name)
		}
		unpruned := CanonicalForm(g, CanonicalOptions{DisablePruning: true})
		if len(unpruned.Generators) != 0 || unpruned.OrbitPrunes != 0 || unpruned.PrefixPrunes != 0 {
			t.Fatalf("%s: DisablePruning must not discover or prune", tc.name)
		}
	}
}

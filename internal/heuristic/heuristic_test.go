package heuristic

import (
	"testing"
	"time"

	"repro/internal/graph"
)

func TestDsaturProperAndBounded(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(6),
		graph.Cycle(7),
		graph.Complete(5),
		graph.Petersen(),
		graph.Queens(5, 5),
		graph.Mycielski(4),
		graph.PartitePlanted("p", 30, 90, 5, 2),
	}
	for _, g := range graphs {
		colors := Dsatur(g)
		if !g.IsProperColoring(colors) {
			t.Errorf("%s: DSATUR coloring improper", g.Name())
		}
		cnt := DsaturCount(g)
		maxDeg := 0
		for v := 0; v < g.N(); v++ {
			if d := g.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		if cnt > maxDeg+1 {
			t.Errorf("%s: DSATUR used %d > Δ+1 = %d", g.Name(), cnt, maxDeg+1)
		}
		if g.Chi > 0 && cnt < g.Chi {
			t.Errorf("%s: DSATUR used %d < χ = %d", g.Name(), cnt, g.Chi)
		}
	}
}

func TestDsaturOptimalOnBipartite(t *testing.T) {
	// DSATUR is optimal for bipartite graphs (Brélaz): even cycles and
	// complete bipartite graphs take exactly 2 colors.
	for _, n := range []int{4, 6, 10, 16} {
		if cnt := DsaturCount(graph.Cycle(n)); cnt != 2 {
			t.Errorf("C%d: DSATUR = %d, want 2", n, cnt)
		}
	}
	kb := graph.New("k33", 6)
	for a := 0; a < 3; a++ {
		for b := 3; b < 6; b++ {
			kb.AddEdge(a, b)
		}
	}
	if cnt := DsaturCount(kb); cnt != 2 {
		t.Errorf("K33: DSATUR = %d, want 2", cnt)
	}
}

func TestExactChromaticKnownValues(t *testing.T) {
	cases := []struct {
		g   *graph.Graph
		chi int
	}{
		{graph.Cycle(4), 2},
		{graph.Cycle(5), 3},
		{graph.Complete(6), 6},
		{graph.Petersen(), 3},
		{graph.Mycielski(3), 4},
		{graph.Mycielski(4), 5},
		{graph.Queens(5, 5), 5},
		{graph.Queens(6, 6), 7},
		{graph.PartitePlanted("p", 25, 70, 4, 9), 4},
	}
	for _, c := range cases {
		res := ExactChromatic(c.g, time.Time{})
		if !res.Complete {
			t.Errorf("%s: did not complete", c.g.Name())
		}
		if res.Chi != c.chi {
			t.Errorf("%s: χ = %d, want %d", c.g.Name(), res.Chi, c.chi)
		}
		if !c.g.IsProperColoring(res.Colors) {
			t.Errorf("%s: witness improper", c.g.Name())
		}
	}
}

func TestExactChromaticEmptyAndTrivial(t *testing.T) {
	res := ExactChromatic(graph.New("empty", 0), time.Time{})
	if res.Chi != 0 || !res.Complete {
		t.Fatalf("empty graph: %+v", res)
	}
	res = ExactChromatic(graph.New("isolated", 3), time.Time{})
	if res.Chi != 1 {
		t.Fatalf("isolated vertices: χ = %d, want 1", res.Chi)
	}
}

func TestExactChromaticDeadline(t *testing.T) {
	// A harder instance with an immediate deadline must still return a
	// valid (possibly unproven) coloring.
	g := graph.Queens(7, 7)
	res := ExactChromatic(g, time.Now().Add(time.Millisecond))
	if !g.IsProperColoring(res.Colors) {
		t.Fatal("budgeted result must still be a proper coloring")
	}
	if res.Chi < 7 {
		t.Fatalf("χ bound %d below clique bound", res.Chi)
	}
}

func TestExactMatchesBenchmarkChi(t *testing.T) {
	// The generated stand-ins carry structural χ certificates; the exact
	// solver must agree on the small ones.
	for _, name := range []string{"myciel3", "myciel4", "queen5_5"} {
		g, err := graph.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		res := ExactChromatic(g, time.Time{})
		if !res.Complete || res.Chi != g.Chi {
			t.Errorf("%s: exact χ = %d (complete=%v), want %d", name, res.Chi, res.Complete, g.Chi)
		}
	}
}

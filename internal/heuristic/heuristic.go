// Package heuristic provides the classical graph-coloring algorithms the
// paper positions its reduction-based approach against (§2.1): the DSATUR
// greedy heuristic of Brélaz 1979 and an exact DSATUR-based branch-and-
// bound colorer in the implicit-enumeration lineage of Brown 1972 and
// Kubale & Jackowski 1985. These provide upper bounds for choosing K
// (paper §4.1's two-step procedure) and a problem-specific comparator for
// the §4.3 discussion.
package heuristic

import (
	"time"

	"repro/internal/clique"
	"repro/internal/graph"
)

// Dsatur colors the graph greedily by saturation degree: repeatedly pick
// the uncolored vertex adjacent to the most distinct colors (ties by
// degree, then index) and give it the lowest feasible color. Returns the
// coloring (0-based) — optimal for bipartite graphs, an upper bound in
// general.
func Dsatur(g *graph.Graph) []int {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	satSets := make([]map[int]bool, n)
	for i := range satSets {
		satSets[i] = map[int]bool{}
	}
	for done := 0; done < n; done++ {
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			sat, deg := len(satSets[v]), g.Degree(v)
			if sat > bestSat || (sat == bestSat && deg > bestDeg) {
				best, bestSat, bestDeg = v, sat, deg
			}
		}
		c := 0
		for satSets[best][c] {
			c++
		}
		colors[best] = c
		for _, u := range g.Neighbors(best) {
			if colors[u] < 0 {
				satSets[u][c] = true
			}
		}
	}
	return colors
}

// DsaturCount returns the number of colors DSATUR uses.
func DsaturCount(g *graph.Graph) int {
	colors := Dsatur(g)
	mx := -1
	for _, c := range colors {
		if c > mx {
			mx = c
		}
	}
	return mx + 1
}

// ExactResult reports an exact-coloring search outcome.
type ExactResult struct {
	Chi      int   // best (smallest) color count found
	Colors   []int // a coloring with Chi colors
	Complete bool  // true when optimality was proven within the budget
	Nodes    int64
}

// ExactChromatic computes the chromatic number by DSATUR-ordered branch and
// bound with a clique lower bound, the problem-specific exact baseline. A
// zero deadline means no time limit.
func ExactChromatic(g *graph.Graph, deadline time.Time) ExactResult {
	n := g.N()
	if n == 0 {
		return ExactResult{Chi: 0, Colors: []int{}, Complete: true}
	}
	ub := Dsatur(g)
	best := 0
	for _, c := range ub {
		if c+1 > best {
			best = c + 1
		}
	}
	lbClique := clique.Greedy(g)
	lb := len(lbClique)

	s := &bbState{
		g:        g,
		colors:   make([]int, n),
		best:     best,
		bestCols: append([]int(nil), ub...),
		lb:       lb,
		deadline: deadline,
	}
	for i := range s.colors {
		s.colors[i] = -1
	}
	// Pre-color the clique: its vertices need distinct colors in some
	// order, which is symmetric — fixing them prunes color permutations
	// (the same idea the paper's SC predicate approximates).
	for i, v := range lbClique {
		s.colors[v] = i
	}
	s.used = lb
	s.search(len(lbClique))
	return ExactResult{Chi: s.best, Colors: s.bestCols, Complete: !s.timedOut, Nodes: s.nodes}
}

type bbState struct {
	g        *graph.Graph
	colors   []int
	used     int // number of colors in the current partial assignment
	best     int
	bestCols []int
	lb       int
	deadline time.Time
	timedOut bool
	nodes    int64
}

func (s *bbState) expired() bool {
	if s.timedOut {
		return true
	}
	if !s.deadline.IsZero() && s.nodes%256 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
	}
	return s.timedOut
}

// pickVertex selects the uncolored vertex with maximum saturation.
func (s *bbState) pickVertex() int {
	bestV, bestSat, bestDeg := -1, -1, -1
	for v := 0; v < s.g.N(); v++ {
		if s.colors[v] >= 0 {
			continue
		}
		seen := map[int]bool{}
		for _, u := range s.g.Neighbors(v) {
			if s.colors[u] >= 0 {
				seen[s.colors[u]] = true
			}
		}
		sat, deg := len(seen), s.g.Degree(v)
		if sat > bestSat || (sat == bestSat && deg > bestDeg) {
			bestV, bestSat, bestDeg = v, sat, deg
		}
	}
	return bestV
}

func (s *bbState) search(depth int) {
	s.nodes++
	if s.expired() || s.used >= s.best {
		return
	}
	if depth == s.g.N() {
		// Complete coloring better than the incumbent.
		s.best = s.used
		copy(s.bestCols, s.colors)
		return
	}
	v := s.pickVertex()
	if v < 0 {
		// All colored (pre-colored clique may cover everything).
		if s.used < s.best {
			s.best = s.used
			copy(s.bestCols, s.colors)
		}
		return
	}
	forbidden := map[int]bool{}
	for _, u := range s.g.Neighbors(v) {
		if s.colors[u] >= 0 {
			forbidden[s.colors[u]] = true
		}
	}
	// Existing colors first, then (at most) one fresh color: trying more
	// than one new color is symmetric.
	limit := s.used
	if limit < s.best-1 {
		limit = s.used + 1
	}
	for c := 0; c < limit && c < s.best-0; c++ {
		if forbidden[c] {
			continue
		}
		if c >= s.best-1 && s.used+1 >= s.best && c >= s.used {
			break // a fresh color would reach the incumbent bound
		}
		prevUsed := s.used
		s.colors[v] = c
		if c >= s.used {
			s.used = c + 1
		}
		if s.used < s.best {
			s.search(depth + 1)
		}
		s.colors[v] = -1
		s.used = prevUsed
		if s.best == s.lb {
			return // matched the clique bound: provably optimal
		}
	}
}

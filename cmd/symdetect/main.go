// Command symdetect runs only the symmetry-detection half of the flow: it
// encodes an instance as 0-1 ILP with a chosen instance-independent SBP
// construction, reduces symmetry detection to colored-graph automorphism,
// and reports the group order, generators, and detection time (the
// measurements behind the paper's Table 2).
//
// Usage:
//
//	symdetect -bench myciel3 -k 6
//	symdetect -bench queen5_5 -k 6 -sbp NU -gens
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/autom"
	"repro/internal/encode"
	"repro/internal/graph"
	"repro/internal/symgraph"
)

func main() {
	bench := flag.String("bench", "", "named benchmark instance")
	file := flag.String("file", "", "DIMACS .col file")
	k := flag.Int("k", 20, "color bound K")
	sbpName := flag.String("sbp", "none", "instance-independent SBPs: none,NU,CA,LI,SC,NU+SC")
	maxNodes := flag.Int64("nodes", 500000, "search node budget")
	timeout := flag.Duration("timeout", time.Minute, "search time budget")
	showGens := flag.Bool("gens", false, "print generators on formula variables")
	flag.Parse()

	g, err := loadGraph(*bench, *file)
	if err != nil {
		fatal(err)
	}
	kind, err := parseSBP(*sbpName)
	if err != nil {
		fatal(err)
	}
	enc := encode.Build(g, *k, kind)
	fmt.Printf("instance %s K=%d SBP=%v: %d vars, %d clauses, %d PB constraints\n",
		g.Name(), *k, kind, enc.F.NumVars, len(enc.F.Clauses), len(enc.F.Constraints))

	perms, res := symgraph.Detect(enc.F, autom.Options{
		MaxNodes: *maxNodes,
		Deadline: time.Now().Add(*timeout),
	})
	exactness := "exact"
	if !res.Exact {
		exactness = "lower bound (budget hit)"
	}
	fmt.Printf("|Aut| = %s (%s)\n", res.Order.String(), exactness)
	fmt.Printf("generators: %d verified (raw %d), base length %d, %d nodes, %v\n",
		len(perms), len(res.Generators), res.BaseLen, res.Nodes, res.Time.Round(time.Millisecond))
	if *showGens {
		for i, p := range perms {
			var moved []string
			for _, v := range p.Support() {
				moved = append(moved, fmt.Sprintf("x%d→%s", v, p.Img[v]))
				if len(moved) >= 16 {
					moved = append(moved, "...")
					break
				}
			}
			fmt.Printf("  g%d: %s\n", i+1, strings.Join(moved, " "))
		}
	}
}

func loadGraph(bench, file string) (*graph.Graph, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("use -bench or -file, not both")
	case bench != "":
		return graph.Benchmark(bench)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ParseDimacs(file, f)
	}
	return nil, fmt.Errorf("one of -bench or -file is required")
}

func parseSBP(name string) (encode.SBPKind, error) {
	switch strings.ToUpper(name) {
	case "NONE":
		return encode.SBPNone, nil
	case "NU":
		return encode.SBPNU, nil
	case "CA":
		return encode.SBPCA, nil
	case "LI":
		return encode.SBPLI, nil
	case "SC":
		return encode.SBPSC, nil
	case "NU+SC", "NUSC":
		return encode.SBPNUSC, nil
	}
	return 0, fmt.Errorf("unknown SBP %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "symdetect:", err)
	os.Exit(1)
}

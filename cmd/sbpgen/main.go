// sbpgen precomputes the canonizing permutation sets consumed by the
// canonset SBP variant (internal/sbp.VariantCanonSet) and writes them in
// the embedded canonsets.json format. Generation is deterministic, so the
// committed data is reproducible: `make sbpdata` regenerates it in place
// and `make sbpdata-check` (run by CI) regenerates to memory and fails on
// any diff against the committed copy.
//
// Usage:
//
//	sbpgen [-out internal/sbp/canonsets.json] [-kmin 2] [-kmax 12] [-maxsize N]
//	sbpgen -check [-out ...]    # diff mode: exit 1 if committed data is stale
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/sbp"
)

func main() {
	out := flag.String("out", "internal/sbp/canonsets.json", "output path (and the committed copy -check diffs against)")
	kmin := flag.Int("kmin", 2, "smallest color bound to cover")
	kmax := flag.Int("kmax", 12, "largest color bound to cover")
	maxSize := flag.Int("maxsize", 0, "canonizing-set size cap per band (0 = 2k default)")
	check := flag.Bool("check", false, "regenerate to memory and diff against -out instead of writing")
	flag.Parse()

	if *kmin < 2 || *kmax < *kmin {
		fmt.Fprintf(os.Stderr, "sbpgen: invalid band range [%d,%d]\n", *kmin, *kmax)
		os.Exit(2)
	}

	sets := make(map[int][][]int, *kmax-*kmin+1)
	for k := *kmin; k <= *kmax; k++ {
		set := sbp.GreedyCanonSet(k, *maxSize)
		if len(set) == 0 {
			fmt.Fprintf(os.Stderr, "sbpgen: empty set for k=%d\n", k)
			os.Exit(1)
		}
		sets[k] = set
	}
	data, err := sbp.EncodeCanonSets(sets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbpgen: %v\n", err)
		os.Exit(1)
	}

	if *check {
		committed, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbpgen: read committed data: %v\n", err)
			os.Exit(1)
		}
		if !bytes.Equal(committed, data) {
			fmt.Fprintf(os.Stderr, "sbpgen: %s is stale — regenerate with make sbpdata\n", *out)
			os.Exit(1)
		}
		fmt.Printf("sbpgen: %s up to date (%d bands)\n", *out, len(sets))
		return
	}

	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sbpgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sbpgen: wrote %s (%d bands, k=%d..%d)\n", *out, len(sets), *kmin, *kmax)
}

// Command experiments regenerates the paper's tables and figure.
//
// Usage:
//
//	experiments -table 1                       # benchmark statistics
//	experiments -table 2 -k 20                 # encoding + symmetry stats
//	experiments -table 3 -timeout 2s           # solver matrix, K=20
//	experiments -table 4 -timeout 2s           # solver matrix, K=30
//	experiments -table 5 -timeout 2s           # queens appendix
//	experiments -figure 1                      # worked-example enumeration
//	experiments -all -timeout 1s               # everything
//
// Budgets are scaled down from the paper's 1000 s timeouts; use -timeout to
// raise them. -instances, -engines and -sbps restrict the matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/encode"
	"repro/internal/experiments"
	"repro/internal/pbsolver"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (1-5)")
	figure := flag.Int("figure", 0, "figure to regenerate (1)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	k := flag.Int("k", 0, "color bound K (default: 20, or 30 for -table 4)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-solve budget (paper: 1000s)")
	symNodes := flag.Int64("symnodes", 200000, "symmetry search node budget per instance")
	symTimeout := flag.Duration("symtimeout", 10*time.Second, "symmetry search time budget per instance")
	instances := flag.String("instances", "", "comma-separated instance subset (default: all 20)")
	engines := flag.String("engines", "", "comma-separated engine subset: pbs2,bnb,galena,pueblo")
	sbps := flag.String("sbps", "", "comma-separated SBP subset: none,NU,CA,LI,SC,NU+SC")
	verbose := flag.Bool("v", false, "stream per-instance progress")
	flag.Parse()

	cfg := experiments.Config{
		K:           *k,
		Timeout:     *timeout,
		SymMaxNodes: *symNodes,
		SymTimeout:  *symTimeout,
		Verbose:     *verbose,
		Out:         os.Stdout,
	}
	if *instances != "" {
		cfg.Instances = strings.Split(*instances, ",")
	}
	if *engines != "" {
		for _, name := range strings.Split(*engines, ",") {
			e, err := parseEngine(name)
			if err != nil {
				fatal(err)
			}
			cfg.Engines = append(cfg.Engines, e)
		}
	}
	if *sbps != "" {
		for _, name := range strings.Split(*sbps, ",") {
			s, err := parseSBP(name)
			if err != nil {
				fatal(err)
			}
			cfg.SBPs = append(cfg.SBPs, s)
		}
	}

	ran := false
	run := func(n int) bool { return *all || *table == n }
	if run(1) {
		ran = true
		rows, err := experiments.Table1(5 * time.Second)
		if err != nil {
			fatal(err)
		}
		experiments.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if run(2) {
		ran = true
		rows, err := experiments.Table2(cfg)
		if err != nil {
			fatal(err)
		}
		experiments.PrintTable2(os.Stdout, rows, cfg.KOrDefault(), cfg.NumInstances())
		fmt.Println()
	}
	if run(3) {
		ran = true
		c := cfg
		if c.K == 0 {
			c.K = 20
		}
		rows, err := experiments.Matrix(c)
		if err != nil {
			fatal(err)
		}
		experiments.PrintMatrix(os.Stdout, rows, c.EngineList(), c.K, c.NumInstances(), c.Timeout)
		fmt.Println()
		experiments.PrintTrends(os.Stdout, experiments.AnalyzeTrends(rows, c.EngineList()))
		fmt.Println()
		fmt.Print(experiments.SpeedupSummary(rows, c.EngineList()))
		fmt.Println()
	}
	if run(4) {
		ran = true
		c := cfg
		if c.K == 0 {
			c.K = 30
		}
		rows, err := experiments.Matrix(c)
		if err != nil {
			fatal(err)
		}
		experiments.PrintMatrix(os.Stdout, rows, c.EngineList(), c.K, c.NumInstances(), c.Timeout)
		fmt.Println()
		experiments.PrintTrends(os.Stdout, experiments.AnalyzeTrends(rows, c.EngineList()))
		fmt.Println()
	}
	if run(5) {
		ran = true
		c := cfg
		if c.K == 0 {
			c.K = 20
		}
		entries, err := experiments.Table5(c)
		if err != nil {
			fatal(err)
		}
		experiments.PrintTable5(os.Stdout, entries, c.EngineList(), c.K, c.Timeout)
		fmt.Println()
	}
	if *all || *figure == 1 {
		ran = true
		rows, err := experiments.Figure1()
		if err != nil {
			fatal(err)
		}
		experiments.PrintFigure1(os.Stdout, rows)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func parseEngine(name string) (pbsolver.Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "pbs", "pbs2", "pbsii":
		return pbsolver.EnginePBS, nil
	case "bnb", "cplex":
		return pbsolver.EngineBnB, nil
	case "galena":
		return pbsolver.EngineGalena, nil
	case "pueblo":
		return pbsolver.EnginePueblo, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

func parseSBP(name string) (encode.SBPKind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "NONE":
		return encode.SBPNone, nil
	case "NU":
		return encode.SBPNU, nil
	case "CA":
		return encode.SBPCA, nil
	case "LI":
		return encode.SBPLI, nil
	case "SC":
		return encode.SBPSC, nil
	case "NU+SC", "NUSC":
		return encode.SBPNUSC, nil
	}
	return 0, fmt.Errorf("unknown SBP %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

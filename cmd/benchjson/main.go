// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON snapshot on stdout, keyed by benchmark name. It exists so the
// repository can commit machine-readable perf baselines (BENCH_baseline.json,
// written by `make bench-baseline`) and future PRs can diff ns/op and
// allocs/op against them.
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 -benchtime=1x | benchjson > BENCH_baseline.json
//	benchjson -compare BENCH_baseline.json BENCH_current.json
//
// The -compare form prints a side-by-side table of two snapshots (ns/op,
// allocs/op, and any custom metrics such as nodes/op) with the relative
// change per benchmark. It is informational and always exits 0 on valid
// input: single-iteration CI runs are too noisy to gate on, the table
// exists so perf movement is visible in the job log and artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line. Fields that the bench did not report are
// left at zero (e.g. AllocsPerOp without -benchmem).
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the full file: environment header lines plus all results.
type Snapshot struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if len(os.Args) == 4 && os.Args[1] == "-compare" {
		if err := compare(os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson < bench-output  |  benchjson -compare baseline.json current.json")
		os.Exit(2)
	}
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if ok {
				snap.Results = append(snap.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return snap, nil
}

// parseBenchLine parses "BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op
// 7.0 clauses" style lines into a Result.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are machine-independent keys.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields alternate value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return r, true
}

// loadSnapshot reads a JSON snapshot previously produced by this command.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compare prints baseline vs current per benchmark: ns/op with relative
// change, allocs/op, and every custom metric either side reported (a custom
// metric like nodes/op is deterministic, so its delta is the signal even
// when single-iteration timings jitter). Benchmarks present on only one
// side are listed as new/gone rather than failing the run.
func compare(basePath, curPath string) error {
	base, err := loadSnapshot(basePath)
	if err != nil {
		return err
	}
	cur, err := loadSnapshot(curPath)
	if err != nil {
		return err
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	curByName := make(map[string]Result, len(cur.Results))
	names := make([]string, 0, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
		names = append(names, r.Name)
	}
	for _, r := range base.Results {
		if _, ok := curByName[r.Name]; !ok {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BENCHMARK\tBASE ns/op\tCUR ns/op\tΔ ns/op\tBASE allocs\tCUR allocs\tEXTRA")
	for _, name := range names {
		b, inBase := baseByName[name]
		c, inCur := curByName[name]
		switch {
		case !inBase:
			fmt.Fprintf(w, "%s\t-\t%.0f\tnew\t-\t%d\t%s\n", name, c.NsPerOp, c.AllocsPerOp, extraCell(Result{}, c))
		case !inCur:
			fmt.Fprintf(w, "%s\t%.0f\t-\tgone\t%d\t-\t\n", name, b.NsPerOp, b.AllocsPerOp)
		default:
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\n",
				name, b.NsPerOp, c.NsPerOp, pctDelta(b.NsPerOp, c.NsPerOp),
				b.AllocsPerOp, c.AllocsPerOp, extraCell(b, c))
		}
	}
	return w.Flush()
}

// pctDelta renders the relative change from base to cur.
func pctDelta(base, cur float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur-base)/base*100)
}

// extraCell renders the union of both sides' custom metrics as
// "unit base->cur" pairs, sorted by unit for stable output.
func extraCell(base, cur Result) string {
	units := map[string]bool{}
	for u := range base.Extra {
		units[u] = true
	}
	for u := range cur.Extra {
		units[u] = true
	}
	sorted := make([]string, 0, len(units))
	for u := range units {
		sorted = append(sorted, u)
	}
	sort.Strings(sorted)
	parts := make([]string, 0, len(sorted))
	for _, u := range sorted {
		bv, inB := base.Extra[u]
		cv, inC := cur.Extra[u]
		switch {
		case inB && inC:
			parts = append(parts, fmt.Sprintf("%s %g->%g", u, bv, cv))
		case inC:
			parts = append(parts, fmt.Sprintf("%s %g", u, cv))
		default:
			parts = append(parts, fmt.Sprintf("%s %g->?", u, bv))
		}
	}
	return strings.Join(parts, ", ")
}

// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON snapshot on stdout, keyed by benchmark name. It exists so the
// repository can commit machine-readable perf baselines (BENCH_baseline.json,
// written by `make bench-baseline`) and future PRs can diff ns/op and
// allocs/op against them.
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 -benchtime=1x | benchjson > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Fields that the bench did not report are
// left at zero (e.g. AllocsPerOp without -benchmem).
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is the full file: environment header lines plus all results.
type Snapshot struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if ok {
				snap.Results = append(snap.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return snap, nil
}

// parseBenchLine parses "BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op
// 7.0 clauses" style lines into a Result.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are machine-independent keys.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields alternate value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return r, true
}

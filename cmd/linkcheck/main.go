// Command linkcheck verifies intra-repository Markdown links: every
// relative link target must exist, and every fragment (`#anchor`) must
// match a heading in the linked file, using GitHub's heading-to-anchor
// slug rules. External links (http, https, mailto) are not fetched — the
// docs CI job must stay hermetic — so only repository-local rot is
// caught, which is the kind a PR can actually introduce.
//
// Usage:
//
//	linkcheck [-root .] [paths...]
//
// With no paths, every *.md under root is checked (skipping .git and
// testdata). Exit status 1 lists the broken links.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// linkRe matches inline links/images: [text](target) — target taken up
	// to the first closing paren (Markdown titles `](x "t")` are split off
	// later).
	linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	// headingRe matches ATX headings.
	headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)
	// inlineCodeRe and mdDecorRe strip formatting from heading text before
	// slugification.
	inlineCodeRe = regexp.MustCompile("`([^`]*)`")
	mdDecorRe    = regexp.MustCompile(`[*_]{1,3}([^*_]+)[*_]{1,3}`)
	// slugDropRe removes everything GitHub drops from anchors: anything
	// that is not a letter, digit, space, hyphen, or underscore.
	slugDropRe = regexp.MustCompile(`[^\p{L}\p{N} \-_]`)
	fenceRe    = regexp.MustCompile("^(```|~~~)")
)

func main() {
	root := flag.String("root", ".", "repository root to scan for *.md files")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = findMarkdown(*root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	anchors := map[string]map[string]bool{} // md path -> anchor set
	for _, f := range files {
		for _, problem := range checkFile(f, anchors) {
			fmt.Println(problem)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) in %d file(s) scanned\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: OK (%d files)\n", len(files))
}

// findMarkdown lists every .md under root, skipping VCS and test fixtures.
func findMarkdown(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// checkFile returns one message per broken link in the file.
func checkFile(path string, anchorCache map[string]map[string]bool) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var problems []string
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if fenceRe.MatchString(strings.TrimSpace(line)) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(path, dir, target, anchorCache); msg != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", path, i+1, msg))
			}
		}
	}
	return problems
}

// checkTarget validates one link target; "" means OK.
func checkTarget(file, dir, target string, anchorCache map[string]map[string]bool) string {
	switch {
	case strings.Contains(target, "://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "tel:"):
		return "" // external: not checked (hermetic CI)
	}
	rawPath, frag, _ := strings.Cut(target, "#")
	resolved := file // self-link for pure fragments
	if rawPath != "" {
		resolved = filepath.Join(dir, filepath.FromSlash(rawPath))
		st, err := os.Stat(resolved)
		if err != nil {
			return fmt.Sprintf("broken link %q: %v", target, err)
		}
		if frag != "" && st.IsDir() {
			return fmt.Sprintf("broken link %q: fragment on a directory", target)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.EqualFold(filepath.Ext(resolved), ".md") {
		return "" // anchors into non-Markdown files are not checkable
	}
	set, err := headingAnchors(resolved, anchorCache)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !set[strings.ToLower(frag)] {
		return fmt.Sprintf("broken anchor %q: no heading slugs to #%s in %s", target, frag, resolved)
	}
	return ""
}

// headingAnchors returns the set of GitHub-style anchors for a Markdown
// file's headings, memoized.
func headingAnchors(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if set, ok := cache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if fenceRe.MatchString(strings.TrimSpace(line)) {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[2])
		// GitHub disambiguates duplicate headings with -1, -2, ...
		if n := seen[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		seen[slug]++
	}
	cache[path] = set
	return set, nil
}

// slugify converts heading text to a GitHub anchor: strip inline
// formatting, lowercase, drop punctuation, and turn spaces into hyphens.
func slugify(text string) string {
	text = inlineCodeRe.ReplaceAllString(text, "$1")
	text = mdDecorRe.ReplaceAllString(text, "$1")
	// Headings that are themselves links anchor on their text (or image
	// alt text).
	text = linkRe.ReplaceAllStringFunc(text, func(s string) string {
		inner := s[:strings.Index(s, "](")]
		if img := strings.TrimPrefix(inner, "!["); img != inner {
			return img
		}
		return strings.TrimPrefix(inner, "[")
	})
	text = strings.ToLower(text)
	text = slugDropRe.ReplaceAllString(text, "")
	text = strings.ReplaceAll(text, " ", "-")
	return text
}

package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

// runChaos is the self-contained chaos drill behind `loadgen -chaos`: the
// same in-process daemon as -selftest, but with the fault-injection
// harness armed — every Nth store write fails (tearing some of them) and
// every Nth solve panics. The drill passes when the daemon shrugs it all
// off: no protocol errors on the wire, every injected panic isolated into
// its own job's failure, and the daemon still fully serving after the
// disk "heals".
func runChaos() error {
	dir, err := os.MkdirTemp("", "loadgen-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The injector starts disarmed so the stores open cleanly; it arms
	// right before traffic.
	fs := faultinject.NewFS(nil, faultinject.Config{
		Seed:          42,
		FailEvery:     7,
		PartialWrites: true,
	})
	fs.Disarm()

	cacheDir := filepath.Join(dir, "cache")
	opts := store.Options{FS: fs}
	disk, err := service.OpenDiskBackendOptions(cacheDir, opts)
	if err != nil {
		return fmt.Errorf("open cache store: %w", err)
	}
	backend := service.NewResilientBackend(disk, func() (service.Backend, error) {
		return service.OpenDiskBackendOptions(cacheDir, opts)
	}, nil)
	journal, err := service.OpenDiskJournal(filepath.Join(dir, "journal"), opts, nil)
	if err != nil {
		return fmt.Errorf("open journal: %w", err)
	}

	solve, panics := faultinject.Panics(sleepSolve(2*time.Millisecond), 5)
	svc := service.New(service.Config{
		Workers: 4, QueueDepth: 512, Solve: solve,
		Backend: backend, Journal: journal,
	})
	srv := httptest.NewServer(httpapi.New(httpapi.Config{Service: svc, Disk: backend}))
	defer func() {
		srv.Close()
		svc.CancelAll()
		svc.Close()
	}()
	if err := waitReady(srv.URL, 5*time.Second); err != nil {
		return err
	}

	fs.Arm()
	rep, err := run(runConfig{
		addr: srv.URL, n: 150, concurrency: 8, tenants: 3, isoFrac: 0.3,
		vertices: 12, degree: 2, k: 4, timeout: "5s", seed: 13,
	})
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	rep.print(os.Stderr)
	if rep.protocolErrors > 0 {
		return fmt.Errorf("chaos: %d responses violated the error-envelope contract", rep.protocolErrors)
	}
	if rep.accepted == 0 {
		return fmt.Errorf("chaos: nothing was accepted")
	}

	// Let accepted work quiesce so the panic bookkeeping is final.
	var st service.Stats
	for deadline := time.Now().Add(30 * time.Second); ; {
		st = svc.Stats()
		if st.QueueDepth == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %d queued / %d running jobs never finished", st.QueueDepth, st.Running)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fs.Injected() == 0 {
		return fmt.Errorf("chaos: the store fault injector never fired — the drill tested nothing")
	}
	if panics.Load() == 0 {
		return fmt.Errorf("chaos: no solver panics were injected — the drill tested nothing")
	}
	if st.Panics != panics.Load() {
		return fmt.Errorf("chaos: %d panics injected but %d isolated by the service", panics.Load(), st.Panics)
	}

	// Heal the disk and confirm the daemon is still serving.
	fs.Disarm()
	if err := waitReady(srv.URL, 5*time.Second); err != nil {
		return fmt.Errorf("after chaos: %w", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: chaos: %d store faults injected, %d solver panics isolated, store degraded=%v\n",
		fs.Injected(), panics.Load(), st.StoreDegraded)
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// runTracecheck is the CI audit behind `make tracecheck`: against an
// in-process daemon running the real solver, every completed job must
// expose a well-formed span tree — one root, unique span ids, children
// contained in their parents — whose top-level phases account for the
// job's wall time. It also checks the surrounding plumbing: per-worker
// spans on a parallel solve, the phase histograms on /metrics, the
// flight-recorder listing, and the 404 envelope for unknown jobs.
func runTracecheck() error {
	svc := service.New(service.Config{Workers: 4, QueueDepth: 64})
	srv := httptest.NewServer(httpapi.New(httpapi.Config{Service: svc}))
	defer func() {
		srv.Close()
		svc.CancelAll()
		svc.Close()
	}()
	if err := waitReady(srv.URL, 5*time.Second); err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}

	// Three jobs cover the interesting trace shapes: a plain sequential
	// solve, a parallel solve (must show per-worker child spans under
	// "solve"), and an isomorphic duplicate of the first (served from the
	// canonical cache, so its trace legitimately has no solve phase).
	rng := rand.New(rand.NewSource(42))
	base := randomGraph(rng, 14, 3)
	_, isoEdges := genGraph(rng, base, 14, 3, true, 1)

	plainID, err := submitJob(client, srv.URL, fmt.Sprintf(
		`{"name":"trace-plain","n":14,"edges":%s,"k":6,"timeout":"30s"}`, edgesJSON(base)))
	if err != nil {
		return fmt.Errorf("submit plain: %w", err)
	}
	parID, err := submitJob(client, srv.URL, fmt.Sprintf(
		`{"name":"trace-par","n":14,"edges":%s,"k":6,"timeout":"30s","parallel":2,"instance_dependent":true}`,
		edgesJSON(randomGraph(rng, 14, 3))))
	if err != nil {
		return fmt.Errorf("submit parallel: %w", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	// The iso duplicate goes in after the plain job's trace confirms the
	// original completed, so the duplicate deterministically hits the cache
	// instead of joining the in-flight solve.
	plain, ok := fetchTrace(client, srv.URL, plainID, deadline)
	if !ok {
		return fmt.Errorf("no trace for plain job %s", plainID)
	}
	isoID, err := submitJob(client, srv.URL, fmt.Sprintf(
		`{"name":"trace-iso","n":14,"edges":%s,"k":6,"timeout":"30s"}`, edgesJSON(isoEdges)))
	if err != nil {
		return fmt.Errorf("submit iso: %w", err)
	}
	par, ok := fetchTrace(client, srv.URL, parID, deadline)
	if !ok {
		return fmt.Errorf("no trace for parallel job %s", parID)
	}
	iso, ok := fetchTrace(client, srv.URL, isoID, deadline)
	if !ok {
		return fmt.Errorf("no trace for iso job %s", isoID)
	}

	for _, tc := range []struct {
		label string
		tv    traceView
		id    string
		// phases that must appear somewhere in the tree
		want []string
	}{
		{"plain", plain, plainID, []string{"admission", "queue", "canon", "solve", "encode", "persist"}},
		{"parallel", par, parID, []string{"admission", "queue", "canon", "solve", "solve.worker"}},
		{"iso", iso, isoID, []string{"admission", "queue", "canon"}},
	} {
		if err := checkTraceShape(tc.label, tc.tv, tc.id, tc.want); err != nil {
			return err
		}
	}
	if ws := findSpan(par.Spans, "solve.worker"); ws == nil {
		return fmt.Errorf("parallel: no solve.worker span")
	}

	// The recorder must list all three completed jobs, newest first.
	resp, err := client.Get(srv.URL + "/v1/trace/recent?n=10")
	if err != nil {
		return fmt.Errorf("trace/recent: %w", err)
	}
	var recent struct {
		Traces []traceView `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&recent)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("trace/recent decode: %w", err)
	}
	if len(recent.Traces) < 3 {
		return fmt.Errorf("trace/recent: want >=3 traces, got %d", len(recent.Traces))
	}

	// Completed traces feed the per-phase histograms on /metrics.
	resp, err = client.Get(srv.URL + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics read: %w", err)
	}
	body := string(raw)
	for _, want := range []string{
		`gcolord_phase_seconds_bucket{phase="solve"`,
		`gcolord_phase_seconds_count{phase="canon"}`,
		"gcolord_traces_recorded_total",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("metrics: missing %s", want)
		}
	}

	// Unknown job id: the trace endpoint must answer with the unified
	// error envelope, like every other /v1 route.
	resp, err = client.Get(srv.URL + "/v1/jobs/no-such-job/trace")
	if err != nil {
		return fmt.Errorf("unknown-job trace: %w", err)
	}
	var env envelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || err != nil || env.Error.Code == "" {
		return fmt.Errorf("unknown-job trace: want enveloped 404, got status=%d err=%v code=%q",
			resp.StatusCode, err, env.Error.Code)
	}
	fmt.Printf("loadgen: tracecheck audited 3 traces (plain %.1fms, parallel %.1fms, cache-hit %.1fms)\n",
		plain.DurationMS, par.DurationMS, iso.DurationMS)
	return nil
}

// checkTraceShape enforces the structural invariants every completed
// trace must satisfy: a single root named "job", globally unique span
// ids, children that lie inside their parent's interval, the expected
// phases present, and top-level phases that sum to the job's wall time.
func checkTraceShape(label string, tv traceView, jobID string, want []string) error {
	if tv.JobID != jobID {
		return fmt.Errorf("%s: trace names job %q, want %q", label, tv.JobID, jobID)
	}
	if tv.TraceID == "" {
		return fmt.Errorf("%s: empty trace id", label)
	}
	if len(tv.Spans) != 1 || tv.Spans[0].Name != "job" {
		return fmt.Errorf("%s: want exactly one root span named job, got %d roots", label, len(tv.Spans))
	}
	seen := map[uint64]bool{}
	var walk func(parent *spanView, s *spanView) error
	walk = func(parent *spanView, s *spanView) error {
		if seen[s.ID] {
			return fmt.Errorf("%s: duplicate span id %d (%s)", label, s.ID, s.Name)
		}
		seen[s.ID] = true
		if parent != nil {
			// A child must start no earlier than its parent and end no
			// later; 5ms of slack absorbs clock rounding in the view.
			if s.StartOffsetMS < parent.StartOffsetMS-5 ||
				s.StartOffsetMS+s.DurationMS > parent.StartOffsetMS+parent.DurationMS+5 {
				return fmt.Errorf("%s: span %s [%.2f,%.2f] escapes parent %s [%.2f,%.2f]",
					label, s.Name, s.StartOffsetMS, s.StartOffsetMS+s.DurationMS,
					parent.Name, parent.StartOffsetMS, parent.StartOffsetMS+parent.DurationMS)
			}
		}
		for i := range s.Children {
			if err := walk(s, &s.Children[i]); err != nil {
				return err
			}
		}
		return nil
	}
	root := &tv.Spans[0]
	if err := walk(nil, root); err != nil {
		return err
	}
	for _, name := range want {
		if findSpan(tv.Spans, name) == nil {
			return fmt.Errorf("%s: missing %q span", label, name)
		}
	}
	// The root's direct children are the sequential job phases; their sum
	// must account for the job's wall time. The budget is generous — the
	// point is catching phases that were never instrumented, not µs drift.
	var phaseSum float64
	for _, c := range root.Children {
		phaseSum += c.DurationMS
	}
	slack := math.Max(50, 0.25*root.DurationMS)
	if math.Abs(root.DurationMS-phaseSum) > slack {
		return fmt.Errorf("%s: phases sum to %.1fms but job ran %.1fms (slack %.1fms)",
			label, phaseSum, root.DurationMS, slack)
	}
	return nil
}

// submitJob POSTs one job spec and returns the accepted id.
func submitJob(client *http.Client, addr, body string) (string, error) {
	resp, err := client.Post(addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

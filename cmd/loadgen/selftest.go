package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/autom"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/solverutil"
)

// waitReady polls the daemon's /readyz until it answers 200 or the budget
// elapses — traffic against a daemon that is still replaying its journal
// (or already draining) would measure the wrong thing.
func waitReady(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon not ready after %v: %w", budget, err)
			}
			return fmt.Errorf("daemon not ready after %v", budget)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// sleepSolve stands in for the real solver: a fixed per-job cost, so the
// selftest's overload behavior depends only on admission arithmetic,
// never on solver speed.
func sleepSolve(d time.Duration) service.SolveFunc {
	return func(ctx context.Context, g *graph.Graph, spec service.JobSpec, sym []autom.Perm, progress solverutil.ProgressFunc) core.Outcome {
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
		return core.Outcome{Instance: g.Name()}
	}
}

// runSelftest is the CI smoke behind `make loadtest`: an overloaded
// in-process daemon must shed load with enveloped 429s, and a lightly
// loaded one must accept everything. Any non-envelope error response
// fails either scenario.
func runSelftest() error {
	// Overload: 2 workers × 100ms jobs against 16 submitters can sustain
	// ~20 jobs/s; 120 novel submissions arriving as fast as possible must
	// overflow the depth-4 queue and be rejected with 429s.
	overloaded := service.New(service.Config{
		Workers: 2, QueueDepth: 4, Solve: sleepSolve(100 * time.Millisecond),
	})
	srv := httptest.NewServer(httpapi.New(httpapi.Config{Service: overloaded}))
	if err := waitReady(srv.URL, 5*time.Second); err != nil {
		srv.Close()
		overloaded.Close()
		return fmt.Errorf("overload: %w", err)
	}
	rep, err := run(runConfig{
		addr: srv.URL, n: 120, concurrency: 16, tenants: 3, isoFrac: 0,
		vertices: 12, degree: 2, k: 4, timeout: "5s", seed: 7,
	})
	srv.Close()
	overloaded.CancelAll()
	overloaded.Close()
	if err != nil {
		return fmt.Errorf("overload run: %w", err)
	}
	rep.print(os.Stderr)
	if rep.protocolErrors > 0 {
		return fmt.Errorf("overload: %d responses violated the error-envelope contract", rep.protocolErrors)
	}
	if rep.rejected429 == 0 {
		return fmt.Errorf("overload: expected 429 backpressure, got none (accepted=%d)", rep.accepted)
	}
	if rep.accepted == 0 {
		return fmt.Errorf("overload: nothing was accepted")
	}

	// Light load: ample workers and queue; every submission must be
	// accepted — a single 429 here means admission rejects traffic it has
	// room for.
	light := service.New(service.Config{
		Workers: 8, QueueDepth: 1024, Solve: sleepSolve(time.Millisecond),
	})
	srv = httptest.NewServer(httpapi.New(httpapi.Config{Service: light}))
	if err := waitReady(srv.URL, 5*time.Second); err != nil {
		srv.Close()
		light.Close()
		return fmt.Errorf("light: %w", err)
	}
	rep, err = run(runConfig{
		addr: srv.URL, n: 30, concurrency: 2, tenants: 2, isoFrac: 0.5,
		vertices: 12, degree: 2, k: 4, timeout: "5s", seed: 11,
	})
	var traceErr error
	if err == nil {
		traceErr = checkSelftestTraces(srv.URL, rep)
	}
	srv.Close()
	light.CancelAll()
	light.Close()
	if err != nil {
		return fmt.Errorf("light run: %w", err)
	}
	if traceErr != nil {
		return fmt.Errorf("light traces: %w", traceErr)
	}
	rep.print(os.Stderr)
	if rep.protocolErrors > 0 {
		return fmt.Errorf("light: %d responses violated the error-envelope contract", rep.protocolErrors)
	}
	if rep.rejected429 != 0 {
		return fmt.Errorf("light: got %d spurious 429s under light load", rep.rejected429)
	}
	return nil
}

// checkSelftestTraces asserts the trace plumbing held up under the light
// scenario: the run retrieved traces for its sampled jobs, each phase of
// the job lifecycle appears in the aggregate (the stub solver skips the
// encode/persist internals, so only the scheduler-side phases are
// guaranteed), one trace has the expected single-root shape, and an
// unknown job id gets the unified 404 envelope.
func checkSelftestTraces(addr string, rep *report) error {
	if rep.traced == 0 {
		return fmt.Errorf("no traces retrieved for %d accepted jobs", rep.accepted)
	}
	for _, phase := range []string{"job", "admission", "queue", "canon", "solve"} {
		if len(rep.phases[phase]) == 0 {
			return fmt.Errorf("phase %q missing from all %d traces", phase, rep.traced)
		}
	}
	client := &http.Client{Timeout: 5 * time.Second}
	tv, ok := fetchTrace(client, addr, rep.ids[0], time.Now().Add(5*time.Second))
	if !ok {
		return fmt.Errorf("job %s: trace not retrievable", rep.ids[0])
	}
	if len(tv.Spans) != 1 || tv.Spans[0].Name != "job" {
		return fmt.Errorf("job %s: want one root span named job, got %d roots", rep.ids[0], len(tv.Spans))
	}
	resp, err := client.Get(addr + "/v1/jobs/no-such-job/trace")
	if err != nil {
		return err
	}
	var env envelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || err != nil || env.Error.Code == "" {
		return fmt.Errorf("unknown-job trace: want enveloped 404, got status=%d err=%v code=%q",
			resp.StatusCode, err, env.Error.Code)
	}
	return nil
}

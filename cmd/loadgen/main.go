// Command loadgen drives mixed HTTP traffic against a running gcolord to
// exercise the admission-control path: a configurable fraction of
// submissions are random relabelings of one base graph (isomorphic, so
// the canonical cache answers all but the first), the rest are novel
// random graphs that each need a real solve. It reports accepts,
// backpressure rejections (429s), submit latency percentiles, and the
// daemon's cache-hit counters.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -n 500 -c 16 -tenants 4 -iso 0.5
//	loadgen -addr http://localhost:8080 -duration 30s -c 32
//	loadgen -selftest   # self-contained overload/light smoke (CI)
//	loadgen -chaos      # self-contained chaos drill: injected panics + store faults
//
// Every non-2xx response must parse as the unified error envelope
// {"error": {"code", ...}}; any response that does not counts as a
// protocol error and fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "gcolord base URL")
	n := flag.Int("n", 200, "total submissions (ignored with -duration)")
	duration := flag.Duration("duration", 0, "run for this long instead of a fixed count")
	concurrency := flag.Int("c", 8, "concurrent submitters")
	tenants := flag.Int("tenants", 2, "spread requests over this many X-Tenant values")
	isoFrac := flag.Float64("iso", 0.5, "fraction of submissions that are isomorphic relabelings of the base graph")
	vertices := flag.Int("vertices", 24, "vertex count of generated graphs")
	degree := flag.Float64("degree", 3, "average degree of generated graphs")
	k := flag.Int("k", 8, "color bound submitted with every job")
	timeout := flag.String("timeout", "5s", "per-job solve budget")
	seed := flag.Int64("seed", 1, "random seed (runs are reproducible)")
	selftest := flag.Bool("selftest", false, "run the self-contained overload/light smoke against an in-process daemon")
	chaos := flag.Bool("chaos", false, "run the self-contained chaos drill: injected solver panics and store write faults against an in-process daemon")
	tracecheck := flag.Bool("tracecheck", false, "run the self-contained trace audit: every completed job must expose a well-formed span tree whose phases account for its wall time")
	flag.Parse()

	if *selftest {
		if err := runSelftest(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: selftest:", err)
			os.Exit(1)
		}
		fmt.Println("loadgen: selftest ok")
		return
	}
	if *tracecheck {
		if err := runTracecheck(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: tracecheck:", err)
			os.Exit(1)
		}
		fmt.Println("loadgen: tracecheck ok")
		return
	}
	if *chaos {
		if err := runChaos(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: chaos:", err)
			os.Exit(1)
		}
		fmt.Println("loadgen: chaos drill ok")
		return
	}

	cfg := runConfig{
		addr: strings.TrimRight(*addr, "/"), n: *n, duration: *duration,
		concurrency: *concurrency, tenants: *tenants, isoFrac: *isoFrac,
		vertices: *vertices, degree: *degree, k: *k, timeout: *timeout,
		seed: *seed,
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	rep.print(os.Stdout)
	if rep.protocolErrors > 0 {
		os.Exit(1)
	}
}

type runConfig struct {
	addr        string
	n           int
	duration    time.Duration
	concurrency int
	tenants     int
	isoFrac     float64
	vertices    int
	degree      float64
	k           int
	timeout     string
	seed        int64
}

// report aggregates one load run.
type report struct {
	submitted      int64
	accepted       int64
	rejected429    int64 // queue_full + tenant_over_quota
	otherErrors    int64 // non-429 envelope errors (4xx/5xx)
	protocolErrors int64 // transport failures or non-envelope error bodies
	rejectCodes    map[string]int64
	latencies      []time.Duration
	elapsed        time.Duration
	stats          map[string]any // daemon /v1/stats snapshot, if reachable
	// ids holds accepted job ids, up to traceSample of them, for the
	// post-run trace fetch; phases aggregates per-phase durations (ms)
	// from the traces actually retrieved.
	ids    []string
	phases map[string][]float64
	traced int
}

// traceSample bounds how many accepted jobs the post-run trace fetch
// inspects — enough for stable percentiles without hammering the daemon.
const traceSample = 64

func (r *report) print(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d submitted in %v (%.1f req/s)\n",
		r.submitted, r.elapsed.Round(time.Millisecond), float64(r.submitted)/r.elapsed.Seconds())
	fmt.Fprintf(w, "  accepted: %d   429s: %d   other errors: %d   protocol errors: %d\n",
		r.accepted, r.rejected429, r.otherErrors, r.protocolErrors)
	for code, c := range r.rejectCodes {
		fmt.Fprintf(w, "  reject[%s]: %d\n", code, c)
	}
	if len(r.latencies) > 0 {
		sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(r.latencies)-1))
			return r.latencies[i]
		}
		fmt.Fprintf(w, "  submit latency: p50=%v p90=%v p99=%v max=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), r.latencies[len(r.latencies)-1].Round(time.Microsecond))
	}
	if r.stats != nil {
		fmt.Fprintf(w, "  daemon: solver_runs=%v cache_hits=%v dedup_joins=%v expired=%v\n",
			r.stats["solver_runs"], r.stats["cache_hits"], r.stats["dedup_joins"], r.stats["expired"])
	}
	if len(r.phases) > 0 {
		fmt.Fprintf(w, "  phase latency over %d traced jobs:\n", r.traced)
		names := make([]string, 0, len(r.phases))
		for name := range r.phases {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ds := r.phases[name]
			sort.Float64s(ds)
			pct := func(p float64) float64 { return ds[int(p*float64(len(ds)-1))] }
			fmt.Fprintf(w, "    %-12s n=%-4d p50=%.2fms p95=%.2fms p99=%.2fms\n",
				name, len(ds), pct(0.50), pct(0.95), pct(0.99))
		}
	}
}

// genGraph emits the n+edges JSON fields for one submission: either a
// fresh random relabeling of base (isomorphic traffic) or a novel random
// graph. rng is owned by one worker goroutine.
func genGraph(rng *rand.Rand, base [][2]int, vertices int, degree float64, iso bool, serial int64) (string, [][2]int) {
	if iso {
		perm := rng.Perm(vertices)
		edges := make([][2]int, len(base))
		for i, e := range base {
			edges[i] = [2]int{perm[e[0]], perm[e[1]]}
		}
		return fmt.Sprintf("iso-%d", serial), edges
	}
	return fmt.Sprintf("novel-%d", serial), randomGraph(rng, vertices, degree)
}

// randomGraph samples a G(n,m)-style edge list with ~degree*n/2 edges.
func randomGraph(rng *rand.Rand, n int, degree float64) [][2]int {
	want := int(degree * float64(n) / 2)
	seen := map[[2]int]bool{}
	var edges [][2]int
	for len(edges) < want {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		edges = append(edges, [2]int{a, b})
	}
	return edges
}

func edgesJSON(edges [][2]int) string {
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = fmt.Sprintf("[%d,%d]", e[0], e[1])
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// envelope mirrors httpapi's error shape; loadgen decodes it structurally
// so it exercises the wire contract, not the Go types.
type envelope struct {
	Error struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// run fires the configured traffic and aggregates the outcome.
func run(cfg runConfig) (*report, error) {
	if cfg.tenants < 1 {
		cfg.tenants = 1
	}
	baseRng := rand.New(rand.NewSource(cfg.seed))
	base := randomGraph(baseRng, cfg.vertices, cfg.degree)

	rep := &report{rejectCodes: map[string]int64{}}
	var mu sync.Mutex // guards rep.latencies and rep.rejectCodes
	var serial atomic.Int64
	stopAt := time.Time{}
	if cfg.duration > 0 {
		stopAt = time.Now().Add(cfg.duration)
	}
	next := func() bool {
		if cfg.duration > 0 {
			return time.Now().Before(stopAt)
		}
		return serial.Load() < int64(cfg.n)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w) + 1))
			for next() {
				s := serial.Add(1)
				if cfg.duration == 0 && s > int64(cfg.n) {
					return
				}
				iso := rng.Float64() < cfg.isoFrac
				name, edges := genGraph(rng, base, cfg.vertices, cfg.degree, iso, s)
				body := fmt.Sprintf(`{"name":%q,"n":%d,"edges":%s,"k":%d,"timeout":%q}`,
					name, cfg.vertices, edgesJSON(edges), cfg.k, cfg.timeout)
				tenant := fmt.Sprintf("tenant-%d", int(s)%cfg.tenants)

				req, err := http.NewRequest("POST", cfg.addr+"/v1/jobs", bytes.NewReader([]byte(body)))
				if err != nil {
					atomic.AddInt64(&rep.protocolErrors, 1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Tenant", tenant)
				req.Header.Set("X-Request-ID", fmt.Sprintf("loadgen-%d", s))

				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				atomic.AddInt64(&rep.submitted, 1)
				if err != nil {
					atomic.AddInt64(&rep.protocolErrors, 1)
					continue
				}
				mu.Lock()
				rep.latencies = append(rep.latencies, lat)
				mu.Unlock()
				func() {
					defer resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted {
						atomic.AddInt64(&rep.accepted, 1)
						var acc struct {
							ID string `json:"id"`
						}
						if json.NewDecoder(resp.Body).Decode(&acc) == nil && acc.ID != "" {
							mu.Lock()
							if len(rep.ids) < traceSample {
								rep.ids = append(rep.ids, acc.ID)
							}
							mu.Unlock()
						}
						io.Copy(io.Discard, resp.Body)
						return
					}
					var env envelope
					if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code == "" {
						// A non-2xx body that is not the envelope breaks
						// the API contract.
						atomic.AddInt64(&rep.protocolErrors, 1)
						return
					}
					mu.Lock()
					rep.rejectCodes[env.Error.Code]++
					mu.Unlock()
					if resp.StatusCode == http.StatusTooManyRequests {
						atomic.AddInt64(&rep.rejected429, 1)
					} else {
						atomic.AddInt64(&rep.otherErrors, 1)
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	rep.elapsed = time.Since(start)

	if resp, err := client.Get(cfg.addr + "/v1/stats"); err == nil {
		defer resp.Body.Close()
		var stats map[string]any
		if json.NewDecoder(resp.Body).Decode(&stats) == nil {
			rep.stats = stats
		}
	}
	collectTraces(client, cfg.addr, rep)
	return rep, nil
}

// spanView / traceView mirror the /v1/jobs/{id}/trace JSON structurally,
// like envelope does for errors: loadgen exercises the wire contract, not
// the server's Go types.
type spanView struct {
	ID            uint64     `json:"id"`
	Name          string     `json:"name"`
	StartOffsetMS float64    `json:"start_offset_ms"`
	DurationMS    float64    `json:"duration_ms"`
	Children      []spanView `json:"children"`
}

type traceView struct {
	TraceID    string     `json:"trace_id"`
	JobID      string     `json:"job_id"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []spanView `json:"spans"`
}

// findSpan returns the first span with the given name, depth-first.
func findSpan(spans []spanView, name string) *spanView {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if hit := findSpan(spans[i].Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// collectTraces fetches the span tree for the sampled accepted jobs and
// folds every span's duration into the per-phase aggregate. Jobs whose
// trace is not yet available (still running, or already evicted from the
// flight recorder) are skipped; the whole pass is bounded so a stuck job
// cannot hang the report.
func collectTraces(client *http.Client, addr string, rep *report) {
	if len(rep.ids) == 0 {
		return
	}
	rep.phases = map[string][]float64{}
	deadline := time.Now().Add(15 * time.Second)
	for _, id := range rep.ids {
		tv, ok := fetchTrace(client, addr, id, deadline)
		if !ok {
			continue
		}
		rep.traced++
		var walk func(spans []spanView)
		walk = func(spans []spanView) {
			for _, s := range spans {
				rep.phases[s.Name] = append(rep.phases[s.Name], s.DurationMS)
				walk(s.Children)
			}
		}
		walk(tv.Spans)
	}
}

// fetchTrace polls one job's trace endpoint until it serves a trace, the
// global deadline passes, or the answer shows no trace will ever come
// (unknown job, tracing disabled).
func fetchTrace(client *http.Client, addr, id string, deadline time.Time) (traceView, bool) {
	for {
		resp, err := client.Get(addr + "/v1/jobs/" + id + "/trace")
		if err != nil {
			return traceView{}, false
		}
		if resp.StatusCode == http.StatusOK {
			var tv traceView
			err := json.NewDecoder(resp.Body).Decode(&tv)
			resp.Body.Close()
			return tv, err == nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// 404 not_found means "no completed trace yet" — retry until the
		// job finishes; anything else will not improve with time.
		if resp.StatusCode != http.StatusNotFound || time.Now().After(deadline) {
			return traceView{}, false
		}
		time.Sleep(50 * time.Millisecond)
	}
}
